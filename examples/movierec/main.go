// Movie recommendation (the paper's §IV-E scenario): complete a
// user-movie-time rating tensor whose movie mode carries a genre-based
// similarity, compare DisTenC against plain ALS on held-out ratings, and
// produce top-N recommendations for one user.
//
//	go run ./examples/movierec
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"distenc"
)

func main() {
	log.SetFlags(0)

	// Ratings are scarce relative to the tensor volume (~0.7% observed after
	// the split) — the regime where auxiliary information earns its keep.
	ds := distenc.GenerateNetflix(distenc.RecsysConfig{
		Users: 400, Items: 200, Contexts: 8,
		Rank: 6, NNZ: 20_000, Noise: 0.5, Seed: 7,
	})
	rng := rand.New(rand.NewPCG(7, 0))
	train, test := ds.Tensor.Split(0.5, rng)
	fmt.Printf("%s: training on %d ratings, testing on %d\n", ds.Name, train.NNZ(), test.NNZ())

	cluster, err := distenc.NewCluster(distenc.ClusterConfig{Machines: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// DisTenC with the movie-genre similarity.
	withAux, err := distenc.CompleteDistributed(cluster, train, ds.Sims, distenc.DistOptions{
		Options: distenc.Options{Rank: 6, MaxIter: 60, Seed: 1, Alpha: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The same model without auxiliary information, for contrast.
	without, err := distenc.CompleteDistributed(cluster, train, nil, distenc.DistOptions{
		Options: distenc.Options{Rank: 6, MaxIter: 60, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	rmseAux := distenc.RMSE(test, withAux.Model)
	rmsePlain := distenc.RMSE(test, without.Model)
	fmt.Printf("held-out RMSE: with genre similarity %.4f, without %.4f (%.1f%% better)\n",
		rmseAux, rmsePlain, 100*(rmsePlain-rmseAux)/rmsePlain)

	// Top-5 recommendations for user 17 in the most recent context,
	// excluding movies the user already rated.
	const user, ctx = 17, 7
	rated := map[int32]bool{}
	for e := 0; e < train.NNZ(); e++ {
		idx := train.Index(e)
		if idx[0] == user {
			rated[idx[1]] = true
		}
	}
	type rec struct {
		movie int32
		score float64
	}
	var recs []rec
	for m := int32(0); m < int32(ds.Tensor.Dims[1]); m++ {
		if rated[m] {
			continue
		}
		recs = append(recs, rec{m, withAux.Model.At([]int32{user, m, ctx})})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
	fmt.Printf("\ntop-5 recommendations for user %d (already rated %d movies):\n", user, len(rated))
	for i := 0; i < 5 && i < len(recs); i++ {
		fmt.Printf("  movie %3d — predicted rating %.2f\n", recs[i].movie, recs[i].score)
	}
}
