// Concept discovery (the paper's §IV-G scenario, Table III): factorize an
// author-paper-venue bibliography tensor with an author-affiliation
// similarity, then read each CP component as a "concept" by listing its
// top-scoring authors and venues. With the planted generator we can also
// score how pure each discovered concept is.
//
//	go run ./examples/conceptdiscovery
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"distenc"
)

func main() {
	log.SetFlags(0)

	const concepts = 4
	ds := distenc.GenerateDBLP(distenc.DBLPConfig{
		Authors: 180, Papers: 240, Venues: 40,
		Concepts: concepts, Rank: concepts, NNZ: 8_000, Seed: 3,
	})
	rng := rand.New(rand.NewPCG(3, 105))
	train, _ := ds.Tensor.Split(0.5, rng)
	fmt.Printf("%s: %d coauthorship records, %d planted concepts\n", ds.Name, train.NNZ(), concepts)

	cluster, err := distenc.NewCluster(distenc.ClusterConfig{Machines: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	res, err := distenc.CompleteDistributed(cluster, train, ds.Sims, distenc.DistOptions{
		// InitScale 1: count data keeps the raw U(0,1) initialization (see
		// internal/bench.TableIII).
		Options: distenc.Options{Rank: concepts, MaxIter: 120, Tol: 1e-12, Seed: 3, Alpha: 2, InitScale: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	authorConcept, venueConcept := ds.Concepts[0], ds.Concepts[2]
	for r := 0; r < concepts; r++ {
		authors := topContrast(res.Model.Factors[0], r, 6)
		venues := topContrast(res.Model.Factors[2], r, 4)
		fmt.Printf("\ncomponent %d (purity: authors %.0f%%, venues %.0f%%)\n",
			r, 100*purity(authors, authorConcept), 100*purity(venues, venueConcept))
		fmt.Print("  authors:")
		for _, a := range authors {
			fmt.Printf(" A%d(c%d)", a, authorConcept[a])
		}
		fmt.Print("\n  venues: ")
		for _, v := range venues {
			fmt.Printf(" V%d(c%d)", v, venueConcept[v])
		}
		fmt.Println()
	}
}

// topContrast ranks rows by their component-r value minus their mean value
// elsewhere — the paper's "filtering too general elements".
func topContrast(f interface {
	Rows() int
	Cols() int
	At(i, j int) float64
}, r, k int) []int {
	type iv struct {
		i int
		v float64
	}
	rank := f.Cols()
	all := make([]iv, f.Rows())
	for i := range all {
		var rest float64
		for j := 0; j < rank; j++ {
			if j != r {
				rest += f.At(i, j)
			}
		}
		score := f.At(i, r)
		if rank > 1 {
			score -= rest / float64(rank-1)
		}
		all[i] = iv{i, score}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].v > all[b].v })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].i
	}
	return out
}

func purity(idx []int, concept []int) float64 {
	counts := map[int]int{}
	best := 0
	for _, i := range idx {
		counts[concept[i]]++
		if counts[concept[i]] > best {
			best = counts[concept[i]]
		}
	}
	return float64(best) / float64(len(idx))
}
