// Quickstart: build a tiny partially observed tensor, complete it with the
// serial solver and with DisTenC on a simulated cluster, and predict a few
// unobserved cells.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"distenc"
)

func main() {
	log.SetFlags(0)

	// A planted rank-3 problem: three modes of size 40, 6000 observed cells,
	// with tri-diagonal similarities (neighboring indices behave alike).
	ds := distenc.GenerateLinearFactor([]int{40, 40, 40}, 3, 6_000, 42)
	rng := rand.New(rand.NewPCG(42, 0))
	train, test := ds.Tensor.Split(0.3, rng)
	fmt.Printf("observed: %d cells for training, %d held out\n", train.NNZ(), test.NNZ())

	// 1. Single-process solver (Algorithm 1 with the paper's optimizations).
	serial, err := distenc.Complete(train, ds.Sims, distenc.Options{
		Rank:    5,
		MaxIter: 40,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial:      %2d iterations, %.3fs, held-out RMSE %.4f\n",
		serial.Iters, serial.Elapsed.Seconds(), distenc.RMSE(test, serial.Model))

	// 2. DisTenC on a 4-machine simulated cluster — same mathematics, same
	// answer, but the O(nnz·R) work runs as engine stages.
	cluster, err := distenc.NewCluster(distenc.ClusterConfig{Machines: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	dist, err := distenc.CompleteDistributed(cluster, train, ds.Sims, distenc.DistOptions{
		Options: distenc.Options{Rank: 5, MaxIter: 40, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed: %2d iterations, %.3fs, held-out RMSE %.4f\n",
		dist.Iters, dist.Elapsed.Seconds(), distenc.RMSE(test, dist.Model))
	fmt.Printf("engine: %d tasks over %d stages, %.1f KB shuffled\n",
		cluster.Metrics().TasksRun.Load(),
		cluster.Metrics().Stages.Load(),
		float64(cluster.Metrics().BytesShuffled.Load())/1024)

	// 3. Predict unobserved cells: the model is the completed tensor.
	fmt.Println("\nsample predictions (unobserved cells):")
	for _, cell := range [][]int32{{0, 1, 2}, {10, 20, 30}, {39, 39, 39}} {
		fmt.Printf("  X[%2d,%2d,%2d] ≈ %7.3f (ground truth %7.3f)\n",
			cell[0], cell[1], cell[2], dist.Model.At(cell), ds.Truth.At(cell))
	}
}
