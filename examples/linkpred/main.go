// Link prediction (the paper's §IV-F scenario): complete a user-user-time
// friendship tensor with a community-based user similarity and rank
// candidate links for a user by predicted strength, evaluating how many
// held-out links the top of the ranking recovers.
//
//	go run ./examples/linkpred
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"distenc"
)

func main() {
	log.SetFlags(0)

	ds := distenc.GenerateFacebook(distenc.LinkPredConfig{
		Users: 400, Days: 6, Rank: 6, NNZ: 25_000, Noise: 0.1, Seed: 11,
	})
	rng := rand.New(rand.NewPCG(11, 0))
	train, test := ds.Tensor.Split(0.5, rng)
	fmt.Printf("%s: %d observed links for training, %d held out\n", ds.Name, train.NNZ(), test.NNZ())

	cluster, err := distenc.NewCluster(distenc.ClusterConfig{Machines: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	res, err := distenc.CompleteDistributed(cluster, train, ds.Sims, distenc.DistOptions{
		Options: distenc.Options{Rank: 6, MaxIter: 30, Seed: 2, Alpha: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out RMSE %.4f after %d iterations\n", distenc.RMSE(test, res.Model), res.Iters)

	// Hits@K: of the held-out links of one user on the last day, how many
	// appear in the top-K predicted candidates? Pick the user with the most
	// held-out links that day so the metric has support.
	const day, topK = 5, 20
	perUser := map[int32]int{}
	for e := 0; e < test.NNZ(); e++ {
		idx := test.Index(e)
		if idx[2] == day {
			perUser[idx[0]]++
		}
	}
	var user int32
	for u, n := range perUser {
		if n > perUser[user] {
			user = u
		}
	}
	heldOut := map[int32]bool{}
	for e := 0; e < test.NNZ(); e++ {
		idx := test.Index(e)
		if idx[0] == user && idx[2] == day {
			heldOut[idx[1]] = true
		}
	}
	known := map[int32]bool{user: true}
	for e := 0; e < train.NNZ(); e++ {
		idx := train.Index(e)
		if idx[0] == user && idx[2] == day {
			known[idx[1]] = true
		}
	}
	type cand struct {
		v     int32
		score float64
	}
	var cands []cand
	for v := int32(0); v < int32(ds.Tensor.Dims[1]); v++ {
		if known[v] {
			continue
		}
		cands = append(cands, cand{v, res.Model.At([]int32{user, v, day})})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	hits := 0
	for i := 0; i < topK && i < len(cands); i++ {
		if heldOut[cands[i].v] {
			hits++
		}
	}
	fmt.Printf("user %d, day %d: %d held-out links, hits@%d = %d\n",
		user, day, len(heldOut), topK, hits)
	fmt.Println("top predicted new links:")
	for i := 0; i < 5 && i < len(cands); i++ {
		marker := ""
		if heldOut[cands[i].v] {
			marker = "  <- held-out true link"
		}
		fmt.Printf("  user %3d — score %.3f%s\n", cands[i].v, cands[i].score, marker)
	}
}
