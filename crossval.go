package distenc

import (
	"fmt"
	"math/rand/v2"

	"distenc/internal/metrics"
	"distenc/internal/sptensor"
)

// CVResult reports cross-validated quality for one candidate rank.
type CVResult struct {
	Rank     int
	MeanRMSE float64
	StdRMSE  float64
}

// CrossValidateRank k-fold cross-validates the serial solver over the
// candidate ranks and returns per-rank scores plus the rank with the lowest
// mean held-out RMSE — the standard way to pick R, which the paper treats as
// a given input. opt.Rank is overridden per candidate.
func CrossValidateRank(t *Tensor, sims []*Similarity, opt Options, ranks []int, folds int, seed uint64) ([]CVResult, int, error) {
	if folds < 2 {
		return nil, 0, fmt.Errorf("distenc: need at least 2 folds, got %d", folds)
	}
	if len(ranks) == 0 {
		return nil, 0, fmt.Errorf("distenc: no candidate ranks")
	}
	if t.NNZ() < folds {
		return nil, 0, fmt.Errorf("distenc: %d observations cannot form %d folds", t.NNZ(), folds)
	}
	assignments := foldAssignments(t.NNZ(), folds, seed)

	results := make([]CVResult, 0, len(ranks))
	bestRank, bestScore := 0, 0.0
	for _, r := range ranks {
		var scores []float64
		for f := 0; f < folds; f++ {
			train, test := foldSplit(t, assignments, f)
			o := opt
			o.Rank = r
			res, err := Complete(train, sims, o)
			if err != nil {
				return nil, 0, fmt.Errorf("distenc: rank %d fold %d: %w", r, f, err)
			}
			scores = append(scores, metrics.RMSE(test, res.Model))
		}
		mean, std := metrics.MeanStd(scores)
		results = append(results, CVResult{Rank: r, MeanRMSE: mean, StdRMSE: std})
		if bestRank == 0 || mean < bestScore {
			bestRank, bestScore = r, mean
		}
	}
	return results, bestRank, nil
}

// foldAssignments deals every entry into one of `folds` buckets uniformly.
func foldAssignments(nnz, folds int, seed uint64) []uint8 {
	rng := rand.New(rand.NewPCG(seed, 0xf01d5))
	out := make([]uint8, nnz)
	for i := range out {
		out[i] = uint8(rng.IntN(folds))
	}
	return out
}

// foldSplit returns train (all entries outside fold f) and test (fold f).
func foldSplit(t *Tensor, assignments []uint8, f int) (train, test *Tensor) {
	train = sptensor.New(t.Dims...)
	test = sptensor.New(t.Dims...)
	for e := 0; e < t.NNZ(); e++ {
		if int(assignments[e]) == f {
			test.Append(t.Index(e), t.Val[e])
		} else {
			train.Append(t.Index(e), t.Val[e])
		}
	}
	return train, test
}
