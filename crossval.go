package distenc

import (
	"fmt"
	"math"
	"math/rand/v2"

	"distenc/internal/metrics"
	"distenc/internal/sptensor"
)

// CVResult reports cross-validated quality for one candidate rank.
type CVResult struct {
	Rank     int
	MeanRMSE float64
	StdRMSE  float64
}

// CrossValidateRank k-fold cross-validates the serial solver over the
// candidate ranks and returns per-rank scores plus the rank with the lowest
// mean held-out RMSE — the standard way to pick R, which the paper treats as
// a given input. opt.Rank is overridden per candidate.
func CrossValidateRank(t *Tensor, sims []*Similarity, opt Options, ranks []int, folds int, seed uint64) ([]CVResult, int, error) {
	if folds < 2 {
		return nil, 0, fmt.Errorf("distenc: need at least 2 folds, got %d", folds)
	}
	if len(ranks) == 0 {
		return nil, 0, fmt.Errorf("distenc: no candidate ranks")
	}
	if folds > 255 {
		return nil, 0, fmt.Errorf("distenc: at most 255 folds, got %d", folds)
	}
	if t.NNZ() < folds {
		return nil, 0, fmt.Errorf("distenc: %d observations cannot form %d folds", t.NNZ(), folds)
	}
	assignments := foldAssignments(t.NNZ(), folds, seed)

	results := make([]CVResult, 0, len(ranks))
	for _, r := range ranks {
		var scores []float64
		for f := 0; f < folds; f++ {
			train, test := foldSplit(t, assignments, f)
			o := opt
			o.Rank = r
			res, err := Complete(train, sims, o)
			if err != nil {
				return nil, 0, fmt.Errorf("distenc: rank %d fold %d: %w", r, f, err)
			}
			scores = append(scores, metrics.RMSE(test, res.Model))
		}
		mean, std := metrics.MeanStd(scores)
		results = append(results, CVResult{Rank: r, MeanRMSE: mean, StdRMSE: std})
	}
	bestRank, err := selectBestRank(results)
	if err != nil {
		return results, 0, err
	}
	return results, bestRank, nil
}

// selectBestRank returns the candidate with the lowest finite mean RMSE.
// Non-finite means (a diverged fold yields NaN/Inf) are skipped rather than
// compared: a NaN encountered first would otherwise poison the running best,
// since every later `mean < NaN` is false.
func selectBestRank(results []CVResult) (int, error) {
	bestRank, bestScore, found := 0, 0.0, false
	for _, r := range results {
		if math.IsNaN(r.MeanRMSE) || math.IsInf(r.MeanRMSE, 0) {
			continue
		}
		if !found || r.MeanRMSE < bestScore {
			bestRank, bestScore, found = r.Rank, r.MeanRMSE, true
		}
	}
	if !found {
		return 0, fmt.Errorf("distenc: no candidate rank produced a finite cross-validated RMSE")
	}
	return bestRank, nil
}

// foldAssignments deals every entry into one of `folds` buckets with a
// shuffled round-robin deal, so fold sizes differ by at most one and no fold
// can come up empty (an empty fold's RMSE of 0 would silently skew model
// selection downward) — unlike independent uniform draws, which leave a fold
// empty with probability ≈ folds·(1−1/folds)^nnz on small tensors.
func foldAssignments(nnz, folds int, seed uint64) []uint8 {
	rng := rand.New(rand.NewPCG(seed, 0xf01d5))
	out := make([]uint8, nnz)
	for i := range out {
		out[i] = uint8(i % folds)
	}
	rng.Shuffle(nnz, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// foldSplit returns train (all entries outside fold f) and test (fold f).
func foldSplit(t *Tensor, assignments []uint8, f int) (train, test *Tensor) {
	train = sptensor.New(t.Dims...)
	test = sptensor.New(t.Dims...)
	for e := 0; e < t.NNZ(); e++ {
		if int(assignments[e]) == f {
			test.Append(t.Index(e), t.Val[e])
		} else {
			train.Append(t.Index(e), t.Val[e])
		}
	}
	return train, test
}
