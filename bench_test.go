package distenc

// One benchmark per table and figure of the paper's evaluation, plus the
// design-choice ablations. Each runs the corresponding experiment driver at
// the small (seconds-scale) profile; cmd/distenc-bench runs the full-scale
// versions and EXPERIMENTS.md records their output against the paper.

import (
	"io"
	"testing"

	"distenc/internal/bench"
)

func smoke() bench.Profile { return bench.Profile{Small: true, Seed: 3} }

// BenchmarkFig3aDimensionality regenerates Figure 3a: runtime and OOM
// behaviour versus dimensionality for all five methods.
func BenchmarkFig3aDimensionality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig3a(io.Discard, smoke())
	}
}

// BenchmarkFig3bNonzeros regenerates Figure 3b: runtime versus non-zeros.
func BenchmarkFig3bNonzeros(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig3b(io.Discard, smoke())
	}
}

// BenchmarkFig3cRank regenerates Figure 3c: runtime versus rank.
func BenchmarkFig3cRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig3c(io.Discard, smoke())
	}
}

// BenchmarkFig4MachineScalability regenerates Figure 4: speedup T1/TM.
func BenchmarkFig4MachineScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig4(io.Discard, smoke())
	}
}

// BenchmarkFig5ReconstructionError regenerates Figure 5: relative error
// versus missing rate.
func BenchmarkFig5ReconstructionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig5(io.Discard, smoke())
	}
}

// BenchmarkFig6aRecommenderRMSE regenerates Figure 6a: Netflix-sim and
// Twitter-sim RMSE.
func BenchmarkFig6aRecommenderRMSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig6a(io.Discard, smoke())
	}
}

// BenchmarkFig6bConvergence regenerates Figure 6b: convergence traces.
func BenchmarkFig6bConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig6b(io.Discard, smoke())
	}
}

// BenchmarkFig7LinkPrediction regenerates Figure 7: Facebook-sim link
// prediction.
func BenchmarkFig7LinkPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7(io.Discard, smoke())
	}
}

// BenchmarkTableIIDatasets regenerates the Table II dataset inventory.
func BenchmarkTableIIDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.TableII(io.Discard, smoke())
	}
}

// BenchmarkTableIIIConceptDiscovery regenerates Table III: concept discovery
// on the DBLP stand-in.
func BenchmarkTableIIIConceptDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.TableIII(io.Discard, smoke())
	}
}

// BenchmarkLemmaCounters checks the Lemma 1–3 accounting (measured time,
// memory and shuffle bytes against the analytic terms).
func BenchmarkLemmaCounters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Lemmas(io.Discard, smoke())
	}
}

// BenchmarkAblations times the five §III design choices, optimized vs
// naive (A1 trace-reg inverse, A2 residual tensor, A3 greedy partitioning,
// A4 Gram caching, A5 multiply order).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Ablations(io.Discard, smoke())
	}
}

// BenchmarkCompleteSerial measures the optimized single-process solver.
func BenchmarkCompleteSerial(b *testing.B) {
	d := GenerateLinearFactor([]int{50, 50, 50}, 3, 10_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Complete(d.Tensor, d.Sims, Options{Rank: 5, MaxIter: 5, Tol: 0, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompleteDistributed measures DisTenC end to end on a 4-machine
// simulated cluster.
func BenchmarkCompleteDistributed(b *testing.B) {
	d := GenerateLinearFactor([]int{50, 50, 50}, 3, 10_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(ClusterConfig{Machines: 4})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: Options{Rank: 5, MaxIter: 5, Tol: 0, Seed: 2}}); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}
