// Package distenc is a from-scratch Go implementation of DisTenC, the
// distributed algorithm for scalable tensor completion with auxiliary
// information of Ge et al. (ICDE 2018), together with everything it runs on:
// a Spark-like in-process dataflow engine with simulated machines, a sparse
// tensor and dense linear-algebra stack, the greedy block partitioner, and
// the four baselines of the paper's evaluation.
//
// # Quick start
//
//	t := distenc.NewTensor(100, 100, 100)
//	t.Append([]int32{3, 7, 1}, 4.5) // observed cells
//	res, err := distenc.Complete(t, nil, distenc.Options{Rank: 10})
//	// res.Model.At([]int32{i, j, k}) predicts any cell.
//
// For the distributed solver, create a simulated cluster first:
//
//	c, _ := distenc.NewCluster(distenc.ClusterConfig{Machines: 8})
//	defer c.Close()
//	res, err := distenc.CompleteDistributed(c, t, sims, distenc.DistOptions{})
//
// Auxiliary information is a per-mode similarity graph whose Laplacian
// regularizes that mode's factors (Eq. 4 of the paper):
//
//	sims := []*distenc.Similarity{distenc.TriDiagonalSimilarity(100), nil, nil}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and table.
package distenc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"distenc/internal/core"
	"distenc/internal/graph"
	"distenc/internal/metrics"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
	"distenc/internal/synth"
	"distenc/internal/transport"
)

// Tensor is an N-mode sparse tensor in coordinate format.
type Tensor = sptensor.Tensor

// Kruskal is a rank-R CP model [[A(1),…,A(N)]]; its At method predicts any
// cell, i.e. it is the completed tensor.
type Kruskal = sptensor.Kruskal

// Similarity is per-mode auxiliary information: a sparse symmetric
// similarity graph whose Laplacian trace-regularizes the mode's factors.
type Similarity = graph.Similarity

// Options configures the solvers (see core.Options for field docs).
type Options = core.Options

// DistOptions configures the distributed solver.
type DistOptions = core.DistOptions

// Result reports a completed run: the learned model, convergence trace and
// timing.
type Result = core.Result

// Cluster is the simulated Spark-like cluster the distributed solver runs
// on.
type Cluster = rdd.Cluster

// ClusterConfig sizes a cluster: machine count, cores, per-machine memory
// budget, and Spark-like vs MapReduce-like execution.
type ClusterConfig = rdd.Config

// FaultPlan is a seeded chaos schedule for the simulated cluster: random
// task failures, a machine kill at a chosen stage, and straggler delays (set
// ClusterConfig.Fault).
type FaultPlan = rdd.FaultPlan

// RecoveryEvent is one recorded fault-tolerance action (see
// Cluster.Recoveries).
type RecoveryEvent = rdd.RecoveryEvent

// ParseFaultPlan builds a FaultPlan from the compact spec the -fault-plan
// CLI flag takes, e.g. "seed=7,failprob=0.02,kill=1@5".
var ParseFaultPlan = rdd.ParseFaultPlan

// KernelMode selects the map-side MTTKRP kernel: KernelAuto picks fused or
// SpMV-chain per partition from a static cost model; KernelFused and
// KernelSpMV force one everywhere (set DistOptions.Kernel).
type KernelMode = core.KernelMode

// Kernel modes for DistOptions.Kernel.
const (
	KernelAuto  = core.KernelAuto
	KernelFused = core.KernelFused
	KernelSpMV  = core.KernelSpMV
)

// ParseKernelMode parses a -kernel CLI flag value: "auto", "fused" or
// "spmv".
var ParseKernelMode = core.ParseKernelMode

// WireFormat selects the shuffle record encoding: WireRaw ships u32 rows +
// f64 values, WireVarint delta-varint rows + f64 values (lossless, the
// default), WireF32 delta rows + f32 values with f64 accumulation (set
// DistOptions.Wire).
type WireFormat = rdd.WireFormat

// Wire formats for DistOptions.Wire.
const (
	WireRaw    = rdd.WireRaw
	WireVarint = rdd.WireVarint
	WireF32    = rdd.WireF32
)

// ParseWireFormat parses a -wire CLI flag value: "raw", "varint" (or
// "lossless"), or "f32" (or "float32").
var ParseWireFormat = rdd.ParseWireFormat

// Transport abstracts how tasks move shuffle blocks, broadcast replicas and
// checkpoint images between machines. Nil (the default) keeps everything
// in-process; set ClusterConfig.Transport to a TCP client to run against
// real worker processes.
type Transport = rdd.Transport

// TransportOptions tunes the TCP execution backend (pool size, timeouts).
type TransportOptions = transport.Options

// TCPTransport is the TCP implementation of Transport: a pooling,
// pipelining client fronting one distenc-worker process per machine.
type TCPTransport = transport.Client

// StartTCPWorkers spawns n worker processes by re-execing the current
// binary — which must call WorkerHook first thing in main() — and returns a
// Transport connected to them. Close it after the cluster.
func StartTCPWorkers(n int, opts TransportOptions) (*TCPTransport, error) {
	return transport.StartWorkers(n, opts)
}

// DialTCPWorkers connects to already-running distenc-worker daemons, one
// per machine, index-aligned with machine IDs.
func DialTCPWorkers(addrs []string, opts TransportOptions) (*TCPTransport, error) {
	return transport.DialWorkers(addrs, opts)
}

// WorkerHook turns the current process into a TCP worker and never returns
// when the DISTENC_WORKER_LISTEN environment variable is set; otherwise it
// is a no-op. Any binary that calls StartTCPWorkers must call this first
// thing in main().
func WorkerHook() { transport.WorkerHook() }

// SpeculationConfig enables Spark-style speculative execution on the
// simulated cluster: tasks running far beyond the completed-task duration
// distribution get a backup attempt on a different machine, and the first
// attempt to finish wins (set ClusterConfig.Speculation).
type SpeculationConfig = rdd.SpeculationConfig

// ParseSpeculation builds a SpeculationConfig from the compact spec the
// -speculation CLI flag takes: "on" for the defaults, or
// "quantile=0.75,multiplier=1.5,min=10ms".
var ParseSpeculation = rdd.ParseSpeculation

// Trace is a per-iteration convergence record.
type Trace = metrics.Trace

// ConvergencePoint is one sample of a training trace (see Options.OnIteration).
type ConvergencePoint = metrics.ConvergencePoint

// Dataset bundles a generated workload: tensor, per-mode similarities and,
// when planted, ground truth.
type Dataset = synth.Dataset

// ErrOutOfMemory is returned (wrapped) when a simulated machine's memory
// budget is exceeded; detect it with errors.Is.
var ErrOutOfMemory = rdd.ErrOutOfMemory

// NewTensor returns an empty sparse tensor with the given mode sizes.
func NewTensor(dims ...int) *Tensor { return sptensor.New(dims...) }

// NewKruskal wraps factor matrices as a CP model.
var NewKruskal = sptensor.NewKruskal

// NewCluster builds a simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return rdd.NewCluster(cfg) }

// NewSimilarity returns an empty similarity over n objects; add edges with
// AddEdge.
func NewSimilarity(n int) *Similarity { return graph.NewSimilarity(n) }

// TriDiagonalSimilarity links consecutive indices (the paper's Eq. 17),
// appropriate when neighboring rows are expected to behave similarly.
func TriDiagonalSimilarity(n int) *Similarity { return graph.TriDiagonal(n) }

// Complete runs the single-process ADMM solver (Algorithm 1 with the
// paper's §III optimizations). sims may be nil.
func Complete(t *Tensor, sims []*Similarity, opt Options) (*Result, error) {
	return core.Complete(t, sims, opt)
}

// CompleteDistributed runs DisTenC (Algorithm 3) on the cluster.
func CompleteDistributed(c *Cluster, t *Tensor, sims []*Similarity, opt DistOptions) (*Result, error) {
	return core.CompleteDistributed(c, t, sims, opt)
}

// ErrNoCheckpoint is returned by the Resume functions when
// Options.CheckpointDir holds no checkpoint.
var ErrNoCheckpoint = core.ErrNoCheckpoint

// Resume continues an interrupted Complete run from the latest checkpoint in
// opt.CheckpointDir (see Options.CheckpointEvery); the resumed run's factors
// are bit-identical to an uninterrupted run's.
func Resume(t *Tensor, sims []*Similarity, opt Options) (*Result, error) {
	return core.Resume(t, sims, opt)
}

// ResumeDistributed continues an interrupted CompleteDistributed run from
// the latest checkpoint in opt.CheckpointDir.
func ResumeDistributed(c *Cluster, t *Tensor, sims []*Similarity, opt DistOptions) (*Result, error) {
	return core.ResumeDistributed(c, t, sims, opt)
}

// RMSE evaluates a model on held-out observations.
func RMSE(test *Tensor, model *Kruskal) float64 { return metrics.RMSE(test, model) }

// RelativeError is ‖X−Y‖_F/‖Y‖_F over the entries of truth.
func RelativeError(truth *Tensor, model *Kruskal) float64 {
	return metrics.RelativeError(truth, model)
}

// Dataset generators (the paper's synthetic workloads and the stand-ins for
// its real datasets; see DESIGN.md §2 for the substitution rationale).
var (
	// GenerateScalability draws a uniform random sparse tensor.
	GenerateScalability = synth.ScalabilityTensor
	// GenerateLinearFactor builds the reconstruction-error synthetic with
	// tri-diagonal similarities (§IV-A).
	GenerateLinearFactor = synth.LinearFactorDataset
	// GenerateNetflix builds the user-movie-time rating stand-in.
	GenerateNetflix = synth.NetflixSim
	// GenerateTwitter builds the creator-expert-topic stand-in.
	GenerateTwitter = synth.TwitterSim
	// GenerateFacebook builds the user-user-time link stand-in.
	GenerateFacebook = synth.FacebookSim
	// GenerateDBLP builds the author-paper-venue stand-in with planted
	// concepts.
	GenerateDBLP = synth.DBLPSim
	// GenerateDBLP4 builds the 4-mode author-paper-term-venue stand-in from
	// the paper's introduction.
	GenerateDBLP4 = synth.DBLP4Sim
)

// RecsysConfig sizes GenerateNetflix and GenerateTwitter.
type RecsysConfig = synth.RecsysConfig

// LinkPredConfig sizes GenerateFacebook.
type LinkPredConfig = synth.LinkPredConfig

// DBLPConfig sizes GenerateDBLP.
type DBLPConfig = synth.DBLPConfig

// DBLP4Config sizes GenerateDBLP4.
type DBLP4Config = synth.DBLP4Config

// ReadCOO parses a sparse tensor from the text format written by WriteCOO:
// a header line "dims I1 I2 … IN" followed by one "i1 i2 … iN value" line
// per entry (0-based indices). Blank lines and lines starting with '#' are
// ignored.
func ReadCOO(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var t *Tensor
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if t == nil {
			if fields[0] != "dims" || len(fields) < 2 {
				return nil, fmt.Errorf("distenc: line %d: expected \"dims I1 I2 …\" header, got %q", line, text)
			}
			dims := make([]int, len(fields)-1)
			for i, f := range fields[1:] {
				d, err := strconv.Atoi(f)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("distenc: line %d: bad dimension %q", line, f)
				}
				dims[i] = d
			}
			t = NewTensor(dims...)
			continue
		}
		if len(fields) != t.Order()+1 {
			return nil, fmt.Errorf("distenc: line %d: want %d indices + value, got %d fields", line, t.Order(), len(fields))
		}
		idx := make([]int32, t.Order())
		for i := 0; i < t.Order(); i++ {
			v, err := strconv.Atoi(fields[i])
			if err != nil || v < 0 || v >= t.Dims[i] {
				return nil, fmt.Errorf("distenc: line %d: bad index %q for mode %d", line, fields[i], i)
			}
			idx[i] = int32(v)
		}
		val, err := strconv.ParseFloat(fields[t.Order()], 64)
		if err != nil {
			return nil, fmt.Errorf("distenc: line %d: bad value %q", line, fields[t.Order()])
		}
		t.Append(idx, val)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("distenc: empty COO input")
	}
	return t, nil
}

// WriteCOO writes the ReadCOO text format.
func WriteCOO(w io.Writer, t *Tensor) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "dims")
	for _, d := range t.Dims {
		fmt.Fprintf(bw, " %d", d)
	}
	fmt.Fprintln(bw)
	for e := 0; e < t.NNZ(); e++ {
		for _, i := range t.Index(e) {
			fmt.Fprintf(bw, "%d ", i)
		}
		fmt.Fprintf(bw, "%g\n", t.Val[e])
	}
	return bw.Flush()
}

// ReadSimilarity parses a similarity graph: a header "nodes N" then one
// "i j weight" line per undirected edge.
func ReadSimilarity(r io.Reader) (*Similarity, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var s *Similarity
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if s == nil {
			if fields[0] != "nodes" || len(fields) != 2 {
				return nil, fmt.Errorf("distenc: line %d: expected \"nodes N\" header", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("distenc: line %d: bad node count %q", line, fields[1])
			}
			s = NewSimilarity(n)
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("distenc: line %d: want \"i j weight\"", line)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		w, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("distenc: line %d: bad edge %q", line, text)
		}
		if i < 0 || j < 0 || i >= s.N || j >= s.N || i == j {
			return nil, fmt.Errorf("distenc: line %d: edge (%d,%d) out of range", line, i, j)
		}
		s.AddEdge(i, j, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("distenc: empty similarity input")
	}
	return s, nil
}

// WriteSimilarity writes the ReadSimilarity text format.
func WriteSimilarity(w io.Writer, s *Similarity) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "nodes %d\n", s.N)
	for i, edges := range s.Adj {
		for _, e := range edges {
			if int(e.To) > i { // write each undirected edge once
				fmt.Fprintf(bw, "%d %d %g\n", i, e.To, e.Weight)
			}
		}
	}
	return bw.Flush()
}
