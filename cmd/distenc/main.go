// Command distenc completes a partially observed sparse tensor read from a
// COO text file, optionally with per-mode similarity graphs, and writes the
// learned factor matrices.
//
// Usage:
//
//	distenc -input ratings.coo -rank 10 -maxiter 50 -machines 4 \
//	        -sim 1=movies.sim -output factors/
//
// Input format: a header "dims I1 I2 … IN", then one "i1 … iN value" line
// per observation. Similarity files: "nodes N" then "i j weight" lines.
// Output: one factors-modeK.txt per mode (rows of the I_k×R factor matrix),
// from which any cell (i1,…,iN) is predicted as Σ_r Π_k A_k[i_k,r].
//
// Observability: -stage-summary prints the engine's per-stage timing/shuffle
// table and the solver's per-iteration phase breakdown; -trace run.json
// writes a Chrome-trace JSON (open in chrome://tracing or ui.perfetto.dev)
// with one lane per simulated machine and a driver lane for stage and
// algebra spans. -cpuprofile/-memprofile write standard pprof profiles.
//
// Fault tolerance: -checkpoint-every N -checkpoint-dir DIR persists the full
// solver state every N iterations; -resume restarts from the latest
// checkpoint and reproduces the uninterrupted run's factors bit-for-bit.
// -fault-plan "seed=7,failprob=0.02,kill=1@5" runs the simulated cluster
// under a seeded chaos schedule (random task failures, a machine kill at a
// given stage, straggler delays) whose recovery shows up in -stage-summary
// and the trace.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"distenc"
	"distenc/internal/serve"
)

type simFlags map[int]string

func (s simFlags) String() string { return fmt.Sprint(map[int]string(s)) }

func (s simFlags) Set(v string) error {
	mode, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want MODE=FILE, got %q", v)
	}
	m, err := strconv.Atoi(mode)
	if err != nil || m < 0 {
		return fmt.Errorf("bad mode %q", mode)
	}
	s[m] = path
	return nil
}

func main() {
	// Must run before anything else: with -backend tcp the driver re-execs
	// this binary as its worker processes.
	distenc.WorkerHook()

	log.SetFlags(0)
	log.SetPrefix("distenc: ")
	var (
		input    = flag.String("input", "", "COO tensor file (required)")
		output   = flag.String("output", ".", "directory for factor matrices")
		rank     = flag.Int("rank", 10, "CP rank R")
		maxIter  = flag.Int("maxiter", 50, "maximum ADMM iterations")
		tol      = flag.Float64("tol", 1e-4, "convergence tolerance")
		lambda   = flag.Float64("lambda", 1e-2, "ℓ2 regularization λ")
		alpha    = flag.Float64("alpha", 1e-1, "auxiliary-information weight α")
		truncK   = flag.Int("trunck", 0, "Laplacian eigen truncation K (0 = exact)")
		seed     = flag.Uint64("seed", 1, "factor initialization seed")
		machines = flag.Int("machines", 4, "simulated machines (0 = serial solver)")
		verbose  = flag.Bool("v", false, "print per-iteration progress")
		nonneg   = flag.Bool("nonneg", false, "enforce the non-negativity constraint")
		predict  = flag.String("predict", "", "after training, predict the cells listed in this file (one \"i1 i2 … iN\" line each; \"-\" for stdin)")

		ckptEvery   = flag.Int("checkpoint-every", 0, "persist the solver state every N iterations to -checkpoint-dir (0 = off)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for solver checkpoints (required with -checkpoint-every; where -resume looks)")
		resume      = flag.Bool("resume", false, "resume from the latest checkpoint in -checkpoint-dir instead of starting fresh")
		backend     = flag.String("backend", "inproc", "execution backend: inproc (default, single process) or tcp (real worker processes; needs -machines > 0)")
		workerAddrs = flag.String("worker-addrs", "", "comma-separated addresses of running distenc-worker daemons, one per machine (default with -backend tcp: spawn workers by re-execing this binary)")

		faultSpec = flag.String("fault-plan", "", "seeded chaos schedule for the simulated cluster, e.g. \"seed=7,failprob=0.02,kill=1@5\" (needs -machines > 0; see distenc.ParseFaultPlan)")
		kernelStr = flag.String("kernel", "auto", "MTTKRP kernel: auto (per-partition cost model), fused, or spmv (needs -machines > 0)")
		wireStr   = flag.String("wire", "varint", "shuffle wire format: raw (u32+f64), varint (delta rows, lossless, default), or f32 (lossy values, f64 accumulation)")
		specSpec  = flag.String("speculation", "", "speculative execution for straggler mitigation: \"on\" for defaults or \"quantile=0.75,multiplier=1.5,min=10ms\" (needs -machines > 0; see distenc.ParseSpeculation)")

		traceOut = flag.String("trace", "", "write a Chrome-trace JSON (chrome://tracing, Perfetto) of every stage, task and driver span to this file (needs -machines > 0)")
		stageSum = flag.Bool("stage-summary", false, "print the per-stage timing/shuffle table and per-iteration phase breakdown after solving")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	sims := simFlags{}
	flag.Var(sims, "sim", "per-mode similarity file as MODE=FILE (repeatable)")
	flag.Parse()

	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	f, err := os.Open(*input)
	if err != nil {
		log.Fatal(err)
	}
	t, err := distenc.ReadCOO(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded tensor dims=%v nnz=%d", t.Dims, t.NNZ())

	var similarities []*distenc.Similarity
	if len(sims) > 0 {
		similarities = make([]*distenc.Similarity, t.Order())
		for mode, path := range sims {
			if mode >= t.Order() {
				log.Fatalf("similarity mode %d out of range for order-%d tensor", mode, t.Order())
			}
			sf, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			s, err := distenc.ReadSimilarity(sf)
			sf.Close()
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			if s.N != t.Dims[mode] {
				log.Fatalf("%s: %d nodes but mode %d has size %d", path, s.N, mode, t.Dims[mode])
			}
			similarities[mode] = s
			log.Printf("mode %d similarity: %d nodes, %d edges", mode, s.N, s.NumEdges())
		}
	}

	opt := distenc.Options{
		Rank: *rank, MaxIter: *maxIter, Tol: *tol,
		Lambda: *lambda, Alpha: *alpha, TruncK: *truncK, Seed: *seed,
		NonNegative:     *nonneg,
		CheckpointEvery: *ckptEvery,
		CheckpointDir:   *ckptDir,
	}
	if (*resume || *ckptEvery > 0) && *ckptDir == "" {
		log.Fatal("-resume and -checkpoint-every need -checkpoint-dir")
	}
	if *verbose {
		opt.OnIteration = func(p distenc.ConvergencePoint) {
			log.Printf("iter %3d: train RMSE %.6f, delta %.3g, %.2fs",
				p.Iter, p.TrainRMSE, p.MaxDelta, p.Elapsed.Seconds())
		}
	}

	var res *distenc.Result
	var c *distenc.Cluster
	if *machines <= 0 {
		if *backend != "inproc" {
			log.Fatal("-backend tcp needs the distributed solver (-machines > 0)")
		}
		if *traceOut != "" {
			log.Fatal("-trace needs the distributed solver (-machines > 0)")
		}
		if *faultSpec != "" {
			log.Fatal("-fault-plan needs the distributed solver (-machines > 0)")
		}
		if *specSpec != "" {
			log.Fatal("-speculation needs the distributed solver (-machines > 0)")
		}
		if *kernelStr != "auto" {
			log.Fatal("-kernel needs the distributed solver (-machines > 0)")
		}
		if *wireStr != "varint" {
			log.Fatal("-wire needs the distributed solver (-machines > 0)")
		}
		if *resume {
			res, err = distenc.Resume(t, similarities, opt)
		} else {
			res, err = distenc.Complete(t, similarities, opt)
		}
	} else {
		var fault *distenc.FaultPlan
		if *faultSpec != "" {
			fault, err = distenc.ParseFaultPlan(*faultSpec)
			if err != nil {
				log.Fatal(err)
			}
		}
		var spec distenc.SpeculationConfig
		if *specSpec != "" {
			spec, err = distenc.ParseSpeculation(*specSpec)
			if err != nil {
				log.Fatal(err)
			}
		}
		kernel, err := distenc.ParseKernelMode(*kernelStr)
		if err != nil {
			log.Fatal(err)
		}
		wire, err := distenc.ParseWireFormat(*wireStr)
		if err != nil {
			log.Fatal(err)
		}
		var tp distenc.Transport
		switch *backend {
		case "inproc":
			if *workerAddrs != "" {
				log.Fatal("-worker-addrs needs -backend tcp")
			}
		case "tcp":
			var tcp *distenc.TCPTransport
			if *workerAddrs != "" {
				addrs := strings.Split(*workerAddrs, ",")
				if len(addrs) != *machines {
					log.Fatalf("-worker-addrs lists %d workers for %d machines", len(addrs), *machines)
				}
				tcp, err = distenc.DialTCPWorkers(addrs, distenc.TransportOptions{})
			} else {
				tcp, err = distenc.StartTCPWorkers(*machines, distenc.TransportOptions{})
			}
			if err != nil {
				log.Fatal(err)
			}
			defer tcp.Close() // after c.Close (LIFO): the cluster drops blocks first
			tp = tcp
			log.Printf("tcp backend: %d workers at %v", *machines, tcp.Addrs())
		default:
			log.Fatalf("unknown -backend %q (want inproc or tcp)", *backend)
		}
		// Per-task records cost memory proportional to task count, so the
		// engine only keeps them when a trace was asked for; the per-stage
		// rollups behind -stage-summary are always on.
		c, err = distenc.NewCluster(distenc.ClusterConfig{
			Machines:    *machines,
			TaskTrace:   *traceOut != "",
			Fault:       fault,
			Speculation: spec,
			Transport:   tp,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		dopt := distenc.DistOptions{Options: opt, Kernel: kernel, Wire: wire}
		if *resume {
			res, err = distenc.ResumeDistributed(c, t, similarities, dopt)
		} else {
			res, err = distenc.CompleteDistributed(c, t, similarities, dopt)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	final, _ := res.Trace.Final()
	log.Printf("finished: %d iterations, converged=%v, train RMSE %.6f, %.2fs",
		res.Iters, res.Converged, final.TrainRMSE, res.Elapsed.Seconds())
	if *verbose {
		fmt.Print(res.Trace)
	}
	if *stageSum {
		if c != nil {
			fmt.Print(c.Summary())
		}
		fmt.Print(res.Phases)
	}
	if *traceOut != "" && c != nil {
		tf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.WriteChromeTrace(tf); err != nil {
			log.Fatal(err)
		}
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)", *traceOut)
	}
	if *memProf != "" {
		mf, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			log.Fatal(err)
		}
		if err := mf.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if err := os.MkdirAll(*output, 0o755); err != nil {
		log.Fatal(err)
	}
	for n, fmat := range res.Model.Factors {
		path := filepath.Join(*output, fmt.Sprintf("factors-mode%d.txt", n))
		out, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < fmat.Rows(); i++ {
			row := fmat.Row(i)
			for j, v := range row {
				if j > 0 {
					fmt.Fprint(out, " ")
				}
				fmt.Fprintf(out, "%g", v)
			}
			fmt.Fprintln(out)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d×%d)", path, fmat.Rows(), fmat.Cols())
	}

	if *predict != "" {
		if err := predictCells(*predict, t.Order(), t.Dims, res); err != nil {
			log.Fatal(err)
		}
	}
}

// predictCells reads one multi-index per line (through the serving plane's
// hardened cell reader: 8MB line budget, line-numbered errors) and prints
// the model's prediction for each cell. Output is buffered and the flush
// error checked, so a closed or full stdout fails the run instead of
// silently truncating predictions.
func predictCells(path string, order int, dims []int, res *distenc.Result) error {
	var in *os.File
	if path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	out := bufio.NewWriter(os.Stdout)
	err := serve.ForEachCell(in, order, func(line int, idx []int32) error {
		for i, v := range idx {
			if int(v) >= dims[i] {
				return fmt.Errorf("predict line %d: index %d out of range for mode %d (size %d)", line, v, i, dims[i])
			}
		}
		for i, v := range idx {
			if i > 0 {
				fmt.Fprint(out, " ")
			}
			fmt.Fprint(out, v)
		}
		_, werr := fmt.Fprintf(out, " %g\n", res.Model.At(idx))
		return werr
	})
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	return err
}
