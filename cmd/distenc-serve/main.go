// Command distenc-serve is the completion-as-a-service daemon: it loads
// finished solver checkpoints (solver.ckpt images) into a model registry
// and answers entry-reconstruction queries x̂(i1,…,iN) = Σ_r Π_n A(n)[i_n,r]
// over a length-prefixed binary protocol, with an HTTP/JSON admin plane for
// loading, hot-swapping, and dropping models at runtime.
//
// Usage:
//
//	distenc-serve -listen :7415 -admin :7416 \
//	    -model ratings=ckpt/solver.ckpt -data ratings=ratings.coo \
//	    -cache-rows 4096 -refresh-every 10m
//
// Each -model NAME=CKPT registers one model at startup; more can be loaded
// (or hot-swapped) later via POST /models/{name} on the admin plane. A
// -data NAME=COO pairing names the observation file backing the model:
// with -refresh-every set, the daemon periodically re-reads it and
// warm-starts the solver for a few more iterations, folding appended
// observations into the served factors and swapping the refreshed model in
// atomically — in-flight batches always see one consistent generation.
//
// Admin endpoints: GET /healthz, GET /models, POST /models/{name} (body
// {"checkpoint": path, "data": path}), DELETE /models/{name},
// POST /models/{name}/predict (text cells in, JSON out), GET /stats
// (?format=text for a table), POST /refresh.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, then the
// process exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distenc"
	"distenc/internal/serve"
	"distenc/internal/sptensor"
)

// pairFlags collects repeatable NAME=PATH flags.
type pairFlags map[string]string

func (p pairFlags) String() string { return fmt.Sprint(map[string]string(p)) }

func (p pairFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want NAME=PATH, got %q", v)
	}
	p[name] = path
	return nil
}

func readTensor(path string) (*sptensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return distenc.ReadCOO(f)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("distenc-serve: ")
	var (
		listen       = flag.String("listen", "127.0.0.1:7415", "predict-plane TCP address")
		admin        = flag.String("admin", "127.0.0.1:7416", "HTTP admin-plane address (empty disables)")
		cacheRows    = flag.Int("cache-rows", 4096, "per-model LRU capacity of hot factor rows (0 disables)")
		refreshEvery = flag.Duration("refresh-every", 0, "period of the online-refresh loop (0 disables); models need a -data file to refresh")
		refreshIters = flag.Int("refresh-iters", 1, "extra ADMM iterations per refresh")
		refreshMach  = flag.Int("refresh-machines", 2, "in-process cluster width for refresh warm-starts")
	)
	models := pairFlags{}
	data := pairFlags{}
	flag.Var(models, "model", "model to serve as NAME=CHECKPOINT (repeatable)")
	flag.Var(data, "data", "observation COO file backing a model as NAME=FILE (repeatable; enables refresh for NAME)")
	flag.Parse()

	for name := range data {
		if _, ok := models[name]; !ok {
			log.Fatalf("-data %s=... names a model with no -model %s=... flag", name, name)
		}
	}

	reg := serve.NewRegistry()
	for name, ckpt := range models {
		m, err := serve.LoadModel(name, ckpt, data[name], *cacheRows)
		if err != nil {
			log.Fatal(err)
		}
		reg.Put(m)
		log.Printf("loaded %q from %s: dims=%v rank=%d iter=%d", name, ckpt, m.Dims(), m.Rank(), m.Iter)
	}

	srv, err := serve.NewServer(reg, serve.Config{
		Listen:    *listen,
		Admin:     *admin,
		CacheRows: *cacheRows,
		Refresh: serve.RefreshConfig{
			Every:      *refreshEvery,
			Iters:      *refreshIters,
			Machines:   *refreshMach,
			ReadTensor: readTensor,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("predict plane on %s", srv.Addr())
	if a := srv.AdminAddr(); a != "" {
		log.Printf("admin plane on http://%s", a)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	//distenc:goroutine-owned-by done-channel -- main blocks on done (or a signal, after which it drains the server and waits for Serve to return via the same channel)
	go func() { done <- srv.Serve() }()

	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case sig := <-sigs:
		log.Printf("%s: draining", sig)
		start := time.Now()
		srv.Shutdown()
		<-done
		log.Printf("drained in %s", time.Since(start).Round(time.Millisecond))
	}
}
