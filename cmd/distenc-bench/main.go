// Command distenc-bench runs the paper-reproduction experiment suite: one
// driver per table and figure of the evaluation section (see DESIGN.md §4
// for the experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	distenc-bench                 # run everything at full scale
//	distenc-bench -exp fig3a      # one experiment
//	distenc-bench -small          # seconds-scale smoke profile
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"distenc/internal/bench"
	"distenc/internal/core"
	"distenc/internal/rdd"
	"distenc/internal/transport"
)

var experiments = []struct {
	name string
	desc string
	run  func(w io.Writer, p bench.Profile)
}{
	{"table2", "Table II dataset inventory", func(w io.Writer, p bench.Profile) { bench.TableII(w, p) }},
	{"fig3a", "Figure 3a runtime vs dimensionality", func(w io.Writer, p bench.Profile) { bench.Fig3a(w, p) }},
	{"fig3b", "Figure 3b runtime vs non-zeros", func(w io.Writer, p bench.Profile) { bench.Fig3b(w, p) }},
	{"fig3c", "Figure 3c runtime vs rank", func(w io.Writer, p bench.Profile) { bench.Fig3c(w, p) }},
	{"fig4", "Figure 4 machine scalability", func(w io.Writer, p bench.Profile) { bench.Fig4(w, p) }},
	{"fig5", "Figure 5 reconstruction error", func(w io.Writer, p bench.Profile) { bench.Fig5(w, p) }},
	{"fig6a", "Figure 6a recommender RMSE", func(w io.Writer, p bench.Profile) { bench.Fig6a(w, p) }},
	{"fig6b", "Figure 6b convergence rate", func(w io.Writer, p bench.Profile) { bench.Fig6b(w, p) }},
	{"fig7", "Figure 7 link prediction", func(w io.Writer, p bench.Profile) { bench.Fig7(w, p) }},
	{"table3", "Table III concept discovery", func(w io.Writer, p bench.Profile) { bench.TableIII(w, p) }},
	{"lemmas", "Lemmas 1–3 accounting", func(w io.Writer, p bench.Profile) { bench.Lemmas(w, p) }},
	{"ablations", "§III design-choice ablations", func(w io.Writer, p bench.Profile) { bench.Ablations(w, p) }},
	{"kernels", "MTTKRP kernel & wire-format matrix", func(w io.Writer, p bench.Profile) { bench.Kernels(w, p) }},
	{"phases", "per-iteration phase breakdown", func(w io.Writer, p bench.Profile) { bench.Phases(w, p) }},
	{"serve", "serving-plane QPS/latency (writes BENCH_serve.json)", func(w io.Writer, p bench.Profile) { bench.Serve(w, p) }},
}

func main() {
	// Must run before anything else: with -backend tcp each experiment
	// cluster re-execs this binary as its worker processes.
	transport.WorkerHook()

	log.SetFlags(0)
	var (
		exp       = flag.String("exp", "all", "experiment to run (all, "+names()+")")
		backendF  = flag.String("backend", "inproc", "execution backend: inproc (default) or tcp (one worker process per simulated machine)")
		small     = flag.Bool("small", false, "seconds-scale smoke profile")
		seed      = flag.Uint64("seed", 1, "workload seed")
		machines  = flag.Int("machines", 4, "simulated machines for non-scalability experiments")
		traceOut  = flag.String("trace", "", "write a Chrome-trace JSON of the phases experiment's run to this file")
		stageSum  = flag.Bool("stage-summary", false, "print the per-stage engine table in the phases experiment")
		faultSpec = flag.String("fault-plan", "", "seeded chaos schedule for the phases experiment's cluster, e.g. \"seed=7,failprob=0.02,kill=1@5\"")
		specSpec  = flag.String("speculation", "", "speculative execution for the phases experiment's cluster: \"on\" or \"quantile=0.75,multiplier=1.5,min=10ms\"")
		kernelStr = flag.String("kernel", "auto", "MTTKRP kernel for DisTenC runs: auto, fused, or spmv")
		wireStr   = flag.String("wire", "varint", "shuffle wire format for DisTenC runs: raw, varint, or f32")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		mf, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			log.Fatal(err)
		}
		if err := mf.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	kernel, err := core.ParseKernelMode(*kernelStr)
	if err != nil {
		log.Fatal(err)
	}
	wire, err := rdd.ParseWireFormat(*wireStr)
	if err != nil {
		log.Fatal(err)
	}
	p := bench.Profile{
		Small: *small, Seed: *seed, Machines: *machines,
		TraceFile: *traceOut, StageSummary: *stageSum,
		Kernel: kernel, Wire: wire, Backend: *backendF,
	}
	if *faultSpec != "" {
		fault, err := rdd.ParseFaultPlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		p.Fault = fault
	}
	if *specSpec != "" {
		spec, err := rdd.ParseSpeculation(*specSpec)
		if err != nil {
			log.Fatal(err)
		}
		p.Speculation = spec
	}
	ran := 0
	start := time.Now()
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		t0 := time.Now()
		e.run(os.Stdout, p)
		fmt.Printf("[%s done in %.1fs]\n", e.name, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q (want all, %s)", *exp, names())
	}
	fmt.Printf("\nsuite finished: %d experiment(s) in %.1fs\n", ran, time.Since(start).Seconds())
}

func names() string {
	var ns []string
	for _, e := range experiments {
		ns = append(ns, e.name)
	}
	return strings.Join(ns, ", ")
}
