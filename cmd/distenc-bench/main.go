// Command distenc-bench runs the paper-reproduction experiment suite: one
// driver per table and figure of the evaluation section (see DESIGN.md §4
// for the experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	distenc-bench                 # run everything at full scale
//	distenc-bench -exp fig3a      # one experiment
//	distenc-bench -small          # seconds-scale smoke profile
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"distenc/internal/bench"
)

var experiments = []struct {
	name string
	desc string
	run  func(w io.Writer, p bench.Profile)
}{
	{"table2", "Table II dataset inventory", func(w io.Writer, p bench.Profile) { bench.TableII(w, p) }},
	{"fig3a", "Figure 3a runtime vs dimensionality", func(w io.Writer, p bench.Profile) { bench.Fig3a(w, p) }},
	{"fig3b", "Figure 3b runtime vs non-zeros", func(w io.Writer, p bench.Profile) { bench.Fig3b(w, p) }},
	{"fig3c", "Figure 3c runtime vs rank", func(w io.Writer, p bench.Profile) { bench.Fig3c(w, p) }},
	{"fig4", "Figure 4 machine scalability", func(w io.Writer, p bench.Profile) { bench.Fig4(w, p) }},
	{"fig5", "Figure 5 reconstruction error", func(w io.Writer, p bench.Profile) { bench.Fig5(w, p) }},
	{"fig6a", "Figure 6a recommender RMSE", func(w io.Writer, p bench.Profile) { bench.Fig6a(w, p) }},
	{"fig6b", "Figure 6b convergence rate", func(w io.Writer, p bench.Profile) { bench.Fig6b(w, p) }},
	{"fig7", "Figure 7 link prediction", func(w io.Writer, p bench.Profile) { bench.Fig7(w, p) }},
	{"table3", "Table III concept discovery", func(w io.Writer, p bench.Profile) { bench.TableIII(w, p) }},
	{"lemmas", "Lemmas 1–3 accounting", func(w io.Writer, p bench.Profile) { bench.Lemmas(w, p) }},
	{"ablations", "§III design-choice ablations", func(w io.Writer, p bench.Profile) { bench.Ablations(w, p) }},
}

func main() {
	log.SetFlags(0)
	var (
		exp      = flag.String("exp", "all", "experiment to run (all, "+names()+")")
		small    = flag.Bool("small", false, "seconds-scale smoke profile")
		seed     = flag.Uint64("seed", 1, "workload seed")
		machines = flag.Int("machines", 4, "simulated machines for non-scalability experiments")
	)
	flag.Parse()

	p := bench.Profile{Small: *small, Seed: *seed, Machines: *machines}
	ran := 0
	start := time.Now()
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		t0 := time.Now()
		e.run(os.Stdout, p)
		fmt.Printf("[%s done in %.1fs]\n", e.name, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q (want all, %s)", *exp, names())
	}
	fmt.Printf("\nsuite finished: %d experiment(s) in %.1fs\n", ran, time.Since(start).Seconds())
}

func names() string {
	var ns []string
	for _, e := range experiments {
		ns = append(ns, e.name)
	}
	return strings.Join(ns, ", ")
}
