// Command distenc-worker is a standalone block-store worker for the TCP
// execution backend. A driver started with -backend tcp connects to one
// worker per simulated machine; shuffle buckets and broadcast replicas live
// in the worker's memory (and die with it), checkpoint blocks are fsynced to
// its data directory.
//
// Usage:
//
//	distenc-worker [-listen 127.0.0.1:0] [-data DIR]
//
// The worker prints "DISTENC-WORKER LISTEN host:port" on stdout once it is
// accepting, so callers that asked for port 0 learn the bound address. It
// drains gracefully on SIGTERM/SIGINT.
package main

import (
	"flag"
	"fmt"
	"os"

	"distenc/internal/transport"
)

func main() {
	// When re-execed by transport.StartWorkers the environment, not the
	// flags, configures the worker.
	transport.WorkerHook()

	listen := flag.String("listen", "127.0.0.1:0", "address to listen on (port 0 picks an ephemeral port)")
	data := flag.String("data", "", "directory for durable checkpoint blocks (default: a fresh temp dir)")
	flag.Parse()

	dataDir := *data
	if dataDir == "" {
		d, err := os.MkdirTemp("", "distenc-worker-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "distenc-worker:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(d)
		dataDir = d
	}
	if err := transport.RunWorker(*listen, dataDir, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distenc-worker:", err)
		os.Exit(1)
	}
}
