// Command distenc-lint runs the repo's engine-invariant analysis suite
// (rddcapture, hotalloc, bytecount, floatcmp, accadd, lockorder,
// goroutineowner, atomicfield).
//
// Two ways to invoke it:
//
//	go run ./cmd/distenc-lint ./...          # standalone, re-execs go vet
//	go vet -vettool=/path/to/distenc-lint ./...
//
// Pass -rddcapture, -hotalloc, -bytecount, -floatcmp, -accadd, -lockorder,
// -goroutineowner, or -atomicfield to run a subset.
package main

import (
	"distenc/internal/analysis"
	"distenc/internal/analysis/framework"
)

func main() {
	framework.Main(analysis.All()...)
}
