// Command distenc-gen writes the repository's synthetic workloads to COO
// text files (plus similarity files when the dataset has auxiliary
// information), so they can be fed to the distenc CLI or external tools.
//
// Usage:
//
//	distenc-gen -dataset netflix -out data/netflix
//	distenc-gen -dataset scalability -dims 1000,1000,1000 -nnz 100000 -out data/scal
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"distenc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("distenc-gen: ")
	var (
		dataset = flag.String("dataset", "scalability", "scalability, linear, netflix, twitter, facebook, dblp")
		out     = flag.String("out", "data", "output path prefix")
		dims    = flag.String("dims", "1000,1000,1000", "mode sizes (scalability/linear)")
		nnz     = flag.Int("nnz", 100_000, "number of observations")
		rank    = flag.Int("rank", 10, "planted rank")
		seed    = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	var ds *distenc.Dataset
	switch *dataset {
	case "scalability":
		t := distenc.GenerateScalability(parseDims(*dims), *nnz, *seed)
		ds = &distenc.Dataset{Name: "scalability", Tensor: t}
	case "linear":
		ds = distenc.GenerateLinearFactor(parseDims(*dims), *rank, *nnz, *seed)
	case "netflix":
		ds = distenc.GenerateNetflix(distenc.RecsysConfig{
			Users: 4800, Items: 1800, Contexts: 200, Rank: *rank, NNZ: *nnz, Noise: 0.25, Seed: *seed,
		})
	case "twitter":
		ds = distenc.GenerateTwitter(distenc.RecsysConfig{
			Users: 6400, Items: 6400, Contexts: 16, Rank: *rank, NNZ: *nnz, Noise: 0.15, Seed: *seed,
		})
	case "facebook":
		ds = distenc.GenerateFacebook(distenc.LinkPredConfig{
			Users: 6000, Days: 5, Rank: *rank, NNZ: *nnz, Noise: 0.1, Seed: *seed,
		})
	case "dblp":
		ds = distenc.GenerateDBLP(distenc.DBLPConfig{
			Authors: 3170, Papers: 3170, Venues: 629, Concepts: 10, Rank: *rank, NNZ: *nnz, Seed: *seed,
		})
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	cooPath := *out + ".coo"
	f, err := os.Create(cooPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := distenc.WriteCOO(f, ds.Tensor); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: dims=%v nnz=%d", cooPath, ds.Tensor.Dims, ds.Tensor.NNZ())

	for mode, s := range ds.Sims {
		if s == nil || s.NumEdges() == 0 {
			continue
		}
		simPath := fmt.Sprintf("%s-mode%d.sim", *out, mode)
		sf, err := os.Create(simPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := distenc.WriteSimilarity(sf, s); err != nil {
			log.Fatal(err)
		}
		if err := sf.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s: %d nodes, %d edges", simPath, s.N, s.NumEdges())
	}
}

func parseDims(s string) []int {
	parts := strings.Split(s, ",")
	dims := make([]int, len(parts))
	for i, p := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d <= 0 {
			log.Fatalf("bad dims %q", s)
		}
		dims[i] = d
	}
	return dims
}
