module distenc

go 1.24
