package distenc

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	ts := GenerateScalability([]int{30, 40, 50}, 500, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != ts.NNZ() || len(back.Dims) != 3 {
		t.Fatalf("round trip mangled shape: %v", back)
	}
	for e := 0; e < ts.NNZ(); e++ {
		// The codec must be lossless, so compare bit patterns, not values.
		if math.Float64bits(back.Val[e]) != math.Float64bits(ts.Val[e]) {
			t.Fatalf("value %d mismatch", e)
		}
		a, b := ts.Index(e), back.Index(e)
		for m := range a {
			if a[m] != b[m] {
				t.Fatalf("index %d mode %d mismatch", e, m)
			}
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		ts := GenerateScalability([]int{5 + int(n%20), 7, 9}, 1+int(n), seed)
		var buf bytes.Buffer
		if WriteBinary(&buf, ts) != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil || back.NNZ() != ts.NNZ() {
			return false
		}
		// Bit-exact round trip implies bit-identical norms.
		return math.Float64bits(back.NormF()) == math.Float64bits(ts.NormF())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("DTZ1"),                           // truncated after magic
		append([]byte("DTZ1"), 0, 0, 0, 0),       // order 0
		append([]byte("DTZ1"), 0xFF, 0xFF, 0, 0), // huge order
		append([]byte("DTZ1"), 2, 0, 0, 0, 0, 0, 0), // truncated dims
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Out-of-range index payload must fail Validate.
	ts := NewTensor(2, 2)
	ts.Append([]int32{1, 1}, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ts); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the first index to 9 (little-endian int32 right after header:
	// 4 magic + 4 order + 16 dims + 8 nnz = 32).
	raw[32] = 9
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("corrupted payload accepted: %v", err)
	}
}
