package distenc

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestFacadeCompleteRoundTrip(t *testing.T) {
	d := GenerateLinearFactor([]int{20, 20, 20}, 3, 2000, 1)
	rng := rand.New(rand.NewPCG(2, 2))
	train, test := d.Tensor.Split(0.3, rng)
	res, err := Complete(train, d.Sims, Options{Rank: 4, MaxIter: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if re := RelativeError(test, res.Model); re > 0.25 {
		t.Fatalf("relative error %v", re)
	}
	if RMSE(test, res.Model) <= 0 {
		t.Fatal("RMSE should be positive on noisy held-out data")
	}
}

func TestFacadeDistributed(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d := GenerateLinearFactor([]int{15, 15, 15}, 2, 1000, 4)
	res, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: Options{Rank: 3, MaxIter: 5, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 0 {
		t.Fatal("no iterations ran")
	}
}

func TestCOORoundTrip(t *testing.T) {
	ts := NewTensor(4, 5, 6)
	ts.Append([]int32{1, 2, 3}, 2.5)
	ts.Append([]int32{0, 0, 0}, -1.25)
	var buf bytes.Buffer
	if err := WriteCOO(&buf, ts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCOO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 2 || back.Dims[2] != 6 {
		t.Fatalf("round trip mangled: %v", back)
	}
	if back.Val[0] != 2.5 || back.Val[1] != -1.25 {
		t.Fatalf("values = %v", back.Val)
	}
}

func TestReadCOOErrors(t *testing.T) {
	cases := []string{
		"",                          // empty
		"1 2 3 4\n",                 // missing header
		"dims 0 3\n",                // bad dim
		"dims 3 3\n1 2\n",           // short entry
		"dims 3 3\n5 0 1.0\n",       // index out of range
		"dims 3 3\n1 1 notanum\n",   // bad value
		"dims 3 3\n# only comment1", // header then nothing is fine? no entries is fine
	}
	for i, c := range cases[:6] {
		if _, err := ReadCOO(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error for %q", i, c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# comment\n\ndims 2 2\n0 1 3.5\n"
	ts, err := ReadCOO(strings.NewReader(ok))
	if err != nil || ts.NNZ() != 1 {
		t.Fatalf("comment case failed: %v %v", ts, err)
	}
}

func TestSimilarityRoundTrip(t *testing.T) {
	s := NewSimilarity(5)
	s.AddEdge(0, 1, 1)
	s.AddEdge(3, 4, 2.5)
	var buf bytes.Buffer
	if err := WriteSimilarity(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSimilarity(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 5 || back.NumEdges() != 2 {
		t.Fatalf("round trip mangled: %+v", back)
	}
}

func TestReadSimilarityErrors(t *testing.T) {
	cases := []string{
		"",
		"0 1 1\n",
		"nodes x\n",
		"nodes 3\n0 1\n",
		"nodes 3\n0 9 1\n",
		"nodes 3\n1 1 1\n",
		"nodes 3\na b c\n",
	}
	for i, c := range cases {
		if _, err := ReadSimilarity(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error for %q", i, c)
		}
	}
}

func TestTriDiagonalSimilarityFacade(t *testing.T) {
	s := TriDiagonalSimilarity(4)
	if s.NumEdges() != 3 {
		t.Fatalf("edges = %d", s.NumEdges())
	}
}

func TestGeneratorsExposed(t *testing.T) {
	if ts := GenerateScalability([]int{10, 10, 10}, 50, 1); ts.NNZ() == 0 {
		t.Fatal("scalability generator empty")
	}
	if d := GenerateNetflix(RecsysConfig{Users: 20, Items: 20, Contexts: 4, Rank: 2, NNZ: 100, Seed: 1}); d.Tensor.NNZ() == 0 {
		t.Fatal("netflix generator empty")
	}
	if d := GenerateFacebook(LinkPredConfig{Users: 20, Days: 3, Rank: 2, NNZ: 100, Seed: 1}); d.Tensor.NNZ() == 0 {
		t.Fatal("facebook generator empty")
	}
	if d := GenerateDBLP(DBLPConfig{Authors: 20, Papers: 20, Venues: 8, Concepts: 2, Rank: 2, NNZ: 100, Seed: 1}); d.Tensor.NNZ() == 0 {
		t.Fatal("dblp generator empty")
	}
	if d := GenerateTwitter(RecsysConfig{Users: 20, Items: 20, Contexts: 4, Rank: 2, NNZ: 100, Seed: 1}); d.Tensor.NNZ() == 0 {
		t.Fatal("twitter generator empty")
	}
}

// Property: COO text round trip preserves every entry exactly.
func TestCOORoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		ts := GenerateScalability([]int{4 + int(n%9), 6, 8}, 1+int(n%50), seed)
		var buf bytes.Buffer
		if WriteCOO(&buf, ts) != nil {
			return false
		}
		back, err := ReadCOO(&buf)
		if err != nil || back.NNZ() != ts.NNZ() {
			return false
		}
		for e := 0; e < ts.NNZ(); e++ {
			// "Exactly" means the printed-and-reparsed float is bit-identical.
			if math.Float64bits(back.Val[e]) != math.Float64bits(ts.Val[e]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
