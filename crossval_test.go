package distenc

import (
	"testing"
)

func TestCrossValidateRankPicksReasonableRank(t *testing.T) {
	// Planted rank 3: cross-validation should not pick a wildly larger rank
	// and must score every candidate.
	d := GenerateLinearFactor([]int{20, 20, 20}, 3, 3_000, 41)
	results, best, err := CrossValidateRank(d.Tensor, d.Sims,
		Options{MaxIter: 20, Seed: 42}, []int{1, 3, 8}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	scores := map[int]float64{}
	for _, r := range results {
		if r.MeanRMSE < 0 {
			t.Fatalf("negative RMSE: %+v", r)
		}
		scores[r.Rank] = r.MeanRMSE
	}
	// Rank 1 underfits a rank-3 truth; the winner must beat it.
	if scores[best] > scores[1] {
		t.Fatalf("best rank %d (%.4f) worse than rank 1 (%.4f)", best, scores[best], scores[1])
	}
}

func TestCrossValidateRankValidation(t *testing.T) {
	d := GenerateLinearFactor([]int{10, 10, 10}, 2, 300, 43)
	if _, _, err := CrossValidateRank(d.Tensor, nil, Options{}, []int{2}, 1, 1); err == nil {
		t.Fatal("folds < 2 must fail")
	}
	if _, _, err := CrossValidateRank(d.Tensor, nil, Options{}, nil, 3, 1); err == nil {
		t.Fatal("no ranks must fail")
	}
	tiny := NewTensor(5, 5)
	tiny.Append([]int32{0, 0}, 1)
	if _, _, err := CrossValidateRank(tiny, nil, Options{}, []int{2}, 3, 1); err == nil {
		t.Fatal("too few observations must fail")
	}
}

func TestFoldSplitPartitions(t *testing.T) {
	ts := NewTensor(10, 10)
	for i := int32(0); i < 10; i++ {
		ts.Append([]int32{i, i}, float64(i))
	}
	assign := foldAssignments(ts.NNZ(), 3, 5)
	total := 0
	for f := 0; f < 3; f++ {
		train, test := foldSplit(ts, assign, f)
		if train.NNZ()+test.NNZ() != ts.NNZ() {
			t.Fatal("fold split lost entries")
		}
		total += test.NNZ()
	}
	if total != ts.NNZ() {
		t.Fatalf("folds cover %d entries, want %d", total, ts.NNZ())
	}
}
