package distenc

import (
	"math"
	"testing"
)

func TestCrossValidateRankPicksReasonableRank(t *testing.T) {
	// Planted rank 3: cross-validation should not pick a wildly larger rank
	// and must score every candidate.
	d := GenerateLinearFactor([]int{20, 20, 20}, 3, 3_000, 41)
	results, best, err := CrossValidateRank(d.Tensor, d.Sims,
		Options{MaxIter: 20, Seed: 42}, []int{1, 3, 8}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	scores := map[int]float64{}
	for _, r := range results {
		if r.MeanRMSE < 0 {
			t.Fatalf("negative RMSE: %+v", r)
		}
		scores[r.Rank] = r.MeanRMSE
	}
	// Rank 1 underfits a rank-3 truth; the winner must beat it.
	if scores[best] > scores[1] {
		t.Fatalf("best rank %d (%.4f) worse than rank 1 (%.4f)", best, scores[best], scores[1])
	}
}

func TestCrossValidateRankValidation(t *testing.T) {
	d := GenerateLinearFactor([]int{10, 10, 10}, 2, 300, 43)
	if _, _, err := CrossValidateRank(d.Tensor, nil, Options{}, []int{2}, 1, 1); err == nil {
		t.Fatal("folds < 2 must fail")
	}
	if _, _, err := CrossValidateRank(d.Tensor, nil, Options{}, nil, 3, 1); err == nil {
		t.Fatal("no ranks must fail")
	}
	tiny := NewTensor(5, 5)
	tiny.Append([]int32{0, 0}, 1)
	if _, _, err := CrossValidateRank(tiny, nil, Options{}, []int{2}, 3, 1); err == nil {
		t.Fatal("too few observations must fail")
	}
}

// A NaN mean (a diverged fold) must not poison the min-selection: before the
// fix, a NaN encountered first made every later `mean < best` comparison
// false, so the broken candidate "won".
func TestSelectBestRankSkipsNonFinite(t *testing.T) {
	got, err := selectBestRank([]CVResult{
		{Rank: 2, MeanRMSE: math.NaN()},
		{Rank: 4, MeanRMSE: 0.8},
		{Rank: 8, MeanRMSE: math.Inf(1)},
		{Rank: 16, MeanRMSE: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("selectBestRank = %d, want 4", got)
	}
	if _, err := selectBestRank([]CVResult{
		{Rank: 2, MeanRMSE: math.NaN()},
		{Rank: 4, MeanRMSE: math.Inf(1)},
	}); err == nil {
		t.Fatal("all-non-finite candidates must error, not return rank 0")
	}
}

// The shuffled round-robin deal must leave no fold empty and keep sizes
// within one of each other — independent uniform draws could empty a fold on
// small tensors, and an empty fold's RMSE of 0 skews model selection.
func TestFoldAssignmentsBalanced(t *testing.T) {
	for _, tc := range []struct{ nnz, folds int }{
		{10, 3}, {11, 10}, {100, 7}, {30, 30},
	} {
		for seed := uint64(0); seed < 5; seed++ {
			assign := foldAssignments(tc.nnz, tc.folds, seed)
			counts := make([]int, tc.folds)
			for _, f := range assign {
				counts[f]++
			}
			lo, hi := tc.nnz, 0
			for f, n := range counts {
				if n == 0 {
					t.Fatalf("nnz=%d folds=%d seed=%d: fold %d empty", tc.nnz, tc.folds, seed, f)
				}
				lo, hi = min(lo, n), max(hi, n)
			}
			if hi-lo > 1 {
				t.Fatalf("nnz=%d folds=%d seed=%d: fold sizes spread %d..%d", tc.nnz, tc.folds, seed, lo, hi)
			}
		}
	}
	// Different seeds must deal differently (it is a shuffle, not a fixed
	// striping that would correlate folds with storage order).
	a := foldAssignments(50, 5, 1)
	b := foldAssignments(50, 5, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("fold deal ignores the seed")
	}
}

func TestFoldSplitPartitions(t *testing.T) {
	ts := NewTensor(10, 10)
	for i := int32(0); i < 10; i++ {
		ts.Append([]int32{i, i}, float64(i))
	}
	assign := foldAssignments(ts.NNZ(), 3, 5)
	total := 0
	for f := 0; f < 3; f++ {
		train, test := foldSplit(ts, assign, f)
		if train.NNZ()+test.NNZ() != ts.NNZ() {
			t.Fatal("fold split lost entries")
		}
		total += test.NNZ()
	}
	if total != ts.NNZ() {
		t.Fatalf("folds cover %d entries, want %d", total, ts.NNZ())
	}
}
