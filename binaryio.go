package distenc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary tensor format ("DTZ1"): a compact fixed-layout encoding for large
// tensors where the COO text format is too slow to parse.
//
//	magic   [4]byte  "DTZ1"
//	order   uint32
//	dims    order × uint64
//	nnz     uint64
//	indices nnz × order × int32 (little endian)
//	values  nnz × float64 (IEEE 754 bits, little endian)

var dtzMagic = [4]byte{'D', 'T', 'Z', '1'}

// WriteBinary writes t in the DTZ1 binary format.
func WriteBinary(w io.Writer, t *Tensor) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(dtzMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(t.Order())); err != nil {
		return err
	}
	for _, d := range t.Dims {
		if err := binary.Write(bw, binary.LittleEndian, uint64(d)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.NNZ())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Idx); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Val); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the DTZ1 binary format and validates the result.
func ReadBinary(r io.Reader) (*Tensor, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("distenc: reading magic: %w", err)
	}
	if magic != dtzMagic {
		return nil, fmt.Errorf("distenc: bad magic %q, want %q", magic, dtzMagic)
	}
	var order uint32
	if err := binary.Read(br, binary.LittleEndian, &order); err != nil {
		return nil, err
	}
	if order == 0 || order > 16 {
		return nil, fmt.Errorf("distenc: implausible tensor order %d", order)
	}
	dims := make([]int, order)
	for i := range dims {
		var d uint64
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		if d == 0 || d > math.MaxInt32 {
			return nil, fmt.Errorf("distenc: implausible dimension %d", d)
		}
		dims[i] = int(d)
	}
	var nnz uint64
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, err
	}
	const maxNNZ = 1 << 33
	if nnz > maxNNZ {
		return nil, fmt.Errorf("distenc: implausible nnz %d", nnz)
	}
	t := NewTensor(dims...)
	t.Idx = make([]int32, int(nnz)*int(order))
	t.Val = make([]float64, nnz)
	if err := binary.Read(br, binary.LittleEndian, t.Idx); err != nil {
		return nil, fmt.Errorf("distenc: reading indices: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, t.Val); err != nil {
		return nil, fmt.Errorf("distenc: reading values: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("distenc: binary tensor invalid: %w", err)
	}
	return t, nil
}
