#!/usr/bin/env bash
# bench_compare.sh — mechanical perf-regression gate.
#
# Runs the MTTKRP benchmarks and diffs them against the recorded baseline in
# BENCH_mttkrp.json. Fails when
#   - min ns/op across runs exceeds the baseline median by more than
#     BENCH_TOL_PCT percent (default 25), or
#   - allocs/op exceeds the baseline at all (allocation counts are exact and
#     deterministic; any growth is a real regression — the SteadyState
#     benchmarks must stay at exactly 0).
#
# The min-of-N statistic is deliberate: wall-clock noise on a shared host is
# one-sided (interference slows runs, never speeds them), so the fastest of N
# runs is the stable estimate of the code's true cost while the median drifts
# with machine load.
#
# Usage: scripts/bench_compare.sh [-short]
#   -short  CI smoke mode: 3 runs instead of 5, so the gate stays under a
#           minute. The default benchtime is kept even here: these benchmarks
#           are a few ms/op, and a capped -benchtime=Nx would under-amortize
#           the one-time arena warm-up and inflate allocs/op vs the baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

# The baseline was recorded on the in-process backend (nil Transport), and
# the benchmarks construct their own clusters the same way. Scrub any worker
# env a caller's shell might carry: with DISTENC_WORKER_LISTEN set, the test
# binary would turn into a TCP worker via WorkerHook instead of running the
# benchmarks, and the gate must measure the inproc hot path regardless of
# how it was invoked.
unset DISTENC_WORKER_LISTEN DISTENC_WORKER_DATA

COUNT=5
if [[ "${1:-}" == "-short" ]]; then
  COUNT=3
fi
TOL_PCT="${BENCH_TOL_PCT:-25}"

# Compile the benchmark binary once, then verify it is NOT race-instrumented
# before recording a single number: the race detector multiplies ns/op by
# 5-20x and adds allocations, so a GOFLAGS=-race environment (or a CI job
# that exports it for the test steps) would silently compare garbage against
# the baseline. Refuse rather than measure.
BIN=$(mktemp -t bench_core.XXXXXX)
trap 'rm -f "$BIN"' EXIT
go test -c -o "$BIN" ./internal/core/
if go version -m "$BIN" | grep -Eq 'build[[:space:]]+-race=true'; then
  echo "bench_compare: refusing to benchmark a race-instrumented binary" >&2
  echo "  (go version -m reports -race=true; unset GOFLAGS/-race and retry)" >&2
  exit 1
fi

OUT=$("$BIN" -test.run '^$' \
  -test.bench 'BenchmarkMTTKRPStage$|BenchmarkMTTKRPStageGrid$|BenchmarkMTTKRPSteadyState' \
  -test.benchmem -test.count "$COUNT")
echo "$OUT"
echo

echo "$OUT" | python3 -c '
import json, re, sys

tol = float(sys.argv[1]) / 100.0
base = json.load(open("BENCH_mttkrp.json"))["benchmarks"]

runs = {}
for line in sys.stdin:
    m = re.match(r"^(Benchmark\w+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+([\d.]+) B/op\s+(\d+) allocs/op", line)
    if m:
        name, ns, _, allocs = m.group(1), float(m.group(2)), m.group(3), int(m.group(4))
        runs.setdefault(name, []).append((ns, allocs))

if not runs:
    sys.exit("bench_compare: no benchmark lines parsed")

failed = False
for name, samples in sorted(runs.items()):
    if name not in base or "after" not in base[name]:
        print(f"  {name}: no baseline recorded, skipping")
        continue
    want = base[name]["after"]
    base_ns = want["ns_per_op_median"]
    base_allocs = want["allocs_per_op"]
    min_ns = min(ns for ns, _ in samples)
    max_allocs = max(a for _, a in samples)
    limit = base_ns * (1 + tol)
    ns_ok = min_ns <= limit
    # Zero-alloc baselines are an exact contract (the arena steady state);
    # nonzero baselines get +2 of slack because the stage benchmarks amortize
    # a one-time warm-up over b.N, which varies run to run.
    allowed = base_allocs if base_allocs == 0 else base_allocs + 2
    alloc_ok = max_allocs <= allowed
    status = "ok" if ns_ok and alloc_ok else "FAIL"
    print(f"  {name}: min {min_ns:.0f} ns/op (baseline median {base_ns}, limit {limit:.0f}), "
          f"allocs {max_allocs} (baseline {base_allocs}) ... {status}")
    if not ns_ok:
        print(f"    ns/op regression: min-of-{len(samples)} {min_ns:.0f} > {limit:.0f} (+{tol*100:.0f}% over baseline median)")
        failed = True
    if not alloc_ok:
        print(f"    allocs/op regression: {max_allocs} > baseline {base_allocs} (+slack)")
        failed = True

sys.exit(1 if failed else 0)
' "$TOL_PCT"
