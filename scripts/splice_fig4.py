#!/usr/bin/env python3
"""Replace the Figure 4 section of experiments_full.txt with a quieter rerun.

Figure 4's speedups are computed from per-task durations; on a 1-core host
they are only stable when nothing else competes for the CPU, so the harness
reruns `distenc-bench -exp fig4` alone and splices the section in.

Usage: splice_fig4.py experiments_full.txt fig4_only.txt
"""
import re
import sys


def main() -> None:
    full_path, fig4_path = sys.argv[1], sys.argv[2]
    full = open(full_path).read()
    fig4 = open(fig4_path).read()
    m = re.search(r"=== Figure 4.*?\[fig4 done in [0-9.]+s\]\n", fig4, re.S)
    if not m:
        raise SystemExit("no Figure 4 section in rerun output")
    spliced, n = re.subn(
        r"=== Figure 4.*?\[fig4 done in [0-9.]+s\]\n", m.group(0), full, flags=re.S
    )
    if n != 1:
        raise SystemExit(f"expected exactly one Figure 4 section, found {n}")
    open(full_path, "w").write(spliced)


if __name__ == "__main__":
    main()
