// Package baselines implements the four comparison methods of the paper's
// evaluation (§IV-A):
//
//   - ALS — distributed alternating least squares tensor completion (the
//     MPI/OpenMP method of Smith et al. [22]); coarse-grained: every machine
//     replicates all factor matrices each epoch.
//   - TFAI — single-machine tensor completion with auxiliary information
//     (Narita et al. [14]); naive: materializes the completed dense tensor
//     and the explicit Khatri-Rao product.
//   - SCouT — distributed coupled matrix-tensor factorization (Jeon et
//     al. [23]); fine-grained like DisTenC but designed for MapReduce.
//   - FlexiFact — distributed SGD-based coupled factorization (Beutel et
//     al. [10]) on MapReduce, with block-stratified sub-epochs.
//
// Each keeps the memory/communication profile that drives its behaviour in
// Figures 3–7: the point of a baseline here is not bug-for-bug fidelity to
// the original codebase but matching the asymptotics the paper's comparison
// turns on (see DESIGN.md §2).
package baselines

import (
	"fmt"
	"math"
	"time"

	"distenc/internal/core"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
)

// factorSet is a Sizer payload so broadcasts of factor matrices charge their
// true footprint without gob-encoding dense data.
type factorSet struct {
	fs []*mat.Dense
}

func (p factorSet) SizeBytes() int64 {
	var total int64
	for _, f := range p.fs {
		r, c := f.Dims()
		total += int64(r) * int64(c) * 8
	}
	return total
}

// ALS runs distributed alternating least squares tensor completion (EM
// flavor: missing entries are implicitly filled by the current model via the
// same residual identity DisTenC uses, which is the strongest fair version
// of the baseline). It ignores auxiliary information — the paper's ALS does
// not support it — and replicates the full factor set on every machine each
// iteration, the coarse-grained communication pattern that makes it fail at
// high dimensionality in Figure 3a.
func ALS(c *rdd.Cluster, t *sptensor.Tensor, opt core.Options) (*core.Result, error) {
	opt = opt.WithDefaults()
	layout := core.NewLayout(t, core.DistOptions{Options: opt, Partitions: c.Machines(), UniformPartition: true})
	blocks := layout.BlocksRDD(c)
	blocks.Cache()
	if err := blocks.Materialize(); err != nil {
		return nil, fmt.Errorf("baselines: ALS caching blocks: %w", err)
	}
	defer blocks.Unpersist()

	factors := core.InitFactors(t.Dims, opt.Rank, opt.Seed)
	core.ApplyInitScale(factors, t, opt)
	start := time.Now()
	var trace metrics.Trace
	converged := false
	iters := 0

	for iter := 0; iter < opt.MaxIter; iter++ {
		iters = iter + 1
		// Coarse-grained epoch: broadcast every factor matrix to every
		// machine. This is where ALS pays O(N·I·R) memory per machine and
		// O(M·N·I·R) network per epoch.
		bc, err := rdd.NewBroadcast(c, "als-factors", factorSet{fs: factors})
		if err != nil {
			return nil, fmt.Errorf("baselines: ALS factor replication: %w", err)
		}
		hs, residNorm2, err := core.MTTKRPStage(c, blocks, layout, bc.Value().fs, core.DistOptions{Options: opt})
		if err != nil {
			bc.Release()
			return nil, err
		}
		grams := make([]*mat.Dense, t.Order())
		for n, f := range factors {
			grams[n] = mat.Gram(f)
		}
		var maxDelta float64
		next := make([]*mat.Dense, t.Order())
		for n := range factors {
			fn := sptensor.GramProduct(grams, n)
			h := mat.Mul(factors[n], fn)
			h = mat.AddMat(h, hs[n])
			lhs := fn.Clone()
			for i := 0; i < lhs.Rows(); i++ {
				lhs.Add(i, i, opt.Lambda)
			}
			inv, err := mat.InverseSPD(lhs)
			if err != nil {
				bc.Release()
				return nil, fmt.Errorf("baselines: ALS normal equations: %w", err)
			}
			next[n] = mat.Mul(h, inv)
			d := mat.SubMat(next[n], factors[n]).NormF()
			maxDelta = math.Max(maxDelta, d*d)
		}
		factors = next
		bc.Release()

		point := metrics.ConvergencePoint{
			Iter:      iter,
			Elapsed:   time.Since(start),
			TrainRMSE: math.Sqrt(residNorm2 / float64(maxInt(1, t.NNZ()))),
			MaxDelta:  maxDelta,
		}
		trace = append(trace, point)
		if opt.OnIteration != nil {
			opt.OnIteration(point)
		}
		if maxDelta < opt.Tol {
			converged = true
			break
		}
	}
	return &core.Result{
		Model:     sptensor.NewKruskal(factors...),
		Iters:     iters,
		Converged: converged,
		Trace:     trace,
		Elapsed:   time.Since(start),
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
