package baselines

import (
	"errors"
	"math/rand/v2"
	"testing"

	"distenc/internal/core"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/rdd"
	"distenc/internal/synth"
)

func testCluster(t *testing.T, cfg rdd.Config) *rdd.Cluster {
	t.Helper()
	c := rdd.MustNewCluster(cfg)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestALSConvergesOnPlantedData(t *testing.T) {
	d := synth.LinearFactorDataset([]int{25, 25, 25}, 3, 4000, 1)
	rng := rand.New(rand.NewPCG(2, 2))
	train, test := d.Tensor.Split(0.3, rng)
	c := testCluster(t, rdd.Config{Machines: 3})
	res, err := ALS(c, train, core.Options{Rank: 5, MaxIter: 40, Tol: 1e-9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if re := metrics.RelativeError(test, res.Model); re > 0.2 {
		t.Fatalf("ALS relative error = %v", re)
	}
	first, last := res.Trace[0].TrainRMSE, res.Trace[len(res.Trace)-1].TrainRMSE
	if last >= first {
		t.Fatalf("ALS train RMSE did not decrease: %v -> %v", first, last)
	}
	if c.Metrics().BytesBroadcast.Load() == 0 {
		t.Fatal("ALS must broadcast full factor replicas")
	}
}

func TestALSOOMsOnFactorReplication(t *testing.T) {
	// Large dimensionality, tiny budget: the full-factor broadcast must
	// fail, reproducing ALS's Figure 3a behaviour.
	ts := synth.ScalabilityTensor([]int{20000, 20000, 20000}, 500, 4)
	c := testCluster(t, rdd.Config{Machines: 2, MemoryPerMachine: 1 << 20})
	_, err := ALS(c, ts, core.Options{Rank: 10, MaxIter: 2, Seed: 5})
	if !errors.Is(err, rdd.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

// TFAI is the same mathematics as the optimized serial solver; with the same
// seed their iterates must coincide, which validates both against each other.
func TestTFAIMatchesOptimizedSerial(t *testing.T) {
	d := synth.LinearFactorDataset([]int{12, 10, 8}, 2, 700, 6)
	opts := core.Options{Rank: 3, MaxIter: 6, Tol: 0, Seed: 7, Alpha: 0.5}
	c := testCluster(t, rdd.Config{Machines: 1})
	naive, err := TFAI(c, d.Tensor, d.Sims, opts)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := core.Complete(d.Tensor, d.Sims, opts)
	if err != nil {
		t.Fatal(err)
	}
	for n := range fast.Model.Factors {
		if diff := mat.MaxAbsDiff(fast.Model.Factors[n], naive.Model.Factors[n]); diff > 1e-7 {
			t.Fatalf("mode %d: TFAI diverges from optimized serial by %v", n, diff)
		}
	}
	// Memory must be fully released afterwards.
	if c.UsedMemory(0) != 0 {
		t.Fatalf("TFAI leaked %d bytes", c.UsedMemory(0))
	}
}

func TestTFAIFootprintAndOOM(t *testing.T) {
	fp := TFAIFootprint([]int{100, 100, 100}, 10)
	want := int64(2*8*100*100*100 + 8*10*100*100)
	if fp != want {
		t.Fatalf("TFAIFootprint = %d, want %d", fp, want)
	}
	ts := synth.ScalabilityTensor([]int{1000, 1000, 1000}, 200, 8)
	c := testCluster(t, rdd.Config{Machines: 1, MemoryPerMachine: 1 << 20})
	_, err := TFAI(c, ts, nil, core.Options{Rank: 5, MaxIter: 1, Seed: 9})
	if !errors.Is(err, rdd.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if c.UsedMemory(0) != 0 {
		t.Fatal("failed TFAI leaked memory")
	}
}

func TestSCouTUsesAuxiliaryInfo(t *testing.T) {
	d := synth.LinearFactorDataset([]int{30, 30, 30}, 3, 1500, 10)
	rng := rand.New(rand.NewPCG(11, 11))
	train, test := d.Tensor.Split(0.5, rng)
	c := testCluster(t, rdd.Config{Machines: 3})
	opts := core.Options{Rank: 4, MaxIter: 30, Tol: 1e-10, Seed: 12, Alpha: 1}
	res, err := SCouT(c, train, d.Sims, opts)
	if err != nil {
		t.Fatal(err)
	}
	c2 := testCluster(t, rdd.Config{Machines: 3})
	plain, err := ALS(c2, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	reScout := metrics.RelativeError(test, res.Model)
	reALS := metrics.RelativeError(test, plain.Model)
	if reScout >= reALS {
		t.Fatalf("SCouT (%v) should beat plain ALS (%v) with auxiliary info", reScout, reALS)
	}
}

func TestSCouTOnMapReduceCluster(t *testing.T) {
	d := synth.LinearFactorDataset([]int{15, 15, 15}, 2, 800, 13)
	c := testCluster(t, rdd.Config{Machines: 2, Mode: rdd.ModeMapReduce})
	res, err := SCouT(c, d.Tensor, d.Sims, core.Options{Rank: 3, MaxIter: 3, Tol: 0, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 3 {
		t.Fatalf("iters = %d", res.Iters)
	}
	if c.Metrics().DiskBytesWrite.Load() == 0 {
		t.Fatal("SCouT on MapReduce must spill to disk")
	}
}

func TestFlexiFactTrainsAndCommunicates(t *testing.T) {
	d := synth.LinearFactorDataset([]int{24, 24, 12}, 2, 4000, 15)
	c := testCluster(t, rdd.Config{Machines: 3})
	res, err := FlexiFact(c, d.Tensor, d.Sims, FlexiFactOptions{
		Options:      core.Options{Rank: 3, MaxIter: 25, Tol: 0, Seed: 16, Lambda: 1e-3},
		LearningRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Trace[0].TrainRMSE, res.Trace[len(res.Trace)-1].TrainRMSE
	if last >= first {
		t.Fatalf("FlexiFact train RMSE did not decrease: %v -> %v", first, last)
	}
	if c.Metrics().BytesShuffled.Load() == 0 {
		t.Fatal("FlexiFact must ship factor blocks per sub-epoch")
	}
	if c.UsedMemory(0) != 0 {
		t.Fatal("FlexiFact leaked replica memory")
	}
}

func TestFlexiFactOOMsOnReplication(t *testing.T) {
	ts := synth.ScalabilityTensor([]int{30000, 30000, 100}, 500, 17)
	c := testCluster(t, rdd.Config{Machines: 2, MemoryPerMachine: 1 << 20})
	_, err := FlexiFact(c, ts, nil, FlexiFactOptions{Options: core.Options{Rank: 10, MaxIter: 1, Seed: 18}})
	if !errors.Is(err, rdd.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if c.UsedMemory(0)+c.UsedMemory(1) != 0 {
		t.Fatal("failed FlexiFact leaked memory")
	}
}

func TestFlexiFactRejectsOneModeTensor(t *testing.T) {
	ts := synth.ScalabilityTensor([]int{10}, 5, 19)
	c := testCluster(t, rdd.Config{Machines: 2})
	if _, err := FlexiFact(c, ts, nil, FlexiFactOptions{Options: core.Options{Rank: 2, MaxIter: 1}}); err == nil {
		t.Fatal("expected error for 1-mode tensor")
	}
}

func TestFactorSetSize(t *testing.T) {
	fs := factorSet{fs: []*mat.Dense{mat.NewDense(10, 3), mat.NewDense(5, 3)}}
	if got := fs.SizeBytes(); got != (10*3+5*3)*8 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestALSDeterministicAcrossClusterSizes(t *testing.T) {
	// ALS math must not depend on the partitioning.
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1200, 20)
	opts := core.Options{Rank: 3, MaxIter: 5, Tol: 0, Seed: 21}
	c1 := testCluster(t, rdd.Config{Machines: 1})
	c2 := testCluster(t, rdd.Config{Machines: 4})
	r1, err := ALS(c1, d.Tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ALS(c2, d.Tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	for n := range r1.Model.Factors {
		if diff := mat.MaxAbsDiff(r1.Model.Factors[n], r2.Model.Factors[n]); diff > 1e-8 {
			t.Fatalf("mode %d: ALS differs across cluster sizes by %v", n, diff)
		}
	}
}

func TestTFAIFootprintSaturates(t *testing.T) {
	// At the paper's 10⁹ mode sizes the true footprint exceeds int64; it
	// must saturate positive, never wrap negative.
	fp := TFAIFootprint([]int{1_000_000_000, 1_000_000_000, 1_000_000_000}, 20)
	if fp <= 0 {
		t.Fatalf("footprint wrapped: %d", fp)
	}
	if fp != maxInt64Val {
		t.Fatalf("footprint = %d, want saturation at MaxInt64", fp)
	}
	if satAdd(maxInt64Val, 1) != maxInt64Val {
		t.Fatal("satAdd must saturate")
	}
	if satMul(0, 5) != 0 || satMul(5, 0) != 0 {
		t.Fatal("satMul zero")
	}
}
