package baselines

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"distenc/internal/core"
	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/part"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
)

// FlexiFactOptions extends the solver options with SGD knobs.
type FlexiFactOptions struct {
	core.Options
	// LearningRate is the initial SGD step size η₀ (default 0.05); the step
	// at epoch t is η₀/(1+t), and it is additionally halved whenever an
	// epoch fails to improve the running training error (bold-driver
	// backoff).
	LearningRate float64
}

// SGD stability bounds: the error signal and factor values are clipped so a
// single bad stratum cannot blow the model up.
const (
	sgdErrClip   = 100.0
	sgdValueClip = 1e3
)

// FlexiFact runs distributed stochastic gradient descent factorization in
// the style of Beutel et al.: the first two modes are split into P blocks
// each, and an epoch executes P sub-epochs, each processing the P disjoint
// stratum blocks {(b, (b+s) mod P)} in parallel. Within a stratum task the
// blocks own their mode-0/mode-1 factor rows exclusively; updates to the
// shared remaining modes are returned as deltas and folded in by the driver
// between sub-epochs.
//
// Auxiliary similarity enters the SGD objective as the trace-regularization
// gradient α(a_i − a_j) applied along similarity edges once per epoch.
//
// The cost profile reproduces the paper's findings: every machine holds a
// full factor replica (charged per epoch — FlexiFact hits O.O.M. with ALS in
// Figure 3a), and each of the P sub-epochs re-ships factor blocks, giving the
// high communication cost Figure 3a attributes to it. Run on a
// ModeMapReduce cluster for its Hadoop wall-clock behaviour.
func FlexiFact(c *rdd.Cluster, t *sptensor.Tensor, sims []*graph.Similarity, opt FlexiFactOptions) (*core.Result, error) {
	opt.Options = opt.Options.WithDefaults()
	if opt.LearningRate <= 0 {
		opt.LearningRate = 0.05
	}
	if t.Order() < 2 {
		return nil, fmt.Errorf("baselines: FlexiFact needs at least 2 modes")
	}
	p := c.Machines()
	bounds0 := part.Uniform(t.Dims[0], p)
	bounds1 := part.Uniform(t.Dims[1], p)
	p = bounds0.NumPartitions() // clamped for tiny modes
	if bp := bounds1.NumPartitions(); bp < p {
		p = bp
	}

	// Bucket entries into the P×P grid over modes 0 and 1.
	grid := make([][]*core.TensorBlock, p*p)
	for i := range grid {
		grid[i] = []*core.TensorBlock{{Order: t.Order()}}
	}
	for e := 0; e < t.NNZ(); e++ {
		idx := t.Index(e)
		b0 := bounds0.PartitionOf(int(idx[0]))
		b1 := bounds1.PartitionOf(int(idx[1]))
		if b0 >= p {
			b0 = p - 1
		}
		if b1 >= p {
			b1 = p - 1
		}
		blk := grid[b0*p+b1][0]
		blk.Idx = append(blk.Idx, idx...)
		blk.Val = append(blk.Val, t.Val[e])
	}

	order := t.Order()
	rank := opt.Rank
	factors := core.InitFactors(t.Dims, rank, opt.Seed)
	core.ApplyInitScale(factors, t, opt.Options)
	replicaBytes := factorSet{fs: factors}.SizeBytes()
	start := time.Now()
	var trace metrics.Trace
	converged := false
	iters := 0
	rng := rand.New(rand.NewPCG(opt.Seed, 0xf1e81fac7))

	// Seed the bold driver with the true initial training error so a
	// divergent first epoch is rolled back like any other.
	initModel := sptensor.NewKruskal(factors...)
	var initSq float64
	for e := 0; e < t.NNZ(); e++ {
		d := t.Val[e] - initModel.At(t.Index(e))
		initSq += d * d
	}
	lrScale := 1.0
	prevRMSE := math.Sqrt(initSq / float64(maxInt(1, t.NNZ())))
	for epoch := 0; epoch < opt.MaxIter; epoch++ {
		iters = epoch + 1
		lr := lrScale * opt.LearningRate / (1 + float64(epoch))
		// Full-replica memory profile: every machine holds all factors for
		// the duration of the epoch.
		for m := 0; m < c.Machines(); m++ {
			if err := c.Charge(m, replicaBytes); err != nil {
				for freed := 0; freed < m; freed++ {
					c.Release(freed, replicaBytes)
				}
				return nil, fmt.Errorf("baselines: FlexiFact factor replication: %w", err)
			}
		}

		prev := make([]*mat.Dense, order)
		for n, f := range factors {
			prev[n] = f.Clone()
		}
		var epochSq float64
		var epochCount int64

		for s := 0; s < p; s++ {
			// Stratum s: blocks (b, (b+s) mod p), pairwise disjoint in both
			// partitioned modes.
			strata := make([][]*core.TensorBlock, p)
			for b := 0; b < p; b++ {
				strata[b] = grid[b*p+(b+s)%p]
			}
			blocksRDD := rdd.FromPartitions(c, fmt.Sprintf("flexifact-s%d", s), strata)
			type sgdOut struct {
				Rows   []rdd.KV[core.RowKey, []float64] // absolute rows (owned modes) and deltas (shared modes)
				SqErr  float64
				NumObs int64
			}
			// Factor rows are read-only here: every touched row is copied into
			// `local` before the SGD update, and the two-way shipment (pull +
			// push-back) is charged below via tc.CountShuffled. Broadcasting
			// the factors instead would bill O(machines·ΣI_n·R) per stratum,
			// which is exactly the overhead FlexiFact's block scheduling
			// avoids. opt is a by-value hyperparameter struct.
			//distenc:capture-ok factors opt -- accounted row shipping (2*shipped via CountShuffled); SGD mutates copies only
			results := rdd.MapPartitions(blocksRDD, "flexifact-sgd", func(tc *rdd.TaskCtx, b int, in []*core.TensorBlock) ([]sgdOut, error) {
				// Per-sub-epoch block shipping, both directions.
				var shipped int64
				local := map[core.RowKey][]float64{}
				touch := func(n int, row int32) []float64 {
					k := core.RowKey{Mode: int16(n), Row: row}
					v := local[k]
					if v == nil {
						v = append([]float64(nil), factors[n].Row(int(row))...)
						local[k] = v
						shipped += int64(rank) * 8
					}
					return v
				}
				var sq float64
				var cnt int64
				grad := make([]float64, rank)
				for _, blk := range in {
					for e := 0; e < blk.NNZ(); e++ {
						idx := blk.EntryIndex(e)
						rows := make([][]float64, order)
						for n := 0; n < order; n++ {
							rows[n] = touch(n, idx[n])
						}
						var pred float64
						for r := 0; r < rank; r++ {
							v := 1.0
							for n := 0; n < order; n++ {
								v *= rows[n][r]
							}
							pred += v
						}
						err := blk.Val[e] - pred
						// Clip the error signal: plain SGD on products of
						// N factors blows up without it (the FlexiFact
						// paper uses bold-driver style step control; a clip
						// is the simplest stable equivalent).
						if err > sgdErrClip {
							err = sgdErrClip
						} else if err < -sgdErrClip {
							err = -sgdErrClip
						}
						sq += err * err
						cnt++
						for n := 0; n < order; n++ {
							for r := 0; r < rank; r++ {
								g := err
								for k := 0; k < order; k++ {
									if k != n {
										g *= rows[k][r]
									}
								}
								grad[r] = g - opt.Lambda*rows[n][r]
							}
							for r := 0; r < rank; r++ {
								v := rows[n][r] + lr*grad[r]
								if v > sgdValueClip {
									v = sgdValueClip
								} else if v < -sgdValueClip {
									v = -sgdValueClip
								}
								rows[n][r] = v
							}
						}
					}
				}
				if err := tc.ChargeTransient(shipped); err != nil {
					return nil, err
				}
				// Attribute the row traffic to this task so stage records sum
				// to the cluster totals (was a direct Metrics poke, which left
				// the per-stage transfer profile short by exactly this much).
				tc.CountShuffled(2 * shipped)
				out := sgdOut{SqErr: sq, NumObs: cnt, Rows: make([]rdd.KV[core.RowKey, []float64], 0, len(local))}
				for k, v := range local {
					if int(k.Mode) >= 2 {
						// Shared mode: emit the delta, not the value.
						base := factors[k.Mode].Row(int(k.Row))
						for r := range v {
							v[r] -= base[r]
						}
					}
					out.Rows = append(out.Rows, rdd.KV[core.RowKey, []float64]{K: k, V: v})
				}
				return []sgdOut{out}, nil
			})
			collected, err := results.Collect()
			if err != nil {
				for m := 0; m < c.Machines(); m++ {
					c.Release(m, replicaBytes)
				}
				return nil, err
			}
			for _, res := range collected {
				epochSq += res.SqErr
				epochCount += res.NumObs
				for _, kv := range res.Rows {
					dst := factors[kv.K.Mode].Row(int(kv.K.Row))
					if int(kv.K.Mode) >= 2 {
						for r := range dst {
							dst[r] += kv.V[r]
						}
					} else {
						copy(dst, kv.V)
					}
				}
			}
		}

		// Trace-regularization pass along similarity edges (coupled-side
		// gradient), once per epoch on the driver.
		if sims != nil {
			applyGraphGradient(factors, sims, lr*opt.Alpha, rng)
		}
		for m := 0; m < c.Machines(); m++ {
			c.Release(m, replicaBytes)
		}

		epochRMSE := math.Sqrt(epochSq / float64(maxInt64(1, epochCount)))
		// The convergence delta reflects the attempted update, measured
		// before any rollback.
		var maxDelta float64
		for n := range factors {
			d := mat.SubMat(factors[n], prev[n]).NormF()
			maxDelta = math.Max(maxDelta, d*d)
		}
		// Bold-driver backoff: a worsening (or non-finite) epoch halves the
		// step and rolls the factors back.
		if !(epochRMSE < prevRMSE*1.01) || math.IsNaN(epochRMSE) {
			lrScale /= 2
			for n := range factors {
				factors[n] = prev[n]
			}
		} else {
			prevRMSE = epochRMSE
		}
		point := metrics.ConvergencePoint{
			Iter:      epoch,
			Elapsed:   time.Since(start),
			TrainRMSE: epochRMSE,
			MaxDelta:  maxDelta,
		}
		trace = append(trace, point)
		if opt.OnIteration != nil {
			opt.OnIteration(point)
		}
		if maxDelta < opt.Tol {
			converged = true
			break
		}
	}
	return &core.Result{
		Model:     sptensor.NewKruskal(factors...),
		Iters:     iters,
		Converged: converged,
		Trace:     trace,
		Elapsed:   time.Since(start),
	}, nil
}

// applyGraphGradient nudges factor rows toward their similarity neighbors:
// a_i += step·Σ_{j∈N(i)} w_ij (a_j − a_i), the SGD form of the trace penalty.
func applyGraphGradient(factors []*mat.Dense, sims []*graph.Similarity, step float64, rng *rand.Rand) {
	for n, s := range sims {
		if s == nil || s.NumEdges() == 0 {
			continue
		}
		f := factors[n]
		for i := 0; i < s.N; i++ {
			if len(s.Adj[i]) == 0 {
				continue
			}
			// One sampled neighbor per node keeps the pass O(I).
			e := s.Adj[i][rng.IntN(len(s.Adj[i]))]
			fi := f.Row(i)
			fj := f.Row(int(e.To))
			for r := range fi {
				fi[r] += step * e.Weight * (fj[r] - fi[r])
			}
		}
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
