package baselines

import (
	"fmt"
	"math"
	"time"

	"distenc/internal/core"
	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
)

// SCouT runs coupled matrix-tensor factorization in the style of Jeon et
// al.: the auxiliary similarity of mode n enters as a coupled matrix
// S_n ≈ A(n)·V(n)ᵀ sharing the mode-n factor, and every factor is updated by
// alternating least squares:
//
//	V(n) ← S_nᵀ A(n) (A(n)ᵀA(n) + λI)⁻¹
//	A(n) ← (A(n)F_n + E_(n)U(n) + S_n V(n)) (F_n + V(n)ᵀV(n) + λI)⁻¹
//
// The tensor-side heavy lifting (residual + MTTKRP) runs distributed with
// fine-grained row shipping, which is why SCouT — like DisTenC and unlike
// ALS — survives the full dimensionality sweep of Figure 3a. Run it on a
// ModeMapReduce cluster to reproduce its disk-bound wall-clock behaviour.
func SCouT(c *rdd.Cluster, t *sptensor.Tensor, sims []*graph.Similarity, opt core.Options) (*core.Result, error) {
	opt = opt.WithDefaults()
	layout := core.NewLayout(t, core.DistOptions{Options: opt, Partitions: c.Machines()})
	blocks := layout.BlocksRDD(c)
	blocks.Cache() // no-op on MapReduce-mode clusters: lineage recomputes
	if err := blocks.Materialize(); err != nil {
		return nil, fmt.Errorf("baselines: SCouT caching blocks: %w", err)
	}
	defer blocks.Unpersist()

	order := t.Order()
	factors := core.InitFactors(t.Dims, opt.Rank, opt.Seed)
	core.ApplyInitScale(factors, t, opt)
	coupled := make([]*mat.Dense, order) // V(n), lazily created per coupled mode
	start := time.Now()
	var trace metrics.Trace
	converged := false
	iters := 0

	for iter := 0; iter < opt.MaxIter; iter++ {
		iters = iter + 1
		hs, residNorm2, err := core.MTTKRPStage(c, blocks, layout, factors, core.DistOptions{Options: opt})
		if err != nil {
			return nil, err
		}
		grams := make([]*mat.Dense, order)
		for n, f := range factors {
			grams[n] = mat.Gram(f)
		}
		var maxDelta float64
		next := make([]*mat.Dense, order)
		for n := 0; n < order; n++ {
			fn := sptensor.GramProduct(grams, n)
			h := mat.Mul(factors[n], fn)
			h = mat.AddMat(h, hs[n])
			lhs := fn.Clone()
			if sims != nil && sims[n] != nil && sims[n].NumEdges() > 0 {
				// Coupled-matrix side: refresh V(n), then add S·V and VᵀV.
				gram := grams[n].Clone()
				for i := 0; i < gram.Rows(); i++ {
					gram.Add(i, i, opt.Lambda)
				}
				ginv, err := mat.InverseSPD(gram)
				if err != nil {
					return nil, fmt.Errorf("baselines: SCouT coupled solve: %w", err)
				}
				coupled[n] = mat.Mul(simMulDense(sims[n], factors[n]), ginv)
				h = mat.AddMat(h, simMulDense(sims[n], coupled[n]))
				lhs = mat.AddMat(lhs, mat.Gram(coupled[n]))
			}
			for i := 0; i < lhs.Rows(); i++ {
				lhs.Add(i, i, opt.Lambda)
			}
			inv, err := mat.InverseSPD(lhs)
			if err != nil {
				return nil, fmt.Errorf("baselines: SCouT normal equations: %w", err)
			}
			next[n] = mat.Mul(h, inv)
			d := mat.SubMat(next[n], factors[n]).NormF()
			maxDelta = math.Max(maxDelta, d*d)
		}
		factors = next

		point := metrics.ConvergencePoint{
			Iter:      iter,
			Elapsed:   time.Since(start),
			TrainRMSE: math.Sqrt(residNorm2 / float64(maxInt(1, t.NNZ()))),
			MaxDelta:  maxDelta,
		}
		trace = append(trace, point)
		if opt.OnIteration != nil {
			opt.OnIteration(point)
		}
		if maxDelta < opt.Tol {
			converged = true
			break
		}
	}
	return &core.Result{
		Model:     sptensor.NewKruskal(factors...),
		Iters:     iters,
		Converged: converged,
		Trace:     trace,
		Elapsed:   time.Since(start),
	}, nil
}

// simMulDense returns S·B for a sparse symmetric similarity in O(nnz(S)·R).
func simMulDense(s *graph.Similarity, b *mat.Dense) *mat.Dense {
	out := mat.NewDense(s.N, b.Cols())
	for i := 0; i < s.N; i++ {
		dst := out.Row(i)
		for _, e := range s.Adj[i] {
			src := b.Row(int(e.To))
			for r := range dst {
				dst[r] += e.Weight * src[r]
			}
		}
	}
	return out
}
