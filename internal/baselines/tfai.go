package baselines

import (
	"fmt"
	"math"
	"time"

	"distenc/internal/core"
	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
)

// TFAIFootprint returns the bytes a TFAI iteration materializes: the
// completed dense tensor X (twice: the tensor and its mode-n unfolding) plus
// the largest explicit Khatri-Rao product U(n). This is the quantity that
// makes TFAI the first method to fall over in Figure 3a.
// All products saturate at MaxInt64 — at the paper's 10⁹ mode sizes the true
// footprint overflows int64, and "more memory than any machine has" is the
// correct saturated meaning.
func TFAIFootprint(dims []int, rank int) int64 {
	dense := satMul(8, dimsProduct(dims, -1))
	var maxKR int64
	for n := range dims {
		kr := satMul(satMul(8, int64(rank)), dimsProduct(dims, n))
		if kr > maxKR {
			maxKR = kr
		}
	}
	return satAdd(satMul(2, dense), maxKR)
}

// dimsProduct returns Π dims[k] for k ≠ skip, saturating at MaxInt64.
func dimsProduct(dims []int, skip int) int64 {
	p := int64(1)
	for k, d := range dims {
		if k == skip {
			continue
		}
		p = satMul(p, int64(d))
	}
	return p
}

const maxInt64Val = int64(^uint64(0) >> 1)

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > maxInt64Val/b {
		return maxInt64Val
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > maxInt64Val-b {
		return maxInt64Val
	}
	return a + b
}

// TFAI runs the single-machine tensor completion with auxiliary information
// of Narita et al. — the same ADMM as Algorithm 1, implemented the way a
// straightforward port would be: it materializes the completed dense tensor
// X = T + Ωᶜ∗[[A]] every iteration, forms the explicit Khatri-Rao product
// U(n), multiplies the dense unfolding X_(n)·U(n), and solves the
// trace-regularized B update with a fresh dense factorization (no
// pre-eigendecomposition). Identical mathematics to core.Complete — and the
// tests verify the iterates coincide — but with the memory and FLOP profile
// the paper's §III is designed to eliminate.
//
// The footprint is charged to machine 0 of c before anything is allocated,
// so at scale TFAI fails fast with rdd.ErrOutOfMemory instead of taking the
// process down.
func TFAI(c *rdd.Cluster, t *sptensor.Tensor, sims []*graph.Similarity, opt core.Options) (*core.Result, error) {
	opt = opt.WithDefaults()
	footprint := TFAIFootprint(t.Dims, opt.Rank)
	if err := c.Charge(0, footprint); err != nil {
		return nil, fmt.Errorf("baselines: TFAI dense intermediates (%d bytes): %w", footprint, err)
	}
	defer c.Release(0, footprint)

	var laps []*graph.Laplacian
	if sims != nil {
		laps = make([]*graph.Laplacian, len(sims))
		for n, s := range sims {
			if s != nil && s.NumEdges() > 0 {
				laps[n] = graph.NewLaplacian(s)
			}
		}
	}

	order := t.Order()
	factors := core.InitFactors(t.Dims, opt.Rank, opt.Seed)
	core.ApplyInitScale(factors, t, opt)
	aux := make([]*mat.Dense, order)
	mult := make([]*mat.Dense, order)
	for n, d := range t.Dims {
		aux[n] = mat.NewDense(d, opt.Rank)
		mult[n] = mat.NewDense(d, opt.Rank)
	}
	eta := opt.Eta0
	start := time.Now()
	var trace metrics.Trace
	converged := false
	iters := 0

	for iter := 0; iter < opt.MaxIter; iter++ {
		iters = iter + 1
		model := sptensor.NewKruskal(factors...)
		// The naive step §III-D eliminates: materialize the dense completed
		// tensor.
		x := sptensor.FromKruskal(model)
		for e := 0; e < t.NNZ(); e++ {
			x.Set(t.Index(e), t.Val[e])
		}
		var trainSq float64
		for e := 0; e < t.NNZ(); e++ {
			d := t.Val[e] - model.At(t.Index(e))
			trainSq += d * d
		}

		next := make([]*mat.Dense, order)
		bs := make([]*mat.Dense, order)
		var maxDelta float64
		for n := 0; n < order; n++ {
			// B update with a fresh dense solve (no spectral caching).
			rhs := factors[n].Clone().Scale(eta)
			rhs.AddScaled(-1, mult[n])
			if laps == nil || laps[n] == nil {
				bs[n] = rhs.Scale(1 / eta)
			} else {
				b, err := graph.DirectInverseApply(laps[n], opt.Alpha, eta, rhs)
				if err != nil {
					return nil, fmt.Errorf("baselines: TFAI aux solve: %w", err)
				}
				bs[n] = b
			}
			// Explicit U(n) = A(N)⊙…⊙A(n+1)⊙A(n-1)⊙…⊙A(1) — the
			// intermediate-data explosion §III-C avoids.
			var u *mat.Dense
			for k := 0; k < order; k++ {
				if k == n {
					continue
				}
				if u == nil {
					u = factors[k]
				} else {
					u = mat.KhatriRao(factors[k], u)
				}
			}
			h := mat.Mul(x.Matricize(n), u)
			h.AddScaled(eta, bs[n])
			h.AddScaled(1, mult[n])
			lhs := mat.Gram(u)
			for i := 0; i < lhs.Rows(); i++ {
				lhs.Add(i, i, opt.Lambda+eta)
			}
			inv, err := mat.InverseSPD(lhs)
			if err != nil {
				return nil, fmt.Errorf("baselines: TFAI normal equations: %w", err)
			}
			next[n] = mat.Mul(h, inv)
			d := mat.SubMat(next[n], factors[n]).NormF()
			maxDelta = math.Max(maxDelta, d*d)
		}
		for n := 0; n < order; n++ {
			mult[n].AddScaled(eta, mat.SubMat(bs[n], next[n]))
			factors[n] = next[n]
			aux[n] = bs[n]
		}
		eta = math.Min(opt.Rho*eta, opt.EtaMax)

		point := metrics.ConvergencePoint{
			Iter:      iter,
			Elapsed:   time.Since(start),
			TrainRMSE: math.Sqrt(trainSq / float64(maxInt(1, t.NNZ()))),
			MaxDelta:  maxDelta,
		}
		trace = append(trace, point)
		if opt.OnIteration != nil {
			opt.OnIteration(point)
		}
		if maxDelta < opt.Tol {
			converged = true
			break
		}
	}
	return &core.Result{
		Model:     sptensor.NewKruskal(factors...),
		Aux:       aux,
		Iters:     iters,
		Converged: converged,
		Trace:     trace,
		Elapsed:   time.Since(start),
	}, nil
}
