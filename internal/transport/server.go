package transport

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"distenc/internal/rdd"
)

// blockKey identifies one stored block, mirroring rdd.BlockID.
type blockKey struct {
	kind   uint8
	owner  int64
	mapP   int32
	reduce int32
}

// Server is one worker's block store behind a TCP listener: volatile blocks
// (shuffle buckets, broadcast replicas) live in memory and die with the
// process; checkpoint blocks are fsynced to the data directory — the worker's
// local slice of the modeled stable storage — when one is configured.
//
// Connection handling follows the Codis backend-connection shape: one
// goroutine per accepted connection reads framed requests in a loop, handles
// them in order, and writes framed responses through a buffered writer that
// is flushed only when no further request is already buffered — so a client
// that pipelines N requests pays one flush, not N.
type Server struct {
	ln       net.Listener
	dataDir  string
	maxFrame int
	// allowDie permits the opDie request to terminate the process; only
	// RunWorker (a dedicated worker process) enables it, so an in-process
	// Server in a test can never exit the test binary.
	allowDie bool

	mu      sync.Mutex
	mem     map[blockKey][]byte
	files   map[blockKey]string
	conns   map[net.Conn]struct{}
	closed  bool
	nextFID int

	wg sync.WaitGroup
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and serves a block store.
// dataDir, when non-empty, is where checkpoint blocks are persisted; empty
// keeps every kind in memory. Call Serve to start accepting.
func NewServer(addr, dataDir string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Server{
		ln:       ln,
		dataDir:  dataDir,
		maxFrame: rdd.DefaultMaxFrame,
		mem:      map[blockKey][]byte{},
		files:    map[blockKey]string{},
		conns:    map[net.Conn]struct{}{},
	}, nil
}

// Addr returns the listener's address ("host:port").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Shutdown closes the listener. It returns
// nil after a graceful shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Shutdown drains the server gracefully: stop accepting, let every
// connection finish the request it is handling, then close. Idle connections
// blocked reading their next request are unblocked via a read deadline.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.ln.Close()
	for conn := range s.conns {
		// Interrupts only the blocked read of the NEXT request; a request
		// mid-handling completes and its response is flushed before the
		// handler notices the deadline.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.wg.Done()
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.dropConn(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	// Hello exchange: reject strangers before trusting length prefixes.
	if ExpectHello(br, helloFrame) != nil {
		return
	}
	if SendHello(bw, helloFrame) != nil {
		return
	}

	var respBuf []byte
	for {
		frame, err := rdd.ReadFrame(br, s.maxFrame)
		if err != nil {
			return // EOF, torn frame, or the shutdown read deadline
		}
		req, payload, err := parseRequest(frame)
		if err != nil {
			return
		}
		if req.op == opDie {
			if s.allowDie {
				os.Exit(3) // abrupt, crash-like: no response, no drain
			}
			return // in-process servers treat die as a connection close
		}
		respBuf = s.handle(req, payload, respBuf[:0])
		if err := rdd.WriteFrame(bw, respBuf); err != nil {
			return
		}
		// Pipelining-friendly flush: only when no further request is already
		// waiting in the read buffer.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if req.op == opDrain {
			return
		}
	}
}

// handle executes one request against the store and appends the response to
// buf.
func (s *Server) handle(req request, payload, buf []byte) []byte {
	key := blockKey{kind: req.kind, owner: req.owner, mapP: req.mapP, reduce: req.reduce}
	switch req.op {
	case opPing, opDrain:
		return appendResponse(buf, req.reqID, stOK, nil)
	case opPut:
		if err := s.put(key, payload); err != nil {
			return appendResponse(buf, req.reqID, stError, []byte(err.Error()))
		}
		return appendResponse(buf, req.reqID, stOK, nil)
	case opGet:
		data, ok, err := s.get(key)
		if err != nil {
			return appendResponse(buf, req.reqID, stError, []byte(err.Error()))
		}
		if !ok {
			return appendResponse(buf, req.reqID, stNotFound, nil)
		}
		return appendResponse(buf, req.reqID, stOK, data)
	case opDrop:
		s.drop(req.owner)
		return appendResponse(buf, req.reqID, stOK, nil)
	default:
		return appendResponse(buf, req.reqID, stError, fmt.Appendf(nil, "unknown op %d", req.op))
	}
}

func (s *Server) put(key blockKey, data []byte) error {
	if key.kind == uint8(rdd.BlockCheckpoint) && s.dataDir != "" {
		return s.putStable(key, data)
	}
	cp := append([]byte(nil), data...) // payload aliases the read buffer
	s.mu.Lock()
	s.mem[key] = cp
	s.mu.Unlock()
	return nil
}

// putStable persists a checkpoint block to the worker's data directory,
// framed (torn-write detection on read) and fsynced (a crash right after the
// put must not lose a block the driver already counts as checkpointed).
func (s *Server) putStable(key blockKey, data []byte) error {
	s.mu.Lock()
	s.nextFID++
	tmp := filepath.Join(s.dataDir, fmt.Sprintf("put%d.tmp", s.nextFID))
	path := filepath.Join(s.dataDir, fmt.Sprintf("ck%d-p%d.blk", key.owner, key.mapP))
	s.mu.Unlock()
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	err = rdd.WriteFrame(f, data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	s.mu.Lock()
	s.files[key] = path
	s.mu.Unlock()
	return nil
}

func (s *Server) get(key blockKey) ([]byte, bool, error) {
	s.mu.Lock()
	if data, ok := s.mem[key]; ok {
		s.mu.Unlock()
		return data, true, nil
	}
	path, ok := s.files[key]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	data, err := rdd.ReadFrame(bufio.NewReader(f), s.maxFrame)
	if err != nil {
		return nil, false, fmt.Errorf("torn checkpoint block %s: %w", path, err)
	}
	return data, true, nil
}

func (s *Server) drop(owner int64) {
	s.mu.Lock()
	var paths []string
	for key := range s.mem {
		if key.owner == owner {
			delete(s.mem, key)
		}
	}
	for key, path := range s.files {
		if key.owner == owner {
			delete(s.files, key)
			paths = append(paths, path)
		}
	}
	s.mu.Unlock()
	for _, p := range paths {
		os.Remove(p)
	}
}
