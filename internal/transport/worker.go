package transport

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// Environment variables that turn a binary into a worker when set — the
// re-exec hook: StartWorkers launches os.Executable() with these set, and any
// main()/TestMain that calls WorkerHook first becomes the worker process.
// This is how `go test` gets real, killable worker processes without a
// prebuilt binary on PATH.
const (
	envListen = "DISTENC_WORKER_LISTEN"
	envData   = "DISTENC_WORKER_DATA"
	// envLifeline marks stdin as a pipe whose far end the spawning driver
	// holds for its whole life. EOF on it means the driver is gone — however
	// it went, including exit paths that skip deferred Close calls — and the
	// worker must not outlive it: an orphaned worker holds inherited stderr
	// open forever, which wedges shell pipelines reading the driver's output.
	envLifeline = "DISTENC_WORKER_LIFELINE"
)

// listenLinePrefix is printed (followed by the bound address) on the report
// writer once the listener is up; StartWorkers scans for it to learn the
// ephemeral port.
const listenLinePrefix = "DISTENC-WORKER LISTEN "

// WorkerHook turns the current process into a worker and never returns when
// the DISTENC_WORKER_LISTEN environment variable is set; otherwise it is a
// no-op. Call it first thing in main() — and in TestMain of test binaries
// that spawn workers — so StartWorkers can re-exec the running binary.
func WorkerHook() {
	addr := os.Getenv(envListen)
	if addr == "" {
		return
	}
	if os.Getenv(envLifeline) == "1" {
		//distenc:goroutine-owned-by process-lifetime -- the lifeline watcher must outlive everything in this process; it dies with the process it exists to kill
		go func() {
			io.Copy(io.Discard, os.Stdin)
			// SIGTERM ourselves rather than os.Exit so RunWorker's handler
			// drains in-flight requests before the process goes away.
			syscall.Kill(os.Getpid(), syscall.SIGTERM)
		}()
	}
	if err := RunWorker(addr, os.Getenv(envData), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distenc-worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker serves a block store on addr until SIGTERM/SIGINT, then drains
// gracefully: in-flight requests finish, connections close, and the process
// exits clean. The bound address is reported on report (stdout for spawned
// workers) as "DISTENC-WORKER LISTEN host:port" so a parent that asked for
// port 0 learns the real one. dataDir, when non-empty, persists checkpoint
// blocks; SIGKILL (the crash the chaos suite injects) loses the in-memory
// blocks but not the fsynced checkpoint files — except that a killed worker
// never comes back, which is why the engine replicates checkpoints across
// workers.
func RunWorker(addr, dataDir string, report io.Writer) error {
	s, err := NewServer(addr, dataDir)
	if err != nil {
		return err
	}
	s.allowDie = true

	// Arm the signal handler BEFORE announcing the address: the parent may
	// react to the listen line immediately (the lifeline test closes its
	// pipe end the moment it reads it), and a SIGTERM that lands before
	// Notify kills the process at default disposition instead of draining.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	fmt.Fprintf(report, "%s%s\n", listenLinePrefix, s.Addr())
	done := make(chan error, 1)
	//distenc:goroutine-owned-by channel-drain -- both select arms receive from done; the buffer lets Serve's result land even if the signal arm wins
	go func() { done <- s.Serve() }()
	select {
	case <-sig:
		s.Shutdown()
		<-done
		return nil
	case err := <-done:
		return err
	}
}
