package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"distenc/internal/rdd"
)

// Options tunes the TCP transport client.
type Options struct {
	// PoolSize is the number of pooled connections per worker (default 2).
	// Each connection pipelines: requests from many tasks are in flight at
	// once and responses stream back in order.
	PoolSize int
	// MaxFrame caps accepted frame sizes (default rdd.DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds one request/response round trip (default 60s). A
	// worker that stalls past it is treated as unreachable.
	CallTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = rdd.DefaultMaxFrame
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 60 * time.Second
	}
	return o
}

// Client implements rdd.Transport over TCP: one pooled, pipelined connection
// set per worker. It is safe for concurrent use by every task goroutine.
type Client struct {
	opts    Options
	workers []*worker
}

// unreachableErr wraps a connection-level failure as the sentinel the engine
// maps to machine death.
func unreachableErr(addr string, err error) error {
	return fmt.Errorf("%w: worker %s: %v", rdd.ErrMachineUnreachable, addr, err)
}

// worker is the client's view of one worker process: its address, the pooled
// connections, and — for spawned workers — the child process to reap.
type worker struct {
	opts    Options
	addr    string
	cmd     *exec.Cmd // non-nil when this client spawned the process
	dataDir string    // temp dir created for a spawned worker
	// lifeline is the write end of a pipe wired to a spawned worker's stdin.
	// It is held open for the driver's whole life and never written: when
	// this process dies — even through os.Exit paths that skip deferred
	// Closes — the kernel closes it, the worker reads EOF and shuts itself
	// down instead of lingering as an orphan.
	lifeline *os.File
	killed   atomic.Bool
	reap     sync.Once

	mu    sync.Mutex
	conns []*pipeConn
	next  int
	// gen counts pool sweeps (closeConns). A dial that started against an
	// older generation must not install its connection: the sweeper has
	// already passed and would never tear it down.
	gen int
}

// conn returns a live pooled connection, dialing lazily. The dial happens
// with w.mu released: holding the pool lock across a network connect (up to
// DialTimeout against a dead host) would convoy every caller that only
// wanted to pick an already-live connection — the same class of stall as
// the PR 5 blockFor convoy, but on the client pool.
func (w *worker) conn() (*pipeConn, error) {
	if w.killed.Load() {
		return nil, unreachableErr(w.addr, errors.New("worker killed"))
	}
	w.mu.Lock()
	for i := 0; i < len(w.conns); i++ {
		w.next = (w.next + 1) % len(w.conns)
		if c := w.conns[w.next]; c != nil && !c.isDead() {
			w.mu.Unlock()
			return c, nil
		}
	}
	slot := w.next
	gen := w.gen
	w.mu.Unlock()

	c, err := dialWorker(w.addr, w.opts)
	if err != nil {
		return nil, err
	}

	w.mu.Lock()
	// Kill/Close may have swept the pool while we were dialing; a connection
	// installed now would never be torn down.
	if w.killed.Load() || w.gen != gen {
		w.mu.Unlock()
		c.nc.Close()
		return nil, unreachableErr(w.addr, errors.New("worker closed while dialing"))
	}
	if old := w.conns[slot]; old == nil || old.isDead() {
		w.conns[slot] = c
		w.mu.Unlock()
		return c, nil
	}
	// A concurrent dial already filled the slot; use the winner and fold our
	// spare connection back into the first free slot rather than leaking it.
	for i, old := range w.conns {
		if old == nil || old.isDead() {
			w.conns[i] = c
			w.mu.Unlock()
			return c, nil
		}
	}
	winner := w.conns[slot]
	w.mu.Unlock()
	c.nc.Close()
	return winner, nil
}

// closeConns tears down every pooled connection (failing their in-flight
// calls with err when non-nil).
func (w *worker) closeConns(err error) {
	w.mu.Lock()
	conns := w.conns
	w.conns = make([]*pipeConn, len(conns))
	w.gen++
	w.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			if err != nil {
				c.fail(err)
			} else {
				c.nc.Close()
			}
		}
	}
}

// call is one result of a pipelined request, delivered by the read loop.
type callResult struct {
	status  uint8
	payload []byte
	err     error
}

type call struct {
	reqID uint64
	ch    chan callResult
}

// pipeConn is one pipelined connection, modeled on Codis's backend
// connection: writers append a call to the FIFO and write the request frame
// under the write lock (so queue order equals wire order); a single read
// loop matches responses to calls in order.
type pipeConn struct {
	nc       net.Conn
	bw       *bufio.Writer
	br       *bufio.Reader
	maxFrame int

	wmu sync.Mutex // serializes enqueue+write so FIFO order matches the wire

	qmu     sync.Mutex
	pending []*call
	dead    bool
	err     error
	nextID  uint64
}

func dialWorker(addr string, opts Options) (*pipeConn, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, unreachableErr(addr, err)
	}
	c := &pipeConn{
		nc:       nc,
		bw:       bufio.NewWriterSize(nc, 64<<10),
		br:       bufio.NewReaderSize(nc, 64<<10),
		maxFrame: opts.MaxFrame,
	}
	nc.SetDeadline(time.Now().Add(opts.DialTimeout))
	if err := SendHello(c.bw, helloFrame); err != nil {
		nc.Close()
		return nil, unreachableErr(addr, err)
	}
	if err := ExpectHello(c.br, helloFrame); err != nil {
		nc.Close()
		return nil, unreachableErr(addr, err)
	}
	nc.SetDeadline(time.Time{})
	//distenc:goroutine-owned-by conn-close -- readLoop exits when the connection dies or closes (ReadFrame errors), and fail/closeConns always close the conn
	go c.readLoop()
	return c, nil
}

func (c *pipeConn) isDead() bool {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	return c.dead
}

// fail marks the connection dead, closes it, and delivers err to every
// pending call. Idempotent.
func (c *pipeConn) fail(err error) {
	c.qmu.Lock()
	if c.dead {
		c.qmu.Unlock()
		return
	}
	c.dead = true
	c.err = err
	pend := c.pending
	c.pending = nil
	c.qmu.Unlock()
	c.nc.Close()
	for _, cl := range pend {
		cl.ch <- callResult{err: err}
	}
}

func (c *pipeConn) readLoop() {
	for {
		frame, err := rdd.ReadFrame(c.br, c.maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		reqID, status, payload, err := parseResponse(frame)
		if err != nil {
			c.fail(err)
			return
		}
		c.qmu.Lock()
		if len(c.pending) == 0 {
			c.qmu.Unlock()
			c.fail(fmt.Errorf("transport: unsolicited response %d", reqID))
			return
		}
		cl := c.pending[0]
		c.pending = c.pending[1:]
		c.qmu.Unlock()
		if cl.reqID != reqID {
			mismatch := fmt.Errorf("transport: response %d for request %d (pipeline desync)", reqID, cl.reqID)
			cl.ch <- callResult{err: mismatch}
			c.fail(mismatch)
			return
		}
		cl.ch <- callResult{status: status, payload: payload}
	}
}

// roundTrip sends one request and waits for its response (or timeout, which
// condemns the whole connection — a one-request stall means the server-side
// sequential handler is stuck, so everything queued behind it is too).
//
//distenc:lockheld-ok -- wmu is the wire-order lock: writing the frame under it is its entire purpose (FIFO request order must match the read loop's FIFO response matching)
func (c *pipeConn) roundTrip(req request, payload []byte, timeout time.Duration) (uint8, []byte, error) {
	c.wmu.Lock()
	c.qmu.Lock()
	if c.dead {
		err := c.err
		c.qmu.Unlock()
		c.wmu.Unlock()
		return 0, nil, err
	}
	c.nextID++
	req.reqID = c.nextID
	cl := &call{reqID: req.reqID, ch: make(chan callResult, 1)}
	c.pending = append(c.pending, cl)
	c.qmu.Unlock()
	frame := appendRequest(make([]byte, 0, reqHeaderLen+len(payload)), req, payload)
	err := rdd.WriteFrame(c.bw, frame)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
		// fail delivered to our call too; drain it so the channel is settled.
		<-cl.ch
		return 0, nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-cl.ch:
		return res.status, res.payload, res.err
	case <-timer.C:
		c.fail(fmt.Errorf("transport: request timed out after %v", timeout))
		res := <-cl.ch
		if res.err != nil {
			return 0, nil, res.err
		}
		return res.status, res.payload, nil
	}
}

// oneWay writes a request without reserving a response slot (opDie: the
// server exits instead of answering).
//
//distenc:lockheld-ok -- wmu is the wire-order lock; see roundTrip
func (c *pipeConn) oneWay(req request) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	frame := appendRequest(make([]byte, 0, reqHeaderLen), req, nil)
	if rdd.WriteFrame(c.bw, frame) == nil {
		c.bw.Flush()
	}
}

// call performs one round trip against worker m, classifying every
// connection-level failure as the machine being unreachable.
func (t *Client) call(m int, op uint8, id rdd.BlockID, payload []byte) (uint8, []byte, error) {
	if m < 0 || m >= len(t.workers) {
		return 0, nil, fmt.Errorf("transport: no worker %d (have %d)", m, len(t.workers))
	}
	w := t.workers[m]
	c, err := w.conn()
	if err != nil {
		return 0, nil, err
	}
	req := request{op: op, kind: uint8(id.Kind), owner: id.Owner, mapP: id.Map, reduce: id.Reduce}
	status, resp, err := c.roundTrip(req, payload, t.opts.CallTimeout)
	if err != nil {
		if errors.Is(err, rdd.ErrMachineUnreachable) {
			return 0, nil, err
		}
		return 0, nil, unreachableErr(w.addr, err)
	}
	return status, resp, nil
}

// Workers reports how many workers the client fronts.
func (t *Client) Workers() int { return len(t.workers) }

// Put stores a block image on worker m.
func (t *Client) Put(m int, id rdd.BlockID, data []byte) error {
	status, resp, err := t.call(m, opPut, id, data)
	if err != nil {
		return err
	}
	if status != stOK {
		return fmt.Errorf("transport: put %v on worker %d: %s", id, m, resp)
	}
	return nil
}

// Fetch returns a block image from worker m.
func (t *Client) Fetch(m int, id rdd.BlockID) ([]byte, error) {
	status, resp, err := t.call(m, opGet, id, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case stOK:
		return resp, nil
	case stNotFound:
		return nil, fmt.Errorf("%w: %v on worker %d", rdd.ErrBlockNotFound, id, m)
	default:
		return nil, fmt.Errorf("transport: fetch %v from worker %d: %s", id, m, resp)
	}
}

// Drop asks worker m to forget owner's blocks, best-effort.
func (t *Client) Drop(m int, owner int64) {
	t.call(m, opDrop, rdd.BlockID{Owner: owner}, nil)
}

// Ping round-trips a liveness probe to worker m.
func (t *Client) Ping(m int) error {
	status, resp, err := t.call(m, opPing, rdd.BlockID{}, nil)
	if err != nil {
		return err
	}
	if status != stOK {
		return fmt.Errorf("transport: ping worker %d: %s", m, resp)
	}
	return nil
}

// Kill terminates worker m's process: SIGKILL for spawned workers (the
// crash KillMachine models), a fire-and-forget die request for external
// ones. Idempotent; subsequent Puts/Fetches fail fast as unreachable.
func (t *Client) Kill(m int) error {
	if m < 0 || m >= len(t.workers) {
		return fmt.Errorf("transport: no worker %d (have %d)", m, len(t.workers))
	}
	w := t.workers[m]
	if w.killed.Swap(true) {
		return nil
	}
	if w.cmd != nil {
		w.cmd.Process.Kill()
		w.reap.Do(func() { w.cmd.Wait() })
		if w.lifeline != nil {
			w.lifeline.Close()
		}
	} else if c, err := dialWorker(w.addr, w.opts); err == nil {
		c.oneWay(request{op: opDie})
		c.nc.Close()
	}
	w.closeConns(unreachableErr(w.addr, errors.New("worker killed")))
	return nil
}

// Close shuts the transport down: connections close, spawned workers get
// SIGTERM (graceful drain), then SIGKILL after a grace period, and their
// scratch directories are removed. External workers are left running.
func (t *Client) Close() error {
	var firstErr error
	for _, w := range t.workers {
		w.closeConns(nil)
		if w.cmd != nil && !w.killed.Swap(true) {
			w.cmd.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			//distenc:goroutine-owned-by channel-drain -- both select arms below join done (the timeout arm SIGKILLs first, so the Wait and this goroutine finish)
			go func(w *worker) {
				w.reap.Do(func() { w.cmd.Wait() })
				close(done)
			}(w)
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				w.cmd.Process.Kill()
				<-done
			}
		}
		if w.lifeline != nil {
			w.lifeline.Close()
		}
		if w.dataDir != "" {
			if err := os.RemoveAll(w.dataDir); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Addrs returns each worker's address, index-aligned with machine IDs.
func (t *Client) Addrs() []string {
	addrs := make([]string, len(t.workers))
	for i, w := range t.workers {
		addrs[i] = w.addr
	}
	return addrs
}

// DialWorkers connects to n already-running distenc-worker daemons and
// verifies each with a ping. The workers are index-aligned with the
// cluster's machine IDs.
func DialWorkers(addrs []string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	t := &Client{opts: opts}
	for _, addr := range addrs {
		t.workers = append(t.workers, &worker{
			opts:  opts,
			addr:  addr,
			conns: make([]*pipeConn, opts.PoolSize),
		})
	}
	for m := range t.workers {
		if err := t.Ping(m); err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: worker %d (%s) not answering: %w", m, addrs[m], err)
		}
	}
	return t, nil
}

// StartWorkers spawns n worker processes by re-execing the current binary
// (which must call WorkerHook early in main or TestMain) and returns a
// client connected to them. Each worker listens on an ephemeral localhost
// port and gets its own scratch directory for checkpoint blocks; Close tears
// everything down.
func StartWorkers(n int, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("transport: locating own binary: %w", err)
	}
	t := &Client{opts: opts}
	for i := 0; i < n; i++ {
		w, err := spawnWorker(exe, opts)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: spawning worker %d: %w", i, err)
		}
		t.workers = append(t.workers, w)
	}
	return t, nil
}

// spawnWorker launches one worker process and waits for its LISTEN line.
func spawnWorker(exe string, opts Options) (*worker, error) {
	dataDir, err := os.MkdirTemp("", "distenc-worker-")
	if err != nil {
		return nil, err
	}
	pr, pw, err := os.Pipe()
	if err != nil {
		os.RemoveAll(dataDir)
		return nil, err
	}
	lr, lw, err := os.Pipe()
	if err != nil {
		pr.Close()
		pw.Close()
		os.RemoveAll(dataDir)
		return nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), envListen+"=127.0.0.1:0", envData+"="+dataDir, envLifeline+"=1")
	cmd.Stdin = lr // lifeline: EOF here tells the worker its driver is gone
	cmd.Stdout = pw
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		pr.Close()
		pw.Close()
		lr.Close()
		lw.Close()
		os.RemoveAll(dataDir)
		return nil, err
	}
	pw.Close() // child holds the write end now
	lr.Close() // and the lifeline's read end

	addrCh := make(chan string, 1)
	//distenc:goroutine-owned-by process-lifetime -- drains the child's stdout until EOF, which arrives exactly when the worker process exits (Close reaps it); the addrCh handoff is buffered
	go func() {
		defer pr.Close()
		sc := bufio.NewScanner(pr)
		reported := false
		for sc.Scan() {
			line := sc.Text()
			if !reported && len(line) > len(listenLinePrefix) && line[:len(listenLinePrefix)] == listenLinePrefix {
				addrCh <- line[len(listenLinePrefix):]
				reported = true
				// Keep draining so the worker's stdout never blocks.
			}
		}
		if !reported {
			close(addrCh)
		}
	}()

	var addr string
	select {
	case a, ok := <-addrCh:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			lw.Close()
			os.RemoveAll(dataDir)
			return nil, errors.New("worker exited before reporting its address")
		}
		addr = a
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		lw.Close()
		os.RemoveAll(dataDir)
		return nil, errors.New("timed out waiting for worker to report its address")
	}
	return &worker{
		opts:     opts,
		addr:     addr,
		cmd:      cmd,
		dataDir:  dataDir,
		lifeline: lw,
		conns:    make([]*pipeConn, opts.PoolSize),
	}, nil
}
