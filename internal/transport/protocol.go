// Package transport is the TCP execution backend for the rdd engine: a block
// server that runs as a real worker process (cmd/distenc-worker, or any
// binary re-execing itself through WorkerHook) and a pooling, pipelining
// client that implements rdd.Transport for the driver.
//
// The wire protocol is deliberately thin. Every message is one
// length-prefixed frame (rdd.WriteFrame / rdd.ReadFrame — u32 little-endian
// byte count, then the payload), and block payloads are carried verbatim:
// the bytes a worker stores and serves are exactly the rdd.BinaryRecord /
// PackedRows v2 block images the engine's codecs produce, so the engine's
// byte accounting and the chaos suite's bit-identical-factors property are
// independent of which backend moved the bytes.
//
// Frame layouts (all integers little-endian):
//
//	hello    (both directions, once per connection)
//	  "DTW" magic | version u8
//
//	request  reqID u64 | op u8 | kind u8 | owner i64 | map i32 | reduce i32 | payload…
//	response reqID u64 | status u8 | payload…
//
// A connection carries pipelined requests: the client may have many requests
// in flight; the server handles each connection's requests sequentially and
// answers in order, so responses match requests FIFO (reqID is echoed and
// verified as a cross-check). The model is Codis's proxy↔backend connection:
// one goroutine per accepted connection, a writer that batches flushes while
// more input is buffered, and graceful drain on shutdown.
package transport

import (
	"encoding/binary"
	"fmt"
)

// protoMagic and protoVersion open every connection (hello frame) so a
// mis-dialed port fails loudly instead of hanging in the request loop.
var helloFrame = []byte{'D', 'T', 'W', 1}

// Request opcodes.
const (
	opPut   = 1 // store payload under (kind, owner, map, reduce)
	opGet   = 2 // fetch the block; response payload is the image
	opDrop  = 3 // forget every block of owner
	opPing  = 4 // liveness probe
	opDie   = 5 // terminate the worker process immediately (no response)
	opDrain = 6 // acknowledge, then close this connection gracefully
)

// Response status codes.
const (
	stOK       = 0
	stNotFound = 1
	stError    = 2 // payload is the error text
)

// reqHeaderLen is the fixed request header: reqID(8) op(1) kind(1) owner(8)
// map(4) reduce(4).
const reqHeaderLen = 26

// respHeaderLen is the fixed response header: reqID(8) status(1).
const respHeaderLen = 9

// request is one decoded request header; the payload rides separately.
type request struct {
	reqID  uint64
	op     uint8
	kind   uint8
	owner  int64
	mapP   int32
	reduce int32
}

// appendRequest appends the framed-payload-less request header and payload.
func appendRequest(buf []byte, r request, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, r.reqID)
	buf = append(buf, r.op, r.kind)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.owner))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.mapP))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.reduce))
	return append(buf, payload...)
}

// parseRequest splits a request frame into its header and payload.
func parseRequest(frame []byte) (request, []byte, error) {
	if len(frame) < reqHeaderLen {
		return request{}, nil, fmt.Errorf("transport: request frame of %d bytes, want >= %d", len(frame), reqHeaderLen)
	}
	r := request{
		reqID:  binary.LittleEndian.Uint64(frame),
		op:     frame[8],
		kind:   frame[9],
		owner:  int64(binary.LittleEndian.Uint64(frame[10:])),
		mapP:   int32(binary.LittleEndian.Uint32(frame[18:])),
		reduce: int32(binary.LittleEndian.Uint32(frame[22:])),
	}
	return r, frame[reqHeaderLen:], nil
}

// appendResponse appends a response header and payload.
func appendResponse(buf []byte, reqID uint64, status uint8, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, reqID)
	buf = append(buf, status)
	return append(buf, payload...)
}

// parseResponse splits a response frame into reqID, status and payload.
func parseResponse(frame []byte) (uint64, uint8, []byte, error) {
	if len(frame) < respHeaderLen {
		return 0, 0, nil, fmt.Errorf("transport: response frame of %d bytes, want >= %d", len(frame), respHeaderLen)
	}
	return binary.LittleEndian.Uint64(frame), frame[8], frame[respHeaderLen:], nil
}
