package transport

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"distenc/internal/rdd"
)

// The hello exchange is shared wire plumbing between the execution backend
// (worker protocol, magic "DTW") and the serving plane (internal/serve,
// magic "DTS"): both open every connection with one framed magic+version
// blob in each direction, so a mis-dialed port — a predict client talking to
// a worker, a worker client talking to an HTTP server — fails loudly at
// connection setup instead of hanging in a request loop trusting hostile
// length prefixes.

// helloLimit caps the hello frame size; a magic is a handful of bytes, so
// anything larger is not a peer speaking one of our protocols.
const helloLimit = 16

// SendHello writes magic as one frame and flushes it.
func SendHello(bw *bufio.Writer, magic []byte) error {
	if err := rdd.WriteFrame(bw, magic); err != nil {
		return err
	}
	return bw.Flush()
}

// ExpectHello reads one frame and verifies it equals magic.
func ExpectHello(r io.Reader, magic []byte) error {
	hello, err := rdd.ReadFrame(r, helloLimit)
	if err != nil {
		return fmt.Errorf("transport: reading hello: %w", err)
	}
	if !bytes.Equal(hello, magic) {
		return fmt.Errorf("transport: bad hello %q, want %q", hello, magic)
	}
	return nil
}
