package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"distenc/internal/rdd"
)

// FuzzReadFrame hammers the transport's wire path with arbitrary byte
// streams: the length-prefixed frame reader must never panic, never allocate
// from a prefix beyond its limit, never return a payload longer than the
// prefix promised, and must classify every torn input as io.ErrUnexpectedEOF
// rather than handing a short frame to the header parsers — which are run on
// every successfully read frame, since that is exactly what readLoop and the
// server's request loop do. CI runs this target for a 30-second smoke on
// every push, alongside FuzzDecodeRecord.
func FuzzReadFrame(f *testing.F) {
	// Well-formed seeds: a framed request, a framed response, a hello, an
	// empty frame, and back-to-back frames in one stream.
	req := appendRequest(nil, request{reqID: 7, op: opPut, kind: 1, owner: 42, mapP: 3, reduce: -1}, []byte("block payload"))
	f.Add(rdd.AppendFrame(nil, req))
	resp := appendResponse(nil, 7, stOK, []byte("fetched bytes"))
	f.Add(rdd.AppendFrame(nil, resp))
	f.Add(rdd.AppendFrame(nil, helloFrame))
	f.Add(rdd.AppendFrame(nil, nil))
	f.Add(rdd.AppendFrame(rdd.AppendFrame(nil, req), resp))

	// Torn-header seeds: every truncation point inside the length prefix.
	f.Add([]byte{})
	f.Add([]byte{0x05})
	f.Add([]byte{0x05, 0x00})
	f.Add([]byte{0x05, 0x00, 0x00})

	// Truncated payloads: prefix promises more than the stream carries.
	f.Add([]byte{0x05, 0x00, 0x00, 0x00})
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, 'a', 'b'})
	short := rdd.AppendFrame(nil, req)
	f.Add(short[:len(short)-3])

	// Oversize prefixes: just above the fuzz limit, u32 max, and a prefix
	// that would pass a naive signed compare.
	oversize := binary.LittleEndian.AppendUint32(nil, fuzzMaxFrame+1)
	f.Add(append(oversize, make([]byte, 16)...))
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF))
	f.Add(binary.LittleEndian.AppendUint32(nil, 1<<31))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := rdd.ReadFrame(r, fuzzMaxFrame)
			if err != nil {
				if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					return // clean end of stream at a frame boundary
				}
				if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, rdd.ErrFrameTooLarge) {
					return // torn or oversize input, correctly classified
				}
				t.Fatalf("ReadFrame returned unclassified error %v for %d-byte input", err, len(data))
			}
			if len(payload) > fuzzMaxFrame {
				t.Fatalf("ReadFrame returned %d bytes, above its %d limit", len(payload), fuzzMaxFrame)
			}
			// Feed every complete frame to both header parsers, as the
			// client read loop and server handler would; they must reject
			// short frames with errors, never slice out of bounds.
			if req, body, err := parseRequest(payload); err == nil {
				reenc := appendRequest(nil, req, body)
				if !bytes.Equal(reenc, payload) {
					t.Fatalf("request did not round-trip: %x -> %x", payload, reenc)
				}
			}
			if id, st, body, err := parseResponse(payload); err == nil {
				reenc := appendResponse(nil, id, st, body)
				if !bytes.Equal(reenc, payload) {
					t.Fatalf("response did not round-trip: %x -> %x", payload, reenc)
				}
			}
		}
	})
}

// fuzzMaxFrame keeps fuzz allocations small while still exercising the
// limit check: oversize prefixes are cheap to craft below u32 max.
const fuzzMaxFrame = 1 << 16
