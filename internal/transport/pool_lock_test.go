package transport

import (
	"net"
	"testing"
	"time"
)

// TestConnDialsOutsidePoolLock pins the lockorder fix in worker.conn: the
// dial must not run under w.mu. A silent listener (accepts, never answers
// the hello) holds one caller in dialWorker for the full DialTimeout; a
// second caller that only wants to look at the pool must not queue behind
// it for anywhere near that long.
func TestConnDialsOutsidePoolLock(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 4)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c // hold open, never speak: the dialer waits on hello
		}
	}()
	defer func() {
		// Stop the accept loop before touching the channel: Close unblocks
		// Accept, and only after the loop exits is closing accepted safe.
		ln.Close()
		<-acceptDone
		close(accepted)
		for c := range accepted {
			c.Close()
		}
	}()

	const dialTimeout = 3 * time.Second
	w := &worker{
		opts:  Options{DialTimeout: dialTimeout}.withDefaults(),
		addr:  ln.Addr().String(),
		conns: make([]*pipeConn, 2),
	}

	dialDone := make(chan struct{})
	go func() {
		defer close(dialDone)
		w.conn() // parks in dialWorker waiting for a hello that never comes
	}()

	time.Sleep(150 * time.Millisecond) // let the dialer take its slot and park
	start := time.Now()
	w.mu.Lock()
	held := time.Since(start)
	w.mu.Unlock()
	if held > dialTimeout/3 {
		t.Fatalf("pool lock blocked %v behind an in-flight dial (DialTimeout %v): conn() is dialing under w.mu", held, dialTimeout)
	}
	<-dialDone
}
