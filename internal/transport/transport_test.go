package transport

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"distenc/internal/leakcheck"
	"distenc/internal/rdd"
)

// TestMain lets StartWorkers re-exec this very test binary as its worker
// processes: with the env set, WorkerHook serves and exits before any test
// runs. leakcheck then holds every test to the shutdown contract: Close and
// Shutdown leave no goroutine behind.
func TestMain(m *testing.M) {
	WorkerHook()
	os.Exit(leakcheck.Main(m))
}

// startServer runs one in-process Server and returns a client fronting it.
func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(s.Shutdown)
	cl, err := DialWorkers([]string{s.Addr()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return s, cl
}

func TestPutFetchRoundTrip(t *testing.T) {
	_, cl := startServer(t)
	for _, kind := range []rdd.BlockKind{rdd.BlockShuffle, rdd.BlockBroadcast, rdd.BlockCheckpoint} {
		id := rdd.BlockID{Kind: kind, Owner: 42, Map: 3, Reduce: 1}
		want := bytes.Repeat([]byte{byte(kind)}, 10_000)
		if err := cl.Put(0, id, want); err != nil {
			t.Fatalf("put kind %d: %v", kind, err)
		}
		got, err := cl.Fetch(0, id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("fetch kind %d: %v (got %d bytes, want %d)", kind, err, len(got), len(want))
		}
	}
}

func TestFetchMissingBlock(t *testing.T) {
	_, cl := startServer(t)
	_, err := cl.Fetch(0, rdd.BlockID{Kind: rdd.BlockShuffle, Owner: 7})
	if !errors.Is(err, rdd.ErrBlockNotFound) {
		t.Fatalf("got %v, want rdd.ErrBlockNotFound", err)
	}
}

func TestDropForgetsOwner(t *testing.T) {
	_, cl := startServer(t)
	keep := rdd.BlockID{Kind: rdd.BlockShuffle, Owner: 1}
	gone := rdd.BlockID{Kind: rdd.BlockCheckpoint, Owner: 2}
	if err := cl.Put(0, keep, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(0, gone, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	cl.Drop(0, 2)
	if _, err := cl.Fetch(0, keep); err != nil {
		t.Fatalf("unrelated owner dropped too: %v", err)
	}
	if _, err := cl.Fetch(0, gone); !errors.Is(err, rdd.ErrBlockNotFound) {
		t.Fatalf("got %v, want rdd.ErrBlockNotFound after drop", err)
	}
}

func TestCheckpointBlockPersistedToDisk(t *testing.T) {
	dataDir := t.TempDir()
	s, err := NewServer("127.0.0.1:0", dataDir)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Shutdown()
	cl, err := DialWorkers([]string{s.Addr()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	id := rdd.BlockID{Kind: rdd.BlockCheckpoint, Owner: 9, Map: 4}
	want := bytes.Repeat([]byte{0xEE}, 2048)
	if err := cl.Put(0, id, want); err != nil {
		t.Fatal(err)
	}
	// The image must be on disk as a framed file, fsynced under the
	// deterministic name the data directory uses.
	raw, err := os.ReadFile(filepath.Join(dataDir, "ck9-p4.blk"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, rdd.AppendFrame(nil, want)) {
		t.Fatal("on-disk checkpoint block is not the framed image")
	}
	got, err := cl.Fetch(0, id)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("fetch after durable put: %v", err)
	}
}

func TestPipelinedConcurrentCalls(t *testing.T) {
	// One connection (PoolSize 1) carrying many interleaved requests from
	// many goroutines: responses must match requests through the FIFO.
	s, err := NewServer("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Shutdown()
	cl, err := DialWorkers([]string{s.Addr()}, Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const N = 64
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := rdd.BlockID{Kind: rdd.BlockShuffle, Owner: int64(i), Map: int32(i)}
			want := bytes.Repeat([]byte{byte(i)}, 100+i*37)
			if err := cl.Put(0, id, want); err != nil {
				errs <- err
				return
			}
			got, err := cl.Fetch(0, id)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("call %d: response mismatch (%d bytes, want %d)", i, len(got), len(want))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSpawnedWorkersRoundTrip(t *testing.T) {
	cl, err := StartWorkers(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", cl.Workers())
	}
	for m := 0; m < 2; m++ {
		id := rdd.BlockID{Kind: rdd.BlockShuffle, Owner: 5, Map: int32(m)}
		want := bytes.Repeat([]byte{byte(m + 1)}, 5000)
		if err := cl.Put(m, id, want); err != nil {
			t.Fatalf("put to worker %d: %v", m, err)
		}
		got, err := cl.Fetch(m, id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("fetch from worker %d: %v", m, err)
		}
	}
}

func TestKillMakesWorkerUnreachable(t *testing.T) {
	cl, err := StartWorkers(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	id := rdd.BlockID{Kind: rdd.BlockShuffle, Owner: 11}
	if err := cl.Put(1, id, []byte("on the doomed worker")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Kill(1); err != nil {
		t.Fatal(err)
	}
	// Every path to the dead worker — fetch of an existing block, fresh put,
	// ping — must surface the retryable unreachable sentinel, not hang or
	// return a hard error.
	if _, err := cl.Fetch(1, id); !errors.Is(err, rdd.ErrMachineUnreachable) {
		t.Fatalf("fetch after kill: got %v, want rdd.ErrMachineUnreachable", err)
	}
	if err := cl.Put(1, id, []byte("x")); !errors.Is(err, rdd.ErrMachineUnreachable) {
		t.Fatalf("put after kill: got %v, want rdd.ErrMachineUnreachable", err)
	}
	if err := cl.Kill(1); err != nil {
		t.Fatalf("second kill not idempotent: %v", err)
	}
	// The surviving worker is unaffected.
	if err := cl.Put(0, id, []byte("alive")); err != nil {
		t.Fatalf("surviving worker: %v", err)
	}
}

func TestKillMidFlightFailsPendingCalls(t *testing.T) {
	cl, err := StartWorkers(1, Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	id := rdd.BlockID{Kind: rdd.BlockShuffle, Owner: 3}
	if err := cl.Put(0, id, bytes.Repeat([]byte{1}, 1<<20)); err != nil {
		t.Fatal(err)
	}
	// Race a stream of fetches against the kill: every call must resolve —
	// success before the kill or unreachable after — never a wrong payload
	// and never a hang.
	done := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			data, err := cl.Fetch(0, id)
			if err != nil {
				if !errors.Is(err, rdd.ErrMachineUnreachable) {
					done <- fmt.Errorf("fetch %d: got %v, want rdd.ErrMachineUnreachable", i, err)
					return
				}
				done <- nil
				return
			}
			if len(data) != 1<<20 {
				done <- fmt.Errorf("fetch %d: short payload %d", i, len(data))
				return
			}
		}
	}()
	if err := cl.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialWorkersRejectsDeadAddress(t *testing.T) {
	// A listener that closes immediately: DialWorkers must fail its ping
	// with the unreachable sentinel rather than succeed vacuously.
	_, err := DialWorkers([]string{"127.0.0.1:1"}, Options{})
	if err == nil {
		t.Fatal("DialWorkers succeeded against a closed port")
	}
	if !errors.Is(err, rdd.ErrMachineUnreachable) {
		t.Fatalf("got %v, want rdd.ErrMachineUnreachable", err)
	}
}

func TestGracefulShutdownFinishesInFlight(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	cl, err := DialWorkers([]string{s.Addr()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	id := rdd.BlockID{Kind: rdd.BlockShuffle, Owner: 8}
	if err := cl.Put(0, id, []byte("before drain")); err != nil {
		t.Fatal(err)
	}
	// Shutdown with an idle pipelined connection open must not hang on it.
	s.Shutdown()
	if err := cl.Put(0, id, []byte("after drain")); !errors.Is(err, rdd.ErrMachineUnreachable) {
		t.Fatalf("put after shutdown: got %v, want rdd.ErrMachineUnreachable", err)
	}
}

// TestWorkerExitsWhenLifelineCloses is the orphaned-worker regression: a
// spawned worker must not outlive its driver. The driver may die through
// exit paths that skip the deferred Close (log.Fatal, a crash), so the only
// reliable death signal is the lifeline pipe on the worker's stdin — when
// the driver's write end closes, the worker must shut itself down. An
// orphan would hold its inherited stderr open forever and wedge any shell
// pipeline reading the driver's output.
func TestWorkerExitsWhenLifelineCloses(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	lr, lw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DISTENC_WORKER_LISTEN=127.0.0.1:0",
		"DISTENC_WORKER_DATA="+t.TempDir(),
		"DISTENC_WORKER_LIFELINE=1")
	cmd.Stdin = lr
	cmd.Stdout = pw
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lr.Close()
	pw.Close()

	// Wait for the worker to come up (it reports its address on stdout)
	// before pulling the lifeline, so the test exercises a serving worker
	// rather than racing its startup.
	line := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		if sc.Scan() {
			line <- sc.Text()
		}
		close(line)
		for sc.Scan() {
		}
		pr.Close()
	}()
	select {
	case l, ok := <-line:
		if !ok || !strings.HasPrefix(l, listenLinePrefix) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("worker did not report an address (got %q)", l)
		}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("timed out waiting for worker to start")
	}

	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker exited with error after lifeline close: %v", err)
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-done
		t.Fatal("worker outlived its driver: still running 10s after the lifeline closed")
	}
}
