package bench

import (
	"fmt"
	"io"
	"slices"

	"distenc/internal/core"
	"distenc/internal/rdd"
	"distenc/internal/synth"
)

// Summary condenses repeated timing samples. Wall-clock on a shared host is
// noisy in one direction only — interference makes runs slower, never
// faster — so the min is the stable signal and the median shows the spread;
// every timing table in this package reports both.
type Summary struct {
	Min    float64
	Median float64
}

// summarize computes min and median of xs (NaN-free input assumed).
func summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := slices.Clone(xs)
	slices.Sort(s)
	med := s[len(s)/2]
	if len(s)%2 == 0 {
		med = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	return Summary{Min: s[0], Median: med}
}

// KernelRow is one kernel's repeated-run timing on the fixed workload.
type KernelRow struct {
	Kernel  core.KernelMode
	Seconds Summary
}

// WireRow is one wire format's shuffle traffic on the fixed workload.
type WireRow struct {
	Wire           rdd.WireFormat
	BytesShuffled  int64
	ReductionVsRaw float64 // raw bytes / this format's bytes
}

// Kernels benchmarks the MTTKRP kernel and wire-format matrix on one fixed
// workload: each kernel runs the full distributed solve several times
// (min/median wall-clock reported — the noise-robust form of
// BenchmarkMTTKRPStage), and each wire format runs once (BytesShuffled is
// deterministic) to measure the compressed-shuffle reduction against the
// Lemma 3 accounting.
func Kernels(w io.Writer, p Profile) ([]KernelRow, []WireRow) {
	p = p.withDefaults()
	dim, nnz, rank, iters, reps := 4_000, 80_000, 10, 3, 5
	if p.Small {
		dim, nnz, reps = 1_000, 10_000, 3
	}
	header(w, "MTTKRP kernels & wire formats — fused vs SpMV-chain, raw vs compressed shuffle",
		"auto tracks the faster kernel; compressed wire cuts the Lemma 3 shuffle term")

	t := synth.ScalabilityTensor([]int{dim, dim, dim}, nnz, p.Seed)
	opt := core.Options{Rank: rank, MaxIter: iters, Tol: 0, Seed: p.Seed}

	fmt.Fprintf(w, "dim=%d nnz=%d rank=%d iters=%d machines=%d reps=%d\n\n", dim, nnz, rank, iters, p.Machines, reps)
	fmt.Fprintf(w, "%-8s | %10s %10s\n", "kernel", "min s", "median s")
	var kernels []KernelRow
	for _, k := range []core.KernelMode{core.KernelFused, core.KernelSpMV, core.KernelAuto} {
		kp := p
		kp.Kernel = k
		secs := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			o := runMethod(kp, MethodDisTenC, p.Machines, t, nil, opt, false)
			if o.Status != StatusOK {
				fmt.Fprintf(w, "%-8s | %s\n", k, o.Status)
				secs = nil
				break
			}
			secs = append(secs, o.Elapsed.Seconds())
		}
		if secs == nil {
			continue
		}
		row := KernelRow{Kernel: k, Seconds: summarize(secs)}
		kernels = append(kernels, row)
		fmt.Fprintf(w, "%-8s | %10.3f %10.3f\n", k, row.Seconds.Min, row.Seconds.Median)
	}

	fmt.Fprintf(w, "\n%-8s | %12s %12s\n", "wire", "shuffledB", "vs raw")
	var wires []WireRow
	var rawBytes int64
	for _, wf := range []rdd.WireFormat{rdd.WireRaw, rdd.WireVarint, rdd.WireF32} {
		wp := p
		wp.Wire = wf
		o := runMethod(wp, MethodDisTenC, p.Machines, t, nil, opt, false)
		if o.Status != StatusOK {
			fmt.Fprintf(w, "%-8s | %s\n", wf, o.Status)
			continue
		}
		row := WireRow{Wire: wf, BytesShuffled: o.Metrics.BytesShuffled}
		if wf == rdd.WireRaw {
			rawBytes = row.BytesShuffled
		}
		if rawBytes > 0 {
			row.ReductionVsRaw = float64(rawBytes) / float64(row.BytesShuffled)
		}
		wires = append(wires, row)
		fmt.Fprintf(w, "%-8s | %12d %11.2fx\n", wf, row.BytesShuffled, row.ReductionVsRaw)
	}
	return kernels, wires
}
