package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"
	"sync"
	"time"

	"distenc/internal/core"
	"distenc/internal/rdd"
	"distenc/internal/serve"
	"distenc/internal/synth"
)

// ServeReport is the BENCH_serve.json schema: one record per serving
// configuration (cache on/off), capturing throughput and tail latency of
// the binary predict plane.
type ServeReport struct {
	Config    string  `json:"config"`
	Dims      []int   `json:"dims"`
	Rank      int     `json:"rank"`
	Clients   int     `json:"clients"`
	Batch     int     `json:"batch"`
	Seconds   float64 `json:"seconds"`
	Queries   int64   `json:"queries"`
	CellsPerS float64 `json:"cellsPerSec"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50Ms"`
	P99Ms     float64 `json:"p99Ms"`
	CacheHit  float64 `json:"cacheHitRate"`
}

// Serve benchmarks the completion-as-a-service plane: a model trained at
// profile scale is served over the binary protocol to a small fleet of
// pipelined clients issuing fixed-size batch predictions, with the hot-row
// cache off and on. QPS and tail latencies print as a table and land in
// BENCH_serve.json for the CI smoke job.
func Serve(w io.Writer, p Profile) {
	p = p.withDefaults()
	dims, nnz, iters := []int{200, 160, 120}, 40000, 5
	duration := 5 * time.Second
	if p.Small {
		dims, nnz, iters = []int{40, 30, 20}, 3000, 3
		duration = time.Second
	}
	const (
		clients = 4
		batch   = 64
		rank    = 8
	)

	fmt.Fprintf(w, "== serving plane: QPS / latency (dims=%v rank=%d, %d clients × batch %d, %s per config)\n",
		dims, rank, clients, batch, duration)

	// Train once, serve the checkpoint in both configurations.
	ckptDir, err := os.MkdirTemp("", "distenc-bench-serve-")
	if err != nil {
		fmt.Fprintf(w, "serve bench: %v\n", err)
		return
	}
	defer os.RemoveAll(ckptDir)
	d := synth.LinearFactorDataset(dims, 4, nnz, p.Seed)
	c := rdd.MustNewCluster(rdd.Config{Machines: p.Machines})
	_, err = core.CompleteDistributed(c, d.Tensor, d.Sims, core.DistOptions{Options: core.Options{
		Rank: rank, MaxIter: iters, Tol: 1e-300, Seed: p.Seed,
		CheckpointEvery: iters, CheckpointDir: ckptDir,
	}})
	c.Close()
	if err != nil {
		fmt.Fprintf(w, "serve bench: training: %v\n", err)
		return
	}
	ckpt := core.CheckpointPath(ckptDir)

	fmt.Fprintf(w, "%-10s %10s %12s %9s %9s %9s\n", "config", "QPS", "cells/s", "p50(ms)", "p99(ms)", "cacheHit%")
	var reports []ServeReport
	for _, cfg := range []struct {
		name      string
		cacheRows int
	}{
		{"nocache", 0},
		{"cache", 4096},
	} {
		rep, err := runServeLoad(ckpt, d.Tensor.Dims, cfg.name, cfg.cacheRows, clients, batch, rank, duration, p.Seed)
		if err != nil {
			fmt.Fprintf(w, "serve bench %s: %v\n", cfg.name, err)
			return
		}
		reports = append(reports, rep)
		fmt.Fprintf(w, "%-10s %10.0f %12.0f %9.3f %9.3f %8.1f%%\n",
			rep.Config, rep.QPS, rep.CellsPerS, rep.P50Ms, rep.P99Ms, 100*rep.CacheHit)
	}

	out, err := os.Create("BENCH_serve.json")
	if err != nil {
		fmt.Fprintf(w, "serve bench: %v\n", err)
		return
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err == nil {
		err = out.Close()
	} else {
		out.Close()
	}
	if err != nil {
		fmt.Fprintf(w, "serve bench: writing BENCH_serve.json: %v\n", err)
		return
	}
	fmt.Fprintln(w, "wrote BENCH_serve.json")
}

// runServeLoad starts one in-process server over the checkpoint and drives
// it with `clients` connections issuing random valid batches for the given
// duration.
func runServeLoad(ckpt string, dims []int, name string, cacheRows, clients, batch, rank int, duration time.Duration, seed uint64) (ServeReport, error) {
	reg := serve.NewRegistry()
	m, err := serve.LoadModel("bench", ckpt, "", cacheRows)
	if err != nil {
		return ServeReport{}, err
	}
	reg.Put(m)
	srv, err := serve.NewServer(reg, serve.Config{Listen: "127.0.0.1:0", CacheRows: cacheRows})
	if err != nil {
		return ServeReport{}, err
	}
	done := make(chan error, 1)
	//distenc:goroutine-owned-by done-channel -- runServeLoad drains done after srv.Shutdown below
	go func() { done <- srv.Serve() }()

	type clientResult struct {
		lat []time.Duration
		err error
	}
	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	deadline := time.Now().Add(duration)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := serve.Dial(srv.Addr())
			if err != nil {
				results[g].err = err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewPCG(seed, uint64(g)))
			flat := make([]int32, batch*len(dims))
			for time.Now().Before(deadline) {
				for i := range flat {
					flat[i] = int32(rng.IntN(dims[i%len(dims)]))
				}
				start := time.Now()
				if _, err := cl.Predict("bench", len(dims), flat); err != nil {
					results[g].err = err
					return
				}
				results[g].lat = append(results[g].lat, time.Since(start))
			}
		}(g)
	}
	wg.Wait()
	srv.Shutdown()
	<-done

	var lats []time.Duration
	for _, r := range results {
		if r.err != nil {
			return ServeReport{}, r.err
		}
		lats = append(lats, r.lat...)
	}
	if len(lats) == 0 {
		return ServeReport{}, fmt.Errorf("no queries completed")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	queries := int64(len(lats))
	snap := reg.Snapshot()
	return ServeReport{
		Config:    name,
		Dims:      dims,
		Rank:      rank,
		Clients:   clients,
		Batch:     batch,
		Seconds:   duration.Seconds(),
		Queries:   queries,
		QPS:       float64(queries) / duration.Seconds(),
		CellsPerS: float64(queries*int64(batch)) / duration.Seconds(),
		P50Ms:     float64(lats[len(lats)/2].Microseconds()) / 1000,
		P99Ms:     float64(lats[len(lats)*99/100].Microseconds()) / 1000,
		CacheHit:  snap[0].HitRate(),
	}, nil
}
