package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"distenc/internal/core"
	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/part"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
	"distenc/internal/synth"
)

// AblationResult is one design-choice comparison: the optimized path the
// paper proposes versus the naive alternative it replaces.
type AblationResult struct {
	ID        string
	Optimized time.Duration
	Naive     time.Duration
	// Note carries a non-timing observation (e.g. load imbalance values).
	Note string
	// OptimizedImbalance/NaiveImbalance hold the A3 load-balance metrics
	// (max partition load / mean load; 1.0 is perfect). Zero when unused.
	OptimizedImbalance, NaiveImbalance float64
}

// Speedup returns naive/optimized.
func (a AblationResult) Speedup() float64 {
	if a.Optimized <= 0 {
		return 0
	}
	return float64(a.Naive) / float64(a.Optimized)
}

// Ablations times the five design choices DESIGN.md calls out (A1–A5),
// optimized versus naive, on a shared medium workload.
func Ablations(w io.Writer, p Profile) []AblationResult {
	p = p.withDefaults()
	dim, rank, reps := 600, 10, 5
	if p.Small {
		dim, reps = 200, 3
	}
	header(w, "Ablations — §III design choices, optimized vs naive",
		"every optimized path at least matches its naive alternative, most are order-of-magnitude faster")
	rng := rand.New(rand.NewPCG(p.Seed, 1))
	var out []AblationResult

	// A1: spectral inverse (pre-eigendecomposed, Eq. 7) vs a dense solve of
	// (ηI+αL) per iteration.
	{
		l := graph.NewLaplacian(graph.TriDiagonal(dim))
		sp, err := graph.ExactSpectral(l)
		if err == nil {
			x := randDense(rng, dim, rank)
			opt := timeIt(reps, func() { sp.InverseApply(0.1, 0.5, x) })
			naive := timeIt(reps, func() {
				if _, err := graph.DirectInverseApply(l, 0.1, 0.5, x); err != nil {
					panic(err)
				}
			})
			out = append(out, AblationResult{ID: "A1 trace-reg spectral inverse", Optimized: opt, Naive: naive})
		}
	}

	// A2: residual-tensor H1 (Eq. 16) vs materializing the completed dense
	// tensor and the explicit Khatri-Rao product.
	{
		smallDim := 40 // dense path is cubic in the mode size
		d := synth.LinearFactorDataset([]int{smallDim, smallDim, smallDim}, 3, 4_000, p.Seed)
		factors := core.InitFactors(d.Tensor.Dims, rank, p.Seed)
		model := sptensor.NewKruskal(factors...)
		grams := make([]*mat.Dense, 3)
		for n, f := range factors {
			grams[n] = mat.Gram(f)
		}
		opt := timeIt(reps, func() {
			e := sptensor.Residual(d.Tensor, model)
			for n := 0; n < 3; n++ {
				h := mat.Mul(factors[n], sptensor.GramProduct(grams, n))
				_ = mat.AddMat(h, sptensor.MTTKRP(e, factors, n, nil))
			}
		})
		naive := timeIt(reps, func() {
			x := sptensor.FromKruskal(model)
			for e := 0; e < d.Tensor.NNZ(); e++ {
				x.Set(d.Tensor.Index(e), d.Tensor.Val[e])
			}
			for n := 0; n < 3; n++ {
				var u *mat.Dense
				for k := 0; k < 3; k++ {
					if k == n {
						continue
					}
					if u == nil {
						u = factors[k]
					} else {
						u = mat.KhatriRao(factors[k], u)
					}
				}
				_ = mat.Mul(x.Matricize(n), u)
			}
		})
		out = append(out, AblationResult{ID: "A2 residual-tensor update", Optimized: opt, Naive: naive})
	}

	// A3: greedy (Algorithm 2) vs uniform partitioning on a skewed tensor —
	// compare load imbalance and DisTenC wall-clock.
	{
		t := skewedTensor(dim*10, 40_000, p.Seed)
		counts := t.ModeCounts(0)
		g := part.Stats(counts, part.Greedy(counts, p.Machines))
		u := part.Stats(counts, part.Uniform(len(counts), p.Machines))
		og := runMethod(p, MethodDisTenC, p.Machines, t, nil, core.Options{Rank: rank, MaxIter: 2, Tol: 0, Seed: p.Seed}, true)
		ou := runMethodUniform(p, t, core.Options{Rank: rank, MaxIter: 2, Tol: 0, Seed: p.Seed})
		out = append(out, AblationResult{
			ID: "A3 greedy block partitioning", Optimized: og.Sim, Naive: ou.Sim,
			Note:               fmt.Sprintf("imbalance greedy %.2f vs uniform %.2f", g.Imbalance, u.Imbalance),
			OptimizedImbalance: g.Imbalance, NaiveImbalance: u.Imbalance,
		})
	}

	// A4: Hadamard-of-Grams UᵀU (Eq. 12, cached grams) vs the explicit
	// Khatri-Rao Gram.
	{
		factors := core.InitFactors([]int{dim, dim, dim}, rank, p.Seed)
		grams := make([]*mat.Dense, 3)
		for n, f := range factors {
			grams[n] = mat.Gram(f)
		}
		opt := timeIt(reps, func() {
			for n := 0; n < 3; n++ {
				_ = sptensor.GramProduct(grams, n)
			}
		})
		naive := timeIt(reps, func() {
			for n := 0; n < 3; n++ {
				var u *mat.Dense
				for k := 0; k < 3; k++ {
					if k == n {
						continue
					}
					if u == nil {
						u = factors[k]
					} else {
						u = mat.KhatriRao(factors[k], u)
					}
				}
				_ = mat.Gram(u)
			}
		})
		out = append(out, AblationResult{ID: "A4 Gram-product caching", Optimized: opt, Naive: naive})
	}

	// A6: full grid blocking (the paper's P×Q×K compartmentalization) vs
	// mode-0-only blocking — compare factor-row shuffle volume.
	{
		t := synth.ScalabilityTensor([]int{dim * 3, dim * 3, dim * 3}, 40_000, p.Seed)
		opt := core.Options{Rank: rank, MaxIter: 2, Tol: 0, Seed: p.Seed}
		grid := runGridVariant(p, t, opt, true)
		mode0 := runGridVariant(p, t, opt, false)
		out = append(out, AblationResult{
			ID: "A6 grid (P×Q×K) blocking", Optimized: grid.Sim, Naive: mode0.Sim,
			Note: fmt.Sprintf("shuffled %.1fMB grid vs %.1fMB mode-0",
				float64(grid.Metrics.BytesShuffled)/(1<<20), float64(mode0.Metrics.BytesShuffled)/(1<<20)),
			OptimizedImbalance: float64(grid.Metrics.BytesShuffled),
			NaiveImbalance:     float64(mode0.Metrics.BytesShuffled),
		})
	}

	// A5: right-to-left multiplication order in the B update (Eq. 7) vs
	// left-to-right (Eq. 6) which materializes an I×I matrix.
	{
		l := graph.NewLaplacian(graph.TriDiagonal(dim))
		sp, err := graph.ExactSpectral(l)
		if err == nil {
			x := randDense(rng, dim, rank)
			opt := timeIt(reps, func() { sp.InverseApply(0.1, 0.5, x) })
			naive := timeIt(reps, func() { sp.InverseApplyLeftToRight(0.1, 0.5, x) })
			out = append(out, AblationResult{ID: "A5 multiply-order (Eq.7 vs Eq.6)", Optimized: opt, Naive: naive})
		}
	}

	for _, a := range out {
		fmt.Fprintf(w, "%-36s optimized %10.4fs  naive %10.4fs  speedup %6.1fx  %s\n",
			a.ID, a.Optimized.Seconds(), a.Naive.Seconds(), a.Speedup(), a.Note)
	}
	return out
}

func runGridVariant(p Profile, t *sptensor.Tensor, opt core.Options, grid bool) Outcome {
	c := rdd.MustNewCluster(rdd.Config{
		Machines:        8,
		CoresPerMachine: 1,
		SerializeTasks:  true,
	})
	defer c.Close()
	start := time.Now()
	res, err := core.CompleteDistributed(c, t, nil, core.DistOptions{Options: opt, GridPartition: grid, Kernel: p.Kernel, Wire: p.Wire})
	o := Outcome{
		Method: MethodDisTenC, Elapsed: time.Since(start), Sim: c.SimulatedTime(),
		Result: res, Metrics: c.Metrics().Snapshot(),
	}
	if err != nil {
		o.Status = "error: " + err.Error()
	} else {
		o.Status = StatusOK
	}
	return o
}

func runMethodUniform(p Profile, t *sptensor.Tensor, opt core.Options) Outcome {
	c := rdd.MustNewCluster(rdd.Config{
		Machines:        p.Machines,
		CoresPerMachine: 1,
		SerializeTasks:  true,
	})
	defer c.Close()
	start := time.Now()
	res, err := core.CompleteDistributed(c, t, nil, core.DistOptions{Options: opt, UniformPartition: true, Kernel: p.Kernel, Wire: p.Wire})
	o := Outcome{Method: MethodDisTenC, Elapsed: time.Since(start), Sim: c.SimulatedTime(), Result: res}
	if err != nil {
		o.Status = "error: " + err.Error()
	} else {
		o.Status = StatusOK
	}
	return o
}

func timeIt(reps int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c)
	data := m.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return m
}

// skewedTensor concentrates half the non-zeros on the first few slices of
// mode 0, the load-imbalance regime Algorithm 2 targets.
func skewedTensor(dim, nnz int, seed uint64) *sptensor.Tensor {
	rng := rand.New(rand.NewPCG(seed, 2))
	t := sptensor.New(dim, dim, dim)
	idx := make([]int32, 3)
	for e := 0; e < nnz; e++ {
		if e%2 == 0 {
			idx[0] = int32(rng.IntN(dim / 100))
		} else {
			idx[0] = int32(rng.IntN(dim))
		}
		idx[1] = int32(rng.IntN(dim))
		idx[2] = int32(rng.IntN(dim))
		t.Append(idx, rng.NormFloat64())
	}
	return t.Dedupe()
}
