package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"

	"distenc/internal/core"
	"distenc/internal/metrics"
	"distenc/internal/synth"
)

// Fig5 reproduces Figure 5: relative reconstruction error on the
// linear-factor synthetic (tri-diagonal similarity, Eq. 17) at missing rates
// 30/50/70%. Auxiliary-information methods (DisTenC, TFAI) should win, with
// the gap growing as data gets scarcer; results average over `runs` seeds as
// the paper averages over 5.
func Fig5(w io.Writer, p Profile) map[Method][]float64 {
	p = p.withDefaults()
	dim, rank, fitRank, pool, iters, runs := 100, 20, 10, 25_000, 100, 3
	if p.Small {
		dim, pool, iters, runs = 40, 6_000, 30, 2
	}
	missing := []float64{0.3, 0.5, 0.7}
	header(w, "Figure 5 — reconstruction error vs missing rate",
		"DisTenC ≈ TFAI best; SCouT next; ALS and FlexiFact worst; gaps widen with missing rate")
	fmt.Fprintf(w, "%-10s", "missing")
	for _, m := range AllMethods {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintln(w)

	errs := map[Method][]float64{}
	for _, miss := range missing {
		sums := map[Method]float64{}
		for run := 0; run < runs; run++ {
			d := synth.LinearFactorDataset([]int{dim, dim, dim}, rank, pool, p.Seed+uint64(run))
			rng := rand.New(rand.NewPCG(p.Seed+uint64(run), 77))
			train, test := d.Tensor.Split(miss, rng)
			opt := core.Options{Rank: fitRank, MaxIter: iters, Tol: 1e-9, Seed: p.Seed + uint64(run), Alpha: 1}
			for _, m := range AllMethods {
				o := runMethod(p, m, p.Machines, train, d.Sims, opt, false)
				if o.Status != StatusOK {
					sums[m] += 1 // count failures as full error
					continue
				}
				sums[m] += metrics.RelativeError(test, o.Result.Model)
			}
		}
		fmt.Fprintf(w, "%-10.0f%%", miss*100)
		for _, m := range AllMethods {
			avg := sums[m] / float64(runs)
			errs[m] = append(errs[m], avg)
			fmt.Fprintf(w, "%14.4f", avg)
		}
		fmt.Fprintln(w)
	}
	return errs
}

// Fig6a reproduces Figure 6a: held-out RMSE on the Netflix and Twitter-list
// stand-ins for ALS, SCouT and DisTenC with a 50/50 split, averaged over
// `runs` seeds.
func Fig6a(w io.Writer, p Profile) map[string]map[Method]float64 {
	p = p.withDefaults()
	runs, iters := 3, 100
	netCfg := synth.RecsysConfig{Users: 600, Items: 240, Contexts: 12, Rank: 6, NNZ: 25_000, Noise: 0.35, Seed: p.Seed}
	twCfg := synth.RecsysConfig{Users: 400, Items: 400, Contexts: 16, Rank: 6, NNZ: 20_000, Noise: 0.15, Seed: p.Seed}
	if p.Small {
		runs, iters = 2, 100
		netCfg = synth.RecsysConfig{Users: 300, Items: 150, Contexts: 10, Rank: 5, NNZ: 15_000, Noise: 0.25, Seed: p.Seed}
		twCfg = synth.RecsysConfig{Users: 200, Items: 200, Contexts: 16, Rank: 5, NNZ: 10_000, Noise: 0.15, Seed: p.Seed}
	}
	header(w, "Figure 6a — recommender RMSE (Netflix-sim, Twitter-sim)",
		"DisTenC best; auxiliary-info methods beat ALS; ~15–21% average improvement")
	methods := []Method{MethodALS, MethodSCouT, MethodDisTenC}
	out := map[string]map[Method]float64{}

	for _, ds := range []struct {
		name string
		gen  func(seed uint64) *synth.Dataset
	}{
		{"netflix-sim", func(s uint64) *synth.Dataset { c := netCfg; c.Seed = s; return synth.NetflixSim(c) }},
		{"twitter-sim", func(s uint64) *synth.Dataset { c := twCfg; c.Seed = s; return synth.TwitterSim(c) }},
	} {
		sums := map[Method]float64{}
		for run := 0; run < runs; run++ {
			d := ds.gen(p.Seed + uint64(run))
			rng := rand.New(rand.NewPCG(p.Seed+uint64(run), 99))
			train, test := d.Tensor.Split(0.5, rng)
			opt := core.Options{Rank: 6, MaxIter: iters, Tol: 1e-9, Seed: p.Seed + uint64(run), Alpha: 5}
			if p.Small {
				opt.Rank = 5
			}
			for _, m := range methods {
				o := runMethod(p, m, p.Machines, train, d.Sims, opt, false)
				if o.Status != StatusOK {
					sums[m] += 10
					continue
				}
				sums[m] += metrics.RMSE(test, o.Result.Model)
			}
		}
		out[ds.name] = map[Method]float64{}
		fmt.Fprintf(w, "%-14s", ds.name)
		for _, m := range methods {
			avg := sums[m] / float64(runs)
			out[ds.name][m] = avg
			fmt.Fprintf(w, "  %s=%.4f", m, avg)
		}
		base := out[ds.name][MethodALS]
		fmt.Fprintf(w, "  (DisTenC improvement over ALS: %.1f%%)\n",
			metrics.Improvement(base, out[ds.name][MethodDisTenC]))
	}
	return out
}

// Fig6b reproduces Figure 6b: training-RMSE-versus-time convergence traces
// on the Netflix stand-in. DisTenC should reach low error fastest; SCouT,
// paying MapReduce disk costs, slowest.
func Fig6b(w io.Writer, p Profile) map[Method]metrics.Trace {
	p = p.withDefaults()
	cfg := synth.RecsysConfig{Users: 600, Items: 240, Contexts: 12, Rank: 6, NNZ: 25_000, Noise: 0.35, Seed: p.Seed}
	iters := 100
	if p.Small {
		cfg = synth.RecsysConfig{Users: 300, Items: 150, Contexts: 10, Rank: 5, NNZ: 15_000, Noise: 0.25, Seed: p.Seed}
		iters = 60
	}
	header(w, "Figure 6b — convergence rate on Netflix-sim",
		"DisTenC converges fastest to the best solution; SCouT takes much longer (MapReduce)")
	d := synth.NetflixSim(cfg)
	rng := rand.New(rand.NewPCG(p.Seed, 101))
	train, _ := d.Tensor.Split(0.5, rng)
	opt := core.Options{Rank: cfg.Rank, MaxIter: iters, Tol: 0, Seed: p.Seed, Alpha: 5}
	methods := []Method{MethodALS, MethodSCouT, MethodDisTenC}
	traces := map[Method]metrics.Trace{}
	for _, m := range methods {
		o := runMethod(p, m, p.Machines, train, d.Sims, opt, false)
		if o.Status != StatusOK {
			fmt.Fprintf(w, "%s: %s\n", m, o.Status)
			continue
		}
		traces[m] = o.Result.Trace
		final, _ := o.Result.Trace.Final()
		fmt.Fprintf(w, "%-10s final train RMSE %.4f after %.2fs (%d iters)\n",
			m, final.TrainRMSE, final.Elapsed.Seconds(), len(o.Result.Trace))
		for _, pt := range o.Result.Trace {
			fmt.Fprintf(w, "  t=%7.3fs rmse=%.4f\n", pt.Elapsed.Seconds(), pt.TrainRMSE)
		}
	}
	return traces
}

// Fig7 reproduces Figure 7: link prediction on the Facebook stand-in — RMSE
// bars plus convergence traces for ALS, SCouT and DisTenC.
func Fig7(w io.Writer, p Profile) map[Method]float64 {
	p = p.withDefaults()
	cfg := synth.LinkPredConfig{Users: 500, Days: 8, Rank: 6, NNZ: 30_000, Noise: 0.1, Seed: p.Seed}
	iters, runs := 100, 3
	if p.Small {
		cfg = synth.LinkPredConfig{Users: 250, Days: 5, Rank: 5, NNZ: 12_000, Noise: 0.1, Seed: p.Seed}
		iters, runs = 25, 2
	}
	header(w, "Figure 7 — link prediction on Facebook-sim",
		"DisTenC and SCouT comparable, both beat ALS (~27% and ~19%); DisTenC converges fastest")
	methods := []Method{MethodALS, MethodSCouT, MethodDisTenC}
	sums := map[Method]float64{}
	for run := 0; run < runs; run++ {
		c := cfg
		c.Seed = p.Seed + uint64(run)
		d := synth.FacebookSim(c)
		rng := rand.New(rand.NewPCG(c.Seed, 103))
		train, test := d.Tensor.Split(0.5, rng)
		opt := core.Options{Rank: cfg.Rank, MaxIter: iters, Tol: 1e-9, Seed: c.Seed, Alpha: 5}
		for _, m := range methods {
			o := runMethod(p, m, p.Machines, train, d.Sims, opt, false)
			if o.Status != StatusOK {
				sums[m] += 10
				continue
			}
			sums[m] += metrics.RMSE(test, o.Result.Model)
		}
	}
	out := map[Method]float64{}
	for _, m := range methods {
		out[m] = sums[m] / float64(runs)
		fmt.Fprintf(w, "%-10s RMSE %.4f\n", m, out[m])
	}
	fmt.Fprintf(w, "DisTenC improvement over ALS: %.1f%%; SCouT over ALS: %.1f%%\n",
		metrics.Improvement(out[MethodALS], out[MethodDisTenC]),
		metrics.Improvement(out[MethodALS], out[MethodSCouT]))
	return out
}

// TableII prints the dataset inventory (the scaled stand-ins of Table II).
func TableII(w io.Writer, p Profile) []*synth.Dataset {
	p = p.withDefaults()
	header(w, "Table II — datasets", "the ~100×-scaled stand-ins described in DESIGN.md §2")
	sets := []*synth.Dataset{
		synth.NetflixSim(synth.RecsysConfig{Users: 4_800, Items: 1_800, Contexts: 200, Rank: 8, NNZ: 1_000_000, Noise: 0.25, Seed: p.Seed}),
		synth.FacebookSim(synth.LinkPredConfig{Users: 6_000, Days: 5, Rank: 8, NNZ: 155_000, Noise: 0.1, Seed: p.Seed}),
		synth.DBLPSim(synth.DBLPConfig{Authors: 3_170, Papers: 3_170, Venues: 629, Concepts: 10, Rank: 8, NNZ: 104_000, Seed: p.Seed}),
		synth.TwitterSim(synth.RecsysConfig{Users: 6_400, Items: 6_400, Contexts: 16, Rank: 8, NNZ: 113_000, Noise: 0.15, Seed: p.Seed}),
	}
	if p.Small {
		sets = []*synth.Dataset{
			synth.NetflixSim(synth.RecsysConfig{Users: 480, Items: 180, Contexts: 20, Rank: 5, NNZ: 10_000, Noise: 0.25, Seed: p.Seed}),
			synth.FacebookSim(synth.LinkPredConfig{Users: 600, Days: 5, Rank: 5, NNZ: 15_500, Noise: 0.1, Seed: p.Seed}),
			synth.DBLPSim(synth.DBLPConfig{Authors: 317, Papers: 317, Venues: 63, Concepts: 5, Rank: 5, NNZ: 10_400, Seed: p.Seed}),
			synth.TwitterSim(synth.RecsysConfig{Users: 640, Items: 640, Contexts: 16, Rank: 5, NNZ: 11_300, Noise: 0.15, Seed: p.Seed}),
		}
	}
	for _, d := range sets {
		fmt.Fprintf(w, "  %s\n", d)
	}
	return sets
}

// ConceptRow is one row of the Table III reproduction.
type ConceptRow struct {
	Component    int
	TopAuthors   []int
	TopVenues    []int
	AuthorPurity float64
	VenuePurity  float64
}

// TableIII reproduces the concept-discovery experiment (§IV-G): factorize
// the DBLP stand-in with author-author similarity, take the top-k entries of
// each component's author and venue factors, and measure how pure each
// component is with respect to the planted concepts. High purity is the
// analogue of the paper's "all conferences within a concept are correlated".
func TableIII(w io.Writer, p Profile) []ConceptRow {
	p = p.withDefaults()
	cfg := synth.DBLPConfig{Authors: 360, Papers: 480, Venues: 80, Concepts: 4, Rank: 4, NNZ: 16_000, Seed: p.Seed}
	iters, topK := 400, 8
	if p.Small {
		cfg = synth.DBLPConfig{Authors: 180, Papers: 240, Venues: 40, Concepts: 4, Rank: 4, NNZ: 8_000, Seed: p.Seed}
		iters, topK = 120, 5
	}
	header(w, "Table III — concept discovery on DBLP-sim",
		"each factor component concentrates on one planted concept (high purity)")
	d := synth.DBLPSim(cfg)
	rng := rand.New(rand.NewPCG(p.Seed, 105))
	train, _ := d.Tensor.Split(0.5, rng)
	// InitScale is pinned to 1: the mean-matched scaling that accelerates
	// the rating/link experiments blurs component separation on 0/1 count
	// data, where the unscaled U(0,1) init already has the right magnitude.
	o := runMethod(p, MethodDisTenC, p.Machines, train, d.Sims, core.Options{
		Rank: cfg.Rank, MaxIter: iters, Tol: 1e-12, Seed: p.Seed, Alpha: 2, InitScale: 1,
	}, false)
	if o.Status != StatusOK {
		fmt.Fprintf(w, "DisTenC failed: %s\n", o.Status)
		return nil
	}
	authorConcepts, venueConcepts := d.Concepts[0], d.Concepts[2]
	var rows []ConceptRow
	for r := 0; r < cfg.Rank; r++ {
		ta := topIndices(o.Result.Model.Factors[0], r, topK)
		tv := topIndices(o.Result.Model.Factors[2], r, topK)
		row := ConceptRow{
			Component:    r,
			TopAuthors:   ta,
			TopVenues:    tv,
			AuthorPurity: purity(ta, authorConcepts),
			VenuePurity:  purity(tv, venueConcepts),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "component %d: author purity %.2f, venue purity %.2f (top authors %v; top venues %v)\n",
			r, row.AuthorPurity, row.VenuePurity, ta, tv)
	}
	return rows
}

// topIndices returns the k row indices scoring highest in factor column r by
// contrast — the value in component r minus the row's mean value in the other
// components. This is the paper's "filtering too general elements": rows that
// load equally on every component (generic authors/venues) are suppressed, so
// the top-k reflects what is specific to the concept.
func topIndices(f interface {
	Rows() int
	Cols() int
	At(i, j int) float64
}, r, k int) []int {
	type iv struct {
		i int
		v float64
	}
	rank := f.Cols()
	all := make([]iv, f.Rows())
	for i := range all {
		var rest float64
		for j := 0; j < rank; j++ {
			if j != r {
				rest += f.At(i, j)
			}
		}
		score := f.At(i, r)
		if rank > 1 {
			score -= rest / float64(rank-1)
		}
		all[i] = iv{i, score}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].v > all[b].v })
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].i
	}
	return out
}

// purity is the fraction of indices sharing the most common planted concept.
func purity(idx []int, concepts []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	counts := map[int]int{}
	best := 0
	for _, i := range idx {
		counts[concepts[i]]++
		if counts[concepts[i]] > best {
			best = counts[concepts[i]]
		}
	}
	return float64(best) / float64(len(idx))
}
