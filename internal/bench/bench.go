// Package bench is the experiment harness: one driver per table and figure
// of the paper's evaluation (§IV), each printing the same rows/series the
// paper reports, at a laptop scale documented in DESIGN.md §2. The absolute
// numbers differ from the paper's 10-node cluster; the shapes — who wins,
// who runs out of memory first, how curves grow — are the reproduction
// target, and EXPERIMENTS.md records paper-vs-measured per experiment.
package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"distenc/internal/baselines"
	"distenc/internal/core"
	"distenc/internal/graph"
	"distenc/internal/metrics"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
	"distenc/internal/transport"
)

// Profile selects experiment scale.
type Profile struct {
	// Small shrinks every sweep to seconds-scale sizes (used by the
	// `go test -bench` smoke benchmarks); the default full profile is what
	// cmd/distenc-bench runs.
	Small bool
	// Machines is the simulated cluster width for non-scalability
	// experiments (default 4).
	Machines int
	// MemoryPerMachine is the per-machine budget for the Figure 3 sweeps.
	// Zero picks the profile default (64 MB full, 24 MB small).
	MemoryPerMachine int64
	// DiskLatencyPerMB models HDFS latency for MapReduce-mode baselines
	// (default 10ms/MB).
	DiskLatencyPerMB time.Duration
	// Seed drives every generator.
	Seed uint64
	// TraceFile, when non-empty, makes the Phases experiment record
	// per-task spans and write a Chrome-trace JSON of its run to this path.
	TraceFile string
	// StageSummary makes the Phases experiment print the engine's
	// per-stage timing/shuffle table alongside the phase breakdown.
	StageSummary bool
	// Fault, when set, runs the Phases experiment's cluster under the given
	// seeded chaos schedule (task failures, a machine kill, stragglers) so
	// the recovery cost shows up in its stage table and recovery log.
	Fault *rdd.FaultPlan
	// Speculation, when enabled, runs the Phases experiment's cluster with
	// speculative execution so straggler mitigation shows up in its stage
	// table (spec/wastedB columns) and recovery log.
	Speculation rdd.SpeculationConfig
	// Kernel selects DisTenC's MTTKRP kernel for every experiment (auto by
	// default — the per-partition cost model).
	Kernel core.KernelMode
	// Wire selects DisTenC's shuffle wire format for every experiment
	// (lossless delta-varint by default).
	Wire rdd.WireFormat
	// Backend selects the execution backend: "" or "inproc" keeps every
	// cluster in-process; "tcp" spawns one worker process per machine for
	// each cluster (the binary must call transport.WorkerHook first thing
	// in main).
	Backend string
}

// transportFor builds the profile's execution backend for one cluster of
// the given width. The returned cleanup must run after the cluster's Close
// (defer it before deferring Close); with the in-process backend the
// Transport is nil and cleanup a no-op.
func (p Profile) transportFor(machines int) (rdd.Transport, func(), error) {
	switch p.Backend {
	case "", "inproc":
		return nil, func() {}, nil
	case "tcp":
		cl, err := transport.StartWorkers(machines, transport.Options{})
		if err != nil {
			return nil, nil, err
		}
		return cl, func() { cl.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("bench: unknown backend %q (want inproc or tcp)", p.Backend)
	}
}

func (p Profile) withDefaults() Profile {
	if p.Machines <= 0 {
		p.Machines = 4
	}
	if p.MemoryPerMachine == 0 {
		if p.Small {
			p.MemoryPerMachine = 24 << 20
		} else {
			p.MemoryPerMachine = 64 << 20
		}
	}
	if p.DiskLatencyPerMB == 0 {
		p.DiskLatencyPerMB = 10 * time.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Method identifies one competitor.
type Method string

// The five methods of the paper's comparison.
const (
	MethodALS       Method = "ALS"
	MethodTFAI      Method = "TFAI"
	MethodSCouT     Method = "SCouT"
	MethodFlexiFact Method = "FlexiFact"
	MethodDisTenC   Method = "DisTenC"
)

// AllMethods lists the comparison in the paper's ordering.
var AllMethods = []Method{MethodALS, MethodTFAI, MethodSCouT, MethodFlexiFact, MethodDisTenC}

// usesAux reports whether the method consumes auxiliary similarity.
func (m Method) usesAux() bool { return m != MethodALS }

// engineMode returns the execution substrate the method was published on.
func (m Method) engineMode() rdd.Mode {
	if m == MethodSCouT || m == MethodFlexiFact {
		return rdd.ModeMapReduce // Hadoop-based systems
	}
	return rdd.ModeInMemory
}

// Outcome is one method×workload cell of a figure.
type Outcome struct {
	Method     Method
	Status     string // "ok", "OOM", or an error class
	Elapsed    time.Duration
	Sim        time.Duration // engine critical-path time
	Result     *core.Result
	Metrics    rdd.MetricsSnapshot
	PeakMemory int64 // max per-machine peak memory
}

// StatusOK is the success status string.
const StatusOK = "ok"

// StatusOOM marks a run killed by the memory budget.
const StatusOOM = "O.O.M."

// runMethod executes one method on a fresh cluster sized by the profile.
func runMethod(p Profile, m Method, machines int, t *sptensor.Tensor, sims []*graph.Similarity, opt core.Options, serialize bool) Outcome {
	tp, tpClose, err := p.transportFor(machines)
	if err != nil {
		return Outcome{Method: m, Status: "backend: " + err.Error()}
	}
	defer tpClose()
	cfg := rdd.Config{
		Machines:         machines,
		CoresPerMachine:  1,
		MemoryPerMachine: p.MemoryPerMachine,
		Mode:             m.engineMode(),
		SerializeTasks:   serialize,
		Transport:        tp,
	}
	if cfg.Mode == rdd.ModeMapReduce {
		cfg.DiskLatencyPerMB = p.DiskLatencyPerMB
	}
	c, err := rdd.NewCluster(cfg)
	if err != nil {
		return Outcome{Method: m, Status: "cluster: " + err.Error()}
	}
	defer c.Close()

	var auxiliary []*graph.Similarity
	if m.usesAux() {
		auxiliary = sims
	}
	start := time.Now()
	var res *core.Result
	switch m {
	case MethodALS:
		res, err = baselines.ALS(c, t, opt)
	case MethodTFAI:
		res, err = baselines.TFAI(c, t, auxiliary, opt)
	case MethodSCouT:
		res, err = baselines.SCouT(c, t, auxiliary, opt)
	case MethodFlexiFact:
		res, err = baselines.FlexiFact(c, t, auxiliary, baselines.FlexiFactOptions{Options: opt})
	case MethodDisTenC:
		// Grid blocking is the paper's §III-C compartmentalization; the
		// harness always runs DisTenC with it.
		res, err = core.CompleteDistributed(c, t, auxiliary, core.DistOptions{Options: opt, GridPartition: true, Kernel: p.Kernel, Wire: p.Wire})
	default:
		err = fmt.Errorf("bench: unknown method %q", m)
	}
	out := Outcome{
		Method:     m,
		Elapsed:    time.Since(start),
		Sim:        c.SimulatedTime(),
		Result:     res,
		Metrics:    c.Metrics().Snapshot(),
		PeakMemory: c.MaxPeakMemory(),
	}
	switch {
	case err == nil:
		out.Status = StatusOK
	case errors.Is(err, rdd.ErrOutOfMemory):
		out.Status = StatusOOM
	default:
		out.Status = "error: " + err.Error()
	}
	return out
}

// header prints a figure banner.
func header(w io.Writer, title, paperShape string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
	fmt.Fprintf(w, "paper shape: %s\n", paperShape)
}

// cell renders an outcome's runtime for the sweep tables.
func cell(o Outcome) string {
	if o.Status != StatusOK {
		return o.Status
	}
	return fmt.Sprintf("%.2fs", o.Elapsed.Seconds())
}

// rmseOf evaluates a completed model on held-out data, or NaN-safe "-".
func rmseOf(o Outcome, test *sptensor.Tensor) string {
	if o.Status != StatusOK || o.Result == nil {
		return o.Status
	}
	return fmt.Sprintf("%.4f", metrics.RMSE(test, o.Result.Model))
}
