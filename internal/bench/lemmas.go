package bench

import (
	"fmt"
	"io"

	"distenc/internal/core"
	"distenc/internal/sptensor"
	"distenc/internal/synth"
)

// LemmaRow records measured engine counters against the analytic terms of
// the paper's Lemmas 1–3 for one DisTenC run.
type LemmaRow struct {
	Dim, NNZ, Rank, Machines, Iters int
	// Measured quantities.
	Seconds       float64
	PeakMemory    int64
	BytesShuffled int64
	// Analytic terms (up to constants).
	FlopBound    int64 // Lemma 1's dominant O(T·N·R·nnz) term
	MemoryBound  int64 // Lemma 2's O(nnz + 3NIR) dominant terms (bytes)
	ShuffleBound int64 // Lemma 3's O(nnz + T·N·M·I·R) terms (bytes)
}

// Lemmas runs DisTenC across a small sweep and reports measured
// time/memory/shuffle next to the corresponding Lemma bounds. The check is
// that measured quantities grow with (and stay within a constant factor of a
// linear fit to) the analytic terms.
func Lemmas(w io.Writer, p Profile) []LemmaRow {
	p = p.withDefaults()
	type cfg struct{ dim, nnz, rank, machines int }
	sweeps := []cfg{
		{2_000, 20_000, 10, 4},
		{4_000, 40_000, 10, 4},
		{4_000, 40_000, 20, 4},
		{4_000, 40_000, 10, 8},
	}
	if p.Small {
		sweeps = []cfg{
			{500, 5_000, 5, 2},
			{1_000, 10_000, 5, 2},
			{1_000, 10_000, 10, 4},
		}
	}
	const iters = 3
	header(w, "Lemmas 1–3 — measured vs analytic accounting",
		"measured time, peak memory and shuffled bytes track the lemma terms across the sweep")
	fmt.Fprintf(w, "%-8s %-8s %-5s %-4s | %10s %12s %12s | %12s %12s %12s\n",
		"dim", "nnz", "R", "M", "seconds", "peakMemB", "shuffledB", "flopBound", "memBound", "shufBound")

	var rows []LemmaRow
	for _, s := range sweeps {
		t := synth.ScalabilityTensor([]int{s.dim, s.dim, s.dim}, s.nnz, p.Seed)
		o := runMethod(p, MethodDisTenC, s.machines, t, nil,
			core.Options{Rank: s.rank, MaxIter: iters, Tol: 0, Seed: p.Seed}, false)
		if o.Status != StatusOK {
			fmt.Fprintf(w, "%-8d %-8d %-5d %-4d %s\n", s.dim, s.nnz, s.rank, s.machines, o.Status)
			continue
		}
		n := int64(3)
		row := LemmaRow{
			Dim: s.dim, NNZ: t.NNZ(), Rank: s.rank, Machines: s.machines, Iters: iters,
			Seconds:       o.Elapsed.Seconds(),
			BytesShuffled: o.Metrics.BytesShuffled,
			FlopBound:     int64(iters) * n * sptensor.MTTKRPFlops(t.NNZ(), 3, s.rank),
			MemoryBound:   int64(t.NNZ())*12 + 3*n*int64(s.dim)*int64(s.rank)*8,
			ShuffleBound:  int64(t.NNZ())*12 + int64(iters)*n*int64(s.machines)*int64(s.dim)*int64(s.rank)*8,
		}
		// Peak memory: the engine reports per-machine peaks; take the max.
		row.PeakMemory = o.peakMem()
		rows = append(rows, row)
		fmt.Fprintf(w, "%-8d %-8d %-5d %-4d | %10.3f %12d %12d | %12d %12d %12d\n",
			row.Dim, row.NNZ, row.Rank, row.Machines,
			row.Seconds, row.PeakMemory, row.BytesShuffled,
			row.FlopBound, row.MemoryBound, row.ShuffleBound)
	}
	return rows
}

// peakMem is filled by runMethod via the metrics snapshot; the engine's peak
// is not part of MetricsSnapshot, so Outcome carries it separately.
func (o Outcome) peakMem() int64 { return o.PeakMemory }
