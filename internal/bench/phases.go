package bench

import (
	"fmt"
	"io"
	"os"

	"distenc/internal/core"
	"distenc/internal/rdd"
	"distenc/internal/synth"
)

// Phases runs DisTenC once and prints the per-iteration phase breakdown
// (mttkrp-map, mttkrp-reduce, gram, driver algebra) plus the engine's
// per-stage rollups. It is the observability companion to Figures 3–4: the
// paper's scalability story rests on the MTTKRP stages dominating each
// iteration, and this is the experiment that shows whether they do.
//
// With Profile.StageSummary the engine's stage table is printed too; with
// Profile.TraceFile a Chrome-trace JSON of every task is written there.
func Phases(w io.Writer, p Profile) *core.Result {
	p = p.withDefaults()
	dim, nnz, rank, iters := 10_000, 200_000, 10, 5
	if p.Small {
		dim, nnz, iters = 2_000, 20_000, 3
	}
	header(w, "Phase breakdown — per-iteration stage attribution",
		"MTTKRP map+reduce dominate each iteration; driver algebra stays flat as data grows")

	t := synth.ScalabilityTensor([]int{dim, dim, dim}, nnz, p.Seed)
	tp, tpClose, err := p.transportFor(p.Machines)
	if err != nil {
		fmt.Fprintf(w, "backend: %v\n", err)
		return nil
	}
	defer tpClose()
	c, err := rdd.NewCluster(rdd.Config{
		Machines:         p.Machines,
		MemoryPerMachine: p.MemoryPerMachine,
		TaskTrace:        p.TraceFile != "",
		Fault:            p.Fault,
		Speculation:      p.Speculation,
		Transport:        tp,
	})
	if err != nil {
		fmt.Fprintf(w, "cluster: %v\n", err)
		return nil
	}
	defer c.Close()
	// Tol < 0 disables convergence stopping (0 means "use the default"),
	// so every requested iteration appears in the breakdown.
	opt := core.Options{Rank: rank, MaxIter: iters, Tol: -1, Seed: p.Seed}
	res, err := core.CompleteDistributed(c, t, nil, core.DistOptions{Options: opt, GridPartition: true, Kernel: p.Kernel, Wire: p.Wire})
	if err != nil {
		fmt.Fprintf(w, "DisTenC: %v\n", err)
		return nil
	}

	fmt.Fprintf(w, "dim=%d nnz=%d rank=%d machines=%d\n", dim, nnz, rank, p.Machines)
	fmt.Fprint(w, res.Phases)
	if p.StageSummary {
		fmt.Fprint(w, c.Summary())
	}
	if p.TraceFile != "" {
		tf, err := os.Create(p.TraceFile)
		if err != nil {
			fmt.Fprintf(w, "trace: %v\n", err)
			return res
		}
		if err := c.WriteChromeTrace(tf); err != nil {
			fmt.Fprintf(w, "trace: %v\n", err)
		} else if err := tf.Close(); err != nil {
			fmt.Fprintf(w, "trace: %v\n", err)
		} else {
			fmt.Fprintf(w, "wrote %s (load in chrome://tracing or ui.perfetto.dev)\n", p.TraceFile)
		}
	}
	return res
}
