package bench

import (
	"fmt"
	"io"
	"time"

	"distenc/internal/core"
	"distenc/internal/graph"
	"distenc/internal/synth"
)

// Fig3a reproduces Figure 3a: running time (fixed iteration count) versus
// dimensionality I=J=K, with identity similarity and a per-machine memory
// budget. TFAI must fail first (dense intermediates), then ALS and
// FlexiFact (full factor replication), while DisTenC and SCouT reach the
// largest dimensionality.
func Fig3a(w io.Writer, p Profile) []Outcome {
	p = p.withDefaults()
	dims := []int{100, 1_000, 10_000, 100_000, 1_000_000}
	nnz, rank, iters := 100_000, 10, 3
	if p.Small {
		dims = []int{50, 500, 5_000}
		nnz, iters = 10_000, 2
	}
	header(w, "Figure 3a — runtime vs dimensionality",
		"TFAI O.O.M. first; ALS & FlexiFact O.O.M. at the top end; DisTenC and SCouT complete everything")
	fmt.Fprintf(w, "%-10s", "I=J=K")
	for _, m := range AllMethods {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintln(w)

	var all []Outcome
	for _, d := range dims {
		t := synth.ScalabilityTensor([]int{d, d, d}, nnz, p.Seed)
		opt := core.Options{Rank: rank, MaxIter: iters, Tol: 0, Seed: p.Seed}
		fmt.Fprintf(w, "%-10d", d)
		for _, m := range AllMethods {
			o := runMethod(p, m, p.Machines, t, nil, opt, false)
			o.Status = statusOrError(o)
			all = append(all, o)
			fmt.Fprintf(w, "%14s", cell(o))
		}
		fmt.Fprintln(w)
	}
	return all
}

// Fig3b reproduces Figure 3b: running time versus the number of non-zero
// elements at fixed dimensionality. Everything but TFAI scales; ALS is the
// fastest per epoch, with DisTenC ahead of the MapReduce systems.
func Fig3b(w io.Writer, p Profile) []Outcome {
	p = p.withDefaults()
	dim := 10_000
	nnzs := []int{10_000, 30_000, 100_000, 300_000}
	rank, iters := 10, 3
	if p.Small {
		dim = 2_000
		nnzs = []int{2_000, 10_000, 30_000}
		iters = 2
	}
	header(w, "Figure 3b — runtime vs non-zeros",
		"all but TFAI scale; ALS fastest with the gap to DisTenC shrinking; DisTenC beats SCouT and FlexiFact")
	fmt.Fprintf(w, "%-10s", "nnz")
	for _, m := range AllMethods {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintln(w)

	var all []Outcome
	for _, nnz := range nnzs {
		t := synth.ScalabilityTensor([]int{dim, dim, dim}, nnz, p.Seed)
		opt := core.Options{Rank: rank, MaxIter: iters, Tol: 0, Seed: p.Seed}
		fmt.Fprintf(w, "%-10d", nnz)
		for _, m := range AllMethods {
			o := runMethod(p, m, p.Machines, t, nil, opt, false)
			all = append(all, o)
			fmt.Fprintf(w, "%14s", cell(o))
		}
		fmt.Fprintln(w)
	}
	return all
}

// Fig3c reproduces Figure 3c: running time versus rank. ALS's cost climbs
// fastest with rank (normal equations), DisTenC stays flattest thanks to the
// diagonal spectral inverse.
func Fig3c(w io.Writer, p Profile) []Outcome {
	p = p.withDefaults()
	dim, nnz, iters := 1_000, 100_000, 3
	ranks := []int{10, 50, 100, 200}
	if p.Small {
		dim, nnz, iters = 300, 10_000, 2
		ranks = []int{10, 30, 60}
	}
	header(w, "Figure 3c — runtime vs rank",
		"ALS grows fastest with rank; DisTenC has the flattest curve")
	fmt.Fprintf(w, "%-10s", "rank")
	for _, m := range AllMethods {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintln(w)

	t := synth.ScalabilityTensor([]int{dim, dim, dim}, nnz, p.Seed)
	// The rank sweep exercises the trace-regularized update too, so give
	// every mode a similarity (the paper's other sweeps use identity).
	sims := []*graph.Similarity{
		graph.TriDiagonal(dim), graph.TriDiagonal(dim), graph.TriDiagonal(dim),
	}
	var all []Outcome
	for _, r := range ranks {
		opt := core.Options{Rank: r, MaxIter: iters, Tol: 0, Seed: p.Seed, TruncK: 16}
		fmt.Fprintf(w, "%-10d", r)
		for _, m := range AllMethods {
			o := runMethod(p, m, p.Machines, t, sims, opt, false)
			all = append(all, o)
			fmt.Fprintf(w, "%14s", cell(o))
		}
		fmt.Fprintln(w)
	}
	return all
}

// Fig4 reproduces Figure 4: speedup T1/TM as machines scale from 1 to 8,
// for ALS, SCouT and DisTenC (the methods the paper compares). Times are the
// engine's critical-path SimulatedTime with serialized tasks, the honest
// measure on hosts with fewer cores than simulated machines (DESIGN.md §2).
func Fig4(w io.Writer, p Profile) map[Method][]float64 {
	p = p.withDefaults()
	// The sparse regime (dim ≥ nnz) keeps per-block distinct-row counts —
	// and hence map-side combine emissions — proportional to nnz/P, the
	// setting in which the paper's 4.9×-at-8-machines linearity holds (its
	// Fig. 4 tensor is 10⁵-dimensional).
	dim, nnz, rank, iters := 100_000, 200_000, 10, 6
	machines := []int{1, 2, 4, 6, 8}
	if p.Small {
		dim, nnz, iters = 10_000, 20_000, 2
		machines = []int{1, 2, 4}
	}
	header(w, "Figure 4 — machine scalability (speedup T1/TM)",
		"DisTenC near-linear (≈4.9× at M=8); SCouT flattens from disk I/O; ALS in between")
	t := synth.ScalabilityTensor([]int{dim, dim, dim}, nnz, p.Seed)
	opt := core.Options{Rank: rank, MaxIter: iters, Tol: 0, Seed: p.Seed}
	methods := []Method{MethodALS, MethodSCouT, MethodDisTenC}

	fmt.Fprintf(w, "%-10s", "machines")
	for _, m := range methods {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintln(w)

	// The critical path is a max over machines, so a single GC-stretched
	// task distorts it; the minimum over repetitions is the noise-free
	// estimate.
	const reps = 3
	speedups := map[Method][]float64{}
	base := map[Method]float64{}
	var phaseRows []string
	for _, mach := range machines {
		fmt.Fprintf(w, "%-10d", mach)
		for _, m := range methods {
			best := 0.0
			var bestOut Outcome
			for rep := 0; rep < reps; rep++ {
				o := runMethod(p, m, mach, t, nil, opt, true)
				if o.Status != StatusOK {
					continue
				}
				if secs := o.Sim.Seconds(); secs > 0 && (best == 0 || secs < best) {
					best = secs
					bestOut = o
				}
			}
			var s float64
			if best > 0 {
				if mach == machines[0] {
					base[m] = best
				}
				s = base[m] / best
			}
			speedups[m] = append(speedups[m], s)
			fmt.Fprintf(w, "%13.2fx", s)
			if m == MethodDisTenC && bestOut.Result != nil {
				tot := bestOut.Result.Phases.Totals()
				phaseRows = append(phaseRows, fmt.Sprintf(
					"  M=%d: mttkrp-map %v, mttkrp-reduce %v, gram %v, driver %v (of %v wall)",
					mach, tot.MTTKRPMap.Round(time.Millisecond),
					tot.MTTKRPReduce.Round(time.Millisecond),
					tot.Gram.Round(time.Millisecond),
					tot.Driver.Round(time.Millisecond),
					tot.Total.Round(time.Millisecond)))
			}
		}
		fmt.Fprintln(w)
	}
	// The speedup claim is only as good as its attribution: scaling must
	// come from the MTTKRP stages (Lemma 3's object) shrinking with M, not
	// from driver algebra hiding inside the ratio.
	fmt.Fprintln(w, "DisTenC phase totals (best rep):")
	for _, r := range phaseRows {
		fmt.Fprintln(w, r)
	}
	return speedups
}

func statusOrError(o Outcome) string { return o.Status }
