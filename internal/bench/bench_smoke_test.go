package bench

import (
	"io"
	"strings"
	"testing"
)

// The smoke tests run every experiment driver at the small profile and check
// that the paper's qualitative shapes come out. They double as integration
// tests of the entire stack (engine + algorithms + generators).

func smallProfile() Profile { return Profile{Small: true, Seed: 3} }

func TestFig3aShape(t *testing.T) {
	var sb strings.Builder
	outcomes := Fig3a(&sb, smallProfile())
	if len(outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	// DisTenC and SCouT must complete every size; TFAI must OOM at the top.
	var tfaiOOM bool
	for _, o := range outcomes {
		switch o.Method {
		case MethodDisTenC, MethodSCouT:
			if o.Status != StatusOK {
				t.Fatalf("%s failed: %s", o.Method, o.Status)
			}
		case MethodTFAI:
			if o.Status == StatusOOM {
				tfaiOOM = true
			}
		}
	}
	if !tfaiOOM {
		t.Fatal("TFAI never hit the memory budget — Figure 3a shape missing")
	}
	if !strings.Contains(sb.String(), "Figure 3a") {
		t.Fatal("missing banner")
	}
}

func TestFig3bShape(t *testing.T) {
	var sb strings.Builder
	outcomes := Fig3b(&sb, smallProfile())
	for _, o := range outcomes {
		if o.Method == MethodDisTenC && o.Status != StatusOK {
			t.Fatalf("DisTenC failed: %s", o.Status)
		}
	}
}

func TestFig3cShape(t *testing.T) {
	var sb strings.Builder
	outcomes := Fig3c(&sb, smallProfile())
	ok := 0
	for _, o := range outcomes {
		if o.Status == StatusOK {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no successful rank-sweep runs")
	}
}

func TestFig4SpeedupGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("machine-scalability sweep is slow under -race")
	}
	// The speedup is a ratio of wall-clock-derived critical-path times, and
	// host interference (other test packages running in parallel under
	// `go test ./...`) slows the multi-machine run more than the serial
	// baseline — it competes for the same cores — so a loaded host skews the
	// measurement low, never high. The max over a few attempts is therefore
	// the noise-robust estimate; a genuine scalability regression fails all
	// of them.
	const attempts = 3
	var d []float64
	for i := 0; i < attempts; i++ {
		var sb strings.Builder
		speedups := Fig4(&sb, smallProfile())
		d = speedups[MethodDisTenC]
		if len(d) < 3 {
			t.Fatalf("speedups = %v", d)
		}
		if d[len(d)-1] > d[0] && d[len(d)-1] >= 1.5 {
			return
		}
		t.Logf("attempt %d/%d: DisTenC speedups %v (want growth and >= 1.5 at max machines)", i+1, attempts, d)
	}
	if d[len(d)-1] <= d[0] {
		t.Fatalf("DisTenC speedup did not grow with machines: %v", d)
	}
	t.Fatalf("DisTenC speedup at max machines too low after %d attempts: %v", attempts, d)
}

func TestFig5AuxMethodsWin(t *testing.T) {
	if testing.Short() {
		t.Skip("missing-rate accuracy sweep is slow under -race")
	}
	var sb strings.Builder
	errs := Fig5(&sb, smallProfile())
	for i := range errs[MethodDisTenC] {
		if errs[MethodDisTenC][i] >= errs[MethodALS][i] {
			t.Fatalf("missing-rate row %d: DisTenC %.4f not better than ALS %.4f",
				i, errs[MethodDisTenC][i], errs[MethodALS][i])
		}
	}
}

func TestFig6aDisTenCWins(t *testing.T) {
	if testing.Short() {
		t.Skip("recommender RMSE runs are slow under -race")
	}
	var sb strings.Builder
	out := Fig6a(&sb, smallProfile())
	for ds, rmse := range out {
		if rmse[MethodDisTenC] >= rmse[MethodALS] {
			t.Fatalf("%s: DisTenC %.4f not better than ALS %.4f", ds, rmse[MethodDisTenC], rmse[MethodALS])
		}
	}
}

func TestFig6bTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence traces are slow under -race")
	}
	var sb strings.Builder
	traces := Fig6b(&sb, smallProfile())
	tr, ok := traces[MethodDisTenC]
	if !ok || len(tr) == 0 {
		t.Fatal("no DisTenC trace")
	}
	first, last := tr[0].TrainRMSE, tr[len(tr)-1].TrainRMSE
	if last >= first {
		t.Fatalf("DisTenC trace not decreasing: %v -> %v", first, last)
	}
}

func TestFig7LinkPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("link-prediction runs are slow under -race")
	}
	var sb strings.Builder
	out := Fig7(&sb, smallProfile())
	if out[MethodDisTenC] >= out[MethodALS] {
		t.Fatalf("DisTenC %.4f not better than ALS %.4f", out[MethodDisTenC], out[MethodALS])
	}
}

func TestTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow under -race")
	}
	var sb strings.Builder
	sets := TableII(io.Discard, smallProfile())
	if len(sets) != 4 {
		t.Fatalf("datasets = %d", len(sets))
	}
	_ = sb
}

func TestTableIIIConceptPurity(t *testing.T) {
	var sb strings.Builder
	rows := TableIII(&sb, smallProfile())
	if len(rows) == 0 {
		t.Fatal("no concept rows")
	}
	var sum float64
	for _, r := range rows {
		sum += r.VenuePurity
	}
	if avg := sum / float64(len(rows)); avg < 0.5 {
		t.Fatalf("average venue purity %.2f too low — concepts not recovered", avg)
	}
}

func TestLemmas(t *testing.T) {
	var sb strings.Builder
	rows := Lemmas(&sb, smallProfile())
	if len(rows) < 3 {
		t.Fatalf("lemma rows = %d", len(rows))
	}
	// Doubling nnz (row 0 -> 1) must grow both the measured shuffle bytes
	// and the analytic bound.
	if rows[1].BytesShuffled <= rows[0].BytesShuffled {
		t.Fatalf("shuffled bytes did not grow with nnz: %d vs %d", rows[0].BytesShuffled, rows[1].BytesShuffled)
	}
	if rows[1].ShuffleBound <= rows[0].ShuffleBound {
		t.Fatal("analytic bound did not grow with nnz")
	}
	// Doubling rank (row 1 -> 2) must grow the FLOP bound.
	if rows[2].FlopBound <= rows[1].FlopBound {
		t.Fatal("FLOP bound did not grow with rank")
	}
}

func TestAblationsAllWin(t *testing.T) {
	var sb strings.Builder
	results := Ablations(&sb, smallProfile())
	if len(results) < 6 {
		t.Fatalf("ablations = %d, want 6", len(results))
	}
	for _, a := range results {
		if a.OptimizedImbalance > 0 {
			// A3's deterministic claim is load balance; at smoke scale its
			// wall-clock difference is noise.
			if a.OptimizedImbalance >= a.NaiveImbalance {
				t.Fatalf("%s: greedy imbalance %.2f not better than uniform %.2f",
					a.ID, a.OptimizedImbalance, a.NaiveImbalance)
			}
			continue
		}
		if a.Speedup() < 0.9 { // allow noise but the optimized path must not lose badly
			t.Fatalf("%s: optimized path slower than naive (%.2fx)", a.ID, a.Speedup())
		}
	}
}

func TestPurityHelper(t *testing.T) {
	if p := purity([]int{0, 1, 2}, []int{5, 5, 7}); p < 0.66 || p > 0.67 {
		t.Fatalf("purity = %v", p)
	}
	if purity(nil, nil) != 0 {
		t.Fatal("empty purity")
	}
}

func TestKernelsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel matrix repeats full solves; slow under -race")
	}
	var sb strings.Builder
	kernels, wires := Kernels(&sb, smallProfile())
	if len(kernels) != 3 {
		t.Fatalf("kernel rows = %d, want 3", len(kernels))
	}
	for _, k := range kernels {
		if k.Seconds.Min <= 0 || k.Seconds.Median < k.Seconds.Min {
			t.Fatalf("%v: bad summary %+v", k.Kernel, k.Seconds)
		}
	}
	if len(wires) != 3 {
		t.Fatalf("wire rows = %d, want 3", len(wires))
	}
	raw, varint, f32 := wires[0], wires[1], wires[2]
	if varint.BytesShuffled >= raw.BytesShuffled {
		t.Fatalf("varint wire shuffled %d bytes, raw %d: no compression", varint.BytesShuffled, raw.BytesShuffled)
	}
	if f32.ReductionVsRaw < 1.9 {
		t.Fatalf("f32 wire reduction %.2fx vs raw, want ≥ 1.9x", f32.ReductionVsRaw)
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]float64{3, 1, 2})
	if s.Min != 1 || s.Median != 2 {
		t.Fatalf("odd summary = %+v", s)
	}
	s = summarize([]float64{4, 1, 3, 2})
	if s.Min != 1 || s.Median != 2.5 {
		t.Fatalf("even summary = %+v", s)
	}
	if z := summarize(nil); z.Min != 0 || z.Median != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}
