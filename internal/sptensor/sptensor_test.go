package sptensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"distenc/internal/mat"
)

func randFactor(rng *rand.Rand, rows, r int) *mat.Dense {
	f := mat.NewDense(rows, r)
	for i := 0; i < rows; i++ {
		row := f.Row(i)
		for j := range row {
			row[j] = rng.Float64()
		}
	}
	return f
}

func randSparse(rng *rand.Rand, dims []int, nnz int) *Tensor {
	t := New(dims...)
	idx := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = int32(rng.IntN(d))
		}
		t.Append(idx, rng.NormFloat64())
	}
	return t.Coalesce()
}

func TestAppendAndAccessors(t *testing.T) {
	ts := New(3, 4, 5)
	ts.Append([]int32{1, 2, 3}, 2.5)
	ts.Append([]int32{0, 0, 0}, -1)
	if ts.Order() != 3 || ts.NNZ() != 2 {
		t.Fatalf("order=%d nnz=%d", ts.Order(), ts.NNZ())
	}
	idx := ts.Index(0)
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 3 {
		t.Fatalf("Index(0) = %v", idx)
	}
	if got := ts.NormF(); math.Abs(got-math.Sqrt(2.5*2.5+1)) > 1e-12 {
		t.Fatalf("NormF = %v", got)
	}
}

func TestAppendPanicsOutOfRange(t *testing.T) {
	ts := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ts.Append([]int32{0, 2}, 1)
}

func TestAppendPanicsWrongArity(t *testing.T) {
	ts := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ts.Append([]int32{0}, 1)
}

func TestCoalesceMergesAndDropsZeros(t *testing.T) {
	ts := New(4, 4)
	ts.Append([]int32{1, 1}, 2)
	ts.Append([]int32{0, 3}, 5)
	ts.Append([]int32{1, 1}, 3)
	ts.Append([]int32{2, 2}, 1)
	ts.Append([]int32{2, 2}, -1) // cancels to zero
	ts.Coalesce()
	if ts.NNZ() != 2 {
		t.Fatalf("NNZ after coalesce = %d, want 2", ts.NNZ())
	}
	found := map[[2]int32]float64{}
	for e := 0; e < ts.NNZ(); e++ {
		idx := ts.Index(e)
		found[[2]int32{idx[0], idx[1]}] = ts.Val[e]
	}
	if found[[2]int32{1, 1}] != 5 || found[[2]int32{0, 3}] != 5 {
		t.Fatalf("coalesced values = %v", found)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModeCounts(t *testing.T) {
	ts := New(3, 2)
	ts.Append([]int32{0, 0}, 1)
	ts.Append([]int32{0, 1}, 1)
	ts.Append([]int32{2, 0}, 1)
	c := ts.ModeCounts(0)
	if c[0] != 2 || c[1] != 0 || c[2] != 1 {
		t.Fatalf("ModeCounts(0) = %v", c)
	}
	c1 := ts.ModeCounts(1)
	if c1[0] != 2 || c1[1] != 1 {
		t.Fatalf("ModeCounts(1) = %v", c1)
	}
}

func TestSplitPreservesEntries(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	ts := randSparse(rng, []int{20, 20, 20}, 500)
	train, test := ts.Split(0.3, rng)
	if train.NNZ()+test.NNZ() != ts.NNZ() {
		t.Fatalf("split lost entries: %d+%d != %d", train.NNZ(), test.NNZ(), ts.NNZ())
	}
	frac := float64(test.NNZ()) / float64(ts.NNZ())
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("test fraction %v too far from 0.3", frac)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ts := New(2, 2)
	ts.Append([]int32{1, 1}, 1)
	ts.Val[0] = math.NaN()
	if err := ts.Validate(); err == nil {
		t.Fatal("Validate must reject NaN")
	}
	ts.Val[0] = 1
	ts.Idx[0] = 9
	if err := ts.Validate(); err == nil {
		t.Fatal("Validate must reject out-of-range index")
	}
	bad := &Tensor{Dims: []int{2}, Idx: []int32{0, 1}, Val: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate must reject inconsistent storage")
	}
}

func TestKruskalAtMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	k := NewKruskal(randFactor(rng, 4, 3), randFactor(rng, 5, 3), randFactor(rng, 6, 3))
	d := FromKruskal(k)
	idx := []int32{2, 4, 1}
	if math.Abs(k.At(idx)-d.At(idx)) > 1e-12 {
		t.Fatalf("Kruskal At %v != dense %v", k.At(idx), d.At(idx))
	}
	if dims := k.Dims(); dims[0] != 4 || dims[1] != 5 || dims[2] != 6 {
		t.Fatalf("Dims = %v", dims)
	}
	if k.Rank() != 3 {
		t.Fatalf("Rank = %d", k.Rank())
	}
}

func TestKruskalCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	k := NewKruskal(randFactor(rng, 3, 2), randFactor(rng, 3, 2))
	c := k.Clone()
	c.Factors[0].Set(0, 0, 999)
	if k.Factors[0].At(0, 0) == 999 {
		t.Fatal("Clone must deep-copy factors")
	}
}

func TestNewKruskalPanicsOnRankMismatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKruskal(randFactor(rng, 3, 2), randFactor(rng, 3, 3))
}

// MTTKRP must agree with the explicit matricized product X_(n)·U(n).
func TestMTTKRPMatchesExplicitUnfolding(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	dims := []int{4, 5, 6}
	const r = 3
	ts := randSparse(rng, dims, 40)
	factors := []*mat.Dense{
		randFactor(rng, 4, r), randFactor(rng, 5, r), randFactor(rng, 6, r),
	}
	dense := FromSparse(ts)
	for n := 0; n < 3; n++ {
		got := MTTKRP(ts, factors, n, nil)
		// U(n) = A(N) ⊙ … ⊙ A(n+1) ⊙ A(n-1) ⊙ … ⊙ A(1): Khatri-Rao of the
		// other factors with the *later* modes varying slowest, matching the
		// column order of Matricize (earlier modes vary fastest).
		var u *mat.Dense
		for k := 0; k < 3; k++ {
			if k == n {
				continue
			}
			if u == nil {
				u = factors[k]
			} else {
				u = mat.KhatriRao(factors[k], u)
			}
		}
		want := mat.Mul(dense.Matricize(n), u)
		if d := mat.MaxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("mode %d: MTTKRP differs from explicit by %v", n, d)
		}
	}
}

// Property: GramProduct equals the Gram of the explicit Khatri-Rao product.
func TestGramProductProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		r := 1 + int(seed%4)
		dims := []int{2 + int(seed%3), 2 + int((seed>>4)%3), 2 + int((seed>>8)%3)}
		factors := make([]*mat.Dense, 3)
		grams := make([]*mat.Dense, 3)
		for k := range factors {
			factors[k] = randFactor(rng, dims[k], r)
			grams[k] = mat.Gram(factors[k])
		}
		for n := 0; n < 3; n++ {
			var u *mat.Dense
			for k := 0; k < 3; k++ {
				if k == n {
					continue
				}
				if u == nil {
					u = factors[k]
				} else {
					u = mat.KhatriRao(factors[k], u)
				}
			}
			if mat.MaxAbsDiff(GramProduct(grams, n), mat.Gram(u)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualZeroForExactModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	k := NewKruskal(randFactor(rng, 5, 2), randFactor(rng, 6, 2), randFactor(rng, 7, 2))
	// Observe the model exactly.
	ts := New(5, 6, 7)
	idx := make([]int32, 3)
	for e := 0; e < 30; e++ {
		idx[0], idx[1], idx[2] = int32(rng.IntN(5)), int32(rng.IntN(6)), int32(rng.IntN(7))
		ts.Append(idx, k.At(idx))
	}
	res := Residual(ts, k)
	if res.NNZ() != ts.NNZ() {
		t.Fatalf("residual nnz %d != %d", res.NNZ(), ts.NNZ())
	}
	if n := res.NormF(); n > 1e-10 {
		t.Fatalf("residual of exact model has norm %v", n)
	}
}

// The §III-D identity: X_(n)U = A(n)·(UᵀU) + E_(n)U, where X is the completed
// tensor T + Ωᶜ∗[[A]]. We verify it densely on a small instance.
func TestResidualIdentityEq16(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	dims := []int{4, 5, 6}
	const r = 2
	factors := []*mat.Dense{
		randFactor(rng, 4, r), randFactor(rng, 5, r), randFactor(rng, 6, r),
	}
	k := NewKruskal(factors...)
	obs := randSparse(rng, dims, 25)

	// Completed dense tensor X = T on Ω, [[A]] elsewhere.
	x := FromKruskal(k)
	for e := 0; e < obs.NNZ(); e++ {
		x.Set(obs.Index(e), obs.Val[e])
	}
	grams := []*mat.Dense{mat.Gram(factors[0]), mat.Gram(factors[1]), mat.Gram(factors[2])}
	resid := Residual(obs, k)
	for n := 0; n < 3; n++ {
		var u *mat.Dense
		for kk := 0; kk < 3; kk++ {
			if kk == n {
				continue
			}
			if u == nil {
				u = factors[kk]
			} else {
				u = mat.KhatriRao(factors[kk], u)
			}
		}
		lhs := mat.Mul(x.Matricize(n), u)
		rhs := mat.Mul(factors[n], GramProduct(grams, n))
		rhs = mat.AddMat(rhs, MTTKRP(resid, factors, n, nil))
		if d := mat.MaxAbsDiff(lhs, rhs); d > 1e-9 {
			t.Fatalf("mode %d: Eq.16 violated by %v", n, d)
		}
	}
}

func TestMTTKRPScratchValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	ts := randSparse(rng, []int{3, 3, 3}, 5)
	factors := []*mat.Dense{randFactor(rng, 3, 2), randFactor(rng, 3, 2), randFactor(rng, 3, 2)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad scratch")
		}
	}()
	MTTKRP(ts, factors, 0, make([]float64, 5))
}

func TestMTTKRPFlops(t *testing.T) {
	if got := MTTKRPFlops(100, 3, 10); got != 100*10*5 {
		t.Fatalf("MTTKRPFlops = %d", got)
	}
}

func TestDenseTensorMatricizeShape(t *testing.T) {
	d := NewDenseTensor(2, 3, 4)
	d.Set([]int32{1, 2, 3}, 9)
	m := d.Matricize(1)
	if r, c := m.Dims(); r != 3 || c != 8 {
		t.Fatalf("Matricize dims %d×%d, want 3×8", r, c)
	}
	// Column index for (i0=1, i2=3) in mode-1 unfolding: 1 + 3*2 = 7.
	if m.At(2, 7) != 9 {
		t.Fatalf("element landed at wrong place: %v", m)
	}
	if d.NormF() != 9 {
		t.Fatalf("NormF = %v", d.NormF())
	}
}

func TestDenseTensorFromSparseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	ts := randSparse(rng, []int{3, 4}, 8)
	d := FromSparse(ts)
	for e := 0; e < ts.NNZ(); e++ {
		if math.Abs(d.At(ts.Index(e))-ts.Val[e]) > 1e-12 {
			t.Fatal("dense round trip mismatch")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	ts := New(2, 2)
	ts.Append([]int32{0, 0}, 1)
	c := ts.Clone()
	c.Val[0] = 5
	c.Idx[0] = 1
	if ts.Val[0] != 1 || ts.Idx[0] != 0 {
		t.Fatal("Clone must deep copy")
	}
}

func BenchmarkMTTKRP(b *testing.B) {
	rng := rand.New(rand.NewPCG(10, 10))
	ts := randSparse(rng, []int{1000, 1000, 1000}, 50000)
	const r = 10
	factors := []*mat.Dense{
		randFactor(rng, 1000, r), randFactor(rng, 1000, r), randFactor(rng, 1000, r),
	}
	scratch := make([]float64, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MTTKRP(ts, factors, 0, scratch)
	}
}

func BenchmarkKruskalAt(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 11))
	k := NewKruskal(randFactor(rng, 100, 10), randFactor(rng, 100, 10), randFactor(rng, 100, 10))
	idx := []int32{3, 50, 99}
	for i := 0; i < b.N; i++ {
		_ = k.At(idx)
	}
}

func TestDedupeKeepsFirst(t *testing.T) {
	ts := New(4, 4)
	ts.Append([]int32{1, 1}, 2)
	ts.Append([]int32{0, 3}, 5)
	ts.Append([]int32{1, 1}, 9) // duplicate: first value must win
	ts.Dedupe()
	if ts.NNZ() != 2 {
		t.Fatalf("NNZ after dedupe = %d", ts.NNZ())
	}
	for e := 0; e < ts.NNZ(); e++ {
		idx := ts.Index(e)
		if idx[0] == 1 && idx[1] == 1 && ts.Val[e] != 2 {
			t.Fatalf("Dedupe kept %v, want first value 2", ts.Val[e])
		}
	}
	empty := New(2, 2)
	if empty.Dedupe().NNZ() != 0 {
		t.Fatal("empty dedupe")
	}
}

// Property: after Dedupe all coordinates are unique and the tensor is valid.
func TestDedupeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		ts := New(5, 5, 5)
		idx := make([]int32, 3)
		for e := 0; e < 100; e++ {
			idx[0], idx[1], idx[2] = int32(rng.IntN(5)), int32(rng.IntN(5)), int32(rng.IntN(5))
			ts.Append(idx, rng.NormFloat64())
		}
		ts.Dedupe()
		if ts.Validate() != nil {
			return false
		}
		seen := map[[3]int32]bool{}
		for e := 0; e < ts.NNZ(); e++ {
			i := ts.Index(e)
			key := [3]int32{i[0], i[1], i[2]}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
