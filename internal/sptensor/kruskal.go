package sptensor

import (
	"fmt"

	"distenc/internal/mat"
)

// Kruskal is a rank-R Kruskal tensor [[A(1),…,A(N)]] (Eq. 3): the sum of R
// rank-one outer products, stored as N factor matrices A(n) ∈ ℝ^{I_n×R}.
type Kruskal struct {
	Factors []*mat.Dense
}

// NewKruskal validates and wraps factor matrices.
func NewKruskal(factors ...*mat.Dense) *Kruskal {
	if len(factors) == 0 {
		panic("sptensor: Kruskal needs at least one factor")
	}
	r := factors[0].Cols()
	for n, f := range factors {
		if f.Cols() != r {
			panic(fmt.Sprintf("sptensor: factor %d has rank %d, want %d", n, f.Cols(), r))
		}
	}
	return &Kruskal{Factors: factors}
}

// Rank returns R.
func (k *Kruskal) Rank() int { return k.Factors[0].Cols() }

// Dims returns the mode sizes.
func (k *Kruskal) Dims() []int {
	d := make([]int, len(k.Factors))
	for n, f := range k.Factors {
		d[n] = f.Rows()
	}
	return d
}

// At evaluates the Kruskal tensor at the given multi-index in O(N·R).
func (k *Kruskal) At(idx []int32) float64 {
	r := k.Rank()
	var s float64
	row0 := k.Factors[0].Row(int(idx[0]))
	for j := 0; j < r; j++ {
		p := row0[j]
		for n := 1; n < len(k.Factors); n++ {
			p *= k.Factors[n].At(int(idx[n]), j)
		}
		s += p
	}
	return s
}

// Clone deep-copies the factors.
func (k *Kruskal) Clone() *Kruskal {
	fs := make([]*mat.Dense, len(k.Factors))
	for n, f := range k.Factors {
		fs[n] = f.Clone()
	}
	return &Kruskal{Factors: fs}
}

// Residual returns E = Ω∗(T − [[A…]]) (Eq. 14): the sparse tensor over T's
// observed coordinates holding observation minus model. This is the object
// §III-D keeps instead of the completed dense tensor; it costs O(R·nnz).
func Residual(t *Tensor, k *Kruskal) *Tensor {
	out := New(t.Dims...)
	out.Idx = append([]int32(nil), t.Idx...)
	out.Val = make([]float64, t.NNZ())
	for e := 0; e < t.NNZ(); e++ {
		out.Val[e] = t.Val[e] - k.At(t.Index(e))
	}
	return out
}

// MTTKRP computes H = X_(n) · (A(N)⊙…⊙A(n+1)⊙A(n-1)⊙…⊙A(1)) row-wise
// (Eq. 10/11) without materializing the Khatri-Rao product: for every stored
// entry x at (i_1,…,i_N),
//
//	H[i_n, :] += x · ∗_{k≠n} A(k)[i_k, :].
//
// The result is I_n×R. scratch, if non-nil, must have length R and avoids a
// per-call allocation.
func MTTKRP(t *Tensor, factors []*mat.Dense, n int, scratch []float64) *mat.Dense {
	order := len(t.Dims)
	if len(factors) != order {
		panic(fmt.Sprintf("sptensor: MTTKRP got %d factors for order-%d tensor", len(factors), order))
	}
	r := factors[0].Cols()
	h := mat.NewDense(t.Dims[n], r)
	if scratch == nil {
		scratch = make([]float64, r)
	}
	if len(scratch) != r {
		panic("sptensor: MTTKRP scratch length must equal rank")
	}
	for e := 0; e < t.NNZ(); e++ {
		idx := t.Index(e)
		v := t.Val[e]
		for j := 0; j < r; j++ {
			scratch[j] = v
		}
		for k := 0; k < order; k++ {
			if k == n {
				continue
			}
			row := factors[k].Row(int(idx[k]))
			for j := 0; j < r; j++ {
				scratch[j] *= row[j]
			}
		}
		dst := h.Row(int(idx[n]))
		for j := 0; j < r; j++ {
			dst[j] += scratch[j]
		}
	}
	return h
}

// GramProduct returns U(n)ᵀU(n) = ∗_{k≠n} A(k)ᵀA(k) (Eq. 12) given the
// precomputed per-mode Gram matrices — the cached F_n of Algorithm 3 line 9.
func GramProduct(grams []*mat.Dense, n int) *mat.Dense {
	r := grams[0].Rows()
	out := mat.NewDense(r, r)
	out.Fill(1)
	for k, g := range grams {
		if k == n {
			continue
		}
		out.HadamardInPlace(g)
	}
	return out
}

// MTTKRPFlops returns the floating point operation count of one row-wise
// MTTKRP call — 2·(N−1)·R multiplies plus R adds per stored entry — used by
// the Lemma 1 counter experiments.
func MTTKRPFlops(nnz, order, rank int) int64 {
	return int64(nnz) * int64(rank) * int64(2*(order-1)+1)
}
