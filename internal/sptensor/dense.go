package sptensor

import (
	"fmt"
	"math"

	"distenc/internal/mat"
)

// DenseTensor is a small fully materialized tensor used as an oracle in tests
// and by the deliberately memory-hungry TFAI baseline. Element (i_1,…,i_N)
// lives at offset Σ i_k·stride_k with stride_1 = 1 (column-major in the first
// mode, the layout matching the standard mode-n unfolding).
type DenseTensor struct {
	Dims    []int
	Data    []float64
	strides []int
}

// NewDenseTensor allocates a zeroed dense tensor.
func NewDenseTensor(dims ...int) *DenseTensor {
	size := 1
	strides := make([]int, len(dims))
	for k, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("sptensor: non-positive dim %d", d))
		}
		strides[k] = size
		size *= d
	}
	d := make([]int, len(dims))
	copy(d, dims)
	return &DenseTensor{Dims: d, Data: make([]float64, size), strides: strides}
}

func (d *DenseTensor) offset(idx []int32) int {
	off := 0
	for k, i := range idx {
		off += int(i) * d.strides[k]
	}
	return off
}

// At returns the element at idx.
func (d *DenseTensor) At(idx []int32) float64 { return d.Data[d.offset(idx)] }

// Set assigns v at idx.
func (d *DenseTensor) Set(idx []int32, v float64) { d.Data[d.offset(idx)] = v }

// Add accumulates v at idx.
func (d *DenseTensor) Add(idx []int32, v float64) { d.Data[d.offset(idx)] += v }

// FromSparse materializes t densely.
func FromSparse(t *Tensor) *DenseTensor {
	d := NewDenseTensor(t.Dims...)
	for e := 0; e < t.NNZ(); e++ {
		d.Add(t.Index(e), t.Val[e])
	}
	return d
}

// FromKruskal materializes the Kruskal tensor densely (exponential in N —
// oracle/test use only).
func FromKruskal(k *Kruskal) *DenseTensor {
	dims := k.Dims()
	d := NewDenseTensor(dims...)
	idx := make([]int32, len(dims))
	for off := range d.Data {
		rem := off
		for m := range dims {
			idx[m] = int32(rem % dims[m])
			rem /= dims[m]
		}
		d.Data[off] = k.At(idx)
	}
	return d
}

// Matricize returns the mode-n unfolding X_(n) ∈ ℝ^{I_n×Π_{k≠n}I_k}
// (Definition 2.1.5), with columns ordered by the remaining modes in
// increasing mode order (the standard Kolda convention).
func (d *DenseTensor) Matricize(n int) *mat.Dense {
	rows := d.Dims[n]
	cols := 1
	for k, dim := range d.Dims {
		if k != n {
			cols *= dim
		}
	}
	out := mat.NewDense(rows, cols)
	idx := make([]int32, len(d.Dims))
	for off, v := range d.Data {
		rem := off
		for m := range d.Dims {
			idx[m] = int32(rem % d.Dims[m])
			rem /= d.Dims[m]
		}
		col := 0
		stride := 1
		for k, dim := range d.Dims {
			if k == n {
				continue
			}
			col += int(idx[k]) * stride
			stride *= dim
		}
		out.Set(int(idx[n]), col, v)
	}
	return out
}

// NormF returns the Frobenius norm.
func (d *DenseTensor) NormF() float64 {
	var s float64
	for _, v := range d.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
