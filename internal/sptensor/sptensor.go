// Package sptensor provides the sparse-tensor data structures and kernels
// the paper's algorithms are built on: an N-mode coordinate (COO) tensor,
// Kruskal-form evaluation, the row-wise MTTKRP of §III-C, and the residual
// tensor of §III-D. A small dense tensor type backs oracle tests.
package sptensor

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Tensor is an N-mode sparse tensor in coordinate (COO) format, the layout
// the paper's Spark implementation loads RDDs in (§III-F). Entry e has
// indices Idx[e*N : (e+1)*N] and value Val[e]. Entries are not required to be
// sorted; duplicates are not coalesced automatically (use Coalesce).
type Tensor struct {
	Dims []int // mode sizes I_1..I_N
	Idx  []int32
	Val  []float64
}

// New returns an empty tensor with the given mode sizes.
func New(dims ...int) *Tensor {
	d := make([]int, len(dims))
	copy(d, dims)
	return &Tensor{Dims: d}
}

// Order returns the number of modes N.
func (t *Tensor) Order() int { return len(t.Dims) }

// NNZ returns the number of stored entries.
func (t *Tensor) NNZ() int { return len(t.Val) }

// Index returns a view of the indices of entry e (length N, do not retain).
func (t *Tensor) Index(e int) []int32 {
	n := len(t.Dims)
	return t.Idx[e*n : (e+1)*n : (e+1)*n]
}

// Append adds an entry. idx is copied.
func (t *Tensor) Append(idx []int32, v float64) {
	if len(idx) != len(t.Dims) {
		panic(fmt.Sprintf("sptensor: Append index arity %d on order-%d tensor", len(idx), len(t.Dims)))
	}
	for m, i := range idx {
		if int(i) < 0 || int(i) >= t.Dims[m] {
			panic(fmt.Sprintf("sptensor: index %d out of range for mode %d (size %d)", i, m, t.Dims[m]))
		}
	}
	t.Idx = append(t.Idx, idx...)
	t.Val = append(t.Val, v)
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Dims...)
	out.Idx = append([]int32(nil), t.Idx...)
	out.Val = append([]float64(nil), t.Val...)
	return out
}

// NormF returns the Frobenius norm over stored entries.
func (t *Tensor) NormF() float64 {
	var s float64
	for _, v := range t.Val {
		s += v * v
	}
	return math.Sqrt(s)
}

// ModeCounts returns, for each slice index i of mode n, the number of stored
// entries whose mode-n index is i — the θ^(n) histogram Algorithm 2 partitions
// on.
func (t *Tensor) ModeCounts(n int) []int64 {
	counts := make([]int64, t.Dims[n])
	order := len(t.Dims)
	for e := 0; e < len(t.Val); e++ {
		counts[t.Idx[e*order+n]]++
	}
	return counts
}

// Coalesce sorts entries lexicographically and merges duplicates by summing
// their values, dropping exact zeros. It returns the receiver.
func (t *Tensor) Coalesce() *Tensor {
	n := len(t.Dims)
	if t.NNZ() == 0 {
		return t
	}
	perm := make([]int, t.NNZ())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ia, ib := t.Index(perm[a]), t.Index(perm[b])
		for m := 0; m < n; m++ {
			if ia[m] != ib[m] {
				return ia[m] < ib[m]
			}
		}
		return false
	})
	newIdx := make([]int32, 0, len(t.Idx))
	newVal := make([]float64, 0, len(t.Val))
	for _, e := range perm {
		idx := t.Index(e)
		if len(newVal) > 0 {
			last := newIdx[len(newIdx)-n:]
			same := true
			for m := 0; m < n; m++ {
				if last[m] != idx[m] {
					same = false
					break
				}
			}
			if same {
				newVal[len(newVal)-1] += t.Val[e]
				continue
			}
		}
		newIdx = append(newIdx, idx...)
		newVal = append(newVal, t.Val[e])
	}
	// Drop zeros produced by cancellation.
	outIdx := newIdx[:0]
	outVal := newVal[:0]
	for e := 0; e < len(newVal); e++ {
		if newVal[e] != 0 {
			outIdx = append(outIdx, newIdx[e*n:(e+1)*n]...)
			outVal = append(outVal, newVal[e])
		}
	}
	t.Idx = outIdx
	t.Val = outVal
	return t
}

// Dedupe sorts entries lexicographically and keeps the first of each run of
// duplicate coordinates (used by samplers: re-observing a cell must not
// change its value, unlike Coalesce's summing semantics for count data).
func (t *Tensor) Dedupe() *Tensor {
	n := len(t.Dims)
	if t.NNZ() == 0 {
		return t
	}
	perm := make([]int, t.NNZ())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ia, ib := t.Index(perm[a]), t.Index(perm[b])
		for m := 0; m < n; m++ {
			if ia[m] != ib[m] {
				return ia[m] < ib[m]
			}
		}
		return false
	})
	newIdx := make([]int32, 0, len(t.Idx))
	newVal := make([]float64, 0, len(t.Val))
	for _, e := range perm {
		idx := t.Index(e)
		if len(newVal) > 0 {
			last := newIdx[len(newIdx)-n:]
			same := true
			for m := 0; m < n; m++ {
				if last[m] != idx[m] {
					same = false
					break
				}
			}
			if same {
				continue
			}
		}
		newIdx = append(newIdx, idx...)
		newVal = append(newVal, t.Val[e])
	}
	t.Idx = newIdx
	t.Val = newVal
	return t
}

// Split partitions the entries into a training tensor holding approximately
// (1-testFrac) of the entries and a test tensor holding the rest, sampled
// uniformly with rng. Both keep the original mode sizes.
func (t *Tensor) Split(testFrac float64, rng *rand.Rand) (train, test *Tensor) {
	train = New(t.Dims...)
	test = New(t.Dims...)
	for e := 0; e < t.NNZ(); e++ {
		if rng.Float64() < testFrac {
			test.Append(t.Index(e), t.Val[e])
		} else {
			train.Append(t.Index(e), t.Val[e])
		}
	}
	return train, test
}

// Validate checks structural invariants and returns an error describing the
// first violation found.
func (t *Tensor) Validate() error {
	n := len(t.Dims)
	if n == 0 {
		return fmt.Errorf("sptensor: zero-order tensor")
	}
	if len(t.Idx) != len(t.Val)*n {
		return fmt.Errorf("sptensor: index storage %d does not match %d entries of order %d", len(t.Idx), len(t.Val), n)
	}
	for m, d := range t.Dims {
		if d <= 0 {
			return fmt.Errorf("sptensor: mode %d has non-positive size %d", m, d)
		}
	}
	for e := 0; e < len(t.Val); e++ {
		for m, i := range t.Index(e) {
			if int(i) < 0 || int(i) >= t.Dims[m] {
				return fmt.Errorf("sptensor: entry %d mode %d index %d out of range [0,%d)", e, m, i, t.Dims[m])
			}
		}
		if math.IsNaN(t.Val[e]) || math.IsInf(t.Val[e], 0) {
			return fmt.Errorf("sptensor: entry %d has non-finite value %v", e, t.Val[e])
		}
	}
	return nil
}

// String summarizes the tensor.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(dims=%v, nnz=%d)", t.Dims, t.NNZ())
}
