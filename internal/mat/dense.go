// Package mat implements the dense linear algebra kernels DisTenC relies on:
// a row-major dense matrix type with BLAS-like operations, Cholesky and LU
// factorizations for the small R×R and In×In solves that appear in the ADMM
// updates, a cyclic Jacobi eigensolver for exact symmetric eigendecomposition,
// and a Lanczos iteration for the truncated eigendecomposition of graph
// Laplacians (the substitute for the MRRR solver cited by the paper).
//
// Everything is float64 and stdlib-only. Matrices are small enough in this
// reproduction (R ≤ 500, mode sizes up to a few thousand for exact eigen)
// that cache-blocked kernels are unnecessary; the hot loops are still written
// to stride rows contiguously.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix. The zero value is an empty 0×0 matrix.
type Dense struct {
	rows, cols int
	data       []float64 // len rows*cols, row-major
}

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a mutable view of row i (no copy).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols] }

// Data returns the backing row-major slice (no copy).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom copies src into m; panics on dimension mismatch.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(dimErr("CopyFrom", m, src))
	}
	copy(m.data, src.data)
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	m := NewDense(len(d), len(d))
	for i, v := range d {
		m.data[i*len(d)+i] = v
	}
	return m
}

// Diagonal returns a copy of the main diagonal of m.
func (m *Dense) Diagonal() []float64 {
	n := min(m.rows, m.cols)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddScaled adds s*b to m element-wise in place and returns m.
func (m *Dense) AddScaled(s float64, b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(dimErr("AddScaled", m, b))
	}
	for i, v := range b.data {
		m.data[i] += s * v
	}
	return m
}

// AddMat returns a+b as a new matrix.
func AddMat(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(dimErr("AddMat", a, b))
	}
	out := a.Clone()
	return out.AddScaled(1, b)
}

// SubMat returns a-b as a new matrix.
func SubMat(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(dimErr("SubMat", a, b))
	}
	out := a.Clone()
	return out.AddScaled(-1, b)
}

// Hadamard returns the element-wise product a∗b as a new matrix
// (Definition 2.1.4 in the paper).
func Hadamard(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(dimErr("Hadamard", a, b))
	}
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v * b.data[i]
	}
	return out
}

// HadamardInPlace sets m = m∗b and returns m.
func (m *Dense) HadamardInPlace(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(dimErr("HadamardInPlace", m, b))
	}
	for i, v := range b.data {
		m.data[i] *= v
	}
	return m
}

// Mul returns a·b as a new matrix.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(dimErr("Mul", a, b))
	}
	out := NewDense(a.rows, b.cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a·b. dst must be pre-sized and must not alias a or b.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(dimErr("MulInto", a, b))
	}
	dst.Zero()
	// ikj order: stream b rows, accumulate into dst rows.
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulATB returns aᵀ·b as a new matrix without forming aᵀ.
func MulATB(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(dimErr("MulATB", a, b))
	}
	out := NewDense(a.cols, b.cols)
	for k := 0; k < a.rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := out.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return out
}

// MulABT returns a·bᵀ as a new matrix without forming bᵀ.
func MulABT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(dimErr("MulABT", a, b))
	}
	out := NewDense(a.rows, b.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		drow := out.Row(i)
		for j := 0; j < b.rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// Gram returns aᵀ·a (the R×R self-product the paper distributes in Eq. 13).
func Gram(a *Dense) *Dense { return MulATB(a, a) }

// MulVec returns a·x as a new vector.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec %d×%d by vec %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// MulTVec returns aᵀ·x as a new vector.
func MulTVec(a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulTVec %d×%d by vec %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// NormF returns the Frobenius norm of m.
func (m *Dense) NormF() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_ij |a_ij − b_ij|.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic(dimErr("MaxAbsDiff", a, b))
	}
	var mx float64
	for i, v := range a.data {
		if d := math.Abs(v - b.data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// Kronecker returns the Kronecker product a⊗b (Definition 2.1.2).
func Kronecker(a, b *Dense) *Dense {
	out := NewDense(a.rows*b.rows, a.cols*b.cols)
	for ia := 0; ia < a.rows; ia++ {
		for ja := 0; ja < a.cols; ja++ {
			av := a.At(ia, ja)
			if av == 0 {
				continue
			}
			for ib := 0; ib < b.rows; ib++ {
				dst := out.Row(ia*b.rows + ib)[ja*b.cols:]
				src := b.Row(ib)
				for jb, bv := range src {
					dst[jb] = av * bv
				}
			}
		}
	}
	return out
}

// KhatriRao returns the column-wise Kronecker product a⊙b (Definition 2.1.3).
// a is I×R and b is K×R; the result is IK×R with row (i*K+k) equal to
// a[i,:] ∗ b[k,:].
func KhatriRao(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(dimErr("KhatriRao", a, b))
	}
	out := NewDense(a.rows*b.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		for k := 0; k < b.rows; k++ {
			brow := b.Row(k)
			dst := out.Row(i*b.rows + k)
			for r, av := range arow {
				dst[r] = av * brow[r]
			}
		}
	}
	return out
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense(%d×%d)", m.rows, m.cols)
	if m.rows > 8 || m.cols > 8 {
		return sb.String()
	}
	sb.WriteString("[")
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.4g", m.At(i, j))
		}
	}
	sb.WriteString("]")
	return sb.String()
}

func dimErr(op string, a, b *Dense) string {
	return fmt.Sprintf("mat: %s dimension mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols)
}
