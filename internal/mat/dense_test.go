package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDensePanicsOnBadData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewDenseData(2, 3, make([]float64, 5))
}

func TestAtSetRow(t *testing.T) {
	m := NewDense(3, 4)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row(1)[2] = %v, want 7.5", row[2])
	}
	row[0] = 1 // row is a view
	if m.At(1, 0) != 1 {
		t.Fatal("Row must be a mutable view")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	m := randDense(rng, 3, 5)
	mt := m.T()
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			// A transpose copies values verbatim; require bit identity.
			if math.Float64bits(m.At(i, j)) != math.Float64bits(mt.At(j, i)) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
	if d := MaxAbsDiff(m, mt.T()); d != 0 {
		t.Fatalf("double transpose differs by %v", d)
	}
}

func TestMulAgainstHand(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("Mul mismatch: got %v want %v", got, want)
	}
}

func TestMulATBAndABT(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := randDense(rng, 6, 4)
	b := randDense(rng, 6, 3)
	got := MulATB(a, b)
	want := Mul(a.T(), b)
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("MulATB differs from explicit transpose by %v", d)
	}
	c := randDense(rng, 5, 4)
	got2 := MulABT(a, c)
	want2 := Mul(a, c.T())
	if d := MaxAbsDiff(got2, want2); d > 1e-12 {
		t.Fatalf("MulABT differs from explicit transpose by %v", d)
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randDense(rng, 8, 4)
	g := Gram(a)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !almostEq(g.At(i, j), g.At(j, i), 1e-12) {
				t.Fatalf("Gram not symmetric at %d,%d", i, j)
			}
		}
	}
	// xᵀGx = ‖Ax‖² ≥ 0.
	x := []float64{1, -2, 0.5, 3}
	if q := Dot(x, MulVec(g, x)); q < -1e-12 {
		t.Fatalf("Gram not PSD: quadratic form %v", q)
	}
}

func TestKroneckerDims(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{0, 5, 6, 7})
	k := Kronecker(a, b)
	if r, c := k.Dims(); r != 4 || c != 4 {
		t.Fatalf("Kronecker dims %d×%d, want 4×4", r, c)
	}
	if k.At(0, 1) != 5 || k.At(2, 0) != 3*0 || k.At(3, 3) != 4*7 {
		t.Fatalf("Kronecker values wrong: %v", k)
	}
}

// Khatri-Rao column r must equal the Kronecker product of columns r.
func TestKhatriRaoMatchesKroneckerColumns(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := randDense(rng, 3, 4)
	b := randDense(rng, 5, 4)
	kr := KhatriRao(a, b)
	if r, c := kr.Dims(); r != 15 || c != 4 {
		t.Fatalf("KhatriRao dims %d×%d, want 15×4", r, c)
	}
	for r := 0; r < 4; r++ {
		for i := 0; i < 3; i++ {
			for k := 0; k < 5; k++ {
				want := a.At(i, r) * b.At(k, r)
				if got := kr.At(i*5+k, r); !almostEq(got, want, 1e-12) {
					t.Fatalf("KhatriRao[%d,%d] = %v, want %v", i*5+k, r, got, want)
				}
			}
		}
	}
}

// Property: (A⊙B)ᵀ(A⊙B) == (AᵀA) ∗ (BᵀB). This identity is the heart of the
// paper's Eq. (12) optimization.
func TestKhatriRaoGramIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		ia, ib, r := 2+int(seed%5), 2+int((seed>>8)%5), 1+int((seed>>16)%4)
		a := randDense(rng, ia, r)
		b := randDense(rng, ib, r)
		lhs := Gram(KhatriRao(a, b))
		rhs := Hadamard(Gram(a), Gram(b))
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHadamardAndArithmetic(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	h := Hadamard(a, b)
	want := NewDenseData(2, 2, []float64{5, 12, 21, 32})
	if MaxAbsDiff(h, want) != 0 {
		t.Fatalf("Hadamard = %v, want %v", h, want)
	}
	s := AddMat(a, b)
	if s.At(1, 1) != 12 {
		t.Fatalf("AddMat wrong: %v", s)
	}
	d := SubMat(b, a)
	if d.At(0, 0) != 4 {
		t.Fatalf("SubMat wrong: %v", d)
	}
	ac := a.Clone().Scale(2)
	if ac.At(1, 0) != 6 || a.At(1, 0) != 3 {
		t.Fatal("Scale must not alias Clone source")
	}
}

func TestMulVecAndMulTVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	y := MulVec(a, x)
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v", y)
	}
	z := MulTVec(a, []float64{1, 1})
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Fatalf("MulTVec = %v", z)
	}
}

func TestNormF(t *testing.T) {
	m := NewDenseData(2, 2, []float64{3, 0, 0, 4})
	if got := m.NormF(); !almostEq(got, 5, 1e-12) {
		t.Fatalf("NormF = %v, want 5", got)
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if MaxAbsDiff(id, d) != 0 {
		t.Fatal("Identity != Diag(ones)")
	}
	got := id.Diagonal()
	for _, v := range got {
		if v != 1 {
			t.Fatalf("Diagonal = %v", got)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatal("Norm2")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	n := Normalize(x)
	if !almostEq(n, 5, 1e-12) || !almostEq(Norm2(x), 1, 1e-12) {
		t.Fatal("Normalize")
	}
	z := make([]float64, 2)
	HadamardVec(z, []float64{2, 3}, []float64{4, 5})
	if z[0] != 8 || z[1] != 15 {
		t.Fatalf("HadamardVec = %v", z)
	}
	if Normalize([]float64{0, 0}) != 0 {
		t.Fatal("Normalize of zero vector must return 0")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewDenseData(1, 2, []float64{1, 2})
	if s := small.String(); s == "" {
		t.Fatal("empty String")
	}
	big := NewDense(20, 20)
	if s := big.String(); s != "Dense(20×20)" {
		t.Fatalf("large String = %q", s)
	}
}
