package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randSPD builds AᵀA + n·I, comfortably positive definite.
func randSPD(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	spd := Gram(a)
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n))
	}
	return spd
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, n := range []int{1, 2, 5, 20} {
		a := randSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := MulVec(a, x)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ch.SolveVec(b)
		for i := range x {
			if !almostEq(b[i], x[i], 1e-8) {
				t.Fatalf("n=%d: solution[%d] = %v, want %v", n, i, b[i], x[i])
			}
		}
	}
}

func TestCholeskyMatrixSolveAndInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	a := randSPD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.Inverse()
	if d := MaxAbsDiff(Mul(a, inv), Identity(6)); d > 1e-8 {
		t.Fatalf("A·A⁻¹ differs from I by %v", d)
	}
	b := randDense(rng, 6, 3)
	x := ch.Solve(b)
	if d := MaxAbsDiff(Mul(a, x), b); d > 1e-8 {
		t.Fatalf("A·X differs from B by %v", d)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	if _, err := NewCholesky(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		0, 2, 1, // leading zero forces pivoting
		1, 1, 1,
		2, 0, 3,
	})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.SolveVec([]float64{5, 6, 13})
	// Verify A·x = b.
	b := MulVec(a, x)
	for i, want := range []float64{5, 6, 13} {
		if !almostEq(b[i], want, 1e-10) {
			t.Fatalf("A·x[%d] = %v, want %v", i, b[i], want)
		}
	}
	// det by cofactor expansion: 0*(3-0) - 2*(3-2) + 1*(0-2) = -4.
	if !almostEq(lu.Det(), -4, 1e-10) {
		t.Fatalf("Det = %v, want -4", lu.Det())
	}
	inv := lu.Inverse()
	if d := MaxAbsDiff(Mul(a, inv), Identity(3)); d > 1e-10 {
		t.Fatalf("LU inverse off by %v", d)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveSPDProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, ^seed))
		n := 1 + int(seed%8)
		a := randSPD(rng, n)
		b := randDense(rng, n, 2)
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(Mul(a, x), b) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenSmall(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewDenseData(2, 2, []float64{2, 1, 1, 2})
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Values[0], 1, 1e-10) || !almostEq(e.Values[1], 3, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [1 3]", e.Values)
	}
	if d := MaxAbsDiff(e.Reconstruct(), a); d > 1e-10 {
		t.Fatalf("reconstruction off by %v", d)
	}
}

func TestSymEigenReconstructsRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, n := range []int{1, 3, 10, 30} {
		a := randSPD(rng, n)
		e, err := SymEigen(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(e.Reconstruct(), a); d > 1e-7 {
			t.Fatalf("n=%d: reconstruction off by %v", n, d)
		}
		// Values sorted ascending.
		for i := 1; i < n; i++ {
			if e.Values[i] < e.Values[i-1] {
				t.Fatalf("n=%d: eigenvalues not ascending: %v", n, e.Values)
			}
		}
		// Orthonormal columns.
		vtv := MulATB(e.Vectors, e.Vectors)
		if d := MaxAbsDiff(vtv, Identity(n)); d > 1e-8 {
			t.Fatalf("n=%d: VᵀV differs from I by %v", n, d)
		}
	}
}

func TestEigenTruncate(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	a := randSPD(rng, 8)
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	tr := e.Truncate(3)
	if len(tr.Values) != 3 || tr.Vectors.Cols() != 3 {
		t.Fatalf("Truncate kept %d values, %d cols", len(tr.Values), tr.Vectors.Cols())
	}
	for j := 0; j < 3; j++ {
		// Truncate copies the leading eigenvalues; require bit identity.
		if math.Float64bits(tr.Values[j]) != math.Float64bits(e.Values[j]) {
			t.Fatal("Truncate must keep smallest eigenvalues")
		}
	}
	if got := e.Truncate(100); got != e {
		t.Fatal("Truncate beyond size must return the receiver")
	}
}

func TestLanczosMatchesJacobiOnSmallOperator(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	a := randSPD(rng, 40)
	exact, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	approx, err := Lanczos(DenseOp{M: a}, k, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		if !almostEq(approx.Values[j], exact.Values[j], 1e-6) {
			t.Fatalf("Ritz value %d = %v, want %v", j, approx.Values[j], exact.Values[j])
		}
		// Residual ‖A v − λ v‖ small.
		v := make([]float64, 40)
		for i := range v {
			v[i] = approx.Vectors.At(i, j)
		}
		av := MulVec(a, v)
		Axpy(-approx.Values[j], v, av)
		if r := Norm2(av); r > 1e-5 {
			t.Fatalf("Ritz pair %d residual %v", j, r)
		}
	}
}

func TestLanczosFullDimension(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	a := randSPD(rng, 12)
	exact, _ := SymEigen(a)
	e, err := Lanczos(DenseOp{M: a}, 12, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	for j := range e.Values {
		if !almostEq(e.Values[j], exact.Values[j], 1e-6) {
			t.Fatalf("full Lanczos value %d = %v, want %v", j, e.Values[j], exact.Values[j])
		}
	}
}

func TestLanczosBadK(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	a := randSPD(rng, 4)
	if _, err := Lanczos(DenseOp{M: a}, 0, 0, rng); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := Lanczos(DenseOp{M: a}, 5, 0, rng); err == nil {
		t.Fatal("expected error for k>n")
	}
}

func TestLanczosEarlyInvariantSubspace(t *testing.T) {
	// Identity operator: Krylov space collapses after 1 step.
	rng := rand.New(rand.NewPCG(37, 38))
	id := Identity(10)
	e, err := Lanczos(DenseOp{M: id}, 1, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Values[0], 1, 1e-10) {
		t.Fatalf("identity eigenvalue = %v, want 1", e.Values[0])
	}
}

func BenchmarkCholeskySolve50(b *testing.B) {
	rng := rand.New(rand.NewPCG(41, 42))
	a := randSPD(rng, 50)
	rhs := randDense(rng, 50, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch, err := NewCholesky(a)
		if err != nil {
			b.Fatal(err)
		}
		_ = ch.Solve(rhs)
	}
}

func BenchmarkSymEigen50(b *testing.B) {
	rng := rand.New(rand.NewPCG(43, 44))
	a := randSPD(rng, 50)
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMulIntoRejectsAlias(t *testing.T) {
	// Not an alias check per se, but dimension misuse must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulInto(NewDense(2, 2), NewDense(2, 3), NewDense(2, 3))
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSolveVecChecksLength(t *testing.T) {
	rng := rand.New(rand.NewPCG(45, 46))
	a := randSPD(rng, 3)
	ch, _ := NewCholesky(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ch.SolveVec(make([]float64, 2))
}

func TestLUDetSign(t *testing.T) {
	// Permutation matrix swapping two rows has det -1.
	a := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lu.Det(), -1, 1e-12) {
		t.Fatalf("Det = %v, want -1", lu.Det())
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 48))
	a := randSPD(rng, 5)
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(Mul(a, inv), Identity(5)); d > 1e-8 {
		t.Fatalf("InverseSPD off by %v", d)
	}
}

func TestMulVecChecksDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulVec(NewDense(2, 2), make([]float64, 3))
}

func TestNaNDetection(t *testing.T) {
	a := NewDenseData(1, 1, []float64{math.NaN()})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("Cholesky must reject NaN")
	}
}
