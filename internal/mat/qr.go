package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q·R with A m×n, m ≥ n,
// Q m×n orthonormal (thin form) and R n×n upper triangular.
type QR struct {
	Q *Dense
	R *Dense
}

// NewQR factors a (m ≥ n) by Householder reflections. Used for
// orthonormalizing bases (e.g. re-orthonormalizing spectral vectors) and for
// least-squares solves in tests.
func NewQR(a *Dense) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("mat: QR needs m ≥ n, got %d×%d", m, n)
	}
	r := a.Clone()
	// Accumulate the reflections applied to an m×n identity block.
	q := NewDense(m, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 1)
	}
	// vs stores the Householder vectors to apply to q afterwards (in
	// reverse), each of length m with leading zeros.
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		// Build the reflection zeroing r[k+1:, k].
		norm := 0.0
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		alpha := -math.Copysign(norm, r.At(k, k))
		v := make([]float64, m)
		v[k] = r.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i] = r.At(i, k)
		}
		vnorm := Norm2(v[k:])
		if vnorm == 0 {
			vs = append(vs, nil)
			continue
		}
		ScaleVec(1/vnorm, v[k:])
		// Apply (I − 2vvᵀ) to R from the left.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * r.At(i, j)
			}
			for i := k; i < m; i++ {
				r.Add(i, j, -2*dot*v[i])
			}
		}
		vs = append(vs, v)
	}
	// Q = H_1 H_2 … H_n · I_thin: apply reflections in reverse to q.
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * q.At(i, j)
			}
			for i := k; i < m; i++ {
				q.Add(i, j, -2*dot*v[i])
			}
		}
	}
	// Zero the strictly-lower part of R and truncate to n×n.
	rn := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rn.Set(i, j, r.At(i, j))
		}
	}
	return &QR{Q: q, R: rn}, nil
}

// SolveVec solves the least-squares problem min ‖A·x − b‖₂ via R·x = Qᵀb.
func (f *QR) SolveVec(b []float64) ([]float64, error) {
	m, n := f.Q.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("mat: QR SolveVec rhs length %d, want %d", len(b), m)
	}
	y := MulTVec(f.Q, b)
	// Back substitution on R.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.R.At(i, j) * y[j]
		}
		d := f.R.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		y[i] = s / d
	}
	return y[:n], nil
}
