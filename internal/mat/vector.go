package mat

import "math"

// Dot returns the inner product of x and y. Panics if lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Axpy sets y[i] += a*x[i] for all i.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// Normalize scales x to unit Euclidean norm in place and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}

// HadamardVec sets z[i] = x[i]*y[i].
func HadamardVec(z, x, y []float64) {
	if len(x) != len(y) || len(z) != len(x) {
		panic("mat: HadamardVec length mismatch")
	}
	for i, v := range x {
		z[i] = v * y[i]
	}
}
