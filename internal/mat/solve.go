package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// ErrNotSPD is returned by Cholesky when the input is not symmetric positive
// definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
type Cholesky struct {
	n int
	l *Dense
}

// NewCholesky factors the symmetric positive definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Cholesky of non-square %d×%d", a.rows, a.cols)
	}
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(d)
		lrowj[j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s / ljj
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// SolveVec solves A·x = b in place, overwriting b with x.
func (c *Cholesky) SolveVec(b []float64) {
	if len(b) != c.n {
		panic("mat: Cholesky SolveVec length mismatch")
	}
	// Forward substitution L·y = b.
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
	// Back substitution Lᵀ·x = y.
	for i := c.n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * b[k]
		}
		b[i] = s / c.l.At(i, i)
	}
}

// Solve solves A·X = B and returns X as a new matrix.
func (c *Cholesky) Solve(b *Dense) *Dense {
	if b.rows != c.n {
		panic(dimErr("Cholesky.Solve", c.l, b))
	}
	out := b.T() // work column-by-column on contiguous rows of bᵀ
	for j := 0; j < b.cols; j++ {
		c.SolveVec(out.Row(j))
	}
	return out.T()
}

// Inverse returns A⁻¹.
func (c *Cholesky) Inverse() *Dense {
	return c.Solve(Identity(c.n))
}

// LU holds a row-pivoted LU factorization P·A = L·U stored compactly.
type LU struct {
	n    int
	lu   *Dense
	piv  []int
	sign int
}

// NewLU factors a with partial pivoting.
func NewLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: LU of non-square %d×%d", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		// Eliminate below.
		pivRow := lu.Row(k)
		inv := 1 / pivRow[k]
		for i := k + 1; i < n; i++ {
			row := lu.Row(i)
			m := row[k] * inv
			row[k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				row[j] -= m * pivRow[j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A·x = b, returning x as a new slice.
func (f *LU) SolveVec(b []float64) []float64 {
	if len(b) != f.n {
		panic("mat: LU SolveVec length mismatch")
	}
	x := make([]float64, f.n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// L·y = Pb (unit diagonal).
	for i := 1; i < f.n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s
	}
	// U·x = y.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for k := i + 1; k < f.n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// Solve solves A·X = B and returns X.
func (f *LU) Solve(b *Dense) *Dense {
	if b.rows != f.n {
		panic(dimErr("LU.Solve", f.lu, b))
	}
	bt := b.T()
	out := NewDense(b.cols, f.n)
	for j := 0; j < b.cols; j++ {
		copy(out.Row(j), f.SolveVec(bt.Row(j)))
	}
	return out.T()
}

// Inverse returns A⁻¹.
func (f *LU) Inverse() *Dense { return f.Solve(Identity(f.n)) }

// Det returns the determinant of A.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveSPD solves the symmetric positive definite system A·X = B, falling
// back to LU if Cholesky fails (e.g. A only positive semi-definite after
// round-off). This is the path used for the R×R normal-equation solves in
// factor updates: (UᵀU + λI + ηI) is SPD by construction.
func SolveSPD(a, b *Dense) (*Dense, error) {
	if ch, err := NewCholesky(a); err == nil {
		return ch.Solve(b), nil
	}
	lu, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return lu.Solve(b), nil
}

// InverseSPD returns A⁻¹ for a symmetric positive definite A.
func InverseSPD(a *Dense) (*Dense, error) {
	return SolveSPD(a, Identity(a.rows))
}
