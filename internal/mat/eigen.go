package mat

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds a symmetric eigendecomposition A = V·diag(Values)·Vᵀ.
// Values are sorted ascending; column j of Vectors is the eigenvector for
// Values[j].
type Eigen struct {
	Values  []float64
	Vectors *Dense // n×k, columns are eigenvectors
}

// SymEigen computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi method. Only suitable for moderate n (the exact
// path for small mode sizes); for large Laplacians use Lanczos.
func SymEigen(a *Dense) (*Eigen, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: SymEigen of non-square %d×%d", a.rows, a.cols)
	}
	n := a.rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			row := w.Row(i)
			for j := i + 1; j < n; j++ {
				off += row[j] * row[j]
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Update rows/cols p and q of w.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				// Accumulate rotations into v.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort ascending.
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sortedVals := make([]float64, n)
	vec := NewDense(n, n)
	for newJ, oldJ := range idx {
		sortedVals[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			vec.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return &Eigen{Values: sortedVals, Vectors: vec}, nil
}

// Reconstruct returns V·diag(Values)·Vᵀ.
func (e *Eigen) Reconstruct() *Dense {
	n, k := e.Vectors.Dims()
	scaled := NewDense(n, k)
	for i := 0; i < n; i++ {
		src := e.Vectors.Row(i)
		dst := scaled.Row(i)
		for j := 0; j < k; j++ {
			dst[j] = src[j] * e.Values[j]
		}
	}
	return MulABT(scaled, e.Vectors)
}

// Truncate keeps only the k eigenpairs with smallest eigenvalues. For graph
// Laplacians the smallest eigenvalues carry the smooth (cluster) structure
// that the trace regularizer rewards, so that end is the one worth keeping.
func (e *Eigen) Truncate(k int) *Eigen {
	n := e.Vectors.Rows()
	if k >= len(e.Values) {
		return e
	}
	vec := NewDense(n, k)
	for i := 0; i < n; i++ {
		copy(vec.Row(i), e.Vectors.Row(i)[:k])
	}
	vals := make([]float64, k)
	copy(vals, e.Values[:k])
	return &Eigen{Values: vals, Vectors: vec}
}
