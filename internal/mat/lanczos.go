package mat

import (
	"fmt"
	"math/rand/v2"
)

// MatVec is any linear operator y = A·x on ℝⁿ. Sparse Laplacians implement
// it in O(nnz); that is what gives the truncated decomposition its O(K·I)
// application cost (the property the paper gets from the Bientinesi et al.
// eigensolver).
type MatVec interface {
	Dim() int
	Apply(dst, x []float64)
}

// DenseOp adapts a symmetric *Dense to the MatVec interface.
type DenseOp struct{ M *Dense }

// Dim returns the operator dimension.
func (d DenseOp) Dim() int { return d.M.Rows() }

// Apply sets dst = M·x.
func (d DenseOp) Apply(dst, x []float64) {
	for i := 0; i < d.M.Rows(); i++ {
		dst[i] = Dot(d.M.Row(i), x)
	}
}

// Lanczos computes the k eigenpairs of the symmetric operator op with the
// smallest eigenvalues, using the Lanczos iteration with full
// reorthogonalization followed by a dense solve of the tridiagonal problem.
// steps controls the Krylov dimension; steps ≤ 0 picks min(n, 2k+30).
//
// This is the reproduction's substitute for the truncated MRRR eigensolver
// the paper cites (§III-B): same interface (L ≈ V Λ Vᵀ with V n×k), same
// asymptotic application cost.
func Lanczos(op MatVec, k, steps int, rng *rand.Rand) (*Eigen, error) {
	n := op.Dim()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("mat: Lanczos k=%d out of range for n=%d", k, n)
	}
	if steps <= 0 {
		steps = 2*k + 30
	}
	if steps > n {
		steps = n
	}
	if steps < k {
		steps = k
	}

	// Krylov basis, one row per Lanczos vector (rows are contiguous).
	basis := NewDense(steps, n)
	alpha := make([]float64, steps)
	beta := make([]float64, steps) // beta[j] couples v_j and v_{j+1}

	v := basis.Row(0)
	for i := range v {
		v[i] = rng.Float64() - 0.5
	}
	Normalize(v)

	w := make([]float64, n)
	m := steps
	for j := 0; j < steps; j++ {
		vj := basis.Row(j)
		op.Apply(w, vj)
		if j > 0 {
			Axpy(-beta[j-1], basis.Row(j-1), w)
		}
		alpha[j] = Dot(w, vj)
		Axpy(-alpha[j], vj, w)
		// Full reorthogonalization: twice is enough.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i <= j; i++ {
				bi := basis.Row(i)
				Axpy(-Dot(w, bi), bi, w)
			}
		}
		b := Norm2(w)
		if j == steps-1 {
			break
		}
		if b < 1e-12 {
			// Invariant subspace found early; truncate the factorization.
			m = j + 1
			break
		}
		beta[j] = b
		next := basis.Row(j + 1)
		copy(next, w)
		ScaleVec(1/b, next)
	}

	// Dense solve of the m×m tridiagonal T.
	t := NewDense(m, m)
	for i := 0; i < m; i++ {
		t.Set(i, i, alpha[i])
		if i+1 < m {
			t.Set(i, i+1, beta[i])
			t.Set(i+1, i, beta[i])
		}
	}
	te, err := SymEigen(t)
	if err != nil {
		return nil, err
	}
	if k > m {
		k = m
	}
	// Ritz vectors: columns of basisᵀ·S for the k smallest Ritz values.
	vec := NewDense(n, k)
	for j := 0; j < k; j++ {
		col := make([]float64, n)
		for i := 0; i < m; i++ {
			Axpy(te.Vectors.At(i, j), basis.Row(i), col)
		}
		for i := 0; i < n; i++ {
			vec.Set(i, j, col[i])
		}
	}
	vals := make([]float64, k)
	copy(vals, te.Values[:k])
	return &Eigen{Values: vals, Vectors: vec}, nil
}
