package mat

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	for _, dims := range [][2]int{{4, 4}, {8, 3}, {20, 10}, {1, 1}} {
		a := randDense(rng, dims[0], dims[1])
		qr, err := NewQR(a)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if d := MaxAbsDiff(Mul(qr.Q, qr.R), a); d > 1e-10 {
			t.Fatalf("%v: Q·R differs from A by %v", dims, d)
		}
		// Q orthonormal columns.
		if d := MaxAbsDiff(Gram(qr.Q), Identity(dims[1])); d > 1e-10 {
			t.Fatalf("%v: QᵀQ differs from I by %v", dims, d)
		}
		// R upper triangular.
		for i := 0; i < dims[1]; i++ {
			for j := 0; j < i; j++ {
				if qr.R.At(i, j) != 0 {
					t.Fatalf("%v: R[%d,%d] = %v below diagonal", dims, i, j, qr.R.At(i, j))
				}
			}
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := NewQR(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for m < n")
	}
}

func TestQRLeastSquares(t *testing.T) {
	// Overdetermined consistent system: exact solution recovered.
	rng := rand.New(rand.NewPCG(73, 74))
	a := randDense(rng, 10, 4)
	x := []float64{1, -2, 3, 0.5}
	b := MulVec(a, x)
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := qr.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(got[i], x[i], 1e-9) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], x[i])
		}
	}
	if _, err := qr.SolveVec(make([]float64, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

// Property: least-squares residual is orthogonal to the column space.
func TestQRResidualOrthogonalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 75))
		m, n := 5+int(seed%10), 2+int(seed%3)
		a := randDense(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		qr, err := NewQR(a)
		if err != nil {
			return false
		}
		x, err := qr.SolveVec(b)
		if err != nil {
			return false
		}
		r := MulVec(a, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		// Aᵀ·r ≈ 0.
		atr := MulTVec(a, r)
		for _, v := range atr {
			if v > 1e-8 || v < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQRRankDeficientColumn(t *testing.T) {
	// A zero column: factorization still valid, solve reports singular.
	a := NewDenseData(3, 2, []float64{1, 0, 2, 0, 3, 0})
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(Mul(qr.Q, qr.R), a); d > 1e-12 {
		t.Fatalf("reconstruction off by %v", d)
	}
	if _, err := qr.SolveVec([]float64{1, 2, 3}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}
