package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxCellLine bounds one line of a cell-query file. The previous reader
// used bufio.Scanner's 64KB default, which silently rejected wide batch
// lines; 8MB covers any realistic multi-index row while still bounding a
// hostile stream.
const MaxCellLine = 8 << 20

// ForEachCell reads multi-indices — one cell per line, order whitespace-
// separated non-negative integers, blank lines and #-comments skipped —
// and calls fn for each with its 1-based line number. The idx slice is
// reused between calls; fn must copy it to retain it. Every error names
// the offending line.
func ForEachCell(r io.Reader, order int, fn func(line int, idx []int32) error) error {
	if order <= 0 {
		return fmt.Errorf("serve: cell reader needs a positive order, got %d", order)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxCellLine)
	idx := make([]int32, order)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != order {
			return fmt.Errorf("serve: cells line %d: want %d indices, got %d", line, order, len(fields))
		}
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil || v < 0 {
				return fmt.Errorf("serve: cells line %d: bad index %q for mode %d", line, f, i)
			}
			idx[i] = int32(v)
		}
		if err := fn(line, idx); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("serve: cells line %d: line exceeds %d bytes", line+1, MaxCellLine)
		}
		return fmt.Errorf("serve: cells line %d: %w", line+1, err)
	}
	return nil
}

// ReadCells collects every cell of the stream into one flat row-major
// index block (count = len(result)/order).
func ReadCells(r io.Reader, order int) ([]int32, error) {
	var flat []int32
	err := ForEachCell(r, order, func(_ int, idx []int32) error {
		flat = append(flat, idx...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return flat, nil
}
