package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// The admin plane is deliberately thin JSON-over-HTTP: it manages the
// registry (load, swap, drop), exposes the stats rollup, and offers a
// text batch-predict endpoint for humans — the binary plane is the one
// with throughput SLOs.
//
//	GET    /healthz                  liveness
//	GET    /models                   model inventory
//	POST   /models/{name}            load or hot-swap: {"checkpoint": path, "data": path?}
//	DELETE /models/{name}            drop
//	POST   /models/{name}/predict    text cells in, JSON predictions out
//	GET    /stats                    metrics.ServeSnapshot as JSON
//	POST   /refresh                  run one refresh pass now
func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
	})
	mux.HandleFunc("POST /models/{name}", s.handleLoadModel)
	mux.HandleFunc("DELETE /models/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if _, ok := s.reg.Remove(name); !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no model %q loaded", name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
	})
	mux.HandleFunc("POST /models/{name}/predict", s.handleAdminPredict)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, s.reg.Snapshot().String())
			return
		}
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
	})
	mux.HandleFunc("POST /refresh", func(w http.ResponseWriter, r *http.Request) {
		if s.refresher == nil {
			httpError(w, http.StatusConflict, fmt.Errorf("refresh loop disabled (set -refresh-every)"))
			return
		}
		refreshed, errs := s.refresher.refreshAll()
		resp := map[string]any{"refreshed": refreshed}
		if len(errs) > 0 {
			texts := make([]string, len(errs))
			for i, e := range errs {
				texts[i] = e.Error()
			}
			resp["errors"] = texts
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// loadRequest is the POST /models/{name} body.
type loadRequest struct {
	// Checkpoint is the solver.ckpt image path to serve.
	Checkpoint string `json:"checkpoint"`
	// Data optionally names the COO observation file the refresh loop
	// re-reads for this model.
	Data string `json:"data"`
}

func (s *Server) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if req.Checkpoint == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("request needs a %q field", "checkpoint"))
		return
	}
	m, err := LoadModel(name, req.Checkpoint, req.Data, s.cfg.CacheRows)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	_, swapped := s.reg.Put(m)
	writeJSON(w, http.StatusOK, map[string]any{
		"model":   name,
		"swapped": swapped,
		"dims":    m.Dims(),
		"rank":    m.Rank(),
		"iter":    m.Iter,
	})
}

// handleAdminPredict reads text cells (the same format cmd/distenc's
// -predict flag accepts, through the same hardened reader) and answers
// with a JSON array of predictions.
func (s *Server) handleAdminPredict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, ok := s.reg.Get(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no model %q loaded", name))
		return
	}
	flat, err := ReadCells(r.Body, m.Order())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	values, err := m.PredictBatch(m.Order(), flat, nil)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if values == nil {
		values = []float64{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"model": name, "values": values})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
