package serve

import (
	"os"
	"testing"

	"distenc/internal/leakcheck"
)

// TestMain holds the serving plane to the drain contract: Server.Shutdown
// (and every test's client teardown) must leave zero goroutines behind —
// no lingering connection handlers, refresh loops, or admin servers.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
