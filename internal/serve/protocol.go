package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net"

	"distenc/internal/metrics"
	"distenc/internal/rdd"
	"distenc/internal/transport"
)

// The serve wire protocol mirrors the worker protocol's shape — one
// length-prefixed frame per message (rdd.WriteFrame/ReadFrame), a framed
// hello in each direction at connection setup, pipelined FIFO
// request/response — with its own magic so a predict client that dials a
// worker port (or vice versa) fails at the hello instead of misparsing
// frames.
//
// Frame layouts (integers little-endian):
//
//	hello     "DTS" magic | version u8
//	request   reqID u64 | op u8 | body…
//	response  reqID u64 | status u8 | payload…
//
// Request bodies:
//
//	opPredict  nameLen u16 | name | order u16 | count u32 | count·order × idx u32
//	opStats    (empty)
//	opPing     (empty)
//
// Response payloads: opPredict → count × f64 bits (the predictions, in cell
// order); opStats → the metrics.ServeSnapshot as JSON; errors → the error
// text.
var serveHello = []byte{'D', 'T', 'S', 1}

// Request opcodes.
const (
	opPredict = 1
	opStats   = 2
	opPing    = 3
)

// Response status codes.
const (
	stOK         = 0
	stNotFound   = 1 // unknown model; payload is the error text
	stBadRequest = 2 // malformed body or bad geometry; payload is the error text
	stError      = 3 // server-side failure; payload is the error text
)

// reqHeaderLen is reqID(8) + op(1).
const reqHeaderLen = 9

// respHeaderLen is reqID(8) + status(1).
const respHeaderLen = 9

// appendPredictRequest appends one framed-payload-less predict request.
func appendPredictRequest(buf []byte, reqID uint64, name string, order int, flat []int32) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, reqID)
	buf = append(buf, opPredict)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(order))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(flat)/order))
	for _, v := range flat {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// parsePredictBody decodes an opPredict body into (model, order, flat
// indices).
func parsePredictBody(body []byte) (string, int, []int32, error) {
	if len(body) < 2 {
		return "", 0, nil, fmt.Errorf("predict body of %d bytes, want >= 2", len(body))
	}
	nameLen := int(binary.LittleEndian.Uint16(body))
	body = body[2:]
	if len(body) < nameLen+6 {
		return "", 0, nil, fmt.Errorf("predict body truncated inside name/geometry (have %d bytes, name is %d)", len(body), nameLen)
	}
	name := string(body[:nameLen])
	body = body[nameLen:]
	order := int(binary.LittleEndian.Uint16(body))
	count := int(binary.LittleEndian.Uint32(body[2:]))
	body = body[6:]
	if order <= 0 {
		return "", 0, nil, fmt.Errorf("predict body declares order %d", order)
	}
	want := count * order * 4
	if len(body) != want {
		return "", 0, nil, fmt.Errorf("predict body carries %d index bytes, want %d for count=%d order=%d", len(body), want, count, order)
	}
	flat := make([]int32, count*order)
	for i := range flat {
		flat[i] = int32(binary.LittleEndian.Uint32(body[i*4:]))
	}
	return name, order, flat, nil
}

// Client is one connection to a serve endpoint. It performs sequential
// round trips and is NOT safe for concurrent use — concurrent callers each
// dial their own Client (connections are cheap; the server handles each on
// its own goroutine).
type Client struct {
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	nextID   uint64
	maxFrame int
	buf      []byte
}

// Dial connects to a serve endpoint and completes the hello exchange.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, 64<<10),
		bw:       bufio.NewWriterSize(conn, 64<<10),
		maxFrame: rdd.DefaultMaxFrame,
	}
	if err := transport.SendHello(c.bw, serveHello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: hello to %s: %w", addr, err)
	}
	if err := transport.ExpectHello(c.br, serveHello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: %s is not a serve endpoint: %w", addr, err)
	}
	return c, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip writes one framed request and reads its response, verifying
// FIFO reqID echo.
func (c *Client) roundTrip(reqID uint64, frame []byte) (uint8, []byte, error) {
	if err := rdd.WriteFrame(c.bw, frame); err != nil {
		return 0, nil, fmt.Errorf("serve: writing request: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, fmt.Errorf("serve: flushing request: %w", err)
	}
	resp, err := rdd.ReadFrame(c.br, c.maxFrame)
	if err != nil {
		return 0, nil, fmt.Errorf("serve: reading response: %w", err)
	}
	if len(resp) < respHeaderLen {
		return 0, nil, fmt.Errorf("serve: response frame of %d bytes, want >= %d", len(resp), respHeaderLen)
	}
	gotID := binary.LittleEndian.Uint64(resp)
	if gotID != reqID {
		return 0, nil, fmt.Errorf("serve: response for request %d, want %d (FIFO violated)", gotID, reqID)
	}
	return resp[8], resp[respHeaderLen:], nil
}

// statusErr converts a non-OK response into an error carrying the server's
// text.
func statusErr(status uint8, payload []byte) error {
	switch status {
	case stNotFound:
		return fmt.Errorf("serve: not found: %s", payload)
	case stBadRequest:
		return fmt.Errorf("serve: bad request: %s", payload)
	default:
		return fmt.Errorf("serve: server error (status %d): %s", status, payload)
	}
}

// Predict evaluates a batch of cells — flat row-major indices, order per
// cell — against the named model and returns one prediction per cell.
func (c *Client) Predict(model string, order int, flat []int32) ([]float64, error) {
	if order <= 0 || len(flat)%order != 0 {
		return nil, fmt.Errorf("serve: %d indices do not tile order %d", len(flat), order)
	}
	c.nextID++
	c.buf = appendPredictRequest(c.buf[:0], c.nextID, model, order, flat)
	status, payload, err := c.roundTrip(c.nextID, c.buf)
	if err != nil {
		return nil, err
	}
	if status != stOK {
		return nil, statusErr(status, payload)
	}
	count := len(flat) / order
	if len(payload) != count*8 {
		return nil, fmt.Errorf("serve: predict response carries %d bytes, want %d for %d cells", len(payload), count*8, count)
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return out, nil
}

// PredictCells is Predict over a slice of per-cell indices.
func (c *Client) PredictCells(model string, cells [][]int32) ([]float64, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	order := len(cells[0])
	flat := make([]int32, 0, len(cells)*order)
	for i, cell := range cells {
		if len(cell) != order {
			return nil, fmt.Errorf("serve: cell %d has %d indices, want %d", i, len(cell), order)
		}
		flat = append(flat, cell...)
	}
	return c.Predict(model, order, flat)
}

// Stats fetches the server's registry-wide rollup.
func (c *Client) Stats() (metrics.ServeSnapshot, error) {
	c.nextID++
	c.buf = binary.LittleEndian.AppendUint64(c.buf[:0], c.nextID)
	c.buf = append(c.buf, opStats)
	status, payload, err := c.roundTrip(c.nextID, c.buf)
	if err != nil {
		return nil, err
	}
	if status != stOK {
		return nil, statusErr(status, payload)
	}
	var snap metrics.ServeSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("serve: decoding stats: %w", err)
	}
	return snap, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	c.nextID++
	c.buf = binary.LittleEndian.AppendUint64(c.buf[:0], c.nextID)
	c.buf = append(c.buf, opPing)
	status, payload, err := c.roundTrip(c.nextID, c.buf)
	if err != nil {
		return err
	}
	if status != stOK {
		return statusErr(status, payload)
	}
	return nil
}
