package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distenc/internal/core"
	"distenc/internal/leakcheck"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
	"distenc/internal/synth"
	"distenc/internal/transport"
)

// trainCheckpoint runs a small distributed completion with per-iteration
// checkpointing and returns the final checkpoint image path, the dataset,
// and the trained model. The final checkpoint's factors are bit-identical
// to the returned model's (the resume-reproducibility invariant), so serve
// predictions can be checked against Result.Model directly.
func trainCheckpoint(t *testing.T, seed uint64, iters int) (string, *synth.Dataset, *core.Result) {
	t.Helper()
	d := synth.LinearFactorDataset([]int{12, 10, 8}, 2, 600, seed)
	dir := t.TempDir()
	c := rdd.MustNewCluster(rdd.Config{Machines: 2})
	defer c.Close()
	res, err := core.CompleteDistributed(c, d.Tensor, d.Sims, core.DistOptions{Options: core.Options{
		Rank: 3, MaxIter: iters, Tol: 1e-300, Seed: seed + 1,
		CheckpointEvery: 1, CheckpointDir: dir,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return core.CheckpointPath(dir), d, res
}

// startServer runs srv.Serve on a goroutine and registers a draining
// cleanup.
func startServer(t *testing.T, srv *Server) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServePredictionsBitEqual is the acceptance property: for every
// observed cell of the training tensor, the served prediction is bit-equal
// to sptensor.Kruskal.At on the trained model — through the checkpoint
// round trip, the binary protocol, and the hot-row cache (sized small
// enough to force constant evictions).
func TestServePredictionsBitEqual(t *testing.T) {
	ckpt, d, res := trainCheckpoint(t, 61, 4)
	reg := NewRegistry()
	m, err := LoadModel("ratings", ckpt, "", 16)
	if err != nil {
		t.Fatal(err)
	}
	reg.Put(m)
	srv, err := NewServer(reg, Config{Listen: "127.0.0.1:0", CacheRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	startServer(t, srv)
	cl := dialTest(t, srv.Addr())

	tensor := d.Tensor
	order := tensor.Order()
	const batch = 64
	for start := 0; start < tensor.NNZ(); start += batch {
		end := min(start+batch, tensor.NNZ())
		flat := make([]int32, 0, (end-start)*order)
		for e := start; e < end; e++ {
			flat = append(flat, tensor.Index(e)...)
		}
		got, err := cl.Predict("ratings", order, flat)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := 0, start; e < end; i, e = i+1, e+1 {
			want := res.Model.At(tensor.Index(e))
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("cell %v: served %v (bits %x), want %v (bits %x)",
					tensor.Index(e), got[i], math.Float64bits(got[i]), want, math.Float64bits(want))
			}
		}
	}

	// The cache must have seen traffic, and hit at least once (600 cells
	// over 30 distinct mode-0 rows guarantee re-use even with 16 slots).
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].CacheHits+snap[0].CacheMisses == 0 {
		t.Fatalf("cache counters empty: %+v", snap)
	}
	if snap[0].Cells != int64(tensor.NNZ()) {
		t.Fatalf("stats count %d cells, want %d", snap[0].Cells, tensor.NNZ())
	}
}

// TestHotSwapNeverTears hammers batch predictions from several connections
// while the registry swaps between two model generations. Every response
// must match one generation wholly — a mix would prove a torn read. Run
// under -race in the serve CI job.
func TestHotSwapNeverTears(t *testing.T) {
	// Registered before startServer's cleanup, so it runs after the server
	// has drained: the swap storm must leave zero goroutines behind.
	t.Cleanup(func() { leakcheck.Check(t) })
	ckptA, d, resA := trainCheckpoint(t, 71, 3)
	ckptB, _, resB := trainCheckpoint(t, 71, 6) // same data, more iterations

	// One fixed probe batch: the first 32 observed cells.
	order := d.Tensor.Order()
	count := min(32, d.Tensor.NNZ())
	flat := make([]int32, 0, count*order)
	for e := 0; e < count; e++ {
		flat = append(flat, d.Tensor.Index(e)...)
	}
	wantA := make([]uint64, count)
	wantB := make([]uint64, count)
	distinct := false
	for e := 0; e < count; e++ {
		wantA[e] = math.Float64bits(resA.Model.At(d.Tensor.Index(e)))
		wantB[e] = math.Float64bits(resB.Model.At(d.Tensor.Index(e)))
		if wantA[e] != wantB[e] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("generations A and B predict identically; the test cannot detect tearing")
	}

	reg := NewRegistry()
	mA, err := LoadModel("m", ckptA, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	reg.Put(mA)
	srv, err := NewServer(reg, Config{Listen: "127.0.0.1:0", CacheRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	startServer(t, srv)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for !stop.Load() {
				got, err := cl.Predict("m", order, flat)
				if err != nil {
					errs <- err
					return
				}
				matchesA, matchesB := true, true
				for i, v := range got {
					bits := math.Float64bits(v)
					matchesA = matchesA && bits == wantA[i]
					matchesB = matchesB && bits == wantB[i]
				}
				if !matchesA && !matchesB {
					errs <- fmt.Errorf("torn response: matches neither generation wholly")
					return
				}
			}
		}()
	}

	deadline := time.Now().Add(400 * time.Millisecond)
	for n := 0; time.Now().Before(deadline); n++ {
		ckpt := ckptA
		if n%2 == 0 {
			ckpt = ckptB
		}
		m, err := LoadModel("m", ckpt, "", 8)
		if err != nil {
			t.Fatal(err)
		}
		reg.Put(m)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Cumulative stats survived every swap.
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].Swaps == 0 || snap[0].Queries == 0 {
		t.Fatalf("stats lost across swaps: %+v", snap)
	}
}

func TestRegistrySwapInheritsStats(t *testing.T) {
	ckpt, _, _ := trainCheckpoint(t, 81, 2)
	reg := NewRegistry()
	m1, err := LoadModel("m", ckpt, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	reg.Put(m1)
	if _, err := m1.At([]int32{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel("m", ckpt, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	old, existed := reg.Put(m2)
	if !existed || old != m1 {
		t.Fatal("swap did not return the retired generation")
	}
	st := m2.Stats()
	if st.Queries != 1 || st.Swaps != 1 || st.CacheMisses == 0 {
		t.Fatalf("inherited stats = %+v, want queries=1 swaps=1 misses>0", st)
	}
	if _, ok := reg.Remove("m"); !ok {
		t.Fatal("remove failed")
	}
	if _, ok := reg.Get("m"); ok {
		t.Fatal("model still present after remove")
	}
}

func TestProtocolErrorsAndStats(t *testing.T) {
	ckpt, _, _ := trainCheckpoint(t, 91, 2)
	reg := NewRegistry()
	m, err := LoadModel("m", ckpt, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	reg.Put(m)
	srv, err := NewServer(reg, Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	startServer(t, srv)
	cl := dialTest(t, srv.Addr())

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Predict("ghost", 3, []int32{1, 1, 1}); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := cl.Predict("m", 2, []int32{1, 1}); err == nil || !strings.Contains(err.Error(), "order") {
		t.Fatalf("wrong order: %v", err)
	}
	if _, err := cl.Predict("m", 3, []int32{1, 1, 500}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range index: %v", err)
	}
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0].Model != "m" || snap[0].Rank != 3 {
		t.Fatalf("stats = %+v", snap)
	}
}

// TestHelloRejectsStrangers proves the mis-dialed-port property both ways:
// a worker-protocol hello on the serve port closes the connection, and the
// serve client refuses a non-serve endpoint.
func TestHelloRejectsStrangers(t *testing.T) {
	ckpt, _, _ := trainCheckpoint(t, 96, 2)
	reg := NewRegistry()
	m, err := LoadModel("m", ckpt, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	reg.Put(m)
	srv, err := NewServer(reg, Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	startServer(t, srv)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := transport.SendHello(bw, []byte{'D', 'T', 'W', 1}); err != nil {
		t.Fatal(err)
	}
	// The server must hang up without answering.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a worker-protocol hello")
	}

	// And Dial against a non-serve listener fails at the hello.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("HTTP/1.0 400 nope\r\n\r\n"))
		c.Close()
	}()
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Fatal("Dial accepted a non-serve endpoint")
	}
	wg.Wait()
}

func TestAdminPlane(t *testing.T) {
	ckpt, d, res := trainCheckpoint(t, 101, 3)
	reg := NewRegistry()
	srv, err := NewServer(reg, Config{Listen: "127.0.0.1:0", Admin: "127.0.0.1:0", CacheRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	startServer(t, srv)
	base := "http://" + srv.AdminAddr()
	client := &http.Client{}
	t.Cleanup(client.CloseIdleConnections)

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}
	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}

	// Load a model through the admin plane.
	code, body := post("/models/ratings", fmt.Sprintf(`{"checkpoint": %q}`, ckpt))
	if code != http.StatusOK {
		t.Fatalf("load: %d %s", code, body)
	}
	if m, ok := reg.Get("ratings"); !ok || m.Rank() != 3 {
		t.Fatal("model not registered")
	}

	// A corrupt checkpoint is rejected with the loader's descriptive error.
	bad := filepath.Join(t.TempDir(), "solver.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint image, definitely"), 0o600); err != nil {
		t.Fatal(err)
	}
	code, body = post("/models/broken", fmt.Sprintf(`{"checkpoint": %q}`, bad))
	if code != http.StatusBadRequest || !strings.Contains(string(body), "bad checkpoint magic") {
		t.Fatalf("corrupt load: %d %s", code, body)
	}

	// Text batch predict through the shared cell reader, checked bit-equal.
	e0 := d.Tensor.Index(0)
	cells := fmt.Sprintf("# probe\n%d %d %d\n", e0[0], e0[1], e0[2])
	code, body = post("/models/ratings/predict", cells)
	if code != http.StatusOK {
		t.Fatalf("predict: %d %s", code, body)
	}
	var pred struct {
		Values []float64 `json:"values"`
	}
	if err := json.Unmarshal(body, &pred); err != nil {
		t.Fatal(err)
	}
	if len(pred.Values) != 1 || math.Float64bits(pred.Values[0]) != math.Float64bits(res.Model.At(e0)) {
		t.Fatalf("admin predict = %v, want %v", pred.Values, res.Model.At(e0))
	}

	// Inventory and stats.
	if code, body := get("/models"); code != http.StatusOK || !strings.Contains(string(body), `"ratings"`) {
		t.Fatalf("models: %d %s", code, body)
	}
	if code, body := get("/stats?format=text"); code != http.StatusOK || !strings.Contains(string(body), "ratings") {
		t.Fatalf("stats text: %d %s", code, body)
	}

	// Refresh is a 409 when the loop is disabled.
	if code, body := post("/refresh", ""); code != http.StatusConflict {
		t.Fatalf("refresh without loop: %d %s", code, body)
	}

	// Drop.
	req, err := http.NewRequest(http.MethodDelete, base+"/models/ratings", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if _, ok := reg.Get("ratings"); ok {
		t.Fatal("model still present after DELETE")
	}
}

// readCOOFile parses a COO file the way the daemon's injected reader does;
// tests reimplement the tiny header+entries format locally to keep the
// internal package free of a façade dependency.
func readCOOFile(path string) (*sptensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tensor *sptensor.Tensor
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if tensor == nil {
			if fields[0] != "dims" {
				return nil, fmt.Errorf("want dims header, got %q", sc.Text())
			}
			dims := make([]int, len(fields)-1)
			for i, fd := range fields[1:] {
				fmt.Sscan(fd, &dims[i])
			}
			tensor = sptensor.New(dims...)
			continue
		}
		idx := make([]int32, tensor.Order())
		for i := range idx {
			var v int
			fmt.Sscan(fields[i], &v)
			idx[i] = int32(v)
		}
		var val float64
		fmt.Sscan(fields[tensor.Order()], &val)
		tensor.Append(idx, val)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tensor, nil
}

func writeCOOFile(t *testing.T, path string, tensor *sptensor.Tensor) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("dims")
	for _, d := range tensor.Dims {
		fmt.Fprintf(&sb, " %d", d)
	}
	sb.WriteByte('\n')
	for e := 0; e < tensor.NNZ(); e++ {
		for _, v := range tensor.Index(e) {
			fmt.Fprintf(&sb, "%d ", v)
		}
		fmt.Fprintf(&sb, "%.17g\n", tensor.Val[e])
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o600); err != nil {
		t.Fatal(err)
	}
}

// TestRefreshFoldsAppendedObservations drives one admin-triggered refresh:
// observations appended to the model's COO file fold into the served
// factors (the iteration counter advances, the generation swaps
// atomically), and a refresh failure would have left the old generation
// serving.
func TestRefreshFoldsAppendedObservations(t *testing.T) {
	ckpt, d, _ := trainCheckpoint(t, 111, 3)

	dataPath := filepath.Join(t.TempDir(), "obs.coo")
	writeCOOFile(t, dataPath, d.Tensor)

	reg := NewRegistry()
	m, err := LoadModel("m", ckpt, dataPath, 8)
	if err != nil {
		t.Fatal(err)
	}
	reg.Put(m)
	baseIter := m.Iter

	srv, err := NewServer(reg, Config{
		Listen: "127.0.0.1:0", Admin: "127.0.0.1:0", CacheRows: 8,
		Refresh: RefreshConfig{
			Every:      time.Hour, // loop armed but effectively manual
			Iters:      2,
			Machines:   2,
			ScratchDir: t.TempDir(),
			ReadTensor: readCOOFile,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	startServer(t, srv)

	// Append fresh observations drawn from the generating model.
	appended := sptensor.New(d.Tensor.Dims...)
	appended.Append([]int32{11, 9, 7}, d.Truth.At([]int32{11, 9, 7}))
	appended.Append([]int32{0, 9, 7}, d.Truth.At([]int32{0, 9, 7}))
	f, err := os.OpenFile(dataPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < appended.NNZ(); e++ {
		idx := appended.Index(e)
		fmt.Fprintf(f, "%d %d %d %.17g\n", idx[0], idx[1], idx[2], appended.Val[e])
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	client := &http.Client{}
	t.Cleanup(client.CloseIdleConnections)
	resp, err := client.Post("http://"+srv.AdminAddr()+"/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var refreshResp struct {
		Refreshed []string `json:"refreshed"`
		Errors    []string `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&refreshResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(refreshResp.Errors) > 0 {
		t.Fatalf("refresh errors: %v", refreshResp.Errors)
	}
	if len(refreshResp.Refreshed) != 1 || refreshResp.Refreshed[0] != "m" {
		t.Fatalf("refreshed = %v, want [m]", refreshResp.Refreshed)
	}

	next, ok := reg.Get("m")
	if !ok {
		t.Fatal("model vanished after refresh")
	}
	if next == m {
		t.Fatal("refresh did not swap a new generation in")
	}
	if next.Iter != baseIter+2 {
		t.Fatalf("refreshed iter = %d, want %d", next.Iter, baseIter+2)
	}
	st := next.Stats()
	if st.Refreshes != 1 || st.Swaps != 1 {
		t.Fatalf("stats = %+v, want refreshes=1 swaps=1", st)
	}

	// The refreshed generation serves its own factors bit-equal.
	cl := dialTest(t, srv.Addr())
	idx := []int32{11, 9, 7}
	got, err := cl.Predict("m", 3, idx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got[0]) != math.Float64bits(next.Kruskal().At(idx)) {
		t.Fatalf("served %v, want %v", got[0], next.Kruskal().At(idx))
	}
}
