package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// rowKey addresses one factor row: (mode, row index).
type rowKey struct {
	mode int16
	row  int32
}

// rowEntry is one cached row; rows are exact copies of the factor's row at
// insert time and are never mutated after, so a hit returns the same bits a
// direct factor read would.
type rowEntry struct {
	key rowKey
	row []float64
}

// rowCache is a per-model LRU of hot factor rows. A capacity of 0 disables
// it: Get reports a miss without touching any state, and the caller reads
// the factor directly.
//
// The mutex guards only map/list manipulation — no I/O, no channel ops —
// so predict-path lookups from many connections contend briefly and never
// block on anything slower than memory.
type rowCache struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu      sync.Mutex
	cap     int
	entries map[rowKey]*list.Element
	lru     *list.List // front = most recently used
}

// newRowCache returns a cache holding at most capRows rows; capRows <= 0
// disables caching.
func newRowCache(capRows int) *rowCache {
	c := &rowCache{cap: capRows}
	if capRows > 0 {
		c.entries = make(map[rowKey]*list.Element, capRows)
		c.lru = list.New()
	}
	return c
}

// Get returns the cached row for (mode, row), or nil on a miss. The
// returned slice is shared and read-only.
func (c *rowCache) Get(mode int16, row int32) []float64 {
	if c.cap <= 0 {
		return nil
	}
	key := rowKey{mode: mode, row: row}
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return el.Value.(*rowEntry).row
}

// Put stores a copy of row under (mode, rowIdx), evicting the least
// recently used entry if the cache is full. The input slice is copied, so
// callers may hand over factor-row views safely.
func (c *rowCache) Put(mode int16, rowIdx int32, row []float64) {
	if c.cap <= 0 {
		return
	}
	cp := append(make([]float64, 0, len(row)), row...)
	key := rowKey{mode: mode, row: rowIdx}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Raced with another miss on the same row; keep the resident copy.
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.lru.PushFront(&rowEntry{key: key, row: cp})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*rowEntry).key)
	}
	c.mu.Unlock()
}

// Len returns the current number of cached rows.
func (c *rowCache) Len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return n
}

// Cap returns the configured capacity (0 = disabled).
func (c *rowCache) Cap() int { return c.cap }
