package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"distenc/internal/rdd"
	"distenc/internal/transport"
)

// Config sizes one serve daemon.
type Config struct {
	// Listen is the predict-plane TCP address (e.g. "127.0.0.1:0").
	Listen string
	// Admin is the HTTP admin-plane address; empty disables the admin
	// server.
	Admin string
	// CacheRows is each model's hot-row LRU capacity (0 disables caching).
	CacheRows int
	// MaxFrame bounds request frames (default rdd.DefaultMaxFrame).
	MaxFrame int
	// Refresh configures the online-refresh loop; a zero Every disables it.
	Refresh RefreshConfig
}

// Server answers entry-reconstruction queries from a model registry over
// the binary predict plane and manages the registry over the HTTP admin
// plane. Connection handling mirrors transport.Server: one goroutine per
// accepted connection, FIFO pipelining, flush-when-idle, and a graceful
// Shutdown that lets in-flight requests finish before unblocking idle
// reads via a deadline.
type Server struct {
	cfg      Config
	reg      *Registry
	ln       net.Listener
	admin    *http.Server
	adminLn  net.Listener
	maxFrame int

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg        sync.WaitGroup
	refresher *refresher
}

// NewServer builds a server over reg and binds its listeners (predict
// plane always; admin plane when cfg.Admin is set). Call Serve to start.
func NewServer(reg *Registry, cfg Config) (*Server, error) {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = rdd.DefaultMaxFrame
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Listen, err)
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		ln:       ln,
		maxFrame: cfg.MaxFrame,
		conns:    map[net.Conn]struct{}{},
	}
	if cfg.Admin != "" {
		adminLn, err := net.Listen("tcp", cfg.Admin)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("serve: admin listen %s: %w", cfg.Admin, err)
		}
		s.adminLn = adminLn
		s.admin = &http.Server{Handler: s.adminMux()}
	}
	if cfg.Refresh.Every > 0 {
		s.refresher = newRefresher(reg, cfg.Refresh, cfg.CacheRows)
	}
	return s, nil
}

// Registry returns the registry the server answers from.
func (s *Server) Registry() *Registry { return s.reg }

// Addr returns the predict plane's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AdminAddr returns the admin plane's bound address ("" when disabled).
func (s *Server) AdminAddr() string {
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// Serve runs the predict-plane accept loop (and starts the admin plane and
// refresh loop, which Shutdown stops). It returns nil after a graceful
// shutdown.
func (s *Server) Serve() error {
	if s.admin != nil {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// http.Server.Serve returns ErrServerClosed after Shutdown.
			s.admin.Serve(s.adminLn)
		}()
	}
	if s.refresher != nil {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.refresher.run()
		}()
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Shutdown drains the server: stop the refresh loop, stop accepting on
// both planes, let every in-flight request finish, then return. Safe to
// call more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.ln.Close()
	for conn := range s.conns {
		// Unblocks only a read waiting for the NEXT request; a request mid-
		// handling completes and its response flushes first.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if s.refresher != nil {
		s.refresher.stop()
	}
	if s.admin != nil {
		// Close rather than Shutdown: admin requests are short and the
		// predict plane — the one with SLOs — already drained gracefully
		// above. Close also tears down keep-alive connections, which
		// Shutdown would wait on indefinitely.
		s.admin.Close()
	}
	s.wg.Wait()
	if s.refresher != nil {
		s.refresher.cleanup()
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.wg.Done()
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.dropConn(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	if err := transport.ExpectHello(br, serveHello); err != nil {
		return
	}
	if err := transport.SendHello(bw, serveHello); err != nil {
		return
	}

	var respBuf []byte
	var predBuf []float64
	for {
		frame, err := rdd.ReadFrame(br, s.maxFrame)
		if err != nil {
			return // EOF, torn frame, or the shutdown read deadline
		}
		if len(frame) < reqHeaderLen {
			return
		}
		reqID := binary.LittleEndian.Uint64(frame)
		op := frame[8]
		respBuf, predBuf = s.handle(reqID, op, frame[reqHeaderLen:], respBuf[:0], predBuf[:0])
		if err := rdd.WriteFrame(bw, respBuf); err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handle executes one request, appending the response to buf. predBuf is
// the reusable prediction scratch.
func (s *Server) handle(reqID uint64, op uint8, body, buf []byte, predBuf []float64) ([]byte, []float64) {
	switch op {
	case opPing:
		return appendResponse(buf, reqID, stOK, nil), predBuf
	case opStats:
		snap, err := json.Marshal(s.reg.Snapshot())
		if err != nil {
			return appendResponse(buf, reqID, stError, []byte(err.Error())), predBuf
		}
		return appendResponse(buf, reqID, stOK, snap), predBuf
	case opPredict:
		name, order, flat, err := parsePredictBody(body)
		if err != nil {
			return appendResponse(buf, reqID, stBadRequest, []byte(err.Error())), predBuf
		}
		// Capture the model generation once; the whole batch — validation
		// and every prediction — is answered by it, so a concurrent swap
		// never mixes generations within a response.
		m, ok := s.reg.Get(name)
		if !ok {
			return appendResponse(buf, reqID, stNotFound, fmt.Appendf(nil, "no model %q loaded", name)), predBuf
		}
		predBuf, err = m.PredictBatch(order, flat, predBuf)
		if err != nil {
			return appendResponse(buf, reqID, stBadRequest, []byte(err.Error())), predBuf
		}
		buf = binary.LittleEndian.AppendUint64(buf, reqID)
		buf = append(buf, stOK)
		for _, v := range predBuf {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		return buf, predBuf
	default:
		return appendResponse(buf, reqID, stBadRequest, fmt.Appendf(nil, "unknown op %d", op)), predBuf
	}
}

// appendResponse appends a response header and payload.
func appendResponse(buf []byte, reqID uint64, status uint8, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, reqID)
	buf = append(buf, status)
	return append(buf, payload...)
}
