package serve

import (
	"math"
	"testing"
)

func TestRowCacheDisabled(t *testing.T) {
	c := newRowCache(0)
	if got := c.Get(0, 1); got != nil {
		t.Fatalf("disabled cache returned %v", got)
	}
	c.Put(0, 1, []float64{1, 2})
	if got := c.Get(0, 1); got != nil {
		t.Fatalf("disabled cache stored a row: %v", got)
	}
	if c.Len() != 0 || c.Cap() != 0 {
		t.Fatalf("disabled cache reports len=%d cap=%d", c.Len(), c.Cap())
	}
	if h, m := c.hits.Load(), c.misses.Load(); h != 0 || m != 0 {
		t.Fatalf("disabled cache counted hits=%d misses=%d", h, m)
	}
}

func TestRowCacheRoundTripExactBits(t *testing.T) {
	c := newRowCache(4)
	// Values chosen to be bit-sensitive: subnormal, negative zero, huge.
	row := []float64{5e-324, math.Copysign(0, -1), 1e308, 1.0 / 3.0}
	c.Put(1, 7, row)
	row[0] = 99 // the cache must have copied, not aliased
	got := c.Get(1, 7)
	if got == nil {
		t.Fatal("row not cached")
	}
	want := []float64{5e-324, math.Copysign(0, -1), 1e308, 1.0 / 3.0}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("entry %d = %v (bits %x), want %v (bits %x)",
				i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestRowCacheLRUEviction(t *testing.T) {
	c := newRowCache(2)
	c.Put(0, 1, []float64{1})
	c.Put(0, 2, []float64{2})
	if c.Get(0, 1) == nil { // touch 1: now 2 is least recent
		t.Fatal("row 1 missing")
	}
	c.Put(0, 3, []float64{3}) // evicts 2
	if c.Get(0, 2) != nil {
		t.Fatal("least-recently-used row 2 survived eviction")
	}
	if c.Get(0, 1) == nil || c.Get(0, 3) == nil {
		t.Fatal("recently used rows evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestRowCacheCounters(t *testing.T) {
	c := newRowCache(2)
	c.Get(0, 1)               // miss
	c.Put(0, 1, []float64{1}) // insert
	c.Get(0, 1)               // hit
	c.Get(3, 1)               // miss (different mode)
	if h, m := c.hits.Load(), c.misses.Load(); h != 1 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 1 and 2", h, m)
	}
}
