// Package serve is the completion-as-a-service plane: it loads finished
// solver checkpoints (the solver.ckpt images core writes) into a model
// registry and answers single and batch entry-reconstruction queries
// x̂(i_1,…,i_N) = Σ_r Π_n A(n)[i_n,r] (Eq. 3) over a length-prefixed binary
// protocol that reuses the transport framing, plus an HTTP/JSON admin plane
// for loading, swapping, and dropping models at runtime.
//
// The serving model is deliberately simple: a model is an immutable set of
// factor matrices. Updates never mutate a served model — the admin API and
// the online-refresh loop build a replacement and swap the registry pointer
// atomically, so every in-flight batch is answered wholly by one model
// generation, never a torn mix. Per-model LRU caches of hot factor rows
// keep popular objects' rows close; cached rows are exact copies, so cached
// and uncached predictions are bit-identical to sptensor.Kruskal.At.
package serve
