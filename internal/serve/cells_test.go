package serve

import (
	"fmt"
	"strings"
	"testing"
)

func TestForEachCellParsesAndSkips(t *testing.T) {
	in := "# header comment\n\n 1 2 3 \n0 0 0\n# mid comment\n4 5 6\n"
	var got [][]int32
	var lines []int
	err := ForEachCell(strings.NewReader(in), 3, func(line int, idx []int32) error {
		got = append(got, append([]int32(nil), idx...))
		lines = append(lines, line)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 2, 3}, {0, 0, 0}, {4, 5, 6}}
	if len(got) != len(want) {
		t.Fatalf("parsed %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("cell %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if lines[0] != 3 || lines[1] != 4 || lines[2] != 6 {
		t.Fatalf("line numbers = %v, want [3 4 6]", lines)
	}
}

func TestForEachCellErrorsNameTheLine(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"wrong arity", "1 2 3\n1 2\n", "line 2: want 3 indices, got 2"},
		{"negative index", "1 2 3\n1 -2 3\n", "line 2: bad index \"-2\" for mode 1"},
		{"not a number", "x 2 3\n", "line 1: bad index \"x\" for mode 0"},
		{"index overflows int32", fmt.Sprintf("1 2 %d\n", int64(1)<<40), "line 1: bad index"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := ForEachCell(strings.NewReader(tc.in), 3, func(int, []int32) error { return nil })
			if err == nil {
				t.Fatal("bad input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error missing %q:\n%v", tc.want, err)
			}
		})
	}
}

// TestForEachCellWideLine is the regression for the old 64KB
// bufio.Scanner default: a line wider than 64KB (heavy whitespace padding
// around a valid cell) must parse.
func TestForEachCellWideLine(t *testing.T) {
	pad := strings.Repeat(" ", 100<<10)
	in := "7 8 9" + pad + "\n1 2 3\n"
	var count int
	err := ForEachCell(strings.NewReader(in), 3, func(line int, idx []int32) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("parsed %d cells, want 2", count)
	}
}

func TestForEachCellRejectsAbsurdLine(t *testing.T) {
	in := strings.NewReader("1 2 3\n" + strings.Repeat("9", MaxCellLine+2) + "\n")
	err := ForEachCell(in, 3, func(int, []int32) error { return nil })
	if err == nil {
		t.Fatal("over-long line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("error should name line 2 and the limit:\n%v", err)
	}
}

func TestReadCellsFlattens(t *testing.T) {
	flat, err := ReadCells(strings.NewReader("1 2\n3 4\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 2, 3, 4}
	if len(flat) != len(want) {
		t.Fatalf("flat = %v, want %v", flat, want)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
}
