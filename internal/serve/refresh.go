package serve

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"distenc/internal/core"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
)

// RefreshConfig drives the online-refresh loop: every Every, each model
// that names an observation file is warm-started from its current
// checkpoint for Iters more ADMM iterations over the re-read observations
// (so rows appended to the COO file since training fold into the factors),
// and the refreshed generation atomically replaces the served one.
type RefreshConfig struct {
	// Every is the loop period; 0 disables the loop entirely.
	Every time.Duration
	// Iters is how many additional iterations each refresh runs (default 1).
	Iters int
	// Machines is the in-process cluster width the warm-start runs on
	// (default 2).
	Machines int
	// ScratchDir hosts the per-refresh checkpoint scratch directories
	// (default: the OS temp dir).
	ScratchDir string
	// ReadTensor loads the observation tensor from a COO file. The daemon
	// injects the top-level ReadCOO; the indirection keeps internal/serve
	// free of an upward dependency on the façade package.
	ReadTensor TensorReader
	// OnRefresh, when set, observes each completed refresh (test hook).
	OnRefresh func(model string, err error)
}

// TensorReader matches the façade's COO loader: it returns the observation
// tensor parsed from path.
type TensorReader func(path string) (*sptensor.Tensor, error)

// refresher owns the background loop. One refresh pass runs at a time —
// concurrent triggers (ticker vs admin POST /refresh) are rejected, not
// queued — and a failed refresh leaves the old generation serving.
type refresher struct {
	reg       *Registry
	cfg       RefreshConfig
	cacheRows int

	done     chan struct{}
	stopOnce sync.Once
	sem      chan struct{} // capacity 1: at most one pass in flight

	dirMu sync.Mutex
	dirs  map[string]string // model name -> scratch dir of the served generation
}

func newRefresher(reg *Registry, cfg RefreshConfig, cacheRows int) *refresher {
	if cfg.Iters <= 0 {
		cfg.Iters = 1
	}
	if cfg.Machines <= 0 {
		cfg.Machines = 2
	}
	return &refresher{
		reg:       reg,
		cfg:       cfg,
		cacheRows: cacheRows,
		done:      make(chan struct{}),
		sem:       make(chan struct{}, 1),
		dirs:      map[string]string{},
	}
}

// run ticks until stop. Owned by Server.Serve's WaitGroup.
func (r *refresher) run() {
	t := time.NewTicker(r.cfg.Every)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.refreshAll()
		}
	}
}

// stop ends the loop; in-flight passes finish (Server.Shutdown waits on
// the run goroutine via its WaitGroup).
func (r *refresher) stop() {
	r.stopOnce.Do(func() { close(r.done) })
}

// cleanup removes the scratch directories; call only after run exited.
func (r *refresher) cleanup() {
	r.dirMu.Lock()
	dirs := make([]string, 0, len(r.dirs))
	for _, d := range r.dirs {
		dirs = append(dirs, d)
	}
	r.dirs = map[string]string{}
	r.dirMu.Unlock()
	for _, d := range dirs {
		os.RemoveAll(d)
	}
}

// refreshAll refreshes every model that has an observation file, returning
// the refreshed names and per-model errors. A pass already in flight makes
// the call return immediately with an error.
func (r *refresher) refreshAll() (refreshed []string, errs []error) {
	select {
	case r.sem <- struct{}{}:
	default:
		return nil, []error{errors.New("serve: refresh already in progress")}
	}
	defer func() { <-r.sem }()

	for _, m := range r.reg.Models() {
		if m.Data == "" {
			continue
		}
		err := r.refreshModel(m)
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: refreshing %q: %w", m.Name, err))
		} else {
			refreshed = append(refreshed, m.Name)
		}
		if r.cfg.OnRefresh != nil {
			r.cfg.OnRefresh(m.Name, err)
		}
	}
	return refreshed, errs
}

// refreshModel warm-starts one model from its current checkpoint over the
// re-read observations and swaps the refreshed generation in. Any failure
// leaves the served generation untouched.
func (r *refresher) refreshModel(m *Model) error {
	if r.cfg.ReadTensor == nil {
		return errors.New("refresh needs a TensorReader")
	}
	t, err := r.cfg.ReadTensor(m.Data)
	if err != nil {
		return fmt.Errorf("re-reading observations %s: %w", m.Data, err)
	}

	// Warm-start in a scratch directory seeded with the served generation's
	// checkpoint, so a crash or error mid-refresh can never corrupt the
	// image the served model was loaded from.
	scratch, err := os.MkdirTemp(r.cfg.ScratchDir, "distenc-serve-refresh-")
	if err != nil {
		return err
	}
	img, err := os.ReadFile(m.Source)
	if err != nil {
		os.RemoveAll(scratch)
		return fmt.Errorf("reading served checkpoint: %w", err)
	}
	if err := os.WriteFile(core.CheckpointPath(scratch), img, 0o600); err != nil {
		os.RemoveAll(scratch)
		return err
	}

	c, err := rdd.NewCluster(rdd.Config{Machines: r.cfg.Machines})
	if err != nil {
		os.RemoveAll(scratch)
		return err
	}
	_, err = core.ResumeDistributed(c, t, nil, core.DistOptions{Options: core.Options{
		Rank: m.Rank(),
		// Run exactly Iters more iterations: the checkpoint restores the
		// iteration counter, and the near-zero Tol (0 would mean "default")
		// keeps the delta criterion from stopping the warm-start early.
		MaxIter:         m.Iter + r.cfg.Iters,
		Tol:             1e-300,
		CheckpointEvery: 1,
		CheckpointDir:   scratch,
	}})
	c.Close()
	if err != nil {
		os.RemoveAll(scratch)
		return err
	}

	next, err := LoadModel(m.Name, core.CheckpointPath(scratch), m.Data, r.cacheRows)
	if err != nil {
		os.RemoveAll(scratch)
		return fmt.Errorf("re-reading refreshed checkpoint: %w", err)
	}
	r.reg.Put(next) // atomic swap; stats carry over
	next.stats.refreshes.Add(1)

	r.dirMu.Lock()
	prev := r.dirs[m.Name]
	r.dirs[m.Name] = scratch
	r.dirMu.Unlock()
	if prev != "" {
		os.RemoveAll(prev)
	}
	return nil
}
