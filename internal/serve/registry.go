package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distenc/internal/core"
	"distenc/internal/metrics"
	"distenc/internal/sptensor"
)

// modelStats carries a model name's cumulative counters. The struct is
// shared across generations: when a swap replaces the model under a name,
// the replacement inherits the same stats object, so query totals and swap
// counts survive reloads and refreshes. Counter rows from retired
// generations' caches are folded into priorHits/priorMisses at swap time.
type modelStats struct {
	queries     atomic.Int64
	cells       atomic.Int64
	swaps       atomic.Int64
	refreshes   atomic.Int64
	priorHits   atomic.Int64
	priorMisses atomic.Int64
}

// Model is one immutable served model generation: the factor matrices of a
// finished (or refreshed) completion run plus its hot-row cache. Nothing in
// a Model changes after registration — updates build a new Model and swap
// the registry entry — so a request handler that captured a *Model answers
// its whole batch from one consistent generation.
type Model struct {
	// Name is the registry key.
	Name string
	// Source is the checkpoint image this generation was loaded from.
	Source string
	// Data optionally points at the COO observation file backing the model;
	// the online-refresh loop re-reads it to fold appended observations in.
	Data string
	// Iter and Eta are the training iteration count and ADMM penalty
	// recorded in the checkpoint (refreshes advance them).
	Iter int
	Eta  float64

	kruskal  *sptensor.Kruskal
	cache    *rowCache
	stats    *modelStats
	loadedAt time.Time
}

// LoadModel reads a solver checkpoint image and wraps it as a servable
// model with a hot-row LRU of cacheRows rows (0 disables the cache). data
// may be empty; a model without observations is served but never refreshed.
func LoadModel(name, ckptPath, data string, cacheRows int) (*Model, error) {
	ck, err := core.ReadCheckpoint(ckptPath)
	if err != nil {
		return nil, fmt.Errorf("serve: loading model %q: %w", name, err)
	}
	return &Model{
		Name:     name,
		Source:   ckptPath,
		Data:     data,
		Iter:     ck.Iter,
		Eta:      ck.Eta,
		kruskal:  ck.Model(),
		cache:    newRowCache(cacheRows),
		stats:    &modelStats{},
		loadedAt: time.Now(),
	}, nil
}

// Order returns the tensor order N.
func (m *Model) Order() int { return len(m.kruskal.Factors) }

// Rank returns the CP rank R.
func (m *Model) Rank() int { return m.kruskal.Rank() }

// Dims returns the mode sizes.
func (m *Model) Dims() []int { return m.kruskal.Dims() }

// Kruskal exposes the underlying factors (read-only by convention).
func (m *Model) Kruskal() *sptensor.Kruskal { return m.kruskal }

// factorRow returns factor mode's row through the hot-row cache. Cached
// rows are exact copies, so the returned values are bit-identical either
// way.
func (m *Model) factorRow(mode int, row int32) []float64 {
	if r := m.cache.Get(int16(mode), row); r != nil {
		return r
	}
	r := m.kruskal.Factors[mode].Row(int(row))
	m.cache.Put(int16(mode), row, r)
	return r
}

// at evaluates one cell given a caller-owned rows scratch of length Order.
// The summation order matches sptensor.Kruskal.At exactly — p starts from
// the mode-0 row entry and multiplies mode 1..N-1 in order — so serve
// predictions are bit-equal to Kruskal.At for every cell.
func (m *Model) at(idx []int32, rows [][]float64) float64 {
	for n := range rows {
		rows[n] = m.factorRow(n, idx[n])
	}
	r := m.Rank()
	row0 := rows[0]
	var s float64
	for j := 0; j < r; j++ {
		p := row0[j]
		for n := 1; n < len(rows); n++ {
			p *= rows[n][j]
		}
		s += p
	}
	return s
}

// checkIndex validates one multi-index against the model's geometry.
func (m *Model) checkIndex(idx []int32) error {
	dims := m.kruskal.Dims()
	if len(idx) != len(dims) {
		return fmt.Errorf("serve: model %q: got %d indices for an order-%d tensor", m.Name, len(idx), len(dims))
	}
	for n, i := range idx {
		if i < 0 || int(i) >= dims[n] {
			return fmt.Errorf("serve: model %q: index %d out of range for mode %d (size %d)", m.Name, i, n, dims[n])
		}
	}
	return nil
}

// At predicts a single cell after validating the index.
func (m *Model) At(idx []int32) (float64, error) {
	if err := m.checkIndex(idx); err != nil {
		return 0, err
	}
	rows := make([][]float64, m.Order())
	m.stats.queries.Add(1)
	m.stats.cells.Add(1)
	return m.at(idx, rows), nil
}

// PredictBatch evaluates count = len(flat)/order cells given as a flat
// row-major index block, appending predictions to out. Every index is
// validated before any cell is evaluated, so a bad batch is rejected whole.
func (m *Model) PredictBatch(order int, flat []int32, out []float64) ([]float64, error) {
	if order != m.Order() {
		return out, fmt.Errorf("serve: model %q: got order-%d cells for an order-%d model", m.Name, order, m.Order())
	}
	if order <= 0 || len(flat)%order != 0 {
		return out, fmt.Errorf("serve: model %q: %d indices do not tile order %d", m.Name, len(flat), order)
	}
	count := len(flat) / order
	for c := 0; c < count; c++ {
		if err := m.checkIndex(flat[c*order : (c+1)*order]); err != nil {
			return out, err
		}
	}
	rows := make([][]float64, order)
	for c := 0; c < count; c++ {
		out = append(out, m.at(flat[c*order:(c+1)*order], rows))
	}
	m.stats.queries.Add(1)
	m.stats.cells.Add(int64(count))
	return out, nil
}

// Stats snapshots the model's rollup.
func (m *Model) Stats() metrics.ServeModelStats {
	return metrics.ServeModelStats{
		Model:       m.Name,
		Dims:        m.kruskal.Dims(),
		Rank:        m.Rank(),
		Iter:        m.Iter,
		Queries:     m.stats.queries.Load(),
		Cells:       m.stats.cells.Load(),
		CacheHits:   m.stats.priorHits.Load() + m.cache.hits.Load(),
		CacheMisses: m.stats.priorMisses.Load() + m.cache.misses.Load(),
		CacheRows:   m.cache.Len(),
		CacheCap:    m.cache.Cap(),
		Swaps:       m.stats.swaps.Load(),
		Refreshes:   m.stats.refreshes.Load(),
		LoadedAt:    m.loadedAt,
	}
}

// Registry is the set of served models, keyed by name. Lookups take a read
// lock only long enough to fetch the *Model pointer; all prediction work
// happens outside the lock against the captured generation.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*Model{}}
}

// Get returns the current generation under name.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	return m, ok
}

// Put registers m under m.Name, atomically replacing any existing
// generation. The replacement inherits the retired generation's stats
// object (cumulative counters survive the swap) and the retired cache's
// hit/miss totals are folded into the carried counters. Returns the
// retired generation, if any.
func (r *Registry) Put(m *Model) (*Model, bool) {
	r.mu.Lock()
	old, existed := r.models[m.Name]
	if existed {
		m.stats = old.stats
		m.stats.swaps.Add(1)
		m.stats.priorHits.Add(old.cache.hits.Load())
		m.stats.priorMisses.Add(old.cache.misses.Load())
	}
	r.models[m.Name] = m
	r.mu.Unlock()
	return old, existed
}

// Remove drops name from the registry, returning the retired generation.
func (r *Registry) Remove(name string) (*Model, bool) {
	r.mu.Lock()
	old, existed := r.models[name]
	delete(r.models, name)
	r.mu.Unlock()
	return old, existed
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.models))
	for name := range r.models {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Models returns the current generations, sorted by name.
func (r *Registry) Models() []*Model {
	r.mu.RLock()
	ms := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		ms = append(ms, m)
	}
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return ms
}

// Snapshot returns the registry-wide stats rollup, sorted by name.
func (r *Registry) Snapshot() metrics.ServeSnapshot {
	ms := r.Models()
	snap := make(metrics.ServeSnapshot, len(ms))
	for i, m := range ms {
		snap[i] = m.Stats()
	}
	return snap
}
