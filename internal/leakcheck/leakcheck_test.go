package leakcheck

import (
	"strings"
	"testing"
)

// recorder captures Errorf calls from Check.
type recorder struct {
	errs []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, format)
}

func TestCheckCleanWhenNothingRuns(t *testing.T) {
	var r recorder
	Check(&r)
	if len(r.errs) != 0 {
		t.Fatalf("clean process reported leaks: %v", r.errs)
	}
}

func TestCheckReportsBlockedGoroutine(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	leaked := snapshot()
	found := false
	for _, s := range leaked {
		if strings.Contains(s, "TestCheckReportsBlockedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot missed the deliberately leaked goroutine; got %d stacks", len(leaked))
	}

	close(block)
	// The goroutine unwinds; Check's settle loop must converge to clean.
	var r recorder
	Check(&r)
	if len(r.errs) != 0 {
		t.Fatalf("Check still sees the finished goroutine: %v", r.errs)
	}
}

func TestIgnorableFiltersTestingFrames(t *testing.T) {
	stack := "goroutine 1 [chan receive]:\ntesting.(*T).Run(...)\n\tcreated by testing.(*M).Run"
	if !ignorable(stack) {
		t.Fatal("testing-framework stack not filtered")
	}
	worker := "goroutine 9 [IO wait]:\ninternal/transport.(*pipeConn).readLoop(...)\n\tcreated by distenc/internal/transport.dialWorker"
	if ignorable(worker) {
		t.Fatal("engine goroutine wrongly filtered")
	}
}
