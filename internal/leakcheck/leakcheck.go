// Package leakcheck is the runtime half of the concurrency-invariant suite:
// it proves that Cluster.Close, Quiesce, and worker shutdown leave zero
// stray goroutines behind. The static passes (goroutineowner, lockorder)
// make unowned goroutines structurally hard to write; this sentinel catches
// whatever slips through — a lifetime annotation whose claimed mechanism
// does not actually fire, a drain that only drains on the happy path.
//
// Two entry points:
//
//	func TestMain(m *testing.M) {
//		os.Exit(leakcheck.Main(m))
//	}
//
// fails the whole package if goroutines are still running after every test
// finished, and
//
//	defer leakcheck.Check(t)
//
// scopes the same assertion to one test (use it in regression tests that
// must prove a specific teardown drains).
//
// Stacks are snapshotted with runtime.Stack and filtered against the
// runtime's own goroutines (GC, finalizers, signal handling) and the
// testing framework's. Goroutines legitimately finishing are given time to
// do so: the check retries with backoff for a settle window before calling
// anything a leak, so a Close that returned a microsecond before its last
// worker goroutine unwound does not flake.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TB is the subset of testing.TB the checker needs; it keeps Check usable
// from helpers without importing the concrete type.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// settleWindow bounds how long Check waits for in-flight goroutines to
// unwind before reporting them as leaks.
const settleWindow = 4 * time.Second

// Check fails t if goroutines beyond the runtime/testing baseline are still
// alive after the settle window. Call it (usually deferred) at the end of a
// test whose teardown must drain everything it started.
func Check(t TB) {
	t.Helper()
	if leaked := settle(); len(leaked) > 0 {
		t.Errorf("leaked %d goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// Main wraps m.Run for TestMain: it returns m.Run's code, except that a
// passing run with leaked goroutines becomes a failure. Leaks never mask a
// real test failure's exit code.
func Main(m *testing.M) int {
	code := m.Run()
	if code != 0 {
		return code
	}
	if leaked := settle(); len(leaked) > 0 {
		fmt.Printf("leakcheck: %d goroutine(s) still running after all tests:\n%s\n",
			len(leaked), strings.Join(leaked, "\n\n"))
		return 1
	}
	return code
}

// settle polls the goroutine set with exponential backoff until it is clean
// or the window closes, and returns the residue.
func settle() []string {
	deadline := time.Now().Add(settleWindow)
	delay := time.Millisecond
	for {
		leaked := snapshot()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// snapshot returns the stacks of all goroutines that are neither the
// current one nor attributable to the runtime or the testing framework.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := strings.Split(string(buf), "\n\n")
	var leaked []string
	for i, s := range stacks {
		if i == 0 {
			continue // the goroutine running this check
		}
		if !ignorable(s) {
			leaked = append(leaked, s)
		}
	}
	return leaked
}

// ignorable reports whether a stack belongs to the runtime, the testing
// framework, or this package — machinery that legitimately outlives tests.
func ignorable(stack string) bool {
	for _, marker := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*M).",
		"testing.(*T).",
		"testing.(*F).",
		"testing.runFuzzing(",
		"testing.fRunner(",
		"runtime.goexit0",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime.runfinq",
		"runtime.ReadTrace",
		"signal.signal_recv",
		"signal.loop",
		"os/signal.NotifyContext",
		"runtime/trace.Start",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	// "created by runtime" covers the remaining runtime-internal workers.
	return strings.Contains(stack, "created by runtime.")
}
