// Serving-plane rollups: the per-model counters distenc-serve accumulates
// while answering entry-reconstruction queries, in the same
// snapshot-and-render idiom as the engine's per-stage rollups — live atomic
// counters in the serving layer, an immutable snapshot struct here, one
// String() table for humans, JSON tags for the admin plane.
package metrics

import (
	"fmt"
	"time"
)

// ServeModelStats is one registered model's rollup: identity (dims, rank,
// training iterations), query volume, the hot-row LRU's hit accounting, and
// the lifecycle counters (hot swaps, background refreshes) that explain why
// the model a client saw a second ago may answer slightly differently now.
type ServeModelStats struct {
	Model string `json:"model"`
	Dims  []int  `json:"dims"`
	Rank  int    `json:"rank"`
	// Iter is the number of training iterations behind the served factors —
	// it grows when the online-refresh loop folds in new observations.
	Iter int `json:"iter"`
	// Queries counts batch predict requests; Cells counts individual entry
	// reconstructions (a batch of 64 cells is 1 query, 64 cells).
	Queries int64 `json:"queries"`
	Cells   int64 `json:"cells"`
	// CacheHits/CacheMisses account the per-model LRU of hot factor rows;
	// CacheRows is its current occupancy, CacheCap its capacity (0 = cache
	// disabled, every access a miss that is not counted).
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	CacheRows   int   `json:"cacheRows"`
	CacheCap    int   `json:"cacheCap"`
	// Swaps counts registry replacements under this name (admin reloads and
	// refresh promotions); Refreshes counts background warm-start refreshes.
	Swaps     int64     `json:"swaps"`
	Refreshes int64     `json:"refreshes"`
	LoadedAt  time.Time `json:"loadedAt"`
}

// HitRate returns the LRU hit fraction in [0,1] (0 when nothing was looked
// up).
func (s ServeModelStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// ServeSnapshot is the registry-wide rollup, one row per model.
type ServeSnapshot []ServeModelStats

// String renders the rollup as a table, matching the engine's Summary style.
func (s ServeSnapshot) String() string {
	if len(s) == 0 {
		return "no models loaded\n"
	}
	out := fmt.Sprintf("%-16s %-14s %4s %5s %10s %10s %9s %6s %5s %5s\n",
		"model", "dims", "rank", "iter", "queries", "cells", "cacheHit%", "rows", "swaps", "refr")
	for _, m := range s {
		out += fmt.Sprintf("%-16s %-14s %4d %5d %10d %10d %8.1f%% %6d %5d %5d\n",
			m.Model, fmt.Sprint(m.Dims), m.Rank, m.Iter, m.Queries, m.Cells,
			100*m.HitRate(), m.CacheRows, m.Swaps, m.Refreshes)
	}
	return out
}
