package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"distenc/internal/mat"
	"distenc/internal/sptensor"
)

func onesKruskal(dims []int, r int) *sptensor.Kruskal {
	fs := make([]*mat.Dense, len(dims))
	for n, d := range dims {
		f := mat.NewDense(d, r)
		f.Fill(1)
		fs[n] = f
	}
	return sptensor.NewKruskal(fs...)
}

func TestRMSEExactModelIsZero(t *testing.T) {
	k := onesKruskal([]int{3, 3}, 2) // every entry = 2
	ts := sptensor.New(3, 3)
	ts.Append([]int32{0, 0}, 2)
	ts.Append([]int32{2, 1}, 2)
	if got := RMSE(ts, k); got != 0 {
		t.Fatalf("RMSE = %v, want 0", got)
	}
}

func TestRMSEHandComputed(t *testing.T) {
	k := onesKruskal([]int{2, 2}, 1) // every entry = 1
	ts := sptensor.New(2, 2)
	ts.Append([]int32{0, 0}, 3) // error 2
	ts.Append([]int32{1, 1}, 1) // error 0
	want := math.Sqrt((4.0 + 0.0) / 2.0)
	if got := RMSE(ts, k); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	empty := sptensor.New(2, 2)
	if RMSE(empty, k) != 0 {
		t.Fatal("empty test RMSE must be 0")
	}
}

func TestRelativeError(t *testing.T) {
	k := onesKruskal([]int{2, 2}, 1)
	ts := sptensor.New(2, 2)
	ts.Append([]int32{0, 0}, 2) // model 1, error 1
	ts.Append([]int32{1, 0}, 2)
	want := math.Sqrt(2.0 / 8.0)
	if got := RelativeError(ts, k); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RelativeError = %v, want %v", got, want)
	}
	if RelativeError(sptensor.New(2, 2), k) != 0 {
		t.Fatal("empty truth must give 0")
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := Trace{
		{Iter: 0, Elapsed: time.Second, TrainRMSE: 1.0},
		{Iter: 1, Elapsed: 2 * time.Second, TrainRMSE: 0.5},
		{Iter: 2, Elapsed: 3 * time.Second, TrainRMSE: 0.2},
	}
	f, ok := tr.Final()
	if !ok || f.Iter != 2 {
		t.Fatalf("Final = %+v, %v", f, ok)
	}
	d, ok := tr.TimeToReach(0.5)
	if !ok || d != 2*time.Second {
		t.Fatalf("TimeToReach = %v, %v", d, ok)
	}
	if _, ok := tr.TimeToReach(0.01); ok {
		t.Fatal("unreachable target must report false")
	}
	if _, ok := (Trace{}).Final(); ok {
		t.Fatal("empty Final must be false")
	}
	if tr.String() == "" {
		t.Fatal("String must render")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 || math.Abs(s-2) > 1e-12 {
		t.Fatalf("MeanStd = %v, %v", m, s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty MeanStd")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(2.0, 1.5); math.Abs(got-25) > 1e-12 {
		t.Fatalf("Improvement = %v, want 25", got)
	}
	if Improvement(0, 1) != 0 {
		t.Fatal("zero base")
	}
}

func TestRMSERandomConsistency(t *testing.T) {
	// RMSE computed here must match a direct loop over the residual tensor.
	rng := rand.New(rand.NewPCG(1, 2))
	fs := make([]*mat.Dense, 3)
	dims := []int{5, 6, 7}
	for n, d := range dims {
		f := mat.NewDense(d, 3)
		for i := 0; i < d; i++ {
			for j := 0; j < 3; j++ {
				f.Set(i, j, rng.Float64())
			}
		}
		fs[n] = f
	}
	k := sptensor.NewKruskal(fs...)
	ts := sptensor.New(dims...)
	idx := make([]int32, 3)
	for e := 0; e < 50; e++ {
		idx[0], idx[1], idx[2] = int32(rng.IntN(5)), int32(rng.IntN(6)), int32(rng.IntN(7))
		ts.Append(idx, rng.NormFloat64())
	}
	res := sptensor.Residual(ts, k)
	want := res.NormF() / math.Sqrt(float64(ts.NNZ()))
	if got := RMSE(ts, k); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
}
