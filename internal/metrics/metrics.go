// Package metrics implements the evaluation measures the paper reports:
// RMSE over held-out observations (§IV-E), relative reconstruction error
// (§IV-D), and the per-iteration convergence traces behind Figures 6b and 7b.
package metrics

import (
	"fmt"
	"math"
	"time"

	"distenc/internal/sptensor"
)

// RMSE is √(‖Ω∗(T−X)‖²_F / nnz(T)) evaluated over the entries of test
// against the Kruskal model (the paper's recommender-system metric).
func RMSE(test *sptensor.Tensor, model *sptensor.Kruskal) float64 {
	if test.NNZ() == 0 {
		return 0
	}
	var s float64
	for e := 0; e < test.NNZ(); e++ {
		d := test.Val[e] - model.At(test.Index(e))
		s += d * d
	}
	return math.Sqrt(s / float64(test.NNZ()))
}

// RelativeError is ‖X−Y‖_F/‖Y‖_F over the entries of truth (the paper's
// reconstruction-error metric, §IV-D).
func RelativeError(truth *sptensor.Tensor, model *sptensor.Kruskal) float64 {
	var num, den float64
	for e := 0; e < truth.NNZ(); e++ {
		y := truth.Val[e]
		d := y - model.At(truth.Index(e))
		num += d * d
		den += y * y
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// ConvergencePoint is one sample of a training trace.
type ConvergencePoint struct {
	Iter      int
	Elapsed   time.Duration
	TrainRMSE float64
	// MaxDelta is the convergence criterion value max_n ‖A_{t+1}−A_t‖²_F.
	MaxDelta float64
}

// Trace is an in-order training trace (Figures 6b, 7b).
type Trace []ConvergencePoint

// Final returns the last point; ok is false for an empty trace.
func (t Trace) Final() (ConvergencePoint, bool) {
	if len(t) == 0 {
		return ConvergencePoint{}, false
	}
	return t[len(t)-1], true
}

// TimeToReach returns the first elapsed time at which the training RMSE
// drops to target or below, and whether it ever does — the "convergence
// rate" comparison of Figure 6b.
func (t Trace) TimeToReach(target float64) (time.Duration, bool) {
	for _, p := range t {
		if p.TrainRMSE <= target {
			return p.Elapsed, true
		}
	}
	return 0, false
}

// String renders a compact table of the trace.
func (t Trace) String() string {
	out := ""
	for _, p := range t {
		out += fmt.Sprintf("iter=%3d t=%8.3fs rmse=%.6f delta=%.3g\n",
			p.Iter, p.Elapsed.Seconds(), p.TrainRMSE, p.MaxDelta)
	}
	return out
}

// PhaseTimes decomposes one solver iteration into its phases: the
// distributed MTTKRP map (fused residual+partials kernel) and reduce stages,
// the Gram-matrix section, and the driver-side dense algebra (spectral B
// updates, Eq. 16 solves, Y/η bookkeeping) that stage logs cannot see. The
// serial solver fills the same struct (MTTKRPReduce = 0, the kernel time in
// MTTKRPMap) so serial and distributed runs are phase-comparable. Total is
// the full iteration wall clock; Total minus the named phases is scheduling
// and assembly overhead.
type PhaseTimes struct {
	Iter          int
	MTTKRPMap     time.Duration
	MTTKRPReduce  time.Duration
	Gram          time.Duration
	Driver        time.Duration
	Total         time.Duration
	BytesShuffled int64
}

// PhaseBreakdown is the per-iteration phase record of a run.
type PhaseBreakdown []PhaseTimes

// Totals sums the breakdown across iterations (Iter is the iteration count).
func (p PhaseBreakdown) Totals() PhaseTimes {
	var t PhaseTimes
	t.Iter = len(p)
	for _, x := range p {
		t.MTTKRPMap += x.MTTKRPMap
		t.MTTKRPReduce += x.MTTKRPReduce
		t.Gram += x.Gram
		t.Driver += x.Driver
		t.Total += x.Total
		t.BytesShuffled += x.BytesShuffled
	}
	return t
}

// String renders the per-iteration phase table plus a totals row.
func (p PhaseBreakdown) String() string {
	if len(p) == 0 {
		return ""
	}
	out := fmt.Sprintf("%-6s %12s %12s %12s %12s %12s %12s\n",
		"iter", "mttkrp-map", "mttkrp-red", "gram", "driver", "total", "shuffledB")
	row := func(label string, x PhaseTimes) string {
		return fmt.Sprintf("%-6s %12s %12s %12s %12s %12s %12d\n",
			label, round(x.MTTKRPMap), round(x.MTTKRPReduce), round(x.Gram),
			round(x.Driver), round(x.Total), x.BytesShuffled)
	}
	for _, x := range p {
		out += row(fmt.Sprint(x.Iter), x)
	}
	out += row("TOTAL", p.Totals())
	return out
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	default:
		return d.Round(time.Microsecond)
	}
}

// MeanStd returns the mean and (population) standard deviation of xs —
// experiments report 5-run averages as the paper does.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// Improvement returns the percentage by which got improves on base for a
// lower-is-better metric — the "average improvement of 23.5%" accounting.
func Improvement(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - got) / base
}
