package rdd

import "sync"

// Accumulator is a write-only-from-tasks, read-on-driver aggregation
// variable, mirroring Spark accumulators. Tasks call Add concurrently; the
// driver reads Value after the stage completes.
//
// # Exactly-once contract under retry
//
// A failed task attempt is retried from lineage, and a plain Add that already
// executed in the failed attempt is NOT rolled back — the retry adds again
// and the total double-counts, exactly as Spark accumulators over-count on
// task re-execution. Callers that need exactly-once totals must either call
// Add as the very last step of the task closure, after every fallible
// operation (so a failure implies the add never ran), or use AddOnSuccess,
// which defers the merge until the engine knows the attempt succeeded and is
// therefore exactly-once regardless of where in the closure it is called.
// The accadd vet pass flags plain Add calls in task closures that are
// followed by fallible returns.
//
// # Speculative execution
//
// With Config.Speculation enabled the same caveats extend to duplicate
// attempts: a backup attempt re-runs the closure while the original may still
// be inside it, so a plain Add can be applied once per attempt (at-least-once,
// like Spark). AddOnSuccess stays exactly-once — each attempt buffers its
// adds on its own TaskCtx, only the attempt that wins the per-partition
// commit race has its hooks fired, and the loser's buffered adds are
// discarded with the rest of its work (the commit happens-before the stage
// resolves, so the driver's Value read is ordered after the winner's merge).
type Accumulator[T any] struct {
	mu    sync.Mutex
	value T
	merge func(T, T) T
}

// NewAccumulator creates an accumulator with the given zero value and merge
// function.
func NewAccumulator[T any](zero T, merge func(T, T) T) *Accumulator[T] {
	return &Accumulator[T]{value: zero, merge: merge}
}

// NewFloatAccumulator sums float64 contributions.
func NewFloatAccumulator() *Accumulator[float64] {
	return NewAccumulator(0, func(a, b float64) float64 { return a + b })
}

// NewIntAccumulator sums int64 contributions.
func NewIntAccumulator() *Accumulator[int64] {
	return NewAccumulator(0, func(a, b int64) int64 { return a + b })
}

// Add merges v into the accumulator; safe for concurrent use from tasks.
// Adds from a task attempt that later fails are not rolled back — see the
// exactly-once contract above; prefer AddOnSuccess inside task closures.
func (a *Accumulator[T]) Add(v T) {
	a.mu.Lock()
	a.value = a.merge(a.value, v)
	a.mu.Unlock()
}

// AddOnSuccess merges v into the accumulator only if the task attempt running
// tc completes successfully, making the contribution exactly-once under
// retry: a failed attempt's deferred adds are simply discarded with the
// attempt.
func (a *Accumulator[T]) AddOnSuccess(tc *TaskCtx, v T) {
	tc.OnSuccess(func() { a.Add(v) })
}

// Value returns the current aggregate. Call from the driver after the
// stages writing to the accumulator have completed.
func (a *Accumulator[T]) Value() T {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.value
}

// Reset restores the accumulator to v.
func (a *Accumulator[T]) Reset(v T) {
	a.mu.Lock()
	a.value = v
	a.mu.Unlock()
}
