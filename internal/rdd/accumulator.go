package rdd

import "sync"

// Accumulator is a write-only-from-tasks, read-on-driver aggregation
// variable, mirroring Spark accumulators. Tasks call Add concurrently; the
// driver reads Value after the stage completes. Because failed tasks are
// retried from lineage, callers that need exactly-once semantics should add
// only from the final (successful) code path of a task, as in Spark.
type Accumulator[T any] struct {
	mu    sync.Mutex
	value T
	merge func(T, T) T
}

// NewAccumulator creates an accumulator with the given zero value and merge
// function.
func NewAccumulator[T any](zero T, merge func(T, T) T) *Accumulator[T] {
	return &Accumulator[T]{value: zero, merge: merge}
}

// NewFloatAccumulator sums float64 contributions.
func NewFloatAccumulator() *Accumulator[float64] {
	return NewAccumulator(0, func(a, b float64) float64 { return a + b })
}

// NewIntAccumulator sums int64 contributions.
func NewIntAccumulator() *Accumulator[int64] {
	return NewAccumulator(0, func(a, b int64) int64 { return a + b })
}

// Add merges v into the accumulator; safe for concurrent use from tasks.
func (a *Accumulator[T]) Add(v T) {
	a.mu.Lock()
	a.value = a.merge(a.value, v)
	a.mu.Unlock()
}

// Value returns the current aggregate. Call from the driver after the
// stages writing to the accumulator have completed.
func (a *Accumulator[T]) Value() T {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.value
}

// Reset restores the accumulator to v.
func (a *Accumulator[T]) Reset(v T) {
	a.mu.Lock()
	a.value = v
	a.mu.Unlock()
}
