package rdd

import (
	"os"
	"testing"

	"distenc/internal/leakcheck"
)

// TestMain holds every rdd test to the Quiesce drain contract: Cluster.Close
// joins all task attempts, speculation monitors, and eviction goroutines, so
// nothing this package starts may survive its tests.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
