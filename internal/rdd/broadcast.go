package rdd

import "fmt"

// Broadcast is a read-only value shipped once to every machine, the engine's
// equivalent of Spark broadcast variables. The paper broadcasts the R×R
// Gram matrices and the diagonalized Laplacian spectra this way (§III-B,
// §III-F); the per-machine copy cost is what Lemma 2's O(M·N·R²) term counts.
type Broadcast[T any] struct {
	c     *Cluster
	value T
	bytes int64 // size charged per machine
	freed bool
}

// NewBroadcast registers value on every machine: its serialized size is
// charged to each machine's memory budget and counted as broadcast traffic
// for every machine except the driver-local copy.
func NewBroadcast[T any](c *Cluster, name string, value T) (*Broadcast[T], error) {
	size := EstimateSize(value)
	for m := 0; m < c.cfg.Machines; m++ {
		if err := c.charge(m, size); err != nil {
			for freed := 0; freed < m; freed++ {
				c.release(freed, size)
			}
			return nil, fmt.Errorf("rdd: broadcasting %s: %w", name, err)
		}
	}
	c.metrics.BytesBroadcast.Add(size * int64(c.cfg.Machines))
	return &Broadcast[T]{c: c, value: value, bytes: size}, nil
}

// Value returns the broadcast value (shared, read-only by convention).
func (b *Broadcast[T]) Value() T { return b.value }

// SizeBytes returns the per-machine charged size.
func (b *Broadcast[T]) SizeBytes() int64 { return b.bytes }

// Release frees the per-machine memory charges. Safe to call twice.
func (b *Broadcast[T]) Release() {
	if b.freed {
		return
	}
	b.freed = true
	for m := 0; m < b.c.cfg.Machines; m++ {
		b.c.release(m, b.bytes)
	}
}
