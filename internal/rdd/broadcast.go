package rdd

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
)

// Broadcast is a read-only value shipped once to every machine, the engine's
// equivalent of Spark broadcast variables. The paper broadcasts the R×R
// Gram matrices and the diagonalized Laplacian spectra this way (§III-B,
// §III-F); the per-machine copy cost is what Lemma 2's O(M·N·R²) term counts.
type Broadcast[T any] struct {
	c       *Cluster
	value   T
	bytes   int64 // size charged per machine
	evictID int64
	owner   int64 // block owner ID under a remote Transport (0: in-process)

	mu      sync.Mutex
	charged []bool // which machines currently hold (and are charged for) a replica
	freed   bool
}

// NewBroadcast registers value on every live machine: its serialized size is
// charged to each machine's memory budget and counted as broadcast traffic.
// Dead machines are skipped; if one is later killed, its replica's charge is
// released (tasks keep reading the driver's copy, as a rebroadcast would
// restore on a real cluster).
func NewBroadcast[T any](c *Cluster, name string, value T) (*Broadcast[T], error) {
	size := EstimateSize(value)
	charged := make([]bool, c.cfg.Machines)
	replicas := 0
	for m := 0; m < c.cfg.Machines; m++ {
		if c.machineDead(m) {
			continue
		}
		if err := c.charge(m, size); err != nil {
			for freed := range charged {
				if charged[freed] {
					c.release(freed, size)
				}
			}
			return nil, fmt.Errorf("rdd: broadcasting %s: %w", name, err)
		}
		charged[m] = true
		replicas++
	}
	b := &Broadcast[T]{c: c, value: value, bytes: size, charged: charged}
	// Under a remote Transport the replica really moves: each live worker
	// receives the serialized value (or, for types gob cannot encode, a
	// size-faithful placeholder — tasks read the driver's copy either way;
	// what the wire must carry honestly is the byte volume Lemma 2 counts).
	// A worker that dies mid-ship loses its replica exactly as if it were
	// killed after receiving it.
	if rt := c.remote(); rt != nil {
		b.owner = c.newID()
		img := broadcastImage(value, size)
		bid := BlockID{Kind: BlockBroadcast, Owner: b.owner}
		for m := range charged {
			if !charged[m] {
				continue
			}
			if err := rt.Put(m, bid, img); err != nil {
				if errors.Is(err, ErrMachineUnreachable) {
					c.machineLost(m, fmt.Sprintf("shipping broadcast %s replica: %v", name, err))
					c.release(m, size)
					charged[m] = false
					replicas--
					continue
				}
				for freed := range charged {
					if charged[freed] {
						c.release(freed, size)
					}
				}
				return nil, fmt.Errorf("rdd: broadcasting %s to machine %d: %w", name, m, err)
			}
		}
	}
	c.metrics.BytesBroadcast.Add(size * int64(replicas))
	b.evictID = c.registerEvictor(b)
	return b, nil
}

// broadcastImage serializes a broadcast value for the wire. Types gob cannot
// encode (unexported fields, functions) ship a zero-filled placeholder of the
// charged size, keeping the transported volume equal to the accounted volume.
func broadcastImage(value any, size int64) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(value); err == nil {
		return buf.Bytes()
	}
	return make([]byte, size)
}

// Value returns the broadcast value (shared, read-only by convention).
func (b *Broadcast[T]) Value() T { return b.value }

// SizeBytes returns the per-machine charged size.
func (b *Broadcast[T]) SizeBytes() int64 { return b.bytes }

// Release frees the per-machine memory charges. Safe to call twice.
func (b *Broadcast[T]) Release() {
	b.mu.Lock()
	if b.freed {
		b.mu.Unlock()
		return
	}
	b.freed = true
	charged := b.charged
	b.charged = nil
	b.mu.Unlock()
	b.c.unregisterEvictor(b.evictID)
	for m, on := range charged {
		if on {
			b.c.release(m, b.bytes)
		}
	}
	if b.owner != 0 {
		b.c.dropRemoteBlocks(b.owner)
	}
}

// evictMachine releases the dead machine's replica charge.
func (b *Broadcast[T]) evictMachine(m int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.freed || !b.charged[m] {
		return
	}
	b.charged[m] = false
	b.c.release(m, b.bytes)
	b.c.recordRecovery(RecoveryEvent{
		Kind:      RecoveryBroadcastEvict,
		Partition: -1,
		Machine:   m,
		Cause:     fmt.Sprintf("broadcast replica (%d bytes) lost with machine", b.bytes),
	})
}
