package rdd

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	c := testCluster(t, Config{Machines: 3, CoresPerMachine: 2})
	r := Parallelize(c, "nums", ints(100), 7)
	if r.NumPartitions() != 7 {
		t.Fatalf("parts = %d", r.NumPartitions())
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("collected %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapFilterFlatMapChain(t *testing.T) {
	c := testCluster(t, Config{})
	r := Parallelize(c, "nums", ints(20), 4)
	doubled := Map(r, "double", func(x int) int { return 2 * x })
	evens := doubled.Filter("keep<20", func(x int) bool { return x < 20 })
	pairs := FlatMap(evens, "dup", func(x int) []int { return []int{x, x + 1} })
	got, err := pairs.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("len = %d, want 20", len(got))
	}
	n, err := pairs.Count()
	if err != nil || n != 20 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestReduceAndEmpty(t *testing.T) {
	c := testCluster(t, Config{})
	r := Parallelize(c, "nums", ints(101), 8)
	sum, ok, err := Reduce(r, func(a, b int) int { return a + b })
	if err != nil || !ok || sum != 5050 {
		t.Fatalf("Reduce = %d, %v, %v", sum, ok, err)
	}
	empty := Parallelize(c, "empty", []int{}, 3)
	_, ok, err = Reduce(empty, func(a, b int) int { return a + b })
	if err != nil || ok {
		t.Fatalf("empty Reduce ok=%v err=%v", ok, err)
	}
}

func TestMapPartitionsSeesAllPartitions(t *testing.T) {
	c := testCluster(t, Config{})
	r := Parallelize(c, "nums", ints(10), 3)
	sums := MapPartitions(r, "psum", func(tc *TaskCtx, p int, in []int) ([]int, error) {
		s := 0
		for _, v := range in {
			s += v
		}
		return []int{s}, nil
	})
	got, err := sums.Collect()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != 45 || len(got) != 3 {
		t.Fatalf("partition sums = %v", got)
	}
}

func TestReduceByKeyMatchesReference(t *testing.T) {
	c := testCluster(t, Config{Machines: 2, CoresPerMachine: 2})
	var data []KV[string, int]
	want := map[string]int{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%d", i%17)
		data = append(data, KV[string, int]{k, i})
		want[k] += i
	}
	r := Parallelize(c, "pairs", data, 5)
	red := ReduceByKey(r, "sum", 4, func(a, b int) int { return a + b })
	got, err := CollectAsMap(red)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: got %d want %d", k, got[k], v)
		}
	}
	if c.Metrics().BytesShuffled.Load() == 0 {
		t.Fatal("shuffle bytes not counted")
	}
}

func TestAggregateByKeyCountsAndSums(t *testing.T) {
	c := testCluster(t, Config{})
	var data []KV[int, float64]
	for i := 0; i < 100; i++ {
		data = append(data, KV[int, float64]{i % 5, float64(i)})
	}
	r := Parallelize(c, "pairs", data, 6)
	type acc struct {
		N   int
		Sum float64
	}
	agg := AggregateByKey(r, "stats", 3,
		func() acc { return acc{} },
		func(a acc, v float64) acc { return acc{a.N + 1, a.Sum + v} },
		func(a, b acc) acc { return acc{a.N + b.N, a.Sum + b.Sum} },
	)
	got, err := CollectAsMap(agg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if got[k].N != 20 {
			t.Fatalf("key %d count = %d", k, got[k].N)
		}
	}
}

func TestGroupByKey(t *testing.T) {
	c := testCluster(t, Config{})
	data := []KV[int, string]{{1, "a"}, {2, "b"}, {1, "c"}, {2, "d"}, {3, "e"}}
	r := Parallelize(c, "pairs", data, 2)
	g := GroupByKey(r, "group", 2)
	got, err := CollectAsMap(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[1]) != 2 || len(got[2]) != 2 || len(got[3]) != 1 {
		t.Fatalf("groups = %v", got)
	}
}

func TestPartitionByPlacesKeysDeterministically(t *testing.T) {
	c := testCluster(t, Config{})
	var data []KV[int, int]
	for i := 0; i < 40; i++ {
		data = append(data, KV[int, int]{i, i * i})
	}
	r := Parallelize(c, "pairs", data, 4)
	byRange := PartitionBy(r, "byrange", 4, FuncPartitioner[int](func(k, parts int) int {
		return k * parts / 40
	}))
	err := byRange.ForeachPartition(func(tc *TaskCtx, p int, items []KV[int, int]) error {
		for _, kv := range items {
			if want := kv.K * 4 / 40; want != p {
				return fmt.Errorf("key %d in partition %d, want %d", kv.K, p, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := byRange.Count()
	if err != nil || n != 40 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestJoinInner(t *testing.T) {
	c := testCluster(t, Config{})
	left := Parallelize(c, "l", []KV[int, string]{{1, "a"}, {2, "b"}, {2, "B"}, {3, "c"}}, 2)
	right := Parallelize(c, "r", []KV[int, int]{{2, 20}, {3, 30}, {4, 40}}, 3)
	j := Join(left, right, "join", 2)
	got, err := j.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Expect (2,b,20), (2,B,20), (3,c,30).
	if len(got) != 3 {
		t.Fatalf("join produced %d records: %v", len(got), got)
	}
	seen := map[string]bool{}
	for _, kv := range got {
		seen[fmt.Sprintf("%d-%s-%d", kv.K, kv.V.Left, kv.V.Right)] = true
	}
	for _, want := range []string{"2-b-20", "2-B-20", "3-c-30"} {
		if !seen[want] {
			t.Fatalf("missing %s in %v", want, seen)
		}
	}
}

func TestCoGroupEmptySides(t *testing.T) {
	c := testCluster(t, Config{})
	left := Parallelize(c, "l", []KV[int, string]{{1, "a"}}, 1)
	right := Parallelize(c, "r", []KV[int, int]{{2, 20}}, 1)
	cg := CoGroup(left, right, "cg", 2)
	got, err := CollectAsMap(cg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[1].Left) != 1 || len(got[1].Right) != 0 {
		t.Fatalf("key 1 groups = %+v", got[1])
	}
	if len(got[2].Left) != 0 || len(got[2].Right) != 1 {
		t.Fatalf("key 2 groups = %+v", got[2])
	}
}

func TestMapValues(t *testing.T) {
	c := testCluster(t, Config{})
	r := Parallelize(c, "p", []KV[string, int]{{"a", 1}, {"b", 2}}, 1)
	mv := MapValues(r, "sq", func(v int) int { return v * v })
	got, err := CollectAsMap(mv)
	if err != nil || got["a"] != 1 || got["b"] != 4 {
		t.Fatalf("MapValues = %v, %v", got, err)
	}
}

func TestCacheReusesComputation(t *testing.T) {
	c := testCluster(t, Config{})
	computes := make(chan struct{}, 100)
	r := Parallelize(c, "src", ints(10), 2)
	counted := MapPartitions(r, "counted", func(tc *TaskCtx, p int, in []int) ([]int, error) {
		computes <- struct{}{}
		return in, nil
	}).Cache()
	for i := 0; i < 3; i++ {
		if _, err := counted.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(computes); n != 2 {
		t.Fatalf("computed %d partitions, want 2 (cached)", n)
	}
	if c.UsedMemory(0)+c.UsedMemory(1)+c.UsedMemory(2)+c.UsedMemory(3) == 0 {
		t.Fatal("cache charged no memory")
	}
	counted.Unpersist()
	var used int64
	for m := 0; m < c.Machines(); m++ {
		used += c.UsedMemory(m)
	}
	if used != 0 {
		t.Fatalf("memory still charged after Unpersist: %d", used)
	}
}

func TestCacheIsNoOpInMapReduceMode(t *testing.T) {
	c := testCluster(t, Config{Mode: ModeMapReduce})
	computes := make(chan struct{}, 100)
	r := Parallelize(c, "src", ints(10), 2)
	counted := MapPartitions(r, "counted", func(tc *TaskCtx, p int, in []int) ([]int, error) {
		computes <- struct{}{}
		return in, nil
	}).Cache()
	for i := 0; i < 3; i++ {
		if _, err := counted.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(computes); n != 6 {
		t.Fatalf("computed %d partitions, want 6 (no caching in MapReduce mode)", n)
	}
}

func TestOutOfMemoryOnCache(t *testing.T) {
	c := testCluster(t, Config{Machines: 1, MemoryPerMachine: 128})
	big := make([]int, 10000)
	r := Parallelize(c, "big", big, 1).Cache()
	_, err := r.Collect()
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestTransientChargeAndRelease(t *testing.T) {
	c := testCluster(t, Config{Machines: 1, MemoryPerMachine: 1000})
	r := Parallelize(c, "src", ints(4), 1)
	heavy := MapPartitions(r, "heavy", func(tc *TaskCtx, p int, in []int) ([]int, error) {
		if err := tc.ChargeTransient(900); err != nil {
			return nil, err
		}
		return in, nil
	})
	if _, err := heavy.Collect(); err != nil {
		t.Fatal(err)
	}
	if used := c.UsedMemory(0); used != 0 {
		t.Fatalf("transient memory not released: %d", used)
	}
	if c.PeakMemory(0) < 900 {
		t.Fatalf("peak %d, want >= 900", c.PeakMemory(0))
	}
	tooHeavy := MapPartitions(r, "tooheavy", func(tc *TaskCtx, p int, in []int) ([]int, error) {
		return nil, tc.ChargeTransient(2000)
	})
	if _, err := tooHeavy.Collect(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestMapReduceModeSpillsToDisk(t *testing.T) {
	c := testCluster(t, Config{Mode: ModeMapReduce})
	var data []KV[int, int]
	for i := 0; i < 100; i++ {
		data = append(data, KV[int, int]{i % 10, 1})
	}
	r := Parallelize(c, "pairs", data, 4)
	red := ReduceByKey(r, "count", 3, func(a, b int) int { return a + b })
	got, err := CollectAsMap(red)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if got[k] != 10 {
			t.Fatalf("key %d = %d, want 10", k, got[k])
		}
	}
	if c.Metrics().DiskBytesWrite.Load() == 0 || c.Metrics().DiskBytesRead.Load() == 0 {
		t.Fatalf("MapReduce mode did not touch disk: %+v", c.Metrics().Snapshot())
	}
}

func TestFaultInjectionRecoversViaLineage(t *testing.T) {
	c := testCluster(t, Config{Machines: 3, CoresPerMachine: 2})
	c.InjectTaskFailures("collect:victims", 2)
	r := Parallelize(c, "victims", ints(50), 5)
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("collected %d", len(got))
	}
	if c.Metrics().TaskRetries.Load() != 2 {
		t.Fatalf("retries = %d, want 2", c.Metrics().TaskRetries.Load())
	}
}

func TestFaultInjectionExhaustsRetries(t *testing.T) {
	c := testCluster(t, Config{Machines: 2})
	c.InjectTaskFailures("collect:doomed", 100)
	r := Parallelize(c, "doomed", ints(10), 2)
	if _, err := r.Collect(); err == nil {
		t.Fatal("expected failure after retry exhaustion")
	}
}

func TestBroadcastChargesEveryMachine(t *testing.T) {
	c := testCluster(t, Config{Machines: 4, MemoryPerMachine: 1 << 20})
	payload := make([]float64, 1000)
	b, err := NewBroadcast(c, "gram", payload)
	if err != nil {
		t.Fatal(err)
	}
	if b.SizeBytes() == 0 {
		t.Fatal("broadcast size zero")
	}
	for m := 0; m < 4; m++ {
		if c.UsedMemory(m) != b.SizeBytes() {
			t.Fatalf("machine %d charged %d, want %d", m, c.UsedMemory(m), b.SizeBytes())
		}
	}
	if got := c.Metrics().BytesBroadcast.Load(); got != 4*b.SizeBytes() {
		t.Fatalf("broadcast bytes = %d", got)
	}
	b.Release()
	b.Release() // idempotent
	for m := 0; m < 4; m++ {
		if c.UsedMemory(m) != 0 {
			t.Fatalf("machine %d not released", m)
		}
	}
}

func TestBroadcastOOM(t *testing.T) {
	c := testCluster(t, Config{Machines: 2, MemoryPerMachine: 64})
	if _, err := NewBroadcast(c, "big", make([]float64, 10000)); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Failed broadcast must not leak charges.
	if c.UsedMemory(0) != 0 || c.UsedMemory(1) != 0 {
		t.Fatal("failed broadcast leaked memory")
	}
}

func TestEstimateSizeWithSizer(t *testing.T) {
	vals := []sizedThing{{10}, {20}}
	if got := EstimateSize(vals); got != 30 {
		t.Fatalf("EstimateSize = %d, want 30", got)
	}
	if got := EstimateSize(sizedThing{5}); got != 5 {
		t.Fatalf("EstimateSize = %d, want 5", got)
	}
	if got := EstimateSize(func() {}); got != 64 {
		t.Fatalf("unencodable fallback = %d, want 64", got)
	}
}

type sizedThing struct{ n int64 }

func (s sizedThing) SizeBytes() int64 { return s.n }

// Property: ReduceByKey agrees with a single-machine fold for arbitrary data,
// partition counts, and machine counts.
func TestReduceByKeyProperty(t *testing.T) {
	f := func(keys []uint8, seed uint64) bool {
		if len(keys) == 0 {
			return true
		}
		c := MustNewCluster(Config{Machines: 1 + int(seed%4), CoresPerMachine: 1 + int(seed%3)})
		defer c.Close()
		var data []KV[uint8, int]
		want := map[uint8]int{}
		for i, k := range keys {
			data = append(data, KV[uint8, int]{k, i})
			want[k] += i
		}
		r := Parallelize(c, "prop", data, 1+int(seed%7))
		red := ReduceByKey(r, "propsum", 1+int((seed>>8)%5), func(a, b int) int { return a + b })
		got, err := CollectAsMap(red)
		if err != nil || len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Collect preserves multiset and partition order for narrow chains.
func TestCollectOrderProperty(t *testing.T) {
	f := func(n uint8, parts uint8) bool {
		c := MustNewCluster(Config{})
		defer c.Close()
		data := ints(int(n))
		r := Parallelize(c, "ord", data, 1+int(parts%9))
		got, err := r.Collect()
		if err != nil || len(got) != len(data) {
			return false
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeInMemory.String() != "spark" || ModeMapReduce.String() != "mapreduce" {
		t.Fatal("Mode.String")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode string")
	}
}

func TestMaterializePins(t *testing.T) {
	c := testCluster(t, Config{})
	r := Parallelize(c, "m", ints(10), 3)
	if err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	var used int64
	for m := 0; m < c.Machines(); m++ {
		used += c.UsedMemory(m)
	}
	if used == 0 {
		t.Fatal("Materialize pinned nothing")
	}
}

func TestShuffleAfterShuffle(t *testing.T) {
	// Two chained wide dependencies must both materialize without deadlock,
	// even with a single core per machine.
	c := testCluster(t, Config{Machines: 2, CoresPerMachine: 1})
	var data []KV[int, int]
	for i := 0; i < 60; i++ {
		data = append(data, KV[int, int]{i % 12, 1})
	}
	r := Parallelize(c, "pairs", data, 4)
	first := ReduceByKey(r, "s1", 3, func(a, b int) int { return a + b })
	rekeyed := Map(first, "rekey", func(kv KV[int, int]) KV[int, int] {
		return KV[int, int]{kv.K % 3, kv.V}
	})
	second := ReduceByKey(rekeyed, "s2", 2, func(a, b int) int { return a + b })
	got, err := CollectAsMap(second)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != 60 {
		t.Fatalf("total = %d, want 60", total)
	}
	if s := c.Metrics().Snapshot(); s.Stages < 3 {
		t.Fatalf("expected >=3 stages, got %+v", s)
	}
}

func TestMetricsSnapshotSub(t *testing.T) {
	a := MetricsSnapshot{BytesShuffled: 10, TasksRun: 5}
	b := MetricsSnapshot{BytesShuffled: 4, TasksRun: 2}
	d := a.Sub(b)
	if d.BytesShuffled != 6 || d.TasksRun != 3 {
		t.Fatalf("Sub = %+v", d)
	}
}
