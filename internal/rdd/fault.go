package rdd

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FaultPlan is a seeded chaos schedule for the simulated cluster: random task
// failures, a machine kill at a chosen stage, and straggler delays. Every
// decision is a pure hash of (Seed, stage name, partition, attempt), so a plan
// injects the same faults on every run regardless of goroutine scheduling —
// the property the chaos tests rely on to compare a faulted solve against a
// failure-free one bit-for-bit.
type FaultPlan struct {
	// Seed drives every probabilistic decision.
	Seed uint64
	// TaskFailureProb is the probability that a task's first attempt fails
	// with a retryable error (retries are never re-failed, so the retry
	// budget cannot be exhausted by the plan alone).
	TaskFailureProb float64
	// MaxTaskFailures caps the number of injected task failures; 0 means
	// unlimited. The cap is approximate under concurrency: which tasks land
	// within it depends on scheduling order, but results never do.
	MaxTaskFailures int
	// KillMachine is the machine to kill when stage KillAtStage begins
	// (reduced modulo the machine count).
	KillMachine int
	// KillAtStage is the 0-based global stage index at whose start the kill
	// fires. The kill is armed when KillSet is true or, for hand-built plans
	// that leave KillSet unset, when KillAtStage > 0.
	KillAtStage int
	// KillSet arms the machine kill explicitly, distinguishing "kill at
	// stage 0" from the zero value's "no kill". ParseFaultPlan sets it for
	// every kill=M@S field, including S=0.
	KillSet bool
	// StragglerProb delays a matching task attempt by StragglerDelay,
	// modeling slow executors.
	StragglerProb  float64
	StragglerDelay time.Duration
}

// ParseFaultPlan builds a FaultPlan from a compact comma-separated spec, the
// format the -fault-plan CLI flag takes:
//
//	seed=7,failprob=0.02,maxfail=10,kill=1@5,stragglerprob=0.05,stragglerdelay=5ms
//
// where kill=M@S kills machine M at the start of stage S. Unknown keys are an
// error; every key is optional.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	f := &FaultPlan{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("rdd: fault plan field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			f.Seed, err = strconv.ParseUint(val, 10, 64)
		case "failprob":
			f.TaskFailureProb, err = strconv.ParseFloat(val, 64)
		case "maxfail":
			f.MaxTaskFailures, err = strconv.Atoi(val)
		case "kill":
			m, s, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("rdd: fault plan kill=%q is not machine@stage", val)
			}
			if f.KillMachine, err = strconv.Atoi(m); err == nil {
				f.KillAtStage, err = strconv.Atoi(s)
				f.KillSet = err == nil
			}
		case "stragglerprob":
			f.StragglerProb, err = strconv.ParseFloat(val, 64)
		case "stragglerdelay":
			f.StragglerDelay, err = time.ParseDuration(val)
		default:
			return nil, fmt.Errorf("rdd: unknown fault plan key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("rdd: fault plan field %q: %w", field, err)
		}
	}
	return f, nil
}

// Fault-decision salts keep the failure and straggler hash streams
// independent.
const (
	saltFail     = 0x6661696c // "fail"
	saltStraggle = 0x736c6f77 // "slow"
)

// faultHash maps (seed, stage, partition, attempt, salt) to a uniform [0,1)
// value: FNV over the stage name mixed with a splitmix64 finalizer. Being
// stateless is the point — identical inputs decide identically on every run.
func faultHash(seed uint64, stage string, part, attempt int, salt uint64) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(stage); i++ {
		h ^= uint64(stage[i])
		h *= 1099511628211
	}
	h ^= seed + salt + uint64(part)*0x9E3779B97F4A7C15 + uint64(attempt)*0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// planShouldFail decides whether the fault plan fails this attempt. Only first
// attempts are failed, so a planned failure always leaves the retry budget
// room to succeed.
func (c *Cluster) planShouldFail(stage string, part, attempt int) bool {
	f := c.cfg.Fault
	if f == nil || f.TaskFailureProb <= 0 || attempt != 0 {
		return false
	}
	if faultHash(f.Seed, stage, part, attempt, saltFail) >= f.TaskFailureProb {
		return false
	}
	if f.MaxTaskFailures > 0 && c.planFailures.Add(1) > int64(f.MaxTaskFailures) {
		return false
	}
	return true
}

// planStraggle sleeps inside the timed task body when the plan marks this
// attempt a straggler, so the delay shows up in task durations and skew.
// Speculative backups are exempt: they model re-placement on a fast
// executor, the mitigation the stragglers exist to exercise.
func (c *Cluster) planStraggle(stage string, part, attempt int) {
	f := c.cfg.Fault
	if f == nil || f.StragglerProb <= 0 || f.StragglerDelay <= 0 || attempt >= speculativeAttempt {
		return
	}
	if faultHash(f.Seed, stage, part, attempt, saltStraggle) < f.StragglerProb {
		time.Sleep(f.StragglerDelay)
	}
}

// killArmed reports whether the plan schedules a machine kill at all:
// explicitly via KillSet, or implicitly by a positive KillAtStage for plans
// built as struct literals without the sentinel.
func (f *FaultPlan) killArmed() bool { return f.KillSet || f.KillAtStage > 0 }

// maybePlanKill fires the plan's machine kill when stage stageIdx begins.
func (c *Cluster) maybePlanKill(stageIdx int64) {
	f := c.cfg.Fault
	if f == nil || !f.killArmed() || stageIdx != int64(f.KillAtStage) {
		return
	}
	m := f.KillMachine % c.cfg.Machines
	if m < 0 {
		m += c.cfg.Machines
	}
	c.killMachine(m, fmt.Sprintf("fault plan: kill machine %d at stage %d", m, f.KillAtStage))
}

// Recovery event kinds recorded by the fault-tolerance machinery.
const (
	RecoveryMachineKill      = "machine-kill"
	RecoveryTaskRetry        = "task-retry"
	RecoveryCacheEvict       = "cache-evict"
	RecoveryShuffleEvict     = "shuffle-evict"
	RecoveryBroadcastEvict   = "broadcast-evict"
	RecoveryShuffleRecompute = "shuffle-recompute"
	// Speculative-execution outcomes: a backup attempt launched against a
	// suspected straggler, and each side's result of the commit race.
	RecoverySpeculativeLaunch = "speculative-launch"
	RecoverySpeculativeWin    = "speculative-win"
	RecoverySpeculativeLoss   = "speculative-loss"
)

// RecoveryEvent records one fault-tolerance action: a machine kill, a task
// attempt scheduled for retry, storage evicted from a dead machine, or a lost
// shuffle partition recomputed from lineage. The log is the auditable account
// of what failure recovery cost a run; Summary renders it and WriteChromeTrace
// exports each event as an instant on the driver timeline.
type RecoveryEvent struct {
	Kind      string
	Stage     string // stage, RDD or shuffle name the event concerns ("" if none)
	Partition int    // partition involved, -1 when the event spans several
	Machine   int    // machine involved, -1 when none
	Attempt   int    // failing attempt for task-retry events
	Cause     string
	Cost      time.Duration // work lost or spent recovering (0 if not timed)
	At        time.Duration // offset from cluster creation
}

// machineEvictor is implemented by storage holders (cached RDDs, shuffle
// exchanges, broadcasts) that must react to a machine dying.
type machineEvictor interface {
	evictMachine(m int)
}

// registerEvictor adds e to the set notified by KillMachine and returns a
// handle for unregisterEvictor.
func (c *Cluster) registerEvictor(e machineEvictor) int64 {
	id := c.newID()
	c.mu.Lock()
	if c.evictors == nil {
		c.evictors = map[int64]machineEvictor{}
	}
	c.evictors[id] = e
	c.mu.Unlock()
	return id
}

func (c *Cluster) unregisterEvictor(id int64) {
	c.mu.Lock()
	delete(c.evictors, id)
	c.mu.Unlock()
}

// KillMachine simulates losing machine m: every cached partition, broadcast
// replica and in-memory shuffle output it held is evicted (ModeMapReduce spill
// files model replicated HDFS storage and survive), its memory charge is
// zeroed, and the scheduler stops placing tasks on it. Lost data is
// recomputed from lineage — or reread from Checkpoint files — the next time a
// stage needs it, mirroring Spark's executor-loss recovery. Tasks already
// running on m are discarded when they finish and retried on a survivor.
//
// KillMachine is a driver-side API: calling it from inside a task closure of a
// cached RDD that is concurrently caching may block until that task finishes.
// Killing is idempotent; killing every machine makes subsequent stages fail
// fast with a "no healthy machine" error.
func (c *Cluster) KillMachine(m int) {
	c.killMachine(m, "KillMachine")
}

func (c *Cluster) killMachine(m int, cause string) {
	if m < 0 || m >= c.cfg.Machines {
		panic(fmt.Sprintf("rdd: KillMachine(%d) with %d machines", m, c.cfg.Machines))
	}
	if c.machines[m].dead.Swap(true) {
		return
	}
	c.evictDeadMachine(m, cause)
}

// evictDeadMachine runs the kill's consequences once the dead flag is set:
// under a remote Transport the worker process itself is killed first (so no
// in-flight fetch can still succeed against a machine the engine considers
// dead), then every registered storage holder evicts what the machine held.
// Called synchronously by killMachine and on its own goroutine by
// machineLost.
func (c *Cluster) evictDeadMachine(m int, cause string) {
	c.recordRecovery(RecoveryEvent{
		Kind: RecoveryMachineKill, Machine: m, Partition: -1, Cause: cause,
	})
	if rt := c.remote(); rt != nil {
		if err := rt.Kill(m); err != nil {
			c.recordRecovery(RecoveryEvent{
				Kind: RecoveryMachineKill, Machine: m, Partition: -1,
				Cause: fmt.Sprintf("killing worker process: %v", err),
			})
		}
	}
	c.mu.Lock()
	evictors := make([]machineEvictor, 0, len(c.evictors))
	for _, e := range c.evictors {
		evictors = append(evictors, e)
	}
	c.mu.Unlock()
	for _, e := range evictors {
		e.evictMachine(m)
	}
	// Whatever charge remains (transients of in-flight tasks, unregistered
	// holders) died with the machine.
	mm := c.machines[m]
	mm.mu.Lock()
	mm.used = 0
	mm.mu.Unlock()
}

// machineDead reports whether machine m has been killed.
func (c *Cluster) machineDead(m int) bool { return c.machines[m].dead.Load() }

// HealthyMachines returns how many machines are still alive.
func (c *Cluster) HealthyMachines() int {
	n := 0
	for m := 0; m < c.cfg.Machines; m++ {
		if !c.machineDead(m) {
			n++
		}
	}
	return n
}

// placeTask picks the machine for attempt number attempt of partition p:
// the preferred location (p+attempt) mod M, rotated past dead machines, and
// past the machine the previous attempt just failed on whenever another
// healthy machine exists (with a single machine left, retrying locally beats
// not retrying). It fails fast when no healthy machine remains.
func (c *Cluster) placeTask(p, attempt, lastFailed int) (int, error) {
	mc := c.cfg.Machines
	start := (p + attempt) % mc
	fallback := -1
	for off := 0; off < mc; off++ {
		m := (start + off) % mc
		if c.machineDead(m) {
			continue
		}
		if m == lastFailed {
			if fallback < 0 {
				fallback = m
			}
			continue
		}
		return m, nil
	}
	if fallback >= 0 {
		return fallback, nil
	}
	return -1, fmt.Errorf("rdd: no healthy machine remains to place task %d (all %d machines dead)", p, mc)
}

// backoff sleeps before re-placing a retried attempt: capped exponential in
// the attempt number, Config.RetryBackoff doubling up to Config.RetryBackoffMax
// (default 8x the base). A zero base disables backoff.
func (c *Cluster) backoff(attempt int) {
	base := c.cfg.RetryBackoff
	if base <= 0 || attempt <= 0 {
		return
	}
	ceil := c.cfg.RetryBackoffMax
	if ceil <= 0 {
		ceil = 8 * base
	}
	d := base
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	time.Sleep(d)
}

// recordRecovery appends ev to the recovery log, stamping At if unset.
func (c *Cluster) recordRecovery(ev RecoveryEvent) {
	if ev.At == 0 {
		ev.At = time.Since(c.start)
	}
	c.simMu.Lock()
	c.recoveries = append(c.recoveries, ev)
	c.simMu.Unlock()
}

// Recoveries returns a copy of the recovery-event log, in order.
func (c *Cluster) Recoveries() []RecoveryEvent {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return append([]RecoveryEvent(nil), c.recoveries...)
}
