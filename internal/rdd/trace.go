package rdd

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Summary renders the stage log as a human-readable table: one row per
// executed stage with its tag, task count, wall and critical-path time,
// retries, byte traffic, and the max/median task-time skew, followed by a
// totals row. It is the quick look at where an algorithm's time and shuffle
// volume went; WriteChromeTrace is the full timeline.
func (c *Cluster) Summary() string {
	stages := c.StageLog()
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-10s %5s %10s %10s %5s %4s %12s %12s %10s %10s %6s\n",
		"stage", "tag", "tasks", "wall", "critical", "retry", "spec", "shuffledB", "spilledB", "wastedB", "recompB", "skew")
	var totalWall, totalCritical time.Duration
	var totalShuffled, totalSpilled, totalWasted, totalRecomp int64
	totalTasks, totalRetries, totalSpec := 0, 0, 0
	for _, s := range stages {
		fmt.Fprintf(&b, "%-34s %-10s %5d %10s %10s %5d %4d %12d %12d %10d %10d %6.2f\n",
			s.Name, s.Tag, s.Tasks, fmtDur(s.Wall), fmtDur(s.Critical),
			s.Retries, s.SpeculativeTasks, s.BytesShuffled, s.BytesSpilled,
			s.BytesWasted, s.BytesRecomputed, s.Skew())
		totalWall += s.Wall
		totalCritical += s.Critical
		totalShuffled += s.BytesShuffled
		totalSpilled += s.BytesSpilled
		totalWasted += s.BytesWasted
		totalRecomp += s.BytesRecomputed
		totalTasks += s.Tasks
		totalRetries += s.Retries
		totalSpec += s.SpeculativeTasks
	}
	fmt.Fprintf(&b, "%-34s %-10s %5d %10s %10s %5d %4d %12d %12d %10d %10d\n",
		fmt.Sprintf("TOTAL (%d stages)", len(stages)), "", totalTasks,
		fmtDur(totalWall), fmtDur(totalCritical), totalRetries, totalSpec,
		totalShuffled, totalSpilled, totalWasted, totalRecomp)
	if spans := c.DriverSpans(); len(spans) > 0 {
		var driver time.Duration
		for _, sp := range spans {
			driver += sp.Dur
		}
		fmt.Fprintf(&b, "driver spans: %d totaling %s\n", len(spans), fmtDur(driver))
	}
	if recs := c.Recoveries(); len(recs) > 0 {
		counts := map[string]int{}
		for _, r := range recs {
			counts[r.Kind]++
		}
		fmt.Fprintf(&b, "recovery events: %d", len(recs))
		for _, kind := range []string{
			RecoveryMachineKill, RecoveryTaskRetry, RecoveryCacheEvict,
			RecoveryShuffleEvict, RecoveryBroadcastEvict, RecoveryShuffleRecompute,
			RecoverySpeculativeLaunch, RecoverySpeculativeWin, RecoverySpeculativeLoss,
		} {
			if n := counts[kind]; n > 0 {
				fmt.Fprintf(&b, "  %s=%d", kind, n)
			}
		}
		b.WriteString("\n")
		for _, r := range recs {
			fmt.Fprintf(&b, "  %-18s at=%-10s machine=%-2d", r.Kind, fmtDur(r.At), r.Machine)
			if r.Stage != "" {
				fmt.Fprintf(&b, " stage=%s", r.Stage)
			}
			if r.Partition >= 0 {
				fmt.Fprintf(&b, " part=%d attempt=%d", r.Partition, r.Attempt)
			}
			if r.Cost > 0 {
				fmt.Fprintf(&b, " cost=%s", fmtDur(r.Cost))
			}
			fmt.Fprintf(&b, " cause=%q\n", r.Cause)
		}
	}
	return b.String()
}

// fmtDur rounds a duration for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" metadata), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since cluster creation
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope ("g" = global)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Process/thread layout of the exported trace: the driver is pid 0 (stages on
// tid 0, driver-side spans on tid 1, recovery instants on tid 2); machine m
// is pid m+1 with one thread per partition a task ran on.
const (
	chromeDriverPID   = 0
	chromeStageTID    = 0
	chromeDriverTID   = 1
	chromeRecoveryTID = 2
)

// WriteChromeTrace exports the cluster's execution history in the Chrome
// trace-event JSON format (chrome://tracing, Perfetto, speedscope): one span
// per stage and per recorded driver span always, plus one span per task
// attempt when the cluster was built with Config.TaskTrace, plus one global
// instant per recovery event (machine kills, retries, evictions, lineage
// recomputes) on the driver's recovery lane. Stage and task args carry the
// observability counters (bytes, retries, skew, queue wait) so the
// shuffle-volume story of Lemma 3 can be read straight off the timeline.
func (c *Cluster) WriteChromeTrace(w io.Writer) error {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: chromeDriverPID,
		Args: map[string]any{"name": "driver"},
	}}
	for m := 0; m < c.cfg.Machines; m++ {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: m + 1,
			Args: map[string]any{"name": fmt.Sprintf("machine %d", m)},
		})
	}
	for _, s := range c.StageLog() {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "stage",
			Ph:   "X",
			TS:   micros(s.Start),
			Dur:  durMicros(s.Wall),
			PID:  chromeDriverPID,
			TID:  chromeStageTID,
			Args: map[string]any{
				"tag":               s.Tag,
				"tasks":             s.Tasks,
				"critical_us":       durMicros(s.Critical),
				"retries":           s.Retries,
				"speculative_tasks": s.SpeculativeTasks,
				"bytes_shuffled":    s.BytesShuffled,
				"bytes_spilled":     s.BytesSpilled,
				"bytes_wasted":      s.BytesWasted,
				"bytes_recomputed":  s.BytesRecomputed,
				"skew":              s.Skew(),
			},
		})
	}
	for _, r := range c.Recoveries() {
		args := map[string]any{"cause": r.Cause}
		if r.Stage != "" {
			args["stage"] = r.Stage
		}
		if r.Machine >= 0 {
			args["machine"] = r.Machine
		}
		if r.Partition >= 0 {
			args["partition"] = r.Partition
			args["attempt"] = r.Attempt
		}
		if r.Cost > 0 {
			args["cost_us"] = durMicros(r.Cost)
		}
		events = append(events, chromeEvent{
			Name: r.Kind,
			Cat:  "recovery",
			Ph:   "i",
			S:    "g",
			TS:   micros(r.At),
			PID:  chromeDriverPID,
			TID:  chromeRecoveryTID,
			Args: args,
		})
	}
	for _, sp := range c.DriverSpans() {
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  "driver",
			Ph:   "X",
			TS:   micros(sp.Start),
			Dur:  durMicros(sp.Dur),
			PID:  chromeDriverPID,
			TID:  chromeDriverTID,
			Args: map[string]any{"tag": sp.Tag},
		})
	}
	for _, t := range c.Trace() {
		args := map[string]any{
			"tag":            t.Tag,
			"attempt":        t.Attempt,
			"queue_us":       durMicros(t.Queue),
			"transient_peak": t.TransientPeak,
			"bytes_shuffled": t.BytesShuffled,
			"bytes_spilled":  t.BytesSpilled,
		}
		if t.Speculative {
			args["speculative"] = true
		}
		if t.Error != "" {
			args["error"] = t.Error
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s[%d]", t.Stage, t.Partition),
			Cat:  "task",
			Ph:   "X",
			TS:   micros(t.Start),
			Dur:  durMicros(t.Run),
			PID:  t.Machine + 1,
			TID:  t.Partition,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// durMicros floors span lengths at 1µs so zero-duration spans stay visible
// (and valid) in trace viewers.
func durMicros(d time.Duration) float64 {
	if d < time.Microsecond {
		return 1
	}
	return micros(d)
}
