// Package rdd is an in-process, Spark-like distributed dataflow engine: the
// substrate this reproduction runs DisTenC and its baselines on in place of a
// real Spark cluster.
//
// The engine provides lazy, lineage-backed resilient distributed datasets
// with narrow transformations (Map, Filter, FlatMap, MapPartitions), wide
// shuffle transformations on key-value RDDs (ReduceByKey, AggregateByKey,
// GroupByKey, Join, CoGroup, PartitionBy), broadcast variables, explicit
// caching, and actions (Collect, Count, Reduce).
//
// What makes it a useful experimental substrate rather than a toy:
//
//   - Machines are simulated: partitions have stable placement on M logical
//     machines, each with a worker pool of CoresPerMachine goroutines, so
//     machine-scalability experiments measure real parallel speedup.
//   - Every machine has a memory budget. Cached partitions and declared
//     transient allocations are charged against it; exceeding the budget
//     fails the job with ErrOutOfMemory — reproducing the O.O.M. frontier of
//     the paper's Figure 3.
//   - Shuffled and broadcast data is really serialized (encoding/gob), so the
//     engine reports honest byte counts for the paper's Lemma 3 accounting.
//   - ModeMapReduce spills every shuffle through the filesystem and disables
//     in-memory caching (forcing lineage recomputation each stage), which is
//     exactly the Hadoop penalty the paper attributes SCouT's and
//     FlexiFact's slowness to.
//   - Tasks that fail with a retryable error (fault injection, used in
//     tests) are re-run on another machine from lineage, like Spark's task
//     retry.
package rdd

import (
	"errors"
	"fmt"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the execution backend the engine models.
type Mode int

const (
	// ModeInMemory is Spark-like: shuffles stay in memory, caching works.
	ModeInMemory Mode = iota
	// ModeMapReduce is Hadoop-like: shuffles spill to disk and Cache is a
	// no-op, so every stage recomputes its lineage.
	ModeMapReduce
)

func (m Mode) String() string {
	switch m {
	case ModeInMemory:
		return "spark"
	case ModeMapReduce:
		return "mapreduce"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes the simulated cluster.
type Config struct {
	// Machines is the number of simulated machines (default 4).
	Machines int
	// CoresPerMachine is the worker-pool width per machine (default 2).
	CoresPerMachine int
	// MemoryPerMachine is the per-machine memory budget in bytes charged by
	// cached partitions, broadcasts and declared transient allocations.
	// Zero means unlimited.
	MemoryPerMachine int64
	// Mode selects Spark-like or MapReduce-like execution.
	Mode Mode
	// DiskDir is where ModeMapReduce spills shuffle data. Empty uses a
	// temporary directory owned by the cluster.
	DiskDir string
	// DiskLatencyPerMB adds modeled disk/HDFS latency per spilled megabyte
	// (both write and read) in ModeMapReduce. Zero adds none beyond the real
	// file I/O.
	DiskLatencyPerMB time.Duration
	// SerializeTasks runs at most one task at a time across the whole
	// cluster so per-task durations are true single-core costs. Combined
	// with SimulatedTime this yields honest machine-scalability curves on
	// hosts with fewer cores than simulated machines.
	SerializeTasks bool
	// TaskTrace records one TaskRecord per task attempt (see Cluster.Trace
	// and the Chrome-trace exporter). Off by default: the per-stage rollups
	// in StageLog are always collected, the per-task log only when asked,
	// so tracing never taxes benchmark runs that don't want it.
	TaskTrace bool
	// MaxTaskRetries is the per-task retry budget for retryable failures
	// (injected faults, machine loss). 0 means the default of 2; negative
	// disables retries.
	MaxTaskRetries int
	// RetryBackoff is the base delay before re-placing a failed attempt;
	// it doubles per attempt up to RetryBackoffMax (default 8x the base).
	// Zero disables backoff.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Fault, when set, injects the seeded chaos schedule (task failures,
	// a machine kill, stragglers) described by the plan. Nil runs clean.
	Fault *FaultPlan
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 4
	}
	if c.CoresPerMachine <= 0 {
		c.CoresPerMachine = 2
	}
	return c
}

// ErrOutOfMemory is returned (wrapped) when a machine's memory budget is
// exceeded. Callers detect it with errors.Is.
var ErrOutOfMemory = errors.New("rdd: machine out of memory")

// errRetryable marks injected task failures that the scheduler should retry
// on another machine.
var errRetryable = errors.New("rdd: retryable task failure")

// Metrics aggregates engine counters for the experiment harness. The byte
// counters hold exactly-once totals: an attempt's traffic is committed only
// when the attempt succeeds, and traffic from attempts that failed (or whose
// machine died mid-run) is reattributed to BytesWasted instead, so Lemma 3
// accounting is not overstated under retry.
type Metrics struct {
	BytesShuffled  atomic.Int64
	BytesBroadcast atomic.Int64
	DiskBytesRead  atomic.Int64
	DiskBytesWrite atomic.Int64
	// BytesWasted counts shuffle+disk traffic produced by failed task
	// attempts — work that was paid for but discarded.
	BytesWasted atomic.Int64
	TasksRun    atomic.Int64
	TaskRetries atomic.Int64
	Stages      atomic.Int64
}

// Snapshot returns a plain-struct copy for reporting.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		BytesShuffled:  m.BytesShuffled.Load(),
		BytesBroadcast: m.BytesBroadcast.Load(),
		DiskBytesRead:  m.DiskBytesRead.Load(),
		DiskBytesWrite: m.DiskBytesWrite.Load(),
		BytesWasted:    m.BytesWasted.Load(),
		TasksRun:       m.TasksRun.Load(),
		TaskRetries:    m.TaskRetries.Load(),
		Stages:         m.Stages.Load(),
	}
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	BytesShuffled  int64
	BytesBroadcast int64
	DiskBytesRead  int64
	DiskBytesWrite int64
	BytesWasted    int64
	TasksRun       int64
	TaskRetries    int64
	Stages         int64
}

// Sub returns m - o field-wise (for per-phase deltas).
func (m MetricsSnapshot) Sub(o MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		BytesShuffled:  m.BytesShuffled - o.BytesShuffled,
		BytesBroadcast: m.BytesBroadcast - o.BytesBroadcast,
		DiskBytesRead:  m.DiskBytesRead - o.DiskBytesRead,
		DiskBytesWrite: m.DiskBytesWrite - o.DiskBytesWrite,
		BytesWasted:    m.BytesWasted - o.BytesWasted,
		TasksRun:       m.TasksRun - o.TasksRun,
		TaskRetries:    m.TaskRetries - o.TaskRetries,
		Stages:         m.Stages - o.Stages,
	}
}

type machine struct {
	id   int
	sem  chan struct{} // CoresPerMachine slots
	dead atomic.Bool   // set by KillMachine; the scheduler skips dead machines
	mu   sync.Mutex
	used int64
	peak int64
}

// Cluster is the simulated cluster: the driver plus M machines.
type Cluster struct {
	cfg          Config
	machines     []*machine
	metrics      Metrics
	start        time.Time    // all trace timestamps are offsets from this
	planFailures atomic.Int64 // fault-plan task failures injected so far

	mu        sync.Mutex
	nextID    int64
	tmpDir    string
	ownsTmp   bool
	closed    bool
	failOnce  map[string]int           // stage-name prefix -> remaining injected failures
	evictors  map[int64]machineEvictor // storage holders notified by KillMachine
	ckptFiles map[int64][]string       // Checkpoint files to delete on Unpersist/Close

	serialMu    sync.Mutex // held per task when SerializeTasks is set
	simMu       sync.Mutex
	simTime     time.Duration
	stageTag    string
	stageLog    []StageRecord
	taskLog     []TaskRecord
	driverSpans []DriverSpan
	recoveries  []RecoveryEvent
}

// StageRecord summarizes one executed stage for the StageLog: scheduling
// shape (tasks, wall, critical path), the byte traffic the stage generated,
// retry counts, and the max-vs-median task-time skew that reveals stragglers
// and load imbalance.
type StageRecord struct {
	Name     string
	Tag      string // iteration/phase label set via SetStageTag
	Tasks    int
	Start    time.Duration // offset from cluster creation
	Wall     time.Duration
	Critical time.Duration // per-machine busy-time critical path
	Retries  int           // task attempts re-run from lineage in this stage
	// BytesShuffled counts shuffle traffic generated by this stage's tasks
	// (map-side serialized blocks plus declared row shipments).
	BytesShuffled int64
	// BytesSpilled counts disk bytes read+written by this stage's tasks
	// (ModeMapReduce shuffle spills, checkpoints).
	BytesSpilled int64
	// BytesWasted counts shuffle+disk bytes produced by this stage's failed
	// task attempts and then discarded (exactly-once accounting keeps them
	// out of BytesShuffled/BytesSpilled).
	BytesWasted int64
	// MaxTask and MedianTask summarize the task run-time distribution;
	// their ratio (Skew) is the straggler indicator.
	MaxTask    time.Duration
	MedianTask time.Duration
	// TransientPeak is the largest task-scoped memory any single task of the
	// stage declared via ChargeTransient.
	TransientPeak int64
}

// Skew returns MaxTask/MedianTask (1 when the stage ran a single task or the
// median rounds to zero) — the load-balance figure the greedy partitioner of
// Algorithm 2 exists to keep near 1.
func (s StageRecord) Skew() float64 {
	if s.MedianTask <= 0 {
		return 1
	}
	return float64(s.MaxTask) / float64(s.MedianTask)
}

// TaskRecord describes one task attempt, recorded when Config.TaskTrace is
// set. Queue is the wait for a core slot before the task body ran; Run is the
// body itself; both locate the attempt on the cluster timeline via Start
// (offset from cluster creation, when the body began).
type TaskRecord struct {
	Stage         string
	Tag           string // stage tag at the time the stage ran
	Partition     int
	Attempt       int // 0 on first execution, >0 for lineage re-runs
	Machine       int
	Start         time.Duration
	Queue         time.Duration
	Run           time.Duration
	TransientPeak int64  // memory declared via ChargeTransient
	BytesShuffled int64  // shuffle bytes this attempt produced
	BytesSpilled  int64  // disk bytes this attempt read+wrote
	Error         string // "" on success; the attempt's error otherwise
}

// DriverSpan is a named span of driver-side work (dense algebra, result
// assembly) recorded by the algorithm via RecordDriverSpan so single-threaded
// driver time shows up next to the cluster stages in traces.
type DriverSpan struct {
	Name  string
	Tag   string
	Start time.Duration // offset from cluster creation
	Dur   time.Duration
}

// NewCluster builds a cluster from cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, failOnce: map[string]int{}, start: time.Now()}
	for i := 0; i < cfg.Machines; i++ {
		c.machines = append(c.machines, &machine{
			id:  i,
			sem: make(chan struct{}, cfg.CoresPerMachine),
		})
	}
	if cfg.Mode == ModeMapReduce {
		dir := cfg.DiskDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "distenc-shuffle-")
			if err != nil {
				return nil, fmt.Errorf("rdd: creating shuffle dir: %w", err)
			}
			c.ownsTmp = true
		}
		c.tmpDir = dir
	}
	return c, nil
}

// MustNewCluster is NewCluster panicking on error, for tests and examples.
func MustNewCluster(cfg Config) *Cluster {
	c, err := NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Close releases the cluster's on-disk shuffle space, including any
// Checkpoint files still alive in a caller-owned DiskDir.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.ownsTmp && c.tmpDir != "" {
		c.ckptFiles = nil
		return os.RemoveAll(c.tmpDir)
	}
	for _, paths := range c.ckptFiles {
		removeCheckpointFiles(paths)
	}
	c.ckptFiles = nil
	return nil
}

// Config returns the (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Machines returns the simulated machine count.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// Metrics exposes the engine counters.
func (c *Cluster) Metrics() *Metrics { return &c.metrics }

// PeakMemory returns the maximum bytes ever charged to machine m.
func (c *Cluster) PeakMemory(m int) int64 {
	mm := c.machines[m]
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.peak
}

// MaxPeakMemory returns the largest per-machine peak.
func (c *Cluster) MaxPeakMemory() int64 {
	var mx int64
	for i := range c.machines {
		if p := c.PeakMemory(i); p > mx {
			mx = p
		}
	}
	return mx
}

// UsedMemory returns the bytes currently charged to machine m.
func (c *Cluster) UsedMemory(m int) int64 {
	mm := c.machines[m]
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.used
}

func (c *Cluster) newID() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

// charge reserves bytes on machine m, failing with ErrOutOfMemory if the
// budget would be exceeded.
func (c *Cluster) charge(m int, bytes int64) error {
	if bytes < 0 {
		panic("rdd: negative charge")
	}
	mm := c.machines[m]
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if c.cfg.MemoryPerMachine > 0 && mm.used+bytes > c.cfg.MemoryPerMachine {
		return fmt.Errorf("rdd: machine %d needs %d bytes over budget %d (used %d): %w",
			m, bytes, c.cfg.MemoryPerMachine, mm.used, ErrOutOfMemory)
	}
	mm.used += bytes
	if mm.used > mm.peak {
		mm.peak = mm.used
	}
	return nil
}

func (c *Cluster) release(m int, bytes int64) {
	mm := c.machines[m]
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.used -= bytes
	if mm.used < 0 {
		mm.used = 0
	}
}

// SimulatedTime returns the accumulated critical-path execution time of all
// stages run so far: per stage, the maximum over machines of that machine's
// total task time divided by its core count. On a host with fewer physical
// cores than simulated machines (where real wall-clock cannot show parallel
// speedup) this is the honest scalability measure — use it together with
// Config.SerializeTasks so the per-task durations are uncontended.
func (c *Cluster) SimulatedTime() time.Duration {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return c.simTime
}

// Charge reserves bytes on machine m for an algorithm-declared allocation
// (e.g. a baseline's dense intermediate that a real run would materialize).
// The caller must Release it. Returns ErrOutOfMemory (wrapped) over budget.
func (c *Cluster) Charge(m int, bytes int64) error { return c.charge(m, bytes) }

// Release returns bytes previously reserved with Charge on machine m.
func (c *Cluster) Release(m int, bytes int64) { c.release(m, bytes) }

// InjectTaskFailures makes the next n tasks of stages whose name starts with
// stagePrefix fail with a retryable error — the fault-injection hook used to
// exercise lineage-based recovery.
func (c *Cluster) InjectTaskFailures(stagePrefix string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failOnce[stagePrefix] = n
}

// shouldFail consumes one injected failure for stage if any registered prefix
// matches. With several matching prefixes the longest one is charged —
// deterministic, unlike iterating the map, whose order would make which
// prefix's budget is decremented (and thus which later stage fails) vary
// run-to-run.
func (c *Cluster) shouldFail(stage string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	best := ""
	found := false
	for prefix, n := range c.failOnce {
		if n > 0 && strings.HasPrefix(stage, prefix) && (!found || len(prefix) > len(best)) {
			best, found = prefix, true
		}
	}
	if found {
		c.failOnce[best]--
	}
	return found
}

// TaskCtx is handed to every task; it identifies the machine the task runs on
// and lets the task declare transient memory it would allocate on a real
// cluster (charged for the task's duration). It also buffers the task's own
// byte traffic: counters are committed to the cluster Metrics only if the
// attempt succeeds (failed attempts land in BytesWasted instead), which is
// what makes the engine's accounting exactly-once under retry.
type TaskCtx struct {
	Machine    int
	c          *Cluster
	charged    int64
	shuffled   int64
	spillRead  int64
	spillWrite int64
	onSuccess  []func()
}

// ChargeTransient reserves task-scoped memory on the task's machine. It is
// released automatically when the task finishes.
func (tc *TaskCtx) ChargeTransient(bytes int64) error {
	if err := tc.c.charge(tc.Machine, bytes); err != nil {
		return err
	}
	tc.charged += bytes
	return nil
}

// CountShuffled records bytes of shuffle traffic produced by this task,
// feeding the cluster-wide Metrics counter (on attempt success) and the
// per-task/per-stage rollups. Algorithm code that models traffic the engine
// does not serialize itself (e.g. factor rows shipped to a block) reports it
// here.
func (tc *TaskCtx) CountShuffled(bytes int64) {
	tc.shuffled += bytes
}

// countSpillWrite / countSpillRead attribute disk traffic to the task.
func (tc *TaskCtx) countSpillWrite(bytes int64) {
	tc.spillWrite += bytes
}

func (tc *TaskCtx) countSpillRead(bytes int64) {
	tc.spillRead += bytes
}

// spilled is the attempt's total disk traffic.
func (tc *TaskCtx) spilled() int64 { return tc.spillRead + tc.spillWrite }

// OnSuccess registers f to run exactly once if (and only if) this task
// attempt completes successfully — the hook for side effects that must not
// double-apply when an attempt fails and is retried from lineage. Accumulator
// adds route through it via AddOnSuccess.
func (tc *TaskCtx) OnSuccess(f func()) {
	tc.onSuccess = append(tc.onSuccess, f)
}

// commit folds the attempt's buffered counters into the cluster metrics and
// fires the deferred success hooks. Called by runStage on success only.
func (tc *TaskCtx) commit() {
	m := &tc.c.metrics
	if tc.shuffled > 0 {
		m.BytesShuffled.Add(tc.shuffled)
	}
	if tc.spillRead > 0 {
		m.DiskBytesRead.Add(tc.spillRead)
	}
	if tc.spillWrite > 0 {
		m.DiskBytesWrite.Add(tc.spillWrite)
	}
	for _, f := range tc.onSuccess {
		f()
	}
	tc.onSuccess = nil
}

// Cluster returns the cluster the task runs on.
func (tc *TaskCtx) Cluster() *Cluster { return tc.c }

// defaultMaxTaskRetries is the retry budget when Config.MaxTaskRetries is 0.
const defaultMaxTaskRetries = 2

// maxRetries resolves the configured per-task retry budget.
func (c *Cluster) maxRetries() int {
	switch {
	case c.cfg.MaxTaskRetries > 0:
		return c.cfg.MaxTaskRetries
	case c.cfg.MaxTaskRetries < 0:
		return 0
	default:
		return defaultMaxTaskRetries
	}
}

// runStage executes parts tasks across the machines (partition p prefers
// machine p mod M, like Spark preferred locations) and waits for all of them.
// Tasks failing with errRetryable — injected faults, or attempts whose
// machine was killed while they ran — are re-placed on another healthy
// machine (capped exponential backoff, never the machine that just failed
// when an alternative exists) and recomputed from lineage, up to the
// configured retry budget; other errors abort the stage. An attempt's byte
// counters and deferred OnSuccess hooks are committed only if it succeeds;
// failed-attempt traffic is reattributed to BytesWasted.
func (c *Cluster) runStage(name string, parts int, task func(tc *TaskCtx, p int) error) error {
	stageIdx := c.metrics.Stages.Add(1) - 1
	c.maybePlanKill(stageIdx)
	c.simMu.Lock()
	tag := c.stageTag
	c.simMu.Unlock()
	stageStart := time.Now()
	busy := make([]time.Duration, c.cfg.Machines)
	// Stage-local rollups, all guarded by busyMu and folded into the
	// StageRecord once the stage completes.
	durs := make([]time.Duration, 0, parts)
	var shuffled, spilled, wasted, transientPeak int64
	var retries int
	var taskRecs []TaskRecord
	var recEvents []RecoveryEvent
	var busyMu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	abort := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}

	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lastFailed := -1
			for attempt := 0; ; attempt++ {
				if abort() {
					return
				}
				m, perr := c.placeTask(p, attempt, lastFailed)
				if perr != nil {
					setErr(perr)
					return
				}
				mm := c.machines[m]
				enqueued := time.Now()
				c.backoff(attempt)
				mm.sem <- struct{}{}
				if c.cfg.SerializeTasks {
					c.serialMu.Lock()
				}
				tc := &TaskCtx{Machine: m, c: c}
				taskStart := time.Now()
				var err error
				switch {
				case c.shouldFail(name):
					err = fmt.Errorf("rdd: injected failure in stage %q task %d on machine %d: %w", name, p, m, errRetryable)
				case c.planShouldFail(name, p, attempt):
					err = fmt.Errorf("rdd: fault-plan failure in stage %q task %d on machine %d: %w", name, p, m, errRetryable)
				default:
					c.planStraggle(name, p, attempt)
					err = task(tc, p)
					if err == nil && c.machineDead(m) {
						// The machine died under the running task: its result
						// is gone with the machine, so discard and retry.
						err = fmt.Errorf("rdd: machine %d died while running stage %q task %d: %w", m, name, p, errRetryable)
					}
				}
				dur := time.Since(taskStart)
				if c.cfg.SerializeTasks {
					c.serialMu.Unlock()
				}
				retryable := err != nil && errors.Is(err, errRetryable) && attempt < c.maxRetries()
				taskSpill := tc.spilled()
				if err == nil {
					tc.commit()
				} else if tc.shuffled+taskSpill > 0 {
					c.metrics.BytesWasted.Add(tc.shuffled + taskSpill)
				}
				busyMu.Lock()
				busy[m] += dur
				durs = append(durs, dur)
				if err == nil {
					shuffled += tc.shuffled
					spilled += taskSpill
				} else {
					wasted += tc.shuffled + taskSpill
				}
				if tc.charged > transientPeak {
					transientPeak = tc.charged
				}
				if retryable {
					retries++
					recEvents = append(recEvents, RecoveryEvent{
						Kind:      RecoveryTaskRetry,
						Stage:     name,
						Partition: p,
						Machine:   m,
						Attempt:   attempt,
						Cause:     err.Error(),
						Cost:      dur,
						At:        taskStart.Sub(c.start),
					})
				}
				if c.cfg.TaskTrace {
					rec := TaskRecord{
						Stage:         name,
						Tag:           tag,
						Partition:     p,
						Attempt:       attempt,
						Machine:       m,
						Start:         taskStart.Sub(c.start),
						Queue:         taskStart.Sub(enqueued),
						Run:           dur,
						TransientPeak: tc.charged,
						BytesShuffled: tc.shuffled,
						BytesSpilled:  taskSpill,
					}
					if err != nil {
						rec.Error = err.Error()
					}
					taskRecs = append(taskRecs, rec)
				}
				busyMu.Unlock()
				if tc.charged > 0 {
					c.release(m, tc.charged)
				}
				<-mm.sem
				c.metrics.TasksRun.Add(1)
				if err == nil {
					return
				}
				if retryable {
					c.metrics.TaskRetries.Add(1)
					lastFailed = m
					continue
				}
				setErr(err)
				return
			}
		}(p)
	}
	wg.Wait()
	// Critical-path accounting: the stage is as slow as its busiest machine.
	var critical time.Duration
	for _, b := range busy {
		perCore := b / time.Duration(c.cfg.CoresPerMachine)
		if perCore > critical {
			critical = perCore
		}
	}
	var maxTask, medianTask time.Duration
	if len(durs) > 0 {
		slices.Sort(durs) // durs is dead after the rollup; sort in place
		maxTask = durs[len(durs)-1]
		medianTask = durs[len(durs)/2]
	}
	c.simMu.Lock()
	c.simTime += critical
	c.stageLog = append(c.stageLog, StageRecord{
		Name:          name,
		Tag:           tag,
		Tasks:         parts,
		Start:         stageStart.Sub(c.start),
		Wall:          time.Since(stageStart),
		Critical:      critical,
		Retries:       retries,
		BytesShuffled: shuffled,
		BytesSpilled:  spilled,
		BytesWasted:   wasted,
		MaxTask:       maxTask,
		MedianTask:    medianTask,
		TransientPeak: transientPeak,
	})
	c.taskLog = append(c.taskLog, taskRecs...)
	c.recoveries = append(c.recoveries, recEvents...)
	c.simMu.Unlock()
	return firstErr
}

// StageLog returns a copy of the per-stage execution records, in order.
func (c *Cluster) StageLog() []StageRecord {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return append([]StageRecord(nil), c.stageLog...)
}

// StageLogLen returns the number of stages executed so far; together with
// StageLogSince it lets drivers attribute stages to algorithm phases without
// copying the whole log each iteration.
func (c *Cluster) StageLogLen() int {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return len(c.stageLog)
}

// StageLogSince returns a copy of the stage records from index mark on.
func (c *Cluster) StageLogSince(mark int) []StageRecord {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	if mark < 0 || mark > len(c.stageLog) {
		mark = len(c.stageLog)
	}
	return append([]StageRecord(nil), c.stageLog[mark:]...)
}

// SetStageTag labels every subsequently executed stage (and its task records)
// with tag — the hook iterative drivers use to mark which iteration/phase a
// stage belongs to. An empty tag clears it.
func (c *Cluster) SetStageTag(tag string) {
	c.simMu.Lock()
	c.stageTag = tag
	c.simMu.Unlock()
}

// Trace returns a copy of the per-task records. It is empty unless the
// cluster was built with Config.TaskTrace.
func (c *Cluster) Trace() []TaskRecord {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return append([]TaskRecord(nil), c.taskLog...)
}

// RecordDriverSpan appends a named span of driver-side work that started at
// start and lasted d, labeled with the current stage tag. Driver algebra is
// invisible to stage accounting — this is how it enters the trace.
func (c *Cluster) RecordDriverSpan(name string, start time.Time, d time.Duration) {
	c.simMu.Lock()
	c.driverSpans = append(c.driverSpans, DriverSpan{
		Name:  name,
		Tag:   c.stageTag,
		Start: start.Sub(c.start),
		Dur:   d,
	})
	c.simMu.Unlock()
}

// DriverSpans returns a copy of the recorded driver-side spans, in order.
func (c *Cluster) DriverSpans() []DriverSpan {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return append([]DriverSpan(nil), c.driverSpans...)
}
