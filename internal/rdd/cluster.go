// Package rdd is an in-process, Spark-like distributed dataflow engine: the
// substrate this reproduction runs DisTenC and its baselines on in place of a
// real Spark cluster.
//
// The engine provides lazy, lineage-backed resilient distributed datasets
// with narrow transformations (Map, Filter, FlatMap, MapPartitions), wide
// shuffle transformations on key-value RDDs (ReduceByKey, AggregateByKey,
// GroupByKey, Join, CoGroup, PartitionBy), broadcast variables, explicit
// caching, and actions (Collect, Count, Reduce).
//
// What makes it a useful experimental substrate rather than a toy:
//
//   - Machines are simulated: partitions have stable placement on M logical
//     machines, each with a worker pool of CoresPerMachine goroutines, so
//     machine-scalability experiments measure real parallel speedup.
//   - Every machine has a memory budget. Cached partitions and declared
//     transient allocations are charged against it; exceeding the budget
//     fails the job with ErrOutOfMemory — reproducing the O.O.M. frontier of
//     the paper's Figure 3.
//   - Shuffled and broadcast data is really serialized (encoding/gob), so the
//     engine reports honest byte counts for the paper's Lemma 3 accounting.
//   - ModeMapReduce spills every shuffle through the filesystem and disables
//     in-memory caching (forcing lineage recomputation each stage), which is
//     exactly the Hadoop penalty the paper attributes SCouT's and
//     FlexiFact's slowness to.
//   - Tasks that fail with a retryable error (fault injection, used in
//     tests) are re-run on another machine from lineage, like Spark's task
//     retry.
package rdd

import (
	"errors"
	"fmt"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the execution backend the engine models.
type Mode int

const (
	// ModeInMemory is Spark-like: shuffles stay in memory, caching works.
	ModeInMemory Mode = iota
	// ModeMapReduce is Hadoop-like: shuffles spill to disk and Cache is a
	// no-op, so every stage recomputes its lineage.
	ModeMapReduce
)

func (m Mode) String() string {
	switch m {
	case ModeInMemory:
		return "spark"
	case ModeMapReduce:
		return "mapreduce"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes the simulated cluster.
type Config struct {
	// Machines is the number of simulated machines (default 4).
	Machines int
	// CoresPerMachine is the worker-pool width per machine (default 2).
	CoresPerMachine int
	// MemoryPerMachine is the per-machine memory budget in bytes charged by
	// cached partitions, broadcasts and declared transient allocations.
	// Zero means unlimited.
	MemoryPerMachine int64
	// Mode selects Spark-like or MapReduce-like execution.
	Mode Mode
	// DiskDir is where ModeMapReduce spills shuffle data. Empty uses a
	// temporary directory owned by the cluster.
	DiskDir string
	// DiskLatencyPerMB adds modeled disk/HDFS latency per spilled megabyte
	// (both write and read) in ModeMapReduce. Zero adds none beyond the real
	// file I/O.
	DiskLatencyPerMB time.Duration
	// SerializeTasks runs at most one task at a time across the whole
	// cluster so per-task durations are true single-core costs. Combined
	// with SimulatedTime this yields honest machine-scalability curves on
	// hosts with fewer cores than simulated machines.
	SerializeTasks bool
	// TaskTrace records one TaskRecord per task attempt (see Cluster.Trace
	// and the Chrome-trace exporter). Off by default: the per-stage rollups
	// in StageLog are always collected, the per-task log only when asked,
	// so tracing never taxes benchmark runs that don't want it.
	TaskTrace bool
	// MaxTaskRetries is the per-task retry budget for retryable failures
	// (injected faults, machine loss). 0 means the default of 2; negative
	// disables retries.
	MaxTaskRetries int
	// RetryBackoff is the base delay before re-placing a failed attempt;
	// it doubles per attempt up to RetryBackoffMax (default 8x the base).
	// Zero disables backoff.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Fault, when set, injects the seeded chaos schedule (task failures,
	// a machine kill, stragglers) described by the plan. Nil runs clean.
	Fault *FaultPlan
	// Speculation enables Spark-style speculative execution: runStage
	// watches running tasks against the completed-task duration distribution
	// and launches one backup attempt on a different healthy machine for a
	// task running far beyond it; the first finisher wins the partition's
	// commit and the loser's traffic lands in BytesWasted. Ignored under
	// SerializeTasks, whose point is uncontended single-core task costs.
	Speculation SpeculationConfig
	// Transport, when set, moves committed block images (shuffle buckets,
	// broadcast replicas, checkpoint partitions) to real worker processes
	// instead of keeping them in the driver's memory — see the Transport
	// interface. Nil selects the built-in in-process backend. The transport
	// must front exactly Machines workers and is owned by the caller, who
	// closes it after the cluster.
	Transport Transport
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 4
	}
	if c.CoresPerMachine <= 0 {
		c.CoresPerMachine = 2
	}
	return c
}

// ErrOutOfMemory is returned (wrapped) when a machine's memory budget is
// exceeded. Callers detect it with errors.Is.
var ErrOutOfMemory = errors.New("rdd: machine out of memory")

// errRetryable marks injected task failures that the scheduler should retry
// on another machine.
var errRetryable = errors.New("rdd: retryable task failure")

// Metrics aggregates engine counters for the experiment harness. The byte
// counters hold exactly-once totals: an attempt's traffic is committed only
// when the attempt succeeds, and traffic from attempts that failed (or whose
// machine died mid-run) is reattributed to BytesWasted instead, so Lemma 3
// accounting is not overstated under retry.
type Metrics struct {
	BytesShuffled  atomic.Int64
	BytesBroadcast atomic.Int64
	DiskBytesRead  atomic.Int64
	DiskBytesWrite atomic.Int64
	// BytesWasted counts shuffle+disk traffic produced by failed task
	// attempts — work that was paid for but discarded. Under speculative
	// execution it also absorbs the traffic of attempts that lost the
	// commit race to a faster duplicate.
	BytesWasted atomic.Int64
	// BytesRecomputed counts shuffle traffic re-generated while rebuilding a
	// dead machine's lost map outputs from lineage. It is kept out of
	// BytesShuffled so the Lemma 3 totals of a run that survived a kill stay
	// bit-equal to a failure-free run: the original bytes were already
	// counted when the first map attempt committed.
	BytesRecomputed atomic.Int64
	TasksRun        atomic.Int64
	TaskRetries     atomic.Int64
	// SpeculativeTasks counts backup attempts launched by speculative
	// execution (winners and losers alike).
	SpeculativeTasks atomic.Int64
	Stages           atomic.Int64
}

// Snapshot returns a plain-struct copy for reporting.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		BytesShuffled:    m.BytesShuffled.Load(),
		BytesBroadcast:   m.BytesBroadcast.Load(),
		DiskBytesRead:    m.DiskBytesRead.Load(),
		DiskBytesWrite:   m.DiskBytesWrite.Load(),
		BytesWasted:      m.BytesWasted.Load(),
		BytesRecomputed:  m.BytesRecomputed.Load(),
		TasksRun:         m.TasksRun.Load(),
		TaskRetries:      m.TaskRetries.Load(),
		SpeculativeTasks: m.SpeculativeTasks.Load(),
		Stages:           m.Stages.Load(),
	}
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	BytesShuffled    int64
	BytesBroadcast   int64
	DiskBytesRead    int64
	DiskBytesWrite   int64
	BytesWasted      int64
	BytesRecomputed  int64
	TasksRun         int64
	TaskRetries      int64
	SpeculativeTasks int64
	Stages           int64
}

// Sub returns m - o field-wise (for per-phase deltas).
func (m MetricsSnapshot) Sub(o MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		BytesShuffled:    m.BytesShuffled - o.BytesShuffled,
		BytesBroadcast:   m.BytesBroadcast - o.BytesBroadcast,
		DiskBytesRead:    m.DiskBytesRead - o.DiskBytesRead,
		DiskBytesWrite:   m.DiskBytesWrite - o.DiskBytesWrite,
		BytesWasted:      m.BytesWasted - o.BytesWasted,
		BytesRecomputed:  m.BytesRecomputed - o.BytesRecomputed,
		TasksRun:         m.TasksRun - o.TasksRun,
		TaskRetries:      m.TaskRetries - o.TaskRetries,
		SpeculativeTasks: m.SpeculativeTasks - o.SpeculativeTasks,
		Stages:           m.Stages - o.Stages,
	}
}

type machine struct {
	id   int
	sem  chan struct{} // CoresPerMachine slots
	dead atomic.Bool   // set by KillMachine; the scheduler skips dead machines
	mu   sync.Mutex
	used int64
	peak int64
}

// Cluster is the simulated cluster: the driver plus M machines.
type Cluster struct {
	cfg          Config
	machines     []*machine
	metrics      Metrics
	start        time.Time    // all trace timestamps are offsets from this
	planFailures atomic.Int64 // fault-plan task failures injected so far
	// attempts tracks every in-flight task attempt, including speculative
	// losers that outlive their stage; Quiesce waits for it.
	attempts sync.WaitGroup
	// arenas pools per-(machine, stage, partition) slab arenas across task
	// attempts so steady-state iterations reuse scratch memory (see Arena).
	arenas arenaPool

	mu         sync.Mutex
	nextID     int64
	tmpDir     string
	ownsTmp    bool
	closed     bool
	failOnce   map[string]int           // stage-name prefix -> remaining injected failures
	evictors   map[int64]machineEvictor // storage holders notified by KillMachine
	ckptFiles  map[int64][]string       // Checkpoint files to delete on Unpersist/Close
	ckptRemote map[int64]struct{}       // worker-held Checkpoints to Drop on Unpersist/Close

	serialMu    sync.Mutex // held per task when SerializeTasks is set
	simMu       sync.Mutex
	simTime     time.Duration
	stageTag    string
	stageLog    []StageRecord
	taskLog     []TaskRecord
	driverSpans []DriverSpan
	recoveries  []RecoveryEvent
}

// StageRecord summarizes one executed stage for the StageLog: scheduling
// shape (tasks, wall, critical path), the byte traffic the stage generated,
// retry counts, and the max-vs-median task-time skew that reveals stragglers
// and load imbalance.
type StageRecord struct {
	Name     string
	Tag      string // iteration/phase label set via SetStageTag
	Tasks    int
	Start    time.Duration // offset from cluster creation
	Wall     time.Duration
	Critical time.Duration // per-machine busy-time critical path
	Retries  int           // task attempts re-run from lineage in this stage
	// BytesShuffled counts shuffle traffic generated by this stage's tasks
	// (map-side serialized blocks plus declared row shipments).
	BytesShuffled int64
	// BytesSpilled counts disk bytes read+written by this stage's tasks
	// (ModeMapReduce shuffle spills, checkpoints).
	BytesSpilled int64
	// BytesWasted counts shuffle+disk bytes produced by this stage's failed
	// task attempts — and, under speculation, by attempts that lost the
	// commit race — then discarded (exactly-once accounting keeps them out
	// of BytesShuffled/BytesSpilled).
	BytesWasted int64
	// BytesRecomputed counts shuffle bytes re-encoded by this stage's tasks
	// while rebuilding lost map outputs from lineage (recovery traffic, not
	// new shuffle volume — see Metrics.BytesRecomputed).
	BytesRecomputed int64
	// SpeculativeTasks counts backup attempts this stage launched for
	// suspected stragglers.
	SpeculativeTasks int
	// MaxTask and MedianTask summarize the task run-time distribution;
	// their ratio (Skew) is the straggler indicator.
	MaxTask    time.Duration
	MedianTask time.Duration
	// TransientPeak is the largest task-scoped memory any single task of the
	// stage declared via ChargeTransient.
	TransientPeak int64
}

// Skew returns MaxTask/MedianTask (1 when the stage ran a single task or the
// median rounds to zero) — the load-balance figure the greedy partitioner of
// Algorithm 2 exists to keep near 1.
func (s StageRecord) Skew() float64 {
	if s.MedianTask <= 0 {
		return 1
	}
	return float64(s.MaxTask) / float64(s.MedianTask)
}

// TaskRecord describes one task attempt, recorded when Config.TaskTrace is
// set. Queue is the wait for a core slot before the task body ran; Run is the
// body itself; both locate the attempt on the cluster timeline via Start
// (offset from cluster creation, when the body began).
type TaskRecord struct {
	Stage         string
	Tag           string // stage tag at the time the stage ran
	Partition     int
	Attempt       int // 0 on first execution, >0 for lineage re-runs
	Machine       int
	Start         time.Duration
	Queue         time.Duration
	Run           time.Duration
	TransientPeak int64  // memory declared via ChargeTransient
	BytesShuffled int64  // shuffle bytes this attempt produced
	BytesSpilled  int64  // disk bytes this attempt read+wrote
	Speculative   bool   // true for backup attempts launched by speculation
	Error         string // "" on success; the attempt's error otherwise
}

// DriverSpan is a named span of driver-side work (dense algebra, result
// assembly) recorded by the algorithm via RecordDriverSpan so single-threaded
// driver time shows up next to the cluster stages in traces.
type DriverSpan struct {
	Name  string
	Tag   string
	Start time.Duration // offset from cluster creation
	Dur   time.Duration
}

// NewCluster builds a cluster from cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport != nil && cfg.Transport.Workers() != cfg.Machines {
		return nil, fmt.Errorf("rdd: transport fronts %d workers but the cluster has %d machines",
			cfg.Transport.Workers(), cfg.Machines)
	}
	c := &Cluster{cfg: cfg, failOnce: map[string]int{}, start: time.Now()}
	for i := 0; i < cfg.Machines; i++ {
		c.machines = append(c.machines, &machine{
			id:  i,
			sem: make(chan struct{}, cfg.CoresPerMachine),
		})
	}
	if cfg.Mode == ModeMapReduce {
		dir := cfg.DiskDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "distenc-shuffle-")
			if err != nil {
				return nil, fmt.Errorf("rdd: creating shuffle dir: %w", err)
			}
			c.ownsTmp = true
		}
		c.tmpDir = dir
	}
	return c, nil
}

// MustNewCluster is NewCluster panicking on error, for tests and examples.
func MustNewCluster(cfg Config) *Cluster {
	c, err := NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Quiesce blocks until every task attempt has finished running, including
// speculative losers that outlived their stage (a stage resolves as soon as
// each partition has a winner; the losing duplicates keep running and fold
// their traffic into BytesWasted when they drain). Call it before comparing
// metric totals; Close quiesces automatically.
func (c *Cluster) Quiesce() { c.attempts.Wait() }

// Close releases the cluster's on-disk shuffle space, including any
// Checkpoint files still alive in a caller-owned DiskDir. It first waits for
// any straggling speculative attempts so nothing races the teardown.
func (c *Cluster) Close() error {
	c.Quiesce()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	remote := make([]int64, 0, len(c.ckptRemote))
	for id := range c.ckptRemote {
		remote = append(remote, id)
	}
	c.ckptRemote = nil
	ownsTmp, tmpDir := c.ownsTmp, c.tmpDir
	files := c.ckptFiles
	c.ckptFiles = nil
	c.mu.Unlock()
	for _, id := range remote {
		c.dropRemoteBlocks(id)
	}
	if ownsTmp && tmpDir != "" {
		return os.RemoveAll(tmpDir)
	}
	for _, paths := range files {
		removeCheckpointFiles(paths)
	}
	return nil
}

// Config returns the (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Machines returns the simulated machine count.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// Metrics exposes the engine counters.
func (c *Cluster) Metrics() *Metrics { return &c.metrics }

// PeakMemory returns the maximum bytes ever charged to machine m.
func (c *Cluster) PeakMemory(m int) int64 {
	mm := c.machines[m]
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.peak
}

// MaxPeakMemory returns the largest per-machine peak.
func (c *Cluster) MaxPeakMemory() int64 {
	var mx int64
	for i := range c.machines {
		if p := c.PeakMemory(i); p > mx {
			mx = p
		}
	}
	return mx
}

// UsedMemory returns the bytes currently charged to machine m.
func (c *Cluster) UsedMemory(m int) int64 {
	mm := c.machines[m]
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.used
}

func (c *Cluster) newID() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

// writeFileAtomic writes data to path via a unique temp file and rename, so
// two speculative attempts racing on the same deterministic block path never
// interleave partial writes — the loser's rename just reinstalls identical
// bytes. The temp file is fsynced before the rename: without it a crash
// after the rename could leave the new name pointing at data the kernel never
// flushed — a torn block that a later read (or a Resume) would trust. A
// failed rename removes the temp file rather than leaking *.tmpN residue.
//
//distenc:accounted -- callers attribute the spill via countSpillWrite at the call site
func (c *Cluster) writeFileAtomic(path string, data []byte) error {
	tmp := fmt.Sprintf("%s.tmp%d", path, c.newID())
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// writeFrameFileAtomic writes data to path as a single length-prefixed frame
// (see ReadFrame), atomically. Spill blocks and checkpoint images go through
// here so a torn file — truncated by a crash between write and flush — is
// detected by the frame reader instead of being parsed as a shorter block.
//
//distenc:accounted -- callers attribute the spill via countSpillWrite at the call site
func (c *Cluster) writeFrameFileAtomic(path string, data []byte) error {
	return c.writeFileAtomic(path, AppendFrame(make([]byte, 0, 4+len(data)), data))
}

// charge reserves bytes on machine m, failing with ErrOutOfMemory if the
// budget would be exceeded.
func (c *Cluster) charge(m int, bytes int64) error {
	if bytes < 0 {
		panic("rdd: negative charge")
	}
	mm := c.machines[m]
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if c.cfg.MemoryPerMachine > 0 && mm.used+bytes > c.cfg.MemoryPerMachine {
		return fmt.Errorf("rdd: machine %d needs %d bytes over budget %d (used %d): %w",
			m, bytes, c.cfg.MemoryPerMachine, mm.used, ErrOutOfMemory)
	}
	mm.used += bytes
	if mm.used > mm.peak {
		mm.peak = mm.used
	}
	return nil
}

func (c *Cluster) release(m int, bytes int64) {
	mm := c.machines[m]
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.used -= bytes
	if mm.used < 0 {
		mm.used = 0
	}
}

// SimulatedTime returns the accumulated critical-path execution time of all
// stages run so far: per stage, the maximum over machines of that machine's
// total task time divided by its core count. On a host with fewer physical
// cores than simulated machines (where real wall-clock cannot show parallel
// speedup) this is the honest scalability measure — use it together with
// Config.SerializeTasks so the per-task durations are uncontended.
func (c *Cluster) SimulatedTime() time.Duration {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return c.simTime
}

// Charge reserves bytes on machine m for an algorithm-declared allocation
// (e.g. a baseline's dense intermediate that a real run would materialize).
// The caller must Release it. Returns ErrOutOfMemory (wrapped) over budget.
func (c *Cluster) Charge(m int, bytes int64) error { return c.charge(m, bytes) }

// Release returns bytes previously reserved with Charge on machine m.
func (c *Cluster) Release(m int, bytes int64) { c.release(m, bytes) }

// InjectTaskFailures makes the next n tasks of stages whose name starts with
// stagePrefix fail with a retryable error — the fault-injection hook used to
// exercise lineage-based recovery.
func (c *Cluster) InjectTaskFailures(stagePrefix string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failOnce[stagePrefix] = n
}

// shouldFail consumes one injected failure for stage if any registered prefix
// matches. With several matching prefixes the longest one is charged —
// deterministic, unlike iterating the map, whose order would make which
// prefix's budget is decremented (and thus which later stage fails) vary
// run-to-run.
func (c *Cluster) shouldFail(stage string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	best := ""
	found := false
	for prefix, n := range c.failOnce {
		if n > 0 && strings.HasPrefix(stage, prefix) && (!found || len(prefix) > len(best)) {
			best, found = prefix, true
		}
	}
	if found {
		c.failOnce[best]--
	}
	return found
}

// TaskCtx is handed to every task; it identifies the machine the task runs on
// and lets the task declare transient memory it would allocate on a real
// cluster (charged for the task's duration). It also buffers the task's own
// byte traffic: counters are committed to the cluster Metrics only if the
// attempt succeeds (failed attempts land in BytesWasted instead), which is
// what makes the engine's accounting exactly-once under retry.
type TaskCtx struct {
	Machine    int
	c          *Cluster
	stage      string // stage name, part of the arena pool key
	part       int    // partition index, part of the arena pool key
	arena      *Arena // lazily checked out; returned to the pool at attempt end
	charged    int64
	shuffled   int64
	recomputed int64
	spillRead  int64
	spillWrite int64
	// recomputeDepth > 0 while the task is re-running lost lineage (see
	// exchange.recompute): CountShuffled calls inside the window are routed
	// to the recomputed buffer so recovery traffic never re-enters the
	// Lemma 3 BytesShuffled totals.
	recomputeDepth int
	onSuccess      []func()
}

// ChargeTransient reserves task-scoped memory on the task's machine. It is
// released automatically when the task finishes.
func (tc *TaskCtx) ChargeTransient(bytes int64) error {
	if err := tc.c.charge(tc.Machine, bytes); err != nil {
		return err
	}
	tc.charged += bytes
	return nil
}

// CountShuffled records bytes of shuffle traffic produced by this task,
// feeding the cluster-wide Metrics counter (on attempt success) and the
// per-task/per-stage rollups. Algorithm code that models traffic the engine
// does not serialize itself (e.g. factor rows shipped to a block) reports it
// here.
func (tc *TaskCtx) CountShuffled(bytes int64) {
	if tc.recomputeDepth > 0 {
		tc.recomputed += bytes
		return
	}
	tc.shuffled += bytes
}

// beginRecompute / endRecompute bracket a lineage-recompute window (nesting
// allowed: recomputing one shuffle's map output can fault in an upstream
// shuffle's). TaskCtx is goroutine-local, so a plain counter suffices.
func (tc *TaskCtx) beginRecompute() { tc.recomputeDepth++ }
func (tc *TaskCtx) endRecompute()   { tc.recomputeDepth-- }

// countSpillWrite / countSpillRead attribute disk traffic to the task.
func (tc *TaskCtx) countSpillWrite(bytes int64) {
	tc.spillWrite += bytes
}

func (tc *TaskCtx) countSpillRead(bytes int64) {
	tc.spillRead += bytes
}

// spilled is the attempt's total disk traffic.
func (tc *TaskCtx) spilled() int64 { return tc.spillRead + tc.spillWrite }

// OnSuccess registers f to run exactly once if (and only if) this task
// attempt completes successfully — the hook for side effects that must not
// double-apply when an attempt fails and is retried from lineage. Accumulator
// adds route through it via AddOnSuccess.
func (tc *TaskCtx) OnSuccess(f func()) {
	tc.onSuccess = append(tc.onSuccess, f)
}

// commit folds the attempt's buffered counters into the cluster metrics and
// fires the deferred success hooks. Called by runStage on success only.
func (tc *TaskCtx) commit() {
	m := &tc.c.metrics
	if tc.shuffled > 0 {
		m.BytesShuffled.Add(tc.shuffled)
	}
	if tc.recomputed > 0 {
		m.BytesRecomputed.Add(tc.recomputed)
	}
	if tc.spillRead > 0 {
		m.DiskBytesRead.Add(tc.spillRead)
	}
	if tc.spillWrite > 0 {
		m.DiskBytesWrite.Add(tc.spillWrite)
	}
	for _, f := range tc.onSuccess {
		f()
	}
	tc.onSuccess = nil
}

// Cluster returns the cluster the task runs on.
func (tc *TaskCtx) Cluster() *Cluster { return tc.c }

// Arena returns the attempt's slab arena, checking one out of the cluster
// pool (keyed by machine, stage, and partition) and resetting it on first
// use. Lineage recomputes that re-enter an upstream closure inside the same
// attempt share the attempt's arena without an intervening reset, so the
// downstream closure's live slabs are never clobbered; the arena is checked
// back in when the attempt finishes. See Arena for the lifetime contract.
func (tc *TaskCtx) Arena() *Arena {
	if tc.arena == nil {
		tc.arena = tc.c.arenas.checkout(arenaKey{tc.Machine, tc.stage, tc.part})
		tc.arena.Reset()
	}
	return tc.arena
}

// defaultMaxTaskRetries is the retry budget when Config.MaxTaskRetries is 0.
const defaultMaxTaskRetries = 2

// maxRetries resolves the configured per-task retry budget.
func (c *Cluster) maxRetries() int {
	switch {
	case c.cfg.MaxTaskRetries > 0:
		return c.cfg.MaxTaskRetries
	case c.cfg.MaxTaskRetries < 0:
		return 0
	default:
		return defaultMaxTaskRetries
	}
}

// stageState carries one executing stage's shared scheduler state: the
// rollups folded into its StageRecord, the resolution WaitGroup (one Done per
// partition, fired by the commit-race winner or a fatal failure), and — once
// the stage closed its record — the log index late-finishing speculative
// losers fold their waste into.
type stageState struct {
	c     *Cluster
	name  string
	tag   string
	parts int
	start time.Time
	wg    sync.WaitGroup // counts unresolved partitions
	done  chan struct{}  // closed after wg.Wait; stops the speculation monitor

	errMu    sync.Mutex
	firstErr error

	mu            sync.Mutex
	closed        bool // StageRecord appended; late attempts go via logIdx
	logIdx        int
	busy          []time.Duration
	durs          []time.Duration
	winDurs       []time.Duration // committed-attempt durations (speculation baseline)
	shuffled      int64
	spilled       int64
	recomputed    int64
	wasted        int64
	transientPeak int64
	retries       int
	specLaunches  int
	taskRecs      []TaskRecord
	recEvents     []RecoveryEvent
}

func (st *stageState) setErr(err error) {
	st.errMu.Lock()
	if st.firstErr == nil {
		st.firstErr = err
	}
	st.errMu.Unlock()
}

func (st *stageState) err() error {
	st.errMu.Lock()
	defer st.errMu.Unlock()
	return st.firstErr
}

func (st *stageState) aborted() bool { return st.err() != nil }

// resolve marks the partition settled (winner committed, or its primary chain
// failed fatally) and releases the stage's wait on it. Idempotent: winner,
// late-failing primary and abort paths may all reach it.
func (st *stageState) resolve(ps *partState) {
	ps.mu.Lock()
	first := !ps.resolved
	ps.resolved = true
	ps.mu.Unlock()
	if first {
		st.wg.Done()
	}
}

func (st *stageState) fail(ps *partState, err error) {
	st.setErr(err)
	st.resolve(ps)
}

// partState is the per-partition commit race: exactly one attempt flips
// committed and gets to run its TaskCtx.commit. The body fields let the
// speculation monitor see how long the primary attempt has been running and
// where, without touching the attempt goroutine.
type partState struct {
	mu           sync.Mutex
	committed    bool
	resolved     bool
	specLaunched bool
	bodyRunning  bool
	bodyStart    time.Time
	bodyMachine  int
}

func (ps *partState) isCommitted() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.committed
}

func (ps *partState) bodyStarted(m int, at time.Time) {
	ps.mu.Lock()
	ps.bodyRunning = true
	ps.bodyStart = at
	ps.bodyMachine = m
	ps.mu.Unlock()
}

func (ps *partState) bodyEnded() {
	ps.mu.Lock()
	ps.bodyRunning = false
	ps.mu.Unlock()
}

// runStage executes parts tasks across the machines (partition p prefers
// machine p mod M, like Spark preferred locations) and waits for all of them.
// Tasks failing with errRetryable — injected faults, or attempts whose
// machine was killed while they ran — are re-placed on another healthy
// machine (capped exponential backoff, never the machine that just failed
// when an alternative exists) and recomputed from lineage, up to the
// configured retry budget; other errors abort the stage. With speculation
// enabled a monitor goroutine additionally launches one backup attempt per
// suspected straggler; the first finisher wins the partition.
//
// Exactly-once contract: each partition has a single commit flag, so exactly
// one attempt's byte counters and deferred OnSuccess hooks are committed;
// every other attempt's traffic — failed, or a healthy duplicate that lost
// the race — is reattributed to BytesWasted and its hooks are dropped.
func (c *Cluster) runStage(name string, parts int, task func(tc *TaskCtx, p int) error) error {
	stageIdx := c.metrics.Stages.Add(1) - 1
	c.maybePlanKill(stageIdx)
	c.simMu.Lock()
	tag := c.stageTag
	c.simMu.Unlock()

	st := &stageState{
		c:     c,
		name:  name,
		tag:   tag,
		parts: parts,
		start: time.Now(),
		busy:  make([]time.Duration, c.cfg.Machines),
		durs:  make([]time.Duration, 0, parts),
	}
	states := make([]*partState, parts)
	for p := range states {
		states[p] = &partState{}
	}
	st.wg.Add(parts)

	if c.speculating() && parts > 1 {
		st.done = make(chan struct{})
		// The monitor joins the attempts group so Quiesce waits for it: it
		// exits on st.done, which closes right after st.wg.Wait below, so it
		// never outlives the stage — but without the Add a Close racing the
		// tail of a stage could tear down machines under a live monitor.
		c.attempts.Add(1)
		go func() {
			defer c.attempts.Done()
			c.speculationMonitor(st, states, task)
		}()
	}

	for p := 0; p < parts; p++ {
		c.attempts.Add(1)
		go func(p int) {
			defer c.attempts.Done()
			c.runPrimary(st, states[p], task, p)
		}(p)
	}
	st.wg.Wait()
	if st.done != nil {
		close(st.done)
	}

	st.mu.Lock()
	// Critical-path accounting: the stage is as slow as its busiest machine.
	var critical time.Duration
	for _, b := range st.busy {
		perCore := b / time.Duration(c.cfg.CoresPerMachine)
		if perCore > critical {
			critical = perCore
		}
	}
	var maxTask, medianTask time.Duration
	if len(st.durs) > 0 {
		slices.Sort(st.durs) // durs is dead after the rollup; sort in place
		maxTask = st.durs[len(st.durs)-1]
		medianTask = st.durs[len(st.durs)/2]
	}
	rec := StageRecord{
		Name:             name,
		Tag:              tag,
		Tasks:            parts,
		Start:            st.start.Sub(c.start),
		Wall:             time.Since(st.start),
		Critical:         critical,
		Retries:          st.retries,
		BytesShuffled:    st.shuffled,
		BytesSpilled:     st.spilled,
		BytesWasted:      st.wasted,
		BytesRecomputed:  st.recomputed,
		SpeculativeTasks: st.specLaunches,
		MaxTask:          maxTask,
		MedianTask:       medianTask,
		TransientPeak:    st.transientPeak,
	}
	taskRecs, recEvents := st.taskRecs, st.recEvents
	st.taskRecs, st.recEvents = nil, nil
	c.simMu.Lock()
	c.simTime += critical
	st.logIdx = len(c.stageLog)
	c.stageLog = append(c.stageLog, rec)
	c.taskLog = append(c.taskLog, taskRecs...)
	c.recoveries = append(c.recoveries, recEvents...)
	c.simMu.Unlock()
	st.closed = true
	st.mu.Unlock()
	return st.err()
}

// runPrimary drives a partition's primary attempt chain: place, run, retry on
// retryable failure, resolve the partition on success or fatal error. If a
// speculative backup commits the partition first, the chain stands down.
func (c *Cluster) runPrimary(st *stageState, ps *partState, task func(tc *TaskCtx, p int) error, p int) {
	lastFailed := -1
	for attempt := 0; ; attempt++ {
		if st.aborted() || ps.isCommitted() {
			st.resolve(ps)
			return
		}
		m, perr := c.placeTask(p, attempt, lastFailed)
		if perr != nil {
			st.fail(ps, perr)
			return
		}
		err, willRetry := c.runAttempt(st, ps, task, p, attempt, m, false)
		if err == nil {
			return // the attempt resolved the partition (won, or lost silently)
		}
		if willRetry {
			c.metrics.TaskRetries.Add(1)
			lastFailed = m
			continue
		}
		if ps.isCommitted() {
			// A backup won while this chain was failing out; the partition is
			// already settled, so the failure is not fatal.
			st.resolve(ps)
			return
		}
		st.fail(ps, err)
		return
	}
}

// speculativeAttempt is the Attempt number recorded for backup attempts. It
// is far above any retry budget, so the deterministic fault plan (which only
// fails or straggles attempt 0) never injects faults into backups.
const speculativeAttempt = 1000

// errObsolete marks an attempt skipped without running because the
// partition's race was already decided when it reached a core.
var errObsolete = errors.New("rdd: attempt obsolete; partition already committed")

// runAttempt executes one task attempt — primary or speculative backup — on
// machine m: runs the body, enters the commit race on success, folds the
// attempt's byte counters into the committed or wasted rollups accordingly,
// and resolves the partition if it settled it. Returns the attempt's error
// and whether the primary chain should retry it.
func (c *Cluster) runAttempt(st *stageState, ps *partState, task func(tc *TaskCtx, p int) error, p, attempt, m int, speculative bool) (error, bool) {
	mm := c.machines[m]
	enqueued := time.Now()
	if !speculative {
		c.backoff(attempt)
	}
	mm.sem <- struct{}{}
	if ps.isCommitted() {
		// The race was decided while this attempt waited for a core: don't
		// burn the core on a doomed body.
		<-mm.sem
		if !speculative {
			st.resolve(ps)
		}
		return errObsolete, false
	}
	if c.cfg.SerializeTasks {
		c.serialMu.Lock()
	}
	tc := &TaskCtx{Machine: m, c: c, stage: st.name, part: p}
	taskStart := time.Now()
	if !speculative {
		ps.bodyStarted(m, taskStart)
	}
	var err error
	switch {
	case c.shouldFail(st.name):
		err = fmt.Errorf("rdd: injected failure in stage %q task %d on machine %d: %w", st.name, p, m, errRetryable)
	case c.planShouldFail(st.name, p, attempt):
		err = fmt.Errorf("rdd: fault-plan failure in stage %q task %d on machine %d: %w", st.name, p, m, errRetryable)
	default:
		//distenc:lockheld-ok -- SerializeTasks runs whole task bodies (straggle injection included) under serialMu by design; the lock IS the serializer
		c.planStraggle(st.name, p, attempt)
		err = task(tc, p)
		if err == nil && c.machineDead(m) {
			// The machine died under the running task: its result
			// is gone with the machine, so discard and retry.
			err = fmt.Errorf("rdd: machine %d died while running stage %q task %d: %w", m, st.name, p, errRetryable)
		}
	}
	dur := time.Since(taskStart)
	if !speculative {
		ps.bodyEnded()
	}
	if c.cfg.SerializeTasks {
		c.serialMu.Unlock()
	}

	// The commit race: exactly one successful attempt per partition wins.
	won := false
	if err == nil {
		ps.mu.Lock()
		if !ps.committed {
			ps.committed = true
			won = true
		}
		ps.mu.Unlock()
	}
	raceDecided := won || ps.isCommitted()
	willRetry := err != nil && errors.Is(err, errRetryable) &&
		!speculative && attempt < c.maxRetries() && !raceDecided
	if won {
		// Hooks must fire before the partition resolves: the driver reads
		// hook-installed results as soon as the stage returns.
		tc.commit()
	}
	st.recordAttempt(tc, m, p, attempt, dur, taskStart, enqueued, err, won, willRetry, speculative)
	if won {
		st.resolve(ps)
	}
	if tc.charged > 0 {
		c.release(m, tc.charged)
	}
	if tc.arena != nil {
		// Returned only after the commit fired: hook-installed results may be
		// arena-backed, and the driver consumes them before the next attempt
		// of this (machine, stage, partition) key resets the slabs.
		c.arenas.checkin(arenaKey{m, st.name, p}, tc.arena)
		tc.arena = nil
	}
	<-mm.sem
	c.metrics.TasksRun.Add(1)
	if err == nil && !won {
		// A healthy duplicate that lost: the winner already resolved the
		// partition; this attempt's work was wasted but nothing failed.
		st.resolve(ps)
	}
	return err, willRetry
}

// recordAttempt folds one finished attempt into the stage rollups (and the
// cluster waste counter for losers). If the stage already closed its record —
// a speculative race left this attempt running past stage resolution — the
// waste is folded into the published StageRecord instead, so per-stage
// rollups keep summing to the cluster totals. Speculative wins and losses are
// logged as recovery events here, where the race outcome is known.
func (st *stageState) recordAttempt(tc *TaskCtx, m, p, attempt int, dur time.Duration, taskStart, enqueued time.Time, err error, won, willRetry, speculative bool) {
	c := st.c
	waste := int64(0)
	if !won {
		waste = tc.shuffled + tc.recomputed + tc.spilled()
		if waste > 0 {
			c.metrics.BytesWasted.Add(waste)
		}
	}
	var rec *TaskRecord
	if c.cfg.TaskTrace {
		rec = &TaskRecord{
			Stage:         st.name,
			Tag:           st.tag,
			Partition:     p,
			Attempt:       attempt,
			Machine:       m,
			Start:         taskStart.Sub(c.start),
			Queue:         taskStart.Sub(enqueued),
			Run:           dur,
			TransientPeak: tc.charged,
			BytesShuffled: tc.shuffled + tc.recomputed,
			BytesSpilled:  tc.spilled(),
			Speculative:   speculative,
		}
		if err != nil {
			rec.Error = err.Error()
		}
	}
	var ev *RecoveryEvent
	switch {
	case willRetry:
		ev = &RecoveryEvent{Kind: RecoveryTaskRetry, Cause: err.Error()}
	case speculative && won:
		ev = &RecoveryEvent{
			Kind:  RecoverySpeculativeWin,
			Cause: "backup attempt finished first; primary attempt's work discarded",
		}
	case err == nil && !won,
		speculative && err != nil:
		cause := "duplicate attempt lost the commit race"
		if err != nil {
			cause = err.Error()
		}
		ev = &RecoveryEvent{Kind: RecoverySpeculativeLoss, Cause: cause}
	}
	if ev != nil {
		ev.Stage, ev.Partition, ev.Machine, ev.Attempt = st.name, p, m, attempt
		ev.Cost = dur
		ev.At = taskStart.Sub(c.start)
	}

	st.mu.Lock()
	if !st.closed {
		st.busy[m] += dur
		st.durs = append(st.durs, dur)
		if won {
			st.winDurs = append(st.winDurs, dur)
			st.shuffled += tc.shuffled
			st.recomputed += tc.recomputed
			st.spilled += tc.spilled()
		} else {
			st.wasted += waste
		}
		if tc.charged > st.transientPeak {
			st.transientPeak = tc.charged
		}
		if willRetry {
			st.retries++
		}
		if rec != nil {
			st.taskRecs = append(st.taskRecs, *rec)
		}
		if ev != nil {
			st.recEvents = append(st.recEvents, *ev)
		}
		st.mu.Unlock()
		return
	}
	idx := st.logIdx
	st.mu.Unlock()
	c.simMu.Lock()
	if waste > 0 {
		c.stageLog[idx].BytesWasted += waste
	}
	if rec != nil {
		c.taskLog = append(c.taskLog, *rec)
	}
	if ev != nil {
		c.recoveries = append(c.recoveries, *ev)
	}
	c.simMu.Unlock()
}

// StageLog returns a copy of the per-stage execution records, in order.
func (c *Cluster) StageLog() []StageRecord {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return append([]StageRecord(nil), c.stageLog...)
}

// StageLogLen returns the number of stages executed so far; together with
// StageLogSince it lets drivers attribute stages to algorithm phases without
// copying the whole log each iteration.
func (c *Cluster) StageLogLen() int {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return len(c.stageLog)
}

// StageLogSince returns a copy of the stage records from index mark on.
func (c *Cluster) StageLogSince(mark int) []StageRecord {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	if mark < 0 || mark > len(c.stageLog) {
		mark = len(c.stageLog)
	}
	return append([]StageRecord(nil), c.stageLog[mark:]...)
}

// SetStageTag labels every subsequently executed stage (and its task records)
// with tag — the hook iterative drivers use to mark which iteration/phase a
// stage belongs to. An empty tag clears it.
func (c *Cluster) SetStageTag(tag string) {
	c.simMu.Lock()
	c.stageTag = tag
	c.simMu.Unlock()
}

// Trace returns a copy of the per-task records. It is empty unless the
// cluster was built with Config.TaskTrace.
func (c *Cluster) Trace() []TaskRecord {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return append([]TaskRecord(nil), c.taskLog...)
}

// RecordDriverSpan appends a named span of driver-side work that started at
// start and lasted d, labeled with the current stage tag. Driver algebra is
// invisible to stage accounting — this is how it enters the trace.
func (c *Cluster) RecordDriverSpan(name string, start time.Time, d time.Duration) {
	c.simMu.Lock()
	c.driverSpans = append(c.driverSpans, DriverSpan{
		Name:  name,
		Tag:   c.stageTag,
		Start: start.Sub(c.start),
		Dur:   d,
	})
	c.simMu.Unlock()
}

// DriverSpans returns a copy of the recorded driver-side spans, in order.
func (c *Cluster) DriverSpans() []DriverSpan {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return append([]DriverSpan(nil), c.driverSpans...)
}
