package rdd

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestShouldFailLongestPrefixDeterministic is the regression test for the
// map-iteration bug: with overlapping injected prefixes, the longest matching
// prefix's budget must be charged, every time.
func TestShouldFailLongestPrefixDeterministic(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		c := testCluster(t, Config{Machines: 1})
		c.InjectTaskFailures("collect:", 1)
		c.InjectTaskFailures("collect:mttkrp", 1)
		// Both prefixes match: the longer one must be consumed first.
		if !c.shouldFail("collect:mttkrp-reduce") {
			t.Fatal("first matching call did not fail")
		}
		c.mu.Lock()
		long, short := c.failOnce["collect:mttkrp"], c.failOnce["collect:"]
		c.mu.Unlock()
		if long != 0 || short != 1 {
			t.Fatalf("trial %d: budgets after first failure: collect:mttkrp=%d collect:=%d, want 0 and 1", trial, long, short)
		}
		// Second call still matches the short prefix.
		if !c.shouldFail("collect:mttkrp-reduce") {
			t.Fatal("second matching call did not fail")
		}
		// Budgets exhausted.
		if c.shouldFail("collect:mttkrp-reduce") {
			t.Fatal("third call failed with no budget left")
		}
	}
}

// TestExactlyOnceMetricsUnderRetry is the exactly-once regression test: disk
// and shuffle bytes produced by attempts that fail partway through must land
// in BytesWasted, not the committed counters, so a retried run's totals match
// a failure-free run. ModeMapReduce makes the reduce-side fetch produce real
// disk-read traffic before the injected mid-task failure.
func TestExactlyOnceMetricsUnderRetry(t *testing.T) {
	run := func(inject bool) (*Cluster, MetricsSnapshot) {
		c := testCluster(t, Config{Machines: 3, Mode: ModeMapReduce})
		pairs := make([]KV[int, int], 60)
		for i := range pairs {
			pairs[i] = KV[int, int]{i % 6, i}
		}
		// An explicit modulo partitioner, not the default HashPartitioner: its
		// per-process maphash seed occasionally leaves partition 0 without any
		// key, and the injected failure below must hit an attempt that already
		// charged shuffle-read traffic.
		mod := FuncPartitioner[int](func(k, parts int) int { return k % parts })
		red := ReduceByKeyPartitioned(Parallelize(c, "pairs", pairs, 6), "sums", 3, mod, func(a, b int) int { return a + b })
		var failed atomic.Bool
		out := MapPartitions(red, "post", func(tc *TaskCtx, p int, in []KV[int, int]) ([]KV[int, int], error) {
			// Fail one attempt after the shuffle fetch already charged disk
			// reads to this task.
			if inject && p == 0 && failed.CompareAndSwap(false, true) {
				return nil, errInjectedForTest(tc.Machine, p)
			}
			return in, nil
		})
		if _, err := out.Collect(); err != nil {
			t.Fatal(err)
		}
		return c, c.Metrics().Snapshot()
	}

	_, clean := run(false)
	faulted, retried := run(true)
	if retried.TaskRetries != 1 {
		t.Fatalf("retries = %d, want 1", retried.TaskRetries)
	}
	if retried.BytesShuffled != clean.BytesShuffled {
		t.Errorf("BytesShuffled %d under retry != %d clean: failed attempt leaked into the exactly-once counter",
			retried.BytesShuffled, clean.BytesShuffled)
	}
	if retried.DiskBytesRead != clean.DiskBytesRead {
		t.Errorf("DiskBytesRead %d under retry != %d clean: failed attempt's fetch leaked into the exactly-once counter",
			retried.DiskBytesRead, clean.DiskBytesRead)
	}
	if clean.BytesWasted != 0 {
		t.Errorf("clean run wasted %d bytes", clean.BytesWasted)
	}
	if retried.BytesWasted == 0 {
		t.Error("failed attempt's traffic did not land in BytesWasted")
	}
	var stageWasted int64
	for _, s := range faulted.StageLog() {
		stageWasted += s.BytesWasted
	}
	if retried.BytesWasted != stageWasted {
		t.Errorf("Metrics.BytesWasted=%d but stage rollups sum to %d", retried.BytesWasted, stageWasted)
	}
}

// TestAccumulatorExactlyOnceUnderRetry shows the two contract modes side by
// side: AddOnSuccess counts each partition exactly once under retry, while a
// plain Add before the failure point double-counts (documenting why the
// contract exists).
func TestAccumulatorExactlyOnceUnderRetry(t *testing.T) {
	c := testCluster(t, Config{Machines: 3})
	exact := NewIntAccumulator()
	leaky := NewIntAccumulator()
	var injected atomic.Int64
	r := Parallelize(c, "nums", ints(40), 4)
	err := r.ForeachPartition(func(tc *TaskCtx, p int, items []int) error {
		leaky.Add(int64(len(items)))              // plain add before the failure point: double-counts
		exact.AddOnSuccess(tc, int64(len(items))) // deferred: committed only on success
		if injected.Add(1) <= 2 {                 // fail the first two attempts after their adds ran
			return errInjectedForTest(tc.Machine, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := exact.Value(); got != 40 {
		t.Errorf("AddOnSuccess total = %d, want exactly 40", got)
	}
	// Each of the 4 partitions holds 10 items; the 2 failed attempts each
	// leaked their add, so the plain accumulator over-counts to exactly 60.
	if got := leaky.Value(); got != 60 {
		t.Errorf("plain Add total = %d; expected the documented over-count of 60", got)
	}
}

// errInjectedForTest builds a retryable failure for closures that fail after
// their side effects ran.
func errInjectedForTest(m, p int) error {
	return fmt.Errorf("injected post-add failure on machine %d task %d: %w", m, p, errRetryable)
}

// TestRetryPlacementSingleMachine: with one machine, a retry must re-land on
// it (the old (m+1)%Machines arithmetic happened to do this; the dead-machine
// skip must keep doing it).
func TestRetryPlacementSingleMachine(t *testing.T) {
	c := testCluster(t, Config{Machines: 1})
	c.InjectTaskFailures("collect:solo", 1)
	r := Parallelize(c, "solo", ints(10), 2)
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("collected %d", len(got))
	}
	if c.Metrics().TaskRetries.Load() != 1 {
		t.Fatalf("retries = %d, want 1", c.Metrics().TaskRetries.Load())
	}
}

// TestRetryPlacementSkipsDeadMachine: after a kill, no attempt may be placed
// on the dead machine.
func TestRetryPlacementSkipsDeadMachine(t *testing.T) {
	c := testCluster(t, Config{Machines: 3, TaskTrace: true})
	c.KillMachine(1)
	r := Parallelize(c, "survivors", ints(30), 6)
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Trace() {
		if tr.Machine == 1 {
			t.Fatalf("task %s[%d] placed on dead machine 1", tr.Stage, tr.Partition)
		}
	}
}

// TestNoHealthyMachineFailsFast: killing every machine must produce a clear
// error, not a hang or a placement on a corpse.
func TestNoHealthyMachineFailsFast(t *testing.T) {
	c := testCluster(t, Config{Machines: 2})
	c.KillMachine(0)
	c.KillMachine(1)
	_, err := Parallelize(c, "doomed", ints(10), 2).Collect()
	if err == nil {
		t.Fatal("expected failure with all machines dead")
	}
	if !strings.Contains(err.Error(), "no healthy machine") {
		t.Fatalf("error %q does not name the cause", err)
	}
}

// TestKillMachineEvictsCache: killing a machine must release its cached
// partitions' memory and lineage must recompute them on survivors.
func TestKillMachineEvictsCache(t *testing.T) {
	c := testCluster(t, Config{Machines: 3, MemoryPerMachine: 1 << 20})
	r := Parallelize(c, "pinned", ints(300), 6).Cache()
	if err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	victim := 1
	before := c.UsedMemory(victim)
	if before == 0 {
		t.Fatal("no cached bytes on the victim machine")
	}
	c.KillMachine(victim)
	if got := c.UsedMemory(victim); got != 0 {
		t.Fatalf("dead machine still charged %d bytes", got)
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("collected %d after recompute", len(got))
	}
	var evicts, kills int
	for _, ev := range c.Recoveries() {
		switch ev.Kind {
		case RecoveryCacheEvict:
			evicts++
		case RecoveryMachineKill:
			kills++
		}
	}
	if kills != 1 || evicts == 0 {
		t.Fatalf("recovery log: kills=%d cache evicts=%d", kills, evicts)
	}
	// The recomputed partitions must now be cached on survivors only.
	if err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	if c.UsedMemory(victim) != 0 {
		t.Fatal("recompute re-cached onto the dead machine")
	}
}

// TestKillMachineRecomputesShuffleOutput: in-memory map outputs on the dead
// machine are lost and must be recomputed from lineage by the fetching task.
func TestKillMachineRecomputesShuffleOutput(t *testing.T) {
	c := testCluster(t, Config{Machines: 3})
	pairs := make([]KV[int, int], 90)
	want := map[int]int{}
	for i := range pairs {
		pairs[i] = KV[int, int]{i % 9, i}
		want[i%9] += i
	}
	r := ReduceByKey(Parallelize(c, "pairs", pairs, 6), "sums", 3, func(a, b int) int { return a + b })
	// Run the map stage, then kill a machine before the reduce fetches.
	if err := r.ensureDeps(); err != nil {
		t.Fatal(err)
	}
	c.KillMachine(0)
	got, err := CollectAsMap(r)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
	var recomputes, evicts int
	for _, ev := range c.Recoveries() {
		switch ev.Kind {
		case RecoveryShuffleRecompute:
			recomputes++
		case RecoveryShuffleEvict:
			evicts++
		}
	}
	if evicts == 0 || recomputes == 0 {
		t.Fatalf("recovery log: shuffle evicts=%d recomputes=%d, want both > 0", evicts, recomputes)
	}
}

// TestKillMachineSparesDiskShuffle: ModeMapReduce spills model replicated
// HDFS storage — a machine kill must not invalidate them.
func TestKillMachineSparesDiskShuffle(t *testing.T) {
	c := testCluster(t, Config{Machines: 3, Mode: ModeMapReduce})
	pairs := make([]KV[int, int], 60)
	for i := range pairs {
		pairs[i] = KV[int, int]{i % 6, 1}
	}
	r := ReduceByKey(Parallelize(c, "pairs", pairs, 6), "counts", 3, func(a, b int) int { return a + b })
	if err := r.ensureDeps(); err != nil {
		t.Fatal(err)
	}
	c.KillMachine(2)
	got, err := CollectAsMap(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("got %d keys", len(got))
	}
	for _, ev := range c.Recoveries() {
		if ev.Kind == RecoveryShuffleEvict || ev.Kind == RecoveryShuffleRecompute {
			t.Fatalf("disk-backed shuffle reported %s after kill", ev.Kind)
		}
	}
}

// TestKillMachineReleasesBroadcast: the dead machine's broadcast replica
// charge is freed; live machines keep theirs until Release.
func TestKillMachineReleasesBroadcast(t *testing.T) {
	c := testCluster(t, Config{Machines: 3, MemoryPerMachine: 1 << 20})
	b, err := NewBroadcast(c, "gram", make([]float64, 500))
	if err != nil {
		t.Fatal(err)
	}
	c.KillMachine(2)
	if got := c.UsedMemory(2); got != 0 {
		t.Fatalf("dead machine still charged %d", got)
	}
	for m := 0; m < 2; m++ {
		if c.UsedMemory(m) != b.SizeBytes() {
			t.Fatalf("live machine %d charged %d, want %d", m, c.UsedMemory(m), b.SizeBytes())
		}
	}
	b.Release()
	for m := 0; m < 3; m++ {
		if c.UsedMemory(m) != 0 {
			t.Fatalf("machine %d charged %d after Release", m, c.UsedMemory(m))
		}
	}
	// New broadcasts skip the corpse.
	used := c.UsedMemory(2)
	if _, err := NewBroadcast(c, "late", make([]float64, 100)); err != nil {
		t.Fatal(err)
	}
	if c.UsedMemory(2) != used {
		t.Fatal("broadcast after kill charged the dead machine")
	}
}

// TestTaskRunningOnKilledMachineIsRetried: a task whose machine dies mid-run
// must have its attempt discarded and re-run on a survivor.
func TestTaskRunningOnKilledMachineIsRetried(t *testing.T) {
	c := testCluster(t, Config{Machines: 2, CoresPerMachine: 1, TaskTrace: true})
	killed := make(chan struct{})
	r := Parallelize(c, "longrun", ints(20), 2)
	err := r.ForeachPartition(func(tc *TaskCtx, p int, items []int) error {
		if tc.Machine == 0 && !tc.c.machineDead(0) {
			// First attempt on machine 0: kill it from a helper goroutine
			// (KillMachine is driver-side API) and wait for the corpse.
			go func() { tc.c.KillMachine(0); close(killed) }()
			<-killed
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics().TaskRetries.Load() == 0 {
		t.Fatal("no retry recorded for the attempt that outlived its machine")
	}
	var sawDiscard bool
	for _, tr := range c.Trace() {
		if strings.Contains(tr.Error, "died while running") {
			sawDiscard = true
		}
	}
	if !sawDiscard {
		t.Fatal("task trace does not show the machine-loss discard")
	}
}

// TestFaultPlanDeterministicInjection: the same plan injects the same number
// of failures on every run, and the plan never fails a retry.
func TestFaultPlanDeterministicInjection(t *testing.T) {
	run := func() int64 {
		c := testCluster(t, Config{
			Machines: 3,
			Fault:    &FaultPlan{Seed: 11, TaskFailureProb: 0.5},
		})
		r := Parallelize(c, "planned", ints(100), 10)
		for round := 0; round < 3; round++ {
			if _, err := r.Collect(); err != nil {
				t.Fatal(err)
			}
		}
		return c.Metrics().TaskRetries.Load()
	}
	first := run()
	if first == 0 {
		t.Fatal("plan with prob 0.5 injected nothing")
	}
	for trial := 0; trial < 3; trial++ {
		if got := run(); got != first {
			t.Fatalf("trial %d injected %d failures, first run %d — plan is not deterministic", trial, got, first)
		}
	}
}

// TestFaultPlanKillAtStage fires the kill exactly when the configured stage
// starts.
func TestFaultPlanKillAtStage(t *testing.T) {
	c := testCluster(t, Config{
		Machines: 3,
		Fault:    &FaultPlan{KillMachine: 1, KillAtStage: 2},
	})
	r := Parallelize(c, "staged", ints(30), 3)
	for round := 0; round < 4; round++ {
		if _, err := r.Collect(); err != nil {
			t.Fatal(err)
		}
		alive := c.HealthyMachines()
		if round < 2 && alive != 3 {
			t.Fatalf("machine killed before stage 2 (after stage %d)", round)
		}
		if round >= 2 && alive != 2 {
			t.Fatalf("kill did not fire by stage %d", round)
		}
	}
	if !c.machineDead(1) {
		t.Fatal("wrong machine killed")
	}
}

// TestFaultPlanStragglerShowsInSkew: straggler delays must land inside task
// timing.
func TestFaultPlanStragglerShowsInSkew(t *testing.T) {
	c := testCluster(t, Config{
		Machines: 2,
		Fault:    &FaultPlan{Seed: 3, StragglerProb: 0.3, StragglerDelay: 20 * time.Millisecond},
	})
	r := Parallelize(c, "slowpoke", ints(64), 8)
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	var maxTask time.Duration
	for _, s := range c.StageLog() {
		if s.MaxTask > maxTask {
			maxTask = s.MaxTask
		}
	}
	if maxTask < 20*time.Millisecond {
		t.Fatalf("max task %v does not include the straggler delay", maxTask)
	}
}

// TestParseFaultPlan covers the CLI spec round trip and its error cases.
func TestParseFaultPlan(t *testing.T) {
	f, err := ParseFaultPlan("seed=7,failprob=0.02,maxfail=10,kill=1@5,stragglerprob=0.05,stragglerdelay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{Seed: 7, TaskFailureProb: 0.02, MaxTaskFailures: 10,
		KillMachine: 1, KillAtStage: 5, KillSet: true, StragglerProb: 0.05, StragglerDelay: 5 * time.Millisecond}
	if *f != want {
		t.Fatalf("parsed %+v, want %+v", *f, want)
	}
	for _, bad := range []string{"frobnicate=1", "kill=3", "failprob=x", "seed"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted garbage", bad)
		}
	}
}

// TestRetryBackoffDelaysRetries: with a backoff base configured, a retried
// task's queue wait must include the delay.
func TestRetryBackoffDelaysRetries(t *testing.T) {
	c := testCluster(t, Config{Machines: 2, TaskTrace: true, RetryBackoff: 15 * time.Millisecond})
	c.InjectTaskFailures("collect:patience", 1)
	if _, err := Parallelize(c, "patience", ints(10), 2).Collect(); err != nil {
		t.Fatal(err)
	}
	var sawBackoff bool
	for _, tr := range c.Trace() {
		if tr.Attempt > 0 && tr.Queue >= 15*time.Millisecond {
			sawBackoff = true
		}
	}
	if !sawBackoff {
		t.Fatal("retried attempt's queue wait does not include the backoff delay")
	}
}

// TestMaxTaskRetriesConfigurable: a budget of 5 survives 5 consecutive
// injected failures of the same task; the default budget of 2 would not.
func TestMaxTaskRetriesConfigurable(t *testing.T) {
	c := testCluster(t, Config{Machines: 1, MaxTaskRetries: 5})
	c.InjectTaskFailures("collect:stubborn", 5)
	got, err := Parallelize(c, "stubborn", ints(10), 1).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("collected %d", len(got))
	}
	if c.Metrics().TaskRetries.Load() != 5 {
		t.Fatalf("retries = %d, want 5", c.Metrics().TaskRetries.Load())
	}

	// Negative disables retries entirely.
	c2 := testCluster(t, Config{Machines: 2, MaxTaskRetries: -1})
	c2.InjectTaskFailures("collect:fragile", 1)
	if _, err := Parallelize(c2, "fragile", ints(10), 2).Collect(); err == nil {
		t.Fatal("MaxTaskRetries=-1 still retried")
	}
}

// TestCheckpointDiskByteSymmetry asserts the Checkpoint IO contract: written
// once, counted once; read back k times, counted k times.
func TestCheckpointDiskByteSymmetry(t *testing.T) {
	c := testCluster(t, Config{Machines: 2})
	r := Parallelize(c, "src", ints(200), 4)
	ck, err := Checkpoint(r, "ck")
	if err != nil {
		t.Fatal(err)
	}
	written := c.Metrics().DiskBytesWrite.Load()
	if written == 0 {
		t.Fatal("checkpoint wrote no bytes")
	}
	const rereads = 3
	for i := 0; i < rereads; i++ {
		if _, err := ck.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Metrics().DiskBytesRead.Load(); got != rereads*written {
		t.Fatalf("disk reads %d after %d re-reads of %d written bytes; want %d",
			got, rereads, written, rereads*written)
	}
	if got := c.Metrics().DiskBytesWrite.Load(); got != written {
		t.Fatalf("disk writes grew to %d on re-read", got)
	}
}

// TestCheckpointFilesDeletedOnUnpersist: Unpersist of the checkpoint RDD must
// delete its files.
func TestCheckpointFilesDeletedOnUnpersist(t *testing.T) {
	dir := t.TempDir()
	c := testCluster(t, Config{Mode: ModeMapReduce, DiskDir: dir, Machines: 2})
	ck, err := Checkpoint(Parallelize(c, "src", ints(100), 3), "ck")
	if err != nil {
		t.Fatal(err)
	}
	if n := countFiles(t, dir, "ckpt"); n != 3 {
		t.Fatalf("checkpoint left %d files, want 3", n)
	}
	ck.Unpersist()
	if n := countFiles(t, dir, "ckpt"); n != 0 {
		t.Fatalf("%d checkpoint files survive Unpersist", n)
	}
}

// TestCheckpointFilesDeletedOnClose: Close must delete live checkpoint files
// even from a caller-owned DiskDir it won't RemoveAll.
func TestCheckpointFilesDeletedOnClose(t *testing.T) {
	dir := t.TempDir()
	c := MustNewCluster(Config{Mode: ModeMapReduce, DiskDir: dir, Machines: 2})
	if _, err := Checkpoint(Parallelize(c, "src", ints(100), 3), "ck"); err != nil {
		t.Fatal(err)
	}
	if n := countFiles(t, dir, "ckpt"); n == 0 {
		t.Fatal("no checkpoint files written")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countFiles(t, dir, "ckpt"); n != 0 {
		t.Fatalf("%d checkpoint files survive Close of a non-owned DiskDir", n)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("Close removed the caller-owned dir: %v", err)
	}
}

func countFiles(t *testing.T, dir, prefix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			n++
		}
	}
	return n
}

// TestSummaryReportsRecovery: the Summary table must carry the recovery story.
func TestSummaryReportsRecovery(t *testing.T) {
	c := testCluster(t, Config{Machines: 3})
	c.InjectTaskFailures("collect:observed", 1)
	r := Parallelize(c, "observed", ints(30), 3).Cache()
	if err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	c.KillMachine(2)
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	sum := c.Summary()
	for _, want := range []string{"wastedB", "recovery events:", RecoveryMachineKill, RecoveryTaskRetry} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q:\n%s", want, sum)
		}
	}
}

// TestKillMachineIdempotentAndBounded: double kills are no-ops; out-of-range
// panics.
func TestKillMachineIdempotentAndBounded(t *testing.T) {
	c := testCluster(t, Config{Machines: 2})
	c.KillMachine(0)
	c.KillMachine(0)
	kills := 0
	for _, ev := range c.Recoveries() {
		if ev.Kind == RecoveryMachineKill {
			kills++
		}
	}
	if kills != 1 {
		t.Fatalf("double kill recorded %d events", kills)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("KillMachine(99) did not panic")
		}
	}()
	c.KillMachine(99)
}

// TestRetryableErrorStillRetryable guards the errRetryable wrapping used by
// machine-loss discards.
func TestRetryableErrorStillRetryable(t *testing.T) {
	if !errors.Is(errInjectedForTest(0, 0), errRetryable) {
		t.Fatal("test error does not unwrap to errRetryable")
	}
}

// TestCheckpointCutsLineageSurvivesKill: after checkpointing, a machine kill
// recovers by re-reading checkpoint files instead of replaying the cut
// lineage.
func TestCheckpointCutsLineageSurvivesKill(t *testing.T) {
	c := testCluster(t, Config{Machines: 3})
	var recomputed atomic.Int64
	src := MapPartitions(Parallelize(c, "raw", ints(120), 4), "tracked",
		func(tc *TaskCtx, p int, in []int) ([]int, error) {
			recomputed.Add(1)
			return in, nil
		})
	ck, err := Checkpoint(src, "ck")
	if err != nil {
		t.Fatal(err)
	}
	base := recomputed.Load()
	r := ck.Cache()
	if err := r.Materialize(); err != nil {
		t.Fatal(err)
	}
	c.KillMachine(1)
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 120 {
		t.Fatalf("collected %d", len(got))
	}
	if extra := recomputed.Load() - base; extra != 0 {
		t.Fatalf("kill recovery replayed the cut lineage (%d extra recomputes); want re-read from checkpoint", extra)
	}
}
