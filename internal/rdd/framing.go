package rdd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Length-prefixed frames are the streamed counterpart of the engine's block
// codecs: a BinaryRecord/PackedRows block is a self-contained []byte, and a
// frame is that block preceded by a u32 little-endian byte count. The TCP
// transport carries every request and response as one frame, and the
// ModeMapReduce spill path writes each shuffle block as one framed file, so
// both share the torn-input detection below: a reader that got fewer bytes
// than the prefix promised reports io.ErrUnexpectedEOF instead of handing a
// truncated block to the decoders (which assume a complete slice).

// DefaultMaxFrame caps how large a frame a reader will accept (1 GiB). The
// cap is checked before allocating, so a corrupt or adversarial length prefix
// cannot make the receiver allocate unbounded memory.
const DefaultMaxFrame = 1 << 30

// ErrFrameTooLarge is returned (wrapped) when a frame's length prefix exceeds
// the reader's limit. Callers detect it with errors.Is.
var ErrFrameTooLarge = errors.New("rdd: frame exceeds size limit")

// AppendFrame appends payload as one length-prefixed frame to buf.
func AppendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// WriteFrame writes payload to w as one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r, tolerating arbitrarily
// fragmented reads (io.ReadFull semantics). A length prefix above max is
// rejected with ErrFrameTooLarge before any allocation. Clean EOF at a frame
// boundary returns io.EOF; EOF inside the prefix or the payload returns
// io.ErrUnexpectedEOF, so a truncated stream is never mistaken for a shorter
// valid one.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("rdd: truncated frame length prefix: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, max)
	}
	if n == 0 {
		return nil, nil
	}
	payload := make([]byte, n)
	if got, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("rdd: frame truncated at %d of %d payload bytes: %w", got, n, io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	return payload, nil
}

// readFrameFile reads a file written as a single frame (spill blocks,
// checkpoint images), so a torn write — a crash mid-flush left fewer bytes
// than the prefix records — surfaces as io.ErrUnexpectedEOF rather than a
// decoder error deep in the block parser.
func readFrameFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := ReadFrame(f, DefaultMaxFrame)
	if err != nil {
		return nil, fmt.Errorf("rdd: reading framed file %s: %w", path, err)
	}
	return data, nil
}
