package rdd

import (
	"errors"
	"fmt"
)

// Transport abstracts where a machine's block images physically live: the
// serialized shuffle buckets a map task produced, the broadcast replicas a
// machine holds, and the checkpoint images that model stable storage. The
// default backend — Config.Transport nil — is the in-process engine itself:
// blocks stay in the driver's memory exactly as before, which keeps CI
// hermetic and the benchmarked hot path untouched. A non-nil Transport (the
// TCP backend in internal/transport) moves every committed block image to a
// real worker process and fetches it back on demand, so machine kills become
// process kills and "unreachable" becomes a real refused connection.
//
// The engine's fault model maps onto the interface through the two sentinel
// errors: ErrMachineUnreachable from Put or Fetch means the worker is gone —
// the engine marks the machine dead (exactly as KillMachine would) and fails
// the observing task with a retryable error, feeding the existing
// retry-budget / lineage-recompute / speculation machinery. Any other error
// is a hard task failure.
//
// Byte accounting is transport-independent by construction: BytesShuffled,
// BytesRecomputed and the disk counters are recorded where blocks are encoded
// (TaskCtx counters at the serialization sites), never where they move, so a
// clean run's Lemma 3 totals are bit-equal across backends.
type Transport interface {
	// Workers reports how many worker machines the transport fronts; it must
	// equal Config.Machines.
	Workers() int
	// Put stores a block image on machine m's worker, overwriting any
	// previous image under the same ID (speculative duplicate attempts write
	// identical bytes).
	Put(m int, id BlockID, data []byte) error
	// Fetch returns the block image stored on machine m's worker.
	// ErrBlockNotFound (wrapped) reports an ID the worker does not hold.
	Fetch(m int, id BlockID) ([]byte, error)
	// Drop forgets every block of the given owner on machine m's worker,
	// best-effort: unreachable workers are ignored (their blocks died with
	// them).
	Drop(m int, owner int64)
	// Kill terminates machine m's worker process — the transport-level
	// realization of KillMachine. Killing is idempotent and best-effort.
	Kill(m int) error
	// Close drains and shuts down the transport: graceful stop for workers
	// the transport spawned, connection teardown for external ones.
	Close() error
}

// BlockKind classifies transported block images.
type BlockKind uint8

const (
	// BlockShuffle is a map task's serialized bucket for one reduce
	// partition. Volatile: lost with the worker, recomputed from lineage.
	BlockShuffle BlockKind = 1
	// BlockBroadcast is one machine's replica of a broadcast value.
	// Volatile: a dead machine's replica is simply released.
	BlockBroadcast BlockKind = 2
	// BlockCheckpoint is a checkpointed RDD partition. Stable: workers
	// persist it to local disk and the engine replicates it to every live
	// worker, so it survives worker kills like the in-process backend's
	// driver-local checkpoint files do.
	BlockCheckpoint BlockKind = 3
)

// BlockID names one block in a worker's store: the kind, the owning object's
// cluster-unique ID (exchange, broadcast or checkpoint), and the block
// coordinates within it (map/reduce partition for shuffles, partition/0 for
// checkpoints, 0/0 for broadcasts).
type BlockID struct {
	Kind   BlockKind
	Owner  int64
	Map    int32
	Reduce int32
}

func (id BlockID) String() string {
	return fmt.Sprintf("k%d-o%d-m%d-r%d", id.Kind, id.Owner, id.Map, id.Reduce)
}

// ErrMachineUnreachable is returned (wrapped) by Transport implementations
// when a worker cannot be reached: connection refused, reset, or timed out.
// The engine treats it as the machine having died.
var ErrMachineUnreachable = errors.New("rdd: worker machine unreachable")

// ErrBlockNotFound is returned (wrapped) by Transport.Fetch for an ID the
// worker does not hold.
var ErrBlockNotFound = errors.New("rdd: block not found on worker")

// remote returns the configured remote Transport, or nil for the built-in
// in-process backend.
func (c *Cluster) remote() Transport { return c.cfg.Transport }

// transportTaskErr classifies a transport failure observed by a running task.
// An unreachable worker means machine m is gone: it is marked dead (the
// detection-side twin of KillMachine) and the task fails with a retryable
// error so the scheduler re-places it and lineage recomputes whatever died
// with the machine. Any other transport error fails the task for good.
func (c *Cluster) transportTaskErr(m int, op string, err error) error {
	if errors.Is(err, ErrMachineUnreachable) {
		c.machineLost(m, fmt.Sprintf("%s: %v", op, err))
		return fmt.Errorf("rdd: %s on machine %d: %v: %w", op, m, err, errRetryable)
	}
	return fmt.Errorf("rdd: %s on machine %d: %w", op, m, err)
}

// machineLost reacts to a worker found dead by a task's Put or Fetch rather
// than by a driver-side KillMachine call. The dead flag flips synchronously —
// so retried attempts and the scheduler immediately stop using the machine —
// but eviction runs on its own goroutine: the observing task may sit inside a
// cached RDD's compute holding the very partition locks the evictors need,
// and evicting synchronously there would deadlock.
func (c *Cluster) machineLost(m int, cause string) {
	if m < 0 || m >= c.cfg.Machines || c.machines[m].dead.Swap(true) {
		return
	}
	// Eviction joins the attempts group: Quiesce (and therefore Close) must
	// not return while an evictor is still republishing blocks, or shutdown
	// tears the transport out from under the recovery it triggered.
	c.attempts.Add(1)
	go func() {
		defer c.attempts.Done()
		c.evictDeadMachine(m, cause)
	}()
}
