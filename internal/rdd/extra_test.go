package rdd

import (
	"sort"
	"testing"
)

func TestUnion(t *testing.T) {
	c := testCluster(t, Config{})
	a := Parallelize(c, "a", []int{1, 2, 3}, 2)
	b := Parallelize(c, "b", []int{4, 5}, 1)
	u := Union(a, b, "u")
	if u.NumPartitions() != 3 {
		t.Fatalf("parts = %d", u.NumPartitions())
	}
	got, err := u.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("Union = %v", got)
	}
}

func TestUnionAfterShuffle(t *testing.T) {
	// Union must propagate both sides' shuffle dependencies.
	c := testCluster(t, Config{Machines: 2, CoresPerMachine: 1})
	pairs := Parallelize(c, "p", []KV[int, int]{{1, 1}, {1, 2}, {2, 3}}, 2)
	red := ReduceByKey(pairs, "r", 2, func(a, b int) int { return a + b })
	plain := Parallelize(c, "q", []KV[int, int]{{9, 9}}, 1)
	u := Union(red, plain, "u2")
	got, err := u.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Union after shuffle = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	c := testCluster(t, Config{})
	r := Parallelize(c, "dups", []int{3, 1, 3, 2, 1, 1}, 3)
	d := Distinct(r, "distinct", 2)
	got, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Distinct = %v", got)
	}
}

func TestKeysValues(t *testing.T) {
	c := testCluster(t, Config{})
	r := Parallelize(c, "p", []KV[string, int]{{"a", 1}, {"b", 2}}, 1)
	ks, err := Keys(r, "k").Collect()
	if err != nil || len(ks) != 2 {
		t.Fatalf("Keys = %v, %v", ks, err)
	}
	vs, err := Values(r, "v").Collect()
	if err != nil || vs[0]+vs[1] != 3 {
		t.Fatalf("Values = %v, %v", vs, err)
	}
}

func TestCountByKey(t *testing.T) {
	c := testCluster(t, Config{})
	var data []KV[int, string]
	for i := 0; i < 30; i++ {
		data = append(data, KV[int, string]{i % 3, "x"})
	}
	r := Parallelize(c, "p", data, 4)
	counts, err := CountByKey(r, "cbk")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if counts[k] != 10 {
			t.Fatalf("count[%d] = %d", k, counts[k])
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	c := testCluster(t, Config{})
	r := Parallelize(c, "p", ints(1000), 4)
	s1, err := Sample(r, "s", 0.3, 7).Collect()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Sample(r, "s", 0.3, 7).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("sample not deterministic: %d vs %d", len(s1), len(s2))
	}
	if len(s1) < 200 || len(s1) > 400 {
		t.Fatalf("sample size %d far from 300", len(s1))
	}
	s3, err := Sample(r, "s", 0.3, 8).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(s3) == len(s1) && equalInts(s1, s3) {
		t.Fatal("different seeds gave identical samples")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCheckpointCutsLineage(t *testing.T) {
	c := testCluster(t, Config{})
	computes := make(chan struct{}, 100)
	r := Parallelize(c, "src", ints(20), 2)
	traced := MapPartitions(r, "traced", func(tc *TaskCtx, p int, in []int) ([]int, error) {
		computes <- struct{}{}
		return in, nil
	})
	ck, err := Checkpoint(traced, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(computes); n != 2 {
		t.Fatalf("checkpoint computed %d partitions, want 2", n)
	}
	// Reading the checkpoint must not recompute the lineage.
	for i := 0; i < 3; i++ {
		got, err := ck.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 20 {
			t.Fatalf("collected %d", len(got))
		}
	}
	if n := len(computes); n != 2 {
		t.Fatalf("lineage recomputed after checkpoint: %d computes", n)
	}
	if c.Metrics().DiskBytesWrite.Load() == 0 || c.Metrics().DiskBytesRead.Load() == 0 {
		t.Fatal("checkpoint did not touch disk")
	}
}

func TestCheckpointAfterShuffle(t *testing.T) {
	c := testCluster(t, Config{})
	pairs := Parallelize(c, "p", []KV[int, int]{{1, 1}, {2, 2}, {1, 3}}, 2)
	red := ReduceByKey(pairs, "r", 2, func(a, b int) int { return a + b })
	ck, err := Checkpoint(red, "ckr")
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectAsMap(ck)
	if err != nil || got[1] != 4 || got[2] != 2 {
		t.Fatalf("checkpointed shuffle = %v, %v", got, err)
	}
}

func TestStageLog(t *testing.T) {
	c := testCluster(t, Config{})
	r := Parallelize(c, "log", ints(10), 3)
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	log := c.StageLog()
	if len(log) != 1 {
		t.Fatalf("stage log = %v", log)
	}
	if log[0].Name != "collect:log" || log[0].Tasks != 3 {
		t.Fatalf("record = %+v", log[0])
	}
	if log[0].Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
}

func TestSimulatedTimeAccumulates(t *testing.T) {
	c := testCluster(t, Config{Machines: 2, SerializeTasks: true})
	r := Parallelize(c, "sim", ints(100), 4)
	heavy := MapPartitions(r, "work", func(tc *TaskCtx, p int, in []int) ([]int, error) {
		s := 0
		for i := 0; i < 2_000_000; i++ {
			s += i
		}
		_ = s
		return in, nil
	})
	if _, err := heavy.Collect(); err != nil {
		t.Fatal(err)
	}
	if c.SimulatedTime() <= 0 {
		t.Fatal("simulated time not accumulated")
	}
}

func TestSortByKeyGloballySorts(t *testing.T) {
	c := testCluster(t, Config{Machines: 3})
	rng := []int{42, 7, 99, 13, 0, 55, 21, 88, 3, 67, 31, 76, 11, 59, 24}
	var data []KV[int, string]
	for _, k := range rng {
		data = append(data, KV[int, string]{k, "v"})
	}
	r := Parallelize(c, "unsorted", data, 4)
	sorted, err := SortByKey(r, "sorted", 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("lost records: %d vs %d", len(got), len(data))
	}
	for i := 1; i < len(got); i++ {
		if got[i].K < got[i-1].K {
			t.Fatalf("not sorted at %d: %v", i, got)
		}
	}
}

func TestSortByKeyLargeRandom(t *testing.T) {
	c := testCluster(t, Config{Machines: 4})
	var data []KV[float64, int]
	state := uint64(12345)
	for i := 0; i < 5000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		data = append(data, KV[float64, int]{float64(state % 100000), i})
	}
	r := Parallelize(c, "big", data, 8)
	sorted, err := SortByKey(r, "bigsorted", 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000 {
		t.Fatalf("lost records: %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].K < got[i-1].K {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestRangePartitionerBounds(t *testing.T) {
	pt := NewRangePartitioner([]int{10, 20, 30, 40}, 2)
	if p := pt.Partition(5, 2); p != 0 {
		t.Fatalf("Partition(5) = %d", p)
	}
	if p := pt.Partition(100, 2); p != 1 {
		t.Fatalf("Partition(100) = %d", p)
	}
	// Empty sample: everything lands in partition 0.
	empty := NewRangePartitioner[int](nil, 4)
	if empty.Partition(7, 4) != 0 {
		t.Fatal("empty-sample partitioner must default to 0")
	}
}
