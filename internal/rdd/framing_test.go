package rdd

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
)

// oneByteReader delivers at most one byte per Read — the worst legal
// fragmentation a TCP stream can produce.
type oneByteReader struct{ r io.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestReadFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		nil,                                // zero-length frame
		bytes.Repeat([]byte{0xAB}, 70_000), // spans several reads
		{0},
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	// AppendFrame must produce the identical encoding.
	var appended []byte
	for _, p := range payloads {
		appended = AppendFrame(appended, p)
	}
	if !bytes.Equal(appended, buf.Bytes()) {
		t.Fatal("AppendFrame and WriteFrame disagree on the encoding")
	}

	for name, r := range map[string]io.Reader{
		"whole":    bytes.NewReader(buf.Bytes()),
		"one-byte": oneByteReader{bytes.NewReader(buf.Bytes())},
	} {
		for i, want := range payloads {
			got, err := ReadFrame(r, 0)
			if err != nil {
				t.Fatalf("%s: frame %d: %v", name, i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: frame %d: got %d bytes, want %d", name, i, len(got), len(want))
			}
		}
		if _, err := ReadFrame(r, 0); err != io.EOF {
			t.Fatalf("%s: at stream end: got %v, want io.EOF", name, err)
		}
	}
}

func TestReadFrameOverPipeAdversarialChunking(t *testing.T) {
	// net.Pipe is fully synchronous: every writer chunk is one reader
	// delivery, so writing byte-by-byte forces ReadFrame to reassemble a
	// frame from 4+N separate reads.
	client, server := net.Pipe()
	payload := []byte("block image bytes spanning many tiny writes")
	go func() {
		frame := AppendFrame(nil, payload)
		for _, b := range frame {
			if _, err := client.Write([]byte{b}); err != nil {
				return
			}
		}
		client.Close()
	}()
	got, err := ReadFrame(server, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
	if _, err := ReadFrame(server, 0); err != io.EOF {
		t.Fatalf("after close: got %v, want io.EOF", err)
	}
}

func TestReadFrameTruncatedPrefix(t *testing.T) {
	// Two of the four prefix bytes, then EOF: a torn write, not a clean end.
	_, err := ReadFrame(bytes.NewReader([]byte{0x05, 0x00}), 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	frame := AppendFrame(nil, bytes.Repeat([]byte{1}, 100))
	for _, cut := range []int{4, 5, 50, 103} {
		_, err := ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadFrameMidFrameEOFOverPipe(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		frame := AppendFrame(nil, bytes.Repeat([]byte{7}, 1000))
		client.Write(frame[:300]) // connection dies mid-payload
		client.Close()
	}()
	_, err := ReadFrame(server, 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadFrameOversizedPrefixRejectedBeforeAllocating(t *testing.T) {
	// A prefix claiming ~1 GiB with only garbage behind it: the limit check
	// must fire before the payload allocation, or a corrupt prefix could OOM
	// the receiver.
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0x3F // 2^30 - 1
	allocs := testing.AllocsPerRun(10, func() {
		_, err := ReadFrame(bytes.NewReader(hdr[:]), 1<<20)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v, want ErrFrameTooLarge", err)
		}
	})
	// The wrapped error itself allocates a handful of small objects; the
	// point is the absence of the ~1 GiB payload buffer, which would show up
	// here as an enormous per-run byte count via test -race/-msan crashes or
	// timeouts. Keep a loose object-count bound as the tripwire.
	if allocs > 10 {
		t.Fatalf("ReadFrame allocated %v objects rejecting an oversized prefix", allocs)
	}
}

func TestReadFrameFileTornWrite(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.blk")
	torn := filepath.Join(dir, "torn.blk")
	payload := bytes.Repeat([]byte{0xCD}, 4096)
	frame := AppendFrame(nil, payload)
	if err := os.WriteFile(good, frame, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, frame[:len(frame)-100], 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := readFrameFile(good)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("good file: %v", err)
	}
	if _, err := readFrameFile(torn); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn file: got %v, want io.ErrUnexpectedEOF", err)
	}
}
