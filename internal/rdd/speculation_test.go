package rdd

import (
	"strings"
	"testing"
	"time"
)

// slowOnPrimary builds a partition closure where partition 0's first
// placement (machine 0, its preferred location) sleeps for d while every
// other attempt returns immediately — a deterministic straggler that a
// backup attempt on any other machine beats.
func slowOnPrimary(d time.Duration) func(tc *TaskCtx, p int, in []int) ([]int, error) {
	return func(tc *TaskCtx, p int, in []int) ([]int, error) {
		if p == 0 && tc.Machine == 0 {
			time.Sleep(d)
		}
		tc.CountShuffled(1000)
		return in, nil
	}
}

// TestSpeculationBackupWinsStraggler is the tentpole's end-to-end unit test:
// a deterministic straggler is out-raced by a backup attempt on a different
// machine, the stage resolves without waiting for the straggler, exactly one
// attempt per partition commits, and the loser's traffic lands in
// BytesWasted once it drains.
func TestSpeculationBackupWinsStraggler(t *testing.T) {
	const sleep = 500 * time.Millisecond
	c := testCluster(t, Config{
		Machines: 4, CoresPerMachine: 2, TaskTrace: true,
		Speculation: SpeculationConfig{
			Enabled: true, Quantile: 0.5, Multiplier: 2, MinDuration: 5 * time.Millisecond,
		},
	})
	exact := NewIntAccumulator()
	r := MapPartitions(Parallelize(c, "nums", ints(80), 8), "slow",
		func(tc *TaskCtx, p int, in []int) ([]int, error) {
			out, err := slowOnPrimary(sleep)(tc, p, in)
			if err != nil {
				return nil, err
			}
			exact.AddOnSuccess(tc, int64(len(in)))
			return out, nil
		})
	stageStart := time.Now()
	got, err := r.Collect()
	wall := time.Since(stageStart)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 80 {
		t.Fatalf("collected %d elements, want 80", len(got))
	}
	if wall >= sleep {
		t.Errorf("stage took %v, not faster than the %v straggler: speculation gained nothing", wall, sleep)
	}
	c.Quiesce() // drain the losing straggler before reading totals

	if n := c.Metrics().SpeculativeTasks.Load(); n < 1 {
		t.Fatalf("SpeculativeTasks = %d, want >= 1", n)
	}
	if v := exact.Value(); v != 80 {
		t.Errorf("AddOnSuccess total = %d, want exactly 80 (one commit per partition)", v)
	}
	m := c.Metrics().Snapshot()
	if m.BytesShuffled != 8*1000 {
		t.Errorf("BytesShuffled = %d, want exactly %d: a duplicate attempt leaked into the exactly-once counter", m.BytesShuffled, 8*1000)
	}
	if m.BytesWasted < 1000 || m.BytesWasted%1000 != 0 {
		t.Errorf("BytesWasted = %d, want a positive multiple of 1000 (losing attempts' traffic)", m.BytesWasted)
	}
	var stageWasted int64
	var stageSpec int
	for _, s := range c.StageLog() {
		stageWasted += s.BytesWasted
		stageSpec += s.SpeculativeTasks
	}
	if stageWasted != m.BytesWasted {
		t.Errorf("Metrics.BytesWasted=%d but stage rollups sum to %d (late loser not folded into its record)", m.BytesWasted, stageWasted)
	}
	if stageSpec < 1 {
		t.Errorf("no StageRecord counts a speculative task")
	}

	var launches, wins int
	for _, ev := range c.Recoveries() {
		switch ev.Kind {
		case RecoverySpeculativeLaunch:
			launches++
		case RecoverySpeculativeWin:
			wins++
		}
	}
	if launches < 1 || wins < 1 {
		t.Errorf("recovery log: launches=%d wins=%d, want both >= 1", launches, wins)
	}
	var sawBackupSpan bool
	for _, tr := range c.Trace() {
		if tr.Speculative {
			sawBackupSpan = true
			if tr.Attempt != speculativeAttempt {
				t.Errorf("backup span attempt = %d, want %d", tr.Attempt, speculativeAttempt)
			}
		}
	}
	if !sawBackupSpan {
		t.Error("task trace has no span for the backup attempt")
	}
}

// TestSpeculationLoserDrainsAsLoss: once the straggler finally finishes, its
// attempt must be logged as a speculative loss and never fire OnSuccess
// hooks.
func TestSpeculationLoserDrainsAsLoss(t *testing.T) {
	c := testCluster(t, Config{
		Machines: 4, CoresPerMachine: 2,
		Speculation: SpeculationConfig{
			Enabled: true, Quantile: 0.5, Multiplier: 2, MinDuration: 5 * time.Millisecond,
		},
	})
	r := MapPartitions(Parallelize(c, "nums", ints(40), 8), "slow",
		slowOnPrimary(300*time.Millisecond))
	if err := r.ForeachPartition(func(tc *TaskCtx, p int, items []int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	var losses int
	for _, ev := range c.Recoveries() {
		if ev.Kind == RecoverySpeculativeLoss {
			losses++
			if !strings.Contains(ev.Cause, "lost the commit race") {
				t.Errorf("loss cause %q does not name the race", ev.Cause)
			}
		}
	}
	if losses < 1 {
		t.Fatalf("no speculative-loss event after the straggler drained (recoveries: %+v)", c.Recoveries())
	}
}

// TestSpeculationQuietWithoutStragglers: with speculation enabled but no
// stragglers, no backups launch (MinDuration floors the cutoff above the
// noise) and the exactly-once totals are identical to a speculation-off run.
func TestSpeculationQuietWithoutStragglers(t *testing.T) {
	run := func(spec SpeculationConfig) ([]int, MetricsSnapshot) {
		c := testCluster(t, Config{Machines: 3, Speculation: spec})
		pairs := make([]KV[int, int], 90)
		for i := range pairs {
			pairs[i] = KV[int, int]{i % 9, i}
		}
		red := ReduceByKey(Parallelize(c, "pairs", pairs, 6), "sums", 3,
			func(a, b int) int { return a + b })
		got, err := red.Collect()
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]int, 0, len(got))
		for _, kv := range got {
			vals = append(vals, kv.V)
		}
		c.Quiesce()
		return vals, c.Metrics().Snapshot()
	}
	offVals, off := run(SpeculationConfig{})
	onVals, on := run(SpeculationConfig{Enabled: true})
	if on.SpeculativeTasks != 0 {
		t.Errorf("straggler-free run launched %d backups", on.SpeculativeTasks)
	}
	if on.BytesShuffled != off.BytesShuffled || on.BytesWasted != off.BytesWasted {
		t.Errorf("speculation-on totals (shuffled=%d wasted=%d) differ from off (shuffled=%d wasted=%d)",
			on.BytesShuffled, on.BytesWasted, off.BytesShuffled, off.BytesWasted)
	}
	if len(onVals) != len(offVals) {
		t.Fatalf("result cardinality differs: %d vs %d", len(onVals), len(offVals))
	}
}

// TestSpeculationDisabledUnderSerializeTasks: SerializeTasks wins — a backup
// would deadlock behind the straggler's serial lock, so the monitor must not
// run at all.
func TestSpeculationDisabledUnderSerializeTasks(t *testing.T) {
	c := testCluster(t, Config{
		Machines: 3, SerializeTasks: true,
		Speculation: SpeculationConfig{Enabled: true, MinDuration: time.Millisecond},
	})
	if c.speculating() {
		t.Fatal("speculating() with SerializeTasks set")
	}
	if _, err := Parallelize(c, "serial", ints(30), 6).Collect(); err != nil {
		t.Fatal(err)
	}
	if n := c.Metrics().SpeculativeTasks.Load(); n != 0 {
		t.Fatalf("launched %d backups under SerializeTasks", n)
	}
}

// TestParseSpeculation covers the -speculation CLI spec forms and error
// cases.
func TestParseSpeculation(t *testing.T) {
	s, err := ParseSpeculation("on")
	if err != nil || !s.Enabled {
		t.Fatalf("ParseSpeculation(on) = %+v, %v", s, err)
	}
	s, err = ParseSpeculation("quantile=0.5,multiplier=2,min=5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := SpeculationConfig{Enabled: true, Quantile: 0.5, Multiplier: 2, MinDuration: 5 * time.Millisecond}
	if s != want {
		t.Fatalf("parsed %+v, want %+v", s, want)
	}
	for _, bad := range []string{"", "quantile=2", "multiplier=0.5", "min=-1ms", "frobnicate=1", "quantile"} {
		if _, err := ParseSpeculation(bad); err == nil {
			t.Errorf("ParseSpeculation(%q) accepted garbage", bad)
		}
	}
	// Defaults fill unset knobs.
	d := SpeculationConfig{Enabled: true}.withDefaults()
	if d.Quantile != 0.75 || d.Multiplier != 1.5 || d.MinDuration != 10*time.Millisecond {
		t.Fatalf("withDefaults = %+v", d)
	}
}

// TestFaultPlanKillAtStageZero is the dead-zone regression test: kill=M@0
// parses to an armed plan and fires before the very first stage runs.
func TestFaultPlanKillAtStageZero(t *testing.T) {
	f, err := ParseFaultPlan("kill=1@0")
	if err != nil {
		t.Fatal(err)
	}
	if !f.KillSet || f.KillAtStage != 0 {
		t.Fatalf("parsed %+v: kill=1@0 did not arm the sentinel", *f)
	}
	c := testCluster(t, Config{Machines: 3, TaskTrace: true, Fault: f})
	if _, err := Parallelize(c, "stagezero", ints(30), 6).Collect(); err != nil {
		t.Fatal(err)
	}
	if !c.machineDead(1) {
		t.Fatal("kill=1@0 never fired — the stage-0 dead zone is back")
	}
	for _, tr := range c.Trace() {
		if tr.Machine == 1 && tr.Error == "" {
			t.Fatalf("task %s[%d] committed on machine 1, which was dead from stage 0", tr.Stage, tr.Partition)
		}
	}
}

// TestShuffleRecomputeSingleFlight is the lock-convoy regression test: with
// several map outputs lost and many reduce tasks fetching concurrently, each
// lost output is recomputed exactly once (single-flight), not once per
// waiter, and the recomputed traffic lands in BytesRecomputed so
// BytesShuffled stays bit-equal to a clean run.
func TestShuffleRecomputeSingleFlight(t *testing.T) {
	build := func(c *Cluster) *RDD[KV[int, int]] {
		pairs := make([]KV[int, int], 240)
		for i := range pairs {
			pairs[i] = KV[int, int]{i % 16, i}
		}
		return ReduceByKey(Parallelize(c, "pairs", pairs, 6), "sums", 8,
			func(a, b int) int { return a + b })
	}

	clean := testCluster(t, Config{Machines: 3})
	if _, err := build(clean).Collect(); err != nil {
		t.Fatal(err)
	}
	cleanBytes := clean.Metrics().BytesShuffled.Load()

	c := testCluster(t, Config{Machines: 3})
	r := build(c)
	// Materialize the map outputs, then kill machine 0 — map partitions 0
	// and 3 prefer it, so at least two outputs are lost before the 8 reduce
	// tasks fetch concurrently.
	if err := r.ensureDeps(); err != nil {
		t.Fatal(err)
	}
	c.KillMachine(0)
	got, err := CollectAsMap(r)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{}
	for i := 0; i < 240; i++ {
		want[i%16] += i
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}

	recomputedParts := map[int]int{}
	for _, ev := range c.Recoveries() {
		if ev.Kind == RecoveryShuffleRecompute {
			recomputedParts[ev.Partition]++
		}
	}
	if len(recomputedParts) < 2 {
		t.Fatalf("only %d lost map outputs recomputed, want >= 2 (placement drift?)", len(recomputedParts))
	}
	for mp, n := range recomputedParts {
		if n != 1 {
			t.Errorf("map output %d recomputed %d times: single-flight failed", mp, n)
		}
	}
	m := c.Metrics().Snapshot()
	if m.BytesShuffled != cleanBytes {
		t.Errorf("BytesShuffled after kill = %d, clean run = %d: recompute double-counted Lemma 3 traffic",
			m.BytesShuffled, cleanBytes)
	}
	if m.BytesRecomputed == 0 {
		t.Error("BytesRecomputed = 0 after lineage recomputes")
	}
}
