package rdd

import (
	"hash/maphash"
)

// KV is a key-value record; the element type of pair RDDs.
type KV[K comparable, V any] struct {
	K K
	V V
}

// Partitioner assigns keys to reduce partitions. Implementations must be
// deterministic for a fixed parts.
type Partitioner[K comparable] interface {
	Partition(k K, parts int) int
}

var hashSeed = maphash.MakeSeed()

// HashPartitioner is the default partitioner, hashing the key.
type HashPartitioner[K comparable] struct{}

// Partition implements Partitioner.
func (HashPartitioner[K]) Partition(k K, parts int) int {
	return int(maphash.Comparable(hashSeed, k) % uint64(parts))
}

// FuncPartitioner adapts a function to the Partitioner interface (the tensor
// block partitioner built from Algorithm 2 boundaries uses this).
type FuncPartitioner[K comparable] func(k K, parts int) int

// Partition implements Partitioner.
func (f FuncPartitioner[K]) Partition(k K, parts int) int { return f(k, parts) }

// ReduceByKey merges all values per key with combine, using map-side
// combining before the shuffle (the paper's §III-F notes replacing
// groupByKey with reduceByKey/combineByKey precisely for this).
func ReduceByKey[K comparable, V any](r *RDD[KV[K, V]], name string, parts int, combine func(V, V) V) *RDD[KV[K, V]] {
	return reduceByKeyWith(r, name, parts, HashPartitioner[K]{}, combine)
}

// ReduceByKeyPartitioned is ReduceByKey with an explicit partitioner.
func ReduceByKeyPartitioned[K comparable, V any](r *RDD[KV[K, V]], name string, parts int, pt Partitioner[K], combine func(V, V) V) *RDD[KV[K, V]] {
	return reduceByKeyWith(r, name, parts, pt, combine)
}

func reduceByKeyWith[K comparable, V any](r *RDD[KV[K, V]], name string, parts int, pt Partitioner[K], combine func(V, V) V) *RDD[KV[K, V]] {
	if parts <= 0 {
		parts = r.parts
	}
	ex := newExchange(r.c, name, r.deps, r.parts, parts, func(tc *TaskCtx, mapPart int) ([][]KV[K, V], error) {
		in, err := r.computePartition(tc, mapPart)
		if err != nil {
			return nil, err
		}
		combined := make([]map[K]V, parts)
		for _, kv := range in {
			rp := pt.Partition(kv.K, parts)
			m := combined[rp]
			if m == nil {
				m = make(map[K]V)
				combined[rp] = m
			}
			if old, ok := m[kv.K]; ok {
				m[kv.K] = combine(old, kv.V)
			} else {
				m[kv.K] = kv.V
			}
		}
		out := make([][]KV[K, V], parts)
		for rp, m := range combined {
			if m == nil {
				continue
			}
			bucket := make([]KV[K, V], 0, len(m))
			for k, v := range m {
				bucket = append(bucket, KV[K, V]{k, v})
			}
			out[rp] = bucket
		}
		return out, nil
	})
	return &RDD[KV[K, V]]{
		c:     r.c,
		name:  name,
		parts: parts,
		deps:  []dep{ex},
		compute: func(tc *TaskCtx, p int) ([]KV[K, V], error) {
			records, err := ex.fetch(tc, p)
			if err != nil {
				return nil, err
			}
			m := make(map[K]V, len(records))
			for _, kv := range records {
				if old, ok := m[kv.K]; ok {
					m[kv.K] = combine(old, kv.V)
				} else {
					m[kv.K] = kv.V
				}
			}
			out := make([]KV[K, V], 0, len(m))
			for k, v := range m {
				out = append(out, KV[K, V]{k, v})
			}
			return out, nil
		},
	}
}

// AggregateByKey folds values into per-key accumulators: zero() seeds, seq
// folds a value in (map side), comb merges accumulators (reduce side).
func AggregateByKey[K comparable, V, A any](r *RDD[KV[K, V]], name string, parts int,
	zero func() A, seq func(A, V) A, comb func(A, A) A) *RDD[KV[K, A]] {
	if parts <= 0 {
		parts = r.parts
	}
	pt := HashPartitioner[K]{}
	ex := newExchange(r.c, name, r.deps, r.parts, parts, func(tc *TaskCtx, mapPart int) ([][]KV[K, A], error) {
		in, err := r.computePartition(tc, mapPart)
		if err != nil {
			return nil, err
		}
		combined := make([]map[K]A, parts)
		for _, kv := range in {
			rp := pt.Partition(kv.K, parts)
			m := combined[rp]
			if m == nil {
				m = make(map[K]A)
				combined[rp] = m
			}
			acc, ok := m[kv.K]
			if !ok {
				acc = zero()
			}
			m[kv.K] = seq(acc, kv.V)
		}
		out := make([][]KV[K, A], parts)
		for rp, m := range combined {
			if m == nil {
				continue
			}
			bucket := make([]KV[K, A], 0, len(m))
			for k, a := range m {
				bucket = append(bucket, KV[K, A]{k, a})
			}
			out[rp] = bucket
		}
		return out, nil
	})
	return &RDD[KV[K, A]]{
		c:     r.c,
		name:  name,
		parts: parts,
		deps:  []dep{ex},
		compute: func(tc *TaskCtx, p int) ([]KV[K, A], error) {
			records, err := ex.fetch(tc, p)
			if err != nil {
				return nil, err
			}
			m := make(map[K]A, len(records))
			for _, kv := range records {
				if old, ok := m[kv.K]; ok {
					m[kv.K] = comb(old, kv.V)
				} else {
					m[kv.K] = kv.V
				}
			}
			out := make([]KV[K, A], 0, len(m))
			for k, a := range m {
				out = append(out, KV[K, A]{k, a})
			}
			return out, nil
		},
	}
}

// GroupByKey gathers all values per key (no map-side combining — kept for
// the ablation contrasting it with ReduceByKey, as §III-F discusses).
func GroupByKey[K comparable, V any](r *RDD[KV[K, V]], name string, parts int) *RDD[KV[K, []V]] {
	if parts <= 0 {
		parts = r.parts
	}
	pt := HashPartitioner[K]{}
	ex := newExchange(r.c, name, r.deps, r.parts, parts, func(tc *TaskCtx, mapPart int) ([][]KV[K, V], error) {
		in, err := r.computePartition(tc, mapPart)
		if err != nil {
			return nil, err
		}
		out := make([][]KV[K, V], parts)
		for _, kv := range in {
			rp := pt.Partition(kv.K, parts)
			out[rp] = append(out[rp], kv)
		}
		return out, nil
	})
	return &RDD[KV[K, []V]]{
		c:     r.c,
		name:  name,
		parts: parts,
		deps:  []dep{ex},
		compute: func(tc *TaskCtx, p int) ([]KV[K, []V], error) {
			records, err := ex.fetch(tc, p)
			if err != nil {
				return nil, err
			}
			m := make(map[K][]V)
			for _, kv := range records {
				m[kv.K] = append(m[kv.K], kv.V)
			}
			out := make([]KV[K, []V], 0, len(m))
			for k, vs := range m {
				out = append(out, KV[K, []V]{k, vs})
			}
			return out, nil
		},
	}
}

// PartitionBy redistributes records so that partition p holds exactly the
// keys pt maps to p. Records and duplicates are preserved.
func PartitionBy[K comparable, V any](r *RDD[KV[K, V]], name string, parts int, pt Partitioner[K]) *RDD[KV[K, V]] {
	if parts <= 0 {
		parts = r.parts
	}
	ex := newExchange(r.c, name, r.deps, r.parts, parts, func(tc *TaskCtx, mapPart int) ([][]KV[K, V], error) {
		in, err := r.computePartition(tc, mapPart)
		if err != nil {
			return nil, err
		}
		out := make([][]KV[K, V], parts)
		for _, kv := range in {
			rp := pt.Partition(kv.K, parts)
			out[rp] = append(out[rp], kv)
		}
		return out, nil
	})
	return &RDD[KV[K, V]]{
		c:     r.c,
		name:  name,
		parts: parts,
		deps:  []dep{ex},
		compute: func(tc *TaskCtx, p int) ([]KV[K, V], error) {
			return ex.fetch(tc, p)
		},
	}
}

// JoinedPair is the value type produced by Join.
type JoinedPair[V, W any] struct {
	Left  V
	Right W
}

// CoGrouped is the value type produced by CoGroup.
type CoGrouped[V, W any] struct {
	Left  []V
	Right []W
}

// CoGroup co-locates both RDDs by key and gathers each side's values.
func CoGroup[K comparable, V, W any](a *RDD[KV[K, V]], b *RDD[KV[K, W]], name string, parts int) *RDD[KV[K, CoGrouped[V, W]]] {
	if parts <= 0 {
		parts = a.parts
	}
	pt := HashPartitioner[K]{}
	exA := newExchange(a.c, name+":left", a.deps, a.parts, parts, func(tc *TaskCtx, mapPart int) ([][]KV[K, V], error) {
		in, err := a.computePartition(tc, mapPart)
		if err != nil {
			return nil, err
		}
		out := make([][]KV[K, V], parts)
		for _, kv := range in {
			rp := pt.Partition(kv.K, parts)
			out[rp] = append(out[rp], kv)
		}
		return out, nil
	})
	exB := newExchange(b.c, name+":right", b.deps, b.parts, parts, func(tc *TaskCtx, mapPart int) ([][]KV[K, W], error) {
		in, err := b.computePartition(tc, mapPart)
		if err != nil {
			return nil, err
		}
		out := make([][]KV[K, W], parts)
		for _, kv := range in {
			rp := pt.Partition(kv.K, parts)
			out[rp] = append(out[rp], kv)
		}
		return out, nil
	})
	return &RDD[KV[K, CoGrouped[V, W]]]{
		c:     a.c,
		name:  name,
		parts: parts,
		deps:  []dep{exA, exB},
		compute: func(tc *TaskCtx, p int) ([]KV[K, CoGrouped[V, W]], error) {
			left, err := exA.fetch(tc, p)
			if err != nil {
				return nil, err
			}
			right, err := exB.fetch(tc, p)
			if err != nil {
				return nil, err
			}
			m := make(map[K]*CoGrouped[V, W])
			for _, kv := range left {
				g := m[kv.K]
				if g == nil {
					g = &CoGrouped[V, W]{}
					m[kv.K] = g
				}
				g.Left = append(g.Left, kv.V)
			}
			for _, kv := range right {
				g := m[kv.K]
				if g == nil {
					g = &CoGrouped[V, W]{}
					m[kv.K] = g
				}
				g.Right = append(g.Right, kv.V)
			}
			out := make([]KV[K, CoGrouped[V, W]], 0, len(m))
			for k, g := range m {
				out = append(out, KV[K, CoGrouped[V, W]]{k, *g})
			}
			return out, nil
		},
	}
}

// Join returns the inner join of a and b: one output record per (left,right)
// value pair sharing a key.
func Join[K comparable, V, W any](a *RDD[KV[K, V]], b *RDD[KV[K, W]], name string, parts int) *RDD[KV[K, JoinedPair[V, W]]] {
	cg := CoGroup(a, b, name, parts)
	return FlatMap(cg, name+":pairs", func(kv KV[K, CoGrouped[V, W]]) []KV[K, JoinedPair[V, W]] {
		var out []KV[K, JoinedPair[V, W]]
		for _, l := range kv.V.Left {
			for _, r := range kv.V.Right {
				out = append(out, KV[K, JoinedPair[V, W]]{kv.K, JoinedPair[V, W]{l, r}})
			}
		}
		return out
	})
}

// MapValues applies f to every value, keeping keys and partitioning.
func MapValues[K comparable, V, W any](r *RDD[KV[K, V]], name string, f func(V) W) *RDD[KV[K, W]] {
	return Map(r, name, func(kv KV[K, V]) KV[K, W] {
		return KV[K, W]{kv.K, f(kv.V)}
	})
}

// CollectAsMap collects a pair RDD into a map on the driver. Later
// occurrences of a duplicate key win, matching Spark.
func CollectAsMap[K comparable, V any](r *RDD[KV[K, V]]) (map[K]V, error) {
	items, err := r.Collect()
	if err != nil {
		return nil, err
	}
	m := make(map[K]V, len(items))
	for _, kv := range items {
		m[kv.K] = kv.V
	}
	return m, nil
}
