package rdd

import (
	"cmp"
	"sort"
)

// RangePartitioner assigns ordered keys to contiguous partitions using
// sampled split points, so that partition p holds keys in
// (splits[p-1], splits[p]] — Spark's sortByKey machinery.
type RangePartitioner[K cmp.Ordered] struct {
	splits []K // len parts-1, ascending
}

// NewRangePartitioner builds split points from a sample of keys.
func NewRangePartitioner[K cmp.Ordered](sample []K, parts int) RangePartitioner[K] {
	if parts < 1 {
		parts = 1
	}
	sorted := append([]K(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	splits := make([]K, 0, parts-1)
	for p := 1; p < parts; p++ {
		if len(sorted) == 0 {
			break
		}
		idx := len(sorted) * p / parts
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		splits = append(splits, sorted[idx])
	}
	return RangePartitioner[K]{splits: splits}
}

// Partition implements Partitioner.
func (r RangePartitioner[K]) Partition(k K, parts int) int {
	p := sort.Search(len(r.splits), func(i int) bool { return k <= r.splits[i] })
	if p >= parts {
		p = parts - 1
	}
	return p
}

// SortByKey globally sorts a pair RDD by key: keys are range-partitioned
// using a driver-side sample, then each partition sorts locally, so
// collecting the result yields ascending key order.
func SortByKey[K cmp.Ordered, V any](r *RDD[KV[K, V]], name string, parts int) (*RDD[KV[K, V]], error) {
	if parts <= 0 {
		parts = r.parts
	}
	// Sample up to ~20 keys per output partition for the split points.
	sampled, err := Sample(Map(r, name+":keys", func(kv KV[K, V]) K { return kv.K }), name+":sample", sampleFraction(parts), 42).Collect()
	if err != nil {
		return nil, err
	}
	pt := NewRangePartitioner(sampled, parts)
	shuffled := PartitionBy(r, name+":range", parts, pt)
	return MapPartitions(shuffled, name, func(tc *TaskCtx, p int, in []KV[K, V]) ([]KV[K, V], error) {
		out := append([]KV[K, V](nil), in...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].K < out[j].K })
		return out, nil
	}), nil
}

func sampleFraction(parts int) float64 {
	// Aim for a modest constant number of samples per partition without
	// knowing the dataset size; 5% floor keeps tiny datasets represented.
	f := 0.05 * float64(parts)
	if f > 1 {
		f = 1
	}
	return f
}
