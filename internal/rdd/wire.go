package rdd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// WireFormat selects how shuffle record payloads are laid out on the wire.
// The zero value means "unset"; callers resolve it to a concrete format
// (WireVarint unless they opt into lossy float32). Each encoded record frame
// carries its format in a leading tag byte, so mixed blocks decode correctly
// and a decoded record re-encodes to identical bytes — the property the
// chaos e2e's bit-equal BytesShuffled assertions and the codec fuzzer rely
// on.
type WireFormat uint8

const (
	// WireRaw is the v1 layout: full-width little-endian uint32 row indices
	// and float64 values. Kept as the compatibility/debug format.
	WireRaw WireFormat = 1
	// WireVarint is the lossless v2 layout: zigzag-varint delta-coded row
	// indices (sorted row runs make the deltas small) and float64 values.
	WireVarint WireFormat = 2
	// WireF32 is the lossy v2 layout: delta-varint rows plus float32 values,
	// widened back to float64 on decode so driver-side accumulation stays in
	// double precision. Halves the dominant value payload.
	WireF32 WireFormat = 3
)

// String names the format the way the -wire CLI flag spells it.
func (w WireFormat) String() string {
	switch w {
	case WireRaw:
		return "raw"
	case WireVarint:
		return "varint"
	case WireF32:
		return "f32"
	case 0:
		return "auto"
	}
	return fmt.Sprintf("WireFormat(%d)", uint8(w))
}

// ParseWireFormat parses a -wire flag value. The empty string and "auto"
// resolve to the unset zero value (the solver then picks WireVarint, the
// lossless default).
func ParseWireFormat(s string) (WireFormat, error) {
	switch s {
	case "", "auto":
		return 0, nil
	case "raw", "v1":
		return WireRaw, nil
	case "varint", "lossless":
		return WireVarint, nil
	case "f32", "float32":
		return WireF32, nil
	}
	return 0, fmt.Errorf("rdd: unknown wire format %q (want raw, varint, or f32)", s)
}

// Valid reports whether w is a concrete wire format (not the unset zero).
func (w WireFormat) Valid() bool { return w >= WireRaw && w <= WireF32 }

// BytesPerVal returns the wire width of one value under format w. Shuffle
// cost models that estimate value traffic (e.g. the factor-row shipment
// charge in the MTTKRP map stage) scale by it.
func (w WireFormat) BytesPerVal() int64 {
	if w == WireF32 {
		return 4
	}
	return 8
}

// maxRowDelta bounds a single decoded row delta. Legitimate deltas between
// int32 row indices fit in 33 bits; rejecting anything larger both catches
// corrupt frames early and keeps the running-sum overflow check below inside
// int64 range.
const maxRowDelta = int64(1) << 33

var (
	errRowVarint   = errors.New("rdd: truncated or malformed varint row index")
	errRowOverflow = errors.New("rdd: delta-coded row index overflows int32")
	errValShort    = errors.New("rdd: truncated value payload")
)

// AppendDeltaRows appends rows to buf as zigzag-varint deltas from the
// previous row (first delta is from zero). Sorted slab rows yield mostly
// 1-byte deltas versus 4 bytes each in WireRaw.
func AppendDeltaRows(buf []byte, rows []int32) []byte {
	prev := int64(0)
	for _, r := range rows {
		buf = binary.AppendVarint(buf, int64(r)-prev)
		prev = int64(r)
	}
	return buf
}

// DecodeDeltaRows decodes len(dst) delta-coded rows from data into dst and
// returns the remaining bytes. Every intermediate running sum must fit an
// int32; out-of-range chains (the delta-overflow corruption class) are
// rejected rather than silently wrapped.
func DecodeDeltaRows(dst []int32, data []byte) ([]byte, error) {
	prev := int64(0)
	for i := range dst {
		d, used := binary.Varint(data)
		if used <= 0 {
			return nil, errRowVarint
		}
		data = data[used:]
		if d < -maxRowDelta || d > maxRowDelta {
			return nil, errRowOverflow
		}
		prev += d
		if prev < math.MinInt32 || prev > math.MaxInt32 {
			return nil, errRowOverflow
		}
		dst[i] = int32(prev)
	}
	return data, nil
}

// AppendRawRows appends rows as full-width little-endian uint32s (WireRaw).
func AppendRawRows(buf []byte, rows []int32) []byte {
	for _, r := range rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	return buf
}

// DecodeRawRows decodes len(dst) full-width rows from data into dst.
func DecodeRawRows(dst []int32, data []byte) ([]byte, error) {
	if len(data) < 4*len(dst) {
		return nil, errValShort
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return data[4*len(dst):], nil
}

// AppendF64Vals appends vals as little-endian float64s.
func AppendF64Vals(buf []byte, vals []float64) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeF64Vals decodes len(dst) float64s from data into dst.
func DecodeF64Vals(dst []float64, data []byte) ([]byte, error) {
	if len(data) < 8*len(dst) {
		return nil, errValShort
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return data[8*len(dst):], nil
}

// AppendF32Vals appends vals narrowed to little-endian float32s (WireF32).
func AppendF32Vals(buf []byte, vals []float64) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(v)))
	}
	return buf
}

// DecodeF32Vals decodes len(dst) float32s from data, widening each to
// float64 so downstream accumulation runs in double precision. Widening is
// exact, so decode→re-encode round-trips bit-identically.
func DecodeF32Vals(dst []float64, data []byte) ([]byte, error) {
	if len(data) < 4*len(dst) {
		return nil, errValShort
	}
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:])))
	}
	return data[4*len(dst):], nil
}
