package rdd

import (
	"sync/atomic"
	"testing"
	"time"

	"distenc/internal/leakcheck"
)

// slowEvictor records whether its eviction ran to completion, after a delay
// long enough that an unjoined eviction goroutine would still be mid-flight
// when Quiesce returns.
type slowEvictor struct {
	delay time.Duration
	done  atomic.Bool
}

func (e *slowEvictor) evictMachine(m int) {
	time.Sleep(e.delay)
	e.done.Store(true)
}

// TestMachineLostEvictionJoinsQuiesce pins the fix for the unowned eviction
// goroutine: machineLost spawns evictDeadMachine asynchronously (evicting
// synchronously inside a task could deadlock on partition locks), but that
// goroutine must join the attempts group — otherwise Quiesce, and therefore
// Close, returns while evictors are still republishing state, and shutdown
// tears the cluster out from under its own recovery.
func TestMachineLostEvictionJoinsQuiesce(t *testing.T) {
	c := testCluster(t, Config{Machines: 3})
	ev := &slowEvictor{delay: 150 * time.Millisecond}
	id := c.registerEvictor(ev)
	defer c.unregisterEvictor(id)

	c.machineLost(1, "test: simulated transport failure")
	c.Quiesce()
	if !ev.done.Load() {
		t.Fatal("Quiesce returned while machineLost's eviction goroutine was still running")
	}
	leakcheck.Check(t)
}

// TestSpeculationMonitorJoinsQuiesce pins the monitor's ownership: after a
// speculative stage completes and the cluster closes, no monitor goroutine
// may survive. Before the monitor joined the attempts group, a Close racing
// the tail of a stage could tear down machines under a live monitor.
func TestSpeculationMonitorJoinsQuiesce(t *testing.T) {
	c := testCluster(t, Config{
		Machines: 4, CoresPerMachine: 2,
		Speculation: SpeculationConfig{
			Enabled: true, Quantile: 0.5, Multiplier: 2, MinDuration: 5 * time.Millisecond,
		},
	})
	r := MapPartitions(Parallelize(c, "nums", ints(16), 4), "slow",
		func(tc *TaskCtx, p int, in []int) ([]int, error) {
			if p == 0 {
				time.Sleep(50 * time.Millisecond)
			}
			return in, nil
		})
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	leakcheck.Check(t)
}
