package rdd

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"
)

// exchange is one shuffle: the map side buckets and serializes its records by
// target partition; the reduce side fetches and deserializes them. Blocks are
// held in memory (ModeInMemory) or spilled through the filesystem
// (ModeMapReduce), with every byte counted in the cluster metrics — the
// quantity Lemma 3 of the paper bounds.
type exchange[R any] struct {
	c           *Cluster
	id          int64
	name        string
	mapParts    int
	reduceParts int
	// buckets computes one map task's output: reduceParts slices of records.
	buckets func(tc *TaskCtx, mapPart int) ([][]R, error)
	// parentDeps are materialized before the map stage runs.
	parentDeps []dep

	once sync.Once
	err  error

	// mu guards the map-output state below: stage tasks publish into it and
	// KillMachine evicts from it. Lost entries are recomputed OUTSIDE the
	// lock (the recompute can run a whole lineage) with inflight as the
	// per-map-partition single-flight guard: concurrent fetchers of the same
	// lost output wait on its channel instead of convoying on mu or
	// recomputing the partition once per waiter.
	mu       sync.Mutex
	blocks   [][][]byte            // [mapPart][reducePart] (nil entries in disk and remote modes)
	files    [][]string            // paths in disk mode
	lens     [][]int32             // [mapPart][reducePart] block sizes under a remote Transport (0: no block)
	machines []int                 // machine whose memory holds map part p's output (-1: none)
	lost     []bool                // map outputs evicted by a machine kill, pending recompute
	inflight map[int]chan struct{} // map partitions being recomputed right now
}

func newExchange[R any](c *Cluster, name string, parentDeps []dep, mapParts, reduceParts int,
	buckets func(tc *TaskCtx, mapPart int) ([][]R, error)) *exchange[R] {
	e := &exchange[R]{
		c:           c,
		id:          c.newID(),
		name:        name,
		mapParts:    mapParts,
		reduceParts: reduceParts,
		buckets:     buckets,
		parentDeps:  parentDeps,
	}
	c.registerEvictor(e)
	return e
}

// evictMachine marks the in-memory map outputs the dead machine held as lost;
// fetch recomputes them from lineage on demand. ModeMapReduce spill files
// model replicated HDFS storage and survive machine loss.
func (e *exchange[R]) evictMachine(m int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.blocks == nil || e.c.cfg.Mode == ModeMapReduce {
		return
	}
	n := 0
	for p := range e.blocks {
		if e.machines[p] == m {
			e.blocks[p] = nil
			e.machines[p] = -1
			e.lost[p] = true
			n++
		}
	}
	if n > 0 {
		e.c.recordRecovery(RecoveryEvent{
			Kind:      RecoveryShuffleEvict,
			Stage:     e.name,
			Partition: -1,
			Machine:   m,
			Cause:     fmt.Sprintf("%d map output(s) lost; recompute from lineage on next fetch", n),
		})
	}
}

// encodeShuffleBuckets serializes one map task's buckets, counting every
// serialized byte as the producing task's shuffle traffic.
func encodeShuffleBuckets[R any](tc *TaskCtx, bs [][]R) ([][]byte, error) {
	enc := make([][]byte, len(bs))
	for rp, records := range bs {
		if len(records) == 0 {
			continue
		}
		data, err := encodeBlock(records)
		if err != nil {
			return nil, fmt.Errorf("rdd: encoding shuffle block: %w", err)
		}
		tc.CountShuffled(int64(len(data)))
		enc[rp] = data
	}
	return enc, nil
}

// ensure runs the map (shuffle-write) stage exactly once.
func (e *exchange[R]) ensure() error {
	e.once.Do(func() {
		for _, d := range e.parentDeps {
			if e.err = d.ensure(); e.err != nil {
				return
			}
		}
		e.mu.Lock()
		e.blocks = make([][][]byte, e.mapParts)
		e.files = make([][]string, e.mapParts)
		e.lens = make([][]int32, e.mapParts)
		e.machines = make([]int, e.mapParts)
		for p := range e.machines {
			e.machines[p] = -1
		}
		e.lost = make([]bool, e.mapParts)
		e.mu.Unlock()
		e.err = e.c.runStage("shuffle-write:"+e.name, e.mapParts, func(tc *TaskCtx, p int) error {
			bs, err := e.buckets(tc, p)
			if err != nil {
				return err
			}
			if len(bs) != e.reduceParts {
				return fmt.Errorf("rdd: shuffle %s map task %d produced %d buckets, want %d", e.name, p, len(bs), e.reduceParts)
			}
			enc, err := encodeShuffleBuckets(tc, bs)
			if err != nil {
				return err
			}
			var paths []string
			if e.c.cfg.Mode == ModeMapReduce {
				paths = make([]string, e.reduceParts)
				for rp, data := range enc {
					if data == nil {
						continue
					}
					path := filepath.Join(e.c.tmpDir, fmt.Sprintf("ex%d-m%d-r%d.blk", e.id, p, rp))
					if err := e.c.writeFrameFileAtomic(path, data); err != nil {
						return fmt.Errorf("rdd: spilling shuffle block: %w", err)
					}
					tc.countSpillWrite(int64(len(data)))
					e.c.diskDelay(len(data))
					paths[rp] = path
					enc[rp] = nil // spilled: no in-memory copy to lose
				}
			}
			// Under a remote Transport the bucket bytes move to the producing
			// machine's worker process; the driver keeps only their lengths
			// (presence metadata for the reduce side). Speculative duplicate
			// attempts store identical bytes under the same IDs on their own
			// machines; machines[p] below decides which copy is ever fetched.
			var lens []int32
			if e.c.remote() != nil && e.c.cfg.Mode != ModeMapReduce {
				if lens, err = e.putBlocks(tc, p, enc); err != nil {
					return err
				}
			}
			// Publish on commit only: under speculative execution two
			// attempts of the same map task can finish, and the map-output
			// registry (in particular machines[p], which drives kill-time
			// eviction) must reflect the attempt that won the race.
			tc.OnSuccess(func() {
				e.mu.Lock()
				e.blocks[p] = enc
				e.files[p] = paths
				e.lens[p] = lens
				e.machines[p] = tc.Machine
				e.lost[p] = false
				e.mu.Unlock()
			})
			return nil
		})
	})
	return e.err
}

// putBlocks stores one map partition's encoded buckets on the producing
// machine's worker and returns their lengths, nilling the driver-side copies
// as it goes (the worker holds the only copy, exactly as a real executor
// would). An unreachable worker means the task's own machine died under it;
// the resulting retryable error re-places the task elsewhere.
func (e *exchange[R]) putBlocks(tc *TaskCtx, mp int, enc [][]byte) ([]int32, error) {
	rt := e.c.remote()
	lens := make([]int32, e.reduceParts)
	for rp, data := range enc {
		if data == nil {
			continue
		}
		id := BlockID{Kind: BlockShuffle, Owner: e.id, Map: int32(mp), Reduce: int32(rp)}
		if err := rt.Put(tc.Machine, id, data); err != nil {
			return nil, e.c.transportTaskErr(tc.Machine, fmt.Sprintf("storing shuffle %s block %d/%d", e.name, mp, rp), err)
		}
		lens[rp] = int32(len(data))
		enc[rp] = nil
	}
	return lens, nil
}

// blockFor returns map part mp's encoded bucket for reduce partition rp in
// ModeInMemory, recomputing the whole map partition from lineage first if a
// machine kill evicted it — Spark's FetchFailed → parent-stage re-execution,
// collapsed into the fetching task (which pays and records the recompute).
// Exactly one fetcher recomputes a given lost output; concurrent fetchers
// wait for it and re-check, and e.mu is never held across the recompute (or,
// under a remote Transport, across any network fetch).
func (e *exchange[R]) blockFor(tc *TaskCtx, mp, rp int) ([]byte, error) {
	rt := e.c.remote()
	for {
		e.mu.Lock()
		if !e.lost[mp] {
			if rt == nil {
				data := e.blocks[mp][rp]
				e.mu.Unlock()
				return data, nil
			}
			m := e.machines[mp]
			if m < 0 || e.c.machineDead(m) {
				// machineLost runs eviction asynchronously; don't burn a
				// fetch (and a task retry) on a machine already known dead —
				// flag the output lost ourselves and fall through to the
				// recompute path.
				e.blocks[mp] = nil
				e.machines[mp] = -1
				e.lost[mp] = true
				e.mu.Unlock()
				continue
			}
			n := int32(0)
			if e.lens[mp] != nil {
				n = e.lens[mp][rp]
			}
			e.mu.Unlock()
			if n == 0 {
				return nil, nil
			}
			id := BlockID{Kind: BlockShuffle, Owner: e.id, Map: int32(mp), Reduce: int32(rp)}
			data, err := rt.Fetch(m, id)
			if err != nil {
				return nil, e.c.transportTaskErr(m, fmt.Sprintf("fetching shuffle %s block %d/%d", e.name, mp, rp), err)
			}
			if int32(len(data)) != n {
				return nil, fmt.Errorf("rdd: shuffle %s block %d/%d: fetched %d bytes, want %d", e.name, mp, rp, len(data), n)
			}
			return data, nil
		}
		if ch, ok := e.inflight[mp]; ok {
			e.mu.Unlock()
			<-ch
			// The recompute finished (or failed, leaving lost[mp] set for
			// the next fetcher to retry); loop to re-read the state.
			continue
		}
		if e.inflight == nil {
			e.inflight = map[int]chan struct{}{}
		}
		ch := make(chan struct{})
		e.inflight[mp] = ch
		e.mu.Unlock()

		enc, err := e.recompute(tc, mp)
		// Under a remote Transport the recomputed buckets move to the
		// recomputing task's worker before publication; the bucket we return
		// below is the in-hand copy, so the common case costs no re-fetch.
		var lens []int32
		var out []byte
		if err == nil && rt != nil {
			out = enc[rp]
			lens, err = e.putBlocks(tc, mp, enc)
		}

		e.mu.Lock()
		delete(e.inflight, mp)
		if err == nil {
			e.blocks[mp] = enc
			e.lens[mp] = lens
			e.machines[mp] = tc.Machine
			e.lost[mp] = false
		}
		e.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, err
		}
		if rt != nil {
			return out, nil
		}
		return enc[rp], nil
	}
}

// recompute re-runs map task mp's lineage to regenerate its serialized
// buckets. The whole window runs with the TaskCtx recompute flag set, so
// every CountShuffled inside it — encodeShuffleBuckets and any traffic the
// lineage's own closures declare — lands in BytesRecomputed rather than
// BytesShuffled: the original bytes were already counted when the first map
// attempt committed, and double-counting them would make a killed run's
// Lemma 3 totals overstate a clean run's.
func (e *exchange[R]) recompute(tc *TaskCtx, mp int) ([][]byte, error) {
	start := time.Now()
	tc.beginRecompute()
	defer tc.endRecompute()
	bs, err := e.buckets(tc, mp)
	if err != nil {
		return nil, fmt.Errorf("rdd: recomputing lost map output %d of shuffle %s: %w", mp, e.name, err)
	}
	if len(bs) != e.reduceParts {
		return nil, fmt.Errorf("rdd: shuffle %s map task %d produced %d buckets, want %d", e.name, mp, len(bs), e.reduceParts)
	}
	enc, err := encodeShuffleBuckets(tc, bs)
	if err != nil {
		return nil, err
	}
	e.c.recordRecovery(RecoveryEvent{
		Kind:      RecoveryShuffleRecompute,
		Stage:     e.name,
		Partition: mp,
		Machine:   tc.Machine,
		Cause:     "lost map output recomputed from lineage",
		Cost:      time.Since(start),
	})
	return enc, nil
}

// fetch returns the decoded records destined for reduce partition rp,
// attributing any disk reads (and lost-block recomputes) to the fetching
// task.
func (e *exchange[R]) fetch(tc *TaskCtx, rp int) ([]R, error) {
	if err := e.ensure(); err != nil {
		return nil, err
	}
	var out []R
	var arena *Arena
	if isArenaBinaryRecord[R]() {
		// Fetched records live exactly as long as the consuming attempt, so
		// their payloads can come from the task arena (see Arena).
		arena = tc.Arena()
	}
	for mp := 0; mp < e.mapParts; mp++ {
		var data []byte
		if e.c.cfg.Mode == ModeMapReduce {
			if e.files[mp] == nil || e.files[mp][rp] == "" {
				continue
			}
			var err error
			data, err = readFrameFile(e.files[mp][rp])
			if err != nil {
				return nil, fmt.Errorf("rdd: reading spilled shuffle block: %w", err)
			}
			tc.countSpillRead(int64(len(data)))
			e.c.diskDelay(len(data))
		} else {
			var err error
			data, err = e.blockFor(tc, mp, rp)
			if err != nil {
				return nil, err
			}
			if data == nil {
				continue
			}
		}
		records, err := decodeBlockArena[R](arena, data)
		if err != nil {
			return nil, fmt.Errorf("rdd: decoding shuffle block: %w", err)
		}
		out = append(out, records...)
	}
	return out, nil
}

// ShuffleMap is the engine's lowest-level wide transformation: bucket runs
// once per map partition and returns the records destined for each of the
// reduceParts reduce partitions; the result RDD's partition p holds the
// concatenation of every map task's bucket p (in map-partition order, so the
// output is deterministic). The pair-RDD shuffles are equivalent to this plus
// per-key hashing; callers whose records are already grouped by destination —
// such as the packed MTTKRP slab records, whose sorted row ranges map to
// contiguous reduce partitions — use it directly to shuffle O(parts) records
// instead of O(keys).
func ShuffleMap[T, R any](r *RDD[T], name string, reduceParts int,
	bucket func(tc *TaskCtx, mapPart int, in []T) ([][]R, error)) *RDD[R] {
	if reduceParts <= 0 {
		reduceParts = r.parts
	}
	ex := newExchange(r.c, name, r.deps, r.parts, reduceParts, func(tc *TaskCtx, mapPart int) ([][]R, error) {
		in, err := r.computePartition(tc, mapPart)
		if err != nil {
			return nil, err
		}
		out, err := bucket(tc, mapPart, in)
		if err != nil {
			return nil, err
		}
		if len(out) != reduceParts {
			return nil, fmt.Errorf("rdd: ShuffleMap %s map task %d produced %d buckets, want %d", name, mapPart, len(out), reduceParts)
		}
		return out, nil
	})
	return &RDD[R]{
		c:     r.c,
		name:  name,
		parts: reduceParts,
		deps:  []dep{ex},
		compute: func(tc *TaskCtx, p int) ([]R, error) {
			return ex.fetch(tc, p)
		},
	}
}

// diskDelay models HDFS/disk latency proportional to the spilled bytes.
func (c *Cluster) diskDelay(n int) {
	if c.cfg.DiskLatencyPerMB <= 0 {
		return
	}
	d := time.Duration(float64(c.cfg.DiskLatencyPerMB) * float64(n) / (1 << 20))
	if d > 0 {
		time.Sleep(d)
	}
}
