package rdd

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// exchange is one shuffle: the map side buckets and serializes its records by
// target partition; the reduce side fetches and deserializes them. Blocks are
// held in memory (ModeInMemory) or spilled through the filesystem
// (ModeMapReduce), with every byte counted in the cluster metrics — the
// quantity Lemma 3 of the paper bounds.
type exchange[R any] struct {
	c           *Cluster
	id          int64
	name        string
	mapParts    int
	reduceParts int
	// buckets computes one map task's output: reduceParts slices of records.
	buckets func(tc *TaskCtx, mapPart int) ([][]R, error)
	// parentDeps are materialized before the map stage runs.
	parentDeps []dep

	once   sync.Once
	err    error
	blocks [][][]byte // [mapPart][reducePart] (nil entries in disk mode)
	files  [][]string // paths in disk mode
}

func newExchange[R any](c *Cluster, name string, parentDeps []dep, mapParts, reduceParts int,
	buckets func(tc *TaskCtx, mapPart int) ([][]R, error)) *exchange[R] {
	return &exchange[R]{
		c:           c,
		id:          c.newID(),
		name:        name,
		mapParts:    mapParts,
		reduceParts: reduceParts,
		buckets:     buckets,
		parentDeps:  parentDeps,
	}
}

// ensure runs the map (shuffle-write) stage exactly once.
func (e *exchange[R]) ensure() error {
	e.once.Do(func() {
		for _, d := range e.parentDeps {
			if e.err = d.ensure(); e.err != nil {
				return
			}
		}
		e.blocks = make([][][]byte, e.mapParts)
		e.files = make([][]string, e.mapParts)
		e.err = e.c.runStage("shuffle-write:"+e.name, e.mapParts, func(tc *TaskCtx, p int) error {
			bs, err := e.buckets(tc, p)
			if err != nil {
				return err
			}
			if len(bs) != e.reduceParts {
				return fmt.Errorf("rdd: shuffle %s map task %d produced %d buckets, want %d", e.name, p, len(bs), e.reduceParts)
			}
			enc := make([][]byte, e.reduceParts)
			var paths []string
			if e.c.cfg.Mode == ModeMapReduce {
				paths = make([]string, e.reduceParts)
			}
			for rp, records := range bs {
				if len(records) == 0 {
					continue
				}
				data, err := encodeBlock(records)
				if err != nil {
					return fmt.Errorf("rdd: encoding shuffle block: %w", err)
				}
				tc.CountShuffled(int64(len(data)))
				if e.c.cfg.Mode == ModeMapReduce {
					path := filepath.Join(e.c.tmpDir, fmt.Sprintf("ex%d-m%d-r%d.blk", e.id, p, rp))
					if err := os.WriteFile(path, data, 0o600); err != nil {
						return fmt.Errorf("rdd: spilling shuffle block: %w", err)
					}
					tc.countSpillWrite(int64(len(data)))
					e.c.diskDelay(len(data))
					paths[rp] = path
				} else {
					enc[rp] = data
				}
			}
			e.blocks[p] = enc
			e.files[p] = paths
			return nil
		})
	})
	return e.err
}

// fetch returns the decoded records destined for reduce partition rp,
// attributing any disk reads to the fetching task.
func (e *exchange[R]) fetch(tc *TaskCtx, rp int) ([]R, error) {
	if err := e.ensure(); err != nil {
		return nil, err
	}
	var out []R
	for mp := 0; mp < e.mapParts; mp++ {
		var data []byte
		if e.c.cfg.Mode == ModeMapReduce {
			if e.files[mp] == nil || e.files[mp][rp] == "" {
				continue
			}
			var err error
			data, err = os.ReadFile(e.files[mp][rp])
			if err != nil {
				return nil, fmt.Errorf("rdd: reading spilled shuffle block: %w", err)
			}
			tc.countSpillRead(int64(len(data)))
			e.c.diskDelay(len(data))
		} else {
			data = e.blocks[mp][rp]
			if data == nil {
				continue
			}
		}
		records, err := decodeBlock[R](data)
		if err != nil {
			return nil, fmt.Errorf("rdd: decoding shuffle block: %w", err)
		}
		out = append(out, records...)
	}
	return out, nil
}

// ShuffleMap is the engine's lowest-level wide transformation: bucket runs
// once per map partition and returns the records destined for each of the
// reduceParts reduce partitions; the result RDD's partition p holds the
// concatenation of every map task's bucket p (in map-partition order, so the
// output is deterministic). The pair-RDD shuffles are equivalent to this plus
// per-key hashing; callers whose records are already grouped by destination —
// such as the packed MTTKRP slab records, whose sorted row ranges map to
// contiguous reduce partitions — use it directly to shuffle O(parts) records
// instead of O(keys).
func ShuffleMap[T, R any](r *RDD[T], name string, reduceParts int,
	bucket func(tc *TaskCtx, mapPart int, in []T) ([][]R, error)) *RDD[R] {
	if reduceParts <= 0 {
		reduceParts = r.parts
	}
	ex := newExchange(r.c, name, r.deps, r.parts, reduceParts, func(tc *TaskCtx, mapPart int) ([][]R, error) {
		in, err := r.computePartition(tc, mapPart)
		if err != nil {
			return nil, err
		}
		out, err := bucket(tc, mapPart, in)
		if err != nil {
			return nil, err
		}
		if len(out) != reduceParts {
			return nil, fmt.Errorf("rdd: ShuffleMap %s map task %d produced %d buckets, want %d", name, mapPart, len(out), reduceParts)
		}
		return out, nil
	})
	return &RDD[R]{
		c:     r.c,
		name:  name,
		parts: reduceParts,
		deps:  []dep{ex},
		compute: func(tc *TaskCtx, p int) ([]R, error) {
			return ex.fetch(tc, p)
		},
	}
}

// diskDelay models HDFS/disk latency proportional to the spilled bytes.
func (c *Cluster) diskDelay(n int) {
	if c.cfg.DiskLatencyPerMB <= 0 {
		return
	}
	d := time.Duration(float64(c.cfg.DiskLatencyPerMB) * float64(n) / (1 << 20))
	if d > 0 {
		time.Sleep(d)
	}
}
