package rdd

import "sync"

// Arena is a per-task bump allocator for hot-path scratch memory. Tasks
// obtain one via TaskCtx.Arena; the cluster pools arenas keyed by (machine,
// stage, partition), so the attempt running stage S's partition P on machine
// M in iteration i+1 gets back the very slabs iteration i's attempt used —
// Reset rewinds the bump offsets without freeing the backing arrays, and
// checkin grows them to the cycle's high-water demand, so steady-state
// iterations allocate nothing.
//
// Lifetime contract: memory handed out by an arena is valid until the next
// Reset of that arena, which happens at the next checkout of the same
// (machine, stage, partition) key — i.e. the next attempt of the same task,
// typically one solver iteration later. That makes arena memory safe for
// (a) scratch consumed within the attempt and (b) task outputs the driver
// consumes before the next iteration (collect/reduce results), but NOT for
// anything with a longer life: cached RDD partitions, checkpoint data, and
// encoded shuffle blocks (which live in the exchange across stages) must
// stay on the ordinary heap.
//
// Concurrency: an arena is owned by exactly one task attempt at a time.
// Speculative duplicate attempts run on distinct machines and thus draw
// distinct arenas; a zombie attempt that is still draining when the next
// iteration starts simply keeps its arena until it finishes, and the new
// attempt pops a fresh one from (or adds one to) the pool.
type Arena struct {
	f64 arenaSlab[float64]
	i32 arenaSlab[int32]
	byt arenaSlab[byte]
	bl  arenaSlab[bool]
	// stash holds long-lived typed scratch (record buffers, slice-of-slice
	// containers) that survives Reset: closures key their scratch structs by
	// a unique string and reuse them across iterations.
	stash map[string]any
}

// arenaSlab is one typed bump region. alloc grows geometrically on overflow
// (abandoning the old backing — outstanding slices stay valid, they just no
// longer share it); trim consolidates to the cycle's total demand at checkin
// so the next cycle is served by a single allocation-free backing.
type arenaSlab[T any] struct {
	buf  []T
	off  int
	need int // total elements requested this cycle, across grows
}

func (s *arenaSlab[T]) alloc(n int) []T {
	s.need += n
	if s.off+n > len(s.buf) {
		c := 2 * len(s.buf)
		if c < s.need {
			c = s.need
		}
		if c < 64 {
			c = 64
		}
		s.buf = make([]T, c)
		s.off = n
		return s.buf[:n:n]
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	clear(out) // reused region: hand out zeroed memory, like make
	return out
}

func (s *arenaSlab[T]) reset() { s.off, s.need = 0, 0 }

func (s *arenaSlab[T]) trim() {
	if s.need > len(s.buf) {
		s.buf = make([]T, s.need)
		s.off = len(s.buf) // unusable until the next reset
	}
}

// Float64s returns a zeroed arena-backed []float64 of length n.
func (a *Arena) Float64s(n int) []float64 { return a.f64.alloc(n) }

// Int32s returns a zeroed arena-backed []int32 of length n.
func (a *Arena) Int32s(n int) []int32 { return a.i32.alloc(n) }

// Bytes returns a zeroed arena-backed []byte of length n.
func (a *Arena) Bytes(n int) []byte { return a.byt.alloc(n) }

// Bools returns a zeroed arena-backed []bool of length n.
func (a *Arena) Bools(n int) []bool { return a.bl.alloc(n) }

// Reset rewinds every slab to empty without freeing backing memory. The
// stash survives. Called by the cluster when the arena is checked out to a
// new task attempt — user code normally never calls it.
func (a *Arena) Reset() {
	a.f64.reset()
	a.i32.reset()
	a.byt.reset()
	a.bl.reset()
}

// trim consolidates each slab's backing to the finished cycle's high-water
// demand, so the next same-shape cycle allocates nothing.
func (a *Arena) trim() {
	a.f64.trim()
	a.i32.trim()
	a.byt.trim()
	a.bl.trim()
}

// Stash returns the value stored under key, or nil. Stash entries survive
// Reset; use them for typed scratch containers the slab types can't express.
func (a *Arena) Stash(key string) any {
	return a.stash[key]
}

// SetStash stores v under key (see Stash).
func (a *Arena) SetStash(key string, v any) {
	if a.stash == nil {
		a.stash = make(map[string]any)
	}
	a.stash[key] = v
}

// arenaKey identifies one pooled arena lineage: the same task (stage,
// partition) re-running on the same machine gets the same slabs back.
type arenaKey struct {
	machine int
	stage   string
	part    int
}

// arenaPool is the cluster-wide free list of arenas per key.
type arenaPool struct {
	mu    sync.Mutex
	byKey map[arenaKey][]*Arena
}

func (ap *arenaPool) checkout(k arenaKey) *Arena {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if list := ap.byKey[k]; len(list) > 0 {
		a := list[len(list)-1]
		ap.byKey[k] = list[:len(list)-1]
		return a
	}
	return &Arena{}
}

func (ap *arenaPool) checkin(k arenaKey, a *Arena) {
	a.trim()
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if ap.byKey == nil {
		ap.byKey = make(map[arenaKey][]*Arena)
	}
	ap.byKey[k] = append(ap.byKey[k], a)
}
