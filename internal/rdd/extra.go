package rdd

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
)

// Union concatenates two RDDs of the same element type; the result has the
// partitions of a followed by those of b (no shuffle, like Spark's union).
func Union[T any](a, b *RDD[T], name string) *RDD[T] {
	if a.c != b.c {
		panic("rdd: Union across clusters")
	}
	deps := append(append([]dep(nil), a.deps...), b.deps...)
	return &RDD[T]{
		c:     a.c,
		name:  name,
		parts: a.parts + b.parts,
		deps:  deps,
		compute: func(tc *TaskCtx, p int) ([]T, error) {
			if p < a.parts {
				return a.computePartition(tc, p)
			}
			return b.computePartition(tc, p-a.parts)
		},
	}
}

// Distinct removes duplicate elements (comparable types), shuffling by value
// so each survivor appears exactly once across partitions.
func Distinct[T comparable](r *RDD[T], name string, parts int) *RDD[T] {
	keyed := Map(r, name+":key", func(v T) KV[T, struct{}] { return KV[T, struct{}]{v, struct{}{}} })
	reduced := ReduceByKey(keyed, name, parts, func(a, b struct{}) struct{} { return a })
	return Keys(reduced, name+":values")
}

// Keys projects a pair RDD onto its keys.
func Keys[K comparable, V any](r *RDD[KV[K, V]], name string) *RDD[K] {
	return Map(r, name, func(kv KV[K, V]) K { return kv.K })
}

// Values projects a pair RDD onto its values.
func Values[K comparable, V any](r *RDD[KV[K, V]], name string) *RDD[V] {
	return Map(r, name, func(kv KV[K, V]) V { return kv.V })
}

// CountByKey counts occurrences per key and collects the result on the
// driver.
func CountByKey[K comparable, V any](r *RDD[KV[K, V]], name string) (map[K]int64, error) {
	ones := MapValues(r, name+":ones", func(V) int64 { return 1 })
	counted := ReduceByKey(ones, name, r.parts, func(a, b int64) int64 { return a + b })
	return CollectAsMap(counted)
}

// Sample keeps each element with probability frac, deterministically from
// seed and the partition index (no shuffle).
func Sample[T any](r *RDD[T], name string, frac float64, seed uint64) *RDD[T] {
	return MapPartitions(r, name, func(tc *TaskCtx, p int, in []T) ([]T, error) {
		rng := rand.New(rand.NewPCG(seed, uint64(p)))
		var out []T
		for _, v := range in {
			if rng.Float64() < frac {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// Checkpoint computes every partition now, persists it through the
// filesystem, and returns an RDD that reads the checkpointed data — cutting
// the lineage, as Spark's checkpointing does for long iterative jobs. The
// checkpoint files model replicated stable storage: they survive KillMachine,
// so lost downstream state recovers by rereading them instead of replaying
// the cut lineage. Written bytes count as disk traffic once; every re-read
// counts as disk-read traffic again. The files are deleted when the returned
// RDD is Unpersisted, and any still alive are deleted by Cluster.Close.
func Checkpoint[T any](r *RDD[T], name string) (*RDD[T], error) {
	if err := r.ensureDeps(); err != nil {
		return nil, err
	}
	if r.c.remote() != nil {
		return checkpointRemote(r, name)
	}
	dir, err := r.c.checkpointDir()
	if err != nil {
		return nil, err
	}
	id := r.c.newID()
	paths := make([]string, r.parts)
	err = r.c.runStage("checkpoint:"+name, r.parts, func(tc *TaskCtx, p int) error {
		items, err := r.computePartition(tc, p)
		if err != nil {
			return err
		}
		data, err := encodeBlock(items)
		if err != nil {
			return fmt.Errorf("rdd: encoding checkpoint: %w", err)
		}
		path := filepath.Join(dir, fmt.Sprintf("ckpt%d-p%d.blk", id, p))
		// Atomic write + commit-time install: speculative duplicate attempts
		// may both write this deterministic path, and only the race winner
		// publishes it to the driver-side paths slice.
		if err := r.c.writeFrameFileAtomic(path, data); err != nil {
			return fmt.Errorf("rdd: writing checkpoint: %w", err)
		}
		tc.countSpillWrite(int64(len(data)))
		r.c.diskDelay(len(data))
		tc.OnSuccess(func() { paths[p] = path })
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.c.trackCheckpoint(id, paths)
	out := &RDD[T]{
		c:     r.c,
		name:  name,
		parts: r.parts,
		compute: func(tc *TaskCtx, p int) ([]T, error) {
			data, err := readFrameFile(paths[p])
			if err != nil {
				return nil, fmt.Errorf("rdd: reading checkpoint: %w", err)
			}
			tc.countSpillRead(int64(len(data)))
			tc.c.diskDelay(len(data))
			return decodeBlock[T](data)
		},
	}
	out.cleanup = func() { r.c.dropCheckpoint(id) }
	return out, nil
}

// checkpointRemote is Checkpoint under a remote Transport: each partition's
// image is replicated to every live worker, which persists it to its local
// data directory — the transport-level model of the replicated stable storage
// the in-process backend models with driver-local files. A worker kill
// destroys at most one replica, so reads fall through to the survivors; disk
// traffic is counted once per partition on write (the replication pipeline is
// a property of the storage system, not per-replica shuffle work) and once
// per re-read, the same accounting as the file-backed path.
func checkpointRemote[T any](r *RDD[T], name string) (*RDD[T], error) {
	c := r.c
	id := c.newID()
	err := c.runStage("checkpoint:"+name, r.parts, func(tc *TaskCtx, p int) error {
		items, err := r.computePartition(tc, p)
		if err != nil {
			return err
		}
		data, err := encodeBlock(items)
		if err != nil {
			return fmt.Errorf("rdd: encoding checkpoint: %w", err)
		}
		if err := c.putCheckpointReplicas(tc, id, p, data); err != nil {
			return err
		}
		tc.countSpillWrite(int64(len(data)))
		c.diskDelay(len(data))
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.trackRemoteCheckpoint(id)
	out := &RDD[T]{
		c:     c,
		name:  name,
		parts: r.parts,
		compute: func(tc *TaskCtx, p int) ([]T, error) {
			data, err := c.fetchCheckpointReplica(id, p)
			if err != nil {
				return nil, err
			}
			tc.countSpillRead(int64(len(data)))
			c.diskDelay(len(data))
			return decodeBlock[T](data)
		},
	}
	out.cleanup = func() { c.dropCheckpoint(id) }
	return out, nil
}

// putCheckpointReplicas stores partition p's checkpoint image on every live
// worker. A worker that dies mid-replication just loses its replica — the
// machine is marked lost and skipped — but at least one replica must land or
// the task fails (retryably if the failures were machine deaths).
func (c *Cluster) putCheckpointReplicas(tc *TaskCtx, id int64, p int, data []byte) error {
	rt := c.remote()
	bid := BlockID{Kind: BlockCheckpoint, Owner: id, Map: int32(p)}
	stored := 0
	for m := 0; m < c.cfg.Machines; m++ {
		if c.machineDead(m) {
			continue
		}
		if err := rt.Put(m, bid, data); err != nil {
			if errors.Is(err, ErrMachineUnreachable) {
				c.machineLost(m, fmt.Sprintf("storing checkpoint replica %d/%d: %v", id, p, err))
				continue
			}
			return fmt.Errorf("rdd: storing checkpoint replica %d/%d on machine %d: %w", id, p, m, err)
		}
		stored++
	}
	if stored == 0 {
		return fmt.Errorf("rdd: no live worker accepted checkpoint %d partition %d: %w", id, p, errRetryable)
	}
	return nil
}

// fetchCheckpointReplica reads partition p's checkpoint image from any worker
// that still holds a replica, starting at the partition's home machine. Dead
// machines are skipped; a worker found unreachable here is marked lost and
// the next replica is tried, so the read only fails once every replica is
// gone.
func (c *Cluster) fetchCheckpointReplica(id int64, p int) ([]byte, error) {
	rt := c.remote()
	bid := BlockID{Kind: BlockCheckpoint, Owner: id, Map: int32(p)}
	mc := c.cfg.Machines
	var lastErr error
	for off := 0; off < mc; off++ {
		m := (p + off) % mc
		if c.machineDead(m) {
			continue
		}
		data, err := rt.Fetch(m, bid)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if errors.Is(err, ErrMachineUnreachable) {
			c.machineLost(m, fmt.Sprintf("fetching checkpoint replica %d/%d: %v", id, p, err))
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("all machines dead")
	}
	return nil, fmt.Errorf("rdd: no replica of checkpoint %d partition %d readable: %v: %w", id, p, lastErr, errRetryable)
}

// trackCheckpoint registers a checkpoint's files for deletion on Unpersist of
// the checkpointed RDD or on Cluster.Close (whichever comes first).
func (c *Cluster) trackCheckpoint(id int64, paths []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ckptFiles == nil {
		c.ckptFiles = map[int64][]string{}
	}
	c.ckptFiles[id] = paths
}

// trackRemoteCheckpoint registers a worker-held checkpoint for best-effort
// Drop on Unpersist or Close.
func (c *Cluster) trackRemoteCheckpoint(id int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ckptRemote == nil {
		c.ckptRemote = map[int64]struct{}{}
	}
	c.ckptRemote[id] = struct{}{}
}

// dropCheckpoint deletes a checkpoint's files (or worker-held replicas) and
// forgets them.
func (c *Cluster) dropCheckpoint(id int64) {
	c.mu.Lock()
	paths := c.ckptFiles[id]
	delete(c.ckptFiles, id)
	_, remote := c.ckptRemote[id]
	delete(c.ckptRemote, id)
	c.mu.Unlock()
	removeCheckpointFiles(paths)
	if remote {
		c.dropRemoteBlocks(id)
	}
}

// dropRemoteBlocks asks every live worker to forget owner's blocks,
// best-effort.
func (c *Cluster) dropRemoteBlocks(owner int64) {
	rt := c.remote()
	if rt == nil {
		return
	}
	for m := 0; m < c.cfg.Machines; m++ {
		if !c.machineDead(m) {
			rt.Drop(m, owner)
		}
	}
}

// removeCheckpointFiles best-effort deletes checkpoint block files.
func removeCheckpointFiles(paths []string) {
	for _, p := range paths {
		if p != "" {
			os.Remove(p)
		}
	}
}

// checkpointDir returns (creating lazily) the cluster's on-disk scratch
// space, which exists in ModeMapReduce already and is created on demand for
// in-memory clusters that checkpoint.
func (c *Cluster) checkpointDir() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tmpDir != "" {
		return c.tmpDir, nil
	}
	dir, err := os.MkdirTemp("", "distenc-ckpt-")
	if err != nil {
		return "", fmt.Errorf("rdd: creating checkpoint dir: %w", err)
	}
	c.tmpDir = dir
	c.ownsTmp = true
	return dir, nil
}
