package rdd

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// runTracedJob executes a shuffle job (map stage + reduce-side collect) so
// every observability counter has something to record.
func runTracedJob(t *testing.T, c *Cluster) {
	t.Helper()
	var data []KV[int, int]
	for i := 0; i < 40; i++ {
		data = append(data, KV[int, int]{i % 4, i})
	}
	pairs := Parallelize(c, "pairs", data, 4)
	red := ReduceByKey(pairs, "sum", 2, func(a, b int) int { return a + b })
	if _, err := red.Collect(); err != nil {
		t.Fatal(err)
	}
}

func TestStageRecordRollups(t *testing.T) {
	c := testCluster(t, Config{Machines: 2, CoresPerMachine: 2})
	c.SetStageTag("iter=7")
	runTracedJob(t, c)

	stages := c.StageLog()
	if len(stages) == 0 {
		t.Fatal("no stages recorded")
	}
	var shuffled int64
	for _, s := range stages {
		if s.Tag != "iter=7" {
			t.Errorf("stage %q tag = %q, want iter=7", s.Name, s.Tag)
		}
		if s.Tasks <= 0 || s.Wall <= 0 {
			t.Errorf("stage %q: tasks=%d wall=%v", s.Name, s.Tasks, s.Wall)
		}
		if s.MaxTask < s.MedianTask {
			t.Errorf("stage %q: max task %v < median %v", s.Name, s.MaxTask, s.MedianTask)
		}
		if s.Skew() < 1 {
			t.Errorf("stage %q: skew %v < 1", s.Name, s.Skew())
		}
		shuffled += s.BytesShuffled
	}
	if shuffled == 0 {
		t.Error("shuffle job recorded no BytesShuffled in any stage")
	}
	if got := c.StageLogLen(); got != len(stages) {
		t.Errorf("StageLogLen = %d, want %d", got, len(stages))
	}
	if since := c.StageLogSince(1); len(since) != len(stages)-1 {
		t.Errorf("StageLogSince(1) = %d stages, want %d", len(since), len(stages)-1)
	}
}

func TestTaskTraceGating(t *testing.T) {
	// Rollups are always on; the per-task log only exists when asked for.
	off := testCluster(t, Config{Machines: 2})
	runTracedJob(t, off)
	if got := off.Trace(); len(got) != 0 {
		t.Fatalf("TaskTrace off but Trace() has %d records", len(got))
	}

	on := testCluster(t, Config{Machines: 2, TaskTrace: true})
	runTracedJob(t, on)
	tasks := on.Trace()
	if len(tasks) == 0 {
		t.Fatal("TaskTrace on but Trace() is empty")
	}
	var taskTotal int
	for _, s := range on.StageLog() {
		taskTotal += s.Tasks
	}
	if len(tasks) != taskTotal {
		t.Errorf("Trace() has %d records, stage log counts %d tasks", len(tasks), taskTotal)
	}
	for _, tr := range tasks {
		if tr.Stage == "" || tr.Machine < 0 || tr.Machine >= 2 || tr.Partition < 0 {
			t.Errorf("malformed task record %+v", tr)
		}
		if tr.Run <= 0 || tr.Queue < 0 {
			t.Errorf("task %s[%d]: run=%v queue=%v", tr.Stage, tr.Partition, tr.Run, tr.Queue)
		}
		if tr.Error != "" {
			t.Errorf("task %s[%d] failed: %s", tr.Stage, tr.Partition, tr.Error)
		}
	}
}

func TestTaskTraceRecordsRetries(t *testing.T) {
	c := testCluster(t, Config{Machines: 2, TaskTrace: true})
	c.InjectTaskFailures("collect:sum", 1)
	runTracedJob(t, c)

	var failed, retried bool
	for _, tr := range c.Trace() {
		if tr.Error != "" {
			failed = true
		}
		if tr.Attempt > 0 {
			retried = true
		}
	}
	if !failed || !retried {
		t.Fatalf("injected failure not visible in trace: failed=%v retried=%v", failed, retried)
	}
	var retries int
	for _, s := range c.StageLog() {
		retries += s.Retries
	}
	if retries == 0 {
		t.Fatal("stage log shows no retries after injected failure")
	}
}

func TestSummaryTable(t *testing.T) {
	c := testCluster(t, Config{Machines: 2})
	c.SetStageTag("iter=0")
	runTracedJob(t, c)
	c.RecordDriverSpan("driver-algebra", time.Now(), time.Millisecond)

	sum := c.Summary()
	for _, want := range []string{"stage", "shuffle-write:sum", "collect:sum", "iter=0", "TOTAL", "driver spans: 1"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q:\n%s", want, sum)
		}
	}
}

// TestChromeTraceSchema decodes the exported JSON and checks the trace-event
// contract viewers rely on: ph∈{X,M,i}, X events carry non-negative ts and
// positive dur, pids map to declared processes, and every executed stage and
// task appears.
func TestChromeTraceSchema(t *testing.T) {
	c := testCluster(t, Config{Machines: 2, TaskTrace: true})
	c.SetStageTag("iter=0")
	runTracedJob(t, c)
	c.RecordDriverSpan("driver-algebra", time.Now(), time.Millisecond)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}

	processes := map[int]bool{}
	seen := map[string]bool{}
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "process_name" {
				t.Errorf("unexpected metadata event %q", e.Name)
			}
			processes[e.PID] = true
		case "X":
			if e.Name == "" || e.TS < 0 || e.Dur <= 0 {
				t.Errorf("malformed X event %+v", e)
			}
			seen[e.Name] = true
		case "i":
			// Recovery instants: named, located, zero-duration.
			if e.Name == "" || e.TS < 0 {
				t.Errorf("malformed instant event %+v", e)
			}
			seen[e.Name] = true
		default:
			t.Errorf("event %q has ph=%q, want X, M or i", e.Name, e.Ph)
		}
	}
	// Driver + both machines must be declared, and every X event must land
	// in a declared process.
	for pid := 0; pid <= 2; pid++ {
		if !processes[pid] {
			t.Errorf("missing process_name metadata for pid %d", pid)
		}
	}
	for _, e := range trace.TraceEvents {
		if e.Ph == "X" && !processes[e.PID] {
			t.Errorf("event %q on undeclared pid %d", e.Name, e.PID)
		}
	}
	for _, s := range c.StageLog() {
		if !seen[s.Name] {
			t.Errorf("stage %q missing from trace", s.Name)
		}
	}
	if !seen["driver-algebra"] {
		t.Error("driver span missing from trace")
	}
	for _, tr := range c.Trace() {
		// Task spans are named stage[partition].
		if !seen[tr.Stage+"["+itoa(tr.Partition)+"]"] {
			t.Errorf("task %s[%d] missing from trace", tr.Stage, tr.Partition)
		}
	}
}

// itoa avoids strconv for the tiny partition numbers in the test above.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
