package rdd

import (
	"testing"
)

func TestFloatAccumulator(t *testing.T) {
	c := testCluster(t, Config{Machines: 3})
	acc := NewFloatAccumulator()
	r := Parallelize(c, "nums", ints(100), 5)
	err := r.ForeachPartition(func(tc *TaskCtx, p int, items []int) error {
		var s float64
		for _, v := range items {
			s += float64(v)
		}
		acc.Add(s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.Value(); got != 4950 {
		t.Fatalf("accumulated %v, want 4950", got)
	}
	acc.Reset(0)
	if acc.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestIntAccumulatorConcurrent(t *testing.T) {
	c := testCluster(t, Config{Machines: 4, CoresPerMachine: 4})
	acc := NewIntAccumulator()
	r := Parallelize(c, "nums", ints(1000), 16)
	err := r.ForeachPartition(func(tc *TaskCtx, p int, items []int) error {
		for range items {
			acc.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Value() != 1000 {
		t.Fatalf("count = %d", acc.Value())
	}
}

func TestCustomAccumulator(t *testing.T) {
	maxAcc := NewAccumulator(-1<<62, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
	maxAcc.Add(5)
	maxAcc.Add(3)
	maxAcc.Add(9)
	if maxAcc.Value() != 9 {
		t.Fatalf("max = %d", maxAcc.Value())
	}
}
