package rdd

import (
	"fmt"
	"sync"
)

// dep is anything that must be materialized (on the driver, stage by stage)
// before a downstream stage may compute partitions that read from it. Shuffle
// exchanges are the only wide dependency; narrow chains propagate their
// parents' deps.
type dep interface {
	ensure() error
}

// RDD is a lazy, partitioned, immutable dataset with lineage: computing a
// partition re-runs the chain of transformations that defined it, exactly
// like Spark's RDD abstraction the paper builds on (§III-F).
type RDD[T any] struct {
	c       *Cluster
	name    string
	parts   int
	deps    []dep
	compute func(tc *TaskCtx, p int) ([]T, error)

	cacheMu sync.Mutex
	cached  bool
	cparts  []cachedPart[T]
	evictID int64  // KillMachine eviction registration while cached
	cleanup func() // extra teardown on Unpersist (checkpoint file removal)
}

type cachedPart[T any] struct {
	mu      sync.Mutex
	done    bool
	items   []T
	machine int
	bytes   int64
}

// Parallelize distributes data over parts partitions (round-robin by block),
// the engine's equivalent of sc.parallelize.
func Parallelize[T any](c *Cluster, name string, data []T, parts int) *RDD[T] {
	if parts <= 0 {
		parts = c.cfg.Machines * c.cfg.CoresPerMachine
	}
	blocks := make([][]T, parts)
	for p := range blocks {
		lo := len(data) * p / parts
		hi := len(data) * (p + 1) / parts
		blocks[p] = data[lo:hi]
	}
	return FromPartitions(c, name, blocks)
}

// FromPartitions wraps pre-partitioned data as an RDD (used by the tensor
// loaders, which place blocks according to the greedy partitioner).
func FromPartitions[T any](c *Cluster, name string, blocks [][]T) *RDD[T] {
	return &RDD[T]{
		c:     c,
		name:  name,
		parts: len(blocks),
		compute: func(tc *TaskCtx, p int) ([]T, error) {
			return blocks[p], nil
		},
	}
}

// Name returns the RDD's debug name.
func (r *RDD[T]) Name() string { return r.name }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.parts }

// Cluster returns the owning cluster.
func (r *RDD[T]) Cluster() *Cluster { return r.c }

// ensureDeps materializes every shuffle exchange in r's lineage, bottom-up.
// It must be called on the driver (never inside a task) — running a stage
// inside a task slot could exhaust a machine's cores and deadlock, which is
// why wide dependencies are staged explicitly, as in Spark's DAG scheduler.
func (r *RDD[T]) ensureDeps() error {
	for _, d := range r.deps {
		if err := d.ensure(); err != nil {
			return err
		}
	}
	return nil
}

// computePartition resolves the cache, then lineage.
func (r *RDD[T]) computePartition(tc *TaskCtx, p int) ([]T, error) {
	r.cacheMu.Lock()
	cached := r.cached
	r.cacheMu.Unlock()
	if !cached {
		return r.compute(tc, p)
	}
	cp := &r.cparts[p]
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.done {
		return cp.items, nil
	}
	items, err := r.compute(tc, p)
	if err != nil {
		return nil, err
	}
	if r.c.machineDead(tc.Machine) {
		// The machine died under this task: the attempt will be discarded
		// and retried, so don't pin its output to a dead machine's cache.
		return items, nil
	}
	size := EstimateSize(items)
	if err := r.c.charge(tc.Machine, size); err != nil {
		return nil, fmt.Errorf("rdd: caching partition %d of %s: %w", p, r.name, err)
	}
	cp.done = true
	cp.items = items
	cp.machine = tc.Machine
	cp.bytes = size
	return items, nil
}

// Cache marks the RDD for in-memory persistence: the first computation of
// each partition stores it (charging machine memory), later computations
// reuse it. In ModeMapReduce this is a no-op — Hadoop's lack of cross-stage
// in-memory reuse is the behaviour the paper contrasts Spark against.
func (r *RDD[T]) Cache() *RDD[T] {
	if r.c.cfg.Mode == ModeMapReduce {
		return r
	}
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if !r.cached {
		r.cached = true
		r.cparts = make([]cachedPart[T], r.parts)
		r.evictID = r.c.registerEvictor(r)
	}
	return r
}

// Unpersist drops cached partitions, releases their memory, and deletes any
// checkpoint files backing the RDD.
func (r *RDD[T]) Unpersist() {
	r.cacheMu.Lock()
	if r.cached {
		for p := range r.cparts {
			cp := &r.cparts[p]
			cp.mu.Lock()
			if cp.done {
				r.c.release(cp.machine, cp.bytes)
				cp.done = false
				cp.items = nil
			}
			cp.mu.Unlock()
		}
		r.cached = false
		r.cparts = nil
	}
	evictID := r.evictID
	r.evictID = 0
	cleanup := r.cleanup
	r.cleanup = nil
	r.cacheMu.Unlock()
	if evictID != 0 {
		r.c.unregisterEvictor(evictID)
	}
	if cleanup != nil {
		cleanup()
	}
}

// evictMachine drops the cached partitions machine m held; they recompute
// from lineage (onto a surviving machine) on next access.
func (r *RDD[T]) evictMachine(m int) {
	r.cacheMu.Lock()
	cached := r.cached
	cparts := r.cparts
	r.cacheMu.Unlock()
	if !cached {
		return
	}
	n := 0
	for p := range cparts {
		cp := &cparts[p]
		cp.mu.Lock()
		if cp.done && cp.machine == m {
			r.c.release(m, cp.bytes)
			cp.done = false
			cp.items = nil
			n++
		}
		cp.mu.Unlock()
	}
	if n > 0 {
		r.c.recordRecovery(RecoveryEvent{
			Kind:      RecoveryCacheEvict,
			Stage:     r.name,
			Partition: -1,
			Machine:   m,
			Cause:     fmt.Sprintf("%d cached partition(s) lost; recompute from lineage on next access", n),
		})
	}
}

// Materialize computes and caches every partition now (an action). It is how
// iterative algorithms pin their working set, mirroring persist+count.
func (r *RDD[T]) Materialize() error {
	r.Cache()
	if err := r.ensureDeps(); err != nil {
		return err
	}
	return r.c.runStage("materialize:"+r.name, r.parts, func(tc *TaskCtx, p int) error {
		_, err := r.computePartition(tc, p)
		return err
	})
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], name string, f func(T) U) *RDD[U] {
	return &RDD[U]{
		c:     r.c,
		name:  name,
		parts: r.parts,
		deps:  r.deps,
		compute: func(tc *TaskCtx, p int) ([]U, error) {
			in, err := r.computePartition(tc, p)
			if err != nil {
				return nil, err
			}
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out, nil
		},
	}
}

// Filter keeps the elements satisfying pred.
func (r *RDD[T]) Filter(name string, pred func(T) bool) *RDD[T] {
	return &RDD[T]{
		c:     r.c,
		name:  name,
		parts: r.parts,
		deps:  r.deps,
		compute: func(tc *TaskCtx, p int) ([]T, error) {
			in, err := r.computePartition(tc, p)
			if err != nil {
				return nil, err
			}
			var out []T
			for _, v := range in {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out, nil
		},
	}
}

// FlatMap applies f and concatenates the results.
func FlatMap[T, U any](r *RDD[T], name string, f func(T) []U) *RDD[U] {
	return &RDD[U]{
		c:     r.c,
		name:  name,
		parts: r.parts,
		deps:  r.deps,
		compute: func(tc *TaskCtx, p int) ([]U, error) {
			in, err := r.computePartition(tc, p)
			if err != nil {
				return nil, err
			}
			var out []U
			for _, v := range in {
				out = append(out, f(v)...)
			}
			return out, nil
		},
	}
}

// MapPartitions transforms a whole partition at once; f receives the
// partition index, runs inside a task, and may charge transient memory via
// the TaskCtx.
func MapPartitions[T, U any](r *RDD[T], name string, f func(tc *TaskCtx, p int, in []T) ([]U, error)) *RDD[U] {
	return &RDD[U]{
		c:     r.c,
		name:  name,
		parts: r.parts,
		deps:  r.deps,
		compute: func(tc *TaskCtx, p int) ([]U, error) {
			in, err := r.computePartition(tc, p)
			if err != nil {
				return nil, err
			}
			return f(tc, p, in)
		},
	}
}

// Collect computes all partitions and returns the concatenated elements in
// partition order.
func (r *RDD[T]) Collect() ([]T, error) {
	if err := r.ensureDeps(); err != nil {
		return nil, err
	}
	results := make([][]T, r.parts)
	err := r.c.runStage("collect:"+r.name, r.parts, func(tc *TaskCtx, p int) error {
		items, err := r.computePartition(tc, p)
		if err != nil {
			return err
		}
		// Install on commit only: under speculative execution two attempts
		// of the same partition can run concurrently, and only the race
		// winner may publish its result to the driver.
		tc.OnSuccess(func() { results[p] = items })
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []T
	for _, part := range results {
		out = append(out, part...)
	}
	return out, nil
}

// Count returns the number of elements.
func (r *RDD[T]) Count() (int64, error) {
	if err := r.ensureDeps(); err != nil {
		return 0, err
	}
	counts := make([]int64, r.parts)
	err := r.c.runStage("count:"+r.name, r.parts, func(tc *TaskCtx, p int) error {
		items, err := r.computePartition(tc, p)
		if err != nil {
			return err
		}
		n := int64(len(items))
		tc.OnSuccess(func() { counts[p] = n }) // winner-only install (speculation)
		return nil
	})
	if err != nil {
		return 0, err
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	return n, nil
}

// Reduce folds all elements with f. ok is false for an empty RDD.
func Reduce[T any](r *RDD[T], f func(T, T) T) (result T, ok bool, err error) {
	if err := r.ensureDeps(); err != nil {
		return result, false, err
	}
	partials := make([]T, r.parts)
	got := make([]bool, r.parts)
	err = r.c.runStage("reduce:"+r.name, r.parts, func(tc *TaskCtx, p int) error {
		items, err := r.computePartition(tc, p)
		if err != nil {
			return err
		}
		if len(items) == 0 {
			return nil
		}
		acc := items[0]
		for _, v := range items[1:] {
			acc = f(acc, v)
		}
		tc.OnSuccess(func() { // winner-only install (speculation)
			partials[p] = acc
			got[p] = true
		})
		return nil
	})
	if err != nil {
		return result, false, err
	}
	for p := range partials {
		if !got[p] {
			continue
		}
		if !ok {
			result, ok = partials[p], true
		} else {
			result = f(result, partials[p])
		}
	}
	return result, ok, nil
}

// ForeachPartition runs f over every partition inside tasks (an action with
// side effects owned by the caller; f must be safe for concurrent calls on
// distinct partitions — and, with Config.Speculation enabled, for concurrent
// duplicate calls on the SAME partition, since a backup attempt re-runs f
// while the original may still be inside it. Effects that must apply exactly
// once belong in tc.OnSuccess, which fires only for the winning attempt).
func (r *RDD[T]) ForeachPartition(f func(tc *TaskCtx, p int, items []T) error) error {
	if err := r.ensureDeps(); err != nil {
		return err
	}
	return r.c.runStage("foreach:"+r.name, r.parts, func(tc *TaskCtx, p int) error {
		items, err := r.computePartition(tc, p)
		if err != nil {
			return err
		}
		return f(tc, p, items)
	})
}
