package rdd

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

// slabRec is a test record exercising the BinaryRecord fast path: a tag plus
// a variable-length payload, framed like the packed MTTKRP records in
// internal/core.
type slabRec struct {
	Tag  int32
	Vals []float64
}

func (s *slabRec) AppendRecord(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Tag))
	buf = binary.AppendUvarint(buf, uint64(len(s.Vals)))
	for _, v := range s.Vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v*1e6)))
	}
	return buf
}

func (s *slabRec) DecodeRecord(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("short record")
	}
	s.Tag = int32(binary.LittleEndian.Uint32(data))
	data = data[4:]
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("bad length")
	}
	data = data[used:]
	if uint64(len(data)) < n*8 {
		return nil, fmt.Errorf("short payload")
	}
	s.Vals = make([]float64, n)
	for i := range s.Vals {
		s.Vals[i] = float64(int64(binary.LittleEndian.Uint64(data[i*8:]))) / 1e6
	}
	return data[n*8:], nil
}

func TestBinaryRecordBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	recs := make([]slabRec, 13)
	for i := range recs {
		recs[i].Tag = int32(rng.IntN(1000) - 500)
		recs[i].Vals = make([]float64, rng.IntN(9))
		for j := range recs[i].Vals {
			recs[i].Vals[j] = float64(rng.IntN(2_000_000)-1_000_000) / 1e6
		}
	}
	data, err := encodeBlock(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBlock[slabRec](data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Tag != recs[i].Tag {
			t.Fatalf("record %d tag %d, want %d", i, got[i].Tag, recs[i].Tag)
		}
		if len(got[i].Vals) != len(recs[i].Vals) {
			t.Fatalf("record %d has %d vals, want %d", i, len(got[i].Vals), len(recs[i].Vals))
		}
		for j := range recs[i].Vals {
			// The codec is lossless; compare bit patterns rather than values.
			if math.Float64bits(got[i].Vals[j]) != math.Float64bits(recs[i].Vals[j]) {
				t.Fatalf("record %d val %d = %v, want %v", i, j, got[i].Vals[j], recs[i].Vals[j])
			}
		}
	}
}

func TestBinaryRecordEmptyBlock(t *testing.T) {
	data, err := encodeBlock([]slabRec(nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBlock[slabRec](data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d records from empty block", len(got))
	}
}

func TestBinaryRecordCorruptBlock(t *testing.T) {
	recs := []slabRec{{Tag: 7, Vals: []float64{1, 2, 3}}}
	data, err := encodeBlock(recs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeBlock[slabRec](data[:len(data)-3]); err == nil {
		t.Fatal("truncated block decoded without error")
	}
	if _, err := decodeBlock[slabRec](append(data, 0xFF)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}

// ShuffleMap must deliver each map task's bucket p to reduce partition p, in
// map-partition order, through the same serialized path as the pair shuffles.
func TestShuffleMapRoutesBuckets(t *testing.T) {
	c := MustNewCluster(Config{Machines: 3})
	src := Parallelize(c, "ints", []int{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	const parts = 3
	out := ShuffleMap(src, "route", parts, func(tc *TaskCtx, mp int, in []int) ([][]slabRec, error) {
		buckets := make([][]slabRec, parts)
		for _, v := range in {
			rp := v % parts
			buckets[rp] = append(buckets[rp], slabRec{Tag: int32(v), Vals: []float64{float64(mp)}})
		}
		return buckets, nil
	})
	for rp := 0; rp < parts; rp++ {
		recs, err := collectPartition(out, rp)
		if err != nil {
			t.Fatal(err)
		}
		lastMap := int32(-1)
		for _, r := range recs {
			if int(r.Tag)%parts != rp {
				t.Fatalf("partition %d received tag %d", rp, r.Tag)
			}
			if mp := int32(r.Vals[0]); mp < lastMap {
				t.Fatalf("partition %d records out of map order: %d after %d", rp, mp, lastMap)
			} else {
				lastMap = mp
			}
		}
	}
	if c.Metrics().BytesShuffled.Load() == 0 {
		t.Fatal("ShuffleMap moved no bytes")
	}
}

func TestShuffleMapBucketCountMismatch(t *testing.T) {
	c := MustNewCluster(Config{Machines: 2})
	src := Parallelize(c, "ints", []int{1, 2}, 2)
	out := ShuffleMap(src, "bad", 3, func(tc *TaskCtx, mp int, in []int) ([][]slabRec, error) {
		return make([][]slabRec, 2), nil // wrong bucket count
	})
	if _, err := out.Collect(); err == nil {
		t.Fatal("mismatched bucket count did not error")
	}
}

// collectPartition materializes a single partition of r.
func collectPartition[T any](r *RDD[T], p int) ([]T, error) {
	if err := r.ensureDeps(); err != nil {
		return nil, err
	}
	var out []T
	err := r.c.runStage(fmt.Sprintf("collect-part:%s:%d", r.name, p), 1, func(tc *TaskCtx, _ int) error {
		items, err := r.computePartition(tc, p)
		out = items
		return err
	})
	return out, err
}

// The gob fallback must still work for types without a BinaryRecord framing.
func TestGobBlockStillRoundTrips(t *testing.T) {
	type plain struct{ A, B int }
	recs := []plain{{1, 2}, {3, 4}}
	data, err := encodeBlock(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBlock[plain](data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip = %v, want %v", got, recs)
	}
}
