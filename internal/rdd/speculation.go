package rdd

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
	"time"
)

// SpeculationConfig tunes Spark-style speculative execution (Config
// .Speculation). With Enabled set, each stage runs a monitor that compares
// running tasks against the distribution of the stage's already-committed
// task durations: once at least Quantile of the stage's tasks have committed,
// a task whose body has been running longer than Multiplier × the Quantile
// duration (floored at MinDuration) gets one backup attempt on a different
// healthy machine, and whichever attempt finishes first wins the partition's
// exactly-once commit. Mirrors spark.speculation{.quantile,.multiplier}.
type SpeculationConfig struct {
	// Enabled turns speculative execution on.
	Enabled bool
	// Quantile is both the fraction of a stage's tasks that must have
	// committed before backups may launch and the quantile of the
	// committed-duration distribution the cutoff is computed from.
	// Default 0.75.
	Quantile float64
	// Multiplier scales the quantile duration into the speculation cutoff: a
	// running task becomes a backup candidate once its body has run longer
	// than Multiplier × the quantile duration. Default 1.5.
	Multiplier float64
	// MinDuration floors the cutoff so short tasks are never speculated on
	// timing noise. Default 10ms.
	MinDuration time.Duration
}

func (s SpeculationConfig) withDefaults() SpeculationConfig {
	if s.Quantile <= 0 || s.Quantile >= 1 {
		s.Quantile = 0.75
	}
	if s.Multiplier <= 1 {
		s.Multiplier = 1.5
	}
	if s.MinDuration <= 0 {
		s.MinDuration = 10 * time.Millisecond
	}
	return s
}

// ParseSpeculation parses a CLI speculation spec. "on" (or "true") enables
// speculation with defaults; otherwise the spec is a comma-separated
// key=value list:
//
//	quantile=0.75     committed-task fraction / duration quantile in (0,1)
//	multiplier=1.5    cutoff multiplier over the quantile duration (>1)
//	min=10ms          cutoff floor (Go duration)
//
// e.g. "quantile=0.5,multiplier=2,min=5ms". Any key=value form enables
// speculation.
func ParseSpeculation(spec string) (SpeculationConfig, error) {
	s := SpeculationConfig{Enabled: true}
	trimmed := strings.TrimSpace(spec)
	switch strings.ToLower(trimmed) {
	case "on", "true", "1":
		return s, nil
	case "":
		return SpeculationConfig{}, fmt.Errorf("rdd: empty speculation spec")
	}
	for _, field := range strings.Split(trimmed, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return SpeculationConfig{}, fmt.Errorf("rdd: speculation field %q is not key=value", field)
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "quantile":
			s.Quantile, err = strconv.ParseFloat(val, 64)
			if err == nil && (s.Quantile <= 0 || s.Quantile >= 1) {
				err = fmt.Errorf("quantile %v outside (0,1)", s.Quantile)
			}
		case "multiplier":
			s.Multiplier, err = strconv.ParseFloat(val, 64)
			if err == nil && s.Multiplier <= 1 {
				err = fmt.Errorf("multiplier %v must exceed 1", s.Multiplier)
			}
		case "min":
			s.MinDuration, err = time.ParseDuration(val)
			if err == nil && s.MinDuration <= 0 {
				err = fmt.Errorf("min %v must be positive", s.MinDuration)
			}
		default:
			err = fmt.Errorf("unknown key (want quantile, multiplier, min)")
		}
		if err != nil {
			return SpeculationConfig{}, fmt.Errorf("rdd: speculation field %q: %w", field, err)
		}
	}
	return s, nil
}

// speculating reports whether stages should run the speculation monitor.
// SerializeTasks wins over Speculation: its whole point is uncontended
// single-core task durations, and a backup racing the task it duplicates
// would deadlock behind the straggler's serial lock anyway.
func (c *Cluster) speculating() bool {
	return c.cfg.Speculation.Enabled && !c.cfg.SerializeTasks
}

// speculationMonitor watches a stage's running primary attempts and launches
// at most one backup per partition once the commit-race cutoff is known and
// exceeded. It exits when the stage resolves or aborts.
func (c *Cluster) speculationMonitor(st *stageState, states []*partState, task func(tc *TaskCtx, p int) error) {
	cfg := c.cfg.Speculation.withDefaults()
	need := int(math.Ceil(cfg.Quantile * float64(st.parts)))
	if need < 1 {
		need = 1
	}
	tick := cfg.MinDuration / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-st.done:
			return
		case <-ticker.C:
		}
		if st.aborted() {
			return
		}
		cutoff, ok := st.specCutoff(cfg, need)
		if !ok {
			continue
		}
		now := time.Now()
		for p, ps := range states {
			ps.mu.Lock()
			elapsed := now.Sub(ps.bodyStart)
			launch := !ps.resolved && !ps.committed && !ps.specLaunched &&
				ps.bodyRunning && elapsed >= cutoff
			primary := ps.bodyMachine
			if launch {
				// One shot per partition: machines never come back, so if no
				// distinct healthy machine exists now, none ever will.
				ps.specLaunched = true
			}
			ps.mu.Unlock()
			if !launch {
				continue
			}
			m, err := c.placeTask(p, 1, primary)
			if err != nil || m == primary {
				// No different healthy machine to run a backup on; a
				// duplicate behind the same straggler gains nothing.
				continue
			}
			st.addSpecLaunch(p, m, elapsed, cutoff)
			c.metrics.SpeculativeTasks.Add(1)
			c.attempts.Add(1)
			go func(p, m int, ps *partState) {
				defer c.attempts.Done()
				c.runAttempt(st, ps, task, p, speculativeAttempt, m, true)
			}(p, m, ps)
		}
	}
}

// specCutoff returns the current backup-launch threshold: Multiplier × the
// Quantile duration of the stage's committed attempts, floored at
// MinDuration. ok is false until Quantile of the stage's tasks committed.
func (st *stageState) specCutoff(cfg SpeculationConfig, need int) (time.Duration, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.winDurs) < need {
		return 0, false
	}
	ds := slices.Clone(st.winDurs)
	slices.Sort(ds)
	q := ds[int(cfg.Quantile*float64(len(ds)-1))]
	cutoff := time.Duration(cfg.Multiplier * float64(q))
	if cutoff < cfg.MinDuration {
		cutoff = cfg.MinDuration
	}
	return cutoff, true
}

// addSpecLaunch counts a backup launch in the stage rollup and logs the
// recovery event. The monitor stops before the stage record closes, but a
// racing resolution can close it first — route late launches to the
// published record like recordAttempt does.
func (st *stageState) addSpecLaunch(p, m int, elapsed, cutoff time.Duration) {
	ev := RecoveryEvent{
		Kind:      RecoverySpeculativeLaunch,
		Stage:     st.name,
		Partition: p,
		Machine:   m,
		Attempt:   speculativeAttempt,
		Cause:     fmt.Sprintf("task running %v, over speculation cutoff %v; backup launched", elapsed, cutoff),
		At:        time.Since(st.c.start),
	}
	st.mu.Lock()
	if !st.closed {
		st.specLaunches++
		st.recEvents = append(st.recEvents, ev)
		st.mu.Unlock()
		return
	}
	idx := st.logIdx
	st.mu.Unlock()
	st.c.simMu.Lock()
	st.c.stageLog[idx].SpeculativeTasks++
	st.c.recoveries = append(st.c.recoveries, ev)
	st.c.simMu.Unlock()
}
