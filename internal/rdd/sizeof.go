package rdd

import (
	"bytes"
	"encoding/gob"
	"reflect"
)

// Sizer lets a type report its in-memory footprint directly, skipping the
// gob-based estimate. Hot types (tensor blocks, factor rows) implement it.
type Sizer interface {
	SizeBytes() int64
}

// EstimateSize returns the approximate serialized size of v in bytes: the
// quantity the engine charges for cached partitions and broadcasts. Values
// implementing Sizer are asked directly; a slice whose elements implement
// Sizer is summed; everything else is gob-encoded once.
func EstimateSize(v any) int64 {
	if s, ok := v.(Sizer); ok {
		return s.SizeBytes()
	}
	if rv := reflect.ValueOf(v); rv.Kind() == reflect.Slice && rv.Len() > 0 {
		if _, ok := rv.Index(0).Interface().(Sizer); ok {
			var total int64
			for i := 0; i < rv.Len(); i++ {
				total += rv.Index(i).Interface().(Sizer).SizeBytes()
			}
			return total
		}
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		// Unencodable values (functions, channels) should never be cached;
		// fall back to a token charge rather than failing the job.
		return 64
	}
	return int64(buf.Len())
}

// encodeBlock gob-encodes a shuffle block.
func encodeBlock[R any](records []R) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeBlock reverses encodeBlock.
func decodeBlock[R any](data []byte) ([]R, error) {
	var records []R
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&records); err != nil {
		return nil, err
	}
	return records, nil
}
