package rdd

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"reflect"
)

// Sizer lets a type report its in-memory footprint directly, skipping the
// gob-based estimate. Hot types (tensor blocks, factor rows) implement it.
type Sizer interface {
	SizeBytes() int64
}

// EstimateSize returns the approximate serialized size of v in bytes: the
// quantity the engine charges for cached partitions and broadcasts. Values
// implementing Sizer are asked directly; a slice whose elements implement
// Sizer is summed; everything else is gob-encoded once.
func EstimateSize(v any) int64 {
	if s, ok := v.(Sizer); ok {
		return s.SizeBytes()
	}
	if rv := reflect.ValueOf(v); rv.Kind() == reflect.Slice && rv.Len() > 0 {
		if _, ok := rv.Index(0).Interface().(Sizer); ok {
			var total int64
			for i := 0; i < rv.Len(); i++ {
				total += rv.Index(i).Interface().(Sizer).SizeBytes()
			}
			return total
		}
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		// Unencodable values (functions, channels) should never be cached;
		// fall back to a token charge rather than failing the job.
		return 64
	}
	return int64(buf.Len())
}

// BinaryRecord is implemented (on the pointer receiver) by shuffle record
// types that provide their own compact binary framing. Blocks of such records
// skip encoding/gob entirely: encodeBlock writes a record count followed by
// each record's self-delimiting frame, and decodeBlock reverses it. The
// resulting byte counts still flow through the same BytesShuffled /
// DiskBytes accounting, so the engine's Lemma 3 bookkeeping stays honest —
// the packed MTTKRP slab records in internal/core are the motivating user.
type BinaryRecord interface {
	// AppendRecord appends the record's frame to buf and returns it.
	AppendRecord(buf []byte) []byte
	// DecodeRecord parses one frame from the front of data into the
	// receiver and returns the remaining bytes.
	DecodeRecord(data []byte) (rest []byte, err error)
}

// isBinaryRecord reports whether *R implements BinaryRecord. The choice is a
// property of the type, so the encode and decode sides always agree on the
// wire format without any header byte.
func isBinaryRecord[R any]() bool {
	_, ok := any(new(R)).(BinaryRecord)
	return ok
}

// ArenaBinaryRecord is implemented by BinaryRecord types that can decode
// their variable-length payloads into task-arena slabs instead of fresh heap
// allocations. The shuffle fetch path uses it: fetched records live exactly
// as long as the consuming task attempt, which is the arena lifetime. Paths
// that outlive the attempt (Checkpoint reads, cached partitions) must keep
// using DecodeRecord.
type ArenaBinaryRecord interface {
	BinaryRecord
	// DecodeRecordArena parses one frame like DecodeRecord, drawing the
	// receiver's slices from a.
	DecodeRecordArena(a *Arena, data []byte) (rest []byte, err error)
}

// isArenaBinaryRecord reports whether *R implements ArenaBinaryRecord.
func isArenaBinaryRecord[R any]() bool {
	_, ok := any(new(R)).(ArenaBinaryRecord)
	return ok
}

// encodeBlock serializes a shuffle block: the BinaryRecord fast path when the
// record type provides one, encoding/gob otherwise.
func encodeBlock[R any](records []R) ([]byte, error) {
	if isBinaryRecord[R]() {
		buf := binary.AppendUvarint(nil, uint64(len(records)))
		for i := range records {
			buf = any(&records[i]).(BinaryRecord).AppendRecord(buf)
		}
		return buf, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeBlock reverses encodeBlock.
func decodeBlock[R any](data []byte) ([]R, error) {
	return decodeBlockArena[R](nil, data)
}

// decodeBlockArena reverses encodeBlock, drawing record payload slices from
// the arena when one is provided and the record type supports it (the
// shuffle fetch hot path). With a nil arena it behaves like decodeBlock.
func decodeBlockArena[R any](a *Arena, data []byte) ([]R, error) {
	if isBinaryRecord[R]() {
		n, used := binary.Uvarint(data)
		if used <= 0 {
			return nil, fmt.Errorf("rdd: corrupt binary shuffle block header")
		}
		data = data[used:]
		if n > uint64(len(data)) {
			// Each record frame is at least one byte; a bigger count is a
			// corrupt or hostile header, so reject it before allocating.
			return nil, fmt.Errorf("rdd: binary shuffle block claims %d records in %d bytes", n, len(data))
		}
		records := make([]R, n)
		for i := range records {
			var err error
			if a != nil {
				if ar, ok := any(&records[i]).(ArenaBinaryRecord); ok {
					data, err = ar.DecodeRecordArena(a, data)
				} else {
					data, err = any(&records[i]).(BinaryRecord).DecodeRecord(data)
				}
			} else {
				data, err = any(&records[i]).(BinaryRecord).DecodeRecord(data)
			}
			if err != nil {
				return nil, fmt.Errorf("rdd: decoding binary shuffle record %d/%d: %w", i, n, err)
			}
		}
		if len(data) != 0 {
			return nil, fmt.Errorf("rdd: %d trailing bytes after binary shuffle block", len(data))
		}
		return records, nil
	}
	var records []R
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&records); err != nil {
		return nil, err
	}
	return records, nil
}
