package rdd

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tmpResidue lists leftover atomic-write temporaries in dir.
func tmpResidue(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

func TestWriteFileAtomicSuccess(t *testing.T) {
	c := MustNewCluster(Config{Machines: 2})
	defer c.Close()
	dir := t.TempDir()
	path := filepath.Join(dir, "state.blk")
	want := []byte("durable bytes")
	if err := c.writeFileAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read back %q, %v", got, err)
	}
	if tmps := tmpResidue(t, dir); len(tmps) != 0 {
		t.Fatalf("temp residue after success: %v", tmps)
	}
}

func TestWriteFileAtomicRenameFailureLeavesNoResidue(t *testing.T) {
	c := MustNewCluster(Config{Machines: 2})
	defer c.Close()
	dir := t.TempDir()
	// A non-empty directory at the destination makes os.Rename fail after
	// the temp file was written and fsynced — the exact crash window the
	// cleanup has to cover.
	dest := filepath.Join(dir, "state.blk")
	if err := os.MkdirAll(filepath.Join(dest, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.writeFileAtomic(dest, []byte("doomed")); err == nil {
		t.Fatal("writeFileAtomic succeeded renaming onto a non-empty directory")
	}
	if tmps := tmpResidue(t, dir); len(tmps) != 0 {
		t.Fatalf("temp residue after rename failure: %v", tmps)
	}
}

func TestWriteFrameFileAtomicRoundTrip(t *testing.T) {
	c := MustNewCluster(Config{Machines: 2})
	defer c.Close()
	path := filepath.Join(t.TempDir(), "spill.blk")
	want := bytes.Repeat([]byte{0x5A}, 10_000)
	if err := c.writeFrameFileAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := readFrameFile(path)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("framed read back failed: %v", err)
	}
}
