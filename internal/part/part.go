// Package part implements the greedy load-balancing block partitioner of the
// paper's Algorithm 2 (DisTenC-Greedy): for each mode it walks the per-slice
// non-zero histogram and closes a partition whenever its load reaches the
// target chunk size nnz/P, picking whichever boundary (before or after the
// current slice) lands closer to the target. A uniform index split is kept
// for the load-imbalance ablation.
package part

import (
	"fmt"
	"sort"
)

// Boundaries describes a 1-D partitioning of slice indices [0, Size) into
// len(Ends) contiguous ranges; partition p covers [start(p), Ends[p]) where
// start(0)=0 and start(p)=Ends[p-1].
type Boundaries struct {
	Size int
	Ends []int
}

// NumPartitions returns the partition count.
func (b Boundaries) NumPartitions() int { return len(b.Ends) }

// Range returns partition p's half-open index range.
func (b Boundaries) Range(p int) (lo, hi int) {
	if p > 0 {
		lo = b.Ends[p-1]
	}
	return lo, b.Ends[p]
}

// PartitionOf returns the partition containing slice index i.
func (b Boundaries) PartitionOf(i int) int {
	return sort.SearchInts(b.Ends, i+1)
}

// RunsOf splits rows — an ascending list of slice indices in [0, Size) —
// into per-partition contiguous runs. The returned offsets have length
// NumPartitions()+1 and rows[off[p]:off[p+1]] are exactly the entries of rows
// that fall in partition p. One linear walk replaces a PartitionOf binary
// search per row; the packed MTTKRP shuffle uses it to slice each block's
// sorted needed-row lists into per-destination slabs.
func (b Boundaries) RunsOf(rows []int32) []int {
	off := make([]int, len(b.Ends)+1)
	i := 0
	for p, end := range b.Ends {
		off[p] = i
		for i < len(rows) && int(rows[i]) < end {
			i++
		}
	}
	off[len(b.Ends)] = i
	return off
}

// Validate checks the boundary invariants.
func (b Boundaries) Validate() error {
	if len(b.Ends) == 0 {
		return fmt.Errorf("part: no partitions")
	}
	prev := 0
	for p, e := range b.Ends {
		if e < prev {
			return fmt.Errorf("part: partition %d ends at %d before previous end %d", p, e, prev)
		}
		prev = e
	}
	if prev != b.Size {
		return fmt.Errorf("part: last partition ends at %d, want %d", prev, b.Size)
	}
	return nil
}

// Greedy partitions a mode with per-slice non-zero counts θ into parts
// contiguous ranges following Algorithm 2. parts is clamped to [1, len(θ)]
// (a partition per slice is the finest possible split).
func Greedy(counts []int64, parts int) Boundaries {
	n := len(counts)
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	ends := make([]int, 0, parts)
	target := float64(total) / float64(parts)

	var sum int64
	var prevSum int64
	for i := 0; i < n && len(ends) < parts-1; i++ {
		sum += counts[i]
		if float64(sum) >= target {
			// Close the partition at i+1 or i, whichever load is closer to
			// the target (the ε comparison in Algorithm 2 lines 7-10).
			after := float64(sum) - target
			before := target - float64(prevSum)
			end := i + 1
			if before < after && i > 0 && (len(ends) == 0 || ends[len(ends)-1] < i) {
				end = i
				sum = counts[i]
			} else {
				sum = 0
			}
			// Never emit an empty partition.
			if len(ends) > 0 && end <= ends[len(ends)-1] {
				end = ends[len(ends)-1] + 1
				sum = 0
			}
			ends = append(ends, end)
			prevSum = 0
			continue
		}
		prevSum = sum
	}
	// Remaining slices (and any partitions we could not close) go to the
	// tail; pad with unit-width partitions if we ran out of slices.
	for len(ends) < parts-1 {
		last := 0
		if len(ends) > 0 {
			last = ends[len(ends)-1]
		}
		if last >= n-(parts-1-len(ends)) {
			break
		}
		ends = append(ends, last+1)
	}
	ends = append(ends, n)
	return Boundaries{Size: n, Ends: ends}
}

// Uniform splits [0, size) into parts equal-width ranges regardless of load
// (the ablation baseline).
func Uniform(size, parts int) Boundaries {
	if parts < 1 {
		parts = 1
	}
	if parts > size {
		parts = size
	}
	ends := make([]int, parts)
	for p := 0; p < parts; p++ {
		ends[p] = size * (p + 1) / parts
	}
	return Boundaries{Size: size, Ends: ends}
}

// LoadStats summarizes how evenly a partitioning spreads the non-zeros.
type LoadStats struct {
	Loads []int64
	Max   int64
	Min   int64
	Mean  float64
	// Imbalance is Max/Mean; 1.0 is perfect balance.
	Imbalance float64
}

// Stats computes per-partition loads for counts under b.
func Stats(counts []int64, b Boundaries) LoadStats {
	loads := make([]int64, b.NumPartitions())
	for p := range loads {
		lo, hi := b.Range(p)
		for i := lo; i < hi; i++ {
			loads[p] += counts[i]
		}
	}
	st := LoadStats{Loads: loads, Min: loads[0], Max: loads[0]}
	var total int64
	for _, l := range loads {
		total += l
		if l > st.Max {
			st.Max = l
		}
		if l < st.Min {
			st.Min = l
		}
	}
	st.Mean = float64(total) / float64(len(loads))
	if st.Mean > 0 {
		st.Imbalance = float64(st.Max) / st.Mean
	} else {
		st.Imbalance = 1
	}
	return st
}
