package part

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestGreedyUniformLoad(t *testing.T) {
	counts := make([]int64, 100)
	for i := range counts {
		counts[i] = 10
	}
	b := Greedy(counts, 4)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	st := Stats(counts, b)
	if st.Imbalance > 1.05 {
		t.Fatalf("uniform counts should balance: %+v", st)
	}
}

func TestGreedySkewedBeatsUniform(t *testing.T) {
	// Heavy head: slice 0 holds half the mass.
	counts := make([]int64, 64)
	counts[0] = 1000
	for i := 1; i < 64; i++ {
		counts[i] = 16
	}
	g := Greedy(counts, 4)
	u := Uniform(len(counts), 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	gs, us := Stats(counts, g), Stats(counts, u)
	if gs.Imbalance >= us.Imbalance {
		t.Fatalf("greedy imbalance %.3f not better than uniform %.3f", gs.Imbalance, us.Imbalance)
	}
}

func TestGreedyEdgeCases(t *testing.T) {
	// More partitions than slices.
	b := Greedy([]int64{5, 5}, 10)
	if b.NumPartitions() != 2 {
		t.Fatalf("parts = %d, want 2", b.NumPartitions())
	}
	// Single partition.
	b = Greedy([]int64{1, 2, 3}, 1)
	if b.NumPartitions() != 1 || b.Ends[0] != 3 {
		t.Fatalf("single partition = %+v", b)
	}
	// Zero counts everywhere.
	b = Greedy(make([]int64, 8), 3)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// parts < 1 clamps.
	b = Greedy([]int64{1, 1}, 0)
	if b.NumPartitions() != 1 {
		t.Fatalf("clamped parts = %d", b.NumPartitions())
	}
}

func TestPartitionOfAndRange(t *testing.T) {
	b := Boundaries{Size: 10, Ends: []int{3, 7, 10}}
	cases := []struct{ idx, want int }{{0, 0}, {2, 0}, {3, 1}, {6, 1}, {7, 2}, {9, 2}}
	for _, c := range cases {
		if got := b.PartitionOf(c.idx); got != c.want {
			t.Fatalf("PartitionOf(%d) = %d, want %d", c.idx, got, c.want)
		}
	}
	lo, hi := b.Range(1)
	if lo != 3 || hi != 7 {
		t.Fatalf("Range(1) = [%d,%d)", lo, hi)
	}
}

func TestValidateCatchesBadBoundaries(t *testing.T) {
	bad := []Boundaries{
		{Size: 5, Ends: nil},
		{Size: 5, Ends: []int{3, 2, 5}},
		{Size: 5, Ends: []int{3}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

// Property: Greedy always yields valid boundaries covering every slice
// exactly once, and PartitionOf is consistent with Range.
func TestGreedyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^7))
		n := 1 + int(seed%200)
		counts := make([]int64, n)
		for i := range counts {
			// Zipf-ish skew.
			counts[i] = int64(rng.IntN(100)) * int64(rng.IntN(10))
		}
		parts := 1 + int((seed>>8)%16)
		b := Greedy(counts, parts)
		if b.Validate() != nil {
			return false
		}
		for i := 0; i < n; i++ {
			p := b.PartitionOf(i)
			lo, hi := b.Range(p)
			if i < lo || i >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformProperty(t *testing.T) {
	f := func(size, parts uint16) bool {
		s := 1 + int(size%1000)
		p := 1 + int(parts%32)
		b := Uniform(s, p)
		return b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAllZero(t *testing.T) {
	b := Uniform(4, 2)
	st := Stats(make([]int64, 4), b)
	if st.Imbalance != 1 {
		t.Fatalf("zero-load imbalance = %v, want 1", st.Imbalance)
	}
}

// RunsOf must agree with PartitionOf on every row: rows[off[p]:off[p+1]] are
// exactly the rows PartitionOf assigns to p, for arbitrary boundaries and
// arbitrary ascending row lists.
func TestRunsOfMatchesPartitionOf(t *testing.T) {
	f := func(seed uint64, parts uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		size := 1 + rng.IntN(200)
		counts := make([]int64, size)
		for i := range counts {
			counts[i] = int64(rng.IntN(5))
		}
		b := Greedy(counts, 1+int(parts%16))
		rows := make([]int32, 0, size)
		for i := 0; i < size; i++ {
			if rng.IntN(3) > 0 {
				rows = append(rows, int32(i))
			}
		}
		off := b.RunsOf(rows)
		if len(off) != b.NumPartitions()+1 {
			return false
		}
		if off[0] != 0 || off[len(off)-1] != len(rows) {
			return false
		}
		for p := 0; p < b.NumPartitions(); p++ {
			if off[p] > off[p+1] {
				return false
			}
			for _, r := range rows[off[p]:off[p+1]] {
				if b.PartitionOf(int(r)) != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunsOfEmpty(t *testing.T) {
	b := Uniform(10, 3)
	off := b.RunsOf(nil)
	for _, o := range off {
		if o != 0 {
			t.Fatalf("offsets for empty rows = %v", off)
		}
	}
}
