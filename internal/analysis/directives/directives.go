// Package directives parses the repo's `//distenc:` comment directives, the
// audited escape hatches of the lint suite:
//
//	//distenc:hotpath                 — marks a function (or the func literals
//	                                    in the next statement) as an
//	                                    allocation-free hot path for hotalloc
//	//distenc:coldpath                — excludes one loop or statement inside a
//	                                    hot path from hotalloc (setup/emit code
//	                                    that does not run per non-zero)
//	//distenc:capture-ok v1 v2 -- why — waives named read-only captures in a
//	                                    task closure for rddcapture
//	//distenc:floatcmp-ok -- why      — approves exact float comparison in a
//	                                    function or statement for floatcmp
//	//distenc:accounted -- why        — marks an engine function whose byte
//	                                    accounting happens in its caller for
//	                                    bytecount
//	//distenc:blocks -- why           — marks a function as a blocking
//	                                    operation for lockorder (it parks the
//	                                    goroutine: network, channels, sleeps)
//	//distenc:lockheld-ok -- why      — waives one statement (or a whole
//	                                    function) that deliberately blocks
//	                                    while holding a mutex, for lockorder
//	//distenc:goroutine-owned-by m -- why
//	                                  — records the lifetime mechanism that
//	                                    joins or bounds a spawned goroutine
//	                                    for goroutineowner (e.g. channel-drain,
//	                                    conn-close, process-lifetime)
//	//distenc:atomic-ok -- why        — waives a deliberate plain access to an
//	                                    atomically-accessed field for
//	                                    atomicfield
//
// A directive binds to the node that starts on its own line, or to the node
// starting on the first non-comment line below it (so it can sit on the
// statement it governs or in the comment block above, including a FuncDecl's
// doc comment).
package directives

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment marker shared by every directive.
const Prefix = "//distenc:"

// Directive is one parsed `//distenc:name args... [-- reason]` comment.
type Directive struct {
	Name   string
	Args   []string // whitespace-separated args before any "--" separator
	Reason string   // free text after "--", if present
	Pos    token.Pos
}

// Map indexes a file set's directives by file and line.
type Map struct {
	fset *token.FileSet
	// byLine maps filename -> line -> directives on that line.
	byLine map[string]map[int][]Directive
	// commentLines marks filename -> lines fully occupied by comments, used
	// to let a directive bind across its surrounding comment block.
	commentLines map[string]map[int]bool
}

// Scan extracts every distenc directive from the files' comments.
func Scan(fset *token.FileSet, files []*ast.File) *Map {
	m := &Map{
		fset:         fset,
		byLine:       make(map[string]map[int][]Directive),
		commentLines: make(map[string]map[int]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				cl := m.commentLines[pos.Filename]
				if cl == nil {
					cl = make(map[int]bool)
					m.commentLines[pos.Filename] = cl
				}
				end := fset.Position(c.End())
				for l := pos.Line; l <= end.Line; l++ {
					cl[l] = true
				}
				d, ok := parse(c.Text)
				if !ok {
					continue
				}
				d.Pos = c.Pos()
				lines := m.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					m.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return m
}

func parse(text string) (Directive, bool) {
	if !strings.HasPrefix(text, Prefix) {
		return Directive{}, false
	}
	body := strings.TrimPrefix(text, Prefix)
	var reason string
	if i := strings.Index(body, "--"); i >= 0 {
		reason = strings.TrimSpace(body[i+2:])
		body = body[:i]
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Name: fields[0], Args: fields[1:], Reason: reason}, true
}

// ForNode returns the directives attached to node: those on the line node
// starts on, plus those in the contiguous comment block directly above it.
func (m *Map) ForNode(node ast.Node) []Directive {
	start := m.fset.Position(node.Pos())
	lines := m.byLine[start.Filename]
	if lines == nil {
		return nil
	}
	var out []Directive
	out = append(out, lines[start.Line]...)
	comments := m.commentLines[start.Filename]
	for l := start.Line - 1; comments[l]; l-- {
		out = append(out, lines[l]...)
	}
	return out
}

// Has reports whether node carries a directive with the given name.
func (m *Map) Has(node ast.Node, name string) bool {
	for _, d := range m.ForNode(node) {
		if d.Name == name {
			return true
		}
	}
	return false
}

// CaptureWaivers returns the variable names waived by capture-ok directives
// attached to node.
func (m *Map) CaptureWaivers(node ast.Node) map[string]bool {
	var out map[string]bool
	for _, d := range m.ForNode(node) {
		if d.Name != "capture-ok" {
			continue
		}
		if out == nil {
			out = make(map[string]bool)
		}
		for _, a := range d.Args {
			out[strings.TrimSuffix(a, ",")] = true
		}
	}
	return out
}
