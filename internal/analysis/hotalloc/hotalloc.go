// Package hotalloc locks in the allocation discipline of the MTTKRP kernels
// (the O(R·nnz) per-iteration hot path of Algorithm 3). Inside functions
// annotated `//distenc:hotpath`:
//
//   - loop bodies may not allocate (append / make / new / slice, map or
//     closure literals), write to maps, or box values into interfaces — any
//     of these inside the per-non-zero loops silently reintroduces the
//     per-entry garbage the fused kernel was built to eliminate;
//   - make / new / append are flagged anywhere in the body, loop or not:
//     hot-path scratch must come from the task arena (rdd.TaskCtx.Arena),
//     which is what makes steady-state iterations allocation-free. The one
//     sanctioned exception is the amortized self-append idiom
//     `buf = append(buf, …)` outside a loop — growing a caller-owned buffer
//     in place is how the wire encoders work.
//
// Setup and emission code that runs per mode or per partition rather than
// per non-zero — or whose result must outlive the arena's reset cycle — is
// excluded with a `//distenc:coldpath` directive on the statement (or loop)
// that owns it.
//
// The directive is recognized on a func declaration's doc comment, or on the
// line(s) directly above a statement containing func literals (annotating,
// e.g., the map closure handed to rdd.ShuffleMap).
package hotalloc

import (
	"go/ast"
	"go/types"

	"distenc/internal/analysis/directives"
	"distenc/internal/analysis/framework"
)

// Analyzer is the hotalloc pass.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //distenc:hotpath must draw scratch from the task arena, never the heap, and must not write maps or box interfaces in loop bodies",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	dirs := directives.Scan(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		// Hot functions: annotated declarations, plus every func literal in a
		// statement annotated with the directive.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && dirs.Has(n, "hotpath") {
					checkHot(pass, dirs, n.Body)
					return false
				}
			case ast.Stmt:
				if dirs.Has(n, "hotpath") {
					markLiterals(pass, dirs, n)
					return false
				}
			}
			return true
		})
	}
	return nil, nil
}

// markLiterals checks every func literal under an annotated statement.
func markLiterals(pass *framework.Pass, dirs *directives.Map, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkHot(pass, dirs, lit.Body)
			return false
		}
		return true
	})
}

// checkHot walks a hot function body tracking loop depth. Allocating
// builtins are violations at any depth (hot-path scratch belongs to the task
// arena); map writes, interface boxing, and literal allocations are reported
// only inside loop bodies, where they run per entry.
func checkHot(pass *framework.Pass, dirs *directives.Map, body *ast.BlockStmt) {
	selfAppends := collectSelfAppends(body)
	var walk func(n ast.Node, inLoop bool)
	walk = func(root ast.Node, inLoop bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil || n == root {
				return true
			}
			if stmt, ok := n.(ast.Stmt); ok && dirs.Has(stmt, "coldpath") {
				return false // audited setup/emission code
			}
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, inLoop)
				}
				if n.Cond != nil {
					walk(n.Cond, inLoop)
				}
				if n.Post != nil {
					walk(n.Post, inLoop)
				}
				walk(n.Body, true)
				return false
			case *ast.RangeStmt:
				walk(n.X, inLoop)
				walk(n.Body, true)
				return false
			case *ast.FuncLit:
				if inLoop {
					pass.Reportf(n.Pos(), "closure literal allocated inside a hot-path loop")
				}
				// The literal runs on its own schedule; its body is not part
				// of this hot path unless separately annotated.
				return false
			case *ast.CompositeLit:
				if !inLoop {
					return true
				}
				switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal allocates inside a hot-path loop", kindOf(pass, n))
				}
			case *ast.AssignStmt:
				if !inLoop {
					return true
				}
				for _, lhs := range n.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if _, isMap := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); isMap {
							pass.Reportf(lhs.Pos(), "map write inside a hot-path loop; use a flat slice accumulator (see PR 1's fused MTTKRP layout)")
						}
					}
				}
			case *ast.CallExpr:
				checkCall(pass, n, inLoop, selfAppends)
			}
			return true
		})
	}
	walk(body, false)
}

// collectSelfAppends gathers the append calls of the amortized in-place
// growth idiom `buf = append(buf, …)` (and its := form): outside a loop,
// growing a caller-owned buffer in place is the sanctioned way to build wire
// frames, so those calls are exempt from the arena rule.
func collectSelfAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	ok := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		asg, isAsg := n.(*ast.AssignStmt)
		if !isAsg || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
			if !isCall || len(call.Args) == 0 {
				continue
			}
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); !isIdent || id.Name != "append" {
				continue
			}
			if types.ExprString(asg.Lhs[i]) == types.ExprString(call.Args[0]) {
				ok[call] = true
			}
		}
		return true
	})
	return ok
}

func kindOf(pass *framework.Pass, n ast.Expr) string {
	switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// checkCall flags allocating builtins anywhere in a hot body (with the
// self-append exemption outside loops) and interface boxing inside hot loops.
func checkCall(pass *framework.Pass, call *ast.CallExpr, inLoop bool, selfAppends map[*ast.CallExpr]bool) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				switch {
				case inLoop:
					pass.Reportf(call.Pos(), "%s inside a hot-path loop; hoist the allocation out of the per-entry path or mark the statement //distenc:coldpath -- reason", b.Name())
				case b.Name() == "append" && selfAppends[call]:
					// buf = append(buf, …): amortized in-place growth of a
					// caller-owned buffer, the wire-encoder idiom.
				default:
					pass.Reportf(call.Pos(), "%s allocates from the heap in a //distenc:hotpath body; draw scratch from the task arena (rdd.TaskCtx.Arena) or mark the statement //distenc:coldpath -- reason", b.Name())
				}
			}
			return
		}
	}
	if !inLoop {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: concrete -> interface boxes the value.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && isConcrete(info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion to %s boxes a value inside a hot-path loop", tv.Type)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice does not box per element
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if types.IsInterface(param) && !isTypeParam(param) && isConcrete(info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "argument boxes a %s into %s inside a hot-path loop", info.TypeOf(arg), param)
		}
	}
}

// isConcrete reports whether t is a non-interface, non-nil type (the shapes
// that heap-box when converted to an interface).
func isConcrete(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(t)
}

func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	return ok
}
