// Fixture exercising hotalloc: allocation, map writes, and interface boxing
// inside annotated hot loops, plus the coldpath escape and the
// statement-level directive form.
package a

func sink(v any) { _ = v }

//distenc:hotpath
func hotKernel(xs []float64, out []float64, m map[int]int) []float64 {
	buf := make([]float64, 8) // want `make allocates from the heap in a //distenc:hotpath body`
	for i, x := range xs {
		out = append(out, x)  // want `append inside a hot-path loop`
		tmp := make([]int, 4) // want `make inside a hot-path loop`
		_ = tmp
		m[i] = i     // want `map write inside a hot-path loop`
		sink(x)      // want `boxes a float64 into`
		_ = []int{i} // want `slice literal allocates inside a hot-path loop`
	}
	//distenc:coldpath -- emission loop, runs once per call
	for i := range buf {
		out = append(out, buf[i])
	}
	return out
}

// Un-annotated functions allocate freely.
func coldHelper(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// The directive also reaches func literals inside the annotated statement,
// the form the MTTKRP map/reduce closures use.
func statementForm(xs []int) func() {
	//distenc:hotpath
	fn := func() {
		for range xs {
			_ = func() {} // want `closure literal allocated inside a hot-path loop`
		}
	}
	return fn
}

// Outside loops, the arena rule still bites: scratch must come from the task
// arena, with two escapes — the amortized self-append idiom and an explicit
// coldpath waiver.
//
//distenc:hotpath
func hotEncoder(buf []byte, vals []float64) []byte {
	buf = append(buf, byte(len(vals))) // self-append: caller-owned buffer grows in place
	tmp := new(int)                    // want `new allocates from the heap in a //distenc:hotpath body`
	_ = tmp
	other := append(buf, 0) // want `append allocates from the heap in a //distenc:hotpath body`
	_ = other
	//distenc:coldpath -- result outlives the arena's reset cycle
	escape := make([]float64, len(vals))
	copy(escape, vals)
	return buf
}
