package hotalloc_test

import (
	"testing"

	"distenc/internal/analysis/analysistest"
	"distenc/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "a")
}
