// Package framework is a dependency-free miniature of golang.org/x/tools'
// go/analysis: just enough driver surface to write the repo's own vet passes
// without importing x/tools (the module is intentionally stdlib-only). The
// types mirror go/analysis field-for-field where they overlap, so the
// analyzers port to the real framework by swapping an import path.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name is the flag/diagnostic label, e.g. "rddcapture".
	Name string
	// Doc is the one-paragraph help text; its first line is the summary.
	Doc string
	// Run executes the pass over one package and reports diagnostics
	// through pass.Report. The result value is unused by this driver but
	// kept for go/analysis signature compatibility.
	Run func(pass *Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one package's parsed and type-checked representation to an
// analyzer, exactly like analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding, anchored at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Validate checks the analyzer set for driver-breaking mistakes (missing
// names or run functions, duplicate names).
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a == nil || a.Name == "" {
			return fmt.Errorf("framework: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("framework: analyzer %s has no Run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("framework: duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
