package framework

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// unitConfig is the JSON compilation-unit description 'go vet' hands the
// tool via a *.cfg file. Field names and semantics follow the protocol
// implemented by x/tools' unitchecker (and consumed by cmd/go).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vet-compatible analysis tool. It speaks the
// 'go vet -vettool' protocol:
//
//	-V=full    print a content-addressed version line (for build caching)
//	-flags     describe supported flags as JSON
//	foo.cfg    analyze the single compilation unit described by the file
//
// As a convenience, invoking the tool with package patterns instead of a
// .cfg file re-executes `go vet -vettool=<self> <patterns>`, so
// `go run ./cmd/distenc-lint ./...` works directly.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	if err := Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	var versionFlag string
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.StringVar(&versionFlag, "V", "", "print version and exit (-V=full)")
	enabled := make(map[string]*bool)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = flag.Bool(a.Name, false, "enable only the "+a.Name+" analyzer: "+doc)
	}
	flag.Parse()

	if versionFlag != "" {
		if versionFlag != "full" {
			log.Fatalf("unsupported flag value: -V=%s", versionFlag)
		}
		printVersion(progname)
		return
	}
	if *printFlags {
		describeFlags()
		return
	}

	// If any analyzer was named explicitly, run only those.
	anyNamed := false
	for _, on := range enabled {
		if *on {
			anyNamed = true
			break
		}
	}
	if anyNamed {
		var keep []*Analyzer
		for _, a := range analyzers {
			if *enabled[a.Name] {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}

	args := flag.Args()
	switch {
	case len(args) == 0:
		fmt.Fprintf(os.Stderr, "usage: %s [-flags] [package pattern... | unit.cfg]\n", progname)
		os.Exit(2)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runUnit(args[0], analyzers)
	default:
		reexecGoVet(args)
	}
}

// printVersion emits the version line cmd/go hashes into its build cache
// key. Hashing the executable makes the line change whenever the analyzers
// do, so stale vet verdicts are never reused.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", progname, h.Sum(nil))
}

// describeFlags prints the flag inventory cmd/go queries before forwarding
// user-supplied vet flags.
func describeFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" {
			return
		}
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// reexecGoVet turns `distenc-lint ./...` into `go vet -vettool=<self> ./...`
// so the standalone and build-integrated modes share one code path.
func reexecGoVet(patterns []string) {
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("cannot locate own executable for -vettool: %v", err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		var exit *exec.ExitError
		if ok := isExitError(err, &exit); ok {
			os.Exit(exit.ExitCode())
		}
		log.Fatal(err)
	}
}

func isExitError(err error, out **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*out = e
	}
	return ok
}

// runUnit analyzes one compilation unit and exits: 0 when clean, 1 when any
// diagnostics were reported (matching unitchecker's convention).
func runUnit(configFile string, analyzers []*Analyzer) {
	cfg, err := readUnitConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}
	// The go command always materializes the facts file for downstream
	// units; none of the suite's analyzers exchange facts, so an empty file
	// both satisfies the protocol and short-circuits VetxOnly dependency
	// units without parsing a line of their source.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatalf("failed to write facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	diags, err := analyzeUnit(fset, cfg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func readUnitConfig(filename string) (*unitConfig, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// analyzeUnit parses and type-checks the unit against the compiler-produced
// export data named in the config, then runs every analyzer over it.
func analyzeUnit(fset *token.FileSet, cfg *unitConfig, analyzers []*Analyzer) ([]Diagnostic, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return RunAnalyzers(analyzers, &Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info})
}

// NewTypesInfo returns a types.Info with every map the analyzers rely on
// populated, shared by the vet driver and the analysistest harness.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

// RunAnalyzers executes each analyzer over the pass template (Analyzer and
// Report are filled per run) and returns all diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, template *Pass) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := *template
		pass.Analyzer = a
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Message = name + ": " + d.Message
			diags = append(diags, d)
		}
		if _, err := a.Run(&pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
