// Fixture for accadd: every placement of an accumulator add relative to a
// task closure's failure paths.
package a

import (
	"errors"

	"distenc/internal/rdd"
)

func stages(c *rdd.Cluster, items []int) error {
	counted := rdd.NewIntAccumulator()
	exact := rdd.NewIntAccumulator()
	r := rdd.Parallelize(c, "xs", items, 2)

	// A plain add before a fallible operation double-counts when the failed
	// attempt is retried.
	err := r.ForeachPartition(func(tc *rdd.TaskCtx, p int, in []int) error {
		counted.Add(int64(len(in))) // want `followed by a fallible return`
		if len(in) == 0 {
			return errors.New("empty partition")
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Deferred adds are exactly-once wherever they appear.
	err = r.ForeachPartition(func(tc *rdd.TaskCtx, p int, in []int) error {
		exact.AddOnSuccess(tc, int64(len(in)))
		if len(in) == 0 {
			return errors.New("empty partition")
		}
		return nil
	})
	if err != nil {
		return err
	}

	// A plain add on the final success path is fine: nothing fallible follows.
	err = r.ForeachPartition(func(tc *rdd.TaskCtx, p int, in []int) error {
		if len(in) == 0 {
			return errors.New("empty partition")
		}
		counted.Add(int64(len(in)))
		return nil
	})
	if err != nil {
		return err
	}

	// A closure that cannot fail from inside has no failure path to leak on.
	doubled := rdd.Map(r, "double", func(v int) int {
		counted.Add(1)
		return v * 2
	})

	// An audited intentional over-count is waived per statement.
	return doubled.ForeachPartition(func(tc *rdd.TaskCtx, p int, in []int) error {
		//distenc:accadd-ok -- fixture: approximate progress counter, over-count acceptable
		counted.Add(int64(len(in)))
		if len(in) == 0 {
			return errors.New("empty partition")
		}
		return nil
	})
}
