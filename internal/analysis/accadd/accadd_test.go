package accadd_test

import (
	"testing"

	"distenc/internal/analysis/accadd"
	"distenc/internal/analysis/analysistest"
)

func TestAccAdd(t *testing.T) {
	analysistest.Run(t, accadd.Analyzer, "a")
}
