// Package accadd enforces the accumulator exactly-once contract under task
// retry (see internal/rdd/accumulator.go): a plain Accumulator.Add that runs
// in a task attempt is NOT rolled back when the attempt later fails, so the
// retry double-counts. Inside a fallible task closure — one whose last result
// is an error — a plain Add is therefore only safe as part of the final
// success path: after it, the closure must not be able to return a non-nil
// error.
//
// The pass flags every rdd.Accumulator Add call in a task closure that is
// (positionally) followed by a fallible return, i.e. a return whose final
// result expression is not the literal nil. The fixes, in preference order:
// use AddOnSuccess (exactly-once by construction, legal anywhere in the
// closure), move the Add after the last fallible operation, or waive an
// audited intentional over-count with `//distenc:accadd-ok -- reason`.
//
// Closures without an error result cannot fail from inside and are exempt;
// so is the engine package itself, whose tests exercise the leak on purpose.
package accadd

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"distenc/internal/analysis/directives"
	"distenc/internal/analysis/framework"
)

// Analyzer is the accadd pass.
var Analyzer = &framework.Analyzer{
	Name: "accadd",
	Doc:  "plain Accumulator.Add in a fallible task closure must be the final success path; earlier adds double-count under retry — use AddOnSuccess",
	Run:  run,
}

// enginePath is the engine package, exempt like in rddcapture: its own tests
// demonstrate the over-count the contract documents.
const enginePath = "distenc/internal/rdd"

func run(pass *framework.Pass) (any, error) {
	if strings.HasPrefix(pass.Pkg.Path(), enginePath) || pass.Pkg.Name() == "rdd" {
		return nil, nil
	}
	dirs := directives.Scan(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		checkFile(pass, dirs, file)
	}
	return nil, nil
}

func checkFile(pass *framework.Pass, dirs *directives.Map, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := rddCallee(pass, call)
		if callee == "" {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				checkClosure(pass, dirs, lit, callee)
			}
		}
		return true
	})
}

// checkClosure flags plain accumulator adds followed by fallible returns
// within one task closure. Nested func literals are skipped: ones passed to
// the rdd API are tasks checked on their own, and a nested helper's returns
// are not the closure's returns.
func checkClosure(pass *framework.Pass, dirs *directives.Map, lit *ast.FuncLit, callee string) {
	if !returnsError(pass, lit) {
		return // the closure cannot fail from inside; any add is final
	}
	type addSite struct {
		pos    token.Pos
		waived bool
	}
	var adds []addSite
	var lastFallible token.Pos
	var stack []ast.Node
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != lit {
				return false
			}
		case *ast.ReturnStmt:
			if fallibleReturn(n) && n.Pos() > lastFallible {
				lastFallible = n.Pos()
			}
		case *ast.CallExpr:
			if isAccumulatorAdd(pass, n) {
				adds = append(adds, addSite{pos: n.Pos(), waived: waived(dirs, stack)})
			}
		}
		return true
	})
	for _, a := range adds {
		if a.waived || a.pos > lastFallible {
			continue
		}
		pass.Reportf(a.pos,
			"plain Accumulator.Add in the task closure passed to %s is followed by a fallible return; a failed attempt's add is not rolled back, so the retry double-counts — use AddOnSuccess, move the Add after the last fallible operation, or waive an intentional over-count with //distenc:accadd-ok -- reason",
			callee)
	}
}

// returnsError reports whether the closure's final result is an error.
func returnsError(pass *framework.Pass, lit *ast.FuncLit) bool {
	sig, ok := pass.TypesInfo.TypeOf(lit).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// fallibleReturn reports whether ret can yield a non-nil error: any return
// whose final result expression is not the literal nil (a bare return in a
// named-result closure counts as fallible).
func fallibleReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	id, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.Ident)
	return !ok || id.Name != "nil"
}

// isAccumulatorAdd reports whether call is Add on an rdd.Accumulator.
func isAccumulatorAdd(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Accumulator" && obj.Pkg() != nil && obj.Pkg().Name() == "rdd"
}

// waived reports whether any enclosing statement carries an accadd-ok
// directive.
func waived(dirs *directives.Map, stack []ast.Node) bool {
	for _, anc := range stack {
		if stmt, ok := anc.(ast.Stmt); ok && dirs.Has(stmt, "accadd-ok") {
			return true
		}
	}
	return false
}

// rddCallee returns a display name when call invokes a function or method
// from the rdd package (the calls whose closure arguments run as tasks).
func rddCallee(pass *framework.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit instantiation rdd.Map[T, U](...)
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return ""
	}
	if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Name() == "rdd" {
		return "rdd." + fn.Name()
	}
	return ""
}
