// Package a exercises the lockorder analyzer: blocking operations under a
// held mutex, guard-unlock-return tracking, waivers, same-package blocking
// propagation, //distenc:blocks annotations, and lock-order cycles.
package a

import (
	"sync"
	"time"
)

type engine struct {
	mu    sync.Mutex
	cond  *sync.Cond
	wg    sync.WaitGroup
	work  chan int
	state int
}

func (e *engine) sendUnderLock() {
	e.mu.Lock()
	e.work <- 1 // want `channel send while holding engine\.mu`
	e.mu.Unlock()
}

func (e *engine) recvUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	<-e.work // want `channel receive while holding engine\.mu`
}

func (e *engine) selectUnderLock(done chan struct{}) {
	e.mu.Lock()
	select { // want `select without a default case while holding engine\.mu`
	case v := <-e.work:
		e.state = v
	case <-done:
	}
	e.mu.Unlock()
}

// selectWithDefault never parks: a default case makes select non-blocking.
func (e *engine) selectWithDefault() {
	e.mu.Lock()
	select {
	case v := <-e.work:
		e.state = v
	default:
	}
	e.mu.Unlock()
}

func (e *engine) sleepUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding engine\.mu`
}

func (e *engine) waitUnderLock() {
	e.mu.Lock()
	e.wg.Wait() // want `sync\.WaitGroup\.Wait while holding engine\.mu`
	e.mu.Unlock()
}

// afterUnlock is clean: the blocking operations run with no lock held.
func (e *engine) afterUnlock() {
	e.mu.Lock()
	e.state++
	e.mu.Unlock()
	e.work <- 1
	time.Sleep(time.Millisecond)
}

// guardUnlockReturn: the early-return branch releases the lock and leaves,
// so the fall-through path still holds it.
func (e *engine) guardUnlockReturn(ok bool) {
	e.mu.Lock()
	if !ok {
		e.mu.Unlock()
		return
	}
	e.work <- 1 // want `channel send while holding engine\.mu`
	e.mu.Unlock()
}

// conditionalPair: the same condition guards Lock and Unlock; between the
// matching branches the blocking op runs only after the conditional unlock.
func (e *engine) conditionalPair(serial bool) {
	if serial {
		e.mu.Lock()
	}
	e.state++
	if serial {
		e.mu.Unlock()
	}
	<-e.work
}

// waived: deliberate blocking under the lock, with a reason on record.
func (e *engine) waived() {
	e.mu.Lock()
	//distenc:lockheld-ok -- wire-order test double: the lock IS the serializer
	e.work <- 1
	e.mu.Unlock()
}

// flush blocks (send); callers holding a lock inherit the finding.
func (e *engine) flush() {
	e.work <- 0
}

func (e *engine) callsBlockingUnderLock() {
	e.mu.Lock()
	e.flush() // want `blocking call to flush while holding engine\.mu`
	e.mu.Unlock()
}

//distenc:blocks -- replays the whole upstream lineage over the network
func (e *engine) recompute() {
	e.state++
}

func (e *engine) callsAnnotatedUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recompute() // want `blocking call to recompute while holding engine\.mu`
}

// goroutine bodies are independent roots: the spawner's lock is not held
// inside the closure.
func (e *engine) spawnClean() {
	e.mu.Lock()
	e.state++
	e.mu.Unlock()
	//distenc:goroutine-owned-by test-fixture -- ownership checked by goroutineowner, not here
	go func() {
		e.work <- 1
	}()
}

type registry struct {
	amu sync.Mutex
	bmu sync.Mutex
}

// lockAB and lockBA acquire the two locks in opposite orders: a classic
// deadlock-by-interleaving. Both edges are reported.
func (r *registry) lockAB() {
	r.amu.Lock()
	r.bmu.Lock() // want `lock-order cycle: registry\.bmu is acquired while registry\.amu is held`
	r.bmu.Unlock()
	r.amu.Unlock()
}

func (r *registry) lockBA() {
	r.bmu.Lock()
	r.amu.Lock() // want `lock-order cycle: registry\.amu is acquired while registry\.bmu is held`
	r.amu.Unlock()
	r.bmu.Unlock()
}

type nested struct {
	outer sync.Mutex
	inner sync.Mutex
}

// consistent nesting is fine: outer→inner only, no cycle.
func (n *nested) consistent() {
	n.outer.Lock()
	n.inner.Lock()
	n.inner.Unlock()
	n.outer.Unlock()
}
