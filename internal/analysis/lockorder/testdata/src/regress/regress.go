// Package regress reproduces the historical PR 5 `blockFor` lock convoy:
// the shuffle exchange held its mutex across a whole-lineage map-stage
// recompute, so every concurrent reduce fetcher — of any map output, not
// just the missing one — queued behind a single network replay. The fixed
// shape (single-flight: register interest under the lock, recompute outside
// it) must stay clean.
package regress

import "sync"

type blockState struct {
	data  []byte
	ready chan struct{}
}

type exchange struct {
	mu     sync.Mutex
	blocks map[int]*blockState
}

//distenc:blocks -- replays the whole upstream lineage over the network
func (e *exchange) recompute(mp int) *blockState {
	return &blockState{data: make([]byte, mp)}
}

// blockForConvoy is the buggy PR 5 shape: recompute runs under e.mu.
func (e *exchange) blockForConvoy(mp int) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	bs, ok := e.blocks[mp]
	if ok {
		return bs.data
	}
	bs = e.recompute(mp) // want `blocking call to recompute while holding exchange\.mu \(it is annotated //distenc:blocks\)`
	e.blocks[mp] = bs
	return bs.data
}

// blockForSingleFlight is the fixed shape: only map bookkeeping happens
// under the lock; the recompute and the wait both run outside it.
func (e *exchange) blockForSingleFlight(mp int) []byte {
	e.mu.Lock()
	bs, ok := e.blocks[mp]
	if !ok {
		bs = &blockState{ready: make(chan struct{})}
		e.blocks[mp] = bs
		e.mu.Unlock()
		got := e.recompute(mp)
		e.mu.Lock()
		bs.data = got.data
		e.mu.Unlock()
		close(bs.ready)
		return bs.data
	}
	e.mu.Unlock()
	<-bs.ready
	return bs.data
}
