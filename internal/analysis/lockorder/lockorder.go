// Package lockorder builds a per-package static lock graph and enforces the
// engine's two locking invariants (see DESIGN.md §8):
//
//  1. No blocking operation while a mutex is held. A goroutine that parks
//     inside a critical section convoys every other contender of that lock
//     behind whatever it is waiting for — the PR 5 `blockFor` incident, where
//     a whole-lineage shuffle recompute ran under the exchange lock and every
//     concurrent reduce fetcher of *any* map output queued behind it.
//     Blocking operations are: channel sends and receives, selects without a
//     default, time.Sleep, sync.WaitGroup/sync.Cond Wait, process waits,
//     socket dials and reads/writes (net, bufio-over-conn, io interface
//     calls, the rdd frame codec, rdd.Transport calls), calls to
//     same-package functions that (transitively) do any of those, and calls
//     to functions annotated `//distenc:blocks -- reason`.
//
//  2. No lock-order cycles. For every mutex B acquired (directly, or by a
//     same-package callee) while mutex A is held, the pass records the edge
//     A→B; a cycle in that graph is a deadlock waiting for the right
//     interleaving. Lock identity is the (receiver type, field) pair — e.g.
//     `Cluster.mu` — so the order is checked across all instances.
//
// The tracker is intra-procedural and heuristic, tuned to the repo's locking
// idioms rather than full path sensitivity:
//
//   - `mu.Lock()` adds the lock to the held set, `mu.Unlock()` removes it,
//     and `defer mu.Unlock()` keeps it held to the end of the function.
//   - A branch that ends in return/break/continue/goto/panic has its
//     lock-set effects discarded (control never continues past it), so the
//     ubiquitous `if cond { mu.Unlock(); return }` guard keeps the lock held
//     on the fall-through path.
//   - Branches that fall through merge pessimistically for acquisition
//     (held if either branch acquired) and optimistically for release
//     (released if either branch released), which models the engine's
//     `if cond { mu.Lock() } … if cond { mu.Unlock() }` pairs.
//
// Deliberate blocking under a lock — e.g. the transport's write lock, whose
// entire point is serializing socket writes — is waived per statement or per
// function with `//distenc:lockheld-ok -- reason`.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"distenc/internal/analysis/directives"
	"distenc/internal/analysis/framework"
)

// Analyzer is the lockorder pass.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc:  "flag blocking operations executed while a mutex is held and lock-acquisition order cycles (per-package static lock graph)",
	Run:  run,
}

// edge is one lock-order edge: to was acquired while from was held.
type edge struct {
	from, to string
	pos      token.Pos
}

// callSite is a statically resolved same-package call made with locks held.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	held   []heldLock
	waived bool
}

// heldLock is one lock in the held set, with where it was acquired.
type heldLock struct {
	id  string
	pos token.Pos
}

// blockEvent is a directly blocking operation found with locks held.
type blockEvent struct {
	desc   string
	pos    token.Pos
	held   []heldLock
	waived bool
}

// funcFacts aggregates what one function body does with locks.
type funcFacts struct {
	obj      *types.Func // nil for function literals
	acquires map[string]token.Pos
	blocks   bool // contains a direct blocking operation
	calls    []callSite
	events   []blockEvent
	edges    []edge
}

type checker struct {
	pass  *framework.Pass
	dirs  *directives.Map
	decls map[*types.Func]*ast.FuncDecl
	funcs []*funcFacts
	// queue of function-literal bodies to analyze as independent roots
	// (goroutine bodies, deferred closures, callbacks): they do not run
	// under the spawning function's locks.
	lits []*ast.FuncLit
	seen map[*ast.FuncLit]bool
}

func run(pass *framework.Pass) (any, error) {
	c := &checker{
		pass:  pass,
		dirs:  directives.Scan(pass.Fset, pass.Files),
		decls: map[*types.Func]*ast.FuncDecl{},
		seen:  map[*ast.FuncLit]bool{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			c.analyzeBody(fn, fd, fd.Body)
		}
	}
	// Function literals reached from the roots (and from each other).
	for len(c.lits) > 0 {
		lit := c.lits[0]
		c.lits = c.lits[1:]
		c.analyzeBody(nil, nil, lit.Body)
	}
	c.report()
	return nil, nil
}

// analyzeBody walks one function body as an independent root with an empty
// held set.
func (c *checker) analyzeBody(fn *types.Func, decl *ast.FuncDecl, body *ast.BlockStmt) {
	f := &funcFacts{obj: fn, acquires: map[string]token.Pos{}}
	w := &walker{c: c, f: f}
	if decl != nil && c.hasDirective(decl, "lockheld-ok") {
		w.funcWaived = true
	}
	w.walkStmt(body, map[string]token.Pos{})
	c.funcs = append(c.funcs, f)
}

func (c *checker) hasDirective(node ast.Node, name string) bool {
	return c.dirs.Has(node, name)
}

// walker tracks the may-held lock set through one function body.
type walker struct {
	c          *checker
	f          *funcFacts
	stack      []ast.Stmt // enclosing statements, for waiver lookup
	funcWaived bool
}

func (w *walker) waived() bool {
	if w.funcWaived {
		return true
	}
	for _, s := range w.stack {
		if w.c.hasDirective(s, "lockheld-ok") {
			return true
		}
	}
	return false
}

func snapshot(held map[string]token.Pos) []heldLock {
	out := make([]heldLock, 0, len(held))
	for id, pos := range held {
		out = append(out, heldLock{id, pos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// mergeBranches folds the fall-through branches of a conditional back into
// pre: a lock survives if every branch (and the pre state) still holds it
// — optimistic release — and a lock newly acquired by any branch is held —
// pessimistic acquisition.
func mergeBranches(pre map[string]token.Pos, branches []map[string]token.Pos) map[string]token.Pos {
	if len(branches) == 0 {
		return pre
	}
	out := map[string]token.Pos{}
	for id, pos := range pre {
		all := true
		for _, b := range branches {
			if _, ok := b[id]; !ok {
				all = false
				break
			}
		}
		if all {
			out[id] = pos
		}
	}
	for _, b := range branches {
		for id, pos := range b {
			if _, inPre := pre[id]; !inPre {
				if _, ok := out[id]; !ok {
					out[id] = pos
				}
			}
		}
	}
	return out
}

// walkStmt processes stmt, mutating held; it reports true when stmt
// unconditionally leaves the enclosing block (return, branch, panic), so
// callers can discard the branch's lock-set effects.
func (w *walker) walkStmt(stmt ast.Stmt, held map[string]token.Pos) bool {
	if stmt == nil {
		return false
	}
	w.stack = append(w.stack, stmt)
	defer func() { w.stack = w.stack[:len(w.stack)-1] }()

	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			if w.walkStmt(st, held) {
				return true
			}
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init, held)
		w.walkExpr(s.Cond, held)
		thenHeld := clone(held)
		thenTerm := w.walkStmt(s.Body, thenHeld)
		elseHeld := clone(held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm && s.Else != nil:
			return true
		case thenTerm:
			replace(held, elseHeld)
		case elseTerm:
			replace(held, thenHeld)
		default:
			replace(held, mergeBranches(held, []map[string]token.Pos{thenHeld, elseHeld}))
		}
	case *ast.ForStmt:
		w.walkStmt(s.Init, held)
		w.walkExpr(s.Cond, held)
		body := clone(held)
		if !w.walkStmt(s.Body, body) {
			w.walkStmt(s.Post, body)
			replace(held, mergeBranches(held, []map[string]token.Pos{body}))
		}
	case *ast.RangeStmt:
		w.walkExpr(s.X, held)
		body := clone(held)
		if !w.walkStmt(s.Body, body) {
			replace(held, mergeBranches(held, []map[string]token.Pos{body}))
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var body *ast.BlockStmt
		hasDefault := false
		if sw, ok := s.(*ast.SwitchStmt); ok {
			init, body = sw.Init, sw.Body
			w.walkStmt(init, held)
			w.walkExpr(sw.Tag, held)
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			init, body = ts.Init, ts.Body
			w.walkStmt(init, held)
		}
		var branches []map[string]token.Pos
		for _, cc := range body.List {
			cl := cc.(*ast.CaseClause)
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				w.walkExpr(e, held)
			}
			bh := clone(held)
			term := false
			for _, st := range cl.Body {
				if w.walkStmt(st, bh) {
					term = true
					break
				}
			}
			if !term {
				branches = append(branches, bh)
			}
		}
		if !hasDefault {
			branches = append(branches, clone(held)) // no case may match
		}
		replace(held, mergeBranches(held, branches))
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if cc.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.f.blocks = true
			if len(held) > 0 {
				w.blockAt(s.Pos(), "select without a default case", held)
			}
		}
		var branches []map[string]token.Pos
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CommClause)
			bh := clone(held)
			term := false
			for _, st := range cl.Body {
				if w.walkStmt(st, bh) {
					term = true
					break
				}
			}
			if !term {
				branches = append(branches, bh)
			}
		}
		replace(held, mergeBranches(held, branches))
	case *ast.SendStmt:
		w.walkExpr(s.Chan, held)
		w.walkExpr(s.Value, held)
		w.f.blocks = true
		if len(held) > 0 {
			w.blockAt(s.Pos(), "channel send", held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the function;
		// other deferred work runs at return, outside this walk.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.c.enqueueLit(lit)
		}
		for _, a := range s.Call.Args {
			w.walkExpr(a, held)
		}
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.c.enqueueLit(lit)
		}
		for _, a := range s.Call.Args {
			w.walkExpr(a, held)
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IncDecStmt:
		w.walkExpr(s.X, held)
	}
	return false
}

func replace(dst, src map[string]token.Pos) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// walkExpr scans an expression for lock operations, blocking operations and
// same-package calls. Function literals become independent roots.
func (w *walker) walkExpr(expr ast.Expr, held map[string]token.Pos) {
	if expr == nil {
		return
	}
	switch e := expr.(type) {
	case *ast.FuncLit:
		w.c.enqueueLit(e)
		return
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.f.blocks = true
			if len(held) > 0 {
				w.blockAt(e.Pos(), "channel receive", held)
			}
		}
		w.walkExpr(e.X, held)
		return
	case *ast.CallExpr:
		// Arguments evaluate before the call transfers control.
		w.walkExpr(e.Fun, held)
		for _, a := range e.Args {
			w.walkExpr(a, held)
		}
		w.handleCall(e, held)
		return
	case *ast.BinaryExpr:
		w.walkExpr(e.X, held)
		w.walkExpr(e.Y, held)
	case *ast.ParenExpr:
		w.walkExpr(e.X, held)
	case *ast.SelectorExpr:
		w.walkExpr(e.X, held)
	case *ast.IndexExpr:
		w.walkExpr(e.X, held)
		w.walkExpr(e.Index, held)
	case *ast.IndexListExpr:
		w.walkExpr(e.X, held)
		for _, i := range e.Indices {
			w.walkExpr(i, held)
		}
	case *ast.SliceExpr:
		w.walkExpr(e.X, held)
		w.walkExpr(e.Low, held)
		w.walkExpr(e.High, held)
		w.walkExpr(e.Max, held)
	case *ast.StarExpr:
		w.walkExpr(e.X, held)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(el, held)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value, held)
	}
}

// handleCall classifies one call: mutex operation, known-blocking callee, or
// same-package call to resolve in the cross-function phase.
func (w *walker) handleCall(call *ast.CallExpr, held map[string]token.Pos) {
	if id, op, ok := w.c.mutexOp(call); ok {
		switch op {
		case opLock:
			if _, already := held[id]; !already {
				for from, fpos := range held {
					if from != id {
						w.f.edges = append(w.f.edges, edge{from: from, to: id, pos: call.Pos()})
						_ = fpos
					}
				}
				held[id] = call.Pos()
				if _, ok := w.f.acquires[id]; !ok {
					w.f.acquires[id] = call.Pos()
				}
			}
		case opUnlock:
			delete(held, id)
		}
		return
	}
	if desc, ok := w.c.blockingCallee(call); ok {
		w.f.blocks = true
		if len(held) > 0 {
			w.blockAt(call.Pos(), desc, held)
		}
		return
	}
	if fn, ok := w.c.samePkgCallee(call); ok {
		w.f.calls = append(w.f.calls, callSite{
			callee: fn,
			pos:    call.Pos(),
			held:   snapshot(held),
			waived: w.waived(),
		})
	}
}

func (w *walker) blockAt(pos token.Pos, desc string, held map[string]token.Pos) {
	w.f.blocks = true
	w.f.events = append(w.f.events, blockEvent{
		desc:   desc,
		pos:    pos,
		held:   snapshot(held),
		waived: w.waived(),
	})
}

func (c *checker) enqueueLit(lit *ast.FuncLit) {
	if !c.seen[lit] {
		c.seen[lit] = true
		c.lits = append(c.lits, lit)
	}
}

type mutexOpKind int

const (
	opNone mutexOpKind = iota
	opLock
	opUnlock
)

// mutexOp recognizes sync.Mutex / sync.RWMutex method calls and resolves the
// lock's package-wide identity: `Type.field` for a mutex struct field, the
// variable name otherwise.
func (c *checker) mutexOp(call *ast.CallExpr) (string, mutexOpKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone, false
	}
	var op mutexOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone, false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone, false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", opNone, false
	}
	return c.lockID(sel.X), op, true
}

// lockID names the mutex denoted by expr with a package-wide identity.
func (c *checker) lockID(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := c.pass.TypesInfo.Selections[e]; ok {
			recv := selInfo.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return named.Obj().Name() + "." + e.Sel.Name
			}
			return e.Sel.Name
		}
		if obj, ok := c.pass.TypesInfo.Uses[e.Sel]; ok {
			return obj.Name() // package-qualified variable
		}
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	default:
		return types.ExprString(expr)
	}
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// blockingCallee reports whether call's statically resolved callee is a
// known-blocking operation from another package. Cross-package comments are
// invisible under the vet unit protocol, so the `//distenc:blocks` contract
// for foreign packages is mirrored here as a curated table; same-package
// `//distenc:blocks` annotations are honored from source in report().
func (c *checker) blockingCallee(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(c.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	recv := recvTypeName(fn)
	switch {
	case path == "time" && name == "Sleep":
		return "time.Sleep", true
	case path == "sync" && name == "Wait" && (recv == "WaitGroup" || recv == "Cond"):
		return "sync." + recv + ".Wait", true
	case path == "os/exec" && name == "Wait" && recv == "Cmd":
		return "(*exec.Cmd).Wait", true
	case path == "net" && strings.HasPrefix(name, "Dial"):
		return "net." + name, true
	case path == "net" && (name == "Read" || name == "Write" || name == "Accept"):
		return "net " + recv + "." + name + " I/O", true
	case path == "io" && (name == "Read" || name == "Write" || name == "Copy" || name == "ReadAll" || name == "ReadFull"):
		return "io." + name, true
	case path == "bufio" && (name == "Flush" || name == "Read" || name == "ReadByte" || name == "ReadBytes" || name == "ReadString" || name == "Peek"):
		return "bufio." + recv + "." + name, true
	case strings.HasSuffix(path, "internal/rdd") && fn.Pkg() != c.pass.Pkg:
		if name == "ReadFrame" || name == "WriteFrame" {
			return "rdd." + name, true
		}
		if recv == "Transport" {
			return "rdd.Transport." + name, true
		}
	case fn.Pkg() == c.pass.Pkg && recv == "Transport":
		// The engine's own Transport interface: every method is a network
		// round trip on the remote backend.
		return "Transport." + name, true
	}
	return "", false
}

// samePkgCallee resolves a statically dispatched call to a function or
// method declared in the package under analysis.
func (c *checker) samePkgCallee(call *ast.CallExpr) (*types.Func, bool) {
	fn := calleeFunc(c.pass, call)
	if fn == nil || fn.Pkg() != c.pass.Pkg {
		return nil, false
	}
	if _, ok := c.decls[fn]; !ok {
		return nil, false // interface method or declaration without a body
	}
	return fn, true
}

func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// report runs the cross-function phases: blocking propagation through
// same-package calls, then the lock-graph cycle check.
func (c *checker) report() {
	// Fixed point 1: which declared functions may block. Seeds are direct
	// blocking operations and //distenc:blocks annotations.
	mayBlock := map[*types.Func]bool{}
	annotated := map[*types.Func]bool{}
	byObj := map[*types.Func]*funcFacts{}
	for _, f := range c.funcs {
		if f.obj == nil {
			continue
		}
		byObj[f.obj] = f
		if f.blocks {
			mayBlock[f.obj] = true
		}
		if decl := c.decls[f.obj]; decl != nil && c.hasDirective(decl, "blocks") {
			mayBlock[f.obj] = true
			annotated[f.obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, f := range byObj {
			if mayBlock[obj] {
				continue
			}
			for _, cs := range f.calls {
				if mayBlock[cs.callee] {
					mayBlock[obj] = true
					changed = true
					break
				}
			}
		}
	}
	// Fixed point 2: the transitive lock-acquisition set of each function.
	acq := map[*types.Func]map[string]bool{}
	for obj, f := range byObj {
		set := map[string]bool{}
		for id := range f.acquires {
			set[id] = true
		}
		acq[obj] = set
	}
	for changed := true; changed; {
		changed = false
		for obj, f := range byObj {
			for _, cs := range f.calls {
				for id := range acq[cs.callee] {
					if !acq[obj][id] {
						acq[obj][id] = true
						changed = true
					}
				}
			}
		}
	}

	// Blocking-while-locked diagnostics: direct events plus lock-held calls
	// to may-block functions.
	for _, f := range c.funcs {
		for _, ev := range f.events {
			if ev.waived {
				continue
			}
			c.pass.Reportf(ev.pos,
				"%s while holding %s; blocking under a lock convoys every contender — release the lock first, or waive a deliberate design with //distenc:lockheld-ok -- reason",
				ev.desc, heldNames(ev.held))
		}
		for _, cs := range f.calls {
			if len(cs.held) == 0 || cs.waived || !mayBlock[cs.callee] {
				continue
			}
			why := "it performs a blocking operation"
			if annotated[cs.callee] {
				why = "it is annotated //distenc:blocks"
			}
			c.pass.Reportf(cs.pos,
				"blocking call to %s while holding %s (%s); blocking under a lock convoys every contender — release the lock first, or waive a deliberate design with //distenc:lockheld-ok -- reason",
				cs.callee.Name(), heldNames(cs.held), why)
		}
	}

	// Lock graph: direct edges plus edges induced by lock-held calls.
	edges := map[[2]string]token.Pos{}
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		key := [2]string{from, to}
		if old, ok := edges[key]; !ok || pos < old {
			edges[key] = pos
		}
	}
	for _, f := range c.funcs {
		for _, e := range f.edges {
			addEdge(e.from, e.to, e.pos)
		}
		for _, cs := range f.calls {
			for id := range acq[cs.callee] {
				for _, h := range cs.held {
					addEdge(h.id, id, cs.pos)
				}
			}
		}
	}
	succ := map[string][]string{}
	for key := range edges {
		succ[key[0]] = append(succ[key[0]], key[1])
	}
	var cyclic [][2]string
	for key := range edges {
		if reaches(succ, key[1], key[0]) {
			cyclic = append(cyclic, key)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool { return edges[cyclic[i]] < edges[cyclic[j]] })
	for _, key := range cyclic {
		c.pass.Reportf(edges[key],
			"lock-order cycle: %s is acquired while %s is held here, but elsewhere %s is acquired (possibly transitively) while %s is held — pick one global order",
			key[1], key[0], key[0], key[1])
	}
}

func reaches(succ map[string][]string, from, to string) bool {
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, succ[n]...)
	}
	return false
}

func heldNames(held []heldLock) string {
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = h.id
	}
	return fmt.Sprintf("%s", strings.Join(names, ", "))
}
