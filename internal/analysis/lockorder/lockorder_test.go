package lockorder_test

import (
	"testing"

	"distenc/internal/analysis/analysistest"
	"distenc/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "a", "regress")
}
