package atomicfield_test

import (
	"testing"

	"distenc/internal/analysis/analysistest"
	"distenc/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "a")
}
