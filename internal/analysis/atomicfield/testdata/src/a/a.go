// Package a exercises the atomicfield analyzer: mixed atomic/plain access
// to plain-typed fields, value copies of atomic-typed fields, and waivers.
package a

import "sync/atomic"

type metrics struct {
	// bytes is updated with atomic.AddInt64 — every access must be atomic.
	bytes int64
	// ops is an atomic-typed counter — method calls only.
	ops atomic.Int64
	// plain is never touched atomically; ordinary access is fine.
	plain int64
}

func (m *metrics) record(n int64) {
	atomic.AddInt64(&m.bytes, n)
	m.ops.Add(1)
	m.plain += n
}

func (m *metrics) read() int64 {
	return atomic.LoadInt64(&m.bytes) + m.ops.Load() + m.plain
}

// mixedRead races with record's AddInt64.
func (m *metrics) mixedRead() int64 {
	return m.bytes // want `field metrics\.bytes is accessed with sync/atomic elsewhere`
}

// mixedWrite races the same way.
func (m *metrics) mixedWrite() {
	m.bytes = 0 // want `field metrics\.bytes is accessed with sync/atomic elsewhere`
}

// copyAtomic strips the guarantee (and duplicates internal state).
func (m *metrics) copyAtomic() atomic.Int64 {
	return m.ops // want `atomic field metrics\.ops used as a value`
}

// assignAtomic is the same defect on the write side.
func (m *metrics) assignAtomic(v atomic.Int64) {
	m.ops = v // want `atomic field metrics\.ops used as a value`
}

// addrAtomic is fine: a pointer preserves the shared instance.
func (m *metrics) addrAtomic() *atomic.Int64 {
	return &m.ops
}

// waivedRead: a deliberate pre-publication plain read, on the record.
func (m *metrics) waivedRead() int64 {
	//distenc:atomic-ok -- snapshot in the constructor before the struct is shared
	return m.bytes
}
