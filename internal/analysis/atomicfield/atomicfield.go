// Package atomicfield enforces all-or-nothing atomicity on struct fields:
// a field accessed through sync/atomic anywhere in the package may not be
// read or written plainly anywhere else. Mixed access is a silent data race
// — the plain load can see a torn or stale value, and the race detector
// only catches the schedules it happens to run. The engine's exactly-once
// metrics counters (speculation commit race) depend on this invariant.
//
// Two field classes are checked:
//
//   - plain-typed fields (int64, uint32, …) passed by address to a
//     sync/atomic function (atomic.AddInt64(&m.bytes, n)): every other use
//     must also be an atomic-call argument;
//   - fields of a sync/atomic type (atomic.Int64, atomic.Bool, …): use is
//     method calls only — copying or assigning the value strips the
//     atomicity guarantee (and copies the internal noCopy state).
//
// A deliberate mixed access — e.g. a plain read in a constructor before the
// value is shared — is waived per statement with
// `//distenc:atomic-ok -- reason`.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"distenc/internal/analysis/directives"
	"distenc/internal/analysis/framework"
)

// Analyzer is the atomicfield pass.
var Analyzer = &framework.Analyzer{
	Name: "atomicfield",
	Doc:  "forbid plain access to struct fields that are accessed via sync/atomic elsewhere, and value copies of atomic-typed fields",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	dirs := directives.Scan(pass.Fset, pass.Files)

	// Pass 1: find fields used as sync/atomic call arguments, and remember
	// exactly which selector expressions those sanctioned uses are.
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldOf(pass, sel); f != nil {
					atomicFields[f] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag plain uses of those fields, and value uses of fields
	// whose type lives in sync/atomic.
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := fieldOf(pass, sel)
			if f == nil {
				return true
			}
			parent := parentOf(stack)
			if atomicFields[f] && !sanctioned[sel] {
				// Taking the address without an immediate atomic call is
				// tolerated: the pointer may feed an atomic op elsewhere.
				if isAddrOperand(parent, sel) {
					return true
				}
				if !waived(dirs, stack) {
					pass.Reportf(sel.Pos(),
						"field %s is accessed with sync/atomic elsewhere in this package; a plain access races with those — use atomic operations here too, or waive with //distenc:atomic-ok -- reason",
						fieldDisplay(pass, sel, f))
				}
				return true
			}
			if isAtomicType(f.Type()) {
				// Method calls (m.ops.Add(1)) and address-taking are the
				// sanctioned uses; anything else copies the value.
				if isMethodRecv(parent, sel) || isAddrOperand(parent, sel) {
					return true
				}
				if !waived(dirs, stack) {
					pass.Reportf(sel.Pos(),
						"atomic field %s used as a value; copying or assigning it strips the atomicity guarantee — call its methods, or waive with //distenc:atomic-ok -- reason",
						fieldDisplay(pass, sel, f))
				}
			}
			return true
		})
	}
	return nil, nil
}

func isAtomicPkgCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// fieldOf resolves sel to the struct field object it denotes, or nil.
func fieldOf(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

func isMethodRecv(parent ast.Node, sel *ast.SelectorExpr) bool {
	p, ok := parent.(*ast.SelectorExpr)
	return ok && p.X == sel
}

func isAddrOperand(parent ast.Node, sel *ast.SelectorExpr) bool {
	p, ok := parent.(*ast.UnaryExpr)
	return ok && p.Op == token.AND && ast.Unparen(p.X) == sel
}

// fieldDisplay names the field as Type.field when the receiver type is
// resolvable, else just the field name.
func fieldDisplay(pass *framework.Pass, sel *ast.SelectorExpr, f *types.Var) string {
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

func waived(dirs *directives.Map, stack []ast.Node) bool {
	for _, n := range stack {
		if st, ok := n.(ast.Stmt); ok && dirs.Has(st, "atomic-ok") {
			return true
		}
	}
	return false
}
