// Package analysistest runs the suite's analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` comments, mirroring
// x/tools' analysistest contract with the stdlib only.
//
// Fixtures live in testdata/src/<pkg>/ next to each analyzer's test. They are
// type-checked against real export data — including the repo's own packages,
// so a fixture can import distenc/internal/rdd and exercise an analyzer
// exactly the way production code does — obtained by shelling out to
// `go list -deps -export -json`.
//
// An expectation comment names one or more patterns on the line the
// diagnostic is reported on:
//
//	total += v // want `writes to captured driver-side variable`
//
// Every pattern must match exactly one diagnostic on its line and every
// diagnostic must be matched by a pattern; anything unmatched on either side
// fails the test.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"distenc/internal/analysis/framework"
)

// Run analyzes each fixture package under testdata/src with a and verifies
// the diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) { runOne(t, a, pkg) })
	}
}

func runOne(t *testing.T, a *framework.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	imports := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}

	exports := listExports(t, imports)
	comp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := &types.Config{
		Importer: comp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := framework.NewTypesInfo()
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	diags, err := framework.RunAnalyzers([]*framework.Analyzer{a},
		&framework.Pass{Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info})
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}

	wants := expectations(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := posKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matched %q", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE pulls the expectation patterns out of a want comment: backquoted or
// double-quoted strings after the marker.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectations indexes the fixtures' want comments by file and line.
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	t.Helper()
	out := make(map[posKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					pat := m[1]
					if m[2] != "" {
						if unq, err := strconv.Unquote(`"` + m[2] + `"`); err == nil {
							pat = unq
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					key := posKey{pos.Filename, pos.Line}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// listExports resolves import paths (transitively) to compiled export data
// via the go command, so fixtures type-check against the real packages they
// import.
func listExports(t *testing.T, imports map[string]bool) map[string]string {
	t.Helper()
	out := make(map[string]string)
	if len(imports) == 0 {
		return out
	}
	args := []string{"list", "-deps", "-export", "-json=ImportPath,Export"}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	cmd := exec.Command("go", append(args, paths...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go list -export failed: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out
}
