// Package rddcapture enforces the Spark serialization boundary the in-process
// rdd engine cannot enforce at runtime: closures handed to rdd
// transformations run as tasks, and on a real cluster they would be
// serialized and shipped — they must not share mutable driver state.
//
// Two rules, checked on every func literal passed into the rdd API:
//
//  1. A task closure must never WRITE to a captured driver-side variable
//     (any type — a captured counter silently no-ops on real executors).
//     Results flow through return values or an rdd.Accumulator.
//  2. A task closure must not capture driver-side mutable values (slices,
//     maps, pointers, chans, interfaces, or structs containing them) even
//     read-only, except *rdd.Broadcast / *rdd.Accumulator handles and plain
//     function values. Read-only shipment that the algorithm accounts for
//     explicitly (e.g. the MTTKRP factor-row shipping charged via
//     TaskCtx.CountShuffled) is waived per variable with
//     `//distenc:capture-ok var... -- reason`, keeping every crossing of the
//     boundary auditable.
//
// The engine package itself (distenc/internal/rdd) is exempt: its internal
// closures ARE the machinery that emulates the boundary.
package rddcapture

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"distenc/internal/analysis/directives"
	"distenc/internal/analysis/framework"
)

// Analyzer is the rddcapture pass.
var Analyzer = &framework.Analyzer{
	Name: "rddcapture",
	Doc:  "task closures passed to rdd transformations must not capture or write driver-side mutable state",
	Run:  run,
}

// enginePath is the package whose func literals are exempt (the engine) and
// whose API calls mark their closure arguments as tasks.
const enginePath = "distenc/internal/rdd"

func run(pass *framework.Pass) (any, error) {
	if strings.HasPrefix(pass.Pkg.Path(), enginePath) || pass.Pkg.Name() == "rdd" {
		return nil, nil
	}
	dirs := directives.Scan(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		checkFile(pass, dirs, file)
	}
	return nil, nil
}

// taskClosure is one func literal passed into the rdd API.
type taskClosure struct {
	lit     *ast.FuncLit
	callee  string          // display name, e.g. "rdd.ShuffleMap"
	waivers map[string]bool // capture-ok variable names in scope for this closure
}

func checkFile(pass *framework.Pass, dirs *directives.Map, file *ast.File) {
	// First pass: find every closure that will run as a task. Waivers may sit
	// on the enclosing statement/call or directly on the literal.
	var tasks []taskClosure
	isTask := make(map[*ast.FuncLit]bool)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := rddCallee(pass, call)
		if callee == "" {
			return true
		}
		waivers := dirs.CaptureWaivers(call)
		for _, anc := range stack {
			if stmt, ok := anc.(ast.Stmt); ok {
				for v := range dirs.CaptureWaivers(stmt) {
					if waivers == nil {
						waivers = make(map[string]bool)
					}
					waivers[v] = true
				}
			}
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				lw := waivers
				for v := range dirs.CaptureWaivers(lit) {
					if lw == nil {
						lw = make(map[string]bool)
					}
					lw[v] = true
				}
				tasks = append(tasks, taskClosure{lit: lit, callee: callee, waivers: lw})
				isTask[lit] = true
			}
		}
		return true
	})

	for _, t := range tasks {
		checkClosure(pass, t, isTask)
	}
}

// rddCallee returns a display name when call invokes a function, method, or
// func-type conversion from the rdd package, and "" otherwise.
func rddCallee(pass *framework.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit instantiation rdd.Map[T, U](...)
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return ""
	}
	switch obj := pass.TypesInfo.Uses[id].(type) {
	case *types.Func:
		if obj.Pkg() != nil && obj.Pkg().Name() == "rdd" {
			return "rdd." + obj.Name()
		}
	case *types.TypeName: // conversion like rdd.FuncPartitioner(f)
		if obj.Pkg() != nil && obj.Pkg().Name() == "rdd" {
			return "rdd." + obj.Name()
		}
	}
	return ""
}

func checkClosure(pass *framework.Pass, t taskClosure, isTask map[*ast.FuncLit]bool) {
	info := pass.TypesInfo
	lit := t.lit
	// declaredOutside reports whether obj is driver-side state relative to
	// this closure: a non-field variable declared outside the literal.
	declaredOutside := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		return v.Pos() < lit.Pos() || v.Pos() >= lit.End()
	}

	written := make(map[*types.Var]token.Pos)     // first write site per captured var
	readMutable := make(map[*types.Var]token.Pos) // first mutable-capture site per var

	noteWrite := func(e ast.Expr, at token.Pos) {
		if id, ok := baseIdent(e); ok {
			if obj := info.Uses[id]; obj != nil && declaredOutside(obj) {
				v := obj.(*types.Var)
				if _, dup := written[v]; !dup {
					written[v] = at
				}
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit && isTask[inner] {
			// A nested task closure is analyzed on its own; skip it here so
			// its captures are not double-reported against this closure.
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				noteWrite(lhs, n.TokPos)
			}
		case *ast.IncDecStmt:
			noteWrite(n.X, n.TokPos)
		case *ast.RangeStmt:
			if n.Key != nil {
				noteWrite(n.Key, n.For)
			}
			if n.Value != nil {
				noteWrite(n.Value, n.For)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					noteWrite(id, n.OpPos)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && info.Uses[id] != nil {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "copy", "clear", "append":
						if len(n.Args) > 0 {
							noteWrite(n.Args[0], n.Pos())
						}
					}
				}
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil || !declaredOutside(obj) {
				return true
			}
			v := obj.(*types.Var)
			if _, dup := readMutable[v]; !dup && !allowedCaptureType(v.Type(), nil) {
				readMutable[v] = n.Pos()
			}
		}
		return true
	})

	type finding struct {
		pos   token.Pos
		v     *types.Var
		write bool
	}
	var findings []finding
	for v, pos := range written {
		findings = append(findings, finding{pos, v, true})
	}
	for v, pos := range readMutable {
		if _, alsoWritten := written[v]; alsoWritten {
			continue // the write diagnostic subsumes the capture one
		}
		findings = append(findings, finding{pos, v, false})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		if t.waivers[f.v.Name()] {
			continue
		}
		if f.write {
			pass.Reportf(f.pos,
				"task closure passed to %s writes to captured driver-side variable %q; on a real cluster the closure is shipped by value and the write is lost — return results or use an rdd.Accumulator",
				t.callee, f.v.Name())
		} else {
			pass.Reportf(f.pos,
				"task closure passed to %s captures driver-side mutable state %q (%s); ship it with rdd.NewBroadcast, aggregate with an rdd.Accumulator, or waive an accounted read-only shipment with //distenc:capture-ok %s -- reason",
				t.callee, f.v.Name(), f.v.Type(), f.v.Name())
		}
	}
}

// baseIdent peels indexing, field selection, derefs and parens off an
// assignable expression, returning the root identifier: writes through any of
// these reach memory the driver can also see.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// allowedCaptureType reports whether a value of type t may be captured
// read-only: immutable shapes, Broadcast/Accumulator handles, and plain
// funcs. Everything reference-like needs a Broadcast or an explicit waiver.
func allowedCaptureType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return true // cycle through a pointer was already judged
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Signature:
		// Function values are assumed pure; Spark serializes closures
		// transitively, which is beyond this pass.
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !allowedCaptureType(u.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	case *types.Array:
		return allowedCaptureType(u.Elem(), seen)
	case *types.Pointer:
		return isEngineHandle(u.Elem())
	default:
		// Slices, maps, chans, interfaces: shared mutable reach.
		return false
	}
}

// isEngineHandle reports whether t is rdd.Broadcast[...] or
// rdd.Accumulator[...], the two values designed to cross the task boundary.
func isEngineHandle(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "rdd" {
		return false
	}
	return obj.Name() == "Broadcast" || obj.Name() == "Accumulator"
}
