package rddcapture_test

import (
	"testing"

	"distenc/internal/analysis/analysistest"
	"distenc/internal/analysis/rddcapture"
)

func TestRDDCapture(t *testing.T) {
	analysistest.Run(t, rddcapture.Analyzer, "a", "regress")
}
