// Regression fixture: the unwaived shape the analyzer first flagged in the
// real tree — MTTKRPStage and FlexiFact both hand rdd.MapPartitions a closure
// that reads a driver-side factor-matrix slice. The production sites carry
// //distenc:capture-ok waivers because the row shipment is charged through
// TaskCtx.CountShuffled (Lemma 3); without the waiver the capture must be
// reported.
package regress

import "distenc/internal/rdd"

func mttkrpLike(blocks *rdd.RDD[[]int32], factors [][]float64, rank int) *rdd.RDD[float64] {
	return rdd.MapPartitions(blocks, "mttkrp-map", func(tc *rdd.TaskCtx, p int, in [][]int32) ([]float64, error) {
		var norm2 float64
		for _, idx := range in {
			for _, i := range idx {
				row := factors[0][i*int32(rank):] // want `captures driver-side mutable state "factors"`
				norm2 += row[0]
			}
		}
		return []float64{norm2}, nil
	})
}
