// Fixture exercising rddcapture against the real engine API: every legal way
// to move state across the task boundary, plus the two illegal ones.
package a

import "distenc/internal/rdd"

type config struct {
	Rank   int
	Lambda float64
}

func driver(c *rdd.Cluster, nums *rdd.RDD[int]) error {
	total := 0
	scale := []float64{1, 2}
	cfg := config{Rank: 8}

	// Writing captured driver state is always flagged: on a real cluster the
	// closure ships by value and the write silently vanishes.
	doubled := rdd.Map(nums, "double", func(v int) int {
		total += v // want `writes to captured driver-side variable "total"`
		return v * 2
	})

	// Reading captured mutable state is flagged too...
	_ = rdd.Map(doubled, "scale", func(v int) int {
		return v * int(scale[0]) // want `captures driver-side mutable state "scale"`
	})

	// ...unless it ships through a Broadcast,
	bscale, err := rdd.NewBroadcast(c, "scale", scale)
	if err != nil {
		return err
	}
	ok1 := rdd.Map(nums, "bscale", func(v int) int {
		return v * int(bscale.Value()[0])
	})

	// or is immutable (scalars and plain structs of scalars ride along),
	ok2 := rdd.Map(ok1, "rank", func(v int) int { return v * cfg.Rank })

	// or aggregates through an Accumulator,
	acc := rdd.NewIntAccumulator()
	ok3 := rdd.Map(ok2, "count", func(v int) int {
		acc.Add(1)
		return v
	})

	// or is an audited read-only shipment waived by name.
	rows := []float64{3, 4}
	//distenc:capture-ok rows -- fixture: shipment accounted by the caller
	_ = rdd.Map(ok3, "waived", func(v int) int {
		return v + int(rows[0])
	})
	return ok3.Materialize()
}
