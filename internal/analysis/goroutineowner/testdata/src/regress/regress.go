// Package regress reproduces the PR 7 orphaned-worker wedge: the client
// spawned a fire-and-forget reaper for a killed worker process, nothing
// joined it, and a slow subprocess exit left the goroutine (and the worker)
// alive after Cluster.Close returned. The fixed shape hands the reaper's
// completion back through a drained channel.
package regress

import "os"

type workerProc struct {
	proc *os.Process
}

// killOrphaned is the buggy shape: the watcher outlives everything.
func (w *workerProc) killOrphaned() {
	w.proc.Signal(os.Interrupt)
	go func() { // want `unowned goroutine`
		w.proc.Wait()
	}()
}

// killJoined is the fixed shape: the spawner bounds the wait and the
// goroutine hands its exit back on a channel both paths drain.
func (w *workerProc) killJoined() {
	w.proc.Signal(os.Interrupt)
	done := make(chan struct{}, 1)
	//distenc:goroutine-owned-by channel-drain -- buffered handoff; spawner selects on done with a timeout and the buffer lets the reaper exit either way
	go func() {
		w.proc.Wait()
		done <- struct{}{}
	}()
	<-done
}
