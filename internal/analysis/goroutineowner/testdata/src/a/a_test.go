package a

// Test files are exempt: test helpers spawn bounded goroutines under the
// testing framework's own lifetime, and leakcheck catches escapes at run
// time. No want comments here — a naked go in a _test.go file is clean.
func spawnInTest(p *pool) {
	go p.drain()
}
