// Package a exercises the goroutineowner analyzer: unowned go statements,
// WaitGroup ownership before and inside the goroutine, directives, and
// malformed directives.
package a

import "sync"

type pool struct {
	wg   sync.WaitGroup
	work chan func()
}

// naked is the fire-and-forget shape the analyzer exists to kill.
func (p *pool) naked() {
	go func() { // want `unowned goroutine`
		for f := range p.work {
			f()
		}
	}()
}

// addBefore is the engine's dominant pattern: count registered before spawn.
func (p *pool) addBefore() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for f := range p.work {
			f()
		}
	}()
}

// doneInside: the Add lives in the caller that owns the count; the literal
// proves membership by deferring Done.
func (p *pool) doneInside() {
	go func() {
		defer p.wg.Done()
		(<-p.work)()
	}()
}

// directive: an explicit ownership record with mechanism and reason.
func (p *pool) directive(done chan struct{}) {
	//distenc:goroutine-owned-by channel-drain -- exits when done closes; Close always closes done
	go func() {
		<-done
	}()
}

// missingMechanism: the directive without its payload is just noise.
func (p *pool) missingMechanism() {
	//distenc:goroutine-owned-by
	go func() { // want `goroutine-owned-by needs a mechanism and a reason`
		(<-p.work)()
	}()
}

// missingReason: a mechanism alone records what, not why.
func (p *pool) missingReason() {
	//distenc:goroutine-owned-by channel-drain
	go func() { // want `goroutine-owned-by needs a mechanism and a reason`
		(<-p.work)()
	}()
}

// namedFunc: go on a declared function is checked the same way.
func (p *pool) namedFunc() {
	go p.drain() // want `unowned goroutine`
}

func (p *pool) drain() {
	for f := range p.work {
		f()
	}
}

// nestedScope: an Add in the outer function does not own a go statement
// inside a separate literal — that literal may itself be a goroutine body.
func (p *pool) nestedScope() {
	p.wg.Add(1)
	cb := func() {
		go p.drain() // want `unowned goroutine`
	}
	cb()
	p.wg.Done()
}
