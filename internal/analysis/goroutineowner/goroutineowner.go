// Package goroutineowner requires every `go` statement in non-test code to
// be tied to a registered lifetime, making the fire-and-forget goroutine —
// the PR 7 orphaned-worker class, where a spawned watcher outlived the
// cluster that started it — structurally impossible.
//
// A `go` statement is owned when any of these holds:
//
//   - a `(*sync.WaitGroup).Add` call appears earlier in the same enclosing
//     function, the engine's dominant pattern (`wg.Add(1); go func() {
//     defer wg.Done(); … }()`), joined by Wait in Quiesce/Shutdown;
//   - the spawned function literal itself contains `defer wg.Done()` for
//     some WaitGroup (the Add happened in a caller that owns the count);
//   - the statement carries `//distenc:goroutine-owned-by <mechanism> --
//     reason`, naming the lifetime that joins or bounds the goroutine
//     (e.g. channel-drain, conn-close, process-lifetime).
//
// A directive missing the mechanism argument or the reason is itself a
// diagnostic: the annotation is the audit trail for why the goroutine
// cannot leak, and an empty one records nothing.
package goroutineowner

import (
	"go/ast"
	"go/types"
	"strings"

	"distenc/internal/analysis/directives"
	"distenc/internal/analysis/framework"
)

// Analyzer is the goroutineowner pass.
var Analyzer = &framework.Analyzer{
	Name: "goroutineowner",
	Doc:  "require every go statement in non-test code to have a registered lifetime (WaitGroup, drain, or //distenc:goroutine-owned-by)",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	dirs := directives.Scan(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, dirs, fd.Body)
		}
	}
	return nil, nil
}

// checkFunc scans one function body for go statements. Nested function
// literals are separate scopes: an Add in the outer function does not own a
// go statement inside a literal that may itself run as a goroutine.
func checkFunc(pass *framework.Pass, dirs *directives.Map, body *ast.BlockStmt) {
	var sites []*ast.GoStmt
	var adds []ast.Node // WaitGroup.Add calls in this scope, in order
	var lits []*ast.FuncLit

	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, v)
			return false // analyzed as its own scope below
		case *ast.GoStmt:
			sites = append(sites, v)
			// The spawned literal (and any literal arguments) still get
			// their own scope scans.
			if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
			for _, a := range v.Call.Args {
				ast.Inspect(a, func(an ast.Node) bool {
					if l, ok := an.(*ast.FuncLit); ok {
						lits = append(lits, l)
						return false
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			if isWaitGroupCall(pass, v, "Add") {
				adds = append(adds, v)
			}
		}
		return true
	})
	for _, g := range sites {
		checkGoStmt(pass, dirs, body, g, adds)
	}
	for _, lit := range lits {
		checkFunc(pass, dirs, lit.Body)
	}
}

func checkGoStmt(pass *framework.Pass, dirs *directives.Map, scope *ast.BlockStmt, g *ast.GoStmt, adds []ast.Node) {
	// Ownership (1): wg.Add earlier in the same function.
	for _, a := range adds {
		if a.Pos() < g.Pos() {
			return
		}
	}
	// Ownership (2): the spawned literal defers a WaitGroup.Done — the Add
	// is owned by a caller.
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok && defersDone(pass, lit.Body) {
		return
	}
	// Ownership (3): an explicit directive on the statement or an enclosing
	// statement, with mechanism and reason.
	if d, found := ownerDirective(pass, dirs, scope, g); found {
		if len(d.Args) == 0 || d.Reason == "" {
			pass.Reportf(g.Pos(),
				"//distenc:goroutine-owned-by needs a mechanism and a reason (`//distenc:goroutine-owned-by <mechanism> -- why it cannot leak`)")
		}
		return
	}
	pass.Reportf(g.Pos(),
		"unowned goroutine: tie it to a lifetime with wg.Add before the go statement, a deferred wg.Done in the goroutine, or //distenc:goroutine-owned-by <mechanism> -- reason")
}

// ownerDirective finds a goroutine-owned-by directive on g or any statement
// enclosing it within scope.
func ownerDirective(pass *framework.Pass, dirs *directives.Map, scope *ast.BlockStmt, g *ast.GoStmt) (directives.Directive, bool) {
	var found directives.Directive
	ok := false
	ast.Inspect(scope, func(n ast.Node) bool {
		st, isStmt := n.(ast.Stmt)
		if isStmt && st.Pos() <= g.Pos() && g.End() <= st.End() {
			for _, d := range dirs.ForNode(st) {
				if d.Name == "goroutine-owned-by" {
					found, ok = d, true
				}
			}
		}
		return true
	})
	return found, ok
}

// defersDone reports whether body contains `defer wg.Done()` for a
// sync.WaitGroup at its top level (not inside a nested literal).
func defersDone(pass *framework.Pass, body *ast.BlockStmt) bool {
	done := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok && isWaitGroupCall(pass, d.Call, "Done") {
			done = true
		}
		return !done
	})
	return done
}

func isWaitGroupCall(pass *framework.Pass, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}
