package goroutineowner_test

import (
	"testing"

	"distenc/internal/analysis/analysistest"
	"distenc/internal/analysis/goroutineowner"
)

func TestGoroutineOwner(t *testing.T) {
	analysistest.Run(t, goroutineowner.Analyzer, "a", "regress")
}
