// Fixture for bytecount rule 2, stubbing the engine package (the analyzer
// keys on the package name "rdd"): functions that serialize or spill shuffle
// data must attribute the bytes in the same innermost function.
package rdd

import "os"

type TaskCtx struct{}

func (tc *TaskCtx) CountShuffled(n int64)   {}
func (tc *TaskCtx) countSpillWrite(n int64) {}
func (tc *TaskCtx) countSpillRead(n int64)  {}

func encodeBlock(records []int) ([]byte, error) { return nil, nil }
func decodeBlock(data []byte) ([]int, error)    { return nil, nil }

// A spill path that counts what it writes is fine.
func spill(tc *TaskCtx, path string, records []int) error {
	data, err := encodeBlock(records)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return err
	}
	tc.countSpillWrite(int64(len(data)))
	return nil
}

// One that forgets attribution is not.
func spillLeaky(path string, records []int) error {
	data, err := encodeBlock(records) // want `encodeBlock moves shuffle/spill bytes`
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

// The directive defers accounting to the caller.
//
//distenc:accounted -- fixture: caller counts the fetched bytes
func fetchRaw(path string) ([]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeBlock(data)
}

// Nested literals are scanned independently: the outer function's counter
// does not excuse the inner closure.
func nested(tc *TaskCtx, path string) func() error {
	tc.CountShuffled(1)
	return func() error {
		_, err := os.ReadFile(path) // want `ReadFile moves shuffle/spill bytes`
		return err
	}
}
