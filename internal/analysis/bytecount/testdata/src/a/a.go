// Fixture for bytecount rule 1 (driver-side code must not poke the Metrics
// byte counters). sgdStage is a regression fixture: it mirrors
// internal/baselines/flexifact.go's SGD stage before this suite landed, which
// bumped the cluster-wide counter directly and left the per-stage transfer
// profile short by exactly the shipped bytes.
package a

import "distenc/internal/rdd"

func sgdStage(tc *rdd.TaskCtx, shipped int64) {
	tc.Cluster().Metrics().BytesShuffled.Add(2 * shipped) // want `direct Add on rdd.Metrics.BytesShuffled`
	tc.Cluster().Metrics().DiskBytesWrite.Store(0)        // want `direct Store on rdd.Metrics.DiskBytesWrite`
	tc.CountShuffled(2 * shipped)                         // attribution through TaskCtx is the fix
	_ = tc.Cluster().Metrics().BytesShuffled.Load()       // reads are fine

	//distenc:accounted -- fixture: engine-internal test hook
	tc.Cluster().Metrics().BytesBroadcast.Add(1)
}
