package bytecount_test

import (
	"testing"

	"distenc/internal/analysis/analysistest"
	"distenc/internal/analysis/bytecount"
)

func TestByteCount(t *testing.T) {
	analysistest.Run(t, bytecount.Analyzer, "a", "rdd")
}
