// Package bytecount keeps the engine's Lemma 3 transfer accounting honest.
// Every byte that crosses a machine or disk boundary must be attributed to
// the task that moved it, through TaskCtx (CountShuffled / countSpillWrite /
// countSpillRead); the cluster-wide Metrics totals are derived from those
// task-level counts. Two rules:
//
//  1. Outside the engine, code may read the Metrics byte counters but never
//     mutate them directly (Add/Store/Swap/CompareAndSwap): a direct bump
//     inflates the cluster total without crediting any stage or task, so the
//     per-stage transfer profile the experiments report no longer sums to the
//     cluster totals.
//  2. Inside the engine (any package named "rdd", non-test files), a function
//     that serializes or spills shuffle data — calling encodeBlock /
//     decodeBlock / os.WriteFile / os.ReadFile — must attribute the bytes in
//     the same innermost function via a TaskCtx counter, or carry an explicit
//     `//distenc:accounted -- reason` directive naming where the accounting
//     happens instead.
package bytecount

import (
	"go/ast"
	"go/token"
	"go/types"

	"distenc/internal/analysis/directives"
	"distenc/internal/analysis/framework"
)

// Analyzer is the bytecount pass.
var Analyzer = &framework.Analyzer{
	Name: "bytecount",
	Doc:  "shuffle/spill byte traffic must be attributed through TaskCtx counters, never by poking Metrics directly",
	Run:  run,
}

// byteCounters are the Metrics fields that may only be mutated by the engine.
var byteCounters = map[string]bool{
	"BytesShuffled":  true,
	"BytesBroadcast": true,
	"DiskBytesRead":  true,
	"DiskBytesWrite": true,
}

// mutators are the atomic methods that change a counter's value.
var mutators = map[string]bool{
	"Add":            true,
	"Store":          true,
	"Swap":           true,
	"CompareAndSwap": true,
}

// ioCallees are the serialization/spill entry points rule 2 watches for, and
// counterCallees the attribution calls that satisfy it.
var ioCallees = map[string]bool{
	"encodeBlock": true,
	"decodeBlock": true,
	"WriteFile":   true, // os.WriteFile
	"ReadFile":    true, // os.ReadFile
}

var counterCallees = map[string]bool{
	"CountShuffled":   true,
	"countSpillWrite": true,
	"countSpillRead":  true,
}

func run(pass *framework.Pass) (any, error) {
	dirs := directives.Scan(pass.Fset, pass.Files)
	inEngine := pass.Pkg.Name() == "rdd"
	for _, file := range pass.Files {
		if !inEngine {
			checkMetricsWrites(pass, dirs, file)
			continue
		}
		if isTestFile(pass, file) {
			continue // unit tests exercise codecs without moving real bytes
		}
		checkAttribution(pass, dirs, file)
	}
	return nil, nil
}

func isTestFile(pass *framework.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Pos()).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// checkMetricsWrites enforces rule 1: no Metrics byte-counter mutation
// outside the engine.
func checkMetricsWrites(pass *framework.Pass, dirs *directives.Map, file *ast.File) {
	info := pass.TypesInfo
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !mutators[method.Sel.Name] {
			return true
		}
		field, ok := ast.Unparen(method.X).(*ast.SelectorExpr)
		if !ok || !byteCounters[field.Sel.Name] {
			return true
		}
		obj, ok := info.Uses[field.Sel].(*types.Var)
		if !ok || !obj.IsField() || obj.Pkg() == nil || obj.Pkg().Name() != "rdd" {
			return true
		}
		if waived(dirs, stack) {
			return true
		}
		pass.Reportf(call.Pos(),
			"direct %s on rdd.Metrics.%s bypasses per-task attribution; route the bytes through TaskCtx.CountShuffled (or the engine's spill counters) so stage records still sum to cluster totals",
			method.Sel.Name, field.Sel.Name)
		return true
	})
}

// waived reports whether any enclosing statement carries an accounted
// directive.
func waived(dirs *directives.Map, stack []ast.Node) bool {
	for _, anc := range stack {
		if stmt, ok := anc.(ast.Stmt); ok && dirs.Has(stmt, "accounted") {
			return true
		}
	}
	return false
}

// fnScan is what one innermost function body contains.
type fnScan struct {
	firstIO    token.Pos // first unattributed-candidate IO call
	ioName     string
	hasIO      bool
	hasCounter bool
}

// checkAttribution enforces rule 2 inside the engine: walk every function
// (declaration or literal), pairing IO calls with counter calls within the
// same innermost body.
func checkAttribution(pass *framework.Pass, dirs *directives.Map, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil && !dirs.Has(n, "accounted") {
				scanBody(pass, dirs, n.Body)
			}
			return true // literals inside are visited via their own case
		case *ast.FuncLit:
			scanBody(pass, dirs, n.Body)
			return true
		}
		return true
	})
}

// scanBody examines one function body, ignoring nested literals (each is
// scanned on its own) and statements explicitly waived with an accounted
// directive.
func scanBody(pass *framework.Pass, dirs *directives.Map, body *ast.BlockStmt) {
	var s fnScan
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case ast.Stmt:
			if dirs.Has(n, "accounted") {
				return false
			}
		case *ast.CallExpr:
			name := calleeName(n)
			switch {
			case counterCallees[name]:
				s.hasCounter = true
			case ioCallees[name]:
				if !s.hasIO {
					s.firstIO, s.ioName, s.hasIO = n.Pos(), name, true
				}
			}
		}
		return true
	})
	if s.hasIO && !s.hasCounter {
		pass.Reportf(s.firstIO,
			"%s moves shuffle/spill bytes but this function never attributes them; call tc.CountShuffled / tc.countSpillWrite / tc.countSpillRead here, or mark the function //distenc:accounted -- reason if a caller counts these bytes",
			s.ioName)
	}
}

// calleeName returns the bare called-function name for idents, selectors, and
// generic instantiations (encodeBlock, decodeBlock[R], os.WriteFile, ...).
func calleeName(call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
