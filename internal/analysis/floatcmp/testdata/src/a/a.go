// Fixture exercising floatcmp: the flagged exact comparisons and every
// allowed form. roundTripEqual is a regression fixture mirroring the pre-fix
// binary round-trip test (binaryio_test.go), which compared decoded values
// with != instead of comparing bit patterns.
package a

import "math"

const eps = 1e-9

func compare(a, b float64, xs []float64) int {
	if a == b { // want `exact == between floats`
		return 0
	}
	if a != b { // want `exact != between floats`
		return 1
	}
	if a == 0 { // comparing against a constant is exact by construction
		return 2
	}
	if a != a { // the NaN idiom
		return 3
	}
	if math.Float64bits(a) == math.Float64bits(b) { // integer comparison
		return 4
	}
	if math.Abs(a-b) <= eps { // the tolerance form the solver uses
		return 5
	}
	//distenc:floatcmp-ok -- fixture: reviewed exact comparison
	if xs[0] == xs[1] {
		return 6
	}
	return 7
}

func roundTripEqual(before, after []float64) bool {
	for i := range before {
		if after[i] != before[i] { // want `exact != between floats`
			return false
		}
	}
	return true
}
