package floatcmp_test

import (
	"testing"

	"distenc/internal/analysis/analysistest"
	"distenc/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "a")
}
