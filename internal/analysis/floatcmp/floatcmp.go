// Package floatcmp flags == and != between floating-point values. In an
// iterative solver, exact float equality is almost always a latent bug: ALS
// residuals, RMSE deltas, and convergence checks (Eq. 17's termination test)
// must compare against tolerances, and value round-trips through the binary
// codec must compare bit patterns explicitly.
//
// Allowed without annotation:
//   - comparison against a compile-time constant (sentinel checks such as
//     `lambda == 0` or `val != 0` are exact by construction);
//   - the NaN idiom `x != x`;
//   - intentional bit-exact checks written as math.Float64bits(a) ==
//     math.Float64bits(b), which compare integers and never reach this pass.
//
// Anything else needs a `//distenc:floatcmp-ok -- reason` directive on the
// statement, keeping every exact comparison a reviewed decision.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"distenc/internal/analysis/directives"
	"distenc/internal/analysis/framework"
)

// Analyzer is the floatcmp pass.
var Analyzer = &framework.Analyzer{
	Name: "floatcmp",
	Doc:  "no ==/!= on floats outside tolerance helpers, constants, and the NaN idiom",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	dirs := directives.Scan(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, cmp.X) && !isFloat(pass, cmp.Y) {
				return true
			}
			if isConstant(pass, cmp.X) || isConstant(pass, cmp.Y) {
				return true
			}
			if cmp.Op == token.NEQ && sameExpr(cmp.X, cmp.Y) {
				return true // the portable NaN test
			}
			for _, anc := range stack {
				if stmt, ok := anc.(ast.Stmt); ok && dirs.Has(stmt, "floatcmp-ok") {
					return true
				}
				if fd, ok := anc.(*ast.FuncDecl); ok && dirs.Has(fd, "floatcmp-ok") {
					return true
				}
			}
			pass.Reportf(cmp.OpPos,
				"exact %s between floats; compare |a-b| against a tolerance, use math.Float64bits for intentional bit equality, or waive with //distenc:floatcmp-ok -- reason",
				cmp.Op)
			return true
		})
	}
	return nil, nil
}

// isFloat reports whether e has (or defaults to) a floating or complex type.
func isFloat(pass *framework.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isConstant reports whether e is a compile-time constant expression.
func isConstant(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// sameExpr conservatively matches the `x != x` NaN idiom: both sides must be
// the same plain identifier or selector chain.
func sameExpr(a, b ast.Expr) bool {
	switch x := ast.Unparen(a).(type) {
	case *ast.Ident:
		y, ok := ast.Unparen(b).(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := ast.Unparen(b).(*ast.IndexExpr)
		return ok && sameExpr(x.X, y.X) && sameExpr(x.Index, y.Index)
	}
	return false
}
