// Package analysis registers the repo's engine-invariant lint suite: static
// passes that pin down properties of the DisTenC port that the type system
// and the in-process rdd engine cannot enforce at runtime.
//
//	rddcapture — task closures must not share mutable driver state
//	             (the Spark serialization boundary)
//	hotalloc   — //distenc:hotpath functions stay allocation-free in loops
//	             (the fused MTTKRP flat-accumulator layout, Algorithm 3)
//	bytecount  — shuffle/spill bytes flow through TaskCtx attribution
//	             (Lemma 3 transfer accounting)
//	floatcmp   — no exact float equality outside audited sites
//	             (Eq. 17 tolerance-based convergence)
//	accadd     — plain Accumulator.Add in a fallible task closure must be
//	             the final success path (the exactly-once retry contract)
//	lockorder  — no blocking operation while a mutex is held, no
//	             lock-acquisition cycles (the PR 5 blockFor convoy class)
//	goroutineowner — every go statement ties to a registered lifetime:
//	             WaitGroup, drain, or //distenc:goroutine-owned-by
//	             (the PR 7 orphaned-worker class; the Quiesce drain contract)
//	atomicfield — a field accessed via sync/atomic anywhere is never read or
//	             written plainly elsewhere (exactly-once metrics counters)
//
// Run it as `go run ./cmd/distenc-lint ./...` or via
// `go vet -vettool=$(which distenc-lint) ./...`; see DESIGN.md's "Engine
// invariants & static enforcement" section for the full policy.
package analysis

import (
	"distenc/internal/analysis/accadd"
	"distenc/internal/analysis/atomicfield"
	"distenc/internal/analysis/bytecount"
	"distenc/internal/analysis/floatcmp"
	"distenc/internal/analysis/framework"
	"distenc/internal/analysis/goroutineowner"
	"distenc/internal/analysis/hotalloc"
	"distenc/internal/analysis/lockorder"
	"distenc/internal/analysis/rddcapture"
)

// All returns the full suite in deterministic order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		rddcapture.Analyzer,
		hotalloc.Analyzer,
		bytecount.Analyzer,
		floatcmp.Analyzer,
		accadd.Analyzer,
		lockorder.Analyzer,
		goroutineowner.Analyzer,
		atomicfield.Analyzer,
	}
}
