// Package analysis registers the repo's engine-invariant lint suite: static
// passes that pin down properties of the DisTenC port that the type system
// and the in-process rdd engine cannot enforce at runtime.
//
//	rddcapture — task closures must not share mutable driver state
//	             (the Spark serialization boundary)
//	hotalloc   — //distenc:hotpath functions stay allocation-free in loops
//	             (the fused MTTKRP flat-accumulator layout, Algorithm 3)
//	bytecount  — shuffle/spill bytes flow through TaskCtx attribution
//	             (Lemma 3 transfer accounting)
//	floatcmp   — no exact float equality outside audited sites
//	             (Eq. 17 tolerance-based convergence)
//	accadd     — plain Accumulator.Add in a fallible task closure must be
//	             the final success path (the exactly-once retry contract)
//
// Run it as `go run ./cmd/distenc-lint ./...` or via
// `go vet -vettool=$(which distenc-lint) ./...`; see DESIGN.md's "Engine
// invariants & static enforcement" section for the full policy.
package analysis

import (
	"distenc/internal/analysis/accadd"
	"distenc/internal/analysis/bytecount"
	"distenc/internal/analysis/floatcmp"
	"distenc/internal/analysis/framework"
	"distenc/internal/analysis/hotalloc"
	"distenc/internal/analysis/rddcapture"
)

// All returns the full suite in deterministic order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		rddcapture.Analyzer,
		hotalloc.Analyzer,
		bytecount.Analyzer,
		floatcmp.Analyzer,
		accadd.Analyzer,
	}
}
