package graph

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"distenc/internal/mat"
)

func TestTriDiagonalShape(t *testing.T) {
	s := TriDiagonal(5)
	if s.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", s.NumEdges())
	}
	d := s.Degrees()
	if d[0] != 1 || d[2] != 2 || d[4] != 1 {
		t.Fatalf("degrees = %v", d)
	}
}

func TestAddEdgePanics(t *testing.T) {
	s := NewSimilarity(3)
	for _, c := range []struct{ i, j int }{{1, 1}, {0, 5}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddEdge(%d,%d) should panic", c.i, c.j)
				}
			}()
			s.AddEdge(c.i, c.j, 1)
		}()
	}
}

func TestLaplacianRowSumsZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := BlockCommunity(20, 4, 0.8, 0.05, rng)
	l := NewLaplacian(s)
	d := l.Dense()
	ones := make([]float64, 20)
	for i := range ones {
		ones[i] = 1
	}
	lx := mat.MulVec(d, ones)
	for i, v := range lx {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("L·1 row %d = %v, want 0", i, v)
		}
	}
}

func TestLaplacianApplyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	s := BlockCommunity(15, 3, 0.7, 0.1, rng)
	l := NewLaplacian(s)
	d := l.Dense()
	x := make([]float64, 15)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, 15)
	l.Apply(got, x)
	want := mat.MulVec(d, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("Apply[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: the Laplacian is PSD — xᵀLx ≥ 0.
func TestLaplacianPSDProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+3))
		n := 3 + int(seed%20)
		s := BlockCommunity(n, 1+int(seed%4), 0.5, 0.1, rng)
		l := NewLaplacian(s)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lx := make([]float64, n)
		l.Apply(lx, x)
		return mat.Dot(x, lx) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceQuadraticMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	s := TriDiagonal(10)
	l := NewLaplacian(s)
	b := mat.NewDense(10, 3)
	for i := 0; i < 10; i++ {
		for j := 0; j < 3; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	got := l.TraceQuadratic(b)
	// tr(BᵀLB) densely.
	lb := mat.Mul(l.Dense(), b)
	btlb := mat.MulATB(b, lb)
	var want float64
	for i := 0; i < 3; i++ {
		want += btlb.At(i, i)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TraceQuadratic = %v, want %v", got, want)
	}
}

func TestExactSpectralInverseApply(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	s := BlockCommunity(12, 3, 0.7, 0.1, rng)
	l := NewLaplacian(s)
	sp, err := ExactSpectral(l)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Full() || sp.Rank() != 12 || sp.Dim() != 12 {
		t.Fatalf("spectral meta wrong: %+v", sp)
	}
	x := mat.NewDense(12, 2)
	for i := 0; i < 12; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
	}
	const alpha, eta = 0.3, 0.7
	got := sp.InverseApply(alpha, eta, x)
	want, err := DirectInverseApply(l, alpha, eta, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(got, want); d > 1e-8 {
		t.Fatalf("InverseApply differs from direct solve by %v", d)
	}
	// Left-to-right ordering must agree numerically (it is only slower).
	ltr := sp.InverseApplyLeftToRight(alpha, eta, x)
	if d := mat.MaxAbsDiff(got, ltr); d > 1e-8 {
		t.Fatalf("orderings disagree by %v", d)
	}
}

func TestTruncatedSpectralApproximates(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	// Strong 3-community structure: spectrum has 3 small eigenvalues, so a
	// K=6 truncation captures the smooth part well.
	s := BlockCommunity(30, 3, 0.9, 0.02, rng)
	l := NewLaplacian(s)
	exact, err := ExactSpectral(l)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TruncatedSpectral(l, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Full() || tr.Rank() != 6 {
		t.Fatalf("truncated meta wrong: rank=%d full=%v", tr.Rank(), tr.Full())
	}
	for j := 0; j < 3; j++ {
		if math.Abs(tr.Values[j]-exact.Values[j]) > 1e-5 {
			t.Fatalf("eigenvalue %d: %v vs %v", j, tr.Values[j], exact.Values[j])
		}
	}
	// Woodbury form: on the span of the kept eigenvectors the truncated
	// inverse matches the exact one. Use the second eigenvector as input.
	x := mat.NewDense(30, 1)
	for i := 0; i < 30; i++ {
		x.Set(i, 0, exact.Vectors.At(i, 1))
	}
	const alpha, eta = 0.5, 1.0
	got := tr.InverseApply(alpha, eta, x)
	want := exact.InverseApply(alpha, eta, x)
	if d := mat.MaxAbsDiff(got, want); d > 1e-5 {
		t.Fatalf("truncated inverse on kept eigenvector off by %v", d)
	}
	// Truncated left-to-right ordering agrees with truncated right-to-left.
	y := mat.NewDense(30, 2)
	for i := 0; i < 30; i++ {
		y.Set(i, 0, rng.NormFloat64())
		y.Set(i, 1, rng.NormFloat64())
	}
	if d := mat.MaxAbsDiff(tr.InverseApply(alpha, eta, y), tr.InverseApplyLeftToRight(alpha, eta, y)); d > 1e-8 {
		t.Fatalf("truncated orderings disagree by %v", d)
	}
}

func TestTruncatedSpectralErrors(t *testing.T) {
	l := NewLaplacian(TriDiagonal(5))
	rng := rand.New(rand.NewPCG(6, 6))
	if _, err := TruncatedSpectral(l, 0, rng); err == nil {
		t.Fatal("expected error for k=0")
	}
	// k >= n falls back to exact.
	sp, err := TruncatedSpectral(l, 10, rng)
	if err != nil || !sp.Full() {
		t.Fatalf("k>=n should be exact: %v %v", sp, err)
	}
}

func TestInverseApplyDimCheck(t *testing.T) {
	l := NewLaplacian(TriDiagonal(4))
	sp, _ := ExactSpectral(l)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sp.InverseApply(1, 1, mat.NewDense(5, 1))
}

func TestBlockOf(t *testing.T) {
	if BlockOf(0, 10, 2) != 0 || BlockOf(9, 10, 2) != 1 || BlockOf(5, 10, 2) != 1 {
		t.Fatal("BlockOf boundaries wrong")
	}
}

func TestIdentitySimilarityLaplacianIsZero(t *testing.T) {
	l := NewLaplacian(NewSimilarity(4))
	x := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	l.Apply(dst, x)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("empty similarity must give zero Laplacian")
		}
	}
}

func TestKNNLinksNearestNeighbors(t *testing.T) {
	// Two well-separated clusters on a line: kNN must stay within clusters.
	features := [][]float64{{0}, {0.1}, {0.2}, {10}, {10.1}, {10.2}}
	s := KNN(features, 2)
	for i, edges := range s.Adj {
		for _, e := range edges {
			sameCluster := (i < 3) == (int(e.To) < 3)
			if !sameCluster {
				t.Fatalf("kNN linked across clusters: %d-%d", i, e.To)
			}
		}
	}
	if s.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// Degenerate inputs.
	if KNN(nil, 3).NumEdges() != 0 {
		t.Fatal("empty features")
	}
	if KNN(features, 0).NumEdges() != 0 {
		t.Fatal("k=0")
	}
	// k larger than n-1 links everything without panicking.
	full := KNN(features[:3], 10)
	if full.NumEdges() != 3 {
		t.Fatalf("k>n edges = %d, want 3", full.NumEdges())
	}
}
