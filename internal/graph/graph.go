// Package graph models the auxiliary similarity information of the paper:
// per-mode similarity matrices S_n, their graph Laplacians L_n = D_n − S_n,
// and the pre-computed spectral machinery (§III-B) that turns the expensive
// per-iteration inverse (ηI + αL)⁻¹ into a diagonal rescale in the
// eigenbasis.
package graph

import (
	"fmt"
	"math/rand/v2"

	"distenc/internal/mat"
)

// Edge is one weighted neighbor in a similarity graph.
type Edge struct {
	To     int32
	Weight float64
}

// Similarity is a sparse symmetric similarity matrix S over n objects,
// stored as an adjacency list. Constructors guarantee symmetry.
type Similarity struct {
	N   int
	Adj [][]Edge
}

// NewSimilarity returns an empty (identity-information) similarity over n
// objects: no edges, Laplacian zero — the setting the paper uses for its
// scalability experiments ("similarity matrices are identity ... for all
// modes", §IV-B, meaning no auxiliary coupling).
func NewSimilarity(n int) *Similarity {
	return &Similarity{N: n, Adj: make([][]Edge, n)}
}

// AddEdge inserts the symmetric pair (i,j,w). Self-loops are rejected.
func (s *Similarity) AddEdge(i, j int, w float64) {
	if i == j {
		panic("graph: self-loop in similarity")
	}
	if i < 0 || j < 0 || i >= s.N || j >= s.N {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", i, j, s.N))
	}
	s.Adj[i] = append(s.Adj[i], Edge{To: int32(j), Weight: w})
	s.Adj[j] = append(s.Adj[j], Edge{To: int32(i), Weight: w})
}

// NumEdges returns the number of undirected edges.
func (s *Similarity) NumEdges() int {
	total := 0
	for _, es := range s.Adj {
		total += len(es)
	}
	return total / 2
}

// Degrees returns the weighted degree vector d_i = Σ_j S_ij.
func (s *Similarity) Degrees() []float64 {
	d := make([]float64, s.N)
	for i, es := range s.Adj {
		for _, e := range es {
			d[i] += e.Weight
		}
	}
	return d
}

// TriDiagonal builds the paper's Eq. (17) similarity: S_{i,i±1} = 1, used
// with the linear-factor synthetic data whose consecutive rows are similar.
func TriDiagonal(n int) *Similarity {
	s := NewSimilarity(n)
	for i := 0; i+1 < n; i++ {
		s.AddEdge(i, i+1, 1)
	}
	return s
}

// KNN links every object to its k nearest neighbors (by Euclidean distance
// between the given feature rows), with weight 1 — the generic way to derive
// a similarity matrix from side features (e.g. the paper's title-based movie
// similarity). O(n²·d); intended for mode sizes up to a few thousand.
func KNN(features [][]float64, k int) *Similarity {
	n := len(features)
	s := NewSimilarity(n)
	if n == 0 || k <= 0 {
		return s
	}
	type cand struct {
		j    int
		dist float64
	}
	added := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		cands := make([]cand, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			var d2 float64
			for f := range features[i] {
				d := features[i][f] - features[j][f]
				d2 += d * d
			}
			cands = append(cands, cand{j, d2})
		}
		// Partial selection of the k smallest.
		kk := k
		if kk > len(cands) {
			kk = len(cands)
		}
		for sel := 0; sel < kk; sel++ {
			best := sel
			for c := sel + 1; c < len(cands); c++ {
				if cands[c].dist < cands[best].dist {
					best = c
				}
			}
			cands[sel], cands[best] = cands[best], cands[sel]
			j := cands[sel].j
			key := [2]int{min(i, j), max(i, j)}
			if !added[key] {
				added[key] = true
				s.AddEdge(i, j, 1)
			}
		}
	}
	return s
}

// BlockCommunity plants nBlocks equal communities: objects in the same block
// are connected with probability inP, across blocks with probability outP.
// It is the generator behind the affiliation/location similarities of the
// paper's real datasets (same affiliation ⇒ similar).
func BlockCommunity(n, nBlocks int, inP, outP float64, rng *rand.Rand) *Similarity {
	s := NewSimilarity(n)
	if nBlocks < 1 {
		nBlocks = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := blockOf(i, n, nBlocks) == blockOf(j, n, nBlocks)
			p := outP
			if same {
				p = inP
			}
			if rng.Float64() < p {
				s.AddEdge(i, j, 1)
			}
		}
	}
	return s
}

func blockOf(i, n, nBlocks int) int {
	b := i * nBlocks / n
	if b >= nBlocks {
		b = nBlocks - 1
	}
	return b
}

// BlockOf exposes the planted community id used by BlockCommunity.
func BlockOf(i, n, nBlocks int) int { return blockOf(i, n, nBlocks) }

// Laplacian is L = D − S as a sparse symmetric operator. It implements
// mat.MatVec, so applying it costs O(nnz(S)).
type Laplacian struct {
	sim *Similarity
	deg []float64
}

// NewLaplacian builds the graph Laplacian of s.
func NewLaplacian(s *Similarity) *Laplacian {
	return &Laplacian{sim: s, deg: s.Degrees()}
}

// Dim implements mat.MatVec.
func (l *Laplacian) Dim() int { return l.sim.N }

// Apply sets dst = L·x.
func (l *Laplacian) Apply(dst, x []float64) {
	for i := 0; i < l.sim.N; i++ {
		v := l.deg[i] * x[i]
		for _, e := range l.sim.Adj[i] {
			v -= e.Weight * x[int(e.To)]
		}
		dst[i] = v
	}
}

// Dense materializes L (small modes / tests only).
func (l *Laplacian) Dense() *mat.Dense {
	n := l.sim.N
	out := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		out.Set(i, i, l.deg[i])
		for _, e := range l.sim.Adj[i] {
			out.Add(i, int(e.To), -e.Weight)
		}
	}
	return out
}

// TraceQuadratic returns tr(BᵀLB) = ½ Σ_ij S_ij ‖B_i − B_j‖², the smoothness
// penalty of Eq. (4), computed in O(nnz(S)·R) without materializing L.
func (l *Laplacian) TraceQuadratic(b *mat.Dense) float64 {
	var s float64
	for i := 0; i < l.sim.N; i++ {
		bi := b.Row(i)
		for _, e := range l.sim.Adj[i] {
			bj := b.Row(int(e.To))
			var d2 float64
			for r := range bi {
				d := bi[r] - bj[r]
				d2 += d * d
			}
			s += e.Weight * d2
		}
	}
	return s / 2 // each undirected edge visited twice
}
