package graph

import (
	"fmt"
	"math/rand/v2"

	"distenc/internal/mat"
)

// Spectral is the pre-computed (once, before the ADMM loop) truncated
// eigendecomposition L ≈ V Λ Vᵀ of a mode's Laplacian (§III-B). With it the
// per-iteration update
//
//	B ← (ηI + αL)⁻¹ (ηA − Y)                          (Algorithm 1 line 4)
//
// becomes Eq. (7)'s right-to-left product
//
//	B ← V (η + αΛ)⁻¹ (Vᵀ (ηA − Y)),
//
// a diagonal rescale in the eigenbasis costing O(I·K·R) instead of an O(I³)
// factorization every time η changes.
type Spectral struct {
	Values  []float64 // ascending eigenvalues λ_1..λ_K
	Vectors *mat.Dense
	n       int
	full    bool // K == n: the decomposition is exact
}

// ExactSpectral eigendecomposes the Laplacian densely (Jacobi); use for small
// modes and as the oracle in tests.
func ExactSpectral(l *Laplacian) (*Spectral, error) {
	e, err := mat.SymEigen(l.Dense())
	if err != nil {
		return nil, err
	}
	return &Spectral{Values: e.Values, Vectors: e.Vectors, n: l.Dim(), full: true}, nil
}

// TruncatedSpectral computes the K smallest eigenpairs with Lanczos — the
// substitute for the paper's MRRR-based truncated eigensolver. If k ≥ n the
// result is exact.
func TruncatedSpectral(l *Laplacian, k int, rng *rand.Rand) (*Spectral, error) {
	n := l.Dim()
	if k >= n {
		return ExactSpectral(l)
	}
	if k <= 0 {
		return nil, fmt.Errorf("graph: truncation rank %d must be positive", k)
	}
	e, err := mat.Lanczos(l, k, 0, rng)
	if err != nil {
		return nil, err
	}
	return &Spectral{Values: e.Values, Vectors: e.Vectors, n: n, full: false}, nil
}

// Rank returns the number of retained eigenpairs K.
func (s *Spectral) Rank() int { return len(s.Values) }

// Dim returns the mode size I_n.
func (s *Spectral) Dim() int { return s.n }

// Full reports whether the decomposition is exact (K = I_n).
func (s *Spectral) Full() bool { return s.full }

// InverseApply returns (ηI + αL)⁻¹·X computed right-to-left per Eq. (7).
//
// With the exact decomposition this is V·diag(1/(η+αλ))·(VᵀX). With a
// truncated one, L is approximated by its rank-K spectral truncation and the
// Woodbury identity gives
//
//	(ηI + αV_KΛ_KV_Kᵀ)⁻¹ = I/η + V_K [ (η+αΛ_K)⁻¹ − I/η ] V_Kᵀ,
//
// which remains an O(I·K·R) computation.
func (s *Spectral) InverseApply(alpha, eta float64, x *mat.Dense) *mat.Dense {
	if x.Rows() != s.n {
		panic(fmt.Sprintf("graph: InverseApply on %d rows, want %d", x.Rows(), s.n))
	}
	// W = Vᵀ X  (K×R) — the "last two matrices first" ordering of Eq. (7).
	w := mat.MulATB(s.Vectors, x)
	k, r := w.Dims()
	if s.full {
		for i := 0; i < k; i++ {
			scale := 1 / (eta + alpha*s.Values[i])
			row := w.Row(i)
			for j := 0; j < r; j++ {
				row[j] *= scale
			}
		}
		return mat.Mul(s.Vectors, w)
	}
	for i := 0; i < k; i++ {
		scale := 1/(eta+alpha*s.Values[i]) - 1/eta
		row := w.Row(i)
		for j := 0; j < r; j++ {
			row[j] *= scale
		}
	}
	out := mat.Mul(s.Vectors, w)
	out.AddScaled(1/eta, x)
	return out
}

// InverseApplyLeftToRight computes the same quantity in the wasteful
// left-to-right order of Eq. (6): it first materializes the I×I matrix
// V·diag·Vᵀ and then multiplies. Kept only for the FLOP-ordering ablation
// (design choice A5 in DESIGN.md).
func (s *Spectral) InverseApplyLeftToRight(alpha, eta float64, x *mat.Dense) *mat.Dense {
	scaled := s.Vectors.Clone()
	n, k := scaled.Dims()
	for i := 0; i < n; i++ {
		row := scaled.Row(i)
		for j := 0; j < k; j++ {
			if s.full {
				row[j] /= eta + alpha*s.Values[j]
			} else {
				row[j] *= 1/(eta+alpha*s.Values[j]) - 1/eta
			}
		}
	}
	inv := mat.MulABT(scaled, s.Vectors) // I×I materialization
	if !s.full {
		for i := 0; i < n; i++ {
			inv.Add(i, i, 1/eta)
		}
	}
	return mat.Mul(inv, x)
}

// DirectInverseApply solves (ηI + αL)·B = X with a fresh dense factorization
// — what a naive implementation pays every iteration as η changes. Kept for
// the trace-regularization ablation (design choice A1).
func DirectInverseApply(l *Laplacian, alpha, eta float64, x *mat.Dense) (*mat.Dense, error) {
	a := l.Dense().Scale(alpha)
	for i := 0; i < a.Rows(); i++ {
		a.Add(i, i, eta)
	}
	return mat.SolveSPD(a, x)
}
