package core

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
	"distenc/internal/synth"
)

func plantedProblem(dims []int, rank, nnz int, seed uint64) (*sptensor.Tensor, *sptensor.Kruskal) {
	d := synth.LinearFactorDataset(dims, rank, nnz, seed)
	return d.Tensor, d.Truth
}

func TestCompleteRecoversPlantedTensor(t *testing.T) {
	obs, truth := plantedProblem([]int{30, 30, 30}, 3, 8000, 1)
	rng := rand.New(rand.NewPCG(9, 9))
	train, test := obs.Split(0.3, rng)
	res, err := Complete(train, nil, Options{Rank: 6, MaxIter: 60, Tol: 1e-9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if re := metrics.RelativeError(test, res.Model); re > 0.15 {
		t.Fatalf("relative error on held-out entries = %v", re)
	}
	_ = truth
	if len(res.Trace) != res.Iters {
		t.Fatalf("trace length %d != iters %d", len(res.Trace), res.Iters)
	}
}

func TestCompleteTrainErrorDecreases(t *testing.T) {
	obs, _ := plantedProblem([]int{20, 25, 30}, 3, 4000, 3)
	res, err := Complete(obs, nil, Options{Rank: 5, MaxIter: 25, Tol: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Trace[0].TrainRMSE
	last := res.Trace[len(res.Trace)-1].TrainRMSE
	if last >= first/2 {
		t.Fatalf("training RMSE barely moved: %v -> %v", first, last)
	}
}

func TestAuxiliaryInfoHelpsAtHighMissingRate(t *testing.T) {
	// Sparse observations of a smooth planted model: the tri-diagonal trace
	// regularizer should beat the unregularized fit (the Fig. 5 claim).
	d := synth.LinearFactorDataset([]int{40, 40, 40}, 3, 1800, 5)
	rng := rand.New(rand.NewPCG(11, 11))
	train, test := d.Tensor.Split(0.5, rng)
	opts := Options{Rank: 4, MaxIter: 40, Tol: 1e-10, Seed: 6, Alpha: 1.0}
	plain, err := Complete(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	withAux, err := Complete(train, d.Sims, opts)
	if err != nil {
		t.Fatal(err)
	}
	rePlain := metrics.RelativeError(test, plain.Model)
	reAux := metrics.RelativeError(test, withAux.Model)
	if reAux >= rePlain {
		t.Fatalf("aux info did not help: plain %v vs aux %v", rePlain, reAux)
	}
}

func TestObjectiveDecreases(t *testing.T) {
	d := synth.LinearFactorDataset([]int{15, 15, 15}, 2, 1200, 7)
	initModel := sptensor.NewKruskal(initFactors(d.Tensor.Dims, 4, 8)...)
	before := Objective(d.Tensor, initModel, d.Sims, 1e-2, 1e-1)
	res, err := Complete(d.Tensor, d.Sims, Options{Rank: 4, MaxIter: 30, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	after := Objective(d.Tensor, res.Model, d.Sims, 1e-2, 1e-1)
	if after >= before {
		t.Fatalf("objective did not decrease: %v -> %v", before, after)
	}
}

// The headline correctness test: DisTenC on the engine must produce the same
// iterates as the serial Algorithm 1 reference (identical math, same seed).
func TestDistributedMatchesSerial(t *testing.T) {
	d := synth.LinearFactorDataset([]int{25, 20, 15}, 3, 2500, 9)
	opts := Options{Rank: 4, MaxIter: 8, Tol: 0, Seed: 10, Alpha: 0.5}
	serial, err := Complete(d.Tensor, d.Sims, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := rdd.MustNewCluster(rdd.Config{Machines: 3, CoresPerMachine: 2})
	defer c.Close()
	dist, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	for n := range serial.Model.Factors {
		if diff := mat.MaxAbsDiff(serial.Model.Factors[n], dist.Model.Factors[n]); diff > 1e-8 {
			t.Fatalf("mode %d factors diverge by %v", n, diff)
		}
		if diff := mat.MaxAbsDiff(serial.Aux[n], dist.Aux[n]); diff > 1e-8 {
			t.Fatalf("mode %d aux diverge by %v", n, diff)
		}
	}
	if c.Metrics().BytesShuffled.Load() == 0 {
		t.Fatal("DisTenC shuffled nothing — the stage is not distributed")
	}
}

func TestDistributedVariantsAgree(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1500, 12)
	opts := Options{Rank: 3, MaxIter: 5, Tol: 0, Seed: 13}
	c := rdd.MustNewCluster(rdd.Config{Machines: 4})
	defer c.Close()
	base, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opt  DistOptions
	}{
		{"uniform-partition", DistOptions{Options: opts, UniformPartition: true}},
		{"distributed-gram", DistOptions{Options: opts, DistributeGram: true}},
		{"more-partitions", DistOptions{Options: opts, Partitions: 7}},
	} {
		c2 := rdd.MustNewCluster(rdd.Config{Machines: 4})
		got, err := CompleteDistributed(c2, d.Tensor, d.Sims, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for n := range base.Model.Factors {
			if diff := mat.MaxAbsDiff(base.Model.Factors[n], got.Model.Factors[n]); diff > 1e-8 {
				t.Fatalf("%s: mode %d diverges by %v", tc.name, n, diff)
			}
		}
		c2.Close()
	}
}

func TestDistributedOnMapReduceMode(t *testing.T) {
	d := synth.LinearFactorDataset([]int{15, 15, 15}, 2, 800, 14)
	opts := Options{Rank: 3, MaxIter: 3, Tol: 0, Seed: 15}
	c := rdd.MustNewCluster(rdd.Config{Machines: 2, Mode: rdd.ModeMapReduce})
	defer c.Close()
	res, err := CompleteDistributed(c, d.Tensor, nil, DistOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 3 {
		t.Fatalf("iters = %d", res.Iters)
	}
	if c.Metrics().DiskBytesWrite.Load() == 0 {
		t.Fatal("MapReduce mode wrote nothing to disk")
	}
}

func TestDistributedOOMPropagates(t *testing.T) {
	d := synth.LinearFactorDataset([]int{40, 40, 40}, 2, 20000, 16)
	c := rdd.MustNewCluster(rdd.Config{Machines: 2, MemoryPerMachine: 1024})
	defer c.Close()
	_, err := CompleteDistributed(c, d.Tensor, nil, DistOptions{Options: Options{Rank: 3, MaxIter: 2, Seed: 1}})
	if !errors.Is(err, rdd.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestValidateRejectsBadSims(t *testing.T) {
	ts := sptensor.New(4, 4)
	ts.Append([]int32{0, 0}, 1)
	badLen := []*graph.Similarity{graph.TriDiagonal(4)}
	if _, err := Complete(ts, badLen, Options{}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v", err)
	}
	badSize := []*graph.Similarity{graph.TriDiagonal(5), nil}
	if _, err := Complete(ts, badSize, Options{}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedSpectraPath(t *testing.T) {
	d := synth.LinearFactorDataset([]int{30, 30, 30}, 2, 2000, 17)
	res, err := Complete(d.Tensor, d.Sims, Options{Rank: 3, MaxIter: 10, TruncK: 8, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Complete(d.Tensor, d.Sims, Options{Rank: 3, MaxIter: 10, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	// Truncation changes the B update slightly but must not derail training.
	if res.Trace[len(res.Trace)-1].TrainRMSE > 2*exact.Trace[len(exact.Trace)-1].TrainRMSE+0.05 {
		t.Fatalf("truncated spectra diverged: %v vs %v",
			res.Trace[len(res.Trace)-1].TrainRMSE, exact.Trace[len(exact.Trace)-1].TrainRMSE)
	}
}

func TestConvergenceCriterionStopsEarly(t *testing.T) {
	d := synth.LinearFactorDataset([]int{10, 10, 10}, 2, 600, 19)
	res, err := Complete(d.Tensor, nil, Options{Rank: 2, MaxIter: 500, Tol: 1e-6, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("never converged")
	}
	if res.Iters >= 500 {
		t.Fatal("did not stop early")
	}
}

func TestInitFactorsDeterministic(t *testing.T) {
	a := initFactors([]int{5, 6}, 3, 42)
	b := initFactors([]int{5, 6}, 3, 42)
	c := initFactors([]int{5, 6}, 3, 43)
	if mat.MaxAbsDiff(a[0], b[0]) != 0 || mat.MaxAbsDiff(a[1], b[1]) != 0 {
		t.Fatal("same seed must give same init")
	}
	if mat.MaxAbsDiff(a[0], c[0]) == 0 {
		t.Fatal("different seeds must differ")
	}
	for _, f := range a {
		for _, v := range f.Data() {
			if v < 0 || v >= 1 {
				t.Fatalf("init value %v outside [0,1)", v)
			}
		}
	}
}

func TestOnIterationCallback(t *testing.T) {
	d := synth.LinearFactorDataset([]int{8, 8, 8}, 2, 300, 21)
	var calls int
	_, err := Complete(d.Tensor, nil, Options{Rank: 2, MaxIter: 4, Tol: 0, Seed: 22,
		OnIteration: func(p metrics.ConvergencePoint) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("callback fired %d times, want 4", calls)
	}
}

func TestFourModeTensor(t *testing.T) {
	// The solver must be generic in N, not hard-coded to 3 modes.
	d := synth.LinearFactorDataset([]int{8, 9, 10, 11}, 2, 3000, 23)
	serial, err := Complete(d.Tensor, d.Sims, Options{Rank: 3, MaxIter: 5, Tol: 0, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	c := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer c.Close()
	dist, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: Options{Rank: 3, MaxIter: 5, Tol: 0, Seed: 24}})
	if err != nil {
		t.Fatal(err)
	}
	for n := range serial.Model.Factors {
		if diff := mat.MaxAbsDiff(serial.Model.Factors[n], dist.Model.Factors[n]); diff > 1e-8 {
			t.Fatalf("4-mode: factors %d diverge by %v", n, diff)
		}
	}
}

func TestObjectiveOfEmptySims(t *testing.T) {
	ts := sptensor.New(3, 3)
	ts.Append([]int32{1, 1}, 2)
	model := sptensor.NewKruskal(initFactors([]int{3, 3}, 2, 1)...)
	withNil := Objective(ts, model, nil, 0.01, 0.1)
	withEmpty := Objective(ts, model, []*graph.Similarity{graph.NewSimilarity(3), nil}, 0.01, 0.1)
	if math.Abs(withNil-withEmpty) > 1e-12 {
		t.Fatalf("empty sims changed objective: %v vs %v", withNil, withEmpty)
	}
}

func TestDistributedTraceMonotoneOnPlanted(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 3, 2500, 25)
	c := rdd.MustNewCluster(rdd.Config{Machines: 2})
	defer c.Close()
	res, err := CompleteDistributed(c, d.Tensor, nil, DistOptions{Options: Options{Rank: 4, MaxIter: 15, Tol: 0, Seed: 26}})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Trace[0].TrainRMSE
	last := res.Trace[len(res.Trace)-1].TrainRMSE
	if last >= first {
		t.Fatalf("distributed RMSE did not decrease: %v -> %v", first, last)
	}
}

func TestGridPartitionAgrees(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1500, 61)
	opts := Options{Rank: 3, MaxIter: 5, Tol: 0, Seed: 62}
	c1 := rdd.MustNewCluster(rdd.Config{Machines: 4})
	defer c1.Close()
	base, err := CompleteDistributed(c1, d.Tensor, d.Sims, DistOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	c2 := rdd.MustNewCluster(rdd.Config{Machines: 4})
	defer c2.Close()
	grid, err := CompleteDistributed(c2, d.Tensor, d.Sims, DistOptions{Options: opts, GridPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	for n := range base.Model.Factors {
		if diff := mat.MaxAbsDiff(base.Model.Factors[n], grid.Model.Factors[n]); diff > 1e-8 {
			t.Fatalf("grid blocking changed mode-%d factors by %v", n, diff)
		}
	}
	// And with 7 partitions (grid cells 2^3=8 > 7, cells merged round-robin).
	c3 := rdd.MustNewCluster(rdd.Config{Machines: 7})
	defer c3.Close()
	grid7, err := CompleteDistributed(c3, d.Tensor, d.Sims, DistOptions{Options: opts, GridPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	for n := range base.Model.Factors {
		if diff := mat.MaxAbsDiff(base.Model.Factors[n], grid7.Model.Factors[n]); diff > 1e-8 {
			t.Fatalf("grid blocking (7 parts) changed mode-%d factors by %v", n, diff)
		}
	}
}

// Grid blocking must ship fewer factor-row bytes than mode-0 blocking once
// there are enough partitions for mode-1/2 locality to matter.
func TestGridPartitionShipsFewerRows(t *testing.T) {
	ts := synth.ScalabilityTensor([]int{2000, 2000, 2000}, 40000, 63)
	opts := Options{Rank: 4, MaxIter: 2, Tol: 0, Seed: 64}
	c1 := rdd.MustNewCluster(rdd.Config{Machines: 8})
	defer c1.Close()
	if _, err := CompleteDistributed(c1, ts, nil, DistOptions{Options: opts}); err != nil {
		t.Fatal(err)
	}
	c2 := rdd.MustNewCluster(rdd.Config{Machines: 8})
	defer c2.Close()
	if _, err := CompleteDistributed(c2, ts, nil, DistOptions{Options: opts, GridPartition: true}); err != nil {
		t.Fatal(err)
	}
	modeSplit := c1.Metrics().BytesShuffled.Load()
	grid := c2.Metrics().BytesShuffled.Load()
	if grid >= modeSplit {
		t.Fatalf("grid blocking shuffled %d bytes, mode-0 blocking %d — expected a reduction", grid, modeSplit)
	}
}
