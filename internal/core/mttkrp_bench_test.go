package core

import (
	"testing"

	"distenc/internal/rdd"
	"distenc/internal/synth"
)

// benchStage builds a cached block layout once and times MTTKRPStage alone —
// the per-iteration distributed hot path — isolated from the driver algebra
// (Gram products, spectral updates, Eq. 16 solves) that CompleteDistributed
// adds around it.
func benchStage(b *testing.B, opt DistOptions) {
	d := synth.LinearFactorDataset([]int{200, 200, 200}, 4, 50_000, 1)
	opt.Options = opt.Options.withDefaults()
	c := rdd.MustNewCluster(rdd.Config{Machines: 4})
	defer c.Close()
	if opt.Partitions <= 0 {
		opt.Partitions = c.Machines()
	}
	layout := NewLayout(d.Tensor, opt)
	blocks := layout.BlocksRDD(c)
	blocks.Cache()
	if err := blocks.Materialize(); err != nil {
		b.Fatal(err)
	}
	factors := initFactors(d.Tensor.Dims, opt.Rank, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MTTKRPStage(c, blocks, layout, factors, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMTTKRPStage(b *testing.B) {
	benchStage(b, DistOptions{Options: Options{Rank: 8}})
}

func BenchmarkMTTKRPStageGrid(b *testing.B) {
	benchStage(b, DistOptions{Options: Options{Rank: 8}, GridPartition: true})
}
