package core

import (
	"testing"

	"distenc/internal/mat"
	"distenc/internal/rdd"
	"distenc/internal/synth"
)

// benchStage builds a cached block layout once and times MTTKRPStage alone —
// the per-iteration distributed hot path — isolated from the driver algebra
// (Gram products, spectral updates, Eq. 16 solves) that CompleteDistributed
// adds around it.
func benchStage(b *testing.B, opt DistOptions) {
	d := synth.LinearFactorDataset([]int{200, 200, 200}, 4, 50_000, 1)
	opt.Options = opt.Options.withDefaults()
	c := rdd.MustNewCluster(rdd.Config{Machines: 4})
	defer c.Close()
	if opt.Partitions <= 0 {
		opt.Partitions = c.Machines()
	}
	layout := NewLayout(d.Tensor, opt)
	blocks := layout.BlocksRDD(c)
	blocks.Cache()
	if err := blocks.Materialize(); err != nil {
		b.Fatal(err)
	}
	factors := initFactors(d.Tensor.Dims, opt.Rank, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MTTKRPStage(c, blocks, layout, factors, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMTTKRPStage(b *testing.B) {
	benchStage(b, DistOptions{Options: Options{Rank: 8}})
}

func BenchmarkMTTKRPStageGrid(b *testing.B) {
	benchStage(b, DistOptions{Options: Options{Rank: 8}, GridPartition: true})
}

// steadyWorkerIteration runs one worker-side MTTKRP iteration over every
// partition of l against a single shared arena: map kernel, slab emission,
// record encoding into buf, wire decode back out of buf, and the reduce
// accumulation + compaction. This is the allocation-visible span of a
// steady-state iteration; everything outside it — engine task dispatch,
// driver-side H_n assembly — allocates a handful of O(P+N) small objects per
// iteration by design and is excluded from the zero-alloc contract.
func steadyWorkerIteration(a *rdd.Arena, l *Layout, factors []*mat.Dense, rank int, wire rdd.WireFormat, buf []byte) ([]byte, float64) {
	a.Reset()
	ms, _ := a.Stash(mttkrpMapStash).(*mttkrpMapScratch)
	if ms == nil {
		ms = &mttkrpMapScratch{
			acc:   make([][]float64, l.order),
			out:   make([][]PackedRows, l.parts),
			rest:  make([]int, 0, l.order),
			fused: newFusedScratch(l.order, rank),
		}
		a.SetStash(mttkrpMapStash, ms)
	}
	buf = buf[:0]
	var norm2 float64
	for p := 0; p < l.parts; p++ {
		acc := ms.acc
		for n := range acc {
			acc[n] = a.Float64s(len(l.neededRows[p][n]) * rank)
		}
		if l.kernelOf[p] == KernelSpMV {
			blk := l.blockParts[p][0]
			left := a.Float64s((l.order + 1) * rank)
			resid := a.Float64s(blk.NNZ())
			tmp := a.Float64s(l.order * rank)
			norm2 += spmvResiduals(blk, factors, rank, left, resid)
			for n := 0; n < l.order; n++ {
				rest := restModes(ms.rest, l.order, n)
				var perm []int32
				if l.modePerm[p] != nil {
					perm = l.modePerm[p][n]
				}
				spmvModeMTTKRP(blk, l.locIdx[p], perm, n, rest, factors, rank, resid, tmp, acc[n])
			}
		} else {
			off := 0
			for _, blk := range l.blockParts[p] {
				norm2 += fusedBlockMTTKRP(blk, l.locIdx[p][off:off+len(blk.Idx)], factors, rank, acc, ms.fused)
				off += len(blk.Idx)
			}
		}
		for n := 0; n < l.order; n++ {
			rows := l.neededRows[p][n]
			runs := l.rowRuns[p][n]
			for rp := 0; rp < len(runs)-1; rp++ {
				lo, hi := runs[rp], runs[rp+1]
				if lo == hi {
					continue
				}
				rec := PackedRows{Mode: int16(n), Wire: wire, Rows: rows[lo:hi], Vals: acc[n][lo*rank : hi*rank]}
				buf = rec.AppendRecord(buf)
			}
		}
	}
	// Reduce side over the encoded stream, as one reduce partition spanning
	// every mode's full row range.
	rs, _ := a.Stash(mttkrpReduceStash).(*mttkrpReduceScratch)
	if rs == nil {
		rs = &mttkrpReduceScratch{
			slabs:   make([][]float64, l.order),
			touched: make([][]bool, l.order),
		}
		a.SetStash(mttkrpReduceStash, rs)
	}
	slabs, touched := rs.slabs, rs.touched
	for n := range slabs {
		slabs[n] = a.Float64s(l.dims[n] * rank)
		touched[n] = a.Bools(l.dims[n])
	}
	data := buf
	var rec PackedRows
	for len(data) > 0 {
		var err error
		data, err = rec.DecodeRecordArena(a, data)
		if err != nil {
			panic(err)
		}
		n := int(rec.Mode)
		for i, row := range rec.Rows {
			li := int(row)
			touched[n][li] = true
			dst := slabs[n][li*rank : (li+1)*rank : (li+1)*rank]
			src := rec.Vals[i*rank : (i+1)*rank : (i+1)*rank]
			for r := 0; r < rank; r++ {
				dst[r] += src[r]
			}
		}
	}
	out := rs.out[:0]
	for n := 0; n < l.order; n++ {
		cnt := 0
		for _, t := range touched[n] {
			if t {
				cnt++
			}
		}
		rowsOut := a.Int32s(cnt)
		valsOut := a.Float64s(cnt * rank)
		ri := 0
		for li, t := range touched[n] {
			if !t {
				continue
			}
			rowsOut[ri] = int32(li)
			copy(valsOut[ri*rank:(ri+1)*rank], slabs[n][li*rank:(li+1)*rank])
			ri++
		}
		out = append(out, PackedRows{Mode: int16(n), Rows: rowsOut, Vals: valsOut})
	}
	rs.out = out
	return buf, norm2
}

func benchSteadyState(b *testing.B, kernel KernelMode) {
	d := synth.LinearFactorDataset([]int{200, 200, 200}, 4, 50_000, 1)
	opt := DistOptions{Options: Options{Rank: 8}, GridPartition: true, Kernel: kernel}
	opt.Options = opt.Options.withDefaults()
	opt.Partitions = 4
	l := NewLayout(d.Tensor, opt)
	factors := initFactors(d.Tensor.Dims, opt.Rank, 2)
	var a rdd.Arena
	var buf []byte
	// Warm up until the arena slabs and encode buffer reach the cycle's
	// high-water capacity; geometric growth converges within a few cycles.
	for i := 0; i < 5; i++ {
		buf, _ = steadyWorkerIteration(&a, l, factors, opt.Rank, rdd.WireVarint, buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = steadyWorkerIteration(&a, l, factors, opt.Rank, rdd.WireVarint, buf)
	}
}

// BenchmarkMTTKRPSteadyState* measure the arena-backed worker path in its
// steady state (iteration ≥ 2): allocs/op must report 0 — the contract
// TestMTTKRPSteadyStateZeroAlloc pins.
func BenchmarkMTTKRPSteadyStateFused(b *testing.B) { benchSteadyState(b, KernelFused) }
func BenchmarkMTTKRPSteadyStateSpMV(b *testing.B)  { benchSteadyState(b, KernelSpMV) }

// TestMTTKRPSteadyStateZeroAlloc proves the zero-alloc steady state: after
// warm-up iterations size the arena, further worker-side iterations perform
// zero heap allocations under either kernel and any wire format.
func TestMTTKRPSteadyStateZeroAlloc(t *testing.T) {
	d := synth.LinearFactorDataset([]int{60, 50, 40}, 3, 8_000, 5)
	for _, kernel := range []KernelMode{KernelFused, KernelSpMV} {
		for _, wire := range []rdd.WireFormat{rdd.WireRaw, rdd.WireVarint, rdd.WireF32} {
			opt := DistOptions{Options: Options{Rank: 6}, GridPartition: true, Kernel: kernel}
			opt.Options = opt.Options.withDefaults()
			opt.Partitions = 4
			l := NewLayout(d.Tensor, opt)
			factors := initFactors(d.Tensor.Dims, opt.Rank, 2)
			var a rdd.Arena
			var buf []byte
			for i := 0; i < 5; i++ {
				buf, _ = steadyWorkerIteration(&a, l, factors, opt.Rank, wire, buf)
			}
			allocs := testing.AllocsPerRun(10, func() {
				buf, _ = steadyWorkerIteration(&a, l, factors, opt.Rank, wire, buf)
			})
			if allocs != 0 {
				t.Errorf("kernel=%v wire=%v: steady-state iteration allocates %.1f objects/op, want 0", kernel, wire, allocs)
			}
		}
	}
}
