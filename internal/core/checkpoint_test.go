package core

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distenc/internal/mat"
)

// writeTestCheckpoint persists a small known solver image and returns its
// path and state.
func writeTestCheckpoint(t *testing.T) (string, *checkpointState) {
	t.Helper()
	dir := t.TempDir()
	st := &checkpointState{
		iter: 7,
		eta:  1.5,
		factors: []*mat.Dense{
			mat.NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6}),
			mat.NewDenseData(2, 2, []float64{7, 8, 9, 10}),
		},
		aux: []*mat.Dense{
			mat.NewDenseData(3, 2, []float64{11, 12, 13, 14, 15, 16}),
			mat.NewDenseData(2, 2, []float64{17, 18, 19, 20}),
		},
		mult: []*mat.Dense{
			mat.NewDenseData(3, 2, []float64{21, 22, 23, 24, 25, 26}),
			mat.NewDenseData(2, 2, []float64{27, 28, 29, 30}),
		},
	}
	if err := writeCheckpoint(dir, st); err != nil {
		t.Fatal(err)
	}
	return CheckpointPath(dir), st
}

func TestReadCheckpointRoundTrip(t *testing.T) {
	path, st := writeTestCheckpoint(t)
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Iter != st.iter || math.Float64bits(ck.Eta) != math.Float64bits(st.eta) {
		t.Fatalf("got iter=%d eta=%v, want iter=%d eta=%v", ck.Iter, ck.Eta, st.iter, st.eta)
	}
	if ck.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", ck.Rank())
	}
	if d := ck.Dims(); len(d) != 2 || d[0] != 3 || d[1] != 2 {
		t.Fatalf("dims = %v, want [3 2]", d)
	}
	for gi, pair := range [][2][]*mat.Dense{{ck.Factors, st.factors}, {ck.Aux, st.aux}, {ck.Duals, st.mult}} {
		got, want := pair[0], pair[1]
		for n := range want {
			gd, wd := got[n].Data(), want[n].Data()
			for i := range wd {
				if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
					t.Fatalf("group %d mode %d entry %d = %v, want %v", gi, n, i, gd[i], wd[i])
				}
			}
		}
	}
	// The Kruskal view must evaluate exactly as a hand-built one.
	want := ck.Factors[0].At(1, 0)*ck.Factors[1].At(1, 0) + ck.Factors[0].At(1, 1)*ck.Factors[1].At(1, 1)
	if got := ck.Model().At([]int32{1, 1}); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("Model().At = %v, want %v", got, want)
	}
}

// TestReadCheckpointRejectsCorruptImages drives the loader through the
// corruption classes an untrusted admin-API path can present: wrong file
// type, wrong version, truncations at every structural boundary, and
// geometry that disagrees with the byte count. Every rejection must name the
// file and say got/want — these errors surface verbatim to serving
// operators.
func TestReadCheckpointRejectsCorruptImages(t *testing.T) {
	path, _ := writeTestCheckpoint(t)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Header layout: magic u32 | version u32 | iter u64 | eta f64 | order u32
	// | rank u32 | dims u32×order | matrices.
	const (
		offMagic   = 0
		offVersion = 4
		offOrder   = 24
		offRank    = 28
		offDims    = 32
	)

	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	for _, tc := range []struct {
		name string
		img  []byte
		want []string // substrings the error must carry
	}{
		{
			name: "empty file",
			img:  nil,
			want: []string{"truncated checkpoint header", "0 bytes"},
		},
		{
			name: "truncated inside header",
			img:  good[:offOrder-3],
			want: []string{"truncated checkpoint header"},
		},
		{
			name: "bad magic",
			img: corrupt(func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[offMagic:], 0x50444621) // "!FDP"
				return b
			}),
			want: []string{"bad checkpoint magic 0x50444621", "want 0x4454434b", `"DTCK"`},
		},
		{
			name: "not a checkpoint at all",
			img:  []byte("# factors-mode0.txt is not a checkpoint image\n1.5 2.5 3.5\n"),
			want: []string{"bad checkpoint magic", "want 0x4454434b"},
		},
		{
			name: "future version",
			img: corrupt(func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[offVersion:], 99)
				return b
			}),
			want: []string{"version 99", "want 1"},
		},
		{
			name: "zero order",
			img: corrupt(func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[offOrder:], 0)
				return b
			}),
			want: []string{"corrupt checkpoint header", "order=0"},
		},
		{
			name: "absurd order",
			img: corrupt(func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[offOrder:], 4096)
				return b
			}),
			want: []string{"corrupt checkpoint header", "order=4096"},
		},
		{
			name: "zero rank",
			img: corrupt(func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[offRank:], 0)
				return b
			}),
			want: []string{"corrupt checkpoint header", "rank=0"},
		},
		{
			name: "truncated inside dims",
			img:  good[:offDims+2],
			want: []string{"file ends inside"},
		},
		{
			name: "truncated matrix data",
			img:  good[:len(good)-9],
			want: []string{"bytes of matrix data", "truncated or corrupt"},
		},
		{
			name: "trailing garbage",
			img:  append(append([]byte(nil), good...), 0xde, 0xad),
			want: []string{"bytes of matrix data", "want 240"},
		},
		{
			name: "rank inflated past the data",
			img: corrupt(func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[offRank:], 1<<20)
				return b
			}),
			want: []string{"bytes of matrix data", "truncated or corrupt"},
		},
		{
			name: "dim inflated past the data",
			img: corrupt(func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[offDims:], 1<<30)
				return b
			}),
			want: []string{"bytes of matrix data"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "solver.ckpt")
			if err := os.WriteFile(p, tc.img, 0o600); err != nil {
				t.Fatal(err)
			}
			_, err := ReadCheckpoint(p)
			if err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
			if !strings.Contains(err.Error(), p) {
				t.Fatalf("error does not name the file:\n%v", err)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Fatalf("error missing %q:\n%v", w, err)
				}
			}
		})
	}
}

func TestReadCheckpointMissingFile(t *testing.T) {
	_, err := ReadCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err == nil || !os.IsNotExist(err) {
		t.Fatalf("want os.ErrNotExist, got %v", err)
	}
}
