package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"distenc/internal/rdd"
	"distenc/internal/synth"
)

// runObservedSolve runs the full distributed solver with per-task tracing on
// and returns the cluster (still open; caller closes) and the result.
func runObservedSolve(t *testing.T, mode rdd.Mode) (*rdd.Cluster, *Result) {
	t.Helper()
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1200, 61)
	c := rdd.MustNewCluster(rdd.Config{Machines: 3, Mode: mode, TaskTrace: true})
	opts := Options{Rank: 3, MaxIter: 3, Tol: -1, Seed: 62}
	res, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: opts})
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	return c, res
}

// The stage log, task trace, driver spans and phase breakdown must cover
// every iteration of a full solve — in both engine modes, since MapReduce
// mode additionally routes shuffles through disk spills.
func TestObservabilityCoversFullSolve(t *testing.T) {
	for _, mode := range []rdd.Mode{rdd.ModeInMemory, rdd.ModeMapReduce} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			c, res := runObservedSolve(t, mode)
			defer c.Close()

			if got := len(res.Phases); got != res.Iters {
				t.Fatalf("phase breakdown has %d iterations, solver ran %d", got, res.Iters)
			}
			for _, ph := range res.Phases {
				if ph.MTTKRPMap <= 0 || ph.MTTKRPReduce <= 0 {
					t.Errorf("iter %d: map=%v reduce=%v, want both > 0", ph.Iter, ph.MTTKRPMap, ph.MTTKRPReduce)
				}
				if ph.Driver <= 0 || ph.Total < ph.MTTKRPMap {
					t.Errorf("iter %d: driver=%v total=%v", ph.Iter, ph.Driver, ph.Total)
				}
				if ph.BytesShuffled <= 0 {
					t.Errorf("iter %d: no shuffle bytes attributed", ph.Iter)
				}
			}

			// Every iteration must contribute a tagged map and reduce stage.
			type key struct {
				tag, kind string
			}
			stageKinds := map[key]bool{}
			for _, s := range c.StageLog() {
				switch {
				case strings.Contains(s.Name, "mttkrp-map"):
					stageKinds[key{s.Tag, "map"}] = true
					if s.BytesShuffled == 0 {
						t.Errorf("map stage %q (%s) recorded no shuffle bytes", s.Name, s.Tag)
					}
					if mode == rdd.ModeMapReduce && s.BytesSpilled == 0 {
						t.Errorf("map stage %q (%s) recorded no spill bytes in MapReduce mode", s.Name, s.Tag)
					}
				case strings.Contains(s.Name, "mttkrp-reduce"):
					stageKinds[key{s.Tag, "reduce"}] = true
				}
			}
			for it := 0; it < res.Iters; it++ {
				tag := fmt.Sprintf("iter=%d", it)
				if !stageKinds[key{tag, "map"}] || !stageKinds[key{tag, "reduce"}] {
					t.Errorf("iteration %d missing tagged mttkrp stages", it)
				}
			}

			// Driver algebra is timed once per iteration.
			algebra := 0
			for _, sp := range c.DriverSpans() {
				if sp.Name == "driver-algebra" {
					algebra++
				}
			}
			if algebra != res.Iters {
				t.Errorf("driver-algebra spans = %d, want %d", algebra, res.Iters)
			}

			// Per-task records exist for every stage task and agree with the
			// stage rollups on shuffle volume.
			var stageTasks int
			var stageShuffled int64
			for _, s := range c.StageLog() {
				stageTasks += s.Tasks
				stageShuffled += s.BytesShuffled
			}
			var taskShuffled int64
			for _, tr := range c.Trace() {
				taskShuffled += tr.BytesShuffled
			}
			if got := len(c.Trace()); got != stageTasks {
				t.Errorf("task trace has %d records, stage log counts %d tasks", got, stageTasks)
			}
			if taskShuffled != stageShuffled {
				t.Errorf("task-level shuffle bytes %d != stage-level %d", taskShuffled, stageShuffled)
			}
		})
	}
}

// The exported Chrome trace of a full solve must contain one stage span per
// executed stage of every iteration plus the driver-algebra spans — the
// ISSUE's end-to-end observability contract.
func TestChromeTraceCoversEveryIteration(t *testing.T) {
	c, res := runObservedSolve(t, rdd.ModeInMemory)
	defer c.Close()

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}

	type span struct{ name, tag string }
	stageSpans := map[span]bool{}
	driverSpans := map[string]int{}
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" && e.Ph != "M" {
			t.Fatalf("event %q: ph=%q", e.Name, e.Ph)
		}
		if e.Ph == "X" && (e.TS < 0 || e.Dur <= 0) {
			t.Fatalf("event %q: ts=%v dur=%v", e.Name, e.TS, e.Dur)
		}
		switch e.Cat {
		case "stage":
			tag, _ := e.Args["tag"].(string)
			stageSpans[span{e.Name, tag}] = true
		case "driver":
			driverSpans[e.Name]++
		}
	}
	for it := 0; it < res.Iters; it++ {
		tag := fmt.Sprintf("iter=%d", it)
		for _, name := range []string{"shuffle-write:mttkrp-map", "collect:mttkrp-reduce"} {
			if !stageSpans[span{name, tag}] {
				t.Errorf("trace missing stage %q for %s", name, tag)
			}
		}
	}
	if driverSpans["driver-algebra"] != res.Iters {
		t.Errorf("trace has %d driver-algebra spans, want %d", driverSpans["driver-algebra"], res.Iters)
	}
	if driverSpans["gram"] != res.Iters {
		t.Errorf("trace has %d gram spans, want %d", driverSpans["gram"], res.Iters)
	}
}

// The serial solver reports the same phase schema, so serial-vs-distributed
// breakdowns are comparable.
func TestSerialPhaseBreakdown(t *testing.T) {
	d := synth.LinearFactorDataset([]int{15, 15, 15}, 2, 700, 63)
	res, err := Complete(d.Tensor, d.Sims, Options{Rank: 3, MaxIter: 3, Tol: -1, Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != res.Iters {
		t.Fatalf("phases = %d, iters = %d", len(res.Phases), res.Iters)
	}
	tot := res.Phases.Totals()
	if tot.MTTKRPMap <= 0 || tot.Gram <= 0 || tot.Total <= 0 {
		t.Fatalf("degenerate totals %+v", tot)
	}
	if s := res.Phases.String(); !strings.Contains(s, "TOTAL") {
		t.Errorf("breakdown table missing TOTAL row:\n%s", s)
	}
}
