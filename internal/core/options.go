// Package core implements the paper's algorithms: the CP-based tensor
// completion ADMM of Algorithm 1 (serial reference, with the §III
// optimizations applied) and DisTenC itself, Algorithm 3, running on the
// rdd engine.
//
// Both implementations perform identical mathematics — Jacobi-style mode
// updates within an iteration, the residual-tensor identity of Eq. (16), the
// spectral trace-regularization update of Eq. (7) — so the distributed solver
// is validated iterate-by-iterate against the serial one in tests.
package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/sptensor"
)

// Options configures the ADMM solver. Zero values take the defaults
// documented per field (the paper's settings).
type Options struct {
	// Rank R of the CP model (default 10).
	Rank int
	// Lambda is the ℓ2 factor regularization weight λ (default 1e-2).
	Lambda float64
	// Alpha weights the trace (auxiliary similarity) regularization α_n,
	// shared across modes that have a similarity (default 1e-1).
	Alpha float64
	// Alphas optionally overrides Alpha per mode (the paper's α_n); a zero
	// entry falls back to Alpha. Length must equal the tensor order when
	// set.
	Alphas []float64
	// Eta0 is the initial ADMM penalty η (default 1.0), grown each
	// iteration by Rho (default 1.1) up to EtaMax (default 10). The penalty
	// must be large enough for the A=B consensus — and with it the trace
	// regularizer — to bind; the paper gives no schedule, and these values
	// follow standard ADMM practice (Boyd et al. [15]).
	Eta0, Rho, EtaMax float64
	// Tol stops the loop when max_n ‖A(n)_{t+1}−A(n)_t‖²_F < Tol
	// (Algorithm 3 line 15; default 1e-4).
	Tol float64
	// MaxIter bounds the outer iterations (default 50).
	MaxIter int
	// TruncK truncates each mode's Laplacian eigendecomposition to K
	// components; 0 decomposes exactly (the paper's K, §III-B).
	TruncK int
	// NonNegative projects the auxiliary variables B(n) onto the
	// non-negative orthant each iteration, honoring the A(n)=B(n) ≥ 0
	// constraint the paper's Eq. (4) states (its printed Algorithm 1 omits
	// the projection; this implements the constraint via the standard
	// projected ADMM splitting).
	NonNegative bool
	// ConsensusTol, when positive, additionally stops the loop once
	// max_n ‖A(n)−B(n)‖_F < ConsensusTol — the Algorithm 1 stopping
	// criterion, complementing the Algorithm 3 iterate-delta criterion.
	ConsensusTol float64
	// Seed fixes the factor initialization.
	Seed uint64
	// CheckpointEvery, when positive, persists the full solver state
	// (factors, auxiliary variables, multipliers, η, iteration counter) to
	// CheckpointDir after every CheckpointEvery-th iteration, atomically
	// replacing the previous checkpoint. Resume restarts from the latest
	// checkpoint and reproduces the uninterrupted run's factors bit-for-bit.
	CheckpointEvery int
	// CheckpointDir is where checkpoints are written (and where Resume looks
	// for one). Required when CheckpointEvery is set.
	CheckpointDir string
	// InitScale multiplies the U(0,1) factor initialization (0 = auto: the
	// solvers match the initial model's mean prediction to the observed
	// mean, which dramatically accelerates the EM-style fill-in when most
	// cells are missing; set to 1 to disable).
	InitScale float64
	// OnIteration, when set, receives one convergence point per iteration.
	OnIteration func(metrics.ConvergencePoint)
}

func (o Options) withDefaults() Options {
	if o.Rank <= 0 {
		o.Rank = 10
	}
	if o.Lambda == 0 {
		o.Lambda = 1e-2
	}
	if o.Alpha == 0 {
		o.Alpha = 1e-1
	}
	if o.Eta0 == 0 {
		o.Eta0 = 1.0
	}
	if o.Rho == 0 {
		o.Rho = 1.1
	}
	if o.EtaMax == 0 {
		o.EtaMax = 10
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	return o
}

// WithDefaults returns o with every unset field replaced by its documented
// default. Exposed so the baselines share the exact solver settings.
func (o Options) WithDefaults() Options { return o.withDefaults() }

// InitFactors exposes the Algorithm 1/3 factor initialization so every
// method in a comparison starts from the same point given the same seed.
func InitFactors(dims []int, rank int, seed uint64) []*mat.Dense {
	return initFactors(dims, rank, seed)
}

// Result reports a completed run.
type Result struct {
	// Model holds the learned factor matrices; Model.At predicts any cell,
	// i.e. it is the completed tensor X in Kruskal form.
	Model *sptensor.Kruskal
	// Aux holds the auxiliary variables B(n).
	Aux []*mat.Dense
	// Iters is the number of outer iterations executed.
	Iters int
	// Converged reports whether the Tol criterion fired before MaxIter.
	Converged bool
	// Trace records per-iteration training error and timing.
	Trace metrics.Trace
	// Phases decomposes each iteration into MTTKRP map/reduce, Gram, and
	// driver-algebra time (stage walls for the distributed solver, in-process
	// section timers for the serial one — see metrics.PhaseTimes).
	Phases metrics.PhaseBreakdown
	// Elapsed is the total wall-clock training time.
	Elapsed time.Duration
}

// ErrDimensionMismatch is returned when sims do not match the tensor modes.
var ErrDimensionMismatch = errors.New("core: similarity/tensor dimension mismatch")

// AlphaFor returns the trace-regularization weight for mode n.
func (o Options) AlphaFor(n int) float64 {
	if n < len(o.Alphas) && o.Alphas[n] != 0 {
		return o.Alphas[n]
	}
	return o.Alpha
}

func validate(t *sptensor.Tensor, sims []*graph.Similarity) error {
	if err := t.Validate(); err != nil {
		return err
	}
	return validateSims(t, sims)
}

func validateOptions(t *sptensor.Tensor, o Options) error {
	if len(o.Alphas) > 0 && len(o.Alphas) != t.Order() {
		return fmt.Errorf("%w: %d per-mode alphas for order-%d tensor", ErrDimensionMismatch, len(o.Alphas), t.Order())
	}
	if o.CheckpointEvery > 0 && o.CheckpointDir == "" {
		return errors.New("core: Options.CheckpointEvery set without Options.CheckpointDir")
	}
	return nil
}

func validateSims(t *sptensor.Tensor, sims []*graph.Similarity) error {
	if sims == nil {
		return nil
	}
	if len(sims) != t.Order() {
		return fmt.Errorf("%w: %d similarities for order-%d tensor", ErrDimensionMismatch, len(sims), t.Order())
	}
	for n, s := range sims {
		if s != nil && s.N != t.Dims[n] {
			return fmt.Errorf("%w: mode %d similarity over %d objects, mode size %d", ErrDimensionMismatch, n, s.N, t.Dims[n])
		}
	}
	return nil
}

// initFactors draws the non-negative U(0,1) initialization of Algorithms 1/3
// (line 4), deterministically from the seed. Serial and distributed solvers
// share it so their iterates coincide.
func initFactors(dims []int, rank int, seed uint64) []*mat.Dense {
	rng := rand.New(rand.NewPCG(seed, 0xd15c0))
	out := make([]*mat.Dense, len(dims))
	for n, d := range dims {
		f := mat.NewDense(d, rank)
		data := f.Data()
		for i := range data {
			data[i] = rng.Float64()
		}
		out[n] = f
	}
	return out
}

// spectra precomputes the per-mode spectral machinery (nil when a mode has
// no similarity). With TruncK = 0 each Laplacian is decomposed exactly.
func spectra(sims []*graph.Similarity, truncK int, seed uint64) ([]*graph.Spectral, error) {
	if sims == nil {
		return nil, nil
	}
	rng := rand.New(rand.NewPCG(seed, 0x5bec7))
	out := make([]*graph.Spectral, len(sims))
	for n, s := range sims {
		if s == nil || s.NumEdges() == 0 {
			continue
		}
		l := graph.NewLaplacian(s)
		var sp *graph.Spectral
		var err error
		if truncK > 0 && truncK < s.N {
			sp, err = graph.TruncatedSpectral(l, truncK, rng)
		} else {
			sp, err = graph.ExactSpectral(l)
		}
		if err != nil {
			return nil, fmt.Errorf("core: eigendecomposing mode %d Laplacian: %w", n, err)
		}
		out[n] = sp
	}
	return out, nil
}

// Objective evaluates Eq. (4)'s augmented objective at the current variables
// (without the Lagrangian terms): data fit + λ-regularization + trace
// smoothness. Used by tests and the examples to report fit quality.
func Objective(t *sptensor.Tensor, model *sptensor.Kruskal, sims []*graph.Similarity, lambda, alpha float64) float64 {
	res := sptensor.Residual(t, model)
	n := res.NormF()
	obj := 0.5 * n * n
	for _, f := range model.Factors {
		fn := f.NormF()
		obj += 0.5 * lambda * fn * fn
	}
	if sims != nil {
		for m, s := range sims {
			if s == nil || s.NumEdges() == 0 {
				continue
			}
			obj += 0.5 * alpha * graph.NewLaplacian(s).TraceQuadratic(model.Factors[m])
		}
	}
	return obj
}
