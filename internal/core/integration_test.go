package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"distenc/internal/mat"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
	"distenc/internal/synth"
)

// Killing tasks inside the MTTKRP stage must not change the result: the
// engine re-runs them from lineage on another machine (the paper relies on
// Spark's identical guarantee).
func TestDisTenCSurvivesTaskFailures(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1500, 51)
	opts := Options{Rank: 3, MaxIter: 4, Tol: 0, Seed: 52}

	clean := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer clean.Close()
	want, err := CompleteDistributed(clean, d.Tensor, d.Sims, DistOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}

	faulty := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer faulty.Close()
	faulty.InjectTaskFailures("collect:mttkrp-reduce", 2)
	faulty.InjectTaskFailures("shuffle-write:mttkrp-map", 1)
	got, err := CompleteDistributed(faulty, d.Tensor, d.Sims, DistOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Metrics().TaskRetries.Load() == 0 {
		t.Fatal("no task was actually retried")
	}
	for n := range want.Model.Factors {
		if diff := mat.MaxAbsDiff(want.Model.Factors[n], got.Model.Factors[n]); diff > 1e-9 {
			t.Fatalf("mode %d differs by %v after fault recovery", n, diff)
		}
	}
}

// Property: the solver must be invariant to the storage order of the
// observed entries (the result is a function of the observation set).
func TestEntryOrderInvarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := synth.LinearFactorDataset([]int{10, 10, 10}, 2, 400, seed%100)
		opts := Options{Rank: 2, MaxIter: 4, Tol: 0, Seed: 53}
		base, err := Complete(d.Tensor, nil, opts)
		if err != nil {
			return false
		}
		// Shuffle the entries.
		shuffled := sptensor.New(d.Tensor.Dims...)
		perm := rand.New(rand.NewPCG(seed, 1)).Perm(d.Tensor.NNZ())
		for _, e := range perm {
			shuffled.Append(d.Tensor.Index(e), d.Tensor.Val[e])
		}
		got, err := Complete(shuffled, nil, opts)
		if err != nil {
			return false
		}
		for n := range base.Model.Factors {
			if mat.MaxAbsDiff(base.Model.Factors[n], got.Model.Factors[n]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: duplicating the cluster configuration (cores, serialization)
// never changes DisTenC's result, only its schedule.
func TestScheduleInvarianceProperty(t *testing.T) {
	d := synth.LinearFactorDataset([]int{15, 15, 15}, 2, 800, 54)
	opts := Options{Rank: 3, MaxIter: 3, Tol: 0, Seed: 55}
	var reference []*mat.Dense
	for i, cfg := range []rdd.Config{
		{Machines: 1, CoresPerMachine: 1},
		{Machines: 5, CoresPerMachine: 3},
		{Machines: 2, CoresPerMachine: 1, SerializeTasks: true},
		{Machines: 3, Mode: rdd.ModeMapReduce},
	} {
		c := rdd.MustNewCluster(cfg)
		res, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: opts})
		c.Close()
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if reference == nil {
			reference = res.Model.Factors
			continue
		}
		for n := range reference {
			if diff := mat.MaxAbsDiff(reference[n], res.Model.Factors[n]); diff > 1e-9 {
				t.Fatalf("config %d: mode %d differs by %v", i, n, diff)
			}
		}
	}
}

// Checkpointing the block RDD mid-algorithm is not part of DisTenC, but the
// engine pieces must compose: cache + checkpoint + shuffle in one lineage.
func TestEngineCompositionWithTensorBlocks(t *testing.T) {
	d := synth.LinearFactorDataset([]int{12, 12, 12}, 2, 600, 56)
	c := rdd.MustNewCluster(rdd.Config{Machines: 2})
	defer c.Close()
	layout := NewLayout(d.Tensor, DistOptions{Options: Options{Rank: 2}.withDefaults(), Partitions: 2})
	blocks := layout.BlocksRDD(c)
	ck, err := rdd.Checkpoint(blocks, "blocks-ck")
	if err != nil {
		t.Fatal(err)
	}
	counts := rdd.MapPartitions(ck, "count", func(tc *rdd.TaskCtx, p int, in []*TensorBlock) ([]int, error) {
		total := 0
		for _, b := range in {
			total += b.NNZ()
		}
		return []int{total}, nil
	})
	got, err := counts.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range got {
		sum += v
	}
	if sum != d.Tensor.NNZ() {
		t.Fatalf("blocks cover %d entries, want %d", sum, d.Tensor.NNZ())
	}
}
