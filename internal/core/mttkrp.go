package core

import (
	"encoding/binary"
	"fmt"
	"slices"

	"distenc/internal/mat"
	"distenc/internal/rdd"
)

// PackedRows is the MTTKRP shuffle record: every partial H_n row one map task
// sends to one reduce partition, packed as a row-id list plus a values slab
// (len(Rows)×R, row-major). Packing drops the shuffle record count from
// O(rows) gob-encoded KVs to O(P·N) slabs per map task; Mode -1 carries the
// ‖E‖²_F side-channel in Vals[0]. The type implements rdd.ArenaBinaryRecord,
// so shuffle blocks use the compact v2 binary framing below instead of gob —
// still flowing through the engine's BytesShuffled accounting, which thereby
// counts compressed wire bytes — and the shuffle fetch path decodes payloads
// into task-arena slabs instead of fresh heap allocations.
//
// v2 wire frame (see DESIGN.md §III-C.2 for the byte-level diagram):
//
//	tag(u8) mode(u16 LE) nrows(uvarint) nvals(uvarint) rows… vals…
//
// where tag is the rdd.WireFormat: WireRaw ships u32 rows + f64 values (the
// v1 layout), WireVarint ships zigzag-varint delta-coded rows + f64 values,
// and WireF32 delta rows + f32 values (widened to f64 on decode). The tag
// rides in every frame, so a decoded record re-encodes bit-identically and
// mixed-format blocks are well-defined.
type PackedRows struct {
	Mode int16
	// Wire is the frame format used on encode (zero encodes as WireRaw) and
	// observed on decode.
	Wire rdd.WireFormat
	Rows []int32
	Vals []float64
}

// AppendRecord implements rdd.BinaryRecord. It runs once per shuffle record
// on the map side's serialization path; the caller owns buf, so the only
// growth is amortized inside the little-endian append helpers.
//
//distenc:hotpath
func (p *PackedRows) AppendRecord(buf []byte) []byte {
	w := p.Wire
	if !w.Valid() {
		w = rdd.WireRaw
	}
	buf = append(buf, byte(w))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Mode))
	buf = binary.AppendUvarint(buf, uint64(len(p.Rows)))
	buf = binary.AppendUvarint(buf, uint64(len(p.Vals)))
	switch w {
	case rdd.WireRaw:
		buf = rdd.AppendRawRows(buf, p.Rows)
		buf = rdd.AppendF64Vals(buf, p.Vals)
	case rdd.WireVarint:
		buf = rdd.AppendDeltaRows(buf, p.Rows)
		buf = rdd.AppendF64Vals(buf, p.Vals)
	case rdd.WireF32:
		buf = rdd.AppendDeltaRows(buf, p.Rows)
		buf = rdd.AppendF32Vals(buf, p.Vals)
	}
	return buf
}

// DecodeRecord implements rdd.BinaryRecord, allocating the payload slices on
// the heap — the right lifetime for arena-less callers (checkpoint reads,
// the codec fuzzer).
func (p *PackedRows) DecodeRecord(data []byte) ([]byte, error) {
	return p.decode(nil, data)
}

// DecodeRecordArena implements rdd.ArenaBinaryRecord: like DecodeRecord but
// the payload slices come from the task arena, so the shuffle fetch path of
// a steady-state iteration allocates nothing.
func (p *PackedRows) DecodeRecordArena(a *rdd.Arena, data []byte) ([]byte, error) {
	return p.decode(a, data)
}

//distenc:hotpath
func (p *PackedRows) decode(a *rdd.Arena, data []byte) ([]byte, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("core: packed record truncated at header")
	}
	w := rdd.WireFormat(data[0])
	if !w.Valid() {
		return nil, fmt.Errorf("core: packed record has unknown wire tag %d", data[0])
	}
	p.Wire = w
	p.Mode = int16(binary.LittleEndian.Uint16(data[1:]))
	data = data[3:]
	nr, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("core: packed record truncated at row count")
	}
	data = data[used:]
	nv, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("core: packed record truncated at value count")
	}
	data = data[used:]
	// Bound the counts by the payload before doing arithmetic on them: nr
	// and nv come off the wire, so a naive nr*rowSize+nv*valSize length
	// check can wrap uint64 and slip a huge (or panicking) allocation past
	// it. Every wire format costs at least one byte per row (varint delta)
	// and four per value (f32), so counts above those bounds are corrupt.
	rowMin, valMin := uint64(1), uint64(8)
	if w == rdd.WireRaw {
		rowMin = 4
	}
	if w == rdd.WireF32 {
		valMin = 4
	}
	if nr > uint64(len(data))/rowMin || nv > uint64(len(data))/valMin {
		return nil, fmt.Errorf("core: packed record claims %d rows, %d values in a %d-byte payload", nr, nv, len(data))
	}
	if a != nil {
		p.Rows = a.Int32s(int(nr))
		p.Vals = a.Float64s(int(nv))
	}
	//distenc:coldpath -- heap fallback for arena-less callers (checkpoint reads, fuzzing); the shuffle fetch hot path passes an arena
	if a == nil {
		p.Rows = make([]int32, nr)
		p.Vals = make([]float64, nv)
	}
	var err error
	if w == rdd.WireRaw {
		data, err = rdd.DecodeRawRows(p.Rows, data)
	} else {
		data, err = rdd.DecodeDeltaRows(p.Rows, data)
	}
	if err != nil {
		return nil, err
	}
	if w == rdd.WireF32 {
		data, err = rdd.DecodeF32Vals(p.Vals, data)
	} else {
		data, err = rdd.DecodeF64Vals(p.Vals, data)
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// fusedScratch is the per-task workspace of the fused kernel, allocated once
// per arena lifetime (stashed) rather than per entry or per mode.
type fusedScratch struct {
	// left holds the N+1 prefix products with stride R:
	// left[n·R : (n+1)·R] = ∗_{k<n} A(k)[i_k, :], so left[N·R:] is the full
	// Hadamard product whose sum is the model value.
	left []float64
	// suf is the running suffix product with the residual folded in.
	suf []float64
	// rows caches the hoisted factor-row views of the current entry.
	rows [][]float64
}

func newFusedScratch(order, rank int) *fusedScratch {
	return &fusedScratch{
		left: make([]float64, (order+1)*rank),
		suf:  make([]float64, rank),
		rows: make([][]float64, order),
	}
}

// fusedBlockMTTKRP runs the fused residual + all-mode MTTKRP kernel over one
// tensor block, accumulating mode-n partials into the flat slab acc[n]
// (len(neededRows[n])×R, addressed through the precomputed local ids in loc)
// and returning the block's ‖E‖²_F contribution.
//
// Per entry it computes the model value and all N partials with left-prefix /
// right-suffix Hadamard products over hoisted factor rows — O(N·R) instead of
// the O(N²·R) of recomputing the rank-R product once per mode — and, because
// the layout sorts each block's entries mode-major, reuses the leading prefix
// products across runs of entries that share their leading fibers (the
// paper's row-wise fiber MTTKRP, §III-C).
//
//distenc:hotpath
func fusedBlockMTTKRP(blk *TensorBlock, loc []int32, factors []*mat.Dense, rank int, acc [][]float64, s *fusedScratch) float64 {
	order := blk.Order
	nnz := blk.NNZ()
	var norm2 float64
	left := s.left
	suf := s.suf
	rows := s.rows
	for r := 0; r < rank; r++ {
		left[r] = 1
	}
	full := left[order*rank : (order+1)*rank : (order+1)*rank]
	for e := 0; e < nnz; e++ {
		idx := blk.Idx[e*order : (e+1)*order : (e+1)*order]
		lidx := loc[e*order : (e+1)*order : (e+1)*order]
		// Entries are sorted mode-major: prefixes up to the first differing
		// mode are unchanged from the previous entry and are reused as-is.
		firstDiff := 0
		if e > 0 {
			prev := blk.Idx[(e-1)*order : e*order]
			for firstDiff < order && idx[firstDiff] == prev[firstDiff] {
				firstDiff++
			}
		}
		for n := firstDiff; n < order; n++ {
			row := factors[n].Row(int(idx[n]))[:rank:rank]
			rows[n] = row
			src := left[n*rank : (n+1)*rank : (n+1)*rank]
			dst := left[(n+1)*rank : (n+2)*rank : (n+2)*rank]
			for r := 0; r < rank; r++ {
				dst[r] = src[r] * row[r]
			}
		}
		var model float64
		for r := 0; r < rank; r++ {
			model += full[r]
		}
		resid := blk.Val[e] - model
		norm2 += resid * resid
		// Backward sweep: suf = resid · ∗_{k>n} A(k)[i_k, :], so the mode-n
		// partial is left[n] ⊙ suf — every mode in one pass, 3R flops each.
		for r := 0; r < rank; r++ {
			suf[r] = resid
		}
		for n := order - 1; n >= 0; n-- {
			lf := left[n*rank : (n+1)*rank : (n+1)*rank]
			li := int(lidx[n])
			dst := acc[n][li*rank : (li+1)*rank : (li+1)*rank]
			for r := 0; r < rank; r++ {
				dst[r] += lf[r] * suf[r]
			}
			if n > 0 {
				row := rows[n]
				for r := 0; r < rank; r++ {
					suf[r] *= row[r]
				}
			}
		}
	}
	return norm2
}

// mttkrpMapScratch is the map task's stash-resident container set: the
// slice-of-slice headers and fixed-size kernel scratch survive across
// iterations in the arena stash, while the big slabs they point at are
// re-drawn from the (reset) arena every iteration.
type mttkrpMapScratch struct {
	acc   [][]float64
	out   [][]PackedRows
	rest  []int
	fused *fusedScratch
}

// mttkrpReduceScratch is the reduce task's stash-resident container set.
type mttkrpReduceScratch struct {
	slabs   [][]float64
	touched [][]bool
	out     []PackedRows
}

// Arena stash keys for the two MTTKRP closures. A lineage recompute can run
// the map closure inside a reduce attempt's arena, so the keys must be
// distinct for the two scratch sets to coexist.
const (
	mttkrpMapStash    = "core.mttkrp.map"
	mttkrpReduceStash = "core.mttkrp.reduce"
)

// MTTKRPStage executes the per-iteration distributed stage and returns the
// assembled H_n = E_(n)·U(n) matrices plus ‖E‖²_F.
//
// The map side ships each block the factor rows its non-zeros touch (counted
// as shuffle traffic — the O(T·N·M·I·R) term of Lemma 3, scaled by the wire
// format's bytes-per-value), runs the partition's planned kernel (fused or
// SpMV-chain, see planKernels) into one flat accumulator slab per mode, and
// emits one PackedRows record per (destination partition, mode): the layout's
// sorted needed-row lists make each destination a contiguous slice of the
// slab. The reduce side sums the incoming slabs into its dense row ranges and
// returns one compacted record per mode for the driver to scatter into H_n.
// The two sides run as distinct named stages — "mttkrp-map" (shuffle write)
// and "mttkrp-reduce" (collect) — so stage logs, phase attribution and
// fault-injection prefixes can tell the kernel from the reduction.
//
// All per-iteration scratch — accumulator slabs, SpMV residuals, emitted and
// compacted record payloads — comes from the task arena, which the cluster
// pools by (machine, stage, partition): after the first iteration sizes the
// slabs, steady-state iterations allocate nothing.
func MTTKRPStage(c *rdd.Cluster, blocks *rdd.RDD[*TensorBlock], l *Layout, factors []*mat.Dense, opt DistOptions) ([]*mat.Dense, float64, error) {
	rank := opt.Rank
	wire := opt.Wire
	if !wire.Valid() {
		wire = rdd.WireVarint
	}
	// Snapshot the factor slice: under speculative execution a losing
	// duplicate attempt can outlive this stage, and the solver overwrites
	// its factors slice entries (advance/advanceNoResid) as soon as the
	// stage returns. The matrices themselves are immutable once published —
	// only the slice slots are rewritten — so a shallow clone pins what the
	// zombie reads.
	factors = slices.Clone(factors)
	// Bytes of factor rows shipped to each block (at the wire format's value
	// width — the rows travel over the same compressed shuffle), plus the
	// flat accumulator slabs the kernel fills and the SpMV kernel's residual
	// slab — all live simultaneously on a real executor.
	shipSizes := make([]int64, l.parts)
	slabSizes := make([]int64, l.parts)
	for p := 0; p < l.parts; p++ {
		var rows int64
		for n := 0; n < l.order; n++ {
			rows += int64(len(l.neededRows[p][n]))
		}
		shipSizes[p] = rows * int64(rank) * wire.BytesPerVal()
		slabSizes[p] = rows * int64(rank) * 8
		if l.kernelOf[p] == KernelSpMV {
			for _, blk := range l.blockParts[p] {
				slabSizes[p] += int64(blk.NNZ()) * 8
			}
		}
	}
	bounds := l.modeBounds

	// The closure reads factors and the layout without mutating them; on a
	// real cluster the touched rows are shipped to each block, and that
	// traffic is charged explicitly below (CountShuffled(shipSizes[p]), the
	// Lemma 3 term). Broadcasting the factors instead would replicate all
	// ΣI_n·R entries to every machine and erase the row-shipment accounting
	// the experiments measure, so the read-only capture is waived, not
	// converted.
	//distenc:capture-ok factors l shipSizes slabSizes wire -- read-only; row shipment charged via CountShuffled per Lemma 3
	//distenc:hotpath
	packed := rdd.ShuffleMap(blocks, "mttkrp-map", l.parts, func(tc *rdd.TaskCtx, p int, in []*TensorBlock) ([][]PackedRows, error) {
		if err := tc.ChargeTransient(shipSizes[p] + slabSizes[p]); err != nil {
			return nil, err
		}
		tc.CountShuffled(shipSizes[p])
		a := tc.Arena()
		ms, _ := a.Stash(mttkrpMapStash).(*mttkrpMapScratch)
		//distenc:coldpath -- first-use stash setup; every later iteration reuses these containers from the arena stash
		if ms == nil {
			ms = &mttkrpMapScratch{
				acc:   make([][]float64, l.order),
				out:   make([][]PackedRows, l.parts),
				rest:  make([]int, 0, l.order),
				fused: newFusedScratch(l.order, rank),
			}
			a.SetStash(mttkrpMapStash, ms)
		}
		acc := ms.acc
		for n := range acc {
			acc[n] = a.Float64s(len(l.neededRows[p][n]) * rank)
		}
		var norm2 float64
		if l.kernelOf[p] == KernelSpMV {
			blk := l.blockParts[p][0]
			left := a.Float64s((l.order + 1) * rank)
			resid := a.Float64s(blk.NNZ())
			tmp := a.Float64s(l.order * rank)
			norm2 = spmvResiduals(blk, factors, rank, left, resid)
			for n := 0; n < l.order; n++ {
				rest := restModes(ms.rest, l.order, n)
				var perm []int32
				if l.modePerm[p] != nil {
					perm = l.modePerm[p][n]
				}
				spmvModeMTTKRP(blk, l.locIdx[p], perm, n, rest, factors, rank, resid, tmp, acc[n])
			}
		} else {
			off := 0
			for _, blk := range in {
				norm2 += fusedBlockMTTKRP(blk, l.locIdx[p][off:off+len(blk.Idx)], factors, rank, acc, ms.fused)
				off += len(blk.Idx)
			}
		}
		out := ms.out
		for i := range out {
			out[i] = out[i][:0]
		}
		//distenc:coldpath -- emission appends one record per (mode, destination) slab into stash-pooled capacity; grows only on the first iteration
		for n := 0; n < l.order; n++ {
			rows := l.neededRows[p][n]
			runs := l.rowRuns[p][n]
			for rp := 0; rp < len(runs)-1; rp++ {
				lo, hi := runs[rp], runs[rp+1]
				if lo == hi {
					continue
				}
				out[rp] = append(out[rp], PackedRows{
					Mode: int16(n),
					Wire: wire,
					Rows: rows[lo:hi],
					Vals: acc[n][lo*rank : hi*rank],
				})
			}
		}
		// The residual-norm side-channel rides to reduce partition 0.
		nv := a.Float64s(1)
		nv[0] = norm2
		//distenc:coldpath -- one record per task into stash-pooled capacity
		out[0] = append(out[0], PackedRows{Mode: -1, Wire: wire, Vals: nv})
		return out, nil
	})

	// Same boundary story as the map side: l and bounds are read-only layout
	// metadata, a few dozen ints per partition that ride along with the task.
	//distenc:capture-ok l bounds -- read-only layout metadata; negligible against the slab shuffle
	//distenc:hotpath
	reduced := rdd.MapPartitions(packed, "mttkrp-reduce", func(tc *rdd.TaskCtx, rp int, in []PackedRows) ([]PackedRows, error) {
		a := tc.Arena()
		rs, _ := a.Stash(mttkrpReduceStash).(*mttkrpReduceScratch)
		//distenc:coldpath -- first-use stash setup; every later iteration reuses these containers from the arena stash
		if rs == nil {
			rs = &mttkrpReduceScratch{
				slabs:   make([][]float64, l.order),
				touched: make([][]bool, l.order),
			}
			a.SetStash(mttkrpReduceStash, rs)
		}
		slabs, touched := rs.slabs, rs.touched
		for n := range slabs {
			slabs[n], touched[n] = nil, nil
		}
		var norm2 float64
		for _, rec := range in {
			if rec.Mode < 0 {
				norm2 += rec.Vals[0]
				continue
			}
			n := int(rec.Mode)
			lo, hi := bounds[n].Range(rp)
			//distenc:coldpath -- lazy slab init, at most one arena draw per mode
			if slabs[n] == nil {
				// One rank-wide float64 row plus one byte of touched-bitmap
				// per row — not (rank+1) full words, which over-charged the
				// bitmap 8×.
				if err := tc.ChargeTransient(int64(hi-lo) * (int64(rank)*8 + 1)); err != nil {
					return nil, err
				}
				slabs[n] = a.Float64s((hi - lo) * rank)
				touched[n] = a.Bools(hi - lo)
			}
			for i, row := range rec.Rows {
				li := int(row) - lo
				touched[n][li] = true
				dst := slabs[n][li*rank : (li+1)*rank : (li+1)*rank]
				src := rec.Vals[i*rank : (i+1)*rank : (i+1)*rank]
				for r := 0; r < rank; r++ {
					dst[r] += src[r]
				}
			}
		}
		out := rs.out[:0]
		//distenc:coldpath -- compaction runs per touched row into arena slabs, not per incoming value
		for n := 0; n < l.order; n++ {
			if slabs[n] == nil {
				continue
			}
			lo, _ := bounds[n].Range(rp)
			cnt := 0
			for _, t := range touched[n] {
				if t {
					cnt++
				}
			}
			rowsOut := a.Int32s(cnt)
			valsOut := a.Float64s(cnt * rank)
			ri := 0
			for li, t := range touched[n] {
				if !t {
					continue
				}
				rowsOut[ri] = int32(lo + li)
				copy(valsOut[ri*rank:(ri+1)*rank], slabs[n][li*rank:(li+1)*rank])
				ri++
			}
			out = append(out, PackedRows{Mode: int16(n), Rows: rowsOut, Vals: valsOut})
		}
		if rp == 0 {
			nv := a.Float64s(1)
			nv[0] = norm2
			//distenc:coldpath -- one record per task into stash-pooled capacity
			out = append(out, PackedRows{Mode: -1, Vals: nv})
		}
		rs.out = out
		return out, nil
	})

	recs, err := reduced.Collect()
	if err != nil {
		return nil, 0, err
	}
	hs := make([]*mat.Dense, l.order)
	for n := 0; n < l.order; n++ {
		hs[n] = mat.NewDense(l.dims[n], rank)
	}
	var norm2 float64
	for _, rec := range recs {
		if rec.Mode < 0 {
			norm2 += rec.Vals[0]
			continue
		}
		h := hs[rec.Mode]
		for i, row := range rec.Rows {
			copy(h.Row(int(row)), rec.Vals[i*rank:(i+1)*rank])
		}
	}
	return hs, norm2, nil
}
