package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"distenc/internal/mat"
	"distenc/internal/rdd"
)

// PackedRows is the MTTKRP shuffle record: every partial H_n row one map task
// sends to one reduce partition, packed as a row-id list plus a values slab
// (len(Rows)×R, row-major). Packing drops the shuffle record count from
// O(rows) gob-encoded KVs to O(P·N) slabs per map task; Mode -1 carries the
// ‖E‖²_F side-channel in Vals[0]. The type implements rdd.BinaryRecord, so
// shuffle blocks use the compact binary framing below instead of gob while
// still flowing through the engine's BytesShuffled accounting.
type PackedRows struct {
	Mode int16
	Rows []int32
	Vals []float64
}

// AppendRecord implements rdd.BinaryRecord. It runs once per shuffle record
// on the map side's serialization path; the caller owns buf, so the only
// growth is amortized inside the little-endian append helpers.
//
//distenc:hotpath
func (p *PackedRows) AppendRecord(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Mode))
	buf = binary.AppendUvarint(buf, uint64(len(p.Rows)))
	buf = binary.AppendUvarint(buf, uint64(len(p.Vals)))
	for _, r := range p.Rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	for _, v := range p.Vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeRecord implements rdd.BinaryRecord. The two slab allocations happen
// once per record, before the per-element loops.
//
//distenc:hotpath
func (p *PackedRows) DecodeRecord(data []byte) ([]byte, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("core: packed record truncated at mode")
	}
	p.Mode = int16(binary.LittleEndian.Uint16(data))
	data = data[2:]
	nr, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("core: packed record truncated at row count")
	}
	data = data[used:]
	nv, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("core: packed record truncated at value count")
	}
	data = data[used:]
	// Bound the counts by the payload before doing arithmetic on them: nr
	// and nv come off the wire, so nr*4+nv*8 can wrap uint64 and slip past a
	// naive length check straight into a huge (or panicking) allocation.
	if nr > uint64(len(data))/4 || nv > uint64(len(data))/8 {
		return nil, fmt.Errorf("core: packed record claims %d rows, %d values in a %d-byte payload", nr, nv, len(data))
	}
	if uint64(len(data)) < nr*4+nv*8 {
		return nil, fmt.Errorf("core: packed record payload %d bytes, want %d", len(data), nr*4+nv*8)
	}
	p.Rows = make([]int32, nr)
	for i := range p.Rows {
		p.Rows[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
	}
	data = data[nr*4:]
	p.Vals = make([]float64, nv)
	for i := range p.Vals {
		p.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return data[nv*8:], nil
}

// fusedScratch is the per-task workspace of the fused kernel, allocated once
// per map task rather than per entry or per mode.
type fusedScratch struct {
	// left holds the N+1 prefix products with stride R:
	// left[n·R : (n+1)·R] = ∗_{k<n} A(k)[i_k, :], so left[N·R:] is the full
	// Hadamard product whose sum is the model value.
	left []float64
	// suf is the running suffix product with the residual folded in.
	suf []float64
	// rows caches the hoisted factor-row views of the current entry.
	rows [][]float64
}

func newFusedScratch(order, rank int) *fusedScratch {
	return &fusedScratch{
		left: make([]float64, (order+1)*rank),
		suf:  make([]float64, rank),
		rows: make([][]float64, order),
	}
}

// fusedBlockMTTKRP runs the fused residual + all-mode MTTKRP kernel over one
// tensor block, accumulating mode-n partials into the flat slab acc[n]
// (len(neededRows[n])×R, addressed through the precomputed local ids in loc)
// and returning the block's ‖E‖²_F contribution.
//
// Per entry it computes the model value and all N partials with left-prefix /
// right-suffix Hadamard products over hoisted factor rows — O(N·R) instead of
// the O(N²·R) of recomputing the rank-R product once per mode — and, because
// the layout sorts each block's entries mode-major, reuses the leading prefix
// products across runs of entries that share their leading fibers (the
// paper's row-wise fiber MTTKRP, §III-C).
//
//distenc:hotpath
func fusedBlockMTTKRP(blk *TensorBlock, loc []int32, factors []*mat.Dense, rank int, acc [][]float64, s *fusedScratch) float64 {
	order := blk.Order
	nnz := blk.NNZ()
	var norm2 float64
	left := s.left
	suf := s.suf
	rows := s.rows
	for r := 0; r < rank; r++ {
		left[r] = 1
	}
	full := left[order*rank : (order+1)*rank : (order+1)*rank]
	for e := 0; e < nnz; e++ {
		idx := blk.Idx[e*order : (e+1)*order : (e+1)*order]
		lidx := loc[e*order : (e+1)*order : (e+1)*order]
		// Entries are sorted mode-major: prefixes up to the first differing
		// mode are unchanged from the previous entry and are reused as-is.
		firstDiff := 0
		if e > 0 {
			prev := blk.Idx[(e-1)*order : e*order]
			for firstDiff < order && idx[firstDiff] == prev[firstDiff] {
				firstDiff++
			}
		}
		for n := firstDiff; n < order; n++ {
			row := factors[n].Row(int(idx[n]))[:rank:rank]
			rows[n] = row
			src := left[n*rank : (n+1)*rank : (n+1)*rank]
			dst := left[(n+1)*rank : (n+2)*rank : (n+2)*rank]
			for r := 0; r < rank; r++ {
				dst[r] = src[r] * row[r]
			}
		}
		var model float64
		for r := 0; r < rank; r++ {
			model += full[r]
		}
		resid := blk.Val[e] - model
		norm2 += resid * resid
		// Backward sweep: suf = resid · ∗_{k>n} A(k)[i_k, :], so the mode-n
		// partial is left[n] ⊙ suf — every mode in one pass, 3R flops each.
		for r := 0; r < rank; r++ {
			suf[r] = resid
		}
		for n := order - 1; n >= 0; n-- {
			lf := left[n*rank : (n+1)*rank : (n+1)*rank]
			li := int(lidx[n])
			dst := acc[n][li*rank : (li+1)*rank : (li+1)*rank]
			for r := 0; r < rank; r++ {
				dst[r] += lf[r] * suf[r]
			}
			if n > 0 {
				row := rows[n]
				for r := 0; r < rank; r++ {
					suf[r] *= row[r]
				}
			}
		}
	}
	return norm2
}

// MTTKRPStage executes the per-iteration distributed stage and returns the
// assembled H_n = E_(n)·U(n) matrices plus ‖E‖²_F.
//
// The map side ships each block the factor rows its non-zeros touch (counted
// as shuffle traffic — the O(T·N·M·I·R) term of Lemma 3), runs the fused
// kernel into one flat accumulator slab per mode, and emits one PackedRows
// record per (destination partition, mode): the layout's sorted needed-row
// lists make each destination a contiguous slice of the slab. The reduce side
// sums the incoming slabs into its dense row ranges and returns one compacted
// record per mode for the driver to scatter into H_n. The two sides run as
// distinct named stages — "mttkrp-map" (shuffle write) and "mttkrp-reduce"
// (collect) — so stage logs, phase attribution and fault-injection prefixes
// can tell the kernel from the reduction.
func MTTKRPStage(c *rdd.Cluster, blocks *rdd.RDD[*TensorBlock], l *Layout, factors []*mat.Dense, opt DistOptions) ([]*mat.Dense, float64, error) {
	rank := opt.Rank
	// Snapshot the factor slice: under speculative execution a losing
	// duplicate attempt can outlive this stage, and the solver overwrites
	// its factors slice entries (advance/advanceNoResid) as soon as the
	// stage returns. The matrices themselves are immutable once published —
	// only the slice slots are rewritten — so a shallow clone pins what the
	// zombie reads.
	factors = slices.Clone(factors)
	// Bytes of factor rows shipped to each block, plus the flat accumulator
	// slabs the kernel fills — both live simultaneously on a real executor,
	// and the slabs are the same size as the shipped rows.
	shipSizes := make([]int64, l.parts)
	slabSizes := make([]int64, l.parts)
	for p := 0; p < l.parts; p++ {
		var rows int64
		for n := 0; n < l.order; n++ {
			rows += int64(len(l.neededRows[p][n]))
		}
		shipSizes[p] = rows * int64(rank) * 8
		slabSizes[p] = shipSizes[p]
	}
	bounds := l.modeBounds

	// The closure reads factors and the layout without mutating them; on a
	// real cluster the touched rows are shipped to each block, and that
	// traffic is charged explicitly below (CountShuffled(shipSizes[p]), the
	// Lemma 3 term). Broadcasting the factors instead would replicate all
	// ΣI_n·R entries to every machine and erase the row-shipment accounting
	// the experiments measure, so the read-only capture is waived, not
	// converted.
	//distenc:capture-ok factors l shipSizes slabSizes -- read-only; row shipment charged via CountShuffled per Lemma 3
	//distenc:hotpath
	packed := rdd.ShuffleMap(blocks, "mttkrp-map", l.parts, func(tc *rdd.TaskCtx, p int, in []*TensorBlock) ([][]PackedRows, error) {
		if err := tc.ChargeTransient(shipSizes[p] + slabSizes[p]); err != nil {
			return nil, err
		}
		tc.CountShuffled(shipSizes[p])
		acc := make([][]float64, l.order)
		//distenc:coldpath -- slab setup, one allocation per mode, not per non-zero
		for n := range acc {
			acc[n] = make([]float64, len(l.neededRows[p][n])*rank)
		}
		var norm2 float64
		scratch := newFusedScratch(l.order, rank)
		off := 0
		for _, blk := range in {
			norm2 += fusedBlockMTTKRP(blk, l.locIdx[p][off:off+len(blk.Idx)], factors, rank, acc, scratch)
			off += len(blk.Idx)
		}
		out := make([][]PackedRows, l.parts)
		//distenc:coldpath -- emission runs per (mode, destination) slab, not per non-zero
		for n := 0; n < l.order; n++ {
			rows := l.neededRows[p][n]
			runs := l.rowRuns[p][n]
			for rp := 0; rp < len(runs)-1; rp++ {
				lo, hi := runs[rp], runs[rp+1]
				if lo == hi {
					continue
				}
				out[rp] = append(out[rp], PackedRows{
					Mode: int16(n),
					Rows: rows[lo:hi],
					Vals: acc[n][lo*rank : hi*rank],
				})
			}
		}
		// The residual-norm side-channel rides to reduce partition 0.
		out[0] = append(out[0], PackedRows{Mode: -1, Vals: []float64{norm2}})
		return out, nil
	})

	// Same boundary story as the map side: l and bounds are read-only layout
	// metadata, a few dozen ints per partition that ride along with the task.
	//distenc:capture-ok l bounds -- read-only layout metadata; negligible against the slab shuffle
	//distenc:hotpath
	reduced := rdd.MapPartitions(packed, "mttkrp-reduce", func(tc *rdd.TaskCtx, rp int, in []PackedRows) ([]PackedRows, error) {
		var norm2 float64
		slabs := make([][]float64, l.order)
		touched := make([][]bool, l.order)
		for _, rec := range in {
			if rec.Mode < 0 {
				norm2 += rec.Vals[0]
				continue
			}
			n := int(rec.Mode)
			lo, hi := bounds[n].Range(rp)
			//distenc:coldpath -- lazy slab init, at most one allocation per mode
			if slabs[n] == nil {
				// One rank-wide float64 row plus one byte of touched-bitmap
				// per row — not (rank+1) full words, which over-charged the
				// bitmap 8×.
				if err := tc.ChargeTransient(int64(hi-lo) * (int64(rank)*8 + 1)); err != nil {
					return nil, err
				}
				slabs[n] = make([]float64, (hi-lo)*rank)
				touched[n] = make([]bool, hi-lo)
			}
			for i, row := range rec.Rows {
				li := int(row) - lo
				touched[n][li] = true
				dst := slabs[n][li*rank : (li+1)*rank : (li+1)*rank]
				src := rec.Vals[i*rank : (i+1)*rank : (i+1)*rank]
				for r := 0; r < rank; r++ {
					dst[r] += src[r]
				}
			}
		}
		var out []PackedRows
		//distenc:coldpath -- compaction runs per touched row into preallocated capacity, not per incoming value
		for n := 0; n < l.order; n++ {
			if slabs[n] == nil {
				continue
			}
			lo, _ := bounds[n].Range(rp)
			cnt := 0
			for _, t := range touched[n] {
				if t {
					cnt++
				}
			}
			rowsOut := make([]int32, 0, cnt)
			valsOut := make([]float64, 0, cnt*rank)
			for li, t := range touched[n] {
				if !t {
					continue
				}
				rowsOut = append(rowsOut, int32(lo+li))
				valsOut = append(valsOut, slabs[n][li*rank:(li+1)*rank]...)
			}
			out = append(out, PackedRows{Mode: int16(n), Rows: rowsOut, Vals: valsOut})
		}
		if rp == 0 {
			out = append(out, PackedRows{Mode: -1, Vals: []float64{norm2}})
		}
		return out, nil
	})

	recs, err := reduced.Collect()
	if err != nil {
		return nil, 0, err
	}
	hs := make([]*mat.Dense, l.order)
	for n := 0; n < l.order; n++ {
		hs[n] = mat.NewDense(l.dims[n], rank)
	}
	var norm2 float64
	for _, rec := range recs {
		if rec.Mode < 0 {
			norm2 += rec.Vals[0]
			continue
		}
		h := hs[rec.Mode]
		for i, row := range rec.Rows {
			copy(h.Row(int(row)), rec.Vals[i*rank:(i+1)*rank])
		}
	}
	return hs, norm2, nil
}
