package core

import (
	"fmt"

	"distenc/internal/mat"
)

// KernelMode selects the map-side MTTKRP kernel.
type KernelMode uint8

const (
	// KernelAuto picks fused or SpMV per partition from the static cost
	// model evaluated over the partition's actual sparsity structure (the
	// default). The choice is a pure function of the layout, so clean and
	// fault-injected runs of the same problem always agree.
	KernelAuto KernelMode = iota
	// KernelFused forces the prefix/suffix Hadamard kernel everywhere.
	KernelFused
	// KernelSpMV forces the DFacTo-style SpMV-chain kernel everywhere.
	KernelSpMV
)

// String names the mode the way the -kernel CLI flag spells it.
func (k KernelMode) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelFused:
		return "fused"
	case KernelSpMV:
		return "spmv"
	}
	return fmt.Sprintf("KernelMode(%d)", uint8(k))
}

// ParseKernelMode parses a -kernel flag value.
func ParseKernelMode(s string) (KernelMode, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "fused":
		return KernelFused, nil
	case "spmv":
		return KernelSpMV, nil
	}
	return 0, fmt.Errorf("core: unknown kernel %q (want auto, fused, or spmv)", s)
}

// restModes fills rest with the order-1 modes other than n, ascending: the
// level sequence of mode n's SpMV walk below level 0.
func restModes(rest []int, order, n int) []int {
	rest = rest[:0]
	for m := 0; m < order; m++ {
		if m != n {
			rest = append(rest, m)
		}
	}
	return rest
}

// planKernels resolves the per-partition kernel choice and, for partitions
// that will run SpMV, builds the per-mode entry permutations. Called once
// from NewLayout, after entries are sorted and local ids assigned.
//
// The DFacTo reformulation (PAPERS.md) streams each mode's accumulation as a
// chain of sparse matrix-vector products instead of recomputing Hadamard
// prefixes per entry. Generalized to order N it is a flush-on-boundary walk
// over the entries re-sorted by (i_n, remaining modes ascending): the walk
// does ~2R flops per entry plus 2R per fiber boundary, versus the fused
// kernel's ~(3N−firstDiff)·R per entry — so SpMV wins exactly when fibers
// are long (few boundaries) and loses on scattered tensors where every
// entry is its own fiber. Both costs are computable exactly from the static
// layout, which is what the auto selector does; the margin below biases
// toward fused so auto is never slower than fused beyond noise even when
// the flop model flatters SpMV's cache-hostile permuted access pattern.
func (l *Layout) planKernels(kernel KernelMode) {
	l.kernelOf = make([]KernelMode, l.parts)
	l.modePerm = make([][][]int32, l.parts)
	if kernel == KernelFused {
		for p := range l.kernelOf {
			l.kernelOf[p] = KernelFused
		}
		return
	}
	for p := 0; p < l.parts; p++ {
		l.kernelOf[p] = KernelFused
		if len(l.blockParts[p]) != 1 {
			// The SpMV walk streams one contiguous entry slab; multi-block
			// partitions (not produced by either partitioner today) keep the
			// fused kernel.
			continue
		}
		blk := l.blockParts[p][0]
		nnz := blk.NNZ()
		if nnz == 0 {
			continue
		}
		perms, spmvCost := l.buildModePerms(p, blk)
		if kernel == KernelSpMV || spmvCost*10 < l.fusedCost(blk)*9 {
			l.kernelOf[p] = KernelSpMV
			l.modePerm[p] = perms
		}
	}
}

// fusedCost estimates the fused kernel's work on blk in units of R flops:
// per entry, the forward prefix rebuild from the first differing mode, the
// model-value sum, the N-mode scatter, and the suffix chain.
func (l *Layout) fusedCost(blk *TensorBlock) int64 {
	order := blk.Order
	nnz := blk.NNZ()
	var cost int64
	for e := 0; e < nnz; e++ {
		fd := 0
		if e > 0 {
			idx := blk.Idx[e*order : (e+1)*order]
			prev := blk.Idx[(e-1)*order : e*order]
			for fd < order && idx[fd] == prev[fd] {
				fd++
			}
		}
		cost += int64(3*order - fd)
	}
	return cost
}

// buildModePerms builds, for every mode of partition p's single block, the
// stable counting-sort permutation ordering entries by that mode's local row
// id (mode 0's canonical order is already correct, so its perm is nil), and
// returns them together with the SpMV walk's modeled cost in R-flop units:
// the residual pass plus, per mode, 2 flops per entry and 2 per fold.
func (l *Layout) buildModePerms(p int, blk *TensorBlock) ([][]int32, int64) {
	order := blk.Order
	nnz := blk.NNZ()
	loc := l.locIdx[p]
	perms := make([][]int32, order)
	var cost int64
	// Residual pass: same prefix reuse as the fused kernel's forward sweep.
	for e := 0; e < nnz; e++ {
		fd := 0
		if e > 0 {
			idx := blk.Idx[e*order : (e+1)*order]
			prev := blk.Idx[(e-1)*order : e*order]
			for fd < order && idx[fd] == prev[fd] {
				fd++
			}
		}
		cost += int64(order - fd + 1)
	}
	rest := make([]int, 0, order-1)
	cnt := make([]int32, 0)
	for n := 0; n < order; n++ {
		var perm []int32
		if n > 0 {
			// Stable counting sort of the canonical (lexicographic) entry
			// order by the mode-n local id: stability preserves the relative
			// lex order of the remaining modes, which is exactly the walk's
			// level sequence [n, others ascending].
			rows := len(l.neededRows[p][n])
			if cap(cnt) < rows+1 {
				cnt = make([]int32, rows+1)
			}
			cnt = cnt[:rows+1]
			clear(cnt)
			for e := 0; e < nnz; e++ {
				cnt[loc[e*order+n]+1]++
			}
			for i := 1; i <= rows; i++ {
				cnt[i] += cnt[i-1]
			}
			perm = make([]int32, nnz)
			for e := 0; e < nnz; e++ {
				li := loc[e*order+n]
				perm[cnt[li]] = int32(e)
				cnt[li]++
			}
			perms[n] = perm
		}
		// Walk the permuted order once to count fiber-boundary folds.
		rest = restModes(rest, order, n)
		topLevel := order - 1
		folds := int64(topLevel) // end-of-stream flush
		prevE := -1
		for k := 0; k < nnz; k++ {
			e := k
			if perm != nil {
				e = int(perm[k])
			}
			if prevE >= 0 {
				idx := blk.Idx[e*order : (e+1)*order]
				pidx := blk.Idx[prevE*order : (prevE+1)*order]
				d := 0
				if idx[n] == pidx[n] {
					d = 1
					for d <= topLevel && idx[rest[d-1]] == pidx[rest[d-1]] {
						d++
					}
				}
				if d <= topLevel {
					folds += int64(topLevel - d + 1)
				}
			}
			prevE = e
		}
		cost += 2*int64(nnz) + 2*folds
	}
	return perms, cost
}

// spmvResiduals is pass 1 of the SpMV-chain kernel: it computes every
// entry's residual E = Ω∗(T−[[A]]) into resid (canonical entry order) and
// returns the block's ‖E‖²_F contribution. The forward prefix-product reuse
// and the summation order are identical to the fused kernel's, so the two
// kernels produce bit-identical residual norms. left is (order+1)·rank
// scratch.
//
//distenc:hotpath
func spmvResiduals(blk *TensorBlock, factors []*mat.Dense, rank int, left, resid []float64) float64 {
	order := blk.Order
	nnz := blk.NNZ()
	var norm2 float64
	for r := 0; r < rank; r++ {
		left[r] = 1
	}
	full := left[order*rank : (order+1)*rank : (order+1)*rank]
	for e := 0; e < nnz; e++ {
		idx := blk.Idx[e*order : (e+1)*order : (e+1)*order]
		firstDiff := 0
		if e > 0 {
			prev := blk.Idx[(e-1)*order : e*order]
			for firstDiff < order && idx[firstDiff] == prev[firstDiff] {
				firstDiff++
			}
		}
		for n := firstDiff; n < order; n++ {
			row := factors[n].Row(int(idx[n]))[:rank:rank]
			src := left[n*rank : (n+1)*rank : (n+1)*rank]
			dst := left[(n+1)*rank : (n+2)*rank : (n+2)*rank]
			for r := 0; r < rank; r++ {
				dst[r] = src[r] * row[r]
			}
		}
		var model float64
		for r := 0; r < rank; r++ {
			model += full[r]
		}
		re := blk.Val[e] - model
		resid[e] = re
		norm2 += re * re
	}
	return norm2
}

// spmvModeMTTKRP is pass 2 for one mode: it streams the entries in perm
// order (nil perm = canonical order, valid for mode 0) and accumulates the
// mode's MTTKRP partials into accN through the chained-SpMV walk.
//
// The level sequence is [mode, rest[0], rest[1], …]; tmp[l·R:(l+1)·R] is the
// partial product owned by the current length-l level prefix, l = 1…N−1.
// Per entry the leaf accumulator gains resid·A(rest[N−2])[i]; when the walk
// crosses a fiber boundary at level d it folds each closing accumulator into
// its parent times the parent level's factor row — two chained SpMVs for
// order 3, N−1 of them in general — and the level-1 close scatters into
// accN. Entries sharing long fibers thus pay ~2R flops instead of the fused
// kernel's ~3N·R.
//
//distenc:hotpath
func spmvModeMTTKRP(blk *TensorBlock, loc []int32, perm []int32, mode int, rest []int,
	factors []*mat.Dense, rank int, resid, tmp []float64, accN []float64) {
	order := blk.Order
	nnz := blk.NNZ()
	if nnz == 0 {
		return
	}
	topLevel := order - 1
	clear(tmp[:order*rank])
	leafMode := rest[topLevel-1]
	leaf := tmp[topLevel*rank : order*rank : order*rank]
	prevE := -1
	for k := 0; k < nnz; k++ {
		e := k
		if perm != nil {
			e = int(perm[k])
		}
		idx := blk.Idx[e*order : (e+1)*order : (e+1)*order]
		if prevE >= 0 {
			pidx := blk.Idx[prevE*order : (prevE+1)*order]
			d := 0
			if idx[mode] == pidx[mode] {
				d = 1
				for d <= topLevel && idx[rest[d-1]] == pidx[rest[d-1]] {
					d++
				}
			}
			for lv := topLevel; lv > d; lv-- {
				spmvFlush(tmp, lv, pidx, prevE, loc, mode, rest, factors, rank, accN)
			}
		}
		row := factors[leafMode].Row(int(idx[leafMode]))[:rank:rank]
		re := resid[e]
		for r := 0; r < rank; r++ {
			leaf[r] += re * row[r]
		}
		prevE = e
	}
	pidx := blk.Idx[prevE*order : (prevE+1)*order]
	for lv := topLevel; lv >= 1; lv-- {
		spmvFlush(tmp, lv, pidx, prevE, loc, mode, rest, factors, rank, accN)
	}
}

// spmvFlush closes level lv's accumulator: levels ≥ 2 fold into the parent
// times the parent level's factor row at the closing entry; level 1
// scatters into the mode's accumulator slab and completes the chain.
//
//distenc:hotpath
func spmvFlush(tmp []float64, lv int, pidx []int32, prevE int, loc []int32, mode int, rest []int,
	factors []*mat.Dense, rank int, accN []float64) {
	src := tmp[lv*rank : (lv+1)*rank : (lv+1)*rank]
	if lv >= 2 {
		pm := rest[lv-2]
		row := factors[pm].Row(int(pidx[pm]))[:rank:rank]
		dst := tmp[(lv-1)*rank : lv*rank : lv*rank]
		for r := 0; r < rank; r++ {
			dst[r] += src[r] * row[r]
		}
	} else {
		li := int(loc[prevE*len(pidx)+mode])
		dst := accN[li*rank : (li+1)*rank : (li+1)*rank]
		for r := 0; r < rank; r++ {
			dst[r] += src[r]
		}
	}
	clear(src)
}
