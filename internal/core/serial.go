package core

import (
	"math"
	"time"

	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/sptensor"
)

// Complete runs the CP-based tensor completion ADMM (Algorithm 1) on a
// single machine, with the paper's §III optimizations applied: the spectral
// form of the B update (Eq. 7), Gram-matrix products instead of explicit
// Khatri-Rao (Eq. 12), and the residual-tensor identity (Eq. 16) instead of
// materializing the completed dense tensor.
//
// sims may be nil (no auxiliary information) or hold one similarity per mode
// with nil entries for modes without auxiliary data.
func Complete(t *sptensor.Tensor, sims []*graph.Similarity, opt Options) (*Result, error) {
	return complete(t, sims, opt, nil)
}

// Resume continues an interrupted Complete run from the latest checkpoint in
// opt.CheckpointDir (see Options.CheckpointEvery). The restored state is
// bit-identical to the state the writing run held, and the solver arithmetic
// is deterministic, so the resumed run's factors match the uninterrupted
// run's exactly. Returns ErrNoCheckpoint when the directory holds none.
func Resume(t *sptensor.Tensor, sims []*graph.Similarity, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	ck, err := loadCheckpoint(opt.CheckpointDir, t, opt)
	if err != nil {
		return nil, err
	}
	return complete(t, sims, opt, ck)
}

// complete is the shared serial loop; a non-nil ck replaces the fresh
// initialization with checkpointed state and starts at its iteration.
func complete(t *sptensor.Tensor, sims []*graph.Similarity, opt Options, ck *checkpointState) (*Result, error) {
	opt = opt.withDefaults()
	if err := validate(t, sims); err != nil {
		return nil, err
	}
	if err := validateOptions(t, opt); err != nil {
		return nil, err
	}
	sp, err := spectra(sims, opt.TruncK, opt.Seed)
	if err != nil {
		return nil, err
	}
	st := newSolverState(t, sp, opt)
	if ck != nil {
		st.restore(ck, false)
	}
	start := time.Now()
	for ; st.iter < opt.MaxIter; st.iter++ {
		iterStart := time.Now()
		grams := make([]*mat.Dense, t.Order())
		for n, f := range st.factors {
			grams[n] = mat.Gram(f)
		}
		gramDur := time.Since(iterStart)
		// The MTTKRP kernel and the residual refresh are the serial
		// counterparts of DisTenC's map stage, so both count toward the
		// MTTKRPMap phase and the timing breakdown stays comparable across
		// solvers.
		var kernel time.Duration
		next, bs := st.iterateWith(grams, func(mode int) *mat.Dense {
			t0 := time.Now()
			h := sptensor.MTTKRP(st.resid, st.factors, mode, st.scratch)
			kernel += time.Since(t0)
			return h
		})
		delta := st.advance(next, bs)
		if err := st.maybeCheckpoint(); err != nil {
			return nil, err
		}
		kernel += st.residDur
		iterDur := time.Since(iterStart)
		st.phases = append(st.phases, metrics.PhaseTimes{
			Iter:      st.iter,
			MTTKRPMap: kernel,
			Gram:      gramDur,
			Driver:    iterDur - kernel - gramDur,
			Total:     iterDur,
		})
		point := metrics.ConvergencePoint{
			Iter:      st.iter,
			Elapsed:   time.Since(start),
			TrainRMSE: st.trainRMSE(),
			MaxDelta:  delta,
		}
		st.trace = append(st.trace, point)
		if opt.OnIteration != nil {
			opt.OnIteration(point)
		}
		if st.stop(delta) {
			st.converged = true
			st.iter++
			break
		}
	}
	return st.result(start), nil
}

// solverState carries the ADMM variables shared by the serial solver and the
// driver side of DisTenC.
type solverState struct {
	t       *sptensor.Tensor
	opt     Options
	sp      []*graph.Spectral
	factors []*mat.Dense // A(n)
	aux     []*mat.Dense // B(n)
	mult    []*mat.Dense // Y(n)
	resid   *sptensor.Tensor
	eta     float64
	iter    int

	consensus float64
	converged bool
	trace     metrics.Trace
	phases    metrics.PhaseBreakdown
	residDur  time.Duration // time of the last residual refresh in advance
	scratch   []float64
}

func newSolverState(t *sptensor.Tensor, sp []*graph.Spectral, opt Options) *solverState {
	st := &solverState{
		t:       t,
		opt:     opt,
		sp:      sp,
		factors: initFactors(t.Dims, opt.Rank, opt.Seed),
		eta:     opt.Eta0,
		scratch: make([]float64, opt.Rank),
	}
	ApplyInitScale(st.factors, t, opt)
	st.aux = make([]*mat.Dense, t.Order())
	st.mult = make([]*mat.Dense, t.Order())
	for n, d := range t.Dims {
		st.aux[n] = mat.NewDense(d, opt.Rank)
		st.mult[n] = mat.NewDense(d, opt.Rank)
	}
	st.resid = sptensor.Residual(t, sptensor.NewKruskal(st.factors...))
	return st
}

// iterateWith performs one Jacobi-style outer iteration: every mode's B and
// A updates are computed from the iteration-t variables (as Algorithm 3
// lines 7–12 do, with F and H cached per mode), returning the new factors
// and aux variables without committing them. grams are the per-mode
// self-products A(n)ᵀA(n); mttkrp supplies E_(n)·U(n) (in-process for the
// serial solver, via the engine for DisTenC).
func (st *solverState) iterateWith(grams []*mat.Dense, mttkrp func(mode int) *mat.Dense) (next, bs []*mat.Dense) {
	order := st.t.Order()
	next = make([]*mat.Dense, order)
	bs = make([]*mat.Dense, order)
	for n := 0; n < order; n++ {
		bs[n] = st.updateAux(n)
		// F_n = U(n)ᵀU(n) via the Hadamard-of-Grams identity (Eq. 12).
		fn := sptensor.GramProduct(grams, n)
		// H_n = A(n)·F_n + E_(n)·U(n): the Eq. (16) residual form.
		h := mat.Mul(st.factors[n], fn)
		h = mat.AddMat(h, mttkrp(n))
		// A(n) ← (H + ηB + Y)(F + λI + ηI)⁻¹  (Algorithm 3 line 11).
		h.AddScaled(st.eta, bs[n])
		h.AddScaled(1, st.mult[n])
		lhs := fn.Clone()
		for i := 0; i < lhs.Rows(); i++ {
			lhs.Add(i, i, st.opt.Lambda+st.eta)
		}
		inv, err := mat.InverseSPD(lhs)
		if err != nil {
			// F + (λ+η)I is SPD by construction; reaching this means the
			// factors carry non-finite values and iteration must stop.
			panic("core: normal-equation matrix not SPD: " + err.Error())
		}
		next[n] = mat.Mul(h, inv)
	}
	return next, bs
}

// updateAux computes B(n) ← (ηI + αL_n)⁻¹(ηA(n) − Y(n)) via the spectral
// machinery; without auxiliary information L = 0 and the update reduces to
// (ηA − Y)/η.
func (st *solverState) updateAux(n int) *mat.Dense {
	x := st.factors[n].Clone().Scale(st.eta)
	x.AddScaled(-1, st.mult[n])
	var b *mat.Dense
	if st.sp == nil || st.sp[n] == nil {
		b = x.Scale(1 / st.eta)
	} else {
		b = st.sp[n].InverseApply(st.opt.AlphaFor(n), st.eta, x)
	}
	if st.opt.NonNegative {
		data := b.Data()
		for i, v := range data {
			if v < 0 {
				data[i] = 0
			}
		}
	}
	return b
}

// advance commits the iteration: Y and η updates (Algorithm 3 lines 12/14),
// the residual refresh E = Ω∗(T − [[A_{t+1}]]) (§III-D; see DESIGN.md on the
// Algorithm 3 line-13 typo), and returns the convergence value
// max_n ‖A_{t+1}−A_t‖²_F.
func (st *solverState) advance(next, bs []*mat.Dense) float64 {
	d := st.advanceNoResid(next, bs)
	t0 := time.Now()
	st.resid = sptensor.Residual(st.t, sptensor.NewKruskal(st.factors...))
	st.residDur = time.Since(t0)
	return d
}

// advanceNoResid is advance without the driver-side residual refresh —
// DisTenC's stage recomputes residuals on the cluster instead (§III-D).
// It also records the consensus gap max_n ‖A(n)−B(n)‖_F for the Algorithm 1
// stopping criterion.
func (st *solverState) advanceNoResid(next, bs []*mat.Dense) float64 {
	var maxDelta, consensus float64
	for n := range st.factors {
		d := mat.SubMat(next[n], st.factors[n]).NormF()
		maxDelta = math.Max(maxDelta, d*d)
		gap := mat.SubMat(bs[n], next[n])
		consensus = math.Max(consensus, gap.NormF())
		// Y(n) ← Y(n) + η(B(n) − A(n)).
		st.mult[n].AddScaled(st.eta, gap)
		st.factors[n] = next[n]
		st.aux[n] = bs[n]
	}
	st.eta = math.Min(st.opt.Rho*st.eta, st.opt.EtaMax)
	st.consensus = consensus
	return maxDelta
}

// stop reports whether either stopping criterion fired for delta.
func (st *solverState) stop(delta float64) bool {
	if delta < st.opt.Tol {
		return true
	}
	return st.opt.ConsensusTol > 0 && st.consensus < st.opt.ConsensusTol
}

// ApplyInitScale rescales the random initialization so the initial model's
// mean prediction over the observed cells matches the observed mean (unless
// opt.InitScale pins an explicit scale). With nearly all cells missing, the
// EM-style fill-in otherwise spends many iterations just finding the data's
// scale. Exported so every baseline starts from the identical point.
func ApplyInitScale(factors []*mat.Dense, t *sptensor.Tensor, opt Options) {
	scale := opt.InitScale
	if scale == 0 {
		if t.NNZ() == 0 {
			return
		}
		model := sptensor.NewKruskal(factors...)
		var predSum, obsSum float64
		for e := 0; e < t.NNZ(); e++ {
			predSum += model.At(t.Index(e))
			obsSum += t.Val[e]
		}
		if predSum == 0 || obsSum/predSum <= 0 {
			return
		}
		scale = math.Pow(obsSum/predSum, 1/float64(len(factors)))
	}
	if scale == 1 {
		return
	}
	for _, f := range factors {
		f.Scale(scale)
	}
}

func (st *solverState) trainRMSE() float64 {
	if st.t.NNZ() == 0 {
		return 0
	}
	return st.resid.NormF() / math.Sqrt(float64(st.t.NNZ()))
}

func (st *solverState) result(start time.Time) *Result {
	return &Result{
		Model:     sptensor.NewKruskal(st.factors...),
		Aux:       st.aux,
		Iters:     st.iter,
		Converged: st.converged,
		Trace:     st.trace,
		Phases:    st.phases,
		Elapsed:   time.Since(start),
	}
}
