package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"distenc/internal/rdd"
)

// FuzzDecodeRecord hammers the shuffle codec with arbitrary bytes: a decode
// must either error or return a record that re-encodes to the same canonical
// form — and must never panic or allocate from attacker-controlled counts
// (the uint64-wrap bug where nr*4+nv*8 overflowed past the length check).
// The v2 frame carries its wire format in the leading tag byte, so the
// fuzzer exercises all three layouts: raw, delta-varint rows (including
// truncated varints and delta chains that overflow int32), and float32
// values (including the float32↔float64 widening corners). CI runs this
// target for a 30-second smoke on every push.
func FuzzDecodeRecord(f *testing.F) {
	// Well-formed seeds: a typical record in every wire format, the Mode -1
	// norm² side-channel, and an empty record.
	for _, w := range []rdd.WireFormat{rdd.WireRaw, rdd.WireVarint, rdd.WireF32} {
		full := PackedRows{Mode: 2, Wire: w, Rows: []int32{1, 5, 9}, Vals: []float64{1.5, -2, 0, 3.25, 8, 13}}
		f.Add(full.AppendRecord(nil))
		norm := PackedRows{Mode: -1, Wire: w, Vals: []float64{42}}
		f.Add(norm.AppendRecord(nil))
	}
	f.Add((&PackedRows{}).AppendRecord(nil))
	// Float corners through the lossy format: NaN, infinities, subnormals,
	// and values that round on the f64→f32 narrowing.
	corners := PackedRows{Mode: 1, Wire: rdd.WireF32, Rows: []int32{0},
		Vals: []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e-310, math.Pi, -0.0}}
	f.Add(corners.AppendRecord(nil))
	// Non-monotone rows: deltas go negative (zigzag path).
	backward := PackedRows{Mode: 0, Wire: rdd.WireVarint, Rows: []int32{100, 3, 50}, Vals: nil}
	f.Add(backward.AppendRecord(nil))
	// Truncations at every header boundary (tag, mode, counts).
	f.Add([]byte{})
	f.Add([]byte{byte(rdd.WireVarint)})
	f.Add([]byte{byte(rdd.WireVarint), 7})
	f.Add([]byte{byte(rdd.WireVarint), 7, 0})
	f.Add([]byte{byte(rdd.WireVarint), 7, 0, 3})
	// Unknown wire tag.
	f.Add([]byte{0xEE, 7, 0, 0, 0})
	// Crafted wrap: nr = 2^62 makes nr*4 ≡ 0 (mod 2^64), so a naive
	// "len(data) < nr*4+nv*8" check passes and the alloc of nr rows OOMs.
	wrap := []byte{byte(rdd.WireRaw), 3, 0}
	wrap = binary.AppendUvarint(wrap, 1<<62)
	wrap = binary.AppendUvarint(wrap, 0)
	f.Add(wrap)
	wrapPair := []byte{byte(rdd.WireRaw), 3, 0}
	wrapPair = binary.AppendUvarint(wrapPair, 1<<62) // nr·4 wraps to 0
	wrapPair = binary.AppendUvarint(wrapPair, 1)     // nv·8 = 8 survives the naive check
	wrapPair = append(wrapPair, make([]byte, 8)...)
	f.Add(wrapPair)
	// Varint-specific corruption: a truncated mid-delta varint, and a delta
	// chain whose running sum overflows int32.
	trunc := []byte{byte(rdd.WireVarint), 0, 0}
	trunc = binary.AppendUvarint(trunc, 2)
	trunc = binary.AppendUvarint(trunc, 0)
	trunc = binary.AppendVarint(trunc, 5)
	trunc = append(trunc, 0x80) // continuation byte with no terminator
	f.Add(trunc)
	over := []byte{byte(rdd.WireVarint), 0, 0}
	over = binary.AppendUvarint(over, 2)
	over = binary.AppendUvarint(over, 0)
	over = binary.AppendVarint(over, math.MaxInt32)
	over = binary.AppendVarint(over, 10) // running sum exceeds int32
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		var p PackedRows
		rest, err := p.DecodeRecord(data)
		if err != nil {
			return
		}
		used := len(data) - len(rest)
		if used < 3 || used > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", used, len(data))
		}
		// A record the decoder accepted must round-trip through the encoder
		// bit-for-bit (the uvarint input may be non-minimal, so compare two
		// canonical encodings rather than the raw input).
		re := p.AppendRecord(nil)
		var q PackedRows
		rest2, err := q.DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("canonical encoding left %d trailing bytes", len(rest2))
		}
		if !bytes.Equal(re, q.AppendRecord(nil)) {
			t.Fatalf("round-trip not stable: %+v vs %+v", p, q)
		}
		if q.Mode != p.Mode || q.Wire != p.Wire || len(q.Rows) != len(p.Rows) || len(q.Vals) != len(p.Vals) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", p, q)
		}
	})
}

// TestCodecRoundTripAllWires pins the lossless (and exactly-representable
// lossy) round-trip per wire format, including arena-backed decode, which
// must agree byte-for-byte with the heap decode.
func TestCodecRoundTripAllWires(t *testing.T) {
	recs := []PackedRows{
		{Mode: 0, Rows: []int32{0, 1, 2, 3}, Vals: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
		{Mode: 3, Rows: []int32{7, 7000, 7001, 2_000_000_000}, Vals: []float64{-0.5, 0.25}},
		{Mode: -1, Vals: []float64{42.125}},
		{Mode: 1, Rows: []int32{500, 3, 499}, Vals: nil}, // unsorted: negative deltas
	}
	var arena rdd.Arena
	for _, w := range []rdd.WireFormat{rdd.WireRaw, rdd.WireVarint, rdd.WireF32} {
		for _, rec := range recs {
			rec.Wire = w
			enc := rec.AppendRecord(nil)
			var heap, ar PackedRows
			rest, err := heap.DecodeRecord(enc)
			if err != nil {
				t.Fatalf("wire=%v: decode: %v", w, err)
			}
			if len(rest) != 0 {
				t.Fatalf("wire=%v: %d trailing bytes", w, len(rest))
			}
			restA, err := ar.DecodeRecordArena(&arena, enc)
			if err != nil {
				t.Fatalf("wire=%v: arena decode: %v", w, err)
			}
			if len(restA) != 0 {
				t.Fatalf("wire=%v: arena decode left %d trailing bytes", w, len(restA))
			}
			if !bytes.Equal(heap.AppendRecord(nil), ar.AppendRecord(nil)) {
				t.Fatalf("wire=%v: arena and heap decodes disagree: %+v vs %+v", w, heap, ar)
			}
			if heap.Mode != rec.Mode || len(heap.Rows) != len(rec.Rows) || len(heap.Vals) != len(rec.Vals) {
				t.Fatalf("wire=%v: decoded %+v, want %+v", w, heap, rec)
			}
			for i, r := range rec.Rows {
				if heap.Rows[i] != r {
					t.Fatalf("wire=%v: row %d = %d, want %d", w, i, heap.Rows[i], r)
				}
			}
			for i, v := range rec.Vals {
				want := v
				if w == rdd.WireF32 {
					want = float64(float32(v))
				}
				if math.Float64bits(heap.Vals[i]) != math.Float64bits(want) {
					t.Fatalf("wire=%v: val %d = %v, want %v", w, i, heap.Vals[i], want)
				}
			}
		}
	}
}

// The wrap seeds above must be rejected (not just not-crash): a success would
// mean the decoder believed a multi-exabyte claim from a tiny payload. Every
// wire format gets the treatment — raw rows cost 4 bytes, varint rows at
// least 1, f32 values 4 — mirroring the original uint64-wrap fix.
func TestDecodeRecordRejectsWrappedCounts(t *testing.T) {
	for _, w := range []rdd.WireFormat{rdd.WireRaw, rdd.WireVarint, rdd.WireF32} {
		for _, nr := range []uint64{1 << 62, 1<<64 - 1, 1 << 40} {
			data := []byte{byte(w), 0, 0}
			data = binary.AppendUvarint(data, nr)
			data = binary.AppendUvarint(data, 1)
			data = append(data, make([]byte, 8)...)
			var p PackedRows
			if _, err := p.DecodeRecord(data); err == nil {
				t.Errorf("wire=%v nr=%d: decode accepted a wrapped row count", w, nr)
			}
		}
		// Same class of attack through the value count.
		for _, nv := range []uint64{1 << 61, 1<<64 - 1, 1 << 40} {
			data := []byte{byte(w), 0, 0}
			data = binary.AppendUvarint(data, 0)
			data = binary.AppendUvarint(data, nv)
			data = append(data, make([]byte, 16)...)
			var p PackedRows
			if _, err := p.DecodeRecord(data); err == nil {
				t.Errorf("wire=%v nv=%d: decode accepted a wrapped value count", w, nv)
			}
		}
	}
}

// TestDecodeRecordRejectsDeltaOverflow pins the delta-chain overflow guard:
// a varint row stream whose running sum leaves int32 range must be rejected,
// not silently wrapped into a bogus row index.
func TestDecodeRecordRejectsDeltaOverflow(t *testing.T) {
	data := []byte{byte(rdd.WireVarint), 0, 0}
	data = binary.AppendUvarint(data, 2)
	data = binary.AppendUvarint(data, 0)
	data = binary.AppendVarint(data, math.MaxInt32)
	data = binary.AppendVarint(data, 1)
	var p PackedRows
	if _, err := p.DecodeRecord(data); err == nil {
		t.Error("decode accepted a delta chain overflowing int32")
	}
	// A single absurd delta is rejected even before the running sum check.
	data = []byte{byte(rdd.WireVarint), 0, 0}
	data = binary.AppendUvarint(data, 1)
	data = binary.AppendUvarint(data, 0)
	data = binary.AppendVarint(data, math.MaxInt64)
	if _, err := p.DecodeRecord(data); err == nil {
		t.Error("decode accepted a delta beyond the 33-bit bound")
	}
}
