package core

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeRecord hammers the shuffle codec with arbitrary bytes: a decode
// must either error or return a record that re-encodes to the same canonical
// form — and must never panic or allocate from attacker-controlled counts
// (the uint64-wrap bug where nr*4+nv*8 overflowed past the length check).
// CI runs this target for a 30-second smoke on every push.
func FuzzDecodeRecord(f *testing.F) {
	// Well-formed seeds: a typical record, the Mode -1 norm² side-channel,
	// and an empty record.
	full := PackedRows{Mode: 2, Rows: []int32{1, 5, 9}, Vals: []float64{1.5, -2, 0, 3.25, 8, 13}}
	f.Add(full.AppendRecord(nil))
	norm := PackedRows{Mode: -1, Vals: []float64{42}}
	f.Add(norm.AppendRecord(nil))
	f.Add((&PackedRows{}).AppendRecord(nil))
	// Truncations at every header boundary.
	f.Add([]byte{})
	f.Add([]byte{7})
	f.Add([]byte{7, 0})
	f.Add([]byte{7, 0, 3})
	// Crafted wrap: nr = 2^62 makes nr*4 ≡ 0 (mod 2^64), so a naive
	// "len(data) < nr*4+nv*8" check passes and the alloc of nr rows OOMs.
	var wrap []byte
	wrap = binary.LittleEndian.AppendUint16(wrap, 3)
	wrap = binary.AppendUvarint(wrap, 1<<62)
	wrap = binary.AppendUvarint(wrap, 0)
	f.Add(wrap)
	var wrapPair []byte
	wrapPair = binary.LittleEndian.AppendUint16(wrapPair, 3)
	wrapPair = binary.AppendUvarint(wrapPair, 1<<62) // nr·4 wraps to 0
	wrapPair = binary.AppendUvarint(wrapPair, 1)     // nv·8 = 8 survives the naive check
	wrapPair = append(wrapPair, make([]byte, 8)...)
	f.Add(wrapPair)

	f.Fuzz(func(t *testing.T, data []byte) {
		var p PackedRows
		rest, err := p.DecodeRecord(data)
		if err != nil {
			return
		}
		used := len(data) - len(rest)
		if used < 2 || used > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", used, len(data))
		}
		// A record the decoder accepted must round-trip through the encoder
		// bit-for-bit (the uvarint input may be non-minimal, so compare two
		// canonical encodings rather than the raw input).
		re := p.AppendRecord(nil)
		var q PackedRows
		rest2, err := q.DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("canonical encoding left %d trailing bytes", len(rest2))
		}
		if !bytes.Equal(re, q.AppendRecord(nil)) {
			t.Fatalf("round-trip not stable: %+v vs %+v", p, q)
		}
		if q.Mode != p.Mode || len(q.Rows) != len(p.Rows) || len(q.Vals) != len(p.Vals) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", p, q)
		}
	})
}

// The wrap seeds above must be rejected (not just not-crash): a success would
// mean the decoder believed a multi-exabyte claim from a tiny payload.
func TestDecodeRecordRejectsWrappedCounts(t *testing.T) {
	for _, nr := range []uint64{1 << 62, 1<<64 - 1, 1 << 40} {
		var data []byte
		data = binary.LittleEndian.AppendUint16(data, 0)
		data = binary.AppendUvarint(data, nr)
		data = binary.AppendUvarint(data, 1)
		data = append(data, make([]byte, 8)...)
		var p PackedRows
		if _, err := p.DecodeRecord(data); err == nil {
			t.Errorf("nr=%d: decode accepted a wrapped row count", nr)
		}
	}
}
