package core

import (
	"os"
	"testing"

	"distenc/internal/leakcheck"
	"distenc/internal/metrics"
	"distenc/internal/rdd"
	"distenc/internal/synth"
	"distenc/internal/transport"
)

// TestMain lets the TCP-backend tests spawn real worker processes by
// re-execing this test binary: with the worker env set, WorkerHook serves
// blocks and exits before any test runs. leakcheck then holds every test —
// chaos and TCP e2e included — to the shutdown contract: Cluster.Close and
// transport teardown leave no goroutine behind.
func TestMain(m *testing.M) {
	transport.WorkerHook()
	os.Exit(leakcheck.Main(m))
}

// newTCPCluster builds a cluster whose blocks live in real worker processes,
// one per machine. Cleanup closes the cluster before the transport so block
// drops still have workers to talk to.
func newTCPCluster(t *testing.T, cfg rdd.Config) (*rdd.Cluster, *transport.Client) {
	t.Helper()
	tcl, err := transport.StartWorkers(cfg.Machines, transport.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = tcl
	c, err := rdd.NewCluster(cfg)
	if err != nil {
		tcl.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		tcl.Close()
	})
	return c, tcl
}

// TestTCPBackendMatchesInproc is the cross-backend identity check: the same
// solve on the in-process backend and on real worker processes must produce
// bit-identical factors and the exact same exactly-once shuffle volume —
// the transport moves bytes, it never changes them or their accounting.
func TestTCPBackendMatchesInproc(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1500, 61)
	opts := Options{Rank: 3, MaxIter: 4, Tol: 0, Seed: 62}
	for _, kernel := range []KernelMode{KernelFused, KernelSpMV} {
		dopt := DistOptions{Options: opts, GridPartition: true, Kernel: kernel}

		inproc := rdd.MustNewCluster(rdd.Config{Machines: 3})
		want, err := CompleteDistributed(inproc, d.Tensor, d.Sims, dopt)
		if err != nil {
			t.Fatalf("kernel=%v inproc: %v", kernel, err)
		}

		tcp, _ := newTCPCluster(t, rdd.Config{Machines: 3})
		got, err := CompleteDistributed(tcp, d.Tensor, d.Sims, dopt)
		if err != nil {
			t.Fatalf("kernel=%v tcp: %v", kernel, err)
		}

		assertBitIdentical(t, "tcp vs inproc kernel="+kernel.String(), want.Model.Factors, got.Model.Factors)
		inB, tcpB := inproc.Metrics().BytesShuffled.Load(), tcp.Metrics().BytesShuffled.Load()
		if inB != tcpB {
			t.Errorf("kernel=%v: BytesShuffled inproc=%d tcp=%d — the backend seam leaked into the accounting",
				kernel, inB, tcpB)
		}
		inproc.Close()
	}
}

// TestChaosTCPSolveBitIdentical is the networked chaos acceptance test: a
// solve against real worker processes under a seeded fault plan — random
// task failures plus a machine kill that SIGKILLs an actual worker process
// mid-run — must complete with factors bit-identical to the failure-free TCP
// run and to the in-process run, with BytesShuffled bit-equal to both, for
// both MTTKRP kernels.
func TestChaosTCPSolveBitIdentical(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1500, 61)
	opts := Options{Rank: 3, MaxIter: 6, Tol: 0, Seed: 62}
	for _, kernel := range []KernelMode{KernelFused, KernelSpMV} {
		dopt := DistOptions{Options: opts, GridPartition: true, Kernel: kernel}

		inproc := rdd.MustNewCluster(rdd.Config{Machines: 3})
		inprocRes, err := CompleteDistributed(inproc, d.Tensor, d.Sims, dopt)
		if err != nil {
			t.Fatalf("kernel=%v inproc: %v", kernel, err)
		}

		clean, _ := newTCPCluster(t, rdd.Config{Machines: 3})
		want, err := CompleteDistributed(clean, d.Tensor, d.Sims, dopt)
		if err != nil {
			t.Fatalf("kernel=%v tcp clean: %v", kernel, err)
		}

		chaos, _ := newTCPCluster(t, rdd.Config{Machines: 3, Fault: &rdd.FaultPlan{
			Seed:            7,
			TaskFailureProb: 0.25,
			KillMachine:     1,
			KillAtStage:     5,
		}})
		got, err := CompleteDistributed(chaos, d.Tensor, d.Sims, dopt)
		if err != nil {
			t.Fatalf("kernel=%v tcp chaos: %v", kernel, err)
		}

		if retries := chaos.Metrics().TaskRetries.Load(); retries == 0 {
			t.Errorf("kernel=%v: chaos run retried no tasks", kernel)
		}
		if alive := chaos.HealthyMachines(); alive != 2 {
			t.Errorf("kernel=%v: HealthyMachines = %d after the planned kill, want 2", kernel, alive)
		}
		var kills int
		for _, ev := range chaos.Recoveries() {
			if ev.Kind == rdd.RecoveryMachineKill {
				kills++
			}
		}
		if kills != 1 {
			t.Errorf("kernel=%v: recovery log has %d machine kills, want 1", kernel, kills)
		}

		assertBitIdentical(t, "tcp chaos vs tcp clean kernel="+kernel.String(), want.Model.Factors, got.Model.Factors)
		assertBitIdentical(t, "tcp chaos vs inproc kernel="+kernel.String(), inprocRes.Model.Factors, got.Model.Factors)
		inB := inproc.Metrics().BytesShuffled.Load()
		cleanB := clean.Metrics().BytesShuffled.Load()
		chaosB := chaos.Metrics().BytesShuffled.Load()
		if chaosB != cleanB || cleanB != inB {
			t.Errorf("kernel=%v: BytesShuffled inproc=%d tcp-clean=%d tcp-chaos=%d — recovery traffic or the backend leaked into the exactly-once counter",
				kernel, inB, cleanB, chaosB)
		}
		inproc.Close()
	}
}

// TestWorkerProcessKillMidRun kills a worker process out from under the
// engine — not via the fault plan, but straight through the transport, the
// way a real machine dies — between iterations. The next fetch against it
// must come back as a retryable unreachable error, the engine must declare
// the machine lost and recompute from lineage, and the finished factors and
// exactly-once shuffle volume must match the clean run exactly.
func TestWorkerProcessKillMidRun(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1500, 61)
	opts := Options{Rank: 3, MaxIter: 6, Tol: 0, Seed: 62}
	dopt := DistOptions{Options: opts, GridPartition: true}

	clean := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer clean.Close()
	want, err := CompleteDistributed(clean, d.Tensor, d.Sims, dopt)
	if err != nil {
		t.Fatal(err)
	}

	c, tcl := newTCPCluster(t, rdd.Config{Machines: 3})
	killed := false
	kopt := dopt
	kopt.OnIteration = func(p metrics.ConvergencePoint) {
		if p.Iter == 2 && !killed {
			killed = true
			if err := tcl.Kill(1); err != nil {
				t.Errorf("killing worker 1: %v", err)
			}
		}
	}
	got, err := CompleteDistributed(c, d.Tensor, d.Sims, kopt)
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("kill callback never fired")
	}

	if alive := c.HealthyMachines(); alive != 2 {
		t.Errorf("HealthyMachines = %d after the process kill, want 2", alive)
	}
	var kills int
	for _, ev := range c.Recoveries() {
		if ev.Kind == rdd.RecoveryMachineKill {
			kills++
		}
	}
	if kills != 1 {
		t.Errorf("recovery log has %d machine-kill events, want 1 (the engine never noticed the dead process)", kills)
	}
	if retries := c.Metrics().TaskRetries.Load(); retries == 0 {
		t.Error("no task retries: the unreachable worker did not surface as a retryable failure")
	}
	assertBitIdentical(t, "worker-process kill vs clean", want.Model.Factors, got.Model.Factors)
	if cleanB, gotB := clean.Metrics().BytesShuffled.Load(), c.Metrics().BytesShuffled.Load(); gotB != cleanB {
		t.Errorf("BytesShuffled = %d after recovery, clean = %d: recompute traffic double-counted", gotB, cleanB)
	}
}
