package core

import (
	"errors"
	"testing"

	"distenc/internal/mat"
	"distenc/internal/rdd"
	"distenc/internal/synth"
)

func TestNonNegativeOption(t *testing.T) {
	d := synth.LinearFactorDataset([]int{15, 15, 15}, 2, 900, 31)
	res, err := Complete(d.Tensor, d.Sims, Options{Rank: 3, MaxIter: 20, Seed: 32, NonNegative: true})
	if err != nil {
		t.Fatal(err)
	}
	for n, b := range res.Aux {
		for _, v := range b.Data() {
			if v < 0 {
				t.Fatalf("mode %d aux has negative entry %v under NonNegative", n, v)
			}
		}
	}
	// And the distributed solver must agree with the serial one under the
	// projection too.
	c := rdd.MustNewCluster(rdd.Config{Machines: 2})
	defer c.Close()
	dist, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{
		Options: Options{Rank: 3, MaxIter: 20, Seed: 32, NonNegative: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := range res.Model.Factors {
		if diff := mat.MaxAbsDiff(res.Model.Factors[n], dist.Model.Factors[n]); diff > 1e-8 {
			t.Fatalf("NonNegative: mode %d diverges by %v", n, diff)
		}
	}
}

func TestPerModeAlphas(t *testing.T) {
	d := synth.LinearFactorDataset([]int{12, 12, 12}, 2, 700, 33)
	// Alphas overriding mode 0 only; zero entries fall back to Alpha.
	res, err := Complete(d.Tensor, d.Sims, Options{
		Rank: 3, MaxIter: 10, Seed: 34, Alpha: 0.5, Alphas: []float64{5, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Complete(d.Tensor, d.Sims, Options{
		Rank: 3, MaxIter: 10, Seed: 34, Alpha: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The override must actually change the solution.
	if diff := mat.MaxAbsDiff(res.Model.Factors[0], uniform.Model.Factors[0]); diff == 0 {
		t.Fatal("per-mode alpha had no effect")
	}
	// Identical values must reproduce the uniform run exactly.
	same, err := Complete(d.Tensor, d.Sims, Options{
		Rank: 3, MaxIter: 10, Seed: 34, Alpha: 0.5, Alphas: []float64{0.5, 0.5, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := range uniform.Model.Factors {
		if diff := mat.MaxAbsDiff(same.Model.Factors[n], uniform.Model.Factors[n]); diff != 0 {
			t.Fatalf("explicit uniform alphas diverged at mode %d by %v", n, diff)
		}
	}
}

func TestAlphasLengthValidated(t *testing.T) {
	d := synth.LinearFactorDataset([]int{8, 8, 8}, 2, 200, 35)
	_, err := Complete(d.Tensor, d.Sims, Options{Rank: 2, MaxIter: 2, Alphas: []float64{1, 2}})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v, want ErrDimensionMismatch", err)
	}
	c := rdd.MustNewCluster(rdd.Config{Machines: 2})
	defer c.Close()
	_, err = CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: Options{Rank: 2, MaxIter: 2, Alphas: []float64{1}}})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("distributed err = %v, want ErrDimensionMismatch", err)
	}
}

func TestConsensusStoppingCriterion(t *testing.T) {
	d := synth.LinearFactorDataset([]int{10, 10, 10}, 2, 500, 36)
	// A loose consensus tolerance must stop earlier than the tight
	// iterate-delta tolerance alone.
	strict, err := Complete(d.Tensor, nil, Options{Rank: 2, MaxIter: 200, Tol: 1e-12, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Complete(d.Tensor, nil, Options{Rank: 2, MaxIter: 200, Tol: 1e-12, ConsensusTol: 1e-1, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Converged {
		t.Fatal("consensus criterion never fired")
	}
	if loose.Iters >= strict.Iters {
		t.Fatalf("consensus stop (%d iters) not earlier than strict (%d iters)", loose.Iters, strict.Iters)
	}
}

func TestAlphaForFallback(t *testing.T) {
	o := Options{Alpha: 0.3, Alphas: []float64{0, 2}}
	if o.AlphaFor(0) != 0.3 {
		t.Fatal("zero entry must fall back to Alpha")
	}
	if o.AlphaFor(1) != 2 {
		t.Fatal("override ignored")
	}
	if o.AlphaFor(5) != 0.3 {
		t.Fatal("out-of-range mode must fall back")
	}
}
