package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"distenc/internal/mat"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
	"distenc/internal/synth"
)

// naiveStageMTTKRP is the golden reference for MTTKRPStage: the serial
// residual tensor (Eq. 14) fed through the serial row-wise MTTKRP of
// internal/sptensor — no blocks, no shuffle, no fused prefix products.
func naiveStageMTTKRP(t *sptensor.Tensor, factors []*mat.Dense) ([]*mat.Dense, float64) {
	resid := sptensor.Residual(t, sptensor.NewKruskal(factors...))
	hs := make([]*mat.Dense, t.Order())
	for n := 0; n < t.Order(); n++ {
		hs[n] = sptensor.MTTKRP(resid, factors, n, nil)
	}
	nf := resid.NormF()
	return hs, nf * nf
}

func randomTensor(dims []int, nnz int, rng *rand.Rand) *sptensor.Tensor {
	t := sptensor.New(dims...)
	idx := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for n, d := range dims {
			idx[n] = int32(rng.IntN(d))
		}
		t.Append(idx, rng.NormFloat64())
	}
	return t
}

func randomFactors(dims []int, rank int, rng *rand.Rand) []*mat.Dense {
	fs := make([]*mat.Dense, len(dims))
	for n, d := range dims {
		fs[n] = mat.NewDense(d, rank)
		data := fs[n].Data()
		for i := range data {
			data[i] = rng.Float64()
		}
	}
	return fs
}

// relClose reports |a−b| ≤ tol·max(1, |a|, |b|).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// TestMTTKRPStageMatchesNaive is the golden equivalence test for the stage
// kernels + packed shuffle: across tensor orders, block layouts, partition
// counts, and kernels (fused, SpMV-chain, and the auto selector), the
// distributed stage must agree per row with the naive serial reference within
// 1e-9 relative tolerance.
func TestMTTKRPStageMatchesNaive(t *testing.T) {
	const tol = 1e-9
	const rank = 5
	shapes := [][]int{
		{17, 23, 9},
		{7, 9, 11, 5},
	}
	layouts := []struct {
		name string
		opt  DistOptions
	}{
		{"mode0-greedy", DistOptions{}},
		{"grid", DistOptions{GridPartition: true}},
		{"uniform", DistOptions{UniformPartition: true}},
	}
	kernels := []KernelMode{KernelAuto, KernelFused, KernelSpMV}
	rng := rand.New(rand.NewPCG(71, 72))
	for _, dims := range shapes {
		ts := randomTensor(dims, 40*len(dims)*len(dims), rng)
		factors := randomFactors(dims, rank, rng)
		wantHs, wantNorm2 := naiveStageMTTKRP(ts, factors)
		for _, lo := range layouts {
			for _, parts := range []int{1, 3, 8} {
				for _, kernel := range kernels {
					opt := lo.opt
					opt.Options = Options{Rank: rank}.withDefaults()
					opt.Partitions = parts
					opt.Kernel = kernel
					c := rdd.MustNewCluster(rdd.Config{Machines: 3})
					layout := NewLayout(ts, opt)
					gotHs, gotNorm2, err := MTTKRPStage(c, layout.BlocksRDD(c), layout, factors, opt)
					if err != nil {
						t.Fatalf("order-%d %s P=%d kernel=%v: %v", len(dims), lo.name, parts, kernel, err)
					}
					if !relClose(gotNorm2, wantNorm2, tol) {
						t.Fatalf("order-%d %s P=%d kernel=%v: ‖E‖² = %v, want %v", len(dims), lo.name, parts, kernel, gotNorm2, wantNorm2)
					}
					for n := range wantHs {
						for i := 0; i < wantHs[n].Rows(); i++ {
							wantRow, gotRow := wantHs[n].Row(i), gotHs[n].Row(i)
							for r := 0; r < rank; r++ {
								if !relClose(gotRow[r], wantRow[r], tol) {
									t.Fatalf("order-%d %s P=%d kernel=%v: H_%d[%d,%d] = %v, want %v",
										len(dims), lo.name, parts, kernel, n, i, r, gotRow[r], wantRow[r])
								}
							}
						}
					}
					c.Close()
				}
			}
		}
	}
}

// TestMTTKRPCrossKernel pins the fused and SpMV-chain kernels against each
// other across every golden config: the residual norm must be bit-identical
// (both kernels sum it in canonical entry order), the factors must agree
// within 1e-9, and — because a record's byte length is independent of its
// values — both kernels must shuffle exactly the same number of bytes, so
// kernel choice never perturbs the Lemma 3 accounting.
func TestMTTKRPCrossKernel(t *testing.T) {
	const tol = 1e-9
	const rank = 5
	shapes := [][]int{
		{17, 23, 9},
		{7, 9, 11, 5},
	}
	layouts := []struct {
		name string
		opt  DistOptions
	}{
		{"mode0-greedy", DistOptions{}},
		{"grid", DistOptions{GridPartition: true}},
		{"uniform", DistOptions{UniformPartition: true}},
	}
	rng := rand.New(rand.NewPCG(91, 92))
	for _, dims := range shapes {
		ts := randomTensor(dims, 40*len(dims)*len(dims), rng)
		factors := randomFactors(dims, rank, rng)
		for _, lo := range layouts {
			for _, parts := range []int{1, 3, 8} {
				run := func(kernel KernelMode) ([]*mat.Dense, float64, int64) {
					opt := lo.opt
					opt.Options = Options{Rank: rank}.withDefaults()
					opt.Partitions = parts
					opt.Kernel = kernel
					c := rdd.MustNewCluster(rdd.Config{Machines: 3})
					defer c.Close()
					layout := NewLayout(ts, opt)
					hs, norm2, err := MTTKRPStage(c, layout.BlocksRDD(c), layout, factors, opt)
					if err != nil {
						t.Fatalf("order-%d %s P=%d kernel=%v: %v", len(dims), lo.name, parts, kernel, err)
					}
					return hs, norm2, c.Metrics().BytesShuffled.Load()
				}
				fusedHs, fusedNorm2, fusedBytes := run(KernelFused)
				spmvHs, spmvNorm2, spmvBytes := run(KernelSpMV)
				if math.Float64bits(fusedNorm2) != math.Float64bits(spmvNorm2) {
					t.Fatalf("order-%d %s P=%d: residual norms differ: fused %v, spmv %v",
						len(dims), lo.name, parts, fusedNorm2, spmvNorm2)
				}
				if fusedBytes != spmvBytes {
					t.Fatalf("order-%d %s P=%d: BytesShuffled differ: fused %d, spmv %d",
						len(dims), lo.name, parts, fusedBytes, spmvBytes)
				}
				for n := range fusedHs {
					fd, sd := fusedHs[n].Data(), spmvHs[n].Data()
					for i := range fd {
						if !relClose(fd[i], sd[i], tol) {
							t.Fatalf("order-%d %s P=%d: H_%d[%d]: fused %v, spmv %v",
								len(dims), lo.name, parts, n, i, fd[i], sd[i])
						}
					}
				}
			}
		}
	}
}

// TestMTTKRPWireFormats pins the wire formats against each other on one
// golden config: raw and varint are lossless and must produce bit-identical
// factors; f32 narrows values on the wire and must stay within float32
// relative error. Compressed formats must never shuffle more bytes than raw.
func TestMTTKRPWireFormats(t *testing.T) {
	const rank = 5
	dims := []int{17, 23, 9}
	rng := rand.New(rand.NewPCG(101, 102))
	ts := randomTensor(dims, 40*len(dims)*len(dims), rng)
	factors := randomFactors(dims, rank, rng)
	run := func(wire rdd.WireFormat) ([]*mat.Dense, int64) {
		opt := DistOptions{GridPartition: true}
		opt.Options = Options{Rank: rank}.withDefaults()
		opt.Partitions = 4
		opt.Wire = wire
		c := rdd.MustNewCluster(rdd.Config{Machines: 3})
		defer c.Close()
		layout := NewLayout(ts, opt)
		hs, _, err := MTTKRPStage(c, layout.BlocksRDD(c), layout, factors, opt)
		if err != nil {
			t.Fatalf("wire=%v: %v", wire, err)
		}
		return hs, c.Metrics().BytesShuffled.Load()
	}
	rawHs, rawBytes := run(rdd.WireRaw)
	varHs, varBytes := run(rdd.WireVarint)
	f32Hs, f32Bytes := run(rdd.WireF32)
	for n := range rawHs {
		rd, vd, fd := rawHs[n].Data(), varHs[n].Data(), f32Hs[n].Data()
		for i := range rd {
			if math.Float64bits(rd[i]) != math.Float64bits(vd[i]) {
				t.Fatalf("H_%d[%d]: raw %v != varint %v (lossless formats must agree bit-for-bit)", n, i, rd[i], vd[i])
			}
			if !relClose(fd[i], rd[i], 1e-5) {
				t.Fatalf("H_%d[%d]: f32 %v vs raw %v beyond float32 error", n, i, fd[i], rd[i])
			}
		}
	}
	if varBytes >= rawBytes {
		t.Fatalf("varint wire shuffled %d bytes, raw %d: compression must not grow traffic", varBytes, rawBytes)
	}
	if f32Bytes >= varBytes {
		t.Fatalf("f32 wire shuffled %d bytes, varint %d: narrowing must shrink traffic", f32Bytes, varBytes)
	}
}

// TestDistributedTraceMatchesSerial pins the full-solver equivalence at trace
// granularity. The distributed stage measures ‖E‖ before the iteration's
// update, so its trace lags the serial post-update RMSE by exactly one
// iteration (documented in CompleteDistributed); modulo that shift the two
// solvers must report identical training RMSEs.
func TestDistributedTraceMatchesSerial(t *testing.T) {
	d := synth.LinearFactorDataset([]int{18, 14, 22}, 3, 2200, 77)
	opts := Options{Rank: 4, MaxIter: 7, Tol: 0, Seed: 78, Alpha: 0.3}
	serial, err := Complete(d.Tensor, d.Sims, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer c.Close()
	dist, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Trace) != len(serial.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(dist.Trace), len(serial.Trace))
	}
	for i := 1; i < len(dist.Trace); i++ {
		got, want := dist.Trace[i].TrainRMSE, serial.Trace[i-1].TrainRMSE
		if !relClose(got, want, 1e-9) {
			t.Fatalf("iter %d: distributed RMSE %v, serial (lagged) %v", i, got, want)
		}
	}
}
