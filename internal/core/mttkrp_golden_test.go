package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"distenc/internal/mat"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
	"distenc/internal/synth"
)

// naiveStageMTTKRP is the golden reference for MTTKRPStage: the serial
// residual tensor (Eq. 14) fed through the serial row-wise MTTKRP of
// internal/sptensor — no blocks, no shuffle, no fused prefix products.
func naiveStageMTTKRP(t *sptensor.Tensor, factors []*mat.Dense) ([]*mat.Dense, float64) {
	resid := sptensor.Residual(t, sptensor.NewKruskal(factors...))
	hs := make([]*mat.Dense, t.Order())
	for n := 0; n < t.Order(); n++ {
		hs[n] = sptensor.MTTKRP(resid, factors, n, nil)
	}
	nf := resid.NormF()
	return hs, nf * nf
}

func randomTensor(dims []int, nnz int, rng *rand.Rand) *sptensor.Tensor {
	t := sptensor.New(dims...)
	idx := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for n, d := range dims {
			idx[n] = int32(rng.IntN(d))
		}
		t.Append(idx, rng.NormFloat64())
	}
	return t
}

func randomFactors(dims []int, rank int, rng *rand.Rand) []*mat.Dense {
	fs := make([]*mat.Dense, len(dims))
	for n, d := range dims {
		fs[n] = mat.NewDense(d, rank)
		data := fs[n].Data()
		for i := range data {
			data[i] = rng.Float64()
		}
	}
	return fs
}

// relClose reports |a−b| ≤ tol·max(1, |a|, |b|).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// TestMTTKRPStageMatchesNaive is the golden equivalence test for the fused
// kernel + packed shuffle: across tensor orders, block layouts, and partition
// counts, the distributed stage must agree per row with the naive serial
// reference within 1e-9 relative tolerance.
func TestMTTKRPStageMatchesNaive(t *testing.T) {
	const tol = 1e-9
	const rank = 5
	shapes := [][]int{
		{17, 23, 9},
		{7, 9, 11, 5},
	}
	layouts := []struct {
		name string
		opt  DistOptions
	}{
		{"mode0-greedy", DistOptions{}},
		{"grid", DistOptions{GridPartition: true}},
		{"uniform", DistOptions{UniformPartition: true}},
	}
	rng := rand.New(rand.NewPCG(71, 72))
	for _, dims := range shapes {
		ts := randomTensor(dims, 40*len(dims)*len(dims), rng)
		factors := randomFactors(dims, rank, rng)
		wantHs, wantNorm2 := naiveStageMTTKRP(ts, factors)
		for _, lo := range layouts {
			for _, parts := range []int{1, 3, 8} {
				opt := lo.opt
				opt.Options = Options{Rank: rank}.withDefaults()
				opt.Partitions = parts
				c := rdd.MustNewCluster(rdd.Config{Machines: 3})
				layout := NewLayout(ts, opt)
				gotHs, gotNorm2, err := MTTKRPStage(c, layout.BlocksRDD(c), layout, factors, opt)
				if err != nil {
					t.Fatalf("order-%d %s P=%d: %v", len(dims), lo.name, parts, err)
				}
				if !relClose(gotNorm2, wantNorm2, tol) {
					t.Fatalf("order-%d %s P=%d: ‖E‖² = %v, want %v", len(dims), lo.name, parts, gotNorm2, wantNorm2)
				}
				for n := range wantHs {
					for i := 0; i < wantHs[n].Rows(); i++ {
						wantRow, gotRow := wantHs[n].Row(i), gotHs[n].Row(i)
						for r := 0; r < rank; r++ {
							if !relClose(gotRow[r], wantRow[r], tol) {
								t.Fatalf("order-%d %s P=%d: H_%d[%d,%d] = %v, want %v",
									len(dims), lo.name, parts, n, i, r, gotRow[r], wantRow[r])
							}
						}
					}
				}
				c.Close()
			}
		}
	}
}

// TestDistributedTraceMatchesSerial pins the full-solver equivalence at trace
// granularity. The distributed stage measures ‖E‖ before the iteration's
// update, so its trace lags the serial post-update RMSE by exactly one
// iteration (documented in CompleteDistributed); modulo that shift the two
// solvers must report identical training RMSEs.
func TestDistributedTraceMatchesSerial(t *testing.T) {
	d := synth.LinearFactorDataset([]int{18, 14, 22}, 3, 2200, 77)
	opts := Options{Rank: 4, MaxIter: 7, Tol: 0, Seed: 78, Alpha: 0.3}
	serial, err := Complete(d.Tensor, d.Sims, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer c.Close()
	dist, err := CompleteDistributed(c, d.Tensor, d.Sims, DistOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Trace) != len(serial.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(dist.Trace), len(serial.Trace))
	}
	for i := 1; i < len(dist.Trace); i++ {
		got, want := dist.Trace[i].TrainRMSE, serial.Trace[i-1].TrainRMSE
		if !relClose(got, want, 1e-9) {
			t.Fatalf("iter %d: distributed RMSE %v, serial (lagged) %v", i, got, want)
		}
	}
}
