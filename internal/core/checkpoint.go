package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"distenc/internal/mat"
	"distenc/internal/sptensor"
)

// Solver checkpointing persists the full ADMM iteration state — factors A(n),
// auxiliary variables B(n), multipliers Y(n), the penalty η, and the iteration
// counter — so an interrupted run resumes exactly where it stopped. The
// residual E is NOT stored: it is a pure function of the factors (Eq. 16) and
// is recomputed on restore, which keeps the file at 3·Σ I_n·R floats. Because
// every quantity the iteration reads is restored bit-for-bit and the solver's
// arithmetic is deterministic, Resume produces factors bit-identical to the
// uninterrupted run (the resume tests assert this via math.Float64bits).
//
// Layout (little-endian): magic "DTCK", format version, iteration count, η,
// order N, rank R, the N mode sizes, then the factor/aux/multiplier matrices
// row-major. Writes go to a temp file in the same directory and rename into
// place, so a crash mid-write never corrupts the previous checkpoint; only
// the latest checkpoint is kept.

// ErrNoCheckpoint is returned by Resume when CheckpointDir holds no
// checkpoint file.
var ErrNoCheckpoint = errors.New("core: no checkpoint found")

const (
	ckptMagic   = uint32(0x4454434b) // "DTCK"
	ckptVersion = uint32(1)
	ckptFile    = "solver.ckpt"
)

// CheckpointPath returns the checkpoint file location inside dir. Exposed so
// CLIs and tests can check whether a run left a checkpoint behind.
func CheckpointPath(dir string) string { return filepath.Join(dir, ckptFile) }

// checkpointState is the persisted iteration state.
type checkpointState struct {
	iter    int
	eta     float64
	factors []*mat.Dense
	aux     []*mat.Dense
	mult    []*mat.Dense
}

// maybeCheckpoint persists the state entering iteration st.iter+1 when the
// options ask for a checkpoint at this cadence. Call right after the
// iteration's advance, when factors/aux/mult/η already hold the next
// iteration's inputs.
func (st *solverState) maybeCheckpoint() error {
	every := st.opt.CheckpointEvery
	if every <= 0 {
		return nil
	}
	done := st.iter + 1
	if done%every != 0 {
		return nil
	}
	return writeCheckpoint(st.opt.CheckpointDir, &checkpointState{
		iter:    done,
		eta:     st.eta,
		factors: st.factors,
		aux:     st.aux,
		mult:    st.mult,
	})
}

// restore loads a checkpoint into the solver state, replacing the fresh
// initialization. The serial solver recomputes the residual from the restored
// factors; the distributed solver keeps resid nil (its stage recomputes
// residuals on the cluster).
func (st *solverState) restore(ck *checkpointState, distributed bool) {
	st.factors = ck.factors
	st.aux = ck.aux
	st.mult = ck.mult
	st.eta = ck.eta
	st.iter = ck.iter
	if distributed {
		st.resid = nil
	} else {
		st.resid = sptensor.Residual(st.t, sptensor.NewKruskal(st.factors...))
	}
}

// writeCheckpoint atomically replaces dir's checkpoint file.
func writeCheckpoint(dir string, ck *checkpointState) error {
	var buf bytes.Buffer
	order := len(ck.factors)
	rank := 0
	if order > 0 {
		rank = ck.factors[0].Cols()
	}
	head := []any{ckptMagic, ckptVersion, uint64(ck.iter), ck.eta, uint32(order), uint32(rank)}
	for _, v := range head {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("core: encoding checkpoint header: %w", err)
		}
	}
	for _, f := range ck.factors {
		if err := binary.Write(&buf, binary.LittleEndian, uint32(f.Rows())); err != nil {
			return fmt.Errorf("core: encoding checkpoint dims: %w", err)
		}
	}
	for _, group := range [][]*mat.Dense{ck.factors, ck.aux, ck.mult} {
		for _, m := range group {
			if err := binary.Write(&buf, binary.LittleEndian, m.Data()); err != nil {
				return fmt.Errorf("core: encoding checkpoint matrices: %w", err)
			}
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: creating checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ckptFile+".tmp-")
	if err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	// fsync before rename: without it a crash shortly after the rename can
	// leave solver.ckpt pointing at never-flushed data — a torn checkpoint
	// that Resume would trust over the intact previous one.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), CheckpointPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: committing checkpoint: %w", err)
	}
	return nil
}

// Checkpoint is one decoded solver image — the exported read-side view of
// the solver.ckpt format, used by the serving plane (internal/serve) to load
// completed models and warm-start refreshes. Factors/Aux/Duals mirror the
// ADMM state {A(n), B(n), Y(n)}; Model wraps the factors as the Kruskal
// tensor that answers entry reconstructions (Eq. 3).
type Checkpoint struct {
	// Path is where the image was read from.
	Path string
	// Iter is the number of completed outer iterations.
	Iter int
	// Eta is the ADMM penalty entering the next iteration.
	Eta float64
	// Factors are the factor matrices A(n).
	Factors []*mat.Dense
	// Aux are the auxiliary variables B(n).
	Aux []*mat.Dense
	// Duals are the scaled multipliers Y(n).
	Duals []*mat.Dense
}

// Rank returns the model's CP rank R.
func (ck *Checkpoint) Rank() int { return ck.Factors[0].Cols() }

// Dims returns the per-mode sizes I_n.
func (ck *Checkpoint) Dims() []int {
	d := make([]int, len(ck.Factors))
	for n, f := range ck.Factors {
		d[n] = f.Rows()
	}
	return d
}

// Model wraps the checkpointed factors as the completed tensor in Kruskal
// form; Model().At predicts any cell.
func (ck *Checkpoint) Model() *sptensor.Kruskal { return sptensor.NewKruskal(ck.Factors...) }

// maxCkptOrder bounds the tensor order a checkpoint may declare; anything
// larger is a corrupt or hostile header, not a real model.
const maxCkptOrder = 16

// ReadCheckpoint parses the solver checkpoint image at path. Unlike the
// solver's own resume path, which only ever reads files it wrote, this entry
// point is exposed to untrusted paths (the serving plane's admin API loads
// whatever file an operator names), so every rejection is descriptive — the
// file, what was found, what was expected — and the declared matrix sizes
// are validated against the actual byte count before anything is allocated.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(data)
	var magic, version, order, rank uint32
	var iter uint64
	var eta float64
	for _, v := range []any{&magic, &version, &iter, &eta, &order, &rank} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: %s: truncated checkpoint header (%d bytes): %w", path, len(data), io.ErrUnexpectedEOF)
		}
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("core: %s: bad checkpoint magic 0x%08x, want 0x%08x (%q)", path, magic, ckptMagic, "DTCK")
	}
	if version != ckptVersion {
		return nil, fmt.Errorf("core: %s: checkpoint format version %d, want %d", path, version, ckptVersion)
	}
	if order == 0 || order > maxCkptOrder || rank == 0 {
		return nil, fmt.Errorf("core: %s: corrupt checkpoint header: order=%d rank=%d", path, order, rank)
	}
	dims := make([]uint32, order)
	if err := binary.Read(r, binary.LittleEndian, dims); err != nil {
		return nil, fmt.Errorf("core: %s: truncated checkpoint: %d mode sizes declared, file ends inside them: %w", path, order, io.ErrUnexpectedEOF)
	}
	// Validate the declared geometry against the bytes actually present
	// before allocating: a corrupt rank or mode size must fail with an exact
	// got/want count, not an allocation of whatever the header claims.
	var want uint64
	for _, d := range dims {
		want += uint64(d) * uint64(rank)
	}
	want *= 3 * 8 // factors+aux+duals groups, 8 bytes per float64
	if got := uint64(r.Len()); got != want {
		return nil, fmt.Errorf("core: %s: checkpoint holds %d bytes of matrix data, want %d for dims=%v rank=%d (truncated or corrupt)",
			path, got, want, dims, rank)
	}
	ck := &Checkpoint{Path: path, Iter: int(iter), Eta: eta}
	for _, group := range []*[]*mat.Dense{&ck.Factors, &ck.Aux, &ck.Duals} {
		ms := make([]*mat.Dense, order)
		for n := range ms {
			vals := make([]float64, int(dims[n])*int(rank))
			if err := binary.Read(r, binary.LittleEndian, vals); err != nil {
				return nil, fmt.Errorf("core: %s: truncated checkpoint matrices: %w", path, err)
			}
			ms[n] = mat.NewDenseData(int(dims[n]), int(rank), vals)
		}
		*group = ms
	}
	return ck, nil
}

// readCheckpoint parses dir's checkpoint file into the solver's internal
// resume state.
func readCheckpoint(dir string) (*checkpointState, error) {
	ck, err := ReadCheckpoint(CheckpointPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
	}
	if err != nil {
		return nil, err
	}
	return &checkpointState{
		iter:    ck.Iter,
		eta:     ck.Eta,
		factors: ck.Factors,
		aux:     ck.Aux,
		mult:    ck.Duals,
	}, nil
}

// loadCheckpoint reads and validates a checkpoint against the tensor and
// options a resume was asked to continue with.
func loadCheckpoint(dir string, t *sptensor.Tensor, opt Options) (*checkpointState, error) {
	if dir == "" {
		return nil, errors.New("core: Resume requires Options.CheckpointDir")
	}
	ck, err := readCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if len(ck.factors) != t.Order() {
		return nil, fmt.Errorf("%w: checkpoint holds an order-%d model, tensor is order-%d",
			ErrDimensionMismatch, len(ck.factors), t.Order())
	}
	for n, f := range ck.factors {
		if f.Rows() != t.Dims[n] {
			return nil, fmt.Errorf("%w: checkpoint mode %d has %d rows, tensor mode size %d",
				ErrDimensionMismatch, n, f.Rows(), t.Dims[n])
		}
		if f.Cols() != opt.Rank {
			return nil, fmt.Errorf("%w: checkpoint rank %d, options rank %d",
				ErrDimensionMismatch, f.Cols(), opt.Rank)
		}
	}
	return ck, nil
}
