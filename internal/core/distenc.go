package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/part"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
)

// DistOptions configures the distributed solver.
type DistOptions struct {
	Options
	// Partitions is the tensor block count P (default: machine count).
	Partitions int
	// UniformPartition disables the Algorithm 2 greedy partitioner and
	// splits each mode into equal-width index ranges (the load-balancing
	// ablation).
	UniformPartition bool
	// DistributeGram computes the per-mode self-products A(n)ᵀA(n) with a
	// distributed stage per Eq. (13) instead of on the driver. The math is
	// identical; the driver path avoids per-iteration stage overhead at the
	// small scales of this reproduction.
	DistributeGram bool
	// GridPartition blocks the tensor on every mode (the paper's P×Q×K
	// compartmentalization, §III-C) instead of only on mode 0. Each engine
	// partition then covers a bounded index range per mode, which shrinks
	// the factor rows shipped per block and the duplicated map-side
	// combining — the property behind the paper's Figure 4 linearity. The
	// solver's mathematics is independent of the blocking.
	GridPartition bool
}

// RowKey addresses one factor-matrix row in the MTTKRP shuffle; Mode -1
// carries the residual norm side-channel.
type RowKey struct {
	Mode int16
	Row  int32
}

// TensorBlock is one greedy-partitioned block of the observed tensor, the
// unit of work distributed across machines (§III-C).
type TensorBlock struct {
	Order int
	Idx   []int32
	Val   []float64
}

// SizeBytes implements rdd.Sizer so cached blocks charge honest memory.
func (b *TensorBlock) SizeBytes() int64 {
	return int64(len(b.Idx))*4 + int64(len(b.Val))*8 + 16
}

// NNZ returns the number of stored entries in the block.
func (b *TensorBlock) NNZ() int { return len(b.Val) }

// EntryIndex returns a view of entry e's multi-index.
func (b *TensorBlock) EntryIndex(e int) []int32 { return b.Idx[e*b.Order : (e+1)*b.Order] }

// CompleteDistributed runs DisTenC (Algorithm 3) on the engine:
//
//  1. Greedy block partitioning of the observed tensor (Algorithm 2) with
//     the blocks cached as an RDD (charging machine memory).
//  2. Per iteration, one distributed stage ships each block exactly the
//     factor rows its non-zeros touch (counted as shuffle traffic — the
//     O(T·N·M·I·R) term of Lemma 3), computes the block's residual entries
//     E = Ω∗(T−[[A]]) and its partial row-wise MTTKRP contributions
//     (Eq. 11), and reduces them by row key across machines.
//  3. The driver finishes the small dense algebra: spectral B updates
//     (Eq. 7), Hadamard-of-Grams F_n (Eq. 12), the Eq. (16) factor update,
//     and the Y/η bookkeeping — identical math to the serial reference.
func CompleteDistributed(c *rdd.Cluster, t *sptensor.Tensor, sims []*graph.Similarity, opt DistOptions) (*Result, error) {
	opt.Options = opt.Options.withDefaults()
	if opt.Partitions <= 0 {
		opt.Partitions = c.Machines()
	}
	if err := validate(t, sims); err != nil {
		return nil, err
	}
	if err := validateOptions(t, opt.Options); err != nil {
		return nil, err
	}
	sp, err := spectra(sims, opt.TruncK, opt.Seed)
	if err != nil {
		return nil, err
	}

	layout := NewLayout(t, opt)
	blocksRDD := layout.BlocksRDD(c)
	blocksRDD.Cache()
	if err := blocksRDD.Materialize(); err != nil {
		return nil, fmt.Errorf("core: caching tensor blocks: %w", err)
	}
	defer blocksRDD.Unpersist()

	st := newSolverState(t, sp, opt.Options)
	st.resid = nil // the stage computes residuals; never materialize driver-side
	start := time.Now()

	for st.iter = 0; st.iter < opt.MaxIter; st.iter++ {
		hs, residNorm2, err := MTTKRPStage(c, blocksRDD, layout, st.factors, opt)
		if err != nil {
			return nil, err
		}
		grams := make([]*mat.Dense, t.Order())
		for n, f := range st.factors {
			if opt.DistributeGram {
				g, err := distributedGram(c, f, layout.modeBounds[n])
				if err != nil {
					return nil, err
				}
				grams[n] = g
			} else {
				grams[n] = mat.Gram(f)
			}
		}
		next, bs := st.iterateWith(grams, func(mode int) *mat.Dense { return hs[mode] })
		delta := st.advanceNoResid(next, bs)
		point := metrics.ConvergencePoint{
			Iter:    st.iter,
			Elapsed: time.Since(start),
			// The stage measured ‖E_t‖ before this iteration's update, so
			// the trace lags the serial solver's post-update RMSE by one
			// iteration — irrelevant for the convergence-rate plots.
			TrainRMSE: math.Sqrt(residNorm2 / float64(max(1, t.NNZ()))),
			MaxDelta:  delta,
		}
		st.trace = append(st.trace, point)
		if opt.OnIteration != nil {
			opt.OnIteration(point)
		}
		if st.stop(delta) {
			st.converged = true
			st.iter++
			break
		}
	}
	return st.result(start), nil
}

// layout is the immutable block structure computed once before the loop.
type Layout struct {
	order      int
	rank       int
	dims       []int
	blockParts [][]*TensorBlock
	// modeBounds[n] partitions mode n's rows for the reduce side.
	modeBounds []part.Boundaries
	// neededRows[p][n] lists the mode-n factor rows block p touches.
	neededRows [][][]int32
	parts      int
}

func NewLayout(t *sptensor.Tensor, opt DistOptions) *Layout {
	p := opt.Partitions
	order := t.Order()
	l := &Layout{
		order:      order,
		rank:       opt.Rank,
		dims:       t.Dims,
		parts:      p,
		modeBounds: make([]part.Boundaries, order),
	}
	for n := 0; n < order; n++ {
		if opt.UniformPartition {
			l.modeBounds[n] = part.Uniform(t.Dims[n], p)
		} else {
			l.modeBounds[n] = part.Greedy(t.ModeCounts(n), p)
		}
	}
	blocks := make([]*TensorBlock, p)
	for b := range blocks {
		blocks[b] = &TensorBlock{Order: order}
	}
	if opt.GridPartition {
		// Full grid blocking (the paper's P×Q×K compartmentalization):
		// every mode is split into g ranges and the g^N grid cells are dealt
		// round-robin onto the P engine partitions, so each partition covers
		// bounded index ranges in every mode. Oversplitting (≈4 cells per
		// partition) keeps the deal balanced when g^N is not a multiple of P
		// — otherwise a partition stuck with ⌈g^N/P⌉ cells bounds the stage.
		g := int(math.Ceil(math.Pow(4*float64(p), 1/float64(order))))
		if g < 1 {
			g = 1
		}
		gridBounds := make([]part.Boundaries, order)
		for n := 0; n < order; n++ {
			if opt.UniformPartition {
				gridBounds[n] = part.Uniform(t.Dims[n], g)
			} else {
				gridBounds[n] = part.Greedy(t.ModeCounts(n), g)
			}
		}
		for e := 0; e < t.NNZ(); e++ {
			idx := t.Index(e)
			cell := 0
			for n := 0; n < order; n++ {
				cn := gridBounds[n].PartitionOf(int(idx[n]))
				cell = cell*gridBounds[n].NumPartitions() + cn
			}
			blk := blocks[cell%p]
			blk.Idx = append(blk.Idx, idx...)
			blk.Val = append(blk.Val, t.Val[e])
		}
	} else {
		// Blocks split on mode 0: block b holds the slices whose mode-0
		// index falls in boundary range b.
		for e := 0; e < t.NNZ(); e++ {
			idx := t.Index(e)
			b := l.modeBounds[0].PartitionOf(int(idx[0]))
			blk := blocks[b]
			blk.Idx = append(blk.Idx, idx...)
			blk.Val = append(blk.Val, t.Val[e])
		}
	}
	l.blockParts = make([][]*TensorBlock, p)
	l.neededRows = make([][][]int32, p)
	for b, blk := range blocks {
		l.blockParts[b] = []*TensorBlock{blk}
		l.neededRows[b] = neededRows(blk)
	}
	return l
}

// BlocksRDD wraps the layout's tensor blocks as a one-block-per-partition
// RDD (shared by DisTenC and the baselines that reuse its block structure).
func (l *Layout) BlocksRDD(c *rdd.Cluster) *rdd.RDD[*TensorBlock] {
	return rdd.FromPartitions(c, "tensor-blocks", l.blockParts)
}

// Parts returns the block count P.
func (l *Layout) Parts() int { return l.parts }

// ModeBounds returns mode n's row partitioning.
func (l *Layout) ModeBounds(n int) part.Boundaries { return l.modeBounds[n] }

// Dims returns the tensor's mode sizes.
func (l *Layout) Dims() []int { return l.dims }

// Order returns the tensor order N.
func (l *Layout) Order() int { return l.order }

// neededRows returns, per mode, the sorted unique factor rows blk touches —
// the "non-local factor matrix rows transferred to this process" of §III-C.
func neededRows(blk *TensorBlock) [][]int32 {
	out := make([][]int32, blk.Order)
	for n := 0; n < blk.Order; n++ {
		seen := map[int32]struct{}{}
		for e := 0; e < blk.NNZ(); e++ {
			seen[blk.EntryIndex(e)[n]] = struct{}{}
		}
		rows := make([]int32, 0, len(seen))
		for r := range seen {
			rows = append(rows, r)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		out[n] = rows
	}
	return out
}

// MTTKRPStage executes the per-iteration distributed stage and returns
// the assembled H_n = E_(n)·U(n) matrices plus ‖E‖²_F.
func MTTKRPStage(c *rdd.Cluster, blocks *rdd.RDD[*TensorBlock], l *Layout, factors []*mat.Dense, opt DistOptions) ([]*mat.Dense, float64, error) {
	rank := opt.Rank
	// Ship each block its needed factor rows: count the bytes as shuffle
	// traffic (they cross machines on a real cluster) and charge them as
	// transient task memory.
	shipSizes := make([]int64, l.parts)
	for p := 0; p < l.parts; p++ {
		var rows int64
		for n := 0; n < l.order; n++ {
			rows += int64(len(l.neededRows[p][n]))
		}
		shipSizes[p] = rows * int64(rank) * 8
	}

	partials := rdd.MapPartitions(blocks, "mttkrp-map", func(tc *rdd.TaskCtx, p int, in []*TensorBlock) ([]rdd.KV[RowKey, []float64], error) {
		if err := tc.ChargeTransient(shipSizes[p]); err != nil {
			return nil, err
		}
		tc.Cluster().Metrics().BytesShuffled.Add(shipSizes[p])
		var out []rdd.KV[RowKey, []float64]
		var norm2 float64
		scratch := make([]float64, rank)
		acc := make([]map[int32][]float64, l.order)
		for n := range acc {
			acc[n] = map[int32][]float64{}
		}
		for _, blk := range in {
			for e := 0; e < blk.NNZ(); e++ {
				idx := blk.EntryIndex(e)
				// Residual entry against the shipped factor rows.
				var model float64
				for r := 0; r < rank; r++ {
					v := 1.0
					for n := 0; n < l.order; n++ {
						v *= factors[n].At(int(idx[n]), r)
					}
					model += v
				}
				resid := blk.Val[e] - model
				norm2 += resid * resid
				// Row-wise MTTKRP partials (Eq. 11) for every mode.
				for n := 0; n < l.order; n++ {
					for r := 0; r < rank; r++ {
						scratch[r] = resid
					}
					for k := 0; k < l.order; k++ {
						if k == n {
							continue
						}
						row := factors[k].Row(int(idx[k]))
						for r := 0; r < rank; r++ {
							scratch[r] *= row[r]
						}
					}
					dst := acc[n][idx[n]]
					if dst == nil {
						dst = make([]float64, rank)
						acc[n][idx[n]] = dst
					}
					for r := 0; r < rank; r++ {
						dst[r] += scratch[r]
					}
				}
			}
		}
		for n := range acc {
			for row, vec := range acc[n] {
				out = append(out, rdd.KV[RowKey, []float64]{K: RowKey{Mode: int16(n), Row: row}, V: vec})
			}
		}
		out = append(out, rdd.KV[RowKey, []float64]{K: RowKey{Mode: -1}, V: []float64{norm2}})
		return out, nil
	})

	bounds := l.modeBounds
	partitioner := rdd.FuncPartitioner[RowKey](func(k RowKey, parts int) int {
		if k.Mode < 0 {
			return 0
		}
		p := bounds[k.Mode].PartitionOf(int(k.Row))
		if p >= parts {
			p = parts - 1
		}
		return p
	})
	reduced := rdd.ReduceByKeyPartitioned(partials, "mttkrp-reduce", l.parts, partitioner, func(a, b []float64) []float64 {
		for i := range a {
			a[i] += b[i]
		}
		return a
	})
	rows, err := reduced.Collect()
	if err != nil {
		return nil, 0, err
	}
	hs := make([]*mat.Dense, l.order)
	for n := 0; n < l.order; n++ {
		hs[n] = mat.NewDense(l.dims[n], rank)
	}
	var norm2 float64
	for _, kv := range rows {
		if kv.K.Mode < 0 {
			norm2 += kv.V[0]
			continue
		}
		copy(hs[kv.K.Mode].Row(int(kv.K.Row)), kv.V)
	}
	return hs, norm2, nil
}

// distributedGram computes A(n)ᵀA(n) = Σ_p A(n)ᵀ_(p)A(n)_(p) (Eq. 13): each
// partition's local Gram is an R×R matrix, aggregated on the driver.
func distributedGram(c *rdd.Cluster, f *mat.Dense, bounds part.Boundaries) (*mat.Dense, error) {
	rank := f.Cols()
	blocks := make([][][]float64, bounds.NumPartitions())
	for p := range blocks {
		lo, hi := bounds.Range(p)
		rows := make([][]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, f.Row(i))
		}
		blocks[p] = rows
	}
	rowsRDD := rdd.FromPartitions(c, "gram-rows", blocks)
	partial := rdd.MapPartitions(rowsRDD, "gram-partial", func(tc *rdd.TaskCtx, p int, in [][]float64) ([][]float64, error) {
		g := make([]float64, rank*rank)
		for _, row := range in {
			for i := 0; i < rank; i++ {
				if row[i] == 0 {
					continue
				}
				for j := 0; j < rank; j++ {
					g[i*rank+j] += row[i] * row[j]
				}
			}
		}
		return [][]float64{g}, nil
	})
	sum, ok, err := rdd.Reduce(partial, func(a, b []float64) []float64 {
		for i := range a {
			a[i] += b[i]
		}
		return a
	})
	if err != nil {
		return nil, err
	}
	if !ok {
		return mat.NewDense(rank, rank), nil
	}
	return mat.NewDenseData(rank, rank, sum), nil
}
