package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"time"

	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/metrics"
	"distenc/internal/part"
	"distenc/internal/rdd"
	"distenc/internal/sptensor"
)

// DistOptions configures the distributed solver.
type DistOptions struct {
	Options
	// Partitions is the tensor block count P (default: machine count).
	Partitions int
	// UniformPartition disables the Algorithm 2 greedy partitioner and
	// splits each mode into equal-width index ranges (the load-balancing
	// ablation).
	UniformPartition bool
	// DistributeGram computes the per-mode self-products A(n)ᵀA(n) with a
	// distributed stage per Eq. (13) instead of on the driver. The math is
	// identical; the driver path avoids per-iteration stage overhead at the
	// small scales of this reproduction.
	DistributeGram bool
	// GridPartition blocks the tensor on every mode (the paper's P×Q×K
	// compartmentalization, §III-C) instead of only on mode 0. Each engine
	// partition then covers a bounded index range per mode, which shrinks
	// the factor rows shipped per block and the duplicated map-side
	// combining — the property behind the paper's Figure 4 linearity. The
	// solver's mathematics is independent of the blocking.
	GridPartition bool
	// Kernel selects the map-side MTTKRP kernel: KernelAuto (default) picks
	// fused or SpMV-chain per partition from the layout's static cost model;
	// KernelFused and KernelSpMV force one kernel everywhere. The kernels
	// agree to float rounding (identical residual norms, factor entries
	// within summation-reorder error), and the choice is a pure function of
	// the layout, so it never perturbs recovery behavior.
	Kernel KernelMode
	// Wire selects the PackedRows shuffle wire format: unset resolves to
	// rdd.WireVarint (lossless delta-varint row compression); rdd.WireF32
	// additionally narrows values to float32 on the wire (decoded back to
	// float64, so accumulation stays in double precision); rdd.WireRaw is
	// the uncompressed v1 layout.
	Wire rdd.WireFormat
}

// RowKey addresses one factor-matrix row; Mode -1 carries side-channel
// scalars. DisTenC's own MTTKRP shuffle now moves packed slab records
// (PackedRows) instead of per-row KVs, but baselines that exchange individual
// factor rows (FlexiFact's SGD deltas) still key on it.
type RowKey struct {
	Mode int16
	Row  int32
}

// TensorBlock is one greedy-partitioned block of the observed tensor, the
// unit of work distributed across machines (§III-C).
type TensorBlock struct {
	Order int
	Idx   []int32
	Val   []float64
}

// SizeBytes implements rdd.Sizer so cached blocks charge honest memory.
func (b *TensorBlock) SizeBytes() int64 {
	return int64(len(b.Idx))*4 + int64(len(b.Val))*8 + 16
}

// NNZ returns the number of stored entries in the block.
func (b *TensorBlock) NNZ() int { return len(b.Val) }

// EntryIndex returns a view of entry e's multi-index.
func (b *TensorBlock) EntryIndex(e int) []int32 { return b.Idx[e*b.Order : (e+1)*b.Order] }

// CompleteDistributed runs DisTenC (Algorithm 3) on the engine:
//
//  1. Greedy block partitioning of the observed tensor (Algorithm 2) with
//     the blocks cached as an RDD (charging machine memory).
//  2. Per iteration, one distributed stage ships each block exactly the
//     factor rows its non-zeros touch (counted as shuffle traffic — the
//     O(T·N·M·I·R) term of Lemma 3), computes the block's residual entries
//     E = Ω∗(T−[[A]]) and its partial row-wise MTTKRP contributions
//     (Eq. 11), and reduces them by row key across machines.
//  3. The driver finishes the small dense algebra: spectral B updates
//     (Eq. 7), Hadamard-of-Grams F_n (Eq. 12), the Eq. (16) factor update,
//     and the Y/η bookkeeping — identical math to the serial reference.
func CompleteDistributed(c *rdd.Cluster, t *sptensor.Tensor, sims []*graph.Similarity, opt DistOptions) (*Result, error) {
	return completeDistributed(c, t, sims, opt, nil)
}

// ResumeDistributed continues an interrupted CompleteDistributed run from the
// latest checkpoint in opt.CheckpointDir, exactly as Resume does for the
// serial solver: the restored iteration state is bit-identical, so the
// resumed run's factors match an uninterrupted run's bit-for-bit.
func ResumeDistributed(c *rdd.Cluster, t *sptensor.Tensor, sims []*graph.Similarity, opt DistOptions) (*Result, error) {
	opt.Options = opt.Options.withDefaults()
	ck, err := loadCheckpoint(opt.CheckpointDir, t, opt.Options)
	if err != nil {
		return nil, err
	}
	return completeDistributed(c, t, sims, opt, ck)
}

// completeDistributed is the shared distributed loop; a non-nil ck replaces
// the fresh initialization with checkpointed state and starts at its
// iteration.
func completeDistributed(c *rdd.Cluster, t *sptensor.Tensor, sims []*graph.Similarity, opt DistOptions, ck *checkpointState) (*Result, error) {
	opt.Options = opt.Options.withDefaults()
	if opt.Partitions <= 0 {
		opt.Partitions = c.Machines()
	}
	if err := validate(t, sims); err != nil {
		return nil, err
	}
	if err := validateOptions(t, opt.Options); err != nil {
		return nil, err
	}
	sp, err := spectra(sims, opt.TruncK, opt.Seed)
	if err != nil {
		return nil, err
	}

	layout := NewLayout(t, opt)
	blocksRDD := layout.BlocksRDD(c)
	blocksRDD.Cache()
	if err := blocksRDD.Materialize(); err != nil {
		return nil, fmt.Errorf("core: caching tensor blocks: %w", err)
	}
	defer blocksRDD.Unpersist()

	st := newSolverState(t, sp, opt.Options)
	st.resid = nil // the stage computes residuals; never materialize driver-side
	if ck != nil {
		st.restore(ck, true)
	}
	start := time.Now()
	defer c.SetStageTag("")

	for ; st.iter < opt.MaxIter; st.iter++ {
		// Tag this iteration's stages so the stage log, task trace and
		// Chrome-trace export attribute every span to its iteration.
		c.SetStageTag(fmt.Sprintf("iter=%d", st.iter))
		mark := c.StageLogLen()
		iterStart := time.Now()
		hs, residNorm2, err := MTTKRPStage(c, blocksRDD, layout, st.factors, opt)
		if err != nil {
			return nil, err
		}
		gramStart := time.Now()
		grams := make([]*mat.Dense, t.Order())
		for n, f := range st.factors {
			if opt.DistributeGram {
				g, err := distributedGram(c, f, layout.modeBounds[n])
				if err != nil {
					return nil, err
				}
				grams[n] = g
			} else {
				grams[n] = mat.Gram(f)
			}
		}
		gramDur := time.Since(gramStart)
		if !opt.DistributeGram {
			c.RecordDriverSpan("gram", gramStart, gramDur)
		}
		drvStart := time.Now()
		next, bs := st.iterateWith(grams, func(mode int) *mat.Dense { return hs[mode] })
		delta := st.advanceNoResid(next, bs)
		drvDur := time.Since(drvStart)
		if opt.CheckpointEvery > 0 {
			ckStart := time.Now()
			if err := st.maybeCheckpoint(); err != nil {
				return nil, err
			}
			c.RecordDriverSpan("checkpoint", ckStart, time.Since(ckStart))
		}
		// Driver algebra (spectral B updates, Eq. 16 solves, Y/η updates)
		// runs between stages and is invisible to stage accounting.
		c.RecordDriverSpan("driver-algebra", drvStart, drvDur)
		ph := metrics.PhaseTimes{
			Iter:   st.iter,
			Gram:   gramDur,
			Driver: drvDur,
			Total:  time.Since(iterStart),
		}
		for _, s := range c.StageLogSince(mark) {
			switch {
			case strings.Contains(s.Name, "mttkrp-map"):
				ph.MTTKRPMap += s.Wall
			case strings.Contains(s.Name, "mttkrp-reduce"):
				ph.MTTKRPReduce += s.Wall
			}
			ph.BytesShuffled += s.BytesShuffled
		}
		st.phases = append(st.phases, ph)
		point := metrics.ConvergencePoint{
			Iter:    st.iter,
			Elapsed: time.Since(start),
			// The stage measured ‖E_t‖ before this iteration's update, so
			// the trace lags the serial solver's post-update RMSE by one
			// iteration — irrelevant for the convergence-rate plots.
			TrainRMSE: math.Sqrt(residNorm2 / float64(max(1, t.NNZ()))),
			MaxDelta:  delta,
		}
		st.trace = append(st.trace, point)
		if opt.OnIteration != nil {
			opt.OnIteration(point)
		}
		if st.stop(delta) {
			st.converged = true
			st.iter++
			break
		}
	}
	return st.result(start), nil
}

// layout is the immutable block structure computed once before the loop.
type Layout struct {
	order      int
	rank       int
	dims       []int
	blockParts [][]*TensorBlock
	// modeBounds[n] partitions mode n's rows for the reduce side.
	modeBounds []part.Boundaries
	// neededRows[p][n] lists (sorted, unique) the mode-n factor rows block p
	// touches.
	neededRows [][][]int32
	// locIdx[p] is the global→local row remap of partition p, parallel to its
	// blocks' concatenated Idx slabs: locIdx[p][e·N+n] is the position of
	// Idx[e·N+n] within neededRows[p][n]. The fused kernel accumulates into
	// flat per-mode slabs through it instead of hashing global row ids.
	locIdx [][]int32
	// rowRuns[p][n] are part.RunsOf offsets splitting neededRows[p][n] by
	// destination reduce partition, precomputed so the map task can slice its
	// accumulator slab into per-destination PackedRows records.
	rowRuns [][][]int
	parts   int
	// kernelOf[p] is the resolved MTTKRP kernel for partition p (fused or
	// SpMV), and modePerm[p][n] the per-mode entry permutation the SpMV walk
	// streams through (nil for mode 0, whose canonical order is already
	// correct, and for fused partitions). See planKernels.
	kernelOf []KernelMode
	modePerm [][][]int32
}

func NewLayout(t *sptensor.Tensor, opt DistOptions) *Layout {
	p := opt.Partitions
	order := t.Order()
	l := &Layout{
		order:      order,
		rank:       opt.Rank,
		dims:       t.Dims,
		parts:      p,
		modeBounds: make([]part.Boundaries, order),
	}
	for n := 0; n < order; n++ {
		if opt.UniformPartition {
			l.modeBounds[n] = part.Uniform(t.Dims[n], p)
		} else {
			l.modeBounds[n] = part.Greedy(t.ModeCounts(n), p)
		}
	}
	blocks := make([]*TensorBlock, p)
	for b := range blocks {
		blocks[b] = &TensorBlock{Order: order}
	}
	if opt.GridPartition {
		// Full grid blocking (the paper's P×Q×K compartmentalization):
		// every mode is split into g ranges and the g^N grid cells are dealt
		// round-robin onto the P engine partitions, so each partition covers
		// bounded index ranges in every mode. Oversplitting (≈4 cells per
		// partition) keeps the deal balanced when g^N is not a multiple of P
		// — otherwise a partition stuck with ⌈g^N/P⌉ cells bounds the stage.
		g := int(math.Ceil(math.Pow(4*float64(p), 1/float64(order))))
		if g < 1 {
			g = 1
		}
		gridBounds := make([]part.Boundaries, order)
		for n := 0; n < order; n++ {
			if opt.UniformPartition {
				gridBounds[n] = part.Uniform(t.Dims[n], g)
			} else {
				gridBounds[n] = part.Greedy(t.ModeCounts(n), g)
			}
		}
		for e := 0; e < t.NNZ(); e++ {
			idx := t.Index(e)
			cell := 0
			for n := 0; n < order; n++ {
				cn := gridBounds[n].PartitionOf(int(idx[n]))
				cell = cell*gridBounds[n].NumPartitions() + cn
			}
			blk := blocks[cell%p]
			blk.Idx = append(blk.Idx, idx...)
			blk.Val = append(blk.Val, t.Val[e])
		}
	} else {
		// Blocks split on mode 0: block b holds the slices whose mode-0
		// index falls in boundary range b.
		for e := 0; e < t.NNZ(); e++ {
			idx := t.Index(e)
			b := l.modeBounds[0].PartitionOf(int(idx[0]))
			blk := blocks[b]
			blk.Idx = append(blk.Idx, idx...)
			blk.Val = append(blk.Val, t.Val[e])
		}
	}
	l.blockParts = make([][]*TensorBlock, p)
	l.neededRows = make([][][]int32, p)
	l.locIdx = make([][]int32, p)
	l.rowRuns = make([][][]int, p)
	maxDim := 0
	for _, d := range t.Dims {
		maxDim = max(maxDim, d)
	}
	remap := make([]int32, maxDim) // global row → local slab index, per (block, mode)
	for b, blk := range blocks {
		sortEntriesModeMajor(blk)
		l.blockParts[b] = []*TensorBlock{blk}
		l.neededRows[b] = neededRows(blk)
		loc := make([]int32, len(blk.Idx))
		l.rowRuns[b] = make([][]int, order)
		for n := 0; n < order; n++ {
			rows := l.neededRows[b][n]
			for local, row := range rows {
				remap[row] = int32(local)
			}
			for e := 0; e < blk.NNZ(); e++ {
				loc[e*order+n] = remap[blk.Idx[e*order+n]]
			}
			l.rowRuns[b][n] = l.modeBounds[n].RunsOf(rows)
		}
		l.locIdx[b] = loc
	}
	l.planKernels(opt.Kernel)
	return l
}

// sortEntriesModeMajor reorders blk's entries lexicographically by their
// multi-index. Runs of entries then share their leading fibers, which lets
// the fused kernel reuse left-prefix Hadamard products (§III-C's row-wise
// fiber MTTKRP) and gives the accumulator slab a sequential access pattern on
// mode 0.
func sortEntriesModeMajor(blk *TensorBlock) {
	nnz := blk.NNZ()
	if nnz <= 1 {
		return
	}
	order := blk.Order
	perm := make([]int32, nnz)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		ia := blk.Idx[int(perm[a])*order : (int(perm[a])+1)*order]
		ib := blk.Idx[int(perm[b])*order : (int(perm[b])+1)*order]
		for n := 0; n < order; n++ {
			if ia[n] != ib[n] {
				return ia[n] < ib[n]
			}
		}
		return false
	})
	idx := make([]int32, len(blk.Idx))
	val := make([]float64, nnz)
	for i, e := range perm {
		copy(idx[i*order:(i+1)*order], blk.Idx[int(e)*order:(int(e)+1)*order])
		val[i] = blk.Val[e]
	}
	blk.Idx = idx
	blk.Val = val
}

// BlocksRDD wraps the layout's tensor blocks as a one-block-per-partition
// RDD (shared by DisTenC and the baselines that reuse its block structure).
func (l *Layout) BlocksRDD(c *rdd.Cluster) *rdd.RDD[*TensorBlock] {
	return rdd.FromPartitions(c, "tensor-blocks", l.blockParts)
}

// Parts returns the block count P.
func (l *Layout) Parts() int { return l.parts }

// ModeBounds returns mode n's row partitioning.
func (l *Layout) ModeBounds(n int) part.Boundaries { return l.modeBounds[n] }

// Dims returns the tensor's mode sizes.
func (l *Layout) Dims() []int { return l.dims }

// Order returns the tensor order N.
func (l *Layout) Order() int { return l.order }

// neededRows returns, per mode, the sorted unique factor rows blk touches —
// the "non-local factor matrix rows transferred to this process" of §III-C.
// Sort-based dedupe on a flat slice: gathering O(nnz) int32s and sorting is
// far cheaper than the O(nnz·N) hash-map inserts it replaces, and the sorted
// result is exactly what the local-id remap and per-destination row runs need.
func neededRows(blk *TensorBlock) [][]int32 {
	order := blk.Order
	nnz := blk.NNZ()
	out := make([][]int32, order)
	for n := 0; n < order; n++ {
		rows := make([]int32, nnz)
		for e := 0; e < nnz; e++ {
			rows[e] = blk.Idx[e*order+n]
		}
		slices.Sort(rows)
		out[n] = slices.Clip(slices.Compact(rows))
	}
	return out
}

// distributedGram computes A(n)ᵀA(n) = Σ_p A(n)ᵀ_(p)A(n)_(p) (Eq. 13): each
// partition's local Gram is an R×R matrix, aggregated on the driver. The
// product is symmetric, so each partition accumulates only the upper triangle
// and mirrors it once before emitting — half the multiply-adds per row.
func distributedGram(c *rdd.Cluster, f *mat.Dense, bounds part.Boundaries) (*mat.Dense, error) {
	rank := f.Cols()
	blocks := make([][][]float64, bounds.NumPartitions())
	for p := range blocks {
		lo, hi := bounds.Range(p)
		rows := make([][]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, f.Row(i))
		}
		blocks[p] = rows
	}
	rowsRDD := rdd.FromPartitions(c, "gram-rows", blocks)
	//distenc:hotpath
	partial := rdd.MapPartitions(rowsRDD, "gram-partial", func(tc *rdd.TaskCtx, p int, in [][]float64) ([][]float64, error) {
		//distenc:coldpath -- one R×R slab per task that escapes through Reduce into the solver's Eq. 16 algebra; arena memory must not outlive the iteration
		g := make([]float64, rank*rank)
		for _, row := range in {
			for i := 0; i < rank; i++ {
				vi := row[i]
				if vi == 0 {
					continue
				}
				gi := g[i*rank : (i+1)*rank]
				for j := i; j < rank; j++ {
					gi[j] += vi * row[j]
				}
			}
		}
		for i := 1; i < rank; i++ {
			for j := 0; j < i; j++ {
				g[i*rank+j] = g[j*rank+i]
			}
		}
		return [][]float64{g}, nil
	})
	sum, ok, err := rdd.Reduce(partial, func(a, b []float64) []float64 {
		for i := range a {
			a[i] += b[i]
		}
		return a
	})
	if err != nil {
		return nil, err
	}
	if !ok {
		return mat.NewDense(rank, rank), nil
	}
	return mat.NewDenseData(rank, rank, sum), nil
}
