package core

import (
	"errors"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"distenc/internal/mat"
	"distenc/internal/rdd"
	"distenc/internal/synth"
)

// assertBitIdentical compares factor sets by their IEEE-754 bit patterns:
// fault recovery and checkpoint/resume must reproduce the uninterrupted run
// exactly, not approximately.
func assertBitIdentical(t *testing.T, label string, want, got []*mat.Dense) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d factor matrices, want %d", label, len(got), len(want))
	}
	for n := range want {
		w, g := want[n].Data(), got[n].Data()
		if len(w) != len(g) {
			t.Fatalf("%s: mode %d has %d entries, want %d", label, n, len(g), len(w))
		}
		for i := range w {
			if math.Float64bits(w[i]) != math.Float64bits(g[i]) {
				t.Fatalf("%s: mode %d entry %d = %v, want %v (not bit-identical)",
					label, n, i, g[i], w[i])
			}
		}
	}
}

// TestChaosSolveBitIdentical is the end-to-end chaos acceptance test: a
// distributed solve under a seeded fault plan — random task failures plus a
// machine killed mid-run — must complete and produce factors bit-identical to
// a failure-free solve, in both engine modes. Recovery must be visible in the
// metrics, the recovery-event log, and the Summary table.
func TestChaosSolveBitIdentical(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1500, 61)
	opts := Options{Rank: 3, MaxIter: 6, Tol: 0, Seed: 62}

	for _, tc := range []struct {
		name string
		mode rdd.Mode
	}{
		{"in-memory", rdd.ModeInMemory},
		{"mapreduce", rdd.ModeMapReduce},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clean := rdd.MustNewCluster(rdd.Config{Machines: 3, Mode: tc.mode})
			defer clean.Close()
			want, err := CompleteDistributed(clean, d.Tensor, d.Sims, DistOptions{Options: opts})
			if err != nil {
				t.Fatal(err)
			}

			chaos := rdd.MustNewCluster(rdd.Config{Machines: 3, Mode: tc.mode, Fault: &rdd.FaultPlan{
				Seed:            7,
				TaskFailureProb: 0.25,
				KillMachine:     1,
				KillAtStage:     5,
			}})
			defer chaos.Close()
			got, err := CompleteDistributed(chaos, d.Tensor, d.Sims, DistOptions{Options: opts})
			if err != nil {
				t.Fatal(err)
			}

			if retries := chaos.Metrics().TaskRetries.Load(); retries < 5 {
				t.Errorf("chaos run retried only %d tasks, want >= 5", retries)
			}
			if alive := chaos.HealthyMachines(); alive != 2 {
				t.Errorf("HealthyMachines = %d after the planned kill, want 2", alive)
			}
			var kills, retryEvents int
			for _, ev := range chaos.Recoveries() {
				switch ev.Kind {
				case rdd.RecoveryMachineKill:
					kills++
				case rdd.RecoveryTaskRetry:
					retryEvents++
				}
			}
			if kills != 1 {
				t.Errorf("recovery log has %d machine kills, want 1", kills)
			}
			if retryEvents < 5 {
				t.Errorf("recovery log has %d task-retry events, want >= 5", retryEvents)
			}
			sum := chaos.Summary()
			for _, needle := range []string{"recovery events:", rdd.RecoveryMachineKill, rdd.RecoveryTaskRetry} {
				if !strings.Contains(sum, needle) {
					t.Errorf("Summary does not report %q:\n%s", needle, sum)
				}
			}
			// Lemma 3 accounting: recovery work (failed attempts, lineage
			// recomputes after the kill) must not inflate the exactly-once
			// shuffle counter — it lands in BytesWasted/BytesRecomputed
			// instead, so BytesShuffled stays bit-equal to the clean run.
			cleanShuffled := clean.Metrics().BytesShuffled.Load()
			if chaosShuffled := chaos.Metrics().BytesShuffled.Load(); chaosShuffled != cleanShuffled {
				t.Errorf("chaos BytesShuffled = %d, clean = %d: recovery traffic double-counted",
					chaosShuffled, cleanShuffled)
			}
			var recomputes int
			for _, ev := range chaos.Recoveries() {
				if ev.Kind == rdd.RecoveryShuffleRecompute {
					recomputes++
				}
			}
			if recomputes > 0 && chaos.Metrics().BytesRecomputed.Load() == 0 {
				t.Errorf("%d shuffle recomputes but BytesRecomputed = 0", recomputes)
			}
			assertBitIdentical(t, "chaos vs clean", want.Model.Factors, got.Model.Factors)
		})
	}
}

// TestChaosKernelChoice asserts the MTTKRP kernel choice is invisible to
// fault recovery: under the same seeded fault plan (task failures plus a
// mid-run machine kill), every kernel mode must recover to factors
// bit-identical to its own failure-free run, report the same recovery-event
// profile, and — because kernel choice never changes what is shuffled, only
// how it is computed — every mode must land on exactly the same BytesShuffled.
func TestChaosKernelChoice(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1500, 61)
	opts := Options{Rank: 3, MaxIter: 5, Tol: 0, Seed: 62}
	shuffled := make(map[KernelMode]int64)
	for _, kernel := range []KernelMode{KernelFused, KernelSpMV, KernelAuto} {
		dopt := DistOptions{Options: opts, GridPartition: true, Kernel: kernel}

		clean := rdd.MustNewCluster(rdd.Config{Machines: 3})
		want, err := CompleteDistributed(clean, d.Tensor, d.Sims, dopt)
		if err != nil {
			t.Fatalf("kernel=%v clean: %v", kernel, err)
		}

		chaos := rdd.MustNewCluster(rdd.Config{Machines: 3, Fault: &rdd.FaultPlan{
			Seed:            7,
			TaskFailureProb: 0.25,
			KillMachine:     1,
			KillAtStage:     5,
		}})
		got, err := CompleteDistributed(chaos, d.Tensor, d.Sims, dopt)
		if err != nil {
			t.Fatalf("kernel=%v chaos: %v", kernel, err)
		}

		var kills int
		for _, ev := range chaos.Recoveries() {
			if ev.Kind == rdd.RecoveryMachineKill {
				kills++
			}
		}
		if kills != 1 {
			t.Errorf("kernel=%v: recovery log has %d machine kills, want 1", kernel, kills)
		}
		if retries := chaos.Metrics().TaskRetries.Load(); retries == 0 {
			t.Errorf("kernel=%v: chaos run retried no tasks", kernel)
		}
		cleanShuffled := clean.Metrics().BytesShuffled.Load()
		if chaosShuffled := chaos.Metrics().BytesShuffled.Load(); chaosShuffled != cleanShuffled {
			t.Errorf("kernel=%v: chaos BytesShuffled = %d, clean = %d", kernel, chaosShuffled, cleanShuffled)
		}
		shuffled[kernel] = cleanShuffled
		assertBitIdentical(t, "kernel="+kernel.String(), want.Model.Factors, got.Model.Factors)
		clean.Close()
		chaos.Close()
	}
	if shuffled[KernelFused] != shuffled[KernelSpMV] || shuffled[KernelAuto] != shuffled[KernelFused] {
		t.Errorf("BytesShuffled differs across kernels: fused=%d spmv=%d auto=%d",
			shuffled[KernelFused], shuffled[KernelSpMV], shuffled[KernelAuto])
	}
}

// TestChaosSpeculationStragglers is the straggler-mitigation acceptance test:
// a distributed solve under a seeded straggler plan with speculative
// execution enabled must produce factors bit-identical to a failure-free
// solve in both engine modes (duplicate attempts never corrupt results or
// exactly-once totals), finish faster than the same straggler plan without
// speculation, and surface the backup attempts in the metrics and recovery
// log.
func TestChaosSpeculationStragglers(t *testing.T) {
	d := synth.LinearFactorDataset([]int{20, 20, 20}, 2, 1500, 71)
	opts := Options{Rank: 3, MaxIter: 4, Tol: 0, Seed: 72}
	plan := func() *rdd.FaultPlan {
		return &rdd.FaultPlan{Seed: 11, StragglerProb: 0.2, StragglerDelay: 20 * time.Millisecond}
	}
	spec := rdd.SpeculationConfig{
		Enabled: true, Quantile: 0.5, Multiplier: 2, MinDuration: 2 * time.Millisecond,
	}

	for _, tc := range []struct {
		name string
		mode rdd.Mode
	}{
		{"in-memory", rdd.ModeInMemory},
		{"mapreduce", rdd.ModeMapReduce},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clean := rdd.MustNewCluster(rdd.Config{Machines: 3, Mode: tc.mode})
			defer clean.Close()
			want, err := CompleteDistributed(clean, d.Tensor, d.Sims, DistOptions{Options: opts})
			if err != nil {
				t.Fatal(err)
			}

			slow := rdd.MustNewCluster(rdd.Config{Machines: 3, Mode: tc.mode, Fault: plan()})
			start := time.Now()
			if _, err := CompleteDistributed(slow, d.Tensor, d.Sims, DistOptions{Options: opts}); err != nil {
				t.Fatal(err)
			}
			slowWall := time.Since(start)
			slow.Close()

			fast := rdd.MustNewCluster(rdd.Config{
				Machines: 3, Mode: tc.mode, Fault: plan(), Speculation: spec,
			})
			defer fast.Close()
			start = time.Now()
			got, err := CompleteDistributed(fast, d.Tensor, d.Sims, DistOptions{Options: opts})
			if err != nil {
				t.Fatal(err)
			}
			fastWall := time.Since(start)
			fast.Quiesce() // drain out-raced stragglers before reading totals

			assertBitIdentical(t, "speculation vs clean", want.Model.Factors, got.Model.Factors)
			if n := fast.Metrics().SpeculativeTasks.Load(); n == 0 {
				t.Fatal("no backup attempts launched against a 20% straggler plan")
			}
			if w := fast.Metrics().BytesWasted.Load(); w == 0 {
				t.Error("BytesWasted = 0: out-raced attempts' traffic vanished instead of being charged as waste")
			}
			if cleanB, fastB := clean.Metrics().BytesShuffled.Load(), fast.Metrics().BytesShuffled.Load(); fastB != cleanB {
				t.Errorf("BytesShuffled with speculation = %d, clean = %d: a duplicate attempt leaked into the exactly-once counter",
					fastB, cleanB)
			}
			if fastWall >= slowWall {
				t.Errorf("speculation run took %v, no-speculation straggler run took %v: backups bought nothing",
					fastWall, slowWall)
			}
			var wins int
			for _, ev := range fast.Recoveries() {
				if ev.Kind == rdd.RecoverySpeculativeWin {
					wins++
				}
			}
			if wins == 0 {
				t.Error("no speculative-win recovery events")
			}
			if sum := fast.Summary(); !strings.Contains(sum, rdd.RecoverySpeculativeWin) {
				t.Errorf("Summary does not report speculative wins:\n%s", sum)
			}
		})
	}
}

// TestResumeReproducesSerialRun interrupts a checkpointed serial solve and
// resumes it: the resumed run's factors must match an uninterrupted run
// bit-for-bit.
func TestResumeReproducesSerialRun(t *testing.T) {
	d := synth.LinearFactorDataset([]int{15, 15, 15}, 2, 900, 63)
	base := Options{Rank: 3, Tol: 0, Seed: 64}

	full := base
	full.MaxIter = 8
	want, err := Complete(d.Tensor, d.Sims, full)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	interrupted := base
	interrupted.MaxIter = 4
	interrupted.CheckpointEvery = 2
	interrupted.CheckpointDir = dir
	if _, err := Complete(d.Tensor, d.Sims, interrupted); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(CheckpointPath(dir)); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	resumed := base
	resumed.MaxIter = 8
	resumed.CheckpointEvery = 2
	resumed.CheckpointDir = dir
	got, err := Resume(d.Tensor, d.Sims, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iters != 8 {
		t.Errorf("resumed run reports %d iterations, want 8", got.Iters)
	}
	assertBitIdentical(t, "resume vs full", want.Model.Factors, got.Model.Factors)
	assertBitIdentical(t, "resume vs full aux", want.Aux, got.Aux)
}

// TestResumeReproducesDistributedRun is the distributed counterpart: an
// interrupted CompleteDistributed resumes from its checkpoint to factors
// bit-identical to an uninterrupted run.
func TestResumeReproducesDistributedRun(t *testing.T) {
	d := synth.LinearFactorDataset([]int{15, 15, 15}, 2, 900, 65)
	base := Options{Rank: 3, Tol: 0, Seed: 66}

	clean := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer clean.Close()
	full := DistOptions{Options: base}
	full.MaxIter = 8
	want, err := CompleteDistributed(clean, d.Tensor, d.Sims, full)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c1 := rdd.MustNewCluster(rdd.Config{Machines: 3})
	interrupted := DistOptions{Options: base}
	interrupted.MaxIter = 4
	interrupted.CheckpointEvery = 2
	interrupted.CheckpointDir = dir
	_, err = CompleteDistributed(c1, d.Tensor, d.Sims, interrupted)
	c1.Close()
	if err != nil {
		t.Fatal(err)
	}

	c2 := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer c2.Close()
	resumed := DistOptions{Options: base}
	resumed.MaxIter = 8
	resumed.CheckpointDir = dir
	got, err := ResumeDistributed(c2, d.Tensor, d.Sims, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iters != 8 {
		t.Errorf("resumed run reports %d iterations, want 8", got.Iters)
	}
	assertBitIdentical(t, "distributed resume vs full", want.Model.Factors, got.Model.Factors)
}

// TestResumeAfterChaoticRun combines the two recovery mechanisms: a
// checkpointed distributed run under a fault plan is resumed on a fresh
// cluster and still matches the clean uninterrupted solve bit-for-bit.
func TestResumeAfterChaoticRun(t *testing.T) {
	d := synth.LinearFactorDataset([]int{15, 15, 15}, 2, 900, 67)
	base := Options{Rank: 3, Tol: 0, Seed: 68}

	clean := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer clean.Close()
	full := DistOptions{Options: base}
	full.MaxIter = 8
	want, err := CompleteDistributed(clean, d.Tensor, d.Sims, full)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c1 := rdd.MustNewCluster(rdd.Config{Machines: 3, Fault: &rdd.FaultPlan{
		Seed:            9,
		TaskFailureProb: 0.2,
		KillMachine:     2,
		KillAtStage:     3,
	}})
	interrupted := DistOptions{Options: base}
	interrupted.MaxIter = 4
	interrupted.CheckpointEvery = 4
	interrupted.CheckpointDir = dir
	_, err = CompleteDistributed(c1, d.Tensor, d.Sims, interrupted)
	c1.Close()
	if err != nil {
		t.Fatal(err)
	}

	c2 := rdd.MustNewCluster(rdd.Config{Machines: 3})
	defer c2.Close()
	resumed := DistOptions{Options: base}
	resumed.MaxIter = 8
	resumed.CheckpointDir = dir
	got, err := ResumeDistributed(c2, d.Tensor, d.Sims, resumed)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "chaotic resume vs clean full", want.Model.Factors, got.Model.Factors)
}

// TestResumeErrors covers the failure modes of the resume API.
func TestResumeErrors(t *testing.T) {
	d := synth.LinearFactorDataset([]int{10, 10, 10}, 2, 300, 69)

	// No directory configured.
	if _, err := Resume(d.Tensor, d.Sims, Options{Rank: 3}); err == nil {
		t.Error("Resume without CheckpointDir succeeded")
	}

	// Directory exists but holds no checkpoint.
	empty := t.TempDir()
	if _, err := Resume(d.Tensor, d.Sims, Options{Rank: 3, CheckpointDir: empty}); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Resume from empty dir: err = %v, want ErrNoCheckpoint", err)
	}

	// CheckpointEvery without a directory is rejected up front.
	if _, err := Complete(d.Tensor, d.Sims, Options{Rank: 3, MaxIter: 2, CheckpointEvery: 1}); err == nil {
		t.Error("Complete with CheckpointEvery but no CheckpointDir succeeded")
	}

	// A checkpoint from a different rank is rejected.
	dir := t.TempDir()
	opt := Options{Rank: 3, MaxIter: 2, Tol: 0, Seed: 70, CheckpointEvery: 2, CheckpointDir: dir}
	if _, err := Complete(d.Tensor, d.Sims, opt); err != nil {
		t.Fatal(err)
	}
	mismatch := opt
	mismatch.Rank = 4
	if _, err := Resume(d.Tensor, d.Sims, mismatch); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Resume with wrong rank: err = %v, want ErrDimensionMismatch", err)
	}

	// A corrupt checkpoint file is rejected, not misparsed.
	if err := os.WriteFile(CheckpointPath(dir), []byte("not a checkpoint"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(d.Tensor, d.Sims, opt); err == nil {
		t.Error("Resume from corrupt checkpoint succeeded")
	}
}
