package synth

import (
	"math"
	"testing"

	"distenc/internal/metrics"
)

func TestScalabilityTensorShape(t *testing.T) {
	ts := ScalabilityTensor([]int{100, 100, 100}, 5000, 1)
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if ts.NNZ() < 4900 || ts.NNZ() > 5000 {
		t.Fatalf("nnz = %d", ts.NNZ())
	}
	// Determinism: same seed, same tensor.
	ts2 := ScalabilityTensor([]int{100, 100, 100}, 5000, 1)
	// Determinism means bit-identical output, so compare bit patterns.
	if ts2.NNZ() != ts.NNZ() || math.Float64bits(ts2.Val[0]) != math.Float64bits(ts.Val[0]) {
		t.Fatal("generator not deterministic")
	}
	ts3 := ScalabilityTensor([]int{100, 100, 100}, 5000, 2)
	if math.Float64bits(ts3.Val[0]) == math.Float64bits(ts.Val[0]) && ts3.Idx[0] == ts.Idx[0] && ts3.Idx[1] == ts.Idx[1] {
		t.Fatal("different seeds should differ")
	}
}

func TestLinearFactorDatasetConsistency(t *testing.T) {
	d := LinearFactorDataset([]int{50, 60, 70}, 5, 3000, 7)
	if err := d.Tensor.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Truth == nil || len(d.Sims) != 3 {
		t.Fatal("missing truth or sims")
	}
	// Observations carry the model values verbatim (same arithmetic, no
	// noise), so the stored and recomputed floats must agree bit for bit.
	for e := 0; e < 20; e++ {
		if got, want := d.Tensor.Val[e], d.Truth.At(d.Tensor.Index(e)); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("entry %d = %v, want model value %v", e, got, want)
		}
	}
	// The tri-diagonal similarity matches the mode sizes.
	for n, s := range d.Sims {
		if s.N != d.Tensor.Dims[n] {
			t.Fatalf("sim %d size %d != dim %d", n, s.N, d.Tensor.Dims[n])
		}
		if s.NumEdges() != d.Tensor.Dims[n]-1 {
			t.Fatalf("sim %d edges = %d", n, s.NumEdges())
		}
	}
	// Model evaluates exactly on observations, so RMSE of truth is 0.
	if r := metrics.RMSE(d.Tensor, d.Truth); r != 0 {
		t.Fatalf("truth RMSE = %v", r)
	}
}

func TestNetflixSimProperties(t *testing.T) {
	d := NetflixSim(RecsysConfig{Users: 80, Items: 60, Contexts: 10, Rank: 4, NNZ: 2000, Noise: 0.1, Seed: 3})
	if err := d.Tensor.Validate(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < d.Tensor.NNZ(); e++ {
		if v := d.Tensor.Val[e]; v < 1-1e-9 || v > 5+1e-9 {
			t.Fatalf("rating %v outside [1,5]", v)
		}
	}
	if d.Sims[1] == nil || d.Sims[0] != nil || d.Sims[2] != nil {
		t.Fatal("netflix must have exactly a movie-mode similarity")
	}
	if d.Sims[1].N != 60 {
		t.Fatalf("movie sim size %d", d.Sims[1].N)
	}
}

func TestTwitterSimProperties(t *testing.T) {
	d := TwitterSim(RecsysConfig{Users: 60, Items: 60, Contexts: 16, Rank: 4, NNZ: 1500, Noise: 0.05, Seed: 4})
	if err := d.Tensor.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Sims[0] == nil || d.Sims[1] == nil || d.Sims[2] != nil {
		t.Fatal("twitter must have creator and expert similarities")
	}
	if d.Tensor.Dims[2] != 16 {
		t.Fatalf("topic mode = %d, want 16", d.Tensor.Dims[2])
	}
}

func TestFacebookSimProperties(t *testing.T) {
	d := FacebookSim(LinkPredConfig{Users: 70, Days: 5, Rank: 4, NNZ: 1500, Noise: 0.05, Seed: 5})
	if err := d.Tensor.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Tensor.Dims[0] != d.Tensor.Dims[1] {
		t.Fatal("facebook tensor must be user×user×time")
	}
	// No self loops.
	for e := 0; e < d.Tensor.NNZ(); e++ {
		idx := d.Tensor.Index(e)
		if idx[0] == idx[1] {
			t.Fatal("self link generated")
		}
	}
	if d.Concepts[0] == nil {
		t.Fatal("missing planted communities")
	}
}

func TestDBLPSimPlantsConcepts(t *testing.T) {
	d := DBLPSim(DBLPConfig{Authors: 90, Papers: 120, Venues: 30, Concepts: 3, Rank: 3, NNZ: 2000, Seed: 6})
	if err := d.Tensor.Validate(); err != nil {
		t.Fatal(err)
	}
	ac, pc, vc := d.Concepts[0], d.Concepts[1], d.Concepts[2]
	if len(ac) != 90 || len(pc) != 120 || len(vc) != 30 {
		t.Fatal("concept labels missing")
	}
	// Every observed triple must be concept-consistent by construction.
	for e := 0; e < d.Tensor.NNZ(); e++ {
		idx := d.Tensor.Index(e)
		c := pc[idx[1]]
		if ac[idx[0]] != c || vc[idx[2]] != c {
			t.Fatalf("entry %d mixes concepts: author=%d paper=%d venue=%d",
				e, ac[idx[0]], c, vc[idx[2]])
		}
	}
}

func TestDatasetString(t *testing.T) {
	d := LinearFactorDataset([]int{10, 10, 10}, 2, 100, 1)
	if d.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRatingScaleDegenerate(t *testing.T) {
	s, sh := ratingScale(2, 2)
	if s != 1 || sh != 0 {
		t.Fatal("degenerate range must be identity")
	}
}

func TestClamp(t *testing.T) {
	if clamp(0, 1, 5) != 1 || clamp(9, 1, 5) != 5 || clamp(3, 1, 5) != 3 {
		t.Fatal("clamp wrong")
	}
}

func TestDBLP4SimConsistency(t *testing.T) {
	d := DBLP4Sim(DBLP4Config{Authors: 60, Papers: 80, Terms: 40, Venues: 20, Concepts: 4, NNZ: 1500, Seed: 8})
	if err := d.Tensor.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Tensor.Order() != 4 {
		t.Fatalf("order = %d", d.Tensor.Order())
	}
	ac, pc, tc, vc := d.Concepts[0], d.Concepts[1], d.Concepts[2], d.Concepts[3]
	for e := 0; e < d.Tensor.NNZ(); e++ {
		idx := d.Tensor.Index(e)
		c := pc[idx[1]]
		if ac[idx[0]] != c || tc[idx[2]] != c || vc[idx[3]] != c {
			t.Fatal("4-tuple mixes concepts")
		}
	}
	if len(d.Sims) != 4 || d.Sims[0] == nil {
		t.Fatal("author similarity missing")
	}
}
