// Package synth generates every workload the experiments run on.
//
// Two generators mirror the paper's synthetic datasets exactly (§IV-A):
// uniform random tensors for the scalability sweeps, and the linear-factor
// construction with the Eq. (17) tri-diagonal similarity for the
// reconstruction-error tests.
//
// Four more stand in for the paper's real datasets (Netflix, Twitter lists,
// Facebook, DBLP), which are not redistributable: each plants the structure
// the corresponding experiment relies on — low-rank signal, informative
// per-mode similarity, realistic sparsity — at ~100× reduced scale, with
// known ground truth. DESIGN.md §2 documents the substitution.
package synth

import (
	"fmt"
	"math"
	"math/rand/v2"

	"distenc/internal/graph"
	"distenc/internal/mat"
	"distenc/internal/sptensor"
)

// Dataset bundles a (partially observed) tensor with its per-mode auxiliary
// similarities and, when planted, the generating model and concept labels.
type Dataset struct {
	Name   string
	Tensor *sptensor.Tensor
	// Sims holds one similarity per mode; nil entries mean no auxiliary
	// information for that mode.
	Sims []*graph.Similarity
	// Truth is the planted Kruskal model when one exists.
	Truth *sptensor.Kruskal
	// Concepts[n][i] is the planted concept of object i in mode n, or nil
	// when the mode has no planted concepts (used by the Table III
	// concept-discovery experiment).
	Concepts [][]int
}

// String summarizes the dataset like a Table II row.
func (d *Dataset) String() string {
	return fmt.Sprintf("%-14s dims=%v nnz=%d", d.Name, d.Tensor.Dims, d.Tensor.NNZ())
}

// ScalabilityTensor draws nnz entries uniformly at random with N(0,1) values
// — the paper's scalability synthetic ("randomly setting a data point at
// (i,j,k)"). Duplicate coordinates are coalesced, so the returned nnz can be
// marginally lower than requested.
func ScalabilityTensor(dims []int, nnz int, seed uint64) *sptensor.Tensor {
	rng := rand.New(rand.NewPCG(seed, 0x5ca1ab1e))
	t := sptensor.New(dims...)
	idx := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = int32(rng.IntN(d))
		}
		t.Append(idx, rng.NormFloat64())
	}
	return t.Dedupe()
}

// LinearFactorDataset reproduces the reconstruction-error synthetic of
// §IV-A: factor columns are linear in the row index, A(n)[i,r] = t_i·ε_r +
// ε'_r with ε, ε' ~ N(0,1), so consecutive rows are similar, and the
// auxiliary similarity is the Eq. (17) tri-diagonal matrix. The row
// coordinate t_i = i/I_n is normalized to keep values O(1) at any mode size
// (a pure rescaling of the paper's construction). Observations are nnz
// uniformly sampled coordinates carrying exact model values.
func LinearFactorDataset(dims []int, rank, nnz int, seed uint64) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 0x0ddba11))
	factors := make([]*mat.Dense, len(dims))
	sims := make([]*graph.Similarity, len(dims))
	for n, d := range dims {
		f := mat.NewDense(d, rank)
		for r := 0; r < rank; r++ {
			eps := rng.NormFloat64()
			eps2 := rng.NormFloat64()
			for i := 0; i < d; i++ {
				f.Set(i, r, float64(i)/float64(d)*eps+eps2)
			}
		}
		factors[n] = f
		sims[n] = graph.TriDiagonal(d)
	}
	truth := sptensor.NewKruskal(factors...)
	t := sptensor.New(dims...)
	idx := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = int32(rng.IntN(d))
		}
		t.Append(idx, truth.At(idx))
	}
	t.Dedupe()
	return &Dataset{Name: "synthetic-error", Tensor: t, Sims: sims, Truth: truth}
}

// blockFactors builds a factor matrix with nBlocks planted communities:
// rows in the same block share a random center plus jitter·N(0,1) noise.
// Returns the matrix and the block label per row.
func blockFactors(rng *rand.Rand, n, rank, nBlocks int, jitter float64) (*mat.Dense, []int) {
	centers := mat.NewDense(nBlocks, rank)
	for b := 0; b < nBlocks; b++ {
		row := centers.Row(b)
		for r := range row {
			row[r] = rng.Float64()
		}
	}
	f := mat.NewDense(n, rank)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		b := graph.BlockOf(i, n, nBlocks)
		labels[i] = b
		src := centers.Row(b)
		dst := f.Row(i)
		for r := range dst {
			dst[r] = src[r] + jitter*rng.NormFloat64()
			if dst[r] < 0 {
				dst[r] = -dst[r] // keep factors non-negative like ratings
			}
		}
	}
	return f, labels
}

// communitySimilarity links objects sharing a planted block: the "same
// affiliation / same location" auxiliary matrices of the paper's real
// datasets. Each object gets ~deg within-block neighbors.
func communitySimilarity(rng *rand.Rand, labels []int, deg int) *graph.Similarity {
	n := len(labels)
	byBlock := map[int][]int{}
	for i, b := range labels {
		byBlock[b] = append(byBlock[b], i)
	}
	s := graph.NewSimilarity(n)
	seen := map[[2]int]bool{}
	for _, members := range byBlock {
		if len(members) < 2 {
			continue
		}
		for _, i := range members {
			for d := 0; d < deg; d++ {
				j := members[rng.IntN(len(members))]
				if i == j {
					continue
				}
				key := [2]int{min(i, j), max(i, j)}
				if seen[key] {
					continue
				}
				seen[key] = true
				s.AddEdge(i, j, 1)
			}
		}
	}
	return s
}

// RecsysConfig sizes the recommender stand-ins.
type RecsysConfig struct {
	Users, Items, Contexts int
	Rank                   int
	NNZ                    int
	Noise                  float64
	Seed                   uint64
}

// NetflixSim builds the user-movie-time rating stand-in: planted low-rank
// preferences, ratings rescaled to the 1–5 star range with Gaussian noise,
// and a movie-movie similarity linking movies with the same planted genre
// (the paper's title-based movie similarity).
func NetflixSim(cfg RecsysConfig) *Dataset {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xf1cbeef))
	uf, _ := blockFactors(rng, cfg.Users, cfg.Rank, 8, 0.15)
	mf, genres := blockFactors(rng, cfg.Items, cfg.Rank, 6, 0.10)
	tf, _ := blockFactors(rng, cfg.Contexts, cfg.Rank, 3, 0.05)
	truth := sptensor.NewKruskal(uf, mf, tf)

	// Rescale so typical ratings span ~1..5.
	lo, hi := kruskalRange(rng, truth, 2000)
	scale, shift := ratingScale(lo, hi)

	t := sptensor.New(cfg.Users, cfg.Items, cfg.Contexts)
	idx := make([]int32, 3)
	for e := 0; e < cfg.NNZ; e++ {
		idx[0] = int32(rng.IntN(cfg.Users))
		idx[1] = int32(rng.IntN(cfg.Items))
		idx[2] = int32(rng.IntN(cfg.Contexts))
		v := truth.At(idx)*scale + shift + cfg.Noise*rng.NormFloat64()
		t.Append(idx, clamp(v, 1, 5))
	}
	t.Dedupe()
	rescaleKruskal(truth, scale, shift)
	sims := []*graph.Similarity{nil, communitySimilarity(rng, genres, 3), nil}
	return &Dataset{
		Name: "netflix-sim", Tensor: t, Sims: sims, Truth: truth,
		Concepts: [][]int{nil, genres, nil},
	}
}

// TwitterSim builds the creator-expert-topic Twitter-list stand-in with
// creator-creator and expert-expert location similarities (§IV-E).
func TwitterSim(cfg RecsysConfig) *Dataset {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7e11ca57))
	cf, cloc := blockFactors(rng, cfg.Users, cfg.Rank, 10, 0.12)
	ef, eloc := blockFactors(rng, cfg.Items, cfg.Rank, 10, 0.12)
	tf, _ := blockFactors(rng, cfg.Contexts, cfg.Rank, 4, 0.05)
	truth := sptensor.NewKruskal(cf, ef, tf)
	t := sptensor.New(cfg.Users, cfg.Items, cfg.Contexts)
	idx := make([]int32, 3)
	for e := 0; e < cfg.NNZ; e++ {
		idx[0] = int32(rng.IntN(cfg.Users))
		idx[1] = int32(rng.IntN(cfg.Items))
		idx[2] = int32(rng.IntN(cfg.Contexts))
		v := truth.At(idx) + cfg.Noise*rng.NormFloat64()
		t.Append(idx, v)
	}
	t.Dedupe()
	sims := []*graph.Similarity{
		communitySimilarity(rng, cloc, 3),
		communitySimilarity(rng, eloc, 3),
		nil,
	}
	return &Dataset{
		Name: "twitter-sim", Tensor: t, Sims: sims, Truth: truth,
		Concepts: [][]int{cloc, eloc, nil},
	}
}

// LinkPredConfig sizes the Facebook link-prediction stand-in.
type LinkPredConfig struct {
	Users, Days int
	Rank        int
	NNZ         int
	Noise       float64
	Seed        uint64
}

// FacebookSim builds the user-user-time friendship stand-in of §IV-F:
// community-structured link strengths with a user-user similarity derived
// from the same communities (the paper's wall-post similarity).
func FacebookSim(cfg LinkPredConfig) *Dataset {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xfaceb00c))
	uf, comm := blockFactors(rng, cfg.Users, cfg.Rank, 12, 0.10)
	vf := uf.Clone() // symmetric relationship: both user modes share factors
	df, _ := blockFactors(rng, cfg.Days, cfg.Rank, 2, 0.05)
	truth := sptensor.NewKruskal(uf, vf, df)
	t := sptensor.New(cfg.Users, cfg.Users, cfg.Days)
	idx := make([]int32, 3)
	for e := 0; e < cfg.NNZ; e++ {
		// Bias sampling toward in-community pairs so observed links reflect
		// homophily, as in the real network.
		u := rng.IntN(cfg.Users)
		var v int
		if rng.Float64() < 0.7 {
			v = sameBlockNeighbor(rng, comm, u)
		} else {
			v = rng.IntN(cfg.Users)
		}
		if u == v {
			continue
		}
		idx[0], idx[1], idx[2] = int32(u), int32(v), int32(rng.IntN(cfg.Days))
		t.Append(idx, truth.At(idx)+cfg.Noise*rng.NormFloat64())
	}
	t.Dedupe()
	sims := []*graph.Similarity{
		communitySimilarity(rng, comm, 3),
		communitySimilarity(rng, comm, 3),
		nil,
	}
	return &Dataset{
		Name: "facebook-sim", Tensor: t, Sims: sims, Truth: truth,
		Concepts: [][]int{comm, comm, nil},
	}
}

func sameBlockNeighbor(rng *rand.Rand, labels []int, u int) int {
	// Rejection sample within u's block; bounded attempts keep it O(1) in
	// expectation for balanced blocks.
	for tries := 0; tries < 32; tries++ {
		v := rng.IntN(len(labels))
		if labels[v] == labels[u] {
			return v
		}
	}
	return rng.IntN(len(labels))
}

// DBLPConfig sizes the concept-discovery stand-in.
type DBLPConfig struct {
	Authors, Papers, Venues int
	Concepts                int
	Rank                    int
	NNZ                     int
	Seed                    uint64
}

// DBLPSim builds the author-paper-venue bibliography stand-in of §IV-G.
// Every paper belongs to one planted concept (Database, Data Mining, …);
// its authors and venue are drawn from that concept's blocks, so a correct
// factorization should recover one concept per component (Table III). The
// author-author similarity links same-affiliation authors, approximated by
// same-concept blocks.
func DBLPSim(cfg DBLPConfig) *Dataset {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xdb1bdb1b))
	authorConcept := make([]int, cfg.Authors)
	for i := range authorConcept {
		authorConcept[i] = graph.BlockOf(i, cfg.Authors, cfg.Concepts)
	}
	venueConcept := make([]int, cfg.Venues)
	for i := range venueConcept {
		venueConcept[i] = graph.BlockOf(i, cfg.Venues, cfg.Concepts)
	}
	paperConcept := make([]int, cfg.Papers)
	for i := range paperConcept {
		paperConcept[i] = rng.IntN(cfg.Concepts)
	}
	byConceptAuthor := indexByConcept(authorConcept, cfg.Concepts)
	byConceptVenue := indexByConcept(venueConcept, cfg.Concepts)

	t := sptensor.New(cfg.Authors, cfg.Papers, cfg.Venues)
	idx := make([]int32, 3)
	for e := 0; e < cfg.NNZ; e++ {
		p := rng.IntN(cfg.Papers)
		c := paperConcept[p]
		authors := byConceptAuthor[c]
		venues := byConceptVenue[c]
		if len(authors) == 0 || len(venues) == 0 {
			continue
		}
		idx[0] = int32(authors[rng.IntN(len(authors))])
		idx[1] = int32(p)
		idx[2] = int32(venues[rng.IntN(len(venues))])
		t.Append(idx, 1)
	}
	t.Coalesce()
	sims := []*graph.Similarity{
		communitySimilarity(rng, authorConcept, 3),
		nil,
		nil,
	}
	return &Dataset{
		Name: "dblp-sim", Tensor: t, Sims: sims,
		Concepts: [][]int{authorConcept, paperConcept, venueConcept},
	}
}

func indexByConcept(labels []int, concepts int) [][]int {
	out := make([][]int, concepts)
	for i, c := range labels {
		out[c] = append(out[c], i)
	}
	return out
}

func kruskalRange(rng *rand.Rand, k *sptensor.Kruskal, samples int) (lo, hi float64) {
	dims := k.Dims()
	idx := make([]int32, len(dims))
	lo, hi = math.Inf(1), math.Inf(-1)
	for s := 0; s < samples; s++ {
		for m, d := range dims {
			idx[m] = int32(rng.IntN(d))
		}
		v := k.At(idx)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

func ratingScale(lo, hi float64) (scale, shift float64) {
	if hi <= lo {
		return 1, 0
	}
	scale = 4 / (hi - lo)
	shift = 1 - lo*scale
	return scale, shift
}

// rescaleKruskal folds value scaling into the first factor and leaves shift
// unapplied (the planted truth is only used for qualitative checks).
func rescaleKruskal(k *sptensor.Kruskal, scale, shift float64) {
	k.Factors[0].Scale(scale)
	_ = shift
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DBLP4Config sizes the 4-mode bibliography stand-in.
type DBLP4Config struct {
	Authors, Papers, Terms, Venues int
	Concepts                       int
	NNZ                            int
	Seed                           uint64
}

// DBLP4Sim builds the 4-mode author-paper-term-venue tensor the paper's
// introduction describes as the canonical multi-dimensional bibliography
// representation. Terms, like authors and venues, belong to planted
// concepts; every 4-tuple is concept-consistent.
func DBLP4Sim(cfg DBLP4Config) *Dataset {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xdb14db14))
	label := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = graph.BlockOf(i, n, cfg.Concepts)
		}
		return out
	}
	authorConcept := label(cfg.Authors)
	termConcept := label(cfg.Terms)
	venueConcept := label(cfg.Venues)
	paperConcept := make([]int, cfg.Papers)
	for i := range paperConcept {
		paperConcept[i] = rng.IntN(cfg.Concepts)
	}
	byAuthor := indexByConcept(authorConcept, cfg.Concepts)
	byTerm := indexByConcept(termConcept, cfg.Concepts)
	byVenue := indexByConcept(venueConcept, cfg.Concepts)

	t := sptensor.New(cfg.Authors, cfg.Papers, cfg.Terms, cfg.Venues)
	idx := make([]int32, 4)
	for e := 0; e < cfg.NNZ; e++ {
		p := rng.IntN(cfg.Papers)
		c := paperConcept[p]
		if len(byAuthor[c]) == 0 || len(byTerm[c]) == 0 || len(byVenue[c]) == 0 {
			continue
		}
		idx[0] = int32(byAuthor[c][rng.IntN(len(byAuthor[c]))])
		idx[1] = int32(p)
		idx[2] = int32(byTerm[c][rng.IntN(len(byTerm[c]))])
		idx[3] = int32(byVenue[c][rng.IntN(len(byVenue[c]))])
		t.Append(idx, 1)
	}
	t.Coalesce()
	sims := []*graph.Similarity{
		communitySimilarity(rng, authorConcept, 3),
		nil,
		nil,
		nil,
	}
	return &Dataset{
		Name: "dblp4-sim", Tensor: t, Sims: sims,
		Concepts: [][]int{authorConcept, paperConcept, termConcept, venueConcept},
	}
}
